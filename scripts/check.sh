#!/usr/bin/env bash
# Local mirror of the CI correctness matrix:
#
#   default    -Wall -Wextra -Werror build, full test suite
#   audit-off  verify the hooks compile out cleanly (SEESAW_AUDIT=OFF)
#   asan-ubsan AddressSanitizer + UBSan build, full test suite
#   tsan       ThreadSanitizer build, threaded harness tests + a
#              2-worker smoke campaign
#   tidy       clang-tidy over the compilation database (skipped with a
#              notice when clang-tidy is not installed)
#   lint       project-discipline checks: configHash drift, NOLINT
#              justifications, the seesaw-tidy fixture suite
#              (ctest -L lint; SKIPs when clang-tidy is absent), and
#              — when the plugin built — seesaw-tidy over all of src/
#   format     git clang-format --diff of changed lines vs the merge
#              base (skipped with a notice when not installed)
#   perf       perf-regression gate: 3-run median of the throughput
#              suite vs bench/perf/BENCH_throughput.baseline.json
#              (the local mirror of the CI perf-gate job)
#   service    campaign-service gate: store/service unit tests, then
#              the kill-and-resume convergence script (a 2-worker
#              campaign SIGKILLed partway must resume, skip finished
#              cells, and match an uninterrupted serial store
#              bit-for-bit — the local mirror of the CI
#              campaign-resume job)
#   threads    Clang Thread Safety Analysis build (-Wthread-safety as
#              errors over the capability annotations) plus the
#              compile-fail snippet tests (skipped with a notice when
#              clang++ is not installed; CI runs it)
#   analyze    seesaw-analyze whole-program gate: facts-level mutation
#              ctests, then extract over compile_commands.json and the
#              five-invariant check with warnings as errors (the
#              extraction half SKIPs with a notice when Clang dev
#              packages are absent; CI requires it)
#
# Usage: scripts/check.sh [stage...]   (default: all stages)

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc)"
stages=("$@")
[ ${#stages[@]} -eq 0 ] && \
    stages=(default audit-off asan-ubsan tsan tidy lint format perf
        service threads analyze)

banner() { printf '\n=== %s ===\n' "$*"; }

configure_build_test() {
    local dir="$1"; shift
    cmake -S "$repo" -B "$dir" "$@"
    cmake --build "$dir" -j "$jobs"
    ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

for stage in "${stages[@]}"; do
    case "$stage" in
    default)
        banner "default build + tests"
        configure_build_test "$repo/build"
        ;;
    audit-off)
        banner "SEESAW_AUDIT=OFF build + tests"
        configure_build_test "$repo/build-noaudit" -DSEESAW_AUDIT=OFF
        ;;
    asan-ubsan)
        banner "ASan+UBSan build + tests"
        configure_build_test "$repo/build-asan" \
            -DSEESAW_SANITIZE=asan-ubsan
        ;;
    tsan)
        banner "TSan build + threaded smoke"
        cmake -S "$repo" -B "$repo/build-tsan" -DSEESAW_SANITIZE=tsan
        cmake --build "$repo/build-tsan" -j "$jobs"
        # The harness owns all the threading; run its suites plus a
        # parallel campaign so real worker interleavings execute.
        ctest --test-dir "$repo/build-tsan" --output-on-failure \
            -R 'ThreadPool|Campaign|Sink'
        "$repo/build-tsan/examples/campaign" --campaign tsan-smoke \
            --workloads redis,mcf --l1 32K --jobs 2 \
            --instructions 50000 --quiet
        ;;
    tidy)
        banner "clang-tidy"
        if ! command -v clang-tidy > /dev/null; then
            echo "clang-tidy not installed; skipping (CI runs it)"
            continue
        fi
        cmake -S "$repo" -B "$repo/build" > /dev/null # refresh DB
        mapfile -t sources < <(
            find "$repo/src" "$repo/examples" "$repo/bench" \
                -name '*.cc' -o -name '*.cpp' | sort)
        if command -v run-clang-tidy > /dev/null; then
            run-clang-tidy -p "$repo/build" -j "$jobs" -quiet \
                "${sources[@]}"
        else
            clang-tidy -p "$repo/build" --quiet "${sources[@]}"
        fi
        ;;
    lint)
        banner "project lint"
        python3 "$repo/scripts/config_hash_drift.py"
        python3 "$repo/scripts/check_nolint.py"
        cmake -S "$repo" -B "$repo/build" > /dev/null
        cmake --build "$repo/build" -j "$jobs"
        # Fixture tests SKIP (exit 77) when clang-tidy or the plugin
        # headers are missing; ctest reports that visibly.
        ctest --test-dir "$repo/build" --output-on-failure -L lint
        plugin="$repo/build/tools/tidy/libSeesawTidy.so"
        if command -v clang-tidy > /dev/null && [ -f "$plugin" ]; then
            mapfile -t sources < <(
                find "$repo/src" -name '*.cc' | sort)
            clang-tidy -p "$repo/build" --quiet -load "$plugin" \
                -checks='-*,seesaw-*' --warnings-as-errors='seesaw-*' \
                "${sources[@]}"
            echo "seesaw-tidy: src/ is clean"
        else
            echo "seesaw-tidy plugin or clang-tidy unavailable;" \
                "skipping whole-src sweep (CI runs it)"
        fi
        ;;
    format)
        banner "format gate (changed lines vs merge base)"
        if ! command -v git-clang-format > /dev/null \
            && ! git clang-format -h > /dev/null 2>&1; then
            echo "git-clang-format not installed; skipping (CI runs it)"
            continue
        fi
        base="$(git -C "$repo" merge-base HEAD origin/main \
            2> /dev/null || git -C "$repo" rev-parse HEAD~1)"
        out="$(git -C "$repo" clang-format --diff "$base" -- \
            src tests tools bench examples || true)"
        if [ -n "$out" ] && ! grep -q "did not modify" <<< "$out" \
            && ! grep -q "no modified files" <<< "$out"; then
            printf '%s\n' "$out"
            echo "format gate FAILED: run 'git clang-format $base'" >&2
            exit 1
        fi
        echo "changed lines are clang-format clean"
        ;;
    perf)
        banner "perf-regression gate"
        cmake -S "$repo" -B "$repo/build" > /dev/null
        cmake --build "$repo/build" -j "$jobs" --target perf_throughput
        python3 "$repo/scripts/perf_gate.py"
        ;;
    service)
        banner "campaign service (kill/resume convergence)"
        cmake -S "$repo" -B "$repo/build" > /dev/null
        cmake --build "$repo/build" -j "$jobs" \
            --target seesaw_tests campaign seesaw_worker \
            seesaw_store_cli
        ctest --test-dir "$repo/build" --output-on-failure \
            -R 'ResultStore|JsonValue|LeaseQueue|Service\.'
        python3 "$repo/scripts/campaign_resume_test.py" \
            --campaign-bin "$repo/build/examples/campaign" \
            --store-cli "$repo/build/tools/seesaw_store"
        ;;
    threads)
        banner "Clang thread-safety analysis"
        if ! command -v clang++ > /dev/null; then
            echo "clang++ not installed; skipping (CI runs it)"
            continue
        fi
        # SEESAW_WERROR=OFF: only the thread-safety groups are promoted
        # to errors, so a Clang-only -Wall nit cannot mask a finding.
        cmake -S "$repo" -B "$repo/build-threads" \
            -DCMAKE_CXX_COMPILER=clang++ \
            -DSEESAW_THREAD_SAFETY=ON -DSEESAW_WERROR=OFF
        cmake --build "$repo/build-threads" -j "$jobs"
        ctest --test-dir "$repo/build-threads" --output-on-failure \
            -R compile_fail
        ;;
    analyze)
        banner "seesaw-analyze whole-program invariants"
        cmake -S "$repo" -B "$repo/build" > /dev/null
        cmake --build "$repo/build" -j "$jobs"
        # Always-run halves: facts-level mutation tests + escape
        # policing; the extraction fixture SKIPs without Clang dev
        # packages and ctest reports that visibly.
        ctest --test-dir "$repo/build" --output-on-failure \
            -R 'lint_analyze|lint_nolint_policy'
        if [ -x "$repo/build/tools/seesaw_extract" ]; then
            python3 "$repo/scripts/analyze.py" --werror
            python3 "$repo/scripts/config_hash_drift.py"
        else
            echo "seesaw_extract not built (Clang dev packages" \
                "missing); skipping whole-program extract (CI runs it)"
        fi
        ;;
    *)
        echo "unknown stage: $stage" >&2
        echo "stages: default audit-off asan-ubsan tsan tidy lint" \
            "format perf service threads analyze" >&2
        exit 1
        ;;
    esac
done

banner "all requested stages passed"
