#!/usr/bin/env python3
"""Regression tests for campaign_diff.py's scrubbing and --ignore.

Covers the scoped-ignore semantics: a bare FIELD disappears anywhere,
a dotted PARENT.FIELD disappears only where the dict-key path ends in
that sequence (reaching through list indices), and the same field name
outside the scope stays gated. Also pins the default machine-dependent
ignores and the CLI exit codes.

Run directly or via ctest; stdlib only.
"""

import json
import os
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from campaign_diff import IGNORED, scrub, split_ignores  # noqa: E402

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "campaign_diff.py")

FAILURES = []


def check(name, cond):
    status = "ok" if cond else "FAIL"
    print(f"  {name:<52} {status}")
    if not cond:
        FAILURES.append(name)


def run_cli(doc_a, doc_b, *flags):
    """Exit code of campaign_diff.py over two temp JSON files."""
    with tempfile.TemporaryDirectory() as d:
        pa = os.path.join(d, "a.json")
        pb = os.path.join(d, "b.json")
        with open(pa, "w") as f:
            json.dump(doc_a, f)
        with open(pb, "w") as f:
            json.dump(doc_b, f)
        proc = subprocess.run(
            [sys.executable, SCRIPT, pa, pb, *flags],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        return proc.returncode


def main():
    # A miniature campaign document shaped like emitCampaignJson():
    # per-cell stats plus a per_core array that repeats field names
    # (ipc, wall_seconds) used at other levels.
    doc = {
        "campaign": "t",
        "wall_seconds": 1.0,
        "results": [{
            "name": "redis/32KB",
            "ipc": 1.5,
            "config_hash": "abc",
            "per_core": [{"ipc": 1.4, "l1_hits": 10},
                         {"ipc": 1.6, "l1_hits": 12}],
        }],
    }

    print("scrub():")
    bare, scoped = split_ignores(["per_core.ipc"])
    s = scrub(doc, bare | IGNORED, scoped)
    check("default ignores drop wall_seconds",
          "wall_seconds" not in s)
    check("scoped ignore strips ipc inside per_core",
          all("ipc" not in c for c in s["results"][0]["per_core"]))
    check("scoped ignore keeps the cell-level ipc",
          s["results"][0]["ipc"] == 1.5)
    check("unrelated per_core fields survive",
          s["results"][0]["per_core"][0]["l1_hits"] == 10)

    bare, scoped = split_ignores(["ipc"])
    s = scrub(doc, bare | IGNORED, scoped)
    check("bare ignore strips ipc at every level",
          "ipc" not in s["results"][0]
          and all("ipc" not in c
                  for c in s["results"][0]["per_core"]))

    # A deeper path narrows the scope: results.per_core.ipc matches,
    # but a wrong prefix must not.
    bare, scoped = split_ignores(["results.per_core.ipc"])
    s = scrub(doc, bare | IGNORED, scoped)
    check("deep path reaches through both arrays",
          all("ipc" not in c for c in s["results"][0]["per_core"]))
    bare, scoped = split_ignores(["elsewhere.ipc"])
    s = scrub(doc, bare | IGNORED, scoped)
    check("non-matching parent leaves ipc alone",
          s["results"][0]["per_core"][0]["ipc"] == 1.4)

    print("CLI:")
    other = json.loads(json.dumps(doc))
    other["results"][0]["per_core"][0]["ipc"] = 9.9
    check("per-core divergence fails by default",
          run_cli(doc, other) == 1)
    check("--ignore per_core.ipc accepts it",
          run_cli(doc, other, "--ignore", "per_core.ipc") == 0)
    check("scoping protects the cell-level field",
          run_cli(doc, {**other, "results": [
              {**other["results"][0], "ipc": 9.9}]},
              "--ignore", "per_core.ipc") == 1)
    check("bare --ignore ipc still accepts everything",
          run_cli(doc, {**other, "results": [
              {**other["results"][0], "ipc": 9.9}]},
              "--ignore", "ipc") == 0)
    check("identical documents pass untouched",
          run_cli(doc, json.loads(json.dumps(doc))) == 0)
    check("trailing --ignore without a value is a usage error",
          run_cli(doc, doc, "--ignore") == 2)

    if FAILURES:
        print(f"campaign_diff_test: {len(FAILURES)} check(s) failed",
              file=sys.stderr)
        return 1
    print("campaign_diff_test: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
