#!/usr/bin/env python3
"""CI perf-regression gate over the simulator-throughput suite.

Runs ``build/bench/perf_throughput`` several times (default 3), takes
the per-metric median of the *normalized* throughput figures (each
metric divided by the run's integer-calibration score, so the numbers
transfer across machines), and compares them against the checked-in
baseline ``bench/perf/BENCH_throughput.baseline.json``.

A metric more than ``--tolerance`` (default 10%) below its baseline
fails the gate. Improvements never fail; run with ``--update-baseline``
after an intentional speedup (or slowdown) to re-pin.

The suite's ``one_pass`` section (N-substrate multi-config pass vs N
per-config re-runs) is gated differently: the speedup is a wall-time
ratio, machine-independent by construction, so instead of a baseline
comparison each point must clear a hard floor (ONE_PASS_FLOORS) —
one-pass execution must genuinely beat per-config re-runs.

The gate also copies the last run's ``BENCH_throughput.json`` to
``results/`` so CI can archive it as an artifact.

Stdlib only; exits 0 on pass, 1 on regression, 2 on usage errors.
"""

import argparse
import json
import os
import shutil
import statistics
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Minimum one-pass-vs-serial speedup per substrate count. Measured
# medians are ~2.4x at 4 and ~3.6x at 8; the floors leave headroom for
# load noise while still requiring a real win.
ONE_PASS_FLOORS = {4: 1.5, 8: 2.5}


def gated_metrics(doc):
    """name -> normalized throughput, for every gated series."""
    out = {}
    for m in doc["micro"]:
        out["micro/" + m["name"]] = m["normalized_ops"]
    for m in doc["macro"]:
        out["macro/" + m["name"]] = m["normalized_accesses"]
    return out


def one_pass_speedups(doc):
    """substrate count -> speedup of the one-pass macro sweep."""
    return {int(p["substrates"]): p["speedup"]
            for p in doc.get("one_pass", [])}


def run_suite(bench, results_dir, repeats_env):
    env = dict(os.environ)
    env.setdefault("SEESAW_PERF_REPEATS", repeats_env)
    env["SEESAW_RESULTS_DIR"] = results_dir
    subprocess.run([bench], check=True, env=env,
                   stdout=subprocess.DEVNULL)
    with open(os.path.join(results_dir, "BENCH_throughput.json")) as f:
        return json.load(f)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench",
                    default=os.path.join(REPO, "build", "bench",
                                         "perf_throughput"),
                    help="perf_throughput binary (default: build/bench)")
    ap.add_argument("--baseline",
                    default=os.path.join(REPO, "bench", "perf",
                                         "BENCH_throughput.baseline.json"))
    ap.add_argument("--runs", type=int, default=3,
                    help="suite invocations to median over (default 3)")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed fractional loss vs baseline "
                         "(default 0.10)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="write the measured medians as the new "
                         "baseline instead of gating")
    args = ap.parse_args()

    if not os.access(args.bench, os.X_OK):
        print(f"perf_gate: bench binary not found: {args.bench}",
              file=sys.stderr)
        return 2
    if args.runs < 1:
        print("perf_gate: --runs must be >= 1", file=sys.stderr)
        return 2

    results_dir = os.path.join(REPO, "build", "perf-gate")
    shutil.rmtree(results_dir, ignore_errors=True)
    os.makedirs(results_dir, exist_ok=True)

    # The binary's internal repeat loop is redundant with our outer
    # median, so default it to 1 (still overridable via the env).
    docs = [run_suite(args.bench, results_dir, "1")
            for _ in range(args.runs)]
    series = [gated_metrics(d) for d in docs]
    names = series[0].keys()
    medians = {n: statistics.median(s[n] for s in series)
               for n in names}
    speedup_series = [one_pass_speedups(d) for d in docs]
    speedups = {n: statistics.median(s[n] for s in speedup_series)
                for n in speedup_series[0]}

    # Archive the artifact CI uploads: the last run's full JSON with
    # the cross-run median speedups patched in.
    artifact_dir = os.path.join(REPO, "results")
    os.makedirs(artifact_dir, exist_ok=True)
    artifact_doc = docs[-1]
    for p in artifact_doc.get("one_pass", []):
        p["speedup"] = speedups[int(p["substrates"])]
    artifact = os.path.join(artifact_dir, "BENCH_throughput.json")
    with open(artifact, "w") as f:
        json.dump(artifact_doc, f, indent=2)
        f.write("\n")

    if args.update_baseline:
        doc = docs[-1]
        # Re-pin the normalized medians; keep the last run's raw
        # figures as human-readable context.
        for m in doc["micro"]:
            m["normalized_ops"] = medians["micro/" + m["name"]]
        for m in doc["macro"]:
            m["normalized_accesses"] = medians["macro/" + m["name"]]
        with open(args.baseline, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"perf_gate: baseline updated: {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print(f"perf_gate: no baseline at {args.baseline}; "
              "run with --update-baseline first", file=sys.stderr)
        return 2
    with open(args.baseline) as f:
        base = gated_metrics(json.load(f))

    width = max(len(n) for n in names)
    failures = []
    for n in sorted(names):
        cur = medians[n]
        ref = base.get(n)
        if ref is None:
            print(f"  {n:<{width}}  {cur:9.4f}  (new metric, "
                  "not gated)")
            continue
        delta = (cur - ref) / ref
        status = "ok"
        if delta < -args.tolerance:
            status = "REGRESSION"
            failures.append((n, ref, cur, delta))
        print(f"  {n:<{width}}  {cur:9.4f}  vs {ref:9.4f}  "
              f"{delta:+7.1%}  {status}")

    missing = sorted(set(base) - set(names))
    for n in missing:
        print(f"  {n:<{width}}  metric disappeared from the suite")
    if missing:
        failures.append(("missing-metrics", 0, 0, 0))

    # One-pass speedup floors: absolute, not baseline-relative.
    for substrates, floor in sorted(ONE_PASS_FLOORS.items()):
        got = speedups.get(substrates)
        if got is None:
            print(f"  one_pass/{substrates}-substrate  missing from "
                  "the suite")
            failures.append((f"one_pass/{substrates}", floor, 0, 0))
            continue
        status = "ok" if got >= floor else "BELOW FLOOR"
        print(f"  one_pass/{substrates}-substrate speedup  "
              f"{got:6.2f}x  (floor {floor:.2f}x)  {status}")
        if got < floor:
            failures.append((f"one_pass/{substrates}", floor, got,
                             got / floor - 1))

    if failures:
        print(f"\nperf_gate: FAIL — {len(failures)} metric(s) lost "
              f">{args.tolerance:.0%} vs baseline "
              f"({args.runs}-run median)", file=sys.stderr)
        return 1
    print(f"\nperf_gate: pass ({args.runs}-run median within "
          f"{args.tolerance:.0%} of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
