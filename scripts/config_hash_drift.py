#!/usr/bin/env python3
"""Assert that configHash() covers every SystemConfig field.

Campaign resume (harness/campaign.cc) keys cached results on
configHash(SystemConfig).  A field added to SystemConfig but not mixed
into the hash silently aliases distinct experiments onto one cache
entry -- runs with different configs would reuse each other's results.

Two evidence sources, best available wins:

  * **facts mode** -- when seesaw-analyze extraction facts exist
    (build/analyze/facts.json, or --facts PATH), declared fields and
    hash reads come from the Clang AST.  This sees mixes the regex
    cannot: reads through local aliases (``const OsParams &os =
    config.os; h.mix(os.memBytes)``) and helper functions called from
    configHash() (followed via the extracted call graph).
  * **regex fallback** -- with no facts (machines without Clang dev
    packages), parse the SystemConfig struct out of the headers and
    the ``h.mix(config.X)`` lines out of configHash() as before.

Either way the check fails on any field declared but not mixed
(DRIFT) or mixed but no longer declared (STALE).

Run as a ctest ("config_hash_drift") and in CI's lint job.
"""

import argparse
import json
import os
import re
import sys

# Nested structs whose every leaf must be mixed as config.<field>.<leaf>.
NESTED_STRUCTS = {
    "OsParams": "src/mem/os_memory_manager.hh",
    "MemhogParams": "src/mem/memhog.hh",
    "OuterHierarchyParams": "src/cache/next_level.hh",
    "check::AuditOptions": "src/check/audit.hh",
    "ReplacementParams": "src/cache/replacement.hh",
    "PrefetchParams": "src/cache/prefetch/prefetch.hh",
}

CONFIG_HEADER = "src/sim/config.hh"
HASH_SOURCE = "src/harness/campaign.cc"

FIELD_RE = re.compile(
    r"^\s*(?P<type>[A-Za-z_][\w:<>,\s*&]*?)\s+(?P<name>[A-Za-z_]\w*)"
    r"\s*(?:=[^;]*)?;\s*$"
)
NON_FIELD_KEYWORDS = ("using", "typedef", "static", "friend", "return")


def strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", lambda m: re.sub(r"[^\n]", " ", m.group()),
                  text, flags=re.S)
    return re.sub(r"//[^\n]*", "", text)


def struct_body(text: str, struct_name: str, path: str) -> str:
    bare = struct_name.split("::")[-1]
    m = re.search(rf"\bstruct\s+{re.escape(bare)}\b", text)
    if not m:
        sys.exit(f"error: struct {struct_name} not found in {path}")
    open_brace = text.index("{", m.end())
    depth = 0
    for i in range(open_brace, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return text[open_brace + 1:i]
    sys.exit(f"error: unbalanced braces for struct {struct_name} in {path}")


def parse_fields(body: str) -> "list[tuple[str, str]]":
    """Return (type, name) for each depth-1 data member."""
    fields = []
    depth = 0
    for line in body.splitlines():
        at_depth = depth
        depth += line.count("{") - line.count("}")
        if at_depth != 0 or "(" in line:
            continue
        m = FIELD_RE.match(line)
        if not m:
            continue
        type_ = " ".join(m.group("type").split())
        if type_.split()[0] in NON_FIELD_KEYWORDS or type_.startswith("enum"):
            continue
        fields.append((type_, m.group("name")))
    return fields


def load_struct_fields(repo: str, struct_name: str,
                       rel_path: str) -> "list[tuple[str, str]]":
    path = os.path.join(repo, rel_path)
    with open(path, encoding="utf-8") as fh:
        text = strip_comments(fh.read())
    return parse_fields(struct_body(text, struct_name, rel_path))


def expected_paths(repo: str) -> "set[str]":
    expected = set()
    for type_, name in load_struct_fields(repo, "SystemConfig",
                                          CONFIG_HEADER):
        if type_ in NESTED_STRUCTS:
            leaves = load_struct_fields(repo, type_, NESTED_STRUCTS[type_])
            if not leaves:
                sys.exit(f"error: parsed no fields from nested {type_}")
            for _, leaf in leaves:
                expected.add(f"{name}.{leaf}")
        else:
            expected.add(name)
    return expected


def mixed_paths(repo: str) -> "set[str]":
    path = os.path.join(repo, HASH_SOURCE)
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    fn = re.search(r"configHash\(const SystemConfig &config\)\s*\{", text)
    if not fn:
        sys.exit(f"error: configHash(const SystemConfig&) not found "
                 f"in {HASH_SOURCE}")
    body = text[fn.end():]
    body = body[:body.index("\n}")]
    return set(re.findall(r"h\.mix\(config\.([A-Za-z0-9_.]+)\)", body))


def facts_paths(facts: dict) -> "tuple[set[str], set[str]]":
    """(expected leaves, mixed leaves) from seesaw-analyze facts.

    hash_fields holds the reads lexically inside configHash(); reads in
    functions reachable from it via the call graph are folded in, and
    whole-struct reads ("os") expand to their leaves -- together these
    close the alias/helper gap of the regex path.
    """
    fields = [f["path"] for f in facts.get("config_fields", [])]
    leaves = {p for p in fields
              if not any(q.startswith(p + ".") for q in fields)}

    mixed = set(facts.get("hash_fields", []))
    callees = {}
    for c in facts.get("calls", []):
        callees.setdefault(c["caller"], set()).add(c["callee"])
    reachable = {f for f in callees
                 if f.split("::")[-1] == "configHash"}
    work = list(reachable)
    while work:
        for callee in callees.get(work.pop(), ()):
            if callee not in reachable:
                reachable.add(callee)
                work.append(callee)
    for r in facts.get("config_reads", []):
        if not r.get("write") and r.get("func") in reachable:
            mixed.add(r["path"])

    expanded = set()
    for p in mixed:
        kids = {leaf for leaf in leaves if leaf.startswith(p + ".")}
        expanded |= kids if kids else {p}
    return leaves, expanded


def diff_messages(expected: "set[str]", mixed: "set[str]") -> "list[str]":
    messages = []
    for path in sorted(expected - mixed):
        messages.append(
            f"DRIFT: SystemConfig field 'config.{path}' is not mixed "
            f"into configHash() ({HASH_SOURCE})")
    for path in sorted(mixed - expected):
        messages.append(
            f"STALE: configHash() mixes 'config.{path}' but SystemConfig "
            f"declares no such field ({CONFIG_HEADER})")
    return messages


def self_test(expected: "set[str]", mixed: "set[str]") -> int:
    """Negative mode: prove the checker detects seeded drift.

    Seeds an unmixed nested-param field (the shape a new
    ReplacementParams/PrefetchParams knob would take) and a stale mix,
    and fails unless both are reported.
    """
    if diff_messages(expected, mixed):
        print("self-test needs a clean baseline; fix the real drift first")
        return 1

    drift = diff_messages(expected | {"replacement.phantomKnob"}, mixed)
    if len(drift) != 1 or "phantomKnob" not in drift[0] \
            or not drift[0].startswith("DRIFT"):
        print(f"self-test FAILED: seeded unmixed field not reported "
              f"(got {drift})")
        return 1

    stale = diff_messages(expected, mixed | {"prefetch.ghostKnob"})
    if len(stale) != 1 or "ghostKnob" not in stale[0] \
            or not stale[0].startswith("STALE"):
        print(f"self-test FAILED: seeded stale mix not reported "
              f"(got {stale})")
        return 1

    # Facts mode must close the alias/helper gap: a whole-struct read
    # inside a helper called from configHash() counts as mixing every
    # leaf of that struct.
    synthetic = {
        "config_fields": [{"path": "cores"}, {"path": "os"},
                          {"path": "os.memBytes"}, {"path": "os.thp"}],
        "hash_fields": ["cores"],
        "calls": [{"caller": "configHash", "callee": "mixOs"}],
        "config_reads": [
            {"path": "os", "func": "mixOs", "write": False},
        ],
    }
    f_expected, f_mixed = facts_paths(synthetic)
    if f_expected != {"cores", "os.memBytes", "os.thp"} \
            or f_mixed != f_expected:
        print(f"self-test FAILED: facts mode did not follow the "
              f"helper/whole-struct mix (expected={f_expected}, "
              f"mixed={f_mixed})")
        return 1
    if facts_paths({**synthetic, "calls": []})[1] != {"cores"}:
        print("self-test FAILED: facts mode credited an unreachable "
              "helper's reads to configHash()")
        return 1

    print("OK: self-test — seeded drift/stale and the facts-mode "
          "helper-following are all caught")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    parser.add_argument("--self-test", action="store_true",
                        help="verify the checker itself catches seeded "
                             "drift (negative test)")
    parser.add_argument("--facts", default=None,
                        help="seesaw-analyze merged facts JSON "
                             "(default: build/analyze/facts.json when "
                             "present, else the regex fallback)")
    args = parser.parse_args()

    facts_path = args.facts or os.path.join(
        args.repo, "build", "analyze", "facts.json")
    if os.path.exists(facts_path):
        with open(facts_path, encoding="utf-8") as fh:
            expected, mixed = facts_paths(json.load(fh))
        source = f"facts ({os.path.relpath(facts_path, args.repo)})"
        if not expected:
            sys.exit(f"error: {facts_path} declares no config fields")
    else:
        if args.facts:
            sys.exit(f"error: --facts {args.facts} not found")
        expected = expected_paths(args.repo)
        mixed = mixed_paths(args.repo)
        source = "regex fallback"

    if args.self_test:
        return self_test(expected, mixed)

    messages = diff_messages(expected, mixed)
    for message in messages:
        print(message)
    if not messages:
        print(f"OK: configHash() covers all {len(expected)} SystemConfig "
              f"fields [{source}]")
    return 0 if not messages else 1


if __name__ == "__main__":
    sys.exit(main())
