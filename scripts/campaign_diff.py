#!/usr/bin/env python3
"""Compare two campaign JSON files, ignoring machine-dependent fields.

The simulator is deterministic, so two runs of the same campaign on any
machines must agree on every statistic; only wall times, job counts and
the git revision may differ. The nightly workflow uses this to diff a
fresh full campaign against the pinned golden under bench/golden/.

Usage: campaign_diff.py CURRENT.json GOLDEN.json [--ignore SPEC]...
--ignore (repeatable) drops fields before comparing. A bare FIELD is
ignored anywhere in the document — e.g. --ignore config_hash when a
hash-affecting config field was added but the statistics must still
match. A dotted PARENT.FIELD is scoped: it drops FIELD only where the
key path ends in PARENT.FIELD — e.g. --ignore per_core.ipc strips ipc
inside each per_core record while the top-level cell ipc stays gated
(list indices are transparent, so per_core.ipc reaches through the
per-core array). Deeper paths (results.per_core.ipc) narrow further.
Exits 0 when statistically identical, 1 with a field-level report when
not, 2 on usage errors.
"""

import json
import sys

# Machine- or invocation-dependent; everything else must match.
# "git" is the key emitCampaignJson() actually writes; "git_describe"
# is kept for older documents.
IGNORED = {"wall_seconds", "git", "git_describe", "jobs"}


def split_ignores(specs):
    """Partition ignore specs into bare names and dotted key paths."""
    bare, scoped = set(), []
    for s in specs:
        if "." in s:
            scoped.append(tuple(s.split(".")))
        else:
            bare.add(s)
    return bare, scoped


def scrub(node, bare, scoped=(), path=()):
    """Drop ignored keys anywhere in the document.

    ``bare`` names match any key; each ``scoped`` tuple matches a key
    whose dict-key path ends with it. List indices do not extend the
    path, so a spec like ("per_core", "ipc") applies to every element
    of a per_core array.
    """
    if isinstance(node, dict):
        out = {}
        for k, v in node.items():
            here = path + (k,)
            if k in bare or any(here[-len(s):] == s for s in scoped):
                continue
            out[k] = scrub(v, bare, scoped, here)
        return out
    if isinstance(node, list):
        return [scrub(v, bare, scoped, path) for v in node]
    return node


def report(a, b, path=""):
    """Print differing leaves; return the number found."""
    if type(a) is not type(b):
        print(f"  {path}: type {type(a).__name__} vs "
              f"{type(b).__name__}")
        return 1
    if isinstance(a, dict):
        n = 0
        for k in sorted(set(a) | set(b)):
            if k not in a or k not in b:
                print(f"  {path}/{k}: only in "
                      f"{'golden' if k in b else 'current'}")
                n += 1
            else:
                n += report(a[k], b[k], f"{path}/{k}")
        return n
    if isinstance(a, list):
        if len(a) != len(b):
            print(f"  {path}: {len(a)} vs {len(b)} elements")
            return 1
        return sum(report(x, y, f"{path}[{i}]")
                   for i, (x, y) in enumerate(zip(a, b)))
    if a != b:
        print(f"  {path}: {a} vs {b}")
        return 1
    return 0


def main():
    files = []
    specs = []
    args = sys.argv[1:]
    i = 0
    while i < len(args):
        if args[i] == "--ignore":
            if i + 1 >= len(args):
                print(__doc__, file=sys.stderr)
                return 2
            specs.append(args[i + 1])
            i += 2
        else:
            files.append(args[i])
            i += 1
    if len(files) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    bare, scoped = split_ignores(specs)
    bare |= IGNORED
    with open(files[0]) as f:
        current = scrub(json.load(f), bare, scoped)
    with open(files[1]) as f:
        golden = scrub(json.load(f), bare, scoped)
    if current == golden:
        print("campaign_diff: statistically identical")
        return 0
    n = report(current, golden)
    print(f"campaign_diff: {n} field(s) diverge from the golden",
          file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
