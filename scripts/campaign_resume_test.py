#!/usr/bin/env python3
"""Kill-and-resume convergence test for the campaign service.

Runs the same smoke campaign three ways and requires the result
stores to agree bit-for-bit in cell statistics:

  1. an uninterrupted serial reference (--store A --jobs 2),
  2. a 2-worker-process run (--store B --workers 2) SIGKILLed as soon
     as the first cell lands in the store,
  3. the same store resumed (--resume) with 2 worker processes.

Also asserts that the resume provably skipped the cells the killed
run completed: the broker pre-marks them done and the worker summary
counters must add up to exactly the missing cells.

Usage: campaign_resume_test.py --campaign-bin PATH --store-cli PATH
Exits 0 on success, 1 on any divergence, 2 on usage/setup errors.
"""

import argparse
import os
import re
import signal
import subprocess
import sys
import tempfile
import time

GRID = [
    "--campaign", "resume-smoke",
    "--workloads", "redis,mcf,gups,tunk",
    "--designs", "vipt,seesaw",
    "--l1", "32K",
    "--instructions", "60000",
]
CELLS = 8  # 4 workloads x 2 designs


def run(cmd, **kwargs):
    proc = subprocess.run(cmd, capture_output=True, text=True,
                          **kwargs)
    if proc.returncode != 0:
        print(f"FAIL: {' '.join(cmd)} exited {proc.returncode}")
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        sys.exit(1)
    return proc


def store_records(store):
    """Completed (newline-terminated) records across all segments."""
    records = 0
    segdir = os.path.join(store, "segments")
    if not os.path.isdir(segdir):
        return 0
    for name in os.listdir(segdir):
        if not name.endswith(".jsonl"):
            continue
        with open(os.path.join(segdir, name), "rb") as f:
            records += f.read().count(b"\n")
    return records


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--campaign-bin", required=True)
    parser.add_argument("--store-cli", required=True)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="seesaw-resume-") as tmp:
        store_a = os.path.join(tmp, "store-serial")
        store_b = os.path.join(tmp, "store-killed")
        out = os.path.join(tmp, "results")

        # 1. Uninterrupted serial reference.
        run([args.campaign_bin, *GRID, "--jobs", "2", "--quiet",
             "--store", store_a, "--out", out])

        # 2. Two worker processes, SIGKILLed (the whole process
        # group, brokers and workers alike) once the store holds at
        # least one completed cell but before it can hold all of
        # them. A hard kill, not SIGTERM: this is the crash path.
        proc = subprocess.Popen(
            [args.campaign_bin, *GRID, "--workers", "2", "--lease",
             "2", "--quiet", "--store", store_b, "--out", out],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            start_new_session=True)
        deadline = time.monotonic() + 120
        while (store_records(store_b) < 1
               and time.monotonic() < deadline
               and proc.poll() is None):
            time.sleep(0.01)
        try:
            os.killpg(proc.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass  # finished before the kill landed; resume skips all
        proc.wait()

        done = store_records(store_b)
        print(f"killed after {done} completed cell(s)")
        if done < 1:
            print("FAIL: campaign died before completing any cell")
            return 1

        # 3. Resume with two fresh worker processes.
        resumed = run([args.campaign_bin, *GRID, "--workers", "2",
                       "--resume", "--quiet", "--store", store_b,
                       "--out", out])

        # The broker must pre-mark every already-stored cell...
        match = re.search(r"\((\d+) already in store\)",
                          resumed.stderr)
        if not match:
            print("FAIL: broker did not report pre-marked cells")
            sys.stderr.write(resumed.stderr)
            return 1
        pre_done = int(match.group(1))
        if pre_done < 1:
            print("FAIL: resume re-ran every cell "
                  f"(pre-marked {pre_done})")
            return 1

        # ...and the workers must run exactly the missing ones: the
        # per-worker counters prove completed cells were skipped,
        # not silently re-executed.
        ran = sum(int(m) for m in
                  re.findall(r"ran=(\d+)", resumed.stdout))
        if pre_done + ran != CELLS:
            print(f"FAIL: {pre_done} pre-marked + {ran} run != "
                  f"{CELLS} cells")
            sys.stdout.write(resumed.stdout)
            return 1
        print(f"resume skipped {pre_done} cells, ran {ran}")

        # Convergence: the killed-and-resumed store must match the
        # uninterrupted serial store bit-for-bit in cell stats.
        run([args.store_cli, "diff", store_a, store_b])
        dump_a = run([args.store_cli, "dump", store_a]).stdout
        dump_b = run([args.store_cli, "dump", store_b]).stdout
        if dump_a != dump_b:
            print("FAIL: canonical dumps differ")
            return 1
        if not dump_a.strip():
            print("FAIL: canonical dumps are empty")
            return 1
        print(f"stores converged on {CELLS} cells; "
              "canonical dumps byte-identical")
        return 0


if __name__ == "__main__":
    sys.exit(main())
