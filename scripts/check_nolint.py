#!/usr/bin/env python3
"""Police NOLINT suppressions of seesaw-tidy checks.

A suppression is an auditable decision, so the project requires the
form

    // NOLINT(seesaw-<check>): <justification>

with a named seesaw check and a non-trivial justification after the
colon.  This script fails on:

  * bare ``NOLINT`` / ``NOLINTNEXTLINE`` without a check list -- they
    would silently suppress seesaw checks along with everything else;
  * seesaw suppressions without a justification, or with a throwaway
    one (fewer than three words).

The same discipline applies to the thread-safety escape hatch: a
``SEESAW_NO_THREAD_SAFETY_ANALYSIS`` attribute disables Clang's
capability analysis for a whole function body, so every use (outside
its definition in common/thread_annotations.hh) must carry a same-line
``// <justification>`` comment of three or more words explaining why
the analysis cannot express the function's locking.

Run as a ctest ("check_nolint") and in CI's lint job.
"""

import argparse
import os
import re
import sys

SCAN_DIRS = ("src", "tests", "bench", "examples", "tools")
SKIP_DIRS = {os.path.join("tests", "lint", "fixtures")}
EXTENSIONS = (".hh", ".cc", ".h", ".cpp")

NOLINT_RE = re.compile(r"NOLINT(?:NEXTLINE|BEGIN|END)?(\([^)]*\))?")
JUSTIFIED_RE = re.compile(
    r"NOLINT(?:NEXTLINE)?\(([^)]*)\)\s*:\s*(.*\S)")
MIN_JUSTIFICATION_WORDS = 3

NO_TSA_TOKEN = "SEESAW_NO_THREAD_SAFETY_ANALYSIS"
NO_TSA_JUSTIFIED_RE = re.compile(
    NO_TSA_TOKEN + r"\b.*//\s*(.*\S)")
# The macro's own definition and documentation live here.
NO_TSA_HOME = os.path.join("src", "common", "thread_annotations.hh")


def scan_file(path: str, rel: str) -> "list[str]":
    problems = []
    with open(path, encoding="utf-8", errors="replace") as fh:
        for lineno, line in enumerate(fh, start=1):
            for m in NOLINT_RE.finditer(line):
                checks = m.group(1)
                if checks is None:
                    problems.append(
                        f"{rel}:{lineno}: bare {m.group(0)} suppresses every "
                        f"check; name the check: NOLINT(<check>): <reason>")
                    continue
                if "seesaw-" not in checks:
                    continue  # other tools' suppressions are not ours
                jm = JUSTIFIED_RE.search(line[m.start():])
                words = jm.group(2).split() if jm else []
                if len(words) < MIN_JUSTIFICATION_WORDS:
                    problems.append(
                        f"{rel}:{lineno}: NOLINT{checks} needs a "
                        f"justification -- write "
                        f"'// NOLINT{checks}: <why this is safe>' "
                        f"({MIN_JUSTIFICATION_WORDS}+ words)")
            if NO_TSA_TOKEN in line and rel != NO_TSA_HOME:
                stripped = line.lstrip()
                if stripped.startswith(("#", "//", "*")):
                    continue  # preprocessor line or comment mention
                jm = NO_TSA_JUSTIFIED_RE.search(line)
                words = jm.group(1).split() if jm else []
                if len(words) < MIN_JUSTIFICATION_WORDS:
                    problems.append(
                        f"{rel}:{lineno}: {NO_TSA_TOKEN} disables the "
                        f"capability analysis for the whole function; "
                        f"add a same-line '// <why the analysis cannot "
                        f"express this>' justification "
                        f"({MIN_JUSTIFICATION_WORDS}+ words)")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    args = parser.parse_args()

    problems = []
    scanned = 0
    for top in SCAN_DIRS:
        root_dir = os.path.join(args.repo, top)
        for dirpath, _, filenames in os.walk(root_dir):
            rel_dir = os.path.relpath(dirpath, args.repo)
            if any(rel_dir.startswith(skip) for skip in SKIP_DIRS):
                continue
            for name in sorted(filenames):
                if not name.endswith(EXTENSIONS):
                    continue
                scanned += 1
                path = os.path.join(dirpath, name)
                problems.extend(scan_file(path, os.path.relpath(
                    path, args.repo)))

    for p in problems:
        print(p)
    if problems:
        return 1
    print(f"OK: no unjustified seesaw NOLINT suppressions "
          f"({scanned} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
