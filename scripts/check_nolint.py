#!/usr/bin/env python3
"""Police NOLINT suppressions of seesaw-tidy checks and the
seesaw-analyze escape hatch.

A suppression is an auditable decision, so the project requires the
form

    // NOLINT(seesaw-<check>): <justification>

with a named seesaw check and a non-trivial justification after the
colon (NOLINTNEXTLINE and NOLINTBEGIN take the same form; a matching
NOLINTEND needs none).  This script fails on:

  * bare ``NOLINT`` / ``NOLINTNEXTLINE`` without a check list -- they
    would silently suppress seesaw checks along with everything else;
  * seesaw suppressions without a justification, or with a throwaway
    one (fewer than three words).

The same discipline applies to the two other escape hatches:

  * ``SEESAW_NO_THREAD_SAFETY_ANALYSIS`` disables Clang's capability
    analysis for a whole function body;
  * ``// seesaw-analyze-ignore: <justification>`` drops every
    seesaw-analyze fact on its source line (tools/analyze), hiding the
    line from the whole-program invariant checks.

Every use (outside the defining/implementing file) must carry a
same-line justification of three or more words.

Run as a ctest ("check_nolint") and in CI's lint job; the negative
self-test runs as ctest "lint_nolint_policy".
"""

import argparse
import os
import re
import sys

SCAN_DIRS = ("src", "tests", "bench", "examples", "tools")
SKIP_DIRS = {os.path.join("tests", "lint", "fixtures")}
EXTENSIONS = (".hh", ".cc", ".h", ".cpp")

NOLINT_RE = re.compile(r"NOLINT(?:NEXTLINE|BEGIN|END)?(\([^)]*\))?")
JUSTIFIED_RE = re.compile(
    r"NOLINT(?:NEXTLINE|BEGIN)?\(([^)]*)\)\s*:\s*(.*\S)")
MIN_JUSTIFICATION_WORDS = 3

NO_TSA_TOKEN = "SEESAW_NO_THREAD_SAFETY_ANALYSIS"
NO_TSA_JUSTIFIED_RE = re.compile(
    NO_TSA_TOKEN + r"\b.*//\s*(.*\S)")
# The macro's own definition and documentation live here.
NO_TSA_HOME = os.path.join("src", "common", "thread_annotations.hh")

ANALYZE_IGNORE_TOKEN = "seesaw-analyze-ignore"
ANALYZE_IGNORE_JUSTIFIED_RE = re.compile(
    ANALYZE_IGNORE_TOKEN + r"\s*:\s*(.*\S)")
# The extract tool implements (and documents) the marker.
ANALYZE_IGNORE_HOME = os.path.join("tools", "analyze",
                                   "SeesawExtract.cc")


def scan_lines(lines: "list[str]", rel: str) -> "list[str]":
    problems = []
    for lineno, line in enumerate(lines, start=1):
        for m in NOLINT_RE.finditer(line):
            checks = m.group(1)
            if checks is None:
                problems.append(
                    f"{rel}:{lineno}: bare {m.group(0)} suppresses every "
                    f"check; name the check: NOLINT(<check>): <reason>")
                continue
            if "seesaw-" not in checks:
                continue  # other tools' suppressions are not ours
            if m.group(0).startswith("NOLINTEND"):
                continue  # closes a justified NOLINTBEGIN region
            jm = JUSTIFIED_RE.search(line[m.start():])
            words = jm.group(2).split() if jm else []
            if len(words) < MIN_JUSTIFICATION_WORDS:
                problems.append(
                    f"{rel}:{lineno}: NOLINT{checks} needs a "
                    f"justification -- write "
                    f"'// NOLINT{checks}: <why this is safe>' "
                    f"({MIN_JUSTIFICATION_WORDS}+ words)")
        if NO_TSA_TOKEN in line and rel != NO_TSA_HOME:
            stripped = line.lstrip()
            if not stripped.startswith(("#", "//", "*")):
                jm = NO_TSA_JUSTIFIED_RE.search(line)
                words = jm.group(1).split() if jm else []
                if len(words) < MIN_JUSTIFICATION_WORDS:
                    problems.append(
                        f"{rel}:{lineno}: {NO_TSA_TOKEN} disables the "
                        f"capability analysis for the whole function; "
                        f"add a same-line '// <why the analysis cannot "
                        f"express this>' justification "
                        f"({MIN_JUSTIFICATION_WORDS}+ words)")
        if ANALYZE_IGNORE_TOKEN in line and rel != ANALYZE_IGNORE_HOME:
            jm = ANALYZE_IGNORE_JUSTIFIED_RE.search(line)
            words = jm.group(1).split() if jm else []
            if len(words) < MIN_JUSTIFICATION_WORDS:
                problems.append(
                    f"{rel}:{lineno}: {ANALYZE_IGNORE_TOKEN} hides this "
                    f"line from every seesaw-analyze invariant; write "
                    f"'// {ANALYZE_IGNORE_TOKEN}: <why the fact is a "
                    f"false positive>' "
                    f"({MIN_JUSTIFICATION_WORDS}+ words)")
    return problems


def scan_file(path: str, rel: str) -> "list[str]":
    with open(path, encoding="utf-8", errors="replace") as fh:
        return scan_lines(fh.readlines(), rel)


def self_test() -> int:
    """Negative self-test: every bad suppression form must be caught,
    every well-justified one accepted."""
    bad = [
        "int x; // NOLINT",
        "// NOLINTNEXTLINE",
        "// NOLINTNEXTLINE(seesaw-raw-random)",
        "int x; // NOLINT(seesaw-raw-random): no",
        "// NOLINTBEGIN(seesaw-lock-order)",
        "int x; // seesaw-analyze-ignore",
        "int x; // seesaw-analyze-ignore: why",
        "void f() SEESAW_NO_THREAD_SAFETY_ANALYSIS {}",
        "void f() SEESAW_NO_THREAD_SAFETY_ANALYSIS {} // recursive",
    ]
    good = [
        "int x;",
        "int x; // NOLINT(seesaw-raw-random): seeded by the harness",
        "// NOLINTNEXTLINE(seesaw-lock-order): lock proven unreachable here",
        "// NOLINTBEGIN(seesaw-lock-order): ordered by the pool invariant",
        "// NOLINTEND(seesaw-lock-order)",
        "int x; // NOLINT(clang-diagnostic-unused): not a seesaw check",
        "int x; // seesaw-analyze-ignore: alias feeds logging only",
        "void f() SEESAW_NO_THREAD_SAFETY_ANALYSIS {} "
        "// recursion the analysis cannot model",
    ]
    failures = []
    for line in bad:
        if not scan_lines([line], "selftest.cc"):
            failures.append(f"NOT caught (should fail): {line!r}")
    for line in good:
        got = scan_lines([line], "selftest.cc")
        if got:
            failures.append(f"false positive on {line!r}: {got}")
    for f in failures:
        print(f"SELF-TEST FAIL: {f}")
    if failures:
        return 1
    print(f"OK: self-test caught all {len(bad)} bad forms, "
          f"accepted all {len(good)} good forms")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    problems = []
    scanned = 0
    for top in SCAN_DIRS:
        root_dir = os.path.join(args.repo, top)
        for dirpath, _, filenames in os.walk(root_dir):
            rel_dir = os.path.relpath(dirpath, args.repo)
            if any(rel_dir.startswith(skip) for skip in SKIP_DIRS):
                continue
            for name in sorted(filenames):
                if not name.endswith(EXTENSIONS):
                    continue
                scanned += 1
                path = os.path.join(dirpath, name)
                problems.extend(scan_file(path, os.path.relpath(
                    path, args.repo)))

    for p in problems:
        print(p)
    if problems:
        return 1
    print(f"OK: no unjustified seesaw NOLINT suppressions "
          f"({scanned} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
