#!/usr/bin/env python3
"""Drive the seesaw-analyze pipeline: extract -> merge -> check.

Runs the Clang LibTooling extract tool (tools/analyze/SeesawExtract.cc)
once per TU of compile_commands.json, scans ``#include`` edges between
src/ modules with a plain-text pass (deliberately not done in the
Clang tool: the text scan is stable across Clang versions and testable
without the toolchain), merges everything into one facts document, and
hands it to seesaw_analyze_check, which enforces the five
whole-program invariants (DESIGN.md "Whole-program static analysis").

Exits 77 (the ctest SKIP convention) when the extract tool was not
built — machines without Clang dev packages — unless --require is
given; CI passes --require so a skip there is a failure.
"""

import argparse
import json
import multiprocessing.pool
import os
import re
import subprocess
import sys

SKIP = 77

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')

# TUs whose facts matter: the simulator and its tests/benches/examples
# (test TUs count as stat collectors). Tool sources are not simulator
# surface.
TU_RE = re.compile(r"/(src|tests|bench|examples)/.*\.cc$")

FACT_ARRAYS = [
    "tus", "config_fields", "key_fields", "geometry_fields",
    "hash_fields", "config_reads", "includes", "stat_regs",
    "stat_reads", "members", "mutations", "calls", "overrides",
    "ignores",
]


def scan_includes(repo: str) -> "list[dict]":
    """#include edges between repo files, from a plain-text scan of
    src/ (the layer-DAG check only concerns src/ modules)."""
    edges = []
    src = os.path.join(repo, "src")
    for dirpath, _, files in os.walk(src):
        for name in sorted(files):
            if not name.endswith((".hh", ".cc")):
                continue
            path = os.path.join(dirpath, name)
            rel_from = os.path.relpath(path, repo)
            with open(path, encoding="utf-8") as fh:
                for line in fh:
                    m = INCLUDE_RE.match(line)
                    if not m:
                        continue
                    # Project includes are spelled repo-relative to
                    # src/ ("tlb/tlb.hh").
                    to = m.group(1)
                    if os.path.exists(os.path.join(src, to)):
                        edges.append({"from": rel_from,
                                      "to": "src/" + to})
    return edges


def merge_facts(documents: "list[dict]",
                includes: "list[dict]") -> dict:
    """Union per-TU facts into one document (dedup + stable order)."""
    merged = {"schema": 1}
    for key in FACT_ARRAYS:
        seen = set()
        out = []
        items = [e for doc in documents for e in doc.get(key, [])]
        if key == "includes":
            items = items + includes
        for item in items:
            canon = json.dumps(item, sort_keys=True)
            if canon not in seen:
                seen.add(canon)
                out.append(item)
        out.sort(key=lambda e: json.dumps(e, sort_keys=True))
        merged[key] = out
    return merged


def compile_db_tus(build_dir: str, repo: str) -> "list[str]":
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        sys.exit(f"error: {db_path} not found (configure with cmake "
                 f"first; CMAKE_EXPORT_COMPILE_COMMANDS is on by "
                 f"default)")
    with open(db_path, encoding="utf-8") as fh:
        entries = json.load(fh)
    repo_real = os.path.realpath(repo)
    tus = []
    for entry in entries:
        path = os.path.realpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        if path.startswith(repo_real + os.sep) and TU_RE.search(path):
            tus.append(path)
    return sorted(set(tus))


def run_extract(extract: str, build_dir: str, repo: str,
                tu: str) -> "tuple[str, dict | None, str]":
    cmd = [extract, "-p", build_dir, f"--repo={repo}", tu]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        return tu, None, proc.stderr.strip() or "exit " + str(
            proc.returncode)
    try:
        return tu, json.loads(proc.stdout), ""
    except json.JSONDecodeError as exc:
        return tu, None, f"bad facts JSON: {exc}"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    repo_default = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument("--repo", default=repo_default)
    parser.add_argument("--build-dir", default=None,
                        help="build tree with compile_commands.json "
                             "(default: <repo>/build)")
    parser.add_argument("--extract", default=None,
                        help="seesaw_extract binary (default: "
                             "<build-dir>/tools/seesaw_extract)")
    parser.add_argument("--check", default=None,
                        help="seesaw_analyze_check binary (default: "
                             "<build-dir>/tools/seesaw_analyze_check)")
    parser.add_argument("--out", default=None,
                        help="merged facts path (default: "
                             "<build-dir>/analyze/facts.json)")
    parser.add_argument("--jobs", type=int,
                        default=os.cpu_count() or 2)
    parser.add_argument("--werror", action="store_true",
                        help="check phase treats warnings as errors")
    parser.add_argument("--require", action="store_true",
                        help="fail (not SKIP) when the extract tool "
                             "is missing — set in CI")
    parser.add_argument("--merge-only", action="store_true",
                        help="write the merged facts but skip the "
                             "check phase")
    args = parser.parse_args()

    build_dir = args.build_dir or os.path.join(args.repo, "build")
    extract = args.extract or os.path.join(build_dir, "tools",
                                           "seesaw_extract")
    check = args.check or os.path.join(build_dir, "tools",
                                       "seesaw_analyze_check")
    out = args.out or os.path.join(build_dir, "analyze", "facts.json")

    if not os.path.exists(extract):
        msg = (f"seesaw-analyze: extract tool not built at {extract} "
               f"(Clang dev packages missing?)")
        if args.require:
            print(f"error: {msg}", file=sys.stderr)
            return 1
        print(f"SKIP: {msg}")
        return SKIP

    tus = compile_db_tus(build_dir, args.repo)
    if not tus:
        print("error: no TUs matched in compile_commands.json",
              file=sys.stderr)
        return 1

    documents = []
    failures = []
    with multiprocessing.pool.ThreadPool(args.jobs) as pool:
        results = pool.starmap(
            run_extract,
            [(extract, build_dir, args.repo, tu) for tu in tus])
    for tu, doc, err in results:
        if doc is None:
            failures.append((tu, err))
        else:
            documents.append(doc)
    if failures:
        for tu, err in failures:
            print(f"error: extract failed for {tu}: {err}",
                  file=sys.stderr)
        return 1

    merged = merge_facts(documents, scan_includes(args.repo))
    os.makedirs(os.path.dirname(out), exist_ok=True)
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(merged, fh, indent=1)
        fh.write("\n")
    print(f"seesaw-analyze: extracted {len(documents)} TUs -> {out}")
    if args.merge_only:
        return 0

    if not os.path.exists(check):
        print(f"error: check binary not built at {check}",
              file=sys.stderr)
        return 1
    cmd = [check, "--facts", out]
    if args.werror:
        cmd.append("--werror")
    return subprocess.run(cmd).returncode


if __name__ == "__main__":
    sys.exit(main())
