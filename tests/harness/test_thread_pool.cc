/** @file Tests for the campaign thread pool. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>

#include "harness/thread_pool.hh"

namespace seesaw::harness {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SingleWorkerStillDrains)
{
    ThreadPool pool(1);
    std::atomic<int> count{0};
    for (int i = 0; i < 10; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threads(), 1u);
}

TEST(ThreadPool, ExceptionPropagatesToWait)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([] { throw std::runtime_error("cell exploded"); });
    for (int i = 0; i < 8; ++i)
        pool.submit([&count] { ++count; });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The failure does not poison later work: the pool stays usable
    // and a second wait() does not rethrow the consumed error.
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 9);
}

TEST(ThreadPool, DestructorDrainsQueueOnShutdown)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i) {
            pool.submit([&count] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
                ++count;
            });
        }
        // No wait(): the destructor must still run everything.
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, WaitThenReuse)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 2);
}

TEST(DefaultJobs, EnvOverridesHardwareConcurrency)
{
    ::setenv("SEESAW_JOBS", "7", 1);
    EXPECT_EQ(defaultJobs(), 7u);
    ::setenv("SEESAW_JOBS", "garbage", 1);
    EXPECT_GE(defaultJobs(), 1u); // falls back, never 0
    ::unsetenv("SEESAW_JOBS");
    EXPECT_GE(defaultJobs(), 1u);
}

} // namespace
} // namespace seesaw::harness
