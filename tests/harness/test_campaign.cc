/** @file Tests for campaign expansion and the parallel runner. */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "harness/runner.hh"
#include "harness/sinks.hh"
#include "sim/sim_engine.hh"
#include "workload/workload_spec.hh"

namespace seesaw::harness {
namespace {

SystemConfig
tinyConfig(L1Kind kind)
{
    SystemConfig cfg;
    cfg.l1Kind = kind;
    cfg.instructions = 30'000;
    cfg.warmupInstructions = 5'000;
    cfg.os.memBytes = 1ULL << 30;
    return cfg;
}

CampaignSpec
twoByTwo()
{
    CampaignSpec spec("test2x2");
    spec.workload(findWorkload("redis"))
        .workload(findWorkload("mcf"))
        .variant("vipt", tinyConfig(L1Kind::ViptBaseline))
        .variant("seesaw", tinyConfig(L1Kind::Seesaw));
    return spec;
}

TEST(CampaignSpec, CrossProductExpansion)
{
    CampaignSpec spec = twoByTwo();
    spec.seeds({1, 2});
    const auto cells = spec.cells();
    ASSERT_EQ(cells.size(), 8u); // 2 workloads x 2 variants x 2 seeds

    std::set<std::string> names;
    for (const auto &cell : cells)
        names.insert(cell.name);
    EXPECT_EQ(names.size(), cells.size()); // unique
    EXPECT_TRUE(names.count("redis/vipt/s1"));
    EXPECT_TRUE(names.count("mcf/seesaw/s2"));
}

TEST(CampaignSpec, SingleSeedOmitsSeedSuffix)
{
    const auto cells = twoByTwo().cells();
    ASSERT_EQ(cells.size(), 4u);
    EXPECT_EQ(cells.front().name, "redis/vipt");
}

TEST(CampaignSpec, ExplicitCellsAppendAfterCross)
{
    CampaignSpec spec = twoByTwo();
    spec.cell("custom", [] { return RunResult{}; }, 42);
    const auto cells = spec.cells();
    ASSERT_EQ(cells.size(), 5u);
    EXPECT_EQ(cells.back().name, "custom");
    EXPECT_EQ(cells.back().seed, 42u);
}

TEST(ConfigHash, DistinguishesVariantsAndIsStable)
{
    const SystemConfig a = tinyConfig(L1Kind::ViptBaseline);
    SystemConfig b = a;
    EXPECT_EQ(configHash(a), configHash(b));
    b.l1Assoc = 16;
    EXPECT_NE(configHash(a), configHash(b));
    SystemConfig c = a;
    c.seed = 99;
    EXPECT_NE(configHash(a), configHash(c));
    c.seed = a.seed;
    c.tracePath = "x";
    EXPECT_NE(configHash(a), configHash(c));
}

TEST(CampaignRunner, SerialAndParallelAreBitIdentical)
{
    RunnerOptions serial_opts;
    serial_opts.jobs = 1;
    serial_opts.progress = false;
    RunnerOptions parallel_opts;
    parallel_opts.jobs = 4;
    parallel_opts.progress = false;

    const auto serial = CampaignRunner(serial_opts).run(twoByTwo());
    const auto parallel =
        CampaignRunner(parallel_opts).run(twoByTwo());

    ASSERT_EQ(serial.results.size(), 4u);
    ASSERT_EQ(parallel.results.size(), 4u);
    for (std::size_t i = 0; i < serial.results.size(); ++i) {
        // Deterministic ordering: same cell in the same slot.
        EXPECT_EQ(serial.results[i].name, parallel.results[i].name);
        EXPECT_EQ(serial.results[i].configHash,
                  parallel.results[i].configHash);
        // Field-wise identical stats regardless of scheduling.
        EXPECT_EQ(serial.results[i].result,
                  parallel.results[i].result)
            << "cell " << serial.results[i].name
            << " diverged between serial and parallel execution";
    }
    EXPECT_EQ(serial.meta.jobs, 1u);
    EXPECT_EQ(parallel.meta.jobs, 4u);
}

TEST(CampaignRunner, MultiCoreJsonIsByteIdenticalAcrossJobCounts)
{
    // A 4-core campaign must serialize to the same bytes no matter
    // how the thread pool interleaves the cells. Wall-clock metadata
    // is the one legitimately nondeterministic part, so it is pinned
    // before serializing.
    WorkloadSpec w = findWorkload("tunk");
    w.footprintBytes = 16ULL << 20;
    w.hotSetBytes = 1ULL << 20;
    SystemConfig cfg;
    cfg.cores = 4;
    cfg.instructions = 8'000;
    cfg.warmupInstructions = 2'000;
    cfg.os.memBytes = 512ULL << 20;

    CampaignSpec spec("mcdet");
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
        SystemConfig seeded = cfg;
        seeded.seed = seed;
        spec.cell(
            "tunk/c4/s" + std::to_string(seed),
            [seeded, w] { return SimEngine(seeded, w).run(); }, seed,
            configHash(seeded));
    }

    const auto emit = [&spec](unsigned jobs) {
        RunnerOptions o;
        o.jobs = jobs;
        o.progress = false;
        auto outcome = CampaignRunner(o).run(spec);
        CampaignMetadata meta;
        meta.campaign = "mcdet";
        meta.gitDescribe = "pinned";
        meta.jobs = 1;
        meta.wallSeconds = 0.0;
        for (auto &cell : outcome.results)
            cell.wallSeconds = 0.0;
        std::ostringstream os;
        emitCampaignJson(os, meta, outcome.results);
        return os.str();
    };

    const std::string serial = emit(1);
    const std::string parallel = emit(4);
    EXPECT_EQ(serial, parallel);
    EXPECT_NE(serial.find("\"per_core\""), std::string::npos);
    EXPECT_NE(serial.find("\"cores\":4"), std::string::npos);
}

TEST(CampaignRunner, OnePassIsBitIdenticalToPerCellExecution)
{
    // The 2x2 cross-product collapses into one one-pass group per
    // workload (both variants share the front end); results must be
    // byte-for-byte the per-cell outcome, serial or parallel.
    RunnerOptions per_cell;
    per_cell.jobs = 1;
    per_cell.progress = false;
    const auto baseline = CampaignRunner(per_cell).run(twoByTwo());

    for (const unsigned jobs : {1u, 4u}) {
        RunnerOptions one_pass;
        one_pass.jobs = jobs;
        one_pass.progress = false;
        one_pass.onePass = true;
        const auto grouped = CampaignRunner(one_pass).run(twoByTwo());

        ASSERT_EQ(grouped.results.size(), baseline.results.size());
        for (std::size_t i = 0; i < baseline.results.size(); ++i) {
            EXPECT_EQ(grouped.results[i].name,
                      baseline.results[i].name);
            EXPECT_EQ(grouped.results[i].configHash,
                      baseline.results[i].configHash);
            EXPECT_EQ(grouped.results[i].result,
                      baseline.results[i].result)
                << "cell " << baseline.results[i].name
                << " diverged under one-pass grouping (jobs=" << jobs
                << ")";
        }
    }
}

TEST(CampaignRunner, OnePassSplitsIncompatibleFrontEnds)
{
    // Different seeds feed the shared front end, so they must land in
    // different groups; a custom-thunk cell (no one-pass info) rides
    // along untouched. Everything still matches per-cell execution.
    CampaignSpec spec = twoByTwo();
    spec.seeds({1, 2});
    spec.cell(
        "custom",
        [] {
            return SimEngine(tinyConfig(L1Kind::Pipt),
                             findWorkload("redis"))
                .run();
        },
        7);

    RunnerOptions per_cell;
    per_cell.jobs = 1;
    per_cell.progress = false;
    const auto baseline = CampaignRunner(per_cell).run(spec);

    RunnerOptions one_pass = per_cell;
    one_pass.onePass = true;
    std::vector<std::string> done;
    one_pass.onCellDone = [&done](const CellResult &cell) {
        done.push_back(cell.name);
    };
    const auto grouped = CampaignRunner(one_pass).run(spec);

    ASSERT_EQ(grouped.results.size(), baseline.results.size());
    for (std::size_t i = 0; i < baseline.results.size(); ++i) {
        EXPECT_EQ(grouped.results[i].name, baseline.results[i].name);
        EXPECT_EQ(grouped.results[i].result,
                  baseline.results[i].result)
            << "cell " << baseline.results[i].name;
    }
    // The completion hook fired exactly once per cell.
    EXPECT_EQ(done.size(), spec.cells().size());
    std::set<std::string> unique(done.begin(), done.end());
    EXPECT_EQ(unique.size(), done.size());
}

TEST(CampaignRunner, ExplicitSimulateCellsJoinOnePassGroups)
{
    // The simulate-cell overload records one-pass info, so explicit
    // cells group with each other when compatible.
    const WorkloadSpec w = findWorkload("redis");
    CampaignSpec spec("explicit1p");
    spec.cell("vipt", w, tinyConfig(L1Kind::ViptBaseline));
    spec.cell("seesaw", w, tinyConfig(L1Kind::Seesaw));
    const auto cells = spec.cells();
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_NE(cells[0].onePass, nullptr);
    EXPECT_EQ(cells[0].workload, "redis");
    EXPECT_EQ(cells[0].configHash,
              configHash(tinyConfig(L1Kind::ViptBaseline)));

    RunnerOptions per_cell;
    per_cell.jobs = 1;
    per_cell.progress = false;
    const auto baseline = CampaignRunner(per_cell).run(spec);
    RunnerOptions one_pass = per_cell;
    one_pass.onePass = true;
    const auto grouped = CampaignRunner(one_pass).run(spec);
    ASSERT_EQ(grouped.results.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(grouped.results[i].result,
                  baseline.results[i].result)
            << "cell " << baseline.results[i].name;
    }
}

TEST(CampaignRunner, FindResultLooksUpByName)
{
    RunnerOptions opts;
    opts.jobs = 2;
    opts.progress = false;
    CampaignSpec spec("lookup");
    spec.workload(findWorkload("redis"))
        .variant("vipt", tinyConfig(L1Kind::ViptBaseline));
    const auto outcome = CampaignRunner(opts).run(spec);
    const RunResult &r = findResult(outcome.results, "redis/vipt");
    EXPECT_EQ(r.workload, "redis");
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(outcome.results[0].wallSeconds, 0.0);
}

} // namespace
} // namespace seesaw::harness
