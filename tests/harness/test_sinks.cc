/** @file Tests for the JSON/CSV campaign result sinks. */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/json.hh"
#include "harness/sinks.hh"

namespace seesaw::harness {
namespace {

// ----------------------------------------------------------------- //
// A deliberately tiny recursive-descent JSON parser — test-only, so //
// the round-trip check does not trust the writer to verify itself.  //
// ----------------------------------------------------------------- //

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> members;

    const JsonValue &
    at(const std::string &key) const
    {
        auto it = members.find(key);
        EXPECT_NE(it, members.end()) << "missing key " << key;
        static const JsonValue none;
        return it == members.end() ? none : it->second;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWs();
        EXPECT_EQ(pos_, text_.size()) << "trailing JSON garbage";
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        EXPECT_LT(pos_, text_.size()) << "unexpected end of JSON";
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    expect(char c)
    {
        EXPECT_EQ(peek(), c);
        ++pos_;
    }

    JsonValue
    parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': {
            JsonValue v;
            v.kind = JsonValue::Kind::String;
            v.str = parseString();
            return v;
          }
          case 't':
          case 'f': {
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            v.b = text_[pos_] == 't';
            pos_ += v.b ? 4 : 5;
            return v;
          }
          case 'n': {
            pos_ += 4;
            return JsonValue{};
          }
          default: return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        expect('{');
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            const std::string key = parseString();
            expect(':');
            v.members.emplace(key, parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        expect('[');
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.items.push_back(parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                const unsigned code = static_cast<unsigned>(
                    std::stoul(text_.substr(pos_, 4), nullptr, 16));
                pos_ += 4;
                EXPECT_LT(code, 0x80u) << "test parser is ASCII-only";
                out += static_cast<char>(code);
                break;
              }
              default: ADD_FAILURE() << "bad escape \\" << esc;
            }
        }
        ++pos_; // closing quote
        return out;
    }

    JsonValue
    parseNumber()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        std::size_t used = 0;
        v.num = std::stod(text_.substr(pos_), &used);
        pos_ += used;
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

// ----------------------------------------------------------------- //

TEST(JsonWriter, EscapesEverythingJsonDemands)
{
    EXPECT_EQ(JsonWriter::escape("plain"), "plain");
    EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(JsonWriter::escape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(JsonWriter::escape("line\nbreak"), "line\\nbreak");
    EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
    EXPECT_EQ(JsonWriter::escape(std::string("nul\x01rest")),
              "nul\\u0001rest");
    EXPECT_EQ(JsonWriter::escape("\r\b\f"), "\\r\\b\\f");
}

TEST(JsonWriter, WritesWellFormedNestedDocument)
{
    std::ostringstream os;
    {
        JsonWriter json(os);
        json.beginObject()
            .field("name", "a \"quoted\" name")
            .field("count", std::uint64_t{42})
            .field("ratio", 0.5)
            .field("flag", true);
        json.key("list").beginArray().value(1).value(2).endArray();
        json.endObject();
    }
    const std::string text = os.str();
    JsonValue root = JsonParser(text).parse();
    EXPECT_EQ(root.at("name").str, "a \"quoted\" name");
    EXPECT_EQ(root.at("count").num, 42.0);
    EXPECT_EQ(root.at("ratio").num, 0.5);
    EXPECT_TRUE(root.at("flag").b);
    ASSERT_EQ(root.at("list").items.size(), 2u);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    std::ostringstream os;
    {
        JsonWriter json(os);
        json.beginObject()
            .field("nan", std::nan(""))
            .field("inf", std::numeric_limits<double>::infinity())
            .endObject();
    }
    JsonValue root = JsonParser(os.str()).parse();
    EXPECT_EQ(root.at("nan").kind, JsonValue::Kind::Null);
    EXPECT_EQ(root.at("inf").kind, JsonValue::Kind::Null);
}

RunResult
distinctiveResult()
{
    RunResult r;
    r.workload = "redis \"hot\"\nshard";
    r.instructions = 123456789;
    r.cycles = 987654321;
    r.ipc = 1.6180339887498949;
    r.l1Accesses = 18133;
    r.l1Mpki = 28.62;
    r.energyTotalNj = 4307.0642401985506;
    r.superpageCoverage = 0.953125;
    r.pageFaults = 7;
    r.ownerSupplies = 3;
    return r;
}

TEST(Sinks, JsonRoundTripsARunResult)
{
    CampaignMetadata meta;
    meta.campaign = "unit";
    meta.gitDescribe = "deadbeef-dirty";
    meta.jobs = 3;
    meta.wallSeconds = 1.25;

    CellResult cell;
    cell.name = "redis/32KB/seesaw";
    cell.seed = 17;
    cell.configHash = 0xabcdef0123456789ULL;
    cell.wallSeconds = 0.5;
    cell.result = distinctiveResult();

    std::ostringstream os;
    emitCampaignJson(os, meta, {cell});
    JsonValue root = JsonParser(os.str()).parse();

    EXPECT_EQ(root.at("campaign").str, "unit");
    EXPECT_EQ(root.at("git").str, "deadbeef-dirty");
    EXPECT_EQ(root.at("jobs").num, 3.0);
    EXPECT_EQ(root.at("cells").num, 1.0);
    ASSERT_EQ(root.at("results").items.size(), 1u);

    const JsonValue &entry = root.at("results").items[0];
    EXPECT_EQ(entry.at("cell").str, "redis/32KB/seesaw");
    EXPECT_EQ(entry.at("seed").num, 17.0);
    EXPECT_EQ(entry.at("config_hash").str, "abcdef0123456789");
    // The workload string survives quotes and newlines intact.
    EXPECT_EQ(entry.at("workload").str, "redis \"hot\"\nshard");

    const JsonValue &stats = entry.at("stats");
    EXPECT_EQ(stats.at("instructions").num, 123456789.0);
    EXPECT_EQ(stats.at("cycles").num, 987654321.0);
    EXPECT_DOUBLE_EQ(stats.at("ipc").num, 1.6180339887498949);
    EXPECT_DOUBLE_EQ(stats.at("energy_total_nj").num,
                     4307.0642401985506);
    EXPECT_DOUBLE_EQ(stats.at("superpage_coverage").num, 0.953125);
    EXPECT_EQ(stats.at("page_faults").num, 7.0);
    EXPECT_EQ(stats.at("owner_supplies").num, 3.0);
    // Every declared field is present.
    EXPECT_EQ(stats.members.size(),
              resultFields(RunResult{}).size());
}

TEST(Sinks, CsvHeaderIsStable)
{
    // Downstream tooling keys on these column names; treat the header
    // as an append-only contract. If you add a RunResult stat, extend
    // this golden string — never reorder or rename existing columns.
    EXPECT_EQ(
        csvHeader(),
        "campaign,git,cell,seed,config_hash,wall_seconds,workload,"
        "instructions,cycles,ipc,runtime_ns,l1_accesses,l1_hits,"
        "l1_misses,l1_mpki,fast_hits,l2_accesses,l2_hits,llc_accesses,"
        "llc_hits,dram_accesses,tft_lookups,tft_hits,superpage_refs,"
        "superpage_refs_tft_miss,superpage_refs_tft_miss_l1_hit,"
        "superpage_refs_tft_miss_l1_miss,superpage_coverage,"
        "superpage_ref_fraction,energy_total_nj,l1_cpu_dynamic_nj,"
        "l1_coherence_dynamic_nj,l1_leakage_nj,outer_nj,"
        "translation_nj,l1i_accesses,l1i_misses,squashes,probes,"
        "probe_hits,owner_supplies,wp_accuracy,promotions,splinters,"
        "page_faults,prefetch_issued,prefetch_useful,prefetch_late,"
        "prefetch_illegal_crossing");
}

TEST(Sinks, CsvQuotesAwkwardFieldsAndMatchesHeaderWidth)
{
    CampaignMetadata meta;
    meta.campaign = "unit";
    meta.gitDescribe = "v1,comma"; // forces quoting
    CellResult cell;
    cell.name = "redis/32KB/seesaw";
    cell.result = distinctiveResult();

    std::ostringstream os;
    emitCampaignCsv(os, meta, {cell});
    std::istringstream in(os.str());
    std::string header, row;
    ASSERT_TRUE(std::getline(in, header));
    ASSERT_TRUE(std::getline(in, row));
    EXPECT_EQ(header, csvHeader());
    EXPECT_NE(row.find("\"v1,comma\""), std::string::npos);
    // The workload contains a quote and a newline -> quoted and the
    // embedded quote doubled.
    EXPECT_NE(row.find("\"redis \"\"hot\"\""), std::string::npos);
}

TEST(Sinks, WritesSinksAtomicallyWithNoTempResidue)
{
    std::string templ =
        (std::filesystem::temp_directory_path() /
         "seesaw-sinks-XXXXXX")
            .string();
    const std::string dir = ::mkdtemp(templ.data());
    ASSERT_FALSE(dir.empty());

    CampaignMetadata meta;
    meta.campaign = "unit";
    CellResult cell;
    cell.name = "redis/32KB/seesaw";
    cell.result = distinctiveResult();
    const auto paths = writeCampaignSinks(meta, {cell}, dir);

    // Both sinks were published via tmp-file+rename: the final files
    // exist, non-empty, and no half-written *.tmp siblings survive.
    ASSERT_EQ(paths.size(), 2u);
    std::size_t files = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        EXPECT_NE(entry.path().extension(), ".tmp")
            << entry.path() << " left behind";
        EXPECT_GT(entry.file_size(), 0u);
        ++files;
    }
    EXPECT_EQ(files, 2u);
    std::filesystem::remove_all(dir);
}

TEST(Sinks, MutableFieldListIsTheOneTheSinksSerialize)
{
    // The store writes results back through mutableResultFields();
    // if it ever diverged from resultFields() the two directions
    // would silently disagree. Same names, same order, same kinds.
    RunResult r;
    const auto fields = resultFields(r);
    const auto mut = mutableResultFields(r);
    ASSERT_EQ(fields.size(), mut.size());
    for (std::size_t i = 0; i < fields.size(); ++i) {
        EXPECT_STREQ(fields[i].name, mut[i].name);
        EXPECT_EQ(fields[i].integral, mut[i].integral);
        // Each pointer targets the live RunResult.
        if (mut[i].integral) {
            *mut[i].u = i + 1;
            EXPECT_EQ(resultFields(r)[i].u, i + 1);
        } else {
            *mut[i].d = 0.5 + static_cast<double>(i);
            EXPECT_DOUBLE_EQ(resultFields(r)[i].d,
                             0.5 + static_cast<double>(i));
        }
    }
}

TEST(Sinks, ResultFieldCountMatchesCsvColumns)
{
    const auto fields = resultFields(RunResult{});
    std::size_t commas = 0;
    for (const char c : csvHeader())
        commas += c == ',';
    // 7 metadata columns precede the stats.
    EXPECT_EQ(commas + 1, fields.size() + 7);
}

} // namespace
} // namespace seesaw::harness
