#!/usr/bin/env python3
"""Compile-fail tests for the thread-safety annotation layer.

Feeds known-bad snippets (an unguarded write, a ...Locked() helper
missing SEESAW_REQUIRES, a double acquire) through a Clang
``-Wthread-safety -Werror`` compile and asserts the expected
diagnostic, proving the CI gate actually rejects the bug classes the
annotations exist for.  Each snippet names its expected diagnostic in
an ``// EXPECT-ERROR: <regex>`` comment; a snippet without the marker
(the control) must compile cleanly, which also guards against the
whole suite "passing" because of an unrelated breakage.

As a final step the driver mutates a copy of the real
``src/harness/thread_pool.cc`` — deleting the lock acquisition in
``submit()`` — and asserts the analysis rejects it, so the gate is
exercised against production source, not just toy snippets
(and the unmutated file is compiled first as its own control).

Exit codes:
  0   every expectation held
  1   a snippet compiled when it must not, failed when it must not,
      or produced the wrong diagnostic
  77  no Clang compiler available (thread-safety analysis is a Clang
      extension) -- ctest maps this to SKIP via SKIP_RETURN_CODE
"""

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile

SKIP = 77

EXPECT_RE = re.compile(r"//\s*EXPECT-ERROR:\s*(?P<pattern>.+?)\s*$")

MUTATION_CONTEXT = (
    "        MutexLock lock(mutex_);\n"
    "        queue_.push_back(std::move(task));"
)
MUTATION_REPLACEMENT = "        queue_.push_back(std::move(task));"
MUTATION_EXPECT = r"requires holding mutex 'mutex_'"


def skip(reason: str) -> "NoReturn":
    print(f"SKIP: {reason}")
    sys.exit(SKIP)


def find_clang(explicit: str) -> str:
    """Locate a Clang C++ compiler or exit 77."""
    candidates = [explicit] if explicit else []
    candidates += [
        os.environ.get("SEESAW_CLANGXX", ""),
        "clang++",
        "clang++-19",
        "clang++-18",
        "clang++-17",
        "clang++-16",
        "clang++-15",
        "clang++-14",
    ]
    for candidate in candidates:
        if not candidate:
            continue
        path = shutil.which(candidate)
        if not path:
            continue
        proc = subprocess.run([path, "--version"], capture_output=True,
                              text=True, check=False)
        if proc.returncode == 0 and "clang" in proc.stdout.lower():
            return path
    skip("no Clang C++ compiler found (thread-safety analysis needs "
         "Clang; set SEESAW_CLANGXX to override)")


def compile_file(clang: str, src_dir: str, path: str) -> "tuple[int, str]":
    proc = subprocess.run(
        [
            clang,
            "-fsyntax-only",
            "-std=c++20",
            f"-I{src_dir}",
            "-Wthread-safety",
            "-Wthread-safety-beta",
            "-Werror",
            path,
        ],
        capture_output=True,
        text=True,
        check=False,
    )
    return proc.returncode, proc.stderr


def expected_pattern(path: str) -> "str | None":
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            m = EXPECT_RE.search(line)
            if m:
                return m.group("pattern")
    return None


def check_snippet(clang: str, src_dir: str, path: str) -> bool:
    name = os.path.basename(path)
    pattern = expected_pattern(path)
    rc, stderr = compile_file(clang, src_dir, path)
    if pattern is None:
        if rc != 0:
            print(f"FAIL {name}: control snippet must compile cleanly:")
            print(stderr)
            return False
        print(f"ok   {name}: control compiles cleanly")
        return True
    if rc == 0:
        print(f"FAIL {name}: compiled cleanly but must be rejected "
              f"(expected /{pattern}/)")
        return False
    if not re.search(pattern, stderr):
        print(f"FAIL {name}: rejected, but without the expected "
              f"diagnostic /{pattern}/; stderr was:")
        print(stderr)
        return False
    print(f"ok   {name}: rejected with /{pattern}/")
    return True


def check_mutation(clang: str, src_dir: str) -> bool:
    """Seed a violation into thread_pool.cc and require a rejection."""
    original = os.path.join(src_dir, "harness", "thread_pool.cc")
    with open(original, encoding="utf-8") as fh:
        source = fh.read()

    rc, stderr = compile_file(clang, src_dir, original)
    if rc != 0:
        print("FAIL mutation control: pristine thread_pool.cc must "
              "pass the thread-safety build:")
        print(stderr)
        return False
    print("ok   mutation control: pristine thread_pool.cc passes")

    if MUTATION_CONTEXT not in source:
        print("FAIL mutation: thread_pool.cc no longer contains the "
              "expected submit() lock context; update "
              "run_compile_fail.py's MUTATION_CONTEXT")
        return False
    mutated = source.replace(MUTATION_CONTEXT, MUTATION_REPLACEMENT, 1)

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "thread_pool_mutated.cc")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(mutated)
        rc, stderr = compile_file(clang, src_dir, path)
    if rc == 0:
        print("FAIL mutation: submit() without the lock compiled "
              "cleanly -- the thread-safety gate is not working")
        return False
    if not re.search(MUTATION_EXPECT, stderr):
        print(f"FAIL mutation: rejected, but without the expected "
              f"diagnostic /{MUTATION_EXPECT}/; stderr was:")
        print(stderr)
        return False
    print(f"ok   mutation: unlocked submit() rejected with "
          f"/{MUTATION_EXPECT}/")
    return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clang", default="",
                        help="Clang C++ compiler to use (default: probe)")
    parser.add_argument("--src", required=True,
                        help="path to the repo's src/ directory")
    parser.add_argument("--snippets", required=True,
                        help="directory of compile-fail snippets")
    args = parser.parse_args()

    clang = find_clang(args.clang)
    print(f"using {clang}")

    snippets = sorted(
        os.path.join(args.snippets, name)
        for name in os.listdir(args.snippets)
        if name.endswith(".cc")
    )
    if not snippets:
        print(f"no snippets under {args.snippets}")
        return 1

    ok = True
    for snippet in snippets:
        ok = check_snippet(clang, args.src, snippet) and ok
    ok = check_mutation(clang, args.src) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
