#!/usr/bin/env python3
"""Extraction-phase fixture test for seesaw-analyze.

Runs the seesaw_extract Clang tool over the miniature repo in
fixtures/analyze/repo/ (its MiniConfig/miniKey/miniHash names are
remapped via the tool's --config-struct/--key-fn/... options), merges
the per-TU facts with scripts/analyze.py's merge_facts, normalizes
away source line numbers, and diffs against golden_facts.json. This
pins the whole extraction surface: type-based field provenance,
front/indexed/param base classification, definitional-function field
sets, stat registration + ctor-init handle binds, the owning-member
graph, cross-class mutations, the call graph, overrides, and the
seesaw-analyze-ignore escape.

Exits 77 (ctest SKIP) when the extract tool is not built — machines
without Clang dev packages. Pass --update-golden to regenerate the
golden after an intentional extractor change.
"""

import argparse
import json
import os
import subprocess
import sys

SKIP = 77

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
FIXREPO = os.path.join(HERE, "fixtures", "analyze", "repo")
GOLDEN = os.path.join(HERE, "fixtures", "analyze", "golden_facts.json")
TUS = ["src/fix/front.cc", "src/fix/sub.cc"]

sys.path.insert(0, os.path.join(REPO, "scripts"))
import analyze  # noqa: E402  (scripts/analyze.py: merge_facts)


def normalize(doc: dict) -> dict:
    """Keep only the fact arrays; drop source line numbers (they churn
    with unrelated edits) and impose a canonical order."""
    out = {}
    for key in analyze.FACT_ARRAYS:
        items = []
        for item in doc.get(key, []):
            if isinstance(item, dict):
                item = {k: v for k, v in item.items() if k != "line"}
            items.append(item)
        items.sort(key=lambda e: json.dumps(e, sort_keys=True))
        out[key] = items
    return out


def run_extract(extract: str, tu: str) -> dict:
    cmd = [
        extract,
        f"--repo={FIXREPO}",
        "--config-struct=MiniConfig",
        "--key-fn=miniKey",
        "--geom-fn=miniGeom",
        "--hash-fn=miniHash",
        os.path.join(FIXREPO, tu),
        "--",
        "-std=c++17",
        f"-I{os.path.join(FIXREPO, 'src')}",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.exit(f"FAIL: extract failed for {tu}:\n{proc.stderr}")
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError as exc:
        sys.exit(f"FAIL: bad facts JSON for {tu}: {exc}\n"
                 f"{proc.stdout[:2000]}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--extract", default=os.path.join(
        REPO, "build", "tools", "seesaw_extract"))
    parser.add_argument("--update-golden", action="store_true")
    args = parser.parse_args()

    if not os.path.exists(args.extract):
        print(f"SKIP: extract tool not built at {args.extract} "
              f"(Clang dev packages missing?)")
        return SKIP

    documents = [run_extract(args.extract, tu) for tu in TUS]
    got = normalize(analyze.merge_facts(documents, []))

    if args.update_golden:
        with open(GOLDEN, "w", encoding="utf-8") as fh:
            json.dump(got, fh, indent=1)
            fh.write("\n")
        print(f"updated {GOLDEN}")
        return 0

    with open(GOLDEN, encoding="utf-8") as fh:
        want = normalize(json.load(fh))

    failed = False
    for key in analyze.FACT_ARRAYS:
        got_set = {json.dumps(e, sort_keys=True) for e in got[key]}
        want_set = {json.dumps(e, sort_keys=True) for e in want[key]}
        for extra in sorted(got_set - want_set):
            print(f"FAIL: {key}: unexpected fact: {extra}")
            failed = True
        for missing in sorted(want_set - got_set):
            print(f"FAIL: {key}: missing fact:    {missing}")
            failed = True
    if failed:
        print("hint: tests/lint/run_analyze_fixture.py "
              "--update-golden after an intentional extractor change")
        return 1
    total = sum(len(v) for v in got.values())
    print(f"PASS: extraction fixture matches golden ({total} facts)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
