// seesaw-string-stat-lookup positive fixture: by-name StatGroup
// lookups on access paths (anything that is not a constructor or a
// collection/reporting function) must be diagnosed.

#include "common/stats.hh"

class ToyTlb
{
  public:
    ToyTlb() : stats_("toy") {}

    void
    access(bool hit)
    {
        ++stats_.scalar("lookups");                  // EXPECT-WARN
        if (hit)
            ++stats_.scalar("hits");                 // EXPECT-WARN
    }

    double
    hitRate()
    {
        return stats_.get("hits");                   // EXPECT-WARN
    }

  private:
    seesaw::StatGroup stats_;
};
