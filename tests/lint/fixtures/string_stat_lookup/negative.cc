// seesaw-string-stat-lookup negative fixture: the PR 3 convention —
// handles cached in the constructor, by-name lookups only in cold
// collection functions — stays silent.

#include "common/stats.hh"

class ToyTlb
{
  public:
    ToyTlb()
        : stats_("toy"),
          stLookups_(&stats_.scalar("lookups")), // ctor: caching is fine
          stHits_(&stats_.scalar("hits"))
    {
    }

    void
    access(bool hit)
    {
        ++*stLookups_;
        if (hit)
            ++*stHits_;
    }

    /** Matches the collection allow-list: cold, by-name is fine. */
    double
    collectHitRate() const
    {
        const double lookups = stats_.get("lookups");
        return lookups > 0.0 ? stats_.get("hits") / lookups : 0.0;
    }

  private:
    seesaw::StatGroup stats_;
    seesaw::StatScalar *stLookups_;
    seesaw::StatScalar *stHits_;
};
