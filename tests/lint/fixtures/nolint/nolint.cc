// NOLINT-suppression fixture: each line below would be diagnosed by a
// seesaw-tidy check, but carries a justified NOLINT in the project's
// required form `// NOLINT(seesaw-<check>): <reason>`.  The driver runs
// every check over this file and asserts zero diagnostics; the
// justification text itself is policed by scripts/check_nolint.py.

#include <algorithm>
#include <cstdlib>
#include <ctime>
#include <mutex>
#include <thread>
#include <vector>

struct CacheLine
{
    int id = 0;
};

bool
ptrBefore(const CacheLine *a, const CacheLine *b)
{
    // Tie-break inside a single process run; never persisted or logged.
    return a < b; // NOLINT(seesaw-pointer-ordering): intra-run tie-break only, never observable in output
}

int
harnessEntropy()
{
    return std::rand(); // NOLINT(seesaw-raw-random): fixture demonstrating the suppression convention
}

long
stamp()
{
    return static_cast<long>(
        std::time(nullptr)); // NOLINT(seesaw-wallclock-in-sim): wall time used only to name a log file
}

void
sortLines(std::vector<CacheLine *> &lines)
{
    std::sort(lines.begin(),
              lines.end()); // NOLINT(seesaw-pointer-ordering): order is re-normalised by id immediately after
}

class WorkerSet
{
  private:
    std::mutex mutex_;
    std::vector<CacheLine>
        scratch_; // NOLINT(seesaw-unguarded-shared-state): written only before the workers launch
};
