// seesaw-nondeterministic-iteration negative fixture: the sanctioned
// patterns — ordered containers, collect-then-sort, order-independent
// accumulation — stay silent.

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"

// Ordered container: iteration order is the key order.
void
emitOrdered(const std::map<int, long> &counts, seesaw::StatGroup &group)
{
    for (const auto &[key, value] : counts) {
        group.scalar("bucket_" + std::to_string(key)) +=
            static_cast<double>(value);
    }
}

// Collect-then-sort: hash order is normalised before it can escape.
std::vector<int>
collectSorted(const std::unordered_map<int, long> &counts)
{
    std::vector<int> keys;
    for (const auto &[key, value] : counts) {
        if (value > 0)
            keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
}

// Order-independent accumulation into a local.
long
total(const std::unordered_map<int, long> &counts)
{
    long sum = 0;
    for (const auto &[key, value] : counts)
        sum += value;
    return sum;
}

// Scratch container declared inside the loop body is per-element.
int
longestRun(const std::unordered_map<int, std::string> &names)
{
    int longest = 0;
    for (const auto &[key, name] : names) {
        std::vector<char> scratch;
        for (char c : name)
            scratch.push_back(c);
        longest = std::max(longest, static_cast<int>(scratch.size()));
    }
    return longest;
}
