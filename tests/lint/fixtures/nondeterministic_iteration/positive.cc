// seesaw-nondeterministic-iteration positive fixture: hash-order
// iteration that leaks into stats, streams, or unsorted result
// containers must be diagnosed.

#include <ostream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/stats.hh"

void
emitPerKeyStats(const std::unordered_map<int, long> &counts,
                seesaw::StatGroup &group)
{
    for (const auto &[key, value] : counts) {        // EXPECT-WARN
        group.scalar("bucket_" + std::to_string(key)) +=
            static_cast<double>(value);
    }
}

void
streamKeys(const std::unordered_set<int> &keys, std::ostream &os)
{
    for (int key : keys)                             // EXPECT-WARN
        os << key << '\n';
}

std::vector<int>
collectUnsorted(const std::unordered_map<int, long> &counts)
{
    std::vector<int> keys;
    for (const auto &[key, value] : counts) {
        if (value > 0)
            keys.push_back(key);                     // EXPECT-WARN
    }
    return keys; // escapes in hash order: nothing ever sorts it
}
