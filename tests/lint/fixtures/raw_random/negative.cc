// seesaw-raw-random negative fixture: drawing from the project's
// seeded Rng is the sanctioned way to be random. No diagnostics.

#include "common/random.hh"

std::uint64_t
rollDice(seesaw::Rng &rng)
{
    return 1 + rng.nextBounded(6);
}

double
sampleZipf(seesaw::Rng &rng)
{
    return static_cast<double>(rng.nextZipf(1024, 0.99));
}

bool
flip(seesaw::Rng &rng)
{
    return rng.chance(0.5);
}
