// seesaw-raw-random positive fixture: every flavour of randomness
// that bypasses the seeded Rng streams must be diagnosed.
// Lines tagged EXPECT-WARN must each carry at least one diagnostic.

#include <cstdlib>
#include <random>

int
rollDevice()
{
    std::random_device rd;                           // EXPECT-WARN
    return static_cast<int>(rd());
}

int
rollEngine()
{
    std::mt19937 gen(12345);                         // EXPECT-WARN
    std::uniform_int_distribution<int> die(1, 6);    // EXPECT-WARN
    return die(gen);
}

int
rollLibc()
{
    return std::rand();                              // EXPECT-WARN
}

double
rollDefaultEngine()
{
    std::default_random_engine engine;               // EXPECT-WARN
    std::normal_distribution<double> gauss(0.0, 1.0); // EXPECT-WARN
    return gauss(engine);
}
