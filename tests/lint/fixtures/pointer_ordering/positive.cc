// seesaw-pointer-ordering positive fixture: every way of deriving an
// order from raw pointer values must be diagnosed.

#include <algorithm>
#include <map>
#include <set>
#include <vector>

struct CacheLine
{
    int id = 0;
};

bool
evictBefore(const CacheLine *a, const CacheLine *b)
{
    return a < b;                                    // EXPECT-WARN
}

int
countBelow(CacheLine *line, CacheLine *fence)
{
    return line <= fence ? 1 : 0;                    // EXPECT-WARN
}

void
buildStructures(std::vector<CacheLine *> &lines)
{
    std::map<CacheLine *, int> rank;                 // EXPECT-WARN
    std::set<const CacheLine *> seen;                // EXPECT-WARN
    rank[lines.front()] = 0;
    seen.insert(lines.front());
    std::sort(lines.begin(), lines.end());           // EXPECT-WARN
}
