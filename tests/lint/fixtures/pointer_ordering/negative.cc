// seesaw-pointer-ordering negative fixture: ordering by stable
// identities (ids, addresses) and pointer equality tests are fine.

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

struct CacheLine
{
    int id = 0;
    std::uint64_t addr = 0;
};

bool
sameLine(const CacheLine *a, const CacheLine *b)
{
    return a == b; // equality does not order
}

void
sortById(std::vector<CacheLine *> &lines)
{
    std::sort(lines.begin(), lines.end(),
              [](const CacheLine *a, const CacheLine *b) {
                  return a->id < b->id;
              });
}

void
sortValues(std::vector<std::uint64_t> &addrs)
{
    std::sort(addrs.begin(), addrs.end()); // values, not pointers
}

int
lookupByAddr(const std::map<std::uint64_t, int> &index, std::uint64_t a)
{
    auto it = index.find(a);
    return it == index.end() ? -1 : it->second;
}
