// seesaw-wallclock-in-sim negative fixture, two halves:
//  - simulated-looking code that never reads the wall clock;
//  - the driver runs this file with AllowedPathPattern matching it,
//    standing in for src/harness, where wall time is legitimate
//    (progress meters, result timestamps).

#include <chrono>
#include <cstdint>

// Simulated time lives in cycle counters, not the host clock.
std::uint64_t
advance(std::uint64_t now, std::uint64_t latency)
{
    return now + latency;
}

// Allowed-path half: a harness-style progress meter may read the
// clock; the path allowance keeps it silent here.
double
elapsedSeconds(std::chrono::steady_clock::time_point start)
{
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start).count();
}
