// seesaw-wallclock-in-sim positive fixture: wall-clock reads inside a
// simulated component. The test driver overrides AllowedPathPattern
// so this file counts as simulated code.

#include <chrono>
#include <ctime>

long
cyclesSinceBoot()
{
    return static_cast<long>(
        std::chrono::steady_clock::now()             // EXPECT-WARN
            .time_since_epoch()
            .count());
}

double
seedFromClock()
{
    return static_cast<double>(std::time(nullptr));  // EXPECT-WARN
}

long
hostTicks()
{
    return static_cast<long>(std::clock());          // EXPECT-WARN
}
