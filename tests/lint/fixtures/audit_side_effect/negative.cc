// seesaw-audit-side-effect negative fixture: observer-only callbacks
// — reading captured state, building local scratch, reporting via the
// AuditContext — stay silent.

#include <vector>

#include "check/invariant_auditor.hh"

class ToyCache
{
  public:
    void
    registerAudits(seesaw::check::InvariantAuditor &auditor)
    {
        auditor.registerCheck(
            "toy.readonly",
            [this](seesaw::check::AuditContext &ctx) {
                // Local scratch is fine; it dies with the callback.
                std::vector<int> copies;
                for (int line : lines_)
                    copies.push_back(line);
                if (copies.size() > capacity_)
                    ctx.violation(0, "cache over capacity");
            });
    }

  private:
    std::vector<int> lines_;
    std::size_t capacity_ = 64;
};
