// seesaw-audit-side-effect positive fixture: callbacks registered
// with InvariantAuditor that mutate captured state must be diagnosed
// — audits compile out under -DSEESAW_AUDIT=OFF, so any mutation
// would make audited and audit-free builds diverge.

#include "check/invariant_auditor.hh"

class ToyCache
{
  public:
    void
    registerAudits(seesaw::check::InvariantAuditor &auditor)
    {
        auditor.registerCheck(
            "toy.mutating",
            [this, &auditor](seesaw::check::AuditContext &ctx) {
                repairs_ = repairs_ + 1;             // EXPECT-WARN
                ++observed_;                         // EXPECT-WARN
                repair();                            // EXPECT-WARN
                if (repairs_ > 3)
                    ctx.violation(0, "too many repairs");
                (void)auditor;
            });
    }

  private:
    void repair() {}
    int repairs_ = 0;
    int observed_ = 0;
};

void
registerCounterAudit(seesaw::check::InvariantAuditor &auditor,
                     int &global_counter)
{
    auditor.registerCheck(
        "toy.counter",
        [&global_counter](seesaw::check::AuditContext &ctx) {
            global_counter += 1;                     // EXPECT-WARN
            if (global_counter < 0)
                ctx.violation(0, "negative counter");
        });
}
