// seesaw-lock-order negative fixture: a consistent acquisition order
// (always Source::mutex_ before Sink::mutex_), REQUIRES-annotated
// ...Locked() helpers, and sequential (non-nested) acquisition are
// all clean — the acquisition graph is acyclic, so zero diagnostics.

#include <mutex>

#include "common/thread_annotations.hh"

using seesaw::AnnotatedMutex;
using seesaw::MutexLock;

namespace fixture {

class Sink
{
  public:
    void
    flush() SEESAW_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
    }

    AnnotatedMutex mutex_;
};

class Source
{
  public:
    // One sanctioned order: Source::mutex_, then Sink::mutex_.
    void
    emit(Sink &sink)
    {
        MutexLock lock(mutex_);
        sink.flush();
    }

    void
    push(Sink &sink)
    {
        MutexLock mine(mutex_);
        MutexLock theirs(sink.mutex_);
    }

    // Locked-helper pattern: the callee declares the precondition
    // instead of re-acquiring.
    void
    reset()
    {
        MutexLock lock(mutex_);
        resetLocked();
    }

  private:
    void
    resetLocked() SEESAW_REQUIRES(mutex_)
    {
        generation_ += 1;
    }

    AnnotatedMutex mutex_;
    unsigned long generation_ SEESAW_GUARDED_BY(mutex_) = 0;
};

// Sequential acquisition (scopes never overlap) is not nesting.
void
sequential(Sink &sink)
{
    {
        MutexLock lock(sink.mutex_);
    }
    sink.flush();
}

// Raw lock released before the next mutex is taken.
std::mutex gFirst;
std::mutex gSecond;

void
handover()
{
    gFirst.lock();
    gFirst.unlock();
    gSecond.lock();
    gSecond.unlock();
}

} // namespace fixture
