// seesaw-lock-order positive fixture: inconsistent nesting of the
// same pair of mutexes must be diagnosed on every edge of the cycle,
// whether the inner acquisition is a scoped guard, a raw .lock(), or
// a call to a function whose declaration says it locks internally
// (SEESAW_EXCLUDES) — the cross-TU case.  A re-acquire of a mutex the
// path already holds is the degenerate one-node cycle.

#include <mutex>

#include "common/thread_annotations.hh"

using seesaw::AnnotatedMutex;
using seesaw::MutexLock;

namespace fixture {

class Sink
{
  public:
    void
    flush() SEESAW_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
    }

    AnnotatedMutex mutex_;
};

class Source
{
  public:
    void
    emit(Sink &sink)
    {
        MutexLock lock(mutex_);
        sink.flush(); // EXPECT-WARN: Source::mutex_ -> Sink::mutex_
    }

    void pull(Sink &sink);

    AnnotatedMutex mutex_;
};

void
Source::pull(Sink &sink)
{
    MutexLock outer(sink.mutex_);
    MutexLock inner(mutex_); // EXPECT-WARN: Sink::mutex_ -> Source::mutex_
}

// The same cycle out of raw std::mutex operations.
std::mutex gFirst;
std::mutex gSecond;

void
rawForward()
{
    gFirst.lock();
    gSecond.lock(); // EXPECT-WARN: gFirst -> gSecond
    gSecond.unlock();
    gFirst.unlock();
}

void
guardBackward()
{
    std::lock_guard<std::mutex> outer(gSecond);
    std::lock_guard<std::mutex> inner(gFirst); // EXPECT-WARN: gSecond -> gFirst
}

// Double acquire: self-deadlock on a non-recursive mutex.
class Recursive
{
  public:
    void
    reenter()
    {
        MutexLock outer(mutex_);
        MutexLock again(mutex_); // EXPECT-WARN: already held
    }

  private:
    AnnotatedMutex mutex_;
};

} // namespace fixture
