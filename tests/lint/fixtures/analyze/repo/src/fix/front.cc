// Front-end-side fixture TU: config reads through params, the
// configs_.front() pattern and its local alias, an indexed alias, the
// key/geometry/hash definitional functions, stat registration with a
// ctor-init handle bind, and the analyze-ignore escape.
#include "fix/config.hh"

namespace fix {

class Pager
{
  public:
    explicit Pager(const OsKnobs &knobs) : memBytes_(knobs.memBytes)
    {
    }
    std::uint64_t memBytes() const { return memBytes_; }

  private:
    std::uint64_t memBytes_ = 0;
};

class Counters
{
  public:
    Counters() : hits_(&stats_.scalar("hits")) {}
    void hit() { hits_->add(1.0); }
    double hits() const { return hits_->value(); }

  private:
    StatGroup stats_;
    StatScalar *hits_ = nullptr;
};

double
sampleHits(const StatGroup &group)
{
    return group.get("hits");
}

std::string
miniKey(const MiniConfig &c)
{
    std::string key;
    key += std::to_string(c.cores);
    key += std::to_string(c.seed);
    key += std::to_string(c.os.memBytes);
    return key;
}

unsigned
miniGeom(const MiniConfig &c)
{
    return c.cores;
}

std::uint64_t
miniHash(const MiniConfig &c)
{
    return c.cores ^ c.seed ^ static_cast<std::uint64_t>(c.l1Assoc) ^
           c.os.memBytes ^ static_cast<std::uint64_t>(c.os.thp);
}

class Engine
{
  public:
    explicit Engine(std::vector<MiniConfig> configs)
        : configs_(std::move(configs)), pager_(configs_.front().os)
    {
    }

    std::uint64_t run()
    {
        const MiniConfig &front = configs_.front();
        std::uint64_t acc = front.seed;
        for (unsigned i = 0; i < front.cores; ++i)
            acc += step(i);
        return acc + pager_.memBytes();
    }

  private:
    std::uint64_t step(unsigned i)
    {
        const MiniConfig &sub = configs_[i];
        counters_.hit();
        return static_cast<std::uint64_t>(sub.l1Assoc);
    }

    std::vector<MiniConfig> configs_;
    Pager pager_;
    Counters counters_;
};

std::uint64_t
driveEngine(std::vector<MiniConfig> configs)
{
    Engine engine(std::move(configs));
    return engine.run();
}

std::uint64_t
ignoredRead(const MiniConfig &c)
{
    return c.seed + 1; // seesaw-analyze-ignore: fixture suppression sample
}

} // namespace fix
