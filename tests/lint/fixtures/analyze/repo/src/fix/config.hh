// Miniature config + stats surface for the seesaw-extract fixture.
// The extractor keys on *names* (the configured --config-struct and
// the StatGroup/StatScalar class names), so this standalone mini repo
// exercises the same extraction paths as the real tree.
#ifndef FIXTURE_CONFIG_HH
#define FIXTURE_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

namespace fix {

struct OsKnobs {
    std::uint64_t memBytes = 0;
    bool thp = false;
};

struct MiniConfig {
    unsigned cores = 1;
    std::uint64_t seed = 0;
    int l1Assoc = 8;
    OsKnobs os;
};

class StatScalar
{
  public:
    void add(double d) { v_ += d; }
    double value() const { return v_; }

  private:
    double v_ = 0.0;
};

class StatGroup
{
  public:
    StatScalar &scalar(const char *) { return s_; }
    double get(const char *) const { return 0.0; }

  private:
    StatScalar s_;
};

} // namespace fix

#endif // FIXTURE_CONFIG_HH
