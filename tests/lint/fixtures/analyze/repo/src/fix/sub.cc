// Substrate-side fixture TU: a borrowed-config member read (classified
// "indexed" via the config_ member-name convention), a cross-class
// mutation, an owning/non-owning member pair, and a virtual override.
#include "fix/config.hh"

namespace fix {

class Backing
{
  public:
    std::uint64_t bump() { return ++calls_; }

  private:
    std::uint64_t calls_ = 0;
};

class Cacheish
{
  public:
    explicit Cacheish(const MiniConfig &config) : config_(config) {}
    int ways() const { return config_.l1Assoc; }
    std::uint64_t fill(Backing &backing) { return backing.bump(); }

  private:
    const MiniConfig &config_;
    Backing local_;
};

class BaseModel
{
  public:
    virtual ~BaseModel() = default;
    virtual void tick() {}
};

class FastModel : public BaseModel
{
  public:
    ~FastModel() override = default;
    void tick() override { ++ticks_; }

  private:
    unsigned ticks_ = 0;
};

} // namespace fix
