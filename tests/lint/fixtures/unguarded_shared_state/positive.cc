// seesaw-unguarded-shared-state positive fixture: mutable, non-atomic
// members of classes that own a mutex (AnnotatedMutex or a raw
// std::mutex) but carry no SEESAW_GUARDED_BY annotation must be
// diagnosed — they are invisible to the thread-safety analysis.

#include <cstddef>
#include <mutex>
#include <string>

#include "common/thread_annotations.hh"

namespace fixture {

class Counters
{
  private:
    seesaw::AnnotatedMutex mutex_;
    std::size_t hits_ = 0;   // EXPECT-WARN
    double hitRatio_ = 0.0;  // EXPECT-WARN
    std::string label_;      // EXPECT-WARN
};

class RawMutexOwner
{
  private:
    std::mutex mutex_;
    unsigned long total_ = 0; // EXPECT-WARN
    bool dirty_ = false;      // EXPECT-WARN
};

} // namespace fixture
