// seesaw-unguarded-shared-state negative fixture: every member of a
// mutex-owning class is accounted for — annotated with
// SEESAW_GUARDED_BY / SEESAW_PT_GUARDED_BY, const, a reference, an
// atomic, or a synchronization/thread-handle type.  Classes without a
// mutex member make no locking promises and are never examined.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"

namespace fixture {

class Guarded
{
  public:
    explicit Guarded(const std::string &name) : name_(name) {}

  private:
    seesaw::AnnotatedMutex mutex_;
    std::size_t hits_ SEESAW_GUARDED_BY(mutex_) = 0;
    std::string *items_ SEESAW_PT_GUARDED_BY(mutex_) = nullptr;
    const double scale_ = 1.0;
    const std::string &name_;
    std::atomic<unsigned> fast_{0};
    std::condition_variable wake_;
    std::thread worker_;
    std::vector<std::thread> pool_;
};

class RawGuarded
{
  private:
    std::mutex mutex_;
    unsigned long total_ SEESAW_GUARDED_BY(mutex_) = 0;
};

class NoMutex
{
  private:
    int anything_ = 0;
    double atAll_ = 0.0;
};

} // namespace fixture
