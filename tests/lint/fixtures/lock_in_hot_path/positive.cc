// seesaw-lock-in-hot-path positive fixture: mutex acquisition inside
// or reachable from a per-access root method must be diagnosed — a
// direct scoped guard in the root itself, a call to a function whose
// declaration says it locks internally (SEESAW_EXCLUDES, the
// cross-TU case), and the guard inside that callee's in-TU body.
// The test overrides HotPathRootPattern to ^fixture::Engine::access$.

#include <mutex>

#include "common/thread_annotations.hh"

namespace fixture {

class Stats
{
  public:
    void
    publish() SEESAW_EXCLUDES(mutex_)
    {
        seesaw::MutexLock lock(mutex_); // EXPECT-WARN: reachable from the root
    }

  private:
    seesaw::AnnotatedMutex mutex_;
};

class Engine
{
  public:
    unsigned long
    access(unsigned long addr)
    {
        std::lock_guard<std::mutex> lock(tableMutex_); // EXPECT-WARN: guard in the root
        table_ += addr;
        stats_.publish(); // EXPECT-WARN: callee locks internally
        return table_;
    }

  private:
    Stats stats_;
    std::mutex tableMutex_;
    unsigned long table_ = 0;
};

} // namespace fixture
