// seesaw-lock-in-hot-path negative fixture: the per-access root is a
// pure function of its inputs; locking confined to harness-side code
// that is not reachable from the root produces zero diagnostics.
// The test overrides HotPathRootPattern to ^fixture::Engine::access$.

#include <mutex>

#include "common/thread_annotations.hh"

namespace fixture {

class Recorder
{
  public:
    void
    record() SEESAW_EXCLUDES(mutex_)
    {
        seesaw::MutexLock lock(mutex_);
        count_ += 1;
    }

  private:
    seesaw::AnnotatedMutex mutex_;
    unsigned long count_ SEESAW_GUARDED_BY(mutex_) = 0;
};

class Engine
{
  public:
    unsigned long
    access(unsigned long addr)
    {
        table_ ^= addr;
        return table_;
    }

  private:
    unsigned long table_ = 0;
};

// The harness drives the engine and records around it; record() is a
// caller-side sibling of access(), not reachable from it.
void
drive(Engine &engine, Recorder &recorder)
{
    engine.access(1);
    recorder.record();
}

} // namespace fixture
