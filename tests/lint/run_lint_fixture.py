#!/usr/bin/env python3
"""Run one seesaw-tidy check over one fixture and diff the diagnostics.

Fixtures mark every line that must produce a warning with an
``EXPECT-WARN`` comment; a fixture with no markers must produce zero
diagnostics.  The driver runs ``clang-tidy -load <plugin>`` restricted
to the requested checks, parses ``file:line:col: warning: ... [check]``
lines, and compares the warned line set against the marker line set.

Exit codes:
  0   diagnostics match the markers exactly
  1   mismatch (missing or unexpected diagnostics)
  77  toolchain unavailable (no clang-tidy, no plugin, or the host
      clang-tidy cannot load it) -- ctest maps this to SKIP via
      SKIP_RETURN_CODE so absence is visible, never a silent pass
"""

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile

SKIP = 77

DIAG_RE = re.compile(
    r"^(?P<file>.+?):(?P<line>\d+):\d+:\s+(?:warning|error):\s+"
    r"(?P<msg>.*)\[(?P<check>[\w.,-]+)\]\s*$"
)


def skip(reason: str) -> "NoReturn":
    print(f"SKIP: {reason}")
    sys.exit(SKIP)


def probe(clang_tidy: str, plugin: str) -> None:
    """Exit 77 unless clang-tidy exists and can load the plugin."""
    if not shutil.which(clang_tidy):
        skip(f"clang-tidy binary not found: {clang_tidy}")
    if not os.path.isfile(plugin):
        skip(f"seesaw-tidy plugin not built: {plugin}")
    # -list-checks needs an input file on some versions; feed a dummy.
    with tempfile.TemporaryDirectory() as tmp:
        dummy = os.path.join(tmp, "probe.cc")
        with open(dummy, "w", encoding="utf-8") as fh:
            fh.write("int seesaw_probe;\n")
        proc = subprocess.run(
            [
                clang_tidy,
                f"-load={plugin}",
                "-checks=-*,seesaw-*",
                "-list-checks",
                dummy,
                "--",
            ],
            capture_output=True,
            text=True,
            check=False,
        )
    if proc.returncode != 0 or "seesaw-" not in proc.stdout:
        sys.stderr.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        skip("host clang-tidy cannot load the seesaw-tidy plugin")


def expected_lines(fixture: str) -> "set[int]":
    marks = set()
    with open(fixture, encoding="utf-8") as fh:
        for lineno, text in enumerate(fh, start=1):
            if "EXPECT-WARN" in text:
                marks.add(lineno)
    return marks


def build_config(options: "list[str]") -> str:
    entries = []
    for opt in options:
        key, _, value = opt.partition("=")
        entries.append(f'{{key: "{key}", value: "{value}"}}')
    return "{CheckOptions: [" + ", ".join(entries) + "]}"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clang-tidy", default=os.environ.get(
        "SEESAW_CLANG_TIDY", "clang-tidy"))
    parser.add_argument("--plugin", required=True,
                        help="path to libSeesawTidy.so")
    parser.add_argument("--fixture", required=True)
    parser.add_argument("--checks", required=True,
                        help="comma-separated seesaw-* check names")
    parser.add_argument("--option", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="CheckOptions override, e.g. "
                             "seesaw-wallclock-in-sim.AllowedPathPattern=x")
    parser.add_argument("compile_flags", nargs="*",
                        help="flags after '--' passed to the compilation")
    args = parser.parse_args()

    probe(args.clang_tidy, args.plugin)

    fixture = os.path.abspath(args.fixture)
    cmd = [
        args.clang_tidy,
        f"-load={args.plugin}",
        f"-checks=-*,{args.checks}",
    ]
    if args.option:
        cmd.append(f"-config={build_config(args.option)}")
    cmd.append(fixture)
    cmd.append("--")
    cmd.extend(args.compile_flags or ["-std=c++20"])

    proc = subprocess.run(cmd, capture_output=True, text=True, check=False)

    got: "dict[int, list[str]]" = {}
    compile_errors = []
    for line in proc.stdout.splitlines() + proc.stderr.splitlines():
        m = DIAG_RE.match(line)
        if not m:
            continue
        checks = m.group("check")
        if "seesaw-" not in checks:
            if "error:" in line:
                compile_errors.append(line)
            continue
        if os.path.abspath(m.group("file")) != fixture:
            continue
        got.setdefault(int(m.group("line")), []).append(m.group("msg").strip())
    for line in proc.stderr.splitlines():
        # A fixture that fails to parse would vacuously "pass" its
        # negative test; surface hard clang errors as failures.
        if re.search(r":\s+error:", line) and "[clang-diagnostic" not in line:
            compile_errors.append(line)

    want = expected_lines(fixture)
    have = set(got)

    ok = True
    if compile_errors:
        ok = False
        print("fixture failed to compile:")
        for line in compile_errors[:20]:
            print(f"  {line}")
    for lineno in sorted(want - have):
        ok = False
        print(f"MISSING diagnostic at {fixture}:{lineno} (EXPECT-WARN)")
    for lineno in sorted(have - want):
        ok = False
        for msg in got[lineno]:
            print(f"UNEXPECTED diagnostic at {fixture}:{lineno}: {msg}")

    if ok:
        n = len(want)
        print(f"OK: {args.checks} on {os.path.basename(fixture)} "
              f"({n} expected warning{'s' if n != 1 else ''})")
        return 0

    print("--- clang-tidy stdout ---")
    sys.stdout.write(proc.stdout)
    print("--- clang-tidy stderr ---")
    sys.stdout.write(proc.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
