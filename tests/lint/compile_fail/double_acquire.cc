// Acquiring a mutex a scope already holds must be rejected: on a
// non-recursive mutex this is a guaranteed self-deadlock.
// EXPECT-ERROR: already held

#include "common/thread_annotations.hh"

class Door
{
  public:
    void
    slam() SEESAW_EXCLUDES(mutex_)
    {
        seesaw::MutexLock first(mutex_);
        seesaw::MutexLock second(mutex_); // deadlock
    }

  private:
    seesaw::AnnotatedMutex mutex_;
};

int
main()
{
    Door door;
    door.slam();
    return 0;
}
