// A write to a SEESAW_GUARDED_BY field without holding its mutex must
// be rejected by the thread-safety build.
// EXPECT-ERROR: requires holding mutex 'mutex_'

#include "common/thread_annotations.hh"

class Counter
{
  public:
    void
    bump()
    {
        value_ += 1; // no lock held
    }

  private:
    seesaw::AnnotatedMutex mutex_;
    unsigned long value_ SEESAW_GUARDED_BY(mutex_) = 0;
};

int
main()
{
    Counter counter;
    counter.bump();
    return 0;
}
