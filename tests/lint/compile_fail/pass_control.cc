// Control snippet (no EXPECT-ERROR): the sanctioned locking pattern —
// EXCLUDES on the public method, a scoped MutexLock, guarded state
// touched only through a REQUIRES-annotated helper — must compile
// cleanly under -Wthread-safety -Werror.  If this fails, the harness
// is broken (or the annotation layer is), not the snippets.

#include "common/thread_annotations.hh"

class Counter
{
  public:
    void
    bump() SEESAW_EXCLUDES(mutex_)
    {
        seesaw::MutexLock lock(mutex_);
        bumpLocked();
    }

  private:
    void
    bumpLocked() SEESAW_REQUIRES(mutex_)
    {
        value_ += 1;
    }

    seesaw::AnnotatedMutex mutex_;
    unsigned long value_ SEESAW_GUARDED_BY(mutex_) = 0;
};

int
main()
{
    Counter counter;
    counter.bump();
    return 0;
}
