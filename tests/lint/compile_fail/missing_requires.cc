// A ...Locked() helper that touches guarded state but forgot its
// SEESAW_REQUIRES(mutex_) annotation must be rejected: without the
// precondition the analysis sees an unguarded access inside the
// helper (and callers holding the lock get no checking either).
// EXPECT-ERROR: requires holding mutex 'mutex_'

#include "common/thread_annotations.hh"

class Store
{
  public:
    void
    flush() SEESAW_EXCLUDES(mutex_)
    {
        seesaw::MutexLock lock(mutex_);
        flushLocked();
    }

  private:
    void
    flushLocked() // forgot SEESAW_REQUIRES(mutex_)
    {
        pending_ = 0;
    }

    seesaw::AnnotatedMutex mutex_;
    unsigned long pending_ SEESAW_GUARDED_BY(mutex_) = 0;
};

int
main()
{
    Store store;
    store.flush();
    return 0;
}
