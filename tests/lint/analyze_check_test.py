#!/usr/bin/env python3
"""Mutation tests for seesaw_analyze_check (the check phase of
seesaw-analyze).

fixtures/analyze/facts_base.json is a hand-written merged-facts
document modeling the real program shape (engine front()/indexed
reads, ownership graph, call graph, stats). It must pass cleanly
under --werror; then each mutation below injects one violation and
must produce the matching diagnostic with a non-zero exit. This
proves all five invariants fail closed at the facts level without
needing the Clang toolchain (the extraction side is pinned by
run_analyze_fixture.py).

Exits 77 (ctest SKIP) only when the check binary is missing, i.e.
the build was configured with SEESAW_BUILD_ANALYZE=OFF.
"""

import argparse
import copy
import json
import os
import subprocess
import sys
import tempfile

SKIP = 77

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
BASE = os.path.join(HERE, "fixtures", "analyze", "facts_base.json")


def read(path, cls, func, base, file, write=False):
    return {"path": path, "class": cls, "func": func, "base": base,
            "file": file, "line": 1, "write": write}


# (name, mutate(facts), expected diagnostic substring)

def m_key_completeness(f):
    # A front-end-owned class starts reading a field that is not
    # serialized into frontEndKey(): divergent replay.
    f["config_reads"].append(read(
        "l1Assoc", "TranslationCache", "TranslationCache::lookup",
        "member", "src/tlb/translation_cache.cc"))


def m_key_minimality(f):
    # Key serializes a field no front-end code reads: groups split
    # for no reason.
    f["key_fields"].append("l1Assoc")


def m_hash_drift(f):
    # A declared SystemConfig field is no longer mixed into
    # configHash().
    f["hash_fields"].remove("memhog.churn")


def m_hash_stale(f):
    # configHash() mixes a field SystemConfig no longer declares.
    f["hash_fields"].append("ghostKnob")


def m_substrate_isolation(f):
    # Make CoreComplex::doMemoryAccess (which calls the OS mutator
    # mapAnonymous) reachable from the engine's per-substrate path.
    f["calls"].append({"caller": "CoreComplex::finishMemoryAccess",
                       "callee": "CoreComplex::doMemoryAccess"})


def m_layering(f):
    # cache (rank 1) must not include sim (rank 4).
    f["includes"].append({"from": "src/cache/set_assoc_cache.hh",
                          "to": "src/sim/sim_engine.hh"})


def m_orphan_stat(f):
    # Registered but never collected anywhere.
    f["stat_regs"].append({"name": "ghost_evictions", "class": "Tft",
                           "member": "stGhost_",
                           "file": "src/tlb/tft.cc", "line": 10})


def m_ownership_drift(f):
    # A per-substrate slot takes ownership of a front-end root class.
    f["members"].append({"class": "MultiConfigEngine::Substrate",
                         "member": "rogue_", "type": "Memhog",
                         "owning": True})


def m_engine_unknown_base(f):
    # An engine read whose base we cannot classify must be treated as
    # a front-end read (fail closed), tripping key completeness.
    f["config_reads"].append(read(
        "l1Assoc", "MultiConfigEngine", "MultiConfigEngine::step",
        "unknown", "src/sim/multi_config_engine.cc"))


MUTATIONS = [
    ("key-completeness", m_key_completeness,
     "front-end-key completeness: config field 'l1Assoc'"),
    ("key-minimality", m_key_minimality,
     "front-end-key minimality: key field 'l1Assoc'"),
    ("hash-drift", m_hash_drift,
     "config-hash completeness: SystemConfig field 'memhog.churn'"),
    ("hash-stale", m_hash_stale,
     "mixes 'ghostKnob'"),
    ("substrate-isolation", m_substrate_isolation,
     "substrate isolation: per-substrate class CoreComplex"),
    ("layering", m_layering,
     "layering: upward include src/cache/set_assoc_cache.hh"),
    ("orphan-stat", m_orphan_stat,
     "orphan stat: 'ghost_evictions' registered by Tft"),
    ("ownership-drift", m_ownership_drift,
     "ownership map drift: MultiConfigEngine::Substrate::rogue_"),
    ("engine-unknown-base", m_engine_unknown_base,
     "front-end-key completeness: config field 'l1Assoc'"),
]


def run_check(check, facts, tmpdir, name):
    path = os.path.join(tmpdir, name + ".json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(facts, fh)
    proc = subprocess.run([check, "--facts", path, "--werror"],
                          capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", default=os.path.join(
        REPO, "build", "tools", "seesaw_analyze_check"))
    args = parser.parse_args()

    if not os.path.exists(args.check):
        print(f"SKIP: check binary not built at {args.check} "
              f"(SEESAW_BUILD_ANALYZE=OFF?)")
        return SKIP

    with open(BASE, encoding="utf-8") as fh:
        base = json.load(fh)

    failed = False
    with tempfile.TemporaryDirectory() as tmpdir:
        rc, out = run_check(args.check, base, tmpdir, "clean")
        if rc != 0:
            print(f"FAIL: clean base facts rejected (exit {rc}):\n"
                  f"{out}")
            return 1
        print("PASS: clean base facts accepted under --werror")

        for name, mutate, expect in MUTATIONS:
            facts = copy.deepcopy(base)
            mutate(facts)
            rc, out = run_check(args.check, facts, tmpdir, name)
            if rc == 0:
                print(f"FAIL: {name}: mutation not detected")
                failed = True
            elif expect not in out:
                print(f"FAIL: {name}: exit {rc} but diagnostic "
                      f"missing {expect!r}:\n{out}")
                failed = True
            else:
                print(f"PASS: {name} fails closed")
    if failed:
        return 1
    print(f"PASS: all {len(MUTATIONS)} mutations detected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
