/**
 * @file
 * MultiConfigEngine one-pass tests:
 *  - an N-substrate pass is bit-identical to N serial SimEngine runs
 *    across all six L1 designs, mixed geometries (multiple TLB
 *    groups), the L1I extension and multi-core coherence;
 *  - OS events (promotion, splinter, unmap) broadcast to every
 *    substrate;
 *  - a desynced substrate trips its own src/check audit context while
 *    the healthy substrate stays clean.
 */

#include <gtest/gtest.h>

#include "check/invariant_auditor.hh"
#include "sim/multi_config_engine.hh"

namespace seesaw {
namespace {

WorkloadSpec
testWorkload()
{
    WorkloadSpec w = findWorkload("redis");
    w.footprintBytes = 32ULL << 20;
    w.hotSetBytes = 2ULL << 20;
    return w;
}

SystemConfig
baseConfig(L1Kind kind)
{
    SystemConfig cfg;
    cfg.l1Kind = kind;
    cfg.instructions = 40'000;
    cfg.warmupInstructions = 20'000;
    cfg.os.memBytes = 1ULL << 30;
    cfg.seed = 1;
    return cfg;
}

/** Full-structure equality with a readable first-divergence report. */
void
expectSameResult(const RunResult &one_pass, const RunResult &serial,
                 const std::string &label)
{
    EXPECT_EQ(one_pass.instructions, serial.instructions) << label;
    EXPECT_EQ(one_pass.cycles, serial.cycles) << label;
    EXPECT_EQ(one_pass.l1Accesses, serial.l1Accesses) << label;
    EXPECT_EQ(one_pass.l1Hits, serial.l1Hits) << label;
    EXPECT_EQ(one_pass.l1Misses, serial.l1Misses) << label;
    EXPECT_EQ(one_pass.tftLookups, serial.tftLookups) << label;
    EXPECT_EQ(one_pass.tftHits, serial.tftHits) << label;
    EXPECT_EQ(one_pass.dramAccesses, serial.dramAccesses) << label;
    EXPECT_EQ(one_pass.squashes, serial.squashes) << label;
    EXPECT_EQ(one_pass.probes, serial.probes) << label;
    EXPECT_EQ(one_pass.promotions, serial.promotions) << label;
    EXPECT_EQ(one_pass.splinters, serial.splinters) << label;
    EXPECT_EQ(one_pass.energyTotalNj, serial.energyTotalNj) << label;
    EXPECT_EQ(one_pass.ipc, serial.ipc) << label;
    // ... and every remaining field, doubles included.
    EXPECT_TRUE(one_pass == serial) << label;
}

void
expectOnePassMatchesSerial(const std::vector<SystemConfig> &configs,
                           const WorkloadSpec &workload)
{
    MultiConfigEngine engine(configs, workload);
    const std::vector<RunResult> one_pass = engine.run();
    ASSERT_EQ(one_pass.size(), configs.size());

    for (std::size_t i = 0; i < configs.size(); ++i) {
        const RunResult serial =
            SimEngine(configs[i], workload).run();
        expectSameResult(one_pass[i], serial,
                         "substrate " + std::to_string(i));
    }
}

TEST(MultiConfigEngine, BitIdenticalAcrossAllSixL1Designs)
{
    std::vector<SystemConfig> configs;
    for (L1Kind kind :
         {L1Kind::ViptBaseline, L1Kind::Pipt, L1Kind::Seesaw,
          L1Kind::ViptWayPredicted, L1Kind::SeesawWayPredicted,
          L1Kind::Sipt})
        configs.push_back(baseConfig(kind));
    expectOnePassMatchesSerial(configs, testWorkload());
}

TEST(MultiConfigEngine, MixedGeometriesFormMultipleTlbGroups)
{
    // Eight substrates spanning L1 sizes, partition widths, core kinds
    // and TLB shapes: the in-order and unified-TLB members each form
    // their own TLB group behind the shared front end.
    std::vector<SystemConfig> configs;

    SystemConfig a = baseConfig(L1Kind::Seesaw);
    a.l1SizeBytes = 64 * 1024;
    a.l1Assoc = 16;
    a.partitionWays = 8;
    configs.push_back(a);

    SystemConfig b = baseConfig(L1Kind::Seesaw);
    b.partitionWays = 2;
    b.policy = InsertionPolicy::FourWayEightWay;
    configs.push_back(b);

    SystemConfig c = baseConfig(L1Kind::ViptBaseline);
    c.coreKind = CoreKind::InOrder;
    configs.push_back(c);

    SystemConfig d = baseConfig(L1Kind::Seesaw);
    d.coreKind = CoreKind::InOrder;
    configs.push_back(d);

    SystemConfig e = baseConfig(L1Kind::Seesaw);
    e.unifiedL1Tlb = true;
    configs.push_back(e);

    SystemConfig f = baseConfig(L1Kind::Seesaw);
    f.schedulerCounterPolicy = false;
    configs.push_back(f);

    SystemConfig g = baseConfig(L1Kind::ViptBaseline);
    g.freqGhz = 2.80;
    configs.push_back(g);

    SystemConfig h = baseConfig(L1Kind::Pipt);
    h.piptTlbCycles = 3;
    configs.push_back(h);

    expectOnePassMatchesSerial(configs, testWorkload());
}

TEST(MultiConfigEngine, InstructionCachePathIsBitIdentical)
{
    WorkloadSpec w = testWorkload();
    w.codeFootprintBytes = 8ULL << 20;

    std::vector<SystemConfig> configs;
    for (L1Kind kind : {L1Kind::Seesaw, L1Kind::ViptBaseline}) {
        SystemConfig cfg = baseConfig(kind);
        cfg.modelInstructionCache = true;
        configs.push_back(cfg);
    }
    // A SEESAW L1D with a forced-VIPT L1I exercises the
    // keep-code-out-of-the-D-TFT routing.
    SystemConfig mixed = baseConfig(L1Kind::Seesaw);
    mixed.modelInstructionCache = true;
    mixed.icacheKind = SystemConfig::ICacheKind::Vipt;
    configs.push_back(mixed);

    expectOnePassMatchesSerial(configs, w);
}

TEST(MultiConfigEngine, MultiCoreCoherentFabricsStayIndependent)
{
    WorkloadSpec w = testWorkload();
    std::vector<SystemConfig> configs;
    for (L1Kind kind : {L1Kind::Seesaw, L1Kind::ViptBaseline}) {
        SystemConfig cfg = baseConfig(kind);
        cfg.cores = 2;
        cfg.fabric = CoherenceKind::Directory;
        configs.push_back(cfg);
    }
    expectOnePassMatchesSerial(configs, w);
}

TEST(MultiConfigEngine, PolicyAndPrefetchSubstratesStayBitIdentical)
{
    // Substrates differing only in replacement policy or prefetcher:
    // the TLB groups must fork on the replacement params (policies own
    // TLB victim side-state) while everything else stays shared, and
    // every member must match its solo run exactly.
    std::vector<SystemConfig> configs;
    for (ReplacementKind rk :
         {ReplacementKind::Lru, ReplacementKind::Fifo,
          ReplacementKind::Random, ReplacementKind::Srrip}) {
        SystemConfig cfg = baseConfig(L1Kind::Seesaw);
        cfg.replacement.kind = rk;
        configs.push_back(cfg);
    }
    for (PrefetchKind pk :
         {PrefetchKind::NextLine, PrefetchKind::Stride}) {
        SystemConfig cfg = baseConfig(L1Kind::Seesaw);
        cfg.prefetch.kind = pk;
        configs.push_back(cfg);
    }
    SystemConfig combo = baseConfig(L1Kind::ViptBaseline);
    combo.replacement.kind = ReplacementKind::Random;
    combo.prefetch.kind = PrefetchKind::NextLine;
    configs.push_back(combo);

    expectOnePassMatchesSerial(configs, testWorkload());
}

TEST(MultiConfigEngine, RandomAndPrefetchAtFourCoresStayBitIdentical)
{
    // Four cores under the directory fabric with Random victims and
    // next-line prefetch: the per-core seed derivation
    // (coreSeed ^ salt) and the prefetch fills' coherence transitions
    // must replicate exactly between grouped and solo execution.
    WorkloadSpec w = testWorkload();
    std::vector<SystemConfig> configs;
    for (ReplacementKind rk :
         {ReplacementKind::Lru, ReplacementKind::Random}) {
        SystemConfig cfg = baseConfig(L1Kind::Seesaw);
        cfg.cores = 4;
        cfg.fabric = CoherenceKind::Directory;
        cfg.replacement.kind = rk;
        cfg.prefetch.kind = PrefetchKind::NextLine;
        configs.push_back(cfg);
    }
    expectOnePassMatchesSerial(configs, w);
}

TEST(MultiConfigEngine, OsEventsBroadcastToEverySubstrate)
{
    // Aggressive OS-event schedule: several promotions and splinters
    // land inside the budget, and the pass must still match every solo
    // run exactly — proof the events reached each substrate at the
    // same instruction boundary.
    WorkloadSpec w = testWorkload();
    std::vector<SystemConfig> configs;
    for (L1Kind kind :
         {L1Kind::Seesaw, L1Kind::SeesawWayPredicted,
          L1Kind::ViptBaseline}) {
        SystemConfig cfg = baseConfig(kind);
        cfg.promotionInterval = 5'000;
        cfg.splinterInterval = 15'000;
        cfg.contextSwitchInterval = 20'000;
        configs.push_back(cfg);
    }

    MultiConfigEngine engine(configs, w);
    const std::vector<RunResult> one_pass = engine.run();
    ASSERT_EQ(one_pass.size(), configs.size());
    EXPECT_GT(one_pass[0].promotions, 0u);
    EXPECT_GT(one_pass[0].splinters, 0u);
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const RunResult serial = SimEngine(configs[i], w).run();
        expectSameResult(one_pass[i], serial,
                         "substrate " + std::to_string(i));
    }
}

TEST(MultiConfigEngine, UnmapBroadcastReachesEverySubstrate)
{
    WorkloadSpec w = testWorkload();
    std::vector<SystemConfig> configs;
    for (unsigned ways : {2u, 4u}) {
        SystemConfig cfg = baseConfig(L1Kind::Seesaw);
        cfg.partitionWays = ways;
        configs.push_back(cfg);
    }

    MultiConfigEngine engine(configs, w);
    engine.run();

    const Addr heap = Addr{1} << 40;
    const std::uint64_t bytes = 8ULL << 20;
    engine.unmapBroadcast(heap, bytes);

    for (unsigned s = 0; s < engine.substrates(); ++s) {
        // The unmapped VAs fault in the substrate's (shared) TLB view.
        const TlbLookupResult tr =
            engine.tlb(s).lookup(engine.asid(), heap);
        EXPECT_TRUE(tr.fault) << "substrate " << s;
        // And its TFT dropped every region under the unmap.
        SeesawCache *cache = engine.complex(s).seesawL1();
        ASSERT_NE(cache, nullptr);
        for (Addr va = heap; va < heap + bytes; va += 2 * 1024 * 1024)
            EXPECT_FALSE(cache->tft().lookup(va))
                << "substrate " << s << " va " << va;
    }
}

TEST(MultiConfigEngine, DesyncedSubstrateTripsItsOwnAudits)
{
    // thpEligibleFraction=0 keeps the heap base-paged, so marking any
    // heap region in one substrate's TFT fabricates a superpage that
    // the page table disavows — exactly the desync the per-substrate
    // audit contexts exist to catch.
    WorkloadSpec w = testWorkload();
    w.thpEligibleFraction = 0.0;

    std::vector<SystemConfig> configs;
    for (unsigned ways : {2u, 4u}) {
        SystemConfig cfg = baseConfig(L1Kind::Seesaw);
        cfg.promotionInterval = 0; // keep the heap base-paged
        cfg.audit.mode = check::AuditMode::End;
        configs.push_back(cfg);
        configs.back().partitionWays = ways;
    }

    MultiConfigEngine engine(configs, w);
    ASSERT_NE(engine.auditor(0), nullptr);
    ASSERT_NE(engine.auditor(1), nullptr);

    std::uint64_t violations[2] = {0, 0};
    for (unsigned s = 0; s < 2; ++s) {
        engine.auditor(s)->setViolationHandler(
            [&violations, s](const check::Violation &) {
                ++violations[s];
            });
    }

    engine.complex(1).seesawL1()->tft().markRegion(Addr{1} << 40);

    engine.auditor(0)->runAll(0);
    engine.auditor(1)->runAll(0);
    EXPECT_EQ(violations[0], 0u) << "healthy substrate flagged";
    EXPECT_GT(violations[1], 0u) << "desynced substrate not caught";
}

} // namespace
} // namespace seesaw
