/** @file Tests for the bench table renderer. */

#include <gtest/gtest.h>

#include "sim/report.hh"

namespace seesaw {
namespace {

TEST(TableReporter, RendersHeaderAndRows)
{
    TableReporter t({"workload", "improvement"});
    t.addRow({"redis", "8.2%"});
    t.addRow({"mcf", "4.1%"});
    const std::string out = t.render();
    EXPECT_NE(out.find("workload"), std::string::npos);
    EXPECT_NE(out.find("redis"), std::string::npos);
    EXPECT_NE(out.find("8.2%"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TableReporter, ColumnsArePadded)
{
    TableReporter t({"a", "b"});
    t.addRow({"longvalue", "x"});
    const std::string out = t.render();
    // Header line must be as wide as the widest row.
    const auto header_end = out.find('\n');
    const auto row_start = out.rfind('\n', out.size() - 2);
    EXPECT_EQ(out.substr(0, header_end).size(),
              out.substr(row_start + 1, out.size() - row_start - 2)
                  .size());
}

TEST(TableReporter, FmtAndPct)
{
    EXPECT_EQ(TableReporter::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(TableReporter::fmt(3.0, 0), "3");
    EXPECT_EQ(TableReporter::pct(12.345, 1), "12.3%");
}

TEST(TableReporter, EmptyTableRendersHeaderOnly)
{
    TableReporter t({"col"});
    const std::string out = t.render();
    EXPECT_NE(out.find("col"), std::string::npos);
}

} // namespace
} // namespace seesaw
