/**
 * @file
 * SimEngine unification tests:
 *  - cores=1 reproduces the pre-refactor single-core System
 *    bit-for-bit (golden stats captured from the last System build);
 *  - per-core seeds are decorrelated (SplitMix64 regression for the
 *    old `seed ^ (salt + core)` scheme);
 *  - multi-core runs honor tftAssoc, warmupInstructions and coreKind,
 *    which the old MultiCoreSystem silently ignored.
 */

#include <gtest/gtest.h>

#include <bit>

#include "sim/sim_engine.hh"

namespace seesaw {
namespace {

WorkloadSpec
goldenWorkload()
{
    WorkloadSpec w = findWorkload("redis");
    w.footprintBytes = 32ULL << 20;
    w.hotSetBytes = 2ULL << 20;
    return w;
}

SystemConfig
goldenConfig(L1Kind kind, std::uint64_t seed)
{
    SystemConfig cfg;
    cfg.l1Kind = kind;
    cfg.instructions = 60'000;
    cfg.warmupInstructions = 30'000;
    cfg.os.memBytes = 1ULL << 30;
    cfg.seed = seed;
    return cfg;
}

struct GoldenRow
{
    L1Kind kind;
    std::uint64_t seed;
    std::uint64_t instructions;
    std::uint64_t cycles;
    double ipc;
    std::uint64_t l1Accesses;
    std::uint64_t l1Hits;
    std::uint64_t l1Misses;
    std::uint64_t fastHits;
    std::uint64_t l2Accesses;
    std::uint64_t llcAccesses;
    std::uint64_t dramAccesses;
    std::uint64_t tftLookups;
    std::uint64_t tftHits;
    std::uint64_t superpageRefs;
    double energyTotalNj;
    double superpageCoverage;
    std::uint64_t squashes;
    std::uint64_t probes;
    std::uint64_t probeHits;
};

constexpr L1Kind SeesawKind = L1Kind::Seesaw;
constexpr L1Kind ViptKind = L1Kind::ViptBaseline;

// Captured from the pre-refactor System (sim/system.cc at commit
// 8b47152) on goldenWorkload()/goldenConfig(). The unified engine at
// cores=1 must reproduce every field exactly, doubles included.
const GoldenRow kGolden[] = {
    {SeesawKind, 1ULL, 60000ULL, 40666ULL, 1.4754340235085821,
     21856ULL, 19775ULL, 2081ULL, 21851ULL, 2081ULL, 1199ULL, 16ULL,
     21856ULL, 21851ULL, 21856ULL, 5308.5174311620785, 1, 2081ULL,
     2700ULL, 2445ULL},
    {SeesawKind, 2ULL, 60000ULL, 38321ULL, 1.565721145064064,
     21710ULL, 19848ULL, 1862ULL, 21707ULL, 1862ULL, 1233ULL, 15ULL,
     21710ULL, 21707ULL, 21710ULL, 5052.3264258863428, 0.9375,
     1862ULL, 2699ULL, 2430ULL},
    {SeesawKind, 3ULL, 60000ULL, 39524ULL, 1.5180649731808522,
     21609ULL, 19629ULL, 1980ULL, 21602ULL, 1980ULL, 1178ULL, 15ULL,
     21609ULL, 21602ULL, 21609ULL, 5193.4346813431557, 1, 1980ULL,
     2700ULL, 2477ULL},
    {ViptKind, 1ULL, 60000ULL, 39574ULL, 1.5161469651791579,
     21856ULL, 20031ULL, 1825ULL, 0ULL, 1825ULL, 1199ULL, 16ULL, 0ULL,
     0ULL, 0ULL, 5611.597450411351, 1, 1825ULL, 2700ULL, 2459ULL},
    {ViptKind, 2ULL, 60000ULL, 40029ULL, 1.498913287866297, 21710ULL,
     19854ULL, 1856ULL, 0ULL, 1856ULL, 1233ULL, 15ULL, 0ULL, 0ULL,
     0ULL, 5626.9119367895983, 0.9375, 1856ULL, 2699ULL, 2420ULL},
    {ViptKind, 3ULL, 60000ULL, 38715ULL, 1.5497869043006587,
     21609ULL, 19858ULL, 1751ULL, 0ULL, 1751ULL, 1178ULL, 15ULL, 0ULL,
     0ULL, 0ULL, 5523.3961416298825, 1, 1751ULL, 2700ULL, 2490ULL},
};

TEST(SimEngineGolden, SingleCoreIsBitIdenticalToPreRefactorSystem)
{
    for (const GoldenRow &g : kGolden) {
        SimEngine engine(goldenConfig(g.kind, g.seed),
                         goldenWorkload());
        const RunResult r = engine.run();
        const std::string tag =
            std::string(g.kind == SeesawKind ? "seesaw" : "vipt") +
            "/s" + std::to_string(g.seed);

        EXPECT_EQ(r.instructions, g.instructions) << tag;
        EXPECT_EQ(r.cycles, g.cycles) << tag;
        EXPECT_EQ(r.ipc, g.ipc) << tag; // exact: same division
        EXPECT_EQ(r.l1Accesses, g.l1Accesses) << tag;
        EXPECT_EQ(r.l1Hits, g.l1Hits) << tag;
        EXPECT_EQ(r.l1Misses, g.l1Misses) << tag;
        EXPECT_EQ(r.fastHits, g.fastHits) << tag;
        EXPECT_EQ(r.l2Accesses, g.l2Accesses) << tag;
        EXPECT_EQ(r.llcAccesses, g.llcAccesses) << tag;
        EXPECT_EQ(r.dramAccesses, g.dramAccesses) << tag;
        EXPECT_EQ(r.tftLookups, g.tftLookups) << tag;
        EXPECT_EQ(r.tftHits, g.tftHits) << tag;
        EXPECT_EQ(r.superpageRefs, g.superpageRefs) << tag;
        EXPECT_EQ(r.energyTotalNj, g.energyTotalNj) << tag; // exact
        EXPECT_EQ(r.superpageCoverage, g.superpageCoverage) << tag;
        EXPECT_EQ(r.squashes, g.squashes) << tag;
        EXPECT_EQ(r.probes, g.probes) << tag;
        EXPECT_EQ(r.probeHits, g.probeHits) << tag;
        EXPECT_EQ(r.cores, 1u) << tag;
        ASSERT_EQ(r.perCore.size(), 1u) << tag;
        EXPECT_EQ(r.perCore[0].cycles, g.cycles) << tag;
        EXPECT_EQ(r.perCore[0].instructions, g.instructions) << tag;
    }
}

TEST(SimEngineSeeds, CoreZeroKeepsTheConfigSeed)
{
    EXPECT_EQ(SimEngine::coreSeed(42, 0), 42u);
    EXPECT_EQ(SimEngine::coreSeed(0xdeadbeef, 0), 0xdeadbeefULL);
}

TEST(SimEngineSeeds, AdjacentCoreSeedsAvalanche)
{
    // Regression for the old `seed ^ (0x7ead0 + c)` scheme, where
    // adjacent cores' seeds differed in one or two low bits. The
    // SplitMix64 finalizer must flip about half the bits.
    for (std::uint64_t seed : {1ULL, 5ULL, 0x123456789abcdefULL}) {
        for (unsigned c = 1; c < 16; ++c) {
            const std::uint64_t a = SimEngine::coreSeed(seed, c);
            const std::uint64_t b = SimEngine::coreSeed(seed, c + 1);
            const int flipped = std::popcount(a ^ b);
            EXPECT_GE(flipped, 16) << "seed " << seed << " core " << c;
            EXPECT_LE(flipped, 48) << "seed " << seed << " core " << c;
            EXPECT_NE(a, seed);
        }
    }
}

TEST(SimEngineSeeds, AdjacentCoreReferenceStreamsAreUncorrelated)
{
    // Two cores walk the same workload (same heap, same hot set), but
    // their private-access sequences must not be phase-locked: count
    // position-wise VA collisions over a window.
    const WorkloadSpec w = goldenWorkload();
    const Addr heap_base = Addr{1} << 40;
    const std::uint64_t seed = 5;
    ReferenceStream s1(w, heap_base,
                       SimEngine::coreSeed(seed, 1) ^ 0x57ea0ULL, 1);
    ReferenceStream s2(w, heap_base,
                       SimEngine::coreSeed(seed, 2) ^ 0x57ea0ULL, 2);
    const int n = 4096;
    int same = 0;
    for (int i = 0; i < n; ++i)
        same += s1.next().va == s2.next().va ? 1 : 0;
    // Shared-region references may collide by chance; lockstep streams
    // would collide at nearly 100%.
    EXPECT_LT(same, n / 20);
}

TEST(SimEngineConfig, MultiCoreHonorsTftAssoc)
{
    SystemConfig cfg;
    cfg.cores = 4;
    cfg.instructions = 2'000;
    cfg.warmupInstructions = 0;
    cfg.os.memBytes = 512ULL << 20;
    cfg.tftAssoc = 4;
    SimEngine engine(cfg, goldenWorkload());
    for (unsigned c = 0; c < 4; ++c) {
        ASSERT_NE(engine.seesawL1(c), nullptr);
        EXPECT_EQ(engine.seesawL1(c)->tft().assoc(), 4u) << c;
    }
}

TEST(SimEngineConfig, MultiCoreHonorsWarmupInstructions)
{
    WorkloadSpec w = goldenWorkload();
    SystemConfig cfg;
    cfg.cores = 4;
    cfg.instructions = 20'000;
    cfg.warmupInstructions = 0;
    cfg.os.memBytes = 512ULL << 20;
    const RunResult cold = SimEngine(cfg, w).run();
    cfg.warmupInstructions = 20'000;
    const RunResult warm = SimEngine(cfg, w).run();

    // Both runs measure exactly the per-core budget...
    for (const PerCoreResult &pc : cold.perCore)
        EXPECT_GE(pc.instructions, 20'000u);
    for (const PerCoreResult &pc : warm.perCore)
        EXPECT_GE(pc.instructions, 20'000u);
    // ...but warmed caches measurably change the measured window.
    EXPECT_NE(cold.cycles, warm.cycles);
    EXPECT_LT(warm.l1Misses, cold.l1Misses);
}

TEST(SimEngineConfig, MultiCoreHonorsCoreKind)
{
    WorkloadSpec w = goldenWorkload();
    SystemConfig cfg;
    cfg.cores = 4;
    cfg.instructions = 10'000;
    cfg.warmupInstructions = 2'000;
    cfg.os.memBytes = 512ULL << 20;
    cfg.coreKind = CoreKind::InOrder;
    const RunResult inorder = SimEngine(cfg, w).run();
    cfg.coreKind = CoreKind::OutOfOrder;
    const RunResult ooo = SimEngine(cfg, w).run();

    // In-order pipelines have no speculative wakeup to squash, and
    // expose latencies the OoO window hides.
    EXPECT_EQ(inorder.squashes, 0u);
    EXPECT_GT(inorder.cycles, ooo.cycles);
}

} // namespace
} // namespace seesaw
