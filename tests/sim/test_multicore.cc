/** @file Integration tests for multi-core SimEngine runs with exact
 *  directory coherence. */

#include <gtest/gtest.h>

#include "sim/sim_engine.hh"

namespace seesaw {
namespace {

constexpr std::uint64_t kMB = 1ULL << 20;

WorkloadSpec
mtWorkload()
{
    WorkloadSpec w = findWorkload("tunk");
    w.footprintBytes = 16 * kMB;
    w.hotSetBytes = 1 * kMB;
    return w;
}

SystemConfig
smallConfig(unsigned cores = 4)
{
    SystemConfig c;
    c.cores = cores;
    c.l1SizeBytes = 64 * 1024;
    c.l1Assoc = 16;
    c.os.memBytes = 512 * kMB;
    c.instructions = 40'000;
    c.warmupInstructions = 20'000;
    c.seed = 5;
    return c;
}

TEST(MultiCore, RunsAndProducesSaneAggregates)
{
    SimEngine sys(smallConfig(), mtWorkload());
    const RunResult r = sys.run();

    EXPECT_EQ(r.cores, 4u);
    ASSERT_EQ(r.perCore.size(), 4u);
    EXPECT_GE(r.instructions, 4u * 40'000u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.l1Accesses, 0u);
    EXPECT_GE(r.l1Accesses, r.l1Hits);
    EXPECT_GT(r.energyTotalNj, 0.0);
    EXPECT_GT(r.superpageRefFraction, 0.5);

    // Aggregates are the sums of the per-core slices.
    std::uint64_t instr = 0, accesses = 0;
    for (const PerCoreResult &pc : r.perCore) {
        EXPECT_GE(pc.instructions, 40'000u);
        EXPECT_GT(pc.l1Accesses, 0u);
        instr += pc.instructions;
        accesses += pc.l1Accesses;
    }
    EXPECT_EQ(instr, r.instructions);
    EXPECT_EQ(accesses, r.l1Accesses);
}

TEST(MultiCore, SharingGeneratesRealProbes)
{
    // Threads share the zipf hot set: writes must invalidate remote
    // copies and dirty reads must be owner-supplied.
    SimEngine sys(smallConfig(), mtWorkload());
    const RunResult r = sys.run();
    EXPECT_GT(r.probes, 0u);
    EXPECT_GT(r.ownerSupplies, 0u);
    EXPECT_GT(r.probeInvalidations, 0u);
    EXPECT_GT(r.l1CoherenceDynamicNj, 0.0);
    // Exact tracking: the directory only probes real copies.
    EXPECT_GT(static_cast<double>(r.probeHits) / r.probes, 0.95);
}

TEST(MultiCore, DirectoryInvariantHoldsAfterRun)
{
    SimEngine sys(smallConfig(), mtWorkload());
    sys.run();
    EXPECT_TRUE(sys.checkDirectoryInvariant());
}

TEST(MultiCore, DirectoryInvariantHoldsWithOsEventsLive)
{
    // Promotion passes sweep lines out of every L1 behind the
    // fabric's back; the engine must retire the matching directory
    // records or the MOESI cross-check drifts.
    SystemConfig cfg = smallConfig(2);
    cfg.instructions = 30'000;
    cfg.warmupInstructions = 0;
    cfg.promotionInterval = 5'000;
    cfg.splinterInterval = 20'000;
    cfg.contextSwitchInterval = 10'000;
    SimEngine sys(cfg, mtWorkload());
    const RunResult r = sys.run();
    EXPECT_GT(r.promotions, 0u);
    EXPECT_TRUE(sys.checkDirectoryInvariant());
}

TEST(MultiCore, DirectoryMatchesCacheContentsExactly)
{
    // Exhaustive per-line check on a short run: every valid line in
    // core c's cache is tracked for c, and every dirty line is owned
    // by c (the invariant the probe energy accounting relies on).
    SystemConfig cfg = smallConfig(2);
    cfg.instructions = 5'000;
    cfg.warmupInstructions = 0;
    SimEngine sys(cfg, mtWorkload());
    sys.run();

    ASSERT_NE(sys.directory(), nullptr);
    for (unsigned c = 0; c < 2; ++c) {
        unsigned checked = 0;
        sys.l1(c).tags().forEachValidLine(
            [&](const CacheLine &line) {
                const Addr pa = line.lineAddr << 6;
                EXPECT_TRUE(sys.directory()->holds(c, pa));
                if (isDirtyState(line.state)) {
                    EXPECT_EQ(sys.directory()->owner(pa),
                              static_cast<int>(c));
                }
                ++checked;
            });
        EXPECT_GT(checked, 0u);
    }
    EXPECT_TRUE(sys.checkDirectoryInvariant());
}

TEST(MultiCore, SeesawProbesCostLessThanBaseline)
{
    // §IV-C1 at system level: identical sharing traffic, 4-way probes
    // under SEESAW vs full-set probes under the baseline.
    SystemConfig cfg = smallConfig();
    cfg.l1Kind = L1Kind::ViptBaseline;
    SimEngine base_sys(cfg, mtWorkload());
    const RunResult base = base_sys.run();

    cfg.l1Kind = L1Kind::Seesaw;
    SimEngine see_sys(cfg, mtWorkload());
    const RunResult see = see_sys.run();

    // Probe counts track closely (same streams, same directory
    // logic); per-probe energy is ~39% lower.
    ASSERT_GT(base.probes, 0u);
    EXPECT_NEAR(static_cast<double>(see.probes),
                static_cast<double>(base.probes),
                0.2 * base.probes);
    const double base_per_probe =
        base.l1CoherenceDynamicNj / base.probes;
    const double see_per_probe =
        see.l1CoherenceDynamicNj / see.probes;
    EXPECT_LT(see_per_probe, base_per_probe * 0.7);
}

TEST(MultiCore, SeesawSavesEnergyWithoutSlowingDown)
{
    // Under heavy coherence traffic the runtime benefit shrinks
    // toward a tie ("at worst, maintains baseline performance"); the
    // energy saving must remain strict.
    SystemConfig cfg = smallConfig();
    cfg.l1Kind = L1Kind::ViptBaseline;
    const RunResult base = SimEngine(cfg, mtWorkload()).run();
    cfg.l1Kind = L1Kind::Seesaw;
    const RunResult see = SimEngine(cfg, mtWorkload()).run();

    EXPECT_LT(static_cast<double>(see.cycles),
              static_cast<double>(base.cycles) * 1.005);
    EXPECT_LT(see.energyTotalNj, base.energyTotalNj);
}

TEST(MultiCore, MoreCoresMoreCoherenceTraffic)
{
    const RunResult two =
        SimEngine(smallConfig(2), mtWorkload()).run();
    const RunResult eight =
        SimEngine(smallConfig(8), mtWorkload()).run();
    // Probes per core-instruction grow with the sharer count.
    const double two_rate =
        static_cast<double>(two.probes) / two.instructions;
    const double eight_rate =
        static_cast<double>(eight.probes) / eight.instructions;
    EXPECT_GT(eight_rate, two_rate);
}

TEST(MultiCore, SnoopFabricProbesMoreThanDirectory)
{
    // Broadcast coherence probes every remote L1 per transaction; the
    // directory filters to actual sharers.
    SystemConfig cfg = smallConfig();
    cfg.fabric = CoherenceKind::Directory;
    const RunResult dir = SimEngine(cfg, mtWorkload()).run();
    cfg.fabric = CoherenceKind::Snoopy;
    const RunResult snoop = SimEngine(cfg, mtWorkload()).run();
    EXPECT_GT(snoop.probes, dir.probes);
    // ...and most broadcast probes miss.
    EXPECT_LT(static_cast<double>(snoop.probeHits) / snoop.probes,
              static_cast<double>(dir.probeHits) / dir.probes);
}

TEST(MultiCore, NoneFabricSharesOnlyTheLlc)
{
    SystemConfig cfg = smallConfig();
    cfg.fabric = CoherenceKind::None;
    SimEngine sys(cfg, mtWorkload());
    const RunResult r = sys.run();
    EXPECT_EQ(r.probes, 0u);
    EXPECT_EQ(r.ownerSupplies, 0u);
    EXPECT_EQ(sys.directory(), nullptr);
    EXPECT_TRUE(sys.checkDirectoryInvariant());
    EXPECT_GT(r.l1Accesses, 0u);
}

TEST(MultiCore, PiptAndWayPredictedRunUnderDirectoryCoherence)
{
    // Every L1 design must work at any core count: the two designs
    // the single-core System never ran multi-core before.
    for (L1Kind kind : {L1Kind::Pipt, L1Kind::ViptWayPredicted}) {
        SystemConfig cfg = smallConfig();
        cfg.l1Kind = kind;
        SimEngine sys(cfg, mtWorkload());
        const RunResult r = sys.run();
        EXPECT_GT(r.probes, 0u) << static_cast<int>(kind);
        EXPECT_GT(r.probeHits, 0u) << static_cast<int>(kind);
        EXPECT_TRUE(sys.checkDirectoryInvariant())
            << static_cast<int>(kind);
    }
}

TEST(MultiCore, DeterministicAcrossRuns)
{
    const RunResult a = SimEngine(smallConfig(), mtWorkload()).run();
    const RunResult b = SimEngine(smallConfig(), mtWorkload()).run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.probes, b.probes);
    EXPECT_DOUBLE_EQ(a.energyTotalNj, b.energyTotalNj);
    EXPECT_TRUE(a == b);
}

} // namespace
} // namespace seesaw
