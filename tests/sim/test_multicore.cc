/** @file Integration tests for the multi-core system with exact
 *  directory coherence. */

#include <gtest/gtest.h>

#include "sim/multicore.hh"

namespace seesaw {
namespace {

constexpr std::uint64_t kMB = 1ULL << 20;

WorkloadSpec
mtWorkload()
{
    WorkloadSpec w = findWorkload("tunk");
    w.footprintBytes = 16 * kMB;
    w.hotSetBytes = 1 * kMB;
    return w;
}

MultiCoreConfig
smallConfig(unsigned cores = 4)
{
    MultiCoreConfig c;
    c.cores = cores;
    c.l1SizeBytes = 64 * 1024;
    c.l1Assoc = 16;
    c.os.memBytes = 512 * kMB;
    c.instructionsPerCore = 40'000;
    c.warmupInstructionsPerCore = 20'000;
    c.seed = 5;
    return c;
}

TEST(MultiCore, RunsAndProducesSaneAggregates)
{
    MultiCoreSystem sys(smallConfig(), mtWorkload());
    const MultiRunResult r = sys.run();

    EXPECT_EQ(r.cores, 4u);
    EXPECT_GE(r.instructions, 4u * 40'000u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.aggregateIpc, 0.0);
    EXPECT_GT(r.l1Accesses, 0u);
    EXPECT_GE(r.l1Accesses, r.l1Hits);
    EXPECT_GT(r.energyTotalNj, 0.0);
    EXPECT_GT(r.superpageRefFraction, 0.5);
}

TEST(MultiCore, SharingGeneratesRealProbes)
{
    // Threads share the zipf hot set: writes must invalidate remote
    // copies and dirty reads must be owner-supplied.
    MultiCoreSystem sys(smallConfig(), mtWorkload());
    const MultiRunResult r = sys.run();
    EXPECT_GT(r.probes, 0u);
    EXPECT_GT(r.ownerSupplies, 0u);
    EXPECT_GT(r.l1CoherenceDynamicNj, 0.0);
    // Exact tracking: the directory only probes real copies.
    EXPECT_GT(static_cast<double>(r.probeHits) / r.probes, 0.95);
}

TEST(MultiCore, DirectoryInvariantHoldsAfterRun)
{
    MultiCoreSystem sys(smallConfig(), mtWorkload());
    sys.run();
    EXPECT_TRUE(sys.checkDirectoryInvariant());
}

TEST(MultiCore, DirectoryMatchesCacheContentsExactly)
{
    // Exhaustive per-line check on a short run: every valid line in
    // core c's cache is tracked for c, and every dirty line is owned
    // by c (the invariant the probe energy accounting relies on).
    MultiCoreConfig cfg = smallConfig(2);
    cfg.instructionsPerCore = 5'000;
    cfg.warmupInstructionsPerCore = 0;
    MultiCoreSystem sys(cfg, mtWorkload());
    sys.run();

    for (unsigned c = 0; c < 2; ++c) {
        unsigned checked = 0;
        sys.l1(c).tags().forEachValidLine(
            [&](const CacheLine &line) {
                const Addr pa = line.lineAddr << 6;
                EXPECT_TRUE(sys.directory().holds(c, pa));
                if (isDirtyState(line.state)) {
                    EXPECT_EQ(sys.directory().owner(pa),
                              static_cast<int>(c));
                }
                ++checked;
            });
        EXPECT_GT(checked, 0u);
    }
    EXPECT_TRUE(sys.checkDirectoryInvariant());
}

TEST(MultiCore, SeesawProbesCostLessThanBaseline)
{
    // §IV-C1 at system level: identical sharing traffic, 4-way probes
    // under SEESAW vs full-set probes under the baseline.
    MultiCoreConfig cfg = smallConfig();
    cfg.l1Kind = L1Kind::ViptBaseline;
    MultiCoreSystem base_sys(cfg, mtWorkload());
    const MultiRunResult base = base_sys.run();

    cfg.l1Kind = L1Kind::Seesaw;
    MultiCoreSystem see_sys(cfg, mtWorkload());
    const MultiRunResult see = see_sys.run();

    // Probe counts track closely (same streams, same directory
    // logic); per-probe energy is ~39% lower.
    ASSERT_GT(base.probes, 0u);
    EXPECT_NEAR(static_cast<double>(see.probes),
                static_cast<double>(base.probes),
                0.2 * base.probes);
    const double base_per_probe =
        base.l1CoherenceDynamicNj / base.probes;
    const double see_per_probe =
        see.l1CoherenceDynamicNj / see.probes;
    EXPECT_LT(see_per_probe, base_per_probe * 0.7);
}

TEST(MultiCore, SeesawSavesEnergyWithoutSlowingDown)
{
    // Under heavy coherence traffic the runtime benefit shrinks
    // toward a tie ("at worst, maintains baseline performance"); the
    // energy saving must remain strict.
    MultiCoreConfig cfg = smallConfig();
    cfg.l1Kind = L1Kind::ViptBaseline;
    const MultiRunResult base =
        MultiCoreSystem(cfg, mtWorkload()).run();
    cfg.l1Kind = L1Kind::Seesaw;
    const MultiRunResult see =
        MultiCoreSystem(cfg, mtWorkload()).run();

    EXPECT_LT(static_cast<double>(see.cycles),
              static_cast<double>(base.cycles) * 1.005);
    EXPECT_LT(see.energyTotalNj, base.energyTotalNj);
}

TEST(MultiCore, MoreCoresMoreCoherenceTraffic)
{
    const MultiRunResult two =
        MultiCoreSystem(smallConfig(2), mtWorkload()).run();
    const MultiRunResult eight =
        MultiCoreSystem(smallConfig(8), mtWorkload()).run();
    // Probes per core-instruction grow with the sharer count.
    const double two_rate =
        static_cast<double>(two.probes) / two.instructions;
    const double eight_rate =
        static_cast<double>(eight.probes) / eight.instructions;
    EXPECT_GT(eight_rate, two_rate);
}

TEST(MultiCore, DeterministicAcrossRuns)
{
    const MultiRunResult a =
        MultiCoreSystem(smallConfig(), mtWorkload()).run();
    const MultiRunResult b =
        MultiCoreSystem(smallConfig(), mtWorkload()).run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.probes, b.probes);
    EXPECT_DOUBLE_EQ(a.energyTotalNj, b.energyTotalNj);
}

} // namespace
} // namespace seesaw
