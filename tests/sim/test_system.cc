/** @file Integration tests for the full-system harness. */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/sim_engine.hh"

namespace seesaw {
namespace {

constexpr std::uint64_t kMB = 1ULL << 20;

WorkloadSpec
smallWorkload()
{
    WorkloadSpec w = findWorkload("redis");
    w.footprintBytes = 16 * kMB;
    w.hotSetBytes = 1 * kMB;
    return w;
}

SystemConfig
smallConfig()
{
    SystemConfig c;
    c.instructions = 200'000;
    c.os.memBytes = 512 * kMB;
    c.seed = 42;
    return c;
}

TEST(System, RunProducesSaneResults)
{
    SimEngine system(smallConfig(), smallWorkload());
    const RunResult r = system.run();

    EXPECT_GE(r.instructions, smallConfig().instructions);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_LT(r.ipc, 4.0);
    EXPECT_GT(r.l1Accesses, 0u);
    EXPECT_EQ(r.l1Accesses, r.l1Hits + r.l1Misses);
    EXPECT_GT(r.energyTotalNj, 0.0);
    EXPECT_GE(r.superpageCoverage, 0.0);
    EXPECT_LE(r.superpageCoverage, 1.0);
    EXPECT_EQ(r.pageFaults, 0u); // footprint is premapped
}

TEST(System, EnergyBucketsSumToTotal)
{
    SimEngine system(smallConfig(), smallWorkload());
    const RunResult r = system.run();
    EXPECT_NEAR(r.energyTotalNj,
                r.l1CpuDynamicNj + r.l1CoherenceDynamicNj +
                    r.l1LeakageNj + r.outerNj + r.translationNj,
                r.energyTotalNj * 1e-9);
}

TEST(System, SeesawUsesTheTft)
{
    SimEngine system(smallConfig(), smallWorkload());
    const RunResult r = system.run();
    EXPECT_GT(r.tftLookups, 0u);
    EXPECT_GT(r.tftHits, 0u);
    // Clean memory: most references are to superpages, and the TFT
    // catches the overwhelming majority of them (Fig 13).
    EXPECT_GT(r.superpageRefFraction, 0.5);
    ASSERT_GT(r.superpageRefs, 0u);
    const double tft_miss_rate =
        static_cast<double>(r.superpageRefsTftMiss) /
        static_cast<double>(r.superpageRefs);
    EXPECT_LT(tft_miss_rate, 0.10);
}

TEST(System, BaselineHasNoTftActivity)
{
    SystemConfig cfg = smallConfig();
    cfg.l1Kind = L1Kind::ViptBaseline;
    SimEngine system(cfg, smallWorkload());
    const RunResult r = system.run();
    EXPECT_EQ(r.tftLookups, 0u);
    EXPECT_EQ(r.fastHits, 0u);
}

TEST(System, DeterministicAcrossRuns)
{
    const RunResult a = simulate(smallWorkload(), smallConfig());
    const RunResult b = simulate(smallWorkload(), smallConfig());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_DOUBLE_EQ(a.energyTotalNj, b.energyTotalNj);
}

TEST(System, SeedChangesChangeOutcomesSlightly)
{
    SystemConfig cfg = smallConfig();
    const RunResult a = simulate(smallWorkload(), cfg);
    cfg.seed = 43;
    const RunResult b = simulate(smallWorkload(), cfg);
    EXPECT_NE(a.cycles, b.cycles);
    // ... but not wildly: same workload statistics.
    EXPECT_NEAR(static_cast<double>(a.cycles),
                static_cast<double>(b.cycles),
                0.1 * static_cast<double>(a.cycles));
}

TEST(System, SeesawBeatsBaselineOnSuperpageFriendlyLoad)
{
    const auto cmp =
        compareBaselineVsSeesaw(smallWorkload(), smallConfig());
    EXPECT_GT(cmp.runtimeImprovementPct, 0.0);
    EXPECT_GT(cmp.energySavedPct, 0.0);
    // Same cache geometry: hit rates must be very close (4way insert
    // costs at most ~1% hit rate, §IV-B1).
    const double base_hr = static_cast<double>(cmp.baseline.l1Hits) /
                           cmp.baseline.l1Accesses;
    const double see_hr = static_cast<double>(cmp.seesaw.l1Hits) /
                          cmp.seesaw.l1Accesses;
    EXPECT_NEAR(base_hr, see_hr, 0.02);
}

TEST(System, MemhogReducesCoverageAndBenefit)
{
    SystemConfig cfg = smallConfig();
    const auto clean = compareBaselineVsSeesaw(smallWorkload(), cfg);
    cfg.memhogFraction = 0.85;
    const auto frag = compareBaselineVsSeesaw(smallWorkload(), cfg);
    EXPECT_LT(frag.seesaw.superpageCoverage,
              clean.seesaw.superpageCoverage);
    EXPECT_LE(frag.runtimeImprovementPct,
              clean.runtimeImprovementPct + 0.5);
}

TEST(System, PromotionAndSplinterEventsFire)
{
    SystemConfig cfg = smallConfig();
    cfg.promotionInterval = 20'000;
    cfg.splinterInterval = 30'000;
    WorkloadSpec w = smallWorkload();
    w.thpEligibleFraction = 0.6; // leave base-page regions to promote
    SimEngine system(cfg, w);
    const RunResult r = system.run();
    EXPECT_GT(r.splinters, 0u);
    // Splintered regions get repromoted by khugepaged.
    EXPECT_GT(r.promotions, 0u);
}

TEST(System, InOrderCoreRunsAndIsSlower)
{
    SystemConfig ooo = smallConfig();
    SystemConfig ino = smallConfig();
    ino.coreKind = CoreKind::InOrder;
    const RunResult r_ooo = simulate(smallWorkload(), ooo);
    const RunResult r_ino = simulate(smallWorkload(), ino);
    EXPECT_GT(r_ino.cycles, r_ooo.cycles);
}

TEST(System, PiptAlternativeRuns)
{
    SystemConfig cfg = smallConfig();
    cfg.l1Kind = L1Kind::Pipt;
    cfg.l1Assoc = 4;
    const RunResult r = simulate(smallWorkload(), cfg);
    EXPECT_GT(r.l1Accesses, 0u);
    EXPECT_EQ(r.tftLookups, 0u);
}

TEST(System, WayPredictedVariantsReportAccuracy)
{
    SystemConfig cfg = smallConfig();
    cfg.l1Kind = L1Kind::ViptWayPredicted;
    const RunResult wp = simulate(smallWorkload(), cfg);
    EXPECT_GT(wp.wpAccuracy, 0.0);
    EXPECT_LE(wp.wpAccuracy, 1.0);

    cfg.l1Kind = L1Kind::SeesawWayPredicted;
    const RunResult wps = simulate(smallWorkload(), cfg);
    EXPECT_GT(wps.wpAccuracy, 0.0);
}

TEST(System, CoherenceProbesAccountedSeparately)
{
    SimEngine system(smallConfig(), smallWorkload());
    const RunResult r = system.run();
    EXPECT_GT(r.probes, 0u);
    EXPECT_GT(r.l1CoherenceDynamicNj, 0.0);
}

TEST(System, SnoopyFabricGeneratesMoreProbeEnergy)
{
    SystemConfig cfg = smallConfig();
    cfg.fabric = CoherenceKind::Directory;
    const RunResult dir = simulate(smallWorkload(), cfg);
    cfg.fabric = CoherenceKind::Snoopy;
    const RunResult snoop = simulate(smallWorkload(), cfg);
    EXPECT_GT(snoop.probes, dir.probes);
    EXPECT_GT(snoop.l1CoherenceDynamicNj, dir.l1CoherenceDynamicNj);
}

TEST(System, LargerCachesMissLess)
{
    SystemConfig cfg = smallConfig();
    cfg.l1SizeBytes = 32 * 1024;
    cfg.l1Assoc = 8;
    const RunResult small = simulate(smallWorkload(), cfg);
    cfg.l1SizeBytes = 128 * 1024;
    cfg.l1Assoc = 32;
    const RunResult large = simulate(smallWorkload(), cfg);
    EXPECT_LT(large.l1Mpki, small.l1Mpki);
}

TEST(Experiment, SummaryHelper)
{
    const Summary s = summarize({1.0, 2.0, 6.0});
    EXPECT_DOUBLE_EQ(s.avg, 3.0);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 6.0);
}

TEST(Experiment, ImprovementHelpers)
{
    RunResult base, fast;
    base.cycles = 1000;
    fast.cycles = 900;
    base.energyTotalNj = 50.0;
    fast.energyTotalNj = 40.0;
    EXPECT_DOUBLE_EQ(runtimeImprovementPercent(base, fast), 10.0);
    EXPECT_DOUBLE_EQ(energySavedPercent(base, fast), 20.0);
}

} // namespace
} // namespace seesaw
