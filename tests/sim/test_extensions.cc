/** @file System-level tests of the extension features: associative
 *  TFTs, the unified L1 TLB, trace-driven replay, and the L1I
 *  application. */

#include <gtest/gtest.h>

#include <cstdio>

#include "sim/experiment.hh"
#include "workload/trace.hh"

namespace seesaw {
namespace {

constexpr std::uint64_t kMB = 1ULL << 20;

WorkloadSpec
smallWorkload()
{
    WorkloadSpec w = findWorkload("redis");
    w.footprintBytes = 16 * kMB;
    w.hotSetBytes = 1 * kMB;
    w.codeFootprintBytes = 4 * kMB;
    return w;
}

SystemConfig
smallConfig()
{
    SystemConfig c;
    c.instructions = 150'000;
    c.os.memBytes = 512 * kMB;
    c.seed = 42;
    return c;
}

TEST(Extensions, AssociativeTftRunsAndHelpsOrTies)
{
    SystemConfig cfg = smallConfig();
    cfg.tftAssoc = 1;
    const RunResult direct = simulate(smallWorkload(), cfg);
    cfg.tftAssoc = 4;
    const RunResult assoc = simulate(smallWorkload(), cfg);

    ASSERT_GT(assoc.superpageRefs, 0u);
    const double direct_miss =
        static_cast<double>(direct.superpageRefsTftMiss) /
        direct.superpageRefs;
    const double assoc_miss =
        static_cast<double>(assoc.superpageRefsTftMiss) /
        assoc.superpageRefs;
    // Associativity removes conflict evictions: never worse.
    EXPECT_LE(assoc_miss, direct_miss + 1e-9);
}

TEST(Extensions, UnifiedTlbSystemRuns)
{
    SystemConfig cfg = smallConfig();
    cfg.unifiedL1Tlb = true;
    cfg.unifiedL1TlbEntries = 64;
    const auto cmp = compareBaselineVsSeesaw(smallWorkload(), cfg);
    EXPECT_GT(cmp.seesaw.tftHits, 0u);
    EXPECT_GT(cmp.runtimeImprovementPct, -0.5);
    EXPECT_GT(cmp.energySavedPct, 0.0);
}

TEST(Extensions, UnifiedVsSplitTlbBothServeSeesaw)
{
    SystemConfig cfg = smallConfig();
    const RunResult split = simulate(smallWorkload(), cfg);
    cfg.unifiedL1Tlb = true;
    const RunResult unified = simulate(smallWorkload(), cfg);
    // Both organisations keep the TFT effective.
    auto miss_rate = [](const RunResult &r) {
        return r.superpageRefs
                   ? static_cast<double>(r.superpageRefsTftMiss) /
                         r.superpageRefs
                   : 0.0;
    };
    EXPECT_LT(miss_rate(split), 0.10);
    EXPECT_LT(miss_rate(unified), 0.10);
}

TEST(Extensions, InstructionCacheModelRuns)
{
    SystemConfig cfg = smallConfig();
    cfg.modelInstructionCache = true;
    const RunResult r = simulate(smallWorkload(), cfg);
    EXPECT_GT(r.l1iAccesses, 0u);
    // ~one fetch per 4 instructions.
    EXPECT_NEAR(static_cast<double>(r.l1iAccesses),
                r.instructions / 4.0, r.instructions * 0.05);
    // Hot text fits reasonably: I-side hit rate well above cold.
    EXPECT_GT(1.0 - static_cast<double>(r.l1iMisses) / r.l1iAccesses,
              0.7);
}

TEST(Extensions, InstructionCacheSeesawAddsEnergySavings)
{
    // §V: the I-side application adds savings on top of the D-side,
    // especially for large instruction footprints.
    WorkloadSpec w = smallWorkload();
    w.codeFootprintBytes = 16 * kMB;
    SystemConfig cfg = smallConfig();
    cfg.modelInstructionCache = true;

    cfg.l1Kind = L1Kind::ViptBaseline;
    const RunResult base = simulate(w, cfg);
    cfg.l1Kind = L1Kind::Seesaw;
    const RunResult see = simulate(w, cfg);
    EXPECT_GT(energySavedPercent(base, see), 0.0);
    EXPECT_GE(runtimeImprovementPercent(base, see), -0.5);
}

TEST(Extensions, TraceDrivenReplayMatchesWorkloadStatistics)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/system_replay.trace";
    WorkloadSpec w = smallWorkload();

    // Capture a trace of the synthetic stream, then replay it.
    {
        ReferenceStream stream(w, Addr{1} << 40, 42 ^ 0x57ea0ULL);
        TraceWriter writer(path);
        for (int i = 0; i < 120'000; ++i)
            writer.append(stream.next());
    }

    SystemConfig cfg = smallConfig();
    cfg.instructions = 100'000;
    const RunResult synthetic = simulate(w, cfg);

    cfg.tracePath = path;
    const RunResult replayed = simulate(w, cfg);

    EXPECT_GT(replayed.l1Accesses, 0u);
    EXPECT_EQ(replayed.pageFaults, 0u); // footprint premapped
    // Same address statistics: hit rates track closely.
    const double hr_syn = static_cast<double>(synthetic.l1Hits) /
                          synthetic.l1Accesses;
    const double hr_rep = static_cast<double>(replayed.l1Hits) /
                          replayed.l1Accesses;
    EXPECT_NEAR(hr_syn, hr_rep, 0.05);
    std::remove(path.c_str());
}

TEST(Extensions, TraceLoopsWhenShorterThanBudget)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/short.trace";
    WorkloadSpec w = smallWorkload();
    {
        ReferenceStream stream(w, Addr{1} << 40, 7);
        TraceWriter writer(path);
        for (int i = 0; i < 1000; ++i)
            writer.append(stream.next());
    }
    SystemConfig cfg = smallConfig();
    cfg.instructions = 50'000;
    cfg.tracePath = path;
    const RunResult r = simulate(w, cfg);
    EXPECT_GE(r.instructions, 50'000u);
    std::remove(path.c_str());
}

TEST(Extensions, TraceOutsideFootprintIsDemandPaged)
{
    const std::string path =
        std::string(::testing::TempDir()) + "/wild.trace";
    {
        TraceWriter writer(path);
        // Addresses far outside the premapped heap.
        for (int i = 0; i < 64; ++i)
            writer.append(MemRef{10,
                                 (Addr{3} << 40) + i * 0x200000ULL,
                                 AccessType::Read});
    }
    SystemConfig cfg = smallConfig();
    cfg.instructions = 2'000;
    cfg.warmupInstructions = 0;
    cfg.tracePath = path;
    SimEngine system(cfg, smallWorkload());
    const RunResult r = system.run();
    EXPECT_GT(r.pageFaults, 0u);
    std::remove(path.c_str());
}

} // namespace
} // namespace seesaw
