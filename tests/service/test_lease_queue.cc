/** @file Tests for the file-backed cell lease queue. */

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>

#include "service/lease_queue.hh"

namespace fs = std::filesystem;

namespace seesaw::service {
namespace {

class TempQueue
{
  public:
    TempQueue(std::size_t cells)
    {
        std::string templ =
            (fs::temp_directory_path() / "seesaw-queue-XXXXXX")
                .string();
        root_ = ::mkdtemp(templ.data());
        EXPECT_FALSE(root_.empty());
        dir_ = root_ + "/q";
        EXPECT_EQ(createQueue(dir_, cells), "");
    }

    ~TempQueue() { fs::remove_all(root_); }

    const std::string &dir() const { return dir_; }

    /** Backdate cell @p index's lease so it looks abandoned. */
    void
    backdateLease(std::size_t index, double seconds)
    {
        char name[32];
        std::snprintf(name, sizeof(name), "%06zu", index);
        const std::string lease = dir_ + "/lease/" + name;
        ASSERT_TRUE(fs::exists(lease));
        fs::last_write_time(
            lease, fs::file_time_type::clock::now() -
                       std::chrono::duration_cast<
                           std::chrono::seconds>(
                           std::chrono::duration<double>(seconds)));
    }

  private:
    std::string root_;
    std::string dir_;
};

TEST(LeaseQueue, QueueDirSanitizesCampaignNames)
{
    EXPECT_EQ(queueDir("store", "smoke"), "store/queue/smoke");
    EXPECT_EQ(queueDir("store", "a/b c"), "store/queue/a_b_c");
}

TEST(LeaseQueue, ClaimsAreExclusiveAndExhaustive)
{
    TempQueue q(3);
    LeaseQueue a(q.dir(), "wa");
    LeaseQueue b(q.dir(), "wb");
    EXPECT_EQ(a.totalCells(), 3u);

    std::size_t ia = 99, ib = 99;
    ASSERT_EQ(a.tryClaim(ia), LeaseQueue::Claim::Got);
    ASSERT_EQ(b.tryClaim(ib), LeaseQueue::Claim::Got);
    EXPECT_NE(ia, ib); // never the same cell twice

    // One cell left; a third worker gets it, then everyone waits.
    LeaseQueue c(q.dir(), "wc");
    std::size_t ic = 99;
    ASSERT_EQ(c.tryClaim(ic), LeaseQueue::Claim::Got);
    const std::set<std::size_t> claimed{ia, ib, ic};
    EXPECT_EQ(claimed.size(), 3u);

    LeaseQueue d(q.dir(), "wd");
    std::size_t id = 99;
    EXPECT_EQ(d.tryClaim(id), LeaseQueue::Claim::Wait);

    // Finishing all three drains the queue for every observer.
    a.markDone(ia);
    b.markDone(ib);
    c.markDone(ic);
    EXPECT_EQ(d.tryClaim(id), LeaseQueue::Claim::AllDone);
    EXPECT_EQ(countDone(q.dir()), 3u);
}

TEST(LeaseQueue, ReleasedCellsGoBackToThePool)
{
    TempQueue q(1);
    LeaseQueue a(q.dir(), "wa");
    LeaseQueue b(q.dir(), "wb");

    std::size_t ia = 99;
    ASSERT_EQ(a.tryClaim(ia), LeaseQueue::Claim::Got);
    std::size_t ib = 99;
    EXPECT_EQ(b.tryClaim(ib), LeaseQueue::Claim::Wait);

    a.release();
    ASSERT_EQ(b.tryClaim(ib), LeaseQueue::Claim::Got);
    EXPECT_EQ(ib, ia);
}

TEST(LeaseQueue, StaleLeasesAreStolen)
{
    TempQueue q(1);
    // Worker wa dies mid-cell: its lease stops heartbeating.
    LeaseQueue a(q.dir(), "wa", /*leaseSeconds=*/5.0);
    std::size_t ia = 99;
    ASSERT_EQ(a.tryClaim(ia), LeaseQueue::Claim::Got);

    LeaseQueue b(q.dir(), "wb", /*leaseSeconds=*/5.0);
    std::size_t ib = 99;
    EXPECT_EQ(b.tryClaim(ib), LeaseQueue::Claim::Wait);

    q.backdateLease(ia, 60.0);
    ASSERT_EQ(b.tryClaim(ib), LeaseQueue::Claim::Got);
    EXPECT_EQ(ib, ia);
    b.markDone(ib);
    std::size_t ic = 99;
    EXPECT_EQ(b.tryClaim(ic), LeaseQueue::Claim::AllDone);
}

TEST(LeaseQueue, HeartbeatKeepsALeaseFresh)
{
    TempQueue q(1);
    LeaseQueue a(q.dir(), "wa", /*leaseSeconds=*/5.0);
    std::size_t ia = 99;
    ASSERT_EQ(a.tryClaim(ia), LeaseQueue::Claim::Got);
    q.backdateLease(ia, 60.0);
    a.heartbeat(); // the owner refreshes its claim in time

    LeaseQueue b(q.dir(), "wb", /*leaseSeconds=*/5.0);
    std::size_t ib = 99;
    EXPECT_EQ(b.tryClaim(ib), LeaseQueue::Claim::Wait);
}

TEST(LeaseQueue, PreMarkedCellsAreNeverClaimed)
{
    TempQueue q(2);
    ASSERT_EQ(markDoneExternal(q.dir(), 0), "");
    LeaseQueue a(q.dir(), "wa");
    std::size_t ia = 99;
    ASSERT_EQ(a.tryClaim(ia), LeaseQueue::Claim::Got);
    EXPECT_EQ(ia, 1u);
    a.markDone(ia);
    std::size_t ib = 99;
    EXPECT_EQ(a.tryClaim(ib), LeaseQueue::Claim::AllDone);
}

} // namespace
} // namespace seesaw::service
