/**
 * @file
 * End-to-end campaign-service tests, in-process: a synthetic
 * deterministic campaign runs to completion, gets "killed" partway
 * (cell budget), resumes, and races two workers — and every route
 * must converge on a byte-identical canonical store dump. The
 * cell-run counter proves resume actually skips completed work
 * instead of silently re-running it.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>

#include "harness/runner.hh"
#include "service/broker.hh"
#include "service/lease_queue.hh"
#include "service/worker.hh"
#include "store/result_store.hh"
#include "store/store_sink.hh"

namespace fs = std::filesystem;

namespace seesaw::service {
namespace {

constexpr std::size_t kCells = 5;

class TempDir
{
  public:
    TempDir()
    {
        std::string templ =
            (fs::temp_directory_path() / "seesaw-svc-XXXXXX")
                .string();
        dir_ = ::mkdtemp(templ.data());
        EXPECT_FALSE(dir_.empty());
    }

    ~TempDir() { fs::remove_all(dir_); }

    const std::string &dir() const { return dir_; }

  private:
    std::string dir_;
};

/** kCells deterministic synthetic cells; every run of cell i is
 *  counted in @p runs and produces the identical result. */
harness::CampaignSpec
makeSpec(std::atomic<std::size_t> *runs)
{
    harness::CampaignSpec spec("svc");
    for (std::size_t i = 0; i < kCells; ++i) {
        const std::string workload = "wl" + std::to_string(i);
        spec.cell(
            workload + "/unit",
            [workload, i, runs] {
                if (runs != nullptr)
                    runs->fetch_add(1, std::memory_order_relaxed);
                RunResult r;
                r.workload = workload;
                r.instructions = 1000 + i;
                r.cycles = 2000 + 3 * i;
                r.ipc = 0.5 + 0.01 * static_cast<double>(i);
                r.l1Accesses = 100 * i;
                return r;
            },
            /*seed=*/1, /*config_hash=*/0x1000 + i, workload);
    }
    return spec;
}

std::string
dumpOf(const std::string &storeDir)
{
    store::StoreSnapshot snap;
    EXPECT_EQ(store::loadStore(storeDir, snap), "");
    std::ostringstream os;
    store::canonicalDump(os, snap);
    return os.str();
}

WorkerOptions
workerOptions(const std::string &storeDir, const std::string &id)
{
    WorkerOptions options;
    options.storeDir = storeDir;
    options.campaign = "svc";
    options.workerId = id;
    options.progress = false;
    return options;
}

TEST(Service, KillAndResumeConvergesOnTheUninterruptedRun)
{
    std::atomic<std::size_t> runs{0};
    const harness::CampaignSpec spec = makeSpec(&runs);
    const auto cells = spec.cells();

    // Reference: one worker drains the whole queue in one go.
    TempDir serial;
    PreparedQueue queue;
    ASSERT_EQ(prepareQueue(serial.dir(), "svc", cells, false, queue),
              "");
    EXPECT_EQ(queue.total, kCells);
    EXPECT_EQ(queue.preDone, 0u);
    WorkerReport report =
        runWorker(spec, workerOptions(serial.dir(), "w0"));
    EXPECT_EQ(report.ran, kCells);
    EXPECT_EQ(report.skippedPresent, 0u);
    EXPECT_FALSE(report.stopped);
    EXPECT_EQ(runs.load(), kCells);

    // "Killed" run: the worker dies after two cells (cell budget
    // stands in for SIGKILL — same observable store state).
    TempDir killed;
    ASSERT_EQ(prepareQueue(killed.dir(), "svc", cells, false, queue),
              "");
    WorkerOptions budget = workerOptions(killed.dir(), "w0");
    budget.maxCells = 2;
    report = runWorker(spec, budget);
    EXPECT_EQ(report.ran, 2u);
    EXPECT_NE(dumpOf(killed.dir()), dumpOf(serial.dir()));

    // Resume: the queue is rebuilt and the two finished cells are
    // pre-marked done, so the worker runs exactly the missing three.
    ASSERT_EQ(prepareQueue(killed.dir(), "svc", cells, true, queue),
              "");
    EXPECT_EQ(queue.preDone, 2u);
    const std::size_t runsBefore = runs.load();
    report = runWorker(spec, workerOptions(killed.dir(), "w1"));
    EXPECT_EQ(report.ran, kCells - 2);
    EXPECT_EQ(report.skippedPresent, 0u);
    EXPECT_EQ(runs.load(), runsBefore + (kCells - 2));

    EXPECT_EQ(dumpOf(killed.dir()), dumpOf(serial.dir()));
}

TEST(Service, WorkerSkipsCellsTheStoreAlreadyHolds)
{
    std::atomic<std::size_t> runs{0};
    const harness::CampaignSpec spec = makeSpec(&runs);
    const auto cells = spec.cells();

    TempDir store;
    PreparedQueue queue;
    ASSERT_EQ(prepareQueue(store.dir(), "svc", cells, false, queue),
              "");
    WorkerOptions budget = workerOptions(store.dir(), "w0");
    budget.maxCells = 2;
    ASSERT_EQ(runWorker(spec, budget).ran, 2u);

    // A fresh queue with no resume pre-marking: the worker claims
    // every cell but provably skips the two already in the store —
    // the counters, not just the dump, prove no re-execution.
    ASSERT_EQ(prepareQueue(store.dir(), "svc", cells, false, queue),
              "");
    const std::size_t runsBefore = runs.load();
    const WorkerReport report =
        runWorker(spec, workerOptions(store.dir(), "w1"));
    EXPECT_EQ(report.skippedPresent, 2u);
    EXPECT_EQ(report.ran, kCells - 2);
    EXPECT_EQ(runs.load(), runsBefore + (kCells - 2));
}

TEST(Service, TwoConcurrentWorkersPartitionTheQueue)
{
    std::atomic<std::size_t> runs{0};
    const harness::CampaignSpec spec = makeSpec(&runs);
    const auto cells = spec.cells();

    TempDir store;
    PreparedQueue queue;
    ASSERT_EQ(prepareQueue(store.dir(), "svc", cells, false, queue),
              "");
    WorkerReport a, b;
    std::thread ta(
        [&] { a = runWorker(spec, workerOptions(store.dir(), "wa")); });
    std::thread tb(
        [&] { b = runWorker(spec, workerOptions(store.dir(), "wb")); });
    ta.join();
    tb.join();

    // Leases make the split exclusive and exhaustive.
    EXPECT_EQ(a.ran + b.ran, kCells);
    EXPECT_EQ(runs.load(), kCells);

    TempDir serial;
    ASSERT_EQ(prepareQueue(serial.dir(), "svc", cells, false, queue),
              "");
    runWorker(spec, workerOptions(serial.dir(), "w0"));
    EXPECT_EQ(dumpOf(store.dir()), dumpOf(serial.dir()));
}

TEST(Service, ThreadPathAndWorkerPathProduceIdenticalStores)
{
    // The --store --jobs path (runCells + StoreSink hook) and the
    // --workers path (lease queue) must agree byte-for-byte.
    const harness::CampaignSpec spec = makeSpec(nullptr);
    const auto cells = spec.cells();

    TempDir threaded;
    {
        harness::CampaignMetadata meta;
        meta.campaign = "svc";
        meta.gitDescribe = "unit";
        meta.jobs = 2;
        store::StoreSink sink(threaded.dir(), meta, "driver");
        harness::RunnerOptions options;
        options.jobs = 2;
        options.progress = false;
        options.onCellDone = sink.hook();
        const auto outcome =
            harness::CampaignRunner(options).runCells("svc", cells);
        EXPECT_EQ(outcome.results.size(), kCells);
        EXPECT_FALSE(outcome.interrupted);
        EXPECT_EQ(sink.recorded(), kCells);
    }

    TempDir queued;
    PreparedQueue queue;
    ASSERT_EQ(prepareQueue(queued.dir(), "svc", cells, false, queue),
              "");
    runWorker(spec, workerOptions(queued.dir(), "w0"));

    EXPECT_EQ(dumpOf(threaded.dir()), dumpOf(queued.dir()));

    // And the broker reassembles the same results in cell order.
    harness::CampaignOutcome outcome;
    ASSERT_EQ(collectOutcome(queued.dir(), "svc", cells, outcome),
              "");
    ASSERT_EQ(outcome.results.size(), kCells);
    EXPECT_FALSE(outcome.interrupted);
    for (std::size_t i = 0; i < kCells; ++i) {
        EXPECT_EQ(outcome.results[i].name, cells[i].name);
        EXPECT_EQ(outcome.results[i].result.instructions, 1000 + i);
    }
}

TEST(Service, StopRequestEndsTheWorkerLoopBetweenCells)
{
    std::atomic<std::size_t> runs{0};
    const harness::CampaignSpec spec = makeSpec(&runs);
    const auto cells = spec.cells();

    TempDir store;
    PreparedQueue queue;
    ASSERT_EQ(prepareQueue(store.dir(), "svc", cells, false, queue),
              "");
    harness::requestStop();
    const WorkerReport report =
        runWorker(spec, workerOptions(store.dir(), "w0"));
    harness::clearStopRequest();
    EXPECT_TRUE(report.stopped);
    EXPECT_EQ(report.ran, 0u);
    EXPECT_EQ(runs.load(), 0u);

    // The interrupted store resumes cleanly afterwards.
    ASSERT_EQ(prepareQueue(store.dir(), "svc", cells, true, queue),
              "");
    EXPECT_EQ(queue.preDone, 0u);
    EXPECT_EQ(runWorker(spec, workerOptions(store.dir(), "w0")).ran,
              kCells);
}

} // namespace
} // namespace seesaw::service
