/** @file Tests for the L2/LLC/DRAM outer hierarchy. */

#include <gtest/gtest.h>

#include "cache/next_level.hh"

namespace seesaw {
namespace {

TEST(OuterHierarchy, LatenciesConvertToCycles)
{
    OuterHierarchyParams p;
    OuterHierarchy outer(p, 1.33);
    EXPECT_GE(outer.l2Cycles(), 1u);
    EXPECT_GT(outer.llcCycles(), outer.l2Cycles());
    EXPECT_GT(outer.dramCycles(), outer.llcCycles());
    // Table II: 51ns DRAM at 1.33GHz is ~68 cycles.
    EXPECT_EQ(outer.dramCycles(), 68u);
}

TEST(OuterHierarchy, ColdAccessGoesToDram)
{
    OuterHierarchy outer({}, 1.33);
    const auto res = outer.access(0x10000, AccessType::Read);
    EXPECT_EQ(res.level, HitLevel::Dram);
    EXPECT_TRUE(res.llcAccessed);
    EXPECT_TRUE(res.dramAccessed);
    EXPECT_EQ(res.cycles, outer.l2Cycles() + outer.llcCycles() +
                              outer.dramCycles());
}

TEST(OuterHierarchy, SecondAccessHitsL2)
{
    OuterHierarchy outer({}, 1.33);
    outer.access(0x10000, AccessType::Read);
    const auto res = outer.access(0x10000, AccessType::Read);
    EXPECT_EQ(res.level, HitLevel::L2);
    EXPECT_FALSE(res.llcAccessed);
    EXPECT_FALSE(res.dramAccessed);
    EXPECT_EQ(res.cycles, outer.l2Cycles());
}

TEST(OuterHierarchy, L2EvictionFallsBackToLlc)
{
    OuterHierarchyParams p;
    p.l2SizeBytes = 4 * 1024; // tiny L2: 64 lines
    p.l2Assoc = 1;
    OuterHierarchy outer(p, 1.33);
    outer.access(0x0, AccessType::Read);
    // Evict line 0 from the direct-mapped L2 with a conflicting line.
    outer.access(4 * 1024, AccessType::Read);
    const auto res = outer.access(0x0, AccessType::Read);
    EXPECT_EQ(res.level, HitLevel::LLC);
}

TEST(OuterHierarchy, StatsTrackLevels)
{
    OuterHierarchy outer({}, 1.33);
    outer.access(0x0, AccessType::Read);
    outer.access(0x0, AccessType::Read);
    EXPECT_EQ(outer.stats().get("l2_accesses"), 2.0);
    EXPECT_EQ(outer.stats().get("l2_hits"), 1.0);
    EXPECT_EQ(outer.stats().get("dram_accesses"), 1.0);
}

TEST(OuterHierarchy, WritebackInstallsInL2)
{
    OuterHierarchy outer({}, 1.33);
    outer.writeback(0x4000);
    const auto res = outer.access(0x4000, AccessType::Read);
    EXPECT_EQ(res.level, HitLevel::L2);
    EXPECT_EQ(outer.stats().get("l1_writebacks"), 1.0);
}

TEST(OuterHierarchy, HigherFrequencyMeansMoreCycles)
{
    OuterHierarchy slow({}, 1.33), fast({}, 4.0);
    EXPECT_GT(fast.dramCycles(), slow.dramCycles());
}

} // namespace
} // namespace seesaw
