/** @file Tests for the MRU way predictor. */

#include <gtest/gtest.h>

#include "cache/way_predictor.hh"

namespace seesaw {
namespace {

TEST(WayPredictor, InitialPredictionIsWayZero)
{
    MruWayPredictor wp(64, 8, 2);
    EXPECT_EQ(wp.predict(0), 0u);
    EXPECT_EQ(wp.predict(63), 0u);
}

TEST(WayPredictor, PredictsLastUsedWay)
{
    MruWayPredictor wp(64, 8, 2);
    wp.update(5, 3);
    EXPECT_EQ(wp.predict(5), 3u);
    wp.update(5, 7);
    EXPECT_EQ(wp.predict(5), 7u);
    // Other sets unaffected.
    EXPECT_EQ(wp.predict(6), 0u);
}

TEST(WayPredictor, PartitionPredictionTracksPerPartitionMru)
{
    MruWayPredictor wp(64, 8, 2);
    wp.update(2, 1); // partition 0, local way 1
    wp.update(2, 6); // partition 1, local way 2
    // Global MRU is way 6, but partition 0's MRU is still way 1.
    EXPECT_EQ(wp.predict(2), 6u);
    EXPECT_EQ(wp.predictInPartition(2, 0), 1u);
    EXPECT_EQ(wp.predictInPartition(2, 1), 6u);
}

TEST(WayPredictor, PartitionPredictionReturnsAbsoluteWay)
{
    MruWayPredictor wp(64, 16, 4);
    wp.update(0, 13); // partition 3, local way 1
    EXPECT_EQ(wp.predictInPartition(0, 3), 13u);
    EXPECT_EQ(wp.predictInPartition(0, 0), 0u);
}

TEST(WayPredictor, AccuracyTracking)
{
    MruWayPredictor wp(64, 8, 1);
    EXPECT_EQ(wp.accuracy(), 0.0);
    wp.recordOutcome(true);
    wp.recordOutcome(true);
    wp.recordOutcome(false);
    wp.recordOutcome(true);
    EXPECT_EQ(wp.predictions(), 4u);
    EXPECT_EQ(wp.correct(), 3u);
    EXPECT_DOUBLE_EQ(wp.accuracy(), 0.75);
}

TEST(WayPredictor, MruStreakIsAlwaysCorrect)
{
    // Hitting the same way repeatedly must always predict correctly
    // after the first access — the MRU property.
    MruWayPredictor wp(64, 8, 2);
    wp.update(10, 5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(wp.predict(10), 5u);
        wp.update(10, 5);
    }
}

TEST(WayPredictor, AlternatingWaysAlwaysMispredict)
{
    // Ping-ponging between two ways defeats MRU prediction — the
    // pointer-chase pathology the paper describes for way prediction.
    MruWayPredictor wp(64, 8, 1);
    unsigned correct = 0;
    unsigned way = 0;
    wp.update(0, way);
    for (int i = 0; i < 100; ++i) {
        way = way == 0 ? 1 : 0;
        correct += wp.predict(0) == way ? 1 : 0;
        wp.update(0, way);
    }
    EXPECT_EQ(correct, 0u);
}

} // namespace
} // namespace seesaw
