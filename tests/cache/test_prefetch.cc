/**
 * @file
 * Prefetch-engine tests: candidate generation (next-line, stride),
 * determinism, and the SEESAW legality rule end to end — a prefetch
 * may cross a 4KB frontier only when a superpage translation covers
 * both sides, so an all-base-page address space must drop every
 * crossing candidate while a THP-backed one legalises them.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cache/prefetch/prefetch.hh"
#include "sim/sim_engine.hh"

namespace seesaw {
namespace {

constexpr unsigned kLine = 64;

std::unique_ptr<PrefetchEngine>
make(PrefetchKind kind, unsigned degree = 1,
     unsigned table_entries = 64)
{
    PrefetchParams params;
    params.kind = kind;
    params.degree = degree;
    params.tableEntries = table_entries;
    return PrefetchEngine::create(params, kLine);
}

TEST(Prefetch, NoneHasNoEngine)
{
    EXPECT_EQ(make(PrefetchKind::None), nullptr);
}

TEST(Prefetch, NextLineEmitsOnlyOnMisses)
{
    auto p = make(PrefetchKind::NextLine, 2);
    std::vector<Addr> out;
    p->observe(0x1008, /*miss=*/false, out);
    EXPECT_TRUE(out.empty());
    p->observe(0x1008, /*miss=*/true, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 0x1040u); // line-aligned successor of 0x1000
    EXPECT_EQ(out[1], 0x1080u);
}

TEST(Prefetch, NextLineCandidatesIgnorePageFrontiers)
{
    // The engine is VA-only: the last line of a 4KB page yields the
    // first line of the next page. Whether that candidate is *issued*
    // is the legality layer's call, not the engine's.
    auto p = make(PrefetchKind::NextLine);
    std::vector<Addr> out;
    p->observe(0x1fc0, /*miss=*/true, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x2000u);
}

TEST(Prefetch, StrideTrainsThenStreams)
{
    auto p = make(PrefetchKind::Stride, 1);
    std::vector<Addr> out;
    // First touch allocates, second sets the stride, third confirms
    // it; only then do candidates flow.
    p->observe(0x10000, true, out);
    p->observe(0x10100, true, out);
    EXPECT_TRUE(out.empty());
    p->observe(0x10200, true, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x10300u);

    // The stream keeps its entry across a 4KB frontier.
    out.clear();
    std::vector<Addr> tail;
    for (Addr va = 0x10300; va < 0x13000; va += 0x100) {
        tail.clear();
        p->observe(va, true, tail);
    }
    ASSERT_EQ(tail.size(), 1u);
    EXPECT_EQ(tail[0], 0x13000u);
}

TEST(Prefetch, StrideIsDeterministic)
{
    auto a = make(PrefetchKind::Stride, 2, 8);
    auto b = make(PrefetchKind::Stride, 2, 8);
    std::vector<Addr> oa, ob;
    // Two interleaved streams plus noise: replay must be identical.
    for (int i = 0; i < 200; ++i) {
        const Addr va = (i % 2) ? 0x200000 + i * 0x40
                                : 0x800000 + i * 0x180;
        a->observe(va, i % 3 == 0, oa);
        b->observe(va, i % 3 == 0, ob);
    }
    EXPECT_EQ(oa, ob);
    EXPECT_FALSE(oa.empty());
}

/** Simulation-level fixture for the legality rule and counters. */
SystemConfig
prefetchConfig(PrefetchKind kind)
{
    SystemConfig cfg;
    cfg.l1Kind = L1Kind::Seesaw;
    cfg.instructions = 40'000;
    cfg.warmupInstructions = 20'000;
    cfg.os.memBytes = 1ULL << 30;
    cfg.seed = 1;
    cfg.prefetch.kind = kind;
    return cfg;
}

TEST(Prefetch, BasePagesDropCrossingCandidatesSuperpagesLegaliseThem)
{
    WorkloadSpec w = findWorkload("redis");
    w.footprintBytes = 32ULL << 20;
    w.hotSetBytes = 2ULL << 20;

    // All-base-page address space: every candidate beyond its 4KB
    // page is an illegal crossing and must be dropped, never filled.
    WorkloadSpec base_paged = w;
    base_paged.thpEligibleFraction = 0.0;
    SystemConfig cfg = prefetchConfig(PrefetchKind::NextLine);
    cfg.promotionInterval = 0;
    const RunResult base = SimEngine(cfg, base_paged).run();
    EXPECT_GT(base.prefetchIssued, 0u);
    EXPECT_GT(base.prefetchIllegalCrossing, 0u);

    // THP-backed: superpage translations cover the 4KB frontiers, so
    // nearly every crossing becomes legal and more prefetches issue.
    const RunResult thp =
        SimEngine(prefetchConfig(PrefetchKind::NextLine), w).run();
    EXPECT_GT(thp.prefetchIssued, base.prefetchIssued);
    EXPECT_LT(thp.prefetchIllegalCrossing,
              base.prefetchIllegalCrossing);
}

TEST(Prefetch, ParanoidAuditsStayCleanWithPrefetchOn)
{
    // The paranoid cadence aborts on any violation, so surviving the
    // run is the assertion — including the prefetch-placement audit
    // over every prefetched line.
    if (!check::kAuditCompiledIn)
        GTEST_SKIP() << "audits compiled out";
    WorkloadSpec w = findWorkload("redis");
    w.footprintBytes = 16ULL << 20;
    w.hotSetBytes = 2ULL << 20;
    for (PrefetchKind kind :
         {PrefetchKind::NextLine, PrefetchKind::Stride}) {
        SystemConfig cfg = prefetchConfig(kind);
        cfg.instructions = 20'000;
        cfg.warmupInstructions = 5'000;
        cfg.audit.mode = check::AuditMode::Paranoid;
        const RunResult r = SimEngine(cfg, w).run();
        EXPECT_GT(r.prefetchIssued, 0u)
            << static_cast<int>(kind);
    }
}

TEST(Prefetch, RunsAreDeterministicAndUsefulPrefetchesAppear)
{
    WorkloadSpec w = findWorkload("redis");
    w.footprintBytes = 32ULL << 20;
    w.hotSetBytes = 2ULL << 20;
    const SystemConfig cfg = prefetchConfig(PrefetchKind::Stride);
    const RunResult a = SimEngine(cfg, w).run();
    const RunResult b = SimEngine(cfg, w).run();
    EXPECT_TRUE(a == b);
    EXPECT_GT(a.prefetchIssued, 0u);
    EXPECT_GT(a.prefetchUseful, 0u);
}

} // namespace
} // namespace seesaw
