/** @file Tests for the baseline VIPT and PIPT L1 designs. */

#include <gtest/gtest.h>

#include "cache/baseline_caches.hh"

namespace seesaw {
namespace {

constexpr std::uint64_t kKB = 1024;

LatencyTable &
latencyTable()
{
    static LatencyTable table;
    return table;
}

BaselineL1Config
config32k()
{
    BaselineL1Config c;
    c.sizeBytes = 32 * kKB;
    c.assoc = 8;
    c.freqGhz = 1.33;
    return c;
}

TEST(ViptCache, HitLatencyMatchesTableIII)
{
    ViptCache cache(config32k(), latencyTable());
    EXPECT_EQ(cache.baseHitCycles(), 2u);
    EXPECT_EQ(cache.fastHitCycles(), 2u); // no fast path on baseline
}

TEST(ViptCache, MissThenHitReadsAllWays)
{
    ViptCache cache(config32k(), latencyTable());
    L1Access req{0x1000, 0x5000, PageSize::Base4KB, AccessType::Read};
    auto miss = cache.access(req);
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(miss.waysRead, 8u);
    EXPECT_EQ(miss.installWays, 8u);
    EXPECT_EQ(miss.latencyCycles, 2u);
    EXPECT_FALSE(miss.fastPath);

    auto hit = cache.access(req);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.waysRead, 8u);
    EXPECT_TRUE(hit.fastPath);
}

TEST(ViptCache, WriteMakesLineModified)
{
    ViptCache cache(config32k(), latencyTable());
    L1Access wr{0x0, 0x40, PageSize::Base4KB, AccessType::Write};
    cache.access(wr);
    const CacheLine *line = cache.tags().findLine(0x40);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->state, CoherenceState::Modified);
}

TEST(ViptCache, WriteHitUpgradesCleanLine)
{
    ViptCache cache(config32k(), latencyTable());
    L1Access rd{0x0, 0x40, PageSize::Base4KB, AccessType::Read};
    cache.access(rd);
    EXPECT_EQ(cache.tags().findLine(0x40)->state,
              CoherenceState::Exclusive);
    L1Access wr{0x0, 0x40, PageSize::Base4KB, AccessType::Write};
    cache.access(wr);
    EXPECT_EQ(cache.tags().findLine(0x40)->state,
              CoherenceState::Modified);
}

TEST(ViptCache, ProbeReadsFullSet)
{
    ViptCache cache(config32k(), latencyTable());
    L1Access req{0x0, 0x40, PageSize::Base4KB, AccessType::Write};
    cache.access(req);

    auto probe = cache.probe(0x40, /*invalidating=*/false);
    EXPECT_TRUE(probe.hit);
    EXPECT_TRUE(probe.wasDirty);
    EXPECT_EQ(probe.waysRead, 8u);
    // Downgrade from M keeps ownership as Owned.
    EXPECT_EQ(cache.tags().findLine(0x40)->state,
              CoherenceState::Owned);
}

TEST(ViptCache, InvalidatingProbeDropsLine)
{
    ViptCache cache(config32k(), latencyTable());
    L1Access req{0x0, 0x40, PageSize::Base4KB, AccessType::Read};
    cache.access(req);
    auto probe = cache.probe(0x40, /*invalidating=*/true);
    EXPECT_TRUE(probe.hit);
    EXPECT_FALSE(probe.wasDirty);
    EXPECT_EQ(cache.tags().findLine(0x40), nullptr);
}

TEST(ViptCache, ProbeMiss)
{
    ViptCache cache(config32k(), latencyTable());
    auto probe = cache.probe(0xdead40, false);
    EXPECT_FALSE(probe.hit);
    EXPECT_EQ(probe.waysRead, 8u);
}

TEST(ViptCache, StatsCountAccesses)
{
    ViptCache cache(config32k(), latencyTable());
    L1Access req{0x0, 0x40, PageSize::Base4KB, AccessType::Read};
    cache.access(req);
    cache.access(req);
    cache.access(req);
    EXPECT_EQ(cache.stats().get("accesses"), 3.0);
    EXPECT_EQ(cache.stats().get("misses"), 1.0);
    EXPECT_EQ(cache.stats().get("hits"), 2.0);
}

TEST(ViptCacheWp, CorrectPredictionReadsOneWay)
{
    auto cfg = config32k();
    cfg.wayPrediction = true;
    ViptCache cache(cfg, latencyTable());
    L1Access req{0x0, 0x40, PageSize::Base4KB, AccessType::Read};
    cache.access(req); // miss, fills and trains predictor

    auto hit = cache.access(req);
    EXPECT_TRUE(hit.hit);
    EXPECT_TRUE(hit.wpUsed);
    EXPECT_TRUE(hit.wpCorrect);
    EXPECT_EQ(hit.waysRead, 1u);
    EXPECT_EQ(hit.latencyCycles, 2u);
    EXPECT_TRUE(hit.fastPath);
}

TEST(ViptCacheWp, MispredictionPaysExtraDataAccess)
{
    auto cfg = config32k();
    cfg.wayPrediction = true;
    ViptCache cache(cfg, latencyTable());
    // Two lines in the same set: alternate so MRU always mispredicts.
    const Addr a = 0x40, b = 0x40 + 64 * 64;
    cache.access({0x0, a, PageSize::Base4KB, AccessType::Read});
    cache.access({0x0, b, PageSize::Base4KB, AccessType::Read});

    auto res = cache.access({0x0, a, PageSize::Base4KB,
                             AccessType::Read});
    EXPECT_TRUE(res.hit);
    EXPECT_FALSE(res.wpCorrect);
    // Tags compare in parallel; the mispredict re-reads only the
    // correct way's data: 2 data ways, +1 cycle, scheduler bubble.
    EXPECT_EQ(res.waysRead, 2u);
    EXPECT_EQ(res.latencyCycles, 2u + 1u);
    EXPECT_FALSE(res.fastPath);
    EXPECT_FALSE(res.lateDiscovery);
}

TEST(ViptCacheWp, PredictorAccuracyExposed)
{
    auto cfg = config32k();
    cfg.wayPrediction = true;
    ViptCache cache(cfg, latencyTable());
    ASSERT_NE(cache.wayPredictor(), nullptr);
    L1Access req{0x0, 0x40, PageSize::Base4KB, AccessType::Read};
    cache.access(req);
    cache.access(req);
    EXPECT_GT(cache.wayPredictor()->predictions(), 0u);
}

TEST(PiptCache, LatencyIncludesSerialTlb)
{
    auto cfg = config32k();
    cfg.assoc = 4; // PIPT can pick a lower associativity
    PiptCache cache(cfg, latencyTable(), /*tlb_latency_cycles=*/2);
    const unsigned array =
        latencyTable().sram().accessLatencyCycles(32 * kKB, 4, 1.33);
    EXPECT_EQ(cache.baseHitCycles(), 2 + array);
}

TEST(PiptCache, BasicHitMissBehaviour)
{
    auto cfg = config32k();
    cfg.assoc = 4;
    PiptCache cache(cfg, latencyTable(), 2);
    L1Access req{0x1000, 0x5000, PageSize::Base4KB, AccessType::Read};
    EXPECT_FALSE(cache.access(req).hit);
    const auto hit = cache.access(req);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.waysRead, 4u);
}

TEST(PiptCache, SweepRegionWorks)
{
    auto cfg = config32k();
    PiptCache cache(cfg, latencyTable(), 2);
    cache.access({0x0, 0x40, PageSize::Base4KB, AccessType::Read});
    EXPECT_EQ(cache.sweepRegion(0x0, 4096), 1u);
    EXPECT_FALSE(cache.tags().peek(0x40).hit);
}

} // namespace
} // namespace seesaw
