/** @file Tests for the SIPT related-work baseline (§VII). */

#include <gtest/gtest.h>

#include "cache/sipt_cache.hh"

namespace seesaw {
namespace {

constexpr std::uint64_t kKB = 1024;

LatencyTable &
latencyTable()
{
    static LatencyTable table;
    return table;
}

SiptConfig
config32k()
{
    SiptConfig c;
    c.sizeBytes = 32 * kKB;
    c.assoc = 2; // 256 sets: 2 index bits above the page offset
    c.freqGhz = 1.33;
    return c;
}

/** A 2MB-backed translation (index bits survive). */
Addr
superPa(Addr va, Addr region)
{
    return (region << 21) | (va & ((2ULL << 20) - 1));
}

TEST(SiptCache, GeometryExceedsViptCeiling)
{
    SiptCache cache(config32k(), latencyTable());
    EXPECT_EQ(cache.tags().numSets(), 256u);
    EXPECT_EQ(cache.speculativeBits(), 2u);
    // The 2-way array is faster than the 8-way VIPT baseline's.
    EXPECT_LT(cache.fastHitCycles(),
              latencyTable().basePageCycles(32 * kKB, 8, 1.33) + 1);
}

TEST(SiptCache, RejectsViptLegalGeometry)
{
    // 32KB 8-way has 64 sets: no speculative bits — SIPT pointless.
    SiptConfig cfg = config32k();
    cfg.assoc = 8;
    EXPECT_DEATH({ SiptCache cache(cfg, latencyTable()); },
                 "more sets");
}

TEST(SiptCache, SuperpageSpeculationAlwaysCorrect)
{
    SiptCache cache(config32k(), latencyTable());
    const Addr va = (9ULL << 21) | 0x3440;
    const Addr pa = superPa(va, 0x42);

    cache.access({va, pa, PageSize::Super2MB, AccessType::Read});
    const auto res =
        cache.access({va, pa, PageSize::Super2MB, AccessType::Read});
    EXPECT_TRUE(res.hit);
    EXPECT_TRUE(res.fastPath);
    EXPECT_FALSE(res.lateDiscovery);
    EXPECT_EQ(res.latencyCycles, cache.fastHitCycles());
    EXPECT_EQ(res.waysRead, 2u);
}

TEST(SiptCache, BasePageMispeculationPaysReplay)
{
    SiptCache cache(config32k(), latencyTable());
    const Addr va = 0x7003440;
    // Force PA index bits (13:12) to differ from the VA's.
    Addr pa = 0x0440;
    if (((pa >> 12) & 3) == ((va >> 12) & 3))
        pa ^= (1ULL << 12);

    // First touch: the untrained predictor speculates identity bits —
    // wrong here.
    const auto first =
        cache.access({va, pa, PageSize::Base4KB, AccessType::Read});
    EXPECT_FALSE(first.fastPath);
    EXPECT_TRUE(first.lateDiscovery);
    EXPECT_GT(first.latencyCycles, cache.fastHitCycles());
    EXPECT_EQ(first.waysRead, 4u); // both sets read

    // The predictor learned the page's bits: subsequent accesses are
    // correct.
    const auto second =
        cache.access({va, pa, PageSize::Base4KB, AccessType::Read});
    EXPECT_TRUE(second.hit);
    EXPECT_TRUE(second.fastPath);
    EXPECT_EQ(second.waysRead, 2u);
    EXPECT_GT(cache.predictionAccuracy(), 0.0);
    EXPECT_EQ(cache.specWrong(), 1u); // only the untrained access
}

TEST(SiptCache, LinesLiveAtPhysicalIndexSoProbesAreDirect)
{
    SiptCache cache(config32k(), latencyTable());
    const Addr va = 0x7003440;
    Addr pa = 0x0440;
    if (((pa >> 12) & 3) == ((va >> 12) & 3))
        pa ^= (1ULL << 12);
    cache.access({va, pa, PageSize::Base4KB, AccessType::Write});

    const auto probe = cache.probe(pa, /*invalidating=*/false);
    EXPECT_TRUE(probe.hit);
    EXPECT_TRUE(probe.wasDirty);
    EXPECT_EQ(probe.waysRead, 2u); // small physical-indexed set
}

TEST(SiptCache, NoDuplicatesAcrossSpeculationOutcomes)
{
    // Mispeculation must never install a second copy: placement is
    // purely physical.
    SiptCache cache(config32k(), latencyTable());
    const Addr pa = 0x2440;
    const Addr va1 = 0x5002440; // matching bits
    Addr va2 = 0x9001440;       // conflicting bits
    if (((va2 >> 12) & 3) == ((pa >> 12) & 3))
        va2 ^= (1ULL << 12);

    cache.access({va1, pa, PageSize::Base4KB, AccessType::Read});
    cache.access({va2, pa, PageSize::Base4KB, AccessType::Read});
    // Exactly one copy: a probe hit plus a single valid line for pa.
    unsigned copies = 0;
    cache.tags().forEachValidLine([&](const CacheLine &line) {
        copies += line.lineAddr == (pa >> 6) ? 1 : 0;
    });
    EXPECT_EQ(copies, 1u);
}

} // namespace
} // namespace seesaw
