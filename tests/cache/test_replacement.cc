/** @file Unit tests for the pluggable replacement policies. */

#include <gtest/gtest.h>

#include <vector>

#include "cache/replacement.hh"

namespace seesaw {
namespace {

std::unique_ptr<ReplacementPolicy>
make(ReplacementKind kind, unsigned sets = 1, unsigned assoc = 4,
     std::uint64_t seed = 1)
{
    ReplacementParams params;
    params.kind = kind;
    params.seed = seed;
    return ReplacementPolicy::create(params, sets, assoc);
}

/** Fill ways [0, n) of set 0 in ascending order. */
void
fillSet(ReplacementPolicy &p, unsigned n)
{
    for (unsigned way = 0; way < n; ++way)
        p.fill(0, way);
}

TEST(Replacement, UnoccupiedWayWinsImmediately)
{
    // Matches the historical selectLruVictim(): the FIRST invalid way
    // wins even when an older valid line exists.
    auto p = make(ReplacementKind::Lru);
    p->fill(0, 0);
    p->fill(0, 1);
    p->fill(0, 3);
    EXPECT_EQ(p->victim(0, 0, 4), 2u);
    // The same holds for every other policy.
    for (auto kind : {ReplacementKind::Fifo, ReplacementKind::Random,
                      ReplacementKind::Srrip}) {
        auto q = make(kind);
        q->fill(0, 0);
        q->fill(0, 2);
        EXPECT_EQ(q->victim(0, 0, 4), 1u) << static_cast<int>(kind);
    }
}

TEST(Replacement, LruOldestValidLineChosen)
{
    auto p = make(ReplacementKind::Lru);
    fillSet(*p, 4);
    EXPECT_EQ(p->victim(0, 0, 4), 0u);
    p->touch(0, 0); // way 1 is now the oldest
    EXPECT_EQ(p->victim(0, 0, 4), 1u);
}

TEST(Replacement, LruRangeIsRespected)
{
    auto p = make(ReplacementKind::Lru, 1, 8);
    fillSet(*p, 8);
    // Way 0 holds the globally oldest stamp, but partition-scoped
    // victims must stay inside [4, 8).
    EXPECT_EQ(p->victim(0, 4, 8), 4u);
    EXPECT_EQ(p->victim(0, 7, 8), 7u); // single-way range
}

TEST(Replacement, FifoIgnoresTouches)
{
    auto lru = make(ReplacementKind::Lru);
    auto fifo = make(ReplacementKind::Fifo);
    fillSet(*lru, 4);
    fillSet(*fifo, 4);
    lru->touch(0, 0);
    fifo->touch(0, 0);
    EXPECT_EQ(lru->victim(0, 0, 4), 1u);  // touch refreshed way 0
    EXPECT_EQ(fifo->victim(0, 0, 4), 0u); // fill order rules
}

TEST(Replacement, RandomIsDeterministicPerSeed)
{
    auto a = make(ReplacementKind::Random, 1, 8, 42);
    auto b = make(ReplacementKind::Random, 1, 8, 42);
    fillSet(*a, 8);
    fillSet(*b, 8);
    bool in_range = true;
    for (int i = 0; i < 1000; ++i) {
        const unsigned va = a->victim(0, 2, 6);
        const unsigned vb = b->victim(0, 2, 6);
        ASSERT_EQ(va, vb) << "same seed must replay identically";
        in_range = in_range && va >= 2 && va < 6;
    }
    EXPECT_TRUE(in_range);

    // A different seed draws a different sequence.
    auto c = make(ReplacementKind::Random, 1, 8, 43);
    fillSet(*c, 8);
    bool differs = false;
    for (int i = 0; i < 100 && !differs; ++i)
        differs = a->victim(0, 0, 8) != c->victim(0, 0, 8);
    EXPECT_TRUE(differs);
}

TEST(Replacement, SrripPromotesOnTouchAndAges)
{
    auto p = make(ReplacementKind::Srrip);
    fillSet(*p, 4);
    // Touch ways 0-2 to RRPV 0; way 3 keeps the long interval and is
    // evicted first.
    p->touch(0, 0);
    p->touch(0, 1);
    p->touch(0, 2);
    EXPECT_EQ(p->victim(0, 0, 4), 3u);
    // With every way touched, aging must converge on way 0 (scan from
    // the range start finds the first max-RRPV way).
    p->touch(0, 3);
    EXPECT_EQ(p->victim(0, 0, 4), 0u);
}

TEST(Replacement, InvalidateReopensTheWay)
{
    auto p = make(ReplacementKind::Lru);
    fillSet(*p, 4);
    EXPECT_TRUE(p->occupied(0, 2));
    p->invalidate(0, 2);
    EXPECT_FALSE(p->occupied(0, 2));
    EXPECT_EQ(p->victim(0, 0, 4), 2u);
}

TEST(Replacement, WithSeedSaltDecorrelatesOnlyTheSeed)
{
    ReplacementParams params;
    params.kind = ReplacementKind::Random;
    params.seed = 10;
    const ReplacementParams salted = withSeedSalt(params, 0x7f7ULL);
    EXPECT_EQ(salted.kind, ReplacementKind::Random);
    EXPECT_EQ(salted.seed, 10ULL ^ 0x7f7ULL);
    EXPECT_EQ(params.seed, 10ULL); // the input is untouched
}

TEST(Replacement, AuditSetReportsSeededCorruption)
{
    auto p = make(ReplacementKind::Lru);
    fillSet(*p, 2);
    std::vector<std::string> details;
    p->auditSet(0, [&](unsigned, const std::string &d) {
        details.push_back(d);
    });
    EXPECT_TRUE(details.empty());
    p->debugStateAt(0, 1) = p->debugStateAt(0, 0);
    p->auditSet(0, [&](unsigned, const std::string &d) {
        details.push_back(d);
    });
    ASSERT_EQ(details.size(), 1u);
    EXPECT_NE(details[0].find("duplicate"), std::string::npos);
}

TEST(Replacement, DirtyStateHelpers)
{
    EXPECT_TRUE(isDirtyState(CoherenceState::Modified));
    EXPECT_TRUE(isDirtyState(CoherenceState::Owned));
    EXPECT_FALSE(isDirtyState(CoherenceState::Exclusive));
    EXPECT_FALSE(isDirtyState(CoherenceState::Shared));
    EXPECT_FALSE(isDirtyState(CoherenceState::Invalid));
}

} // namespace
} // namespace seesaw
