/** @file Tests for LRU victim selection. */

#include <gtest/gtest.h>

#include <array>

#include "cache/replacement.hh"

namespace seesaw {
namespace {

TEST(Replacement, InvalidWayWinsImmediately)
{
    std::array<CacheLine, 4> lines{};
    lines[0] = {true, 1, CoherenceState::Shared, 10, PageSize::Base4KB};
    lines[1] = {true, 2, CoherenceState::Shared, 20, PageSize::Base4KB};
    // lines[2] invalid
    lines[3] = {true, 4, CoherenceState::Shared, 5, PageSize::Base4KB};
    EXPECT_EQ(selectLruVictim(lines.data(), 0, 4), 2u);
}

TEST(Replacement, OldestValidLineChosen)
{
    std::array<CacheLine, 4> lines{};
    for (unsigned i = 0; i < 4; ++i)
        lines[i] = {true, i, CoherenceState::Shared, 100 - i,
                    PageSize::Base4KB};
    EXPECT_EQ(selectLruVictim(lines.data(), 0, 4), 3u);
}

TEST(Replacement, RangeIsRespected)
{
    std::array<CacheLine, 8> lines{};
    for (unsigned i = 0; i < 8; ++i)
        lines[i] = {true, i, CoherenceState::Shared, i,
                    PageSize::Base4KB};
    // Way 0 has the globally oldest timestamp, but the range excludes
    // it — partition-scoped victims must stay in [4, 8).
    EXPECT_EQ(selectLruVictim(lines.data(), 4, 8), 4u);
}

TEST(Replacement, SingleWayRange)
{
    std::array<CacheLine, 2> lines{};
    lines[0] = {true, 1, CoherenceState::Shared, 1, PageSize::Base4KB};
    lines[1] = {true, 2, CoherenceState::Shared, 2, PageSize::Base4KB};
    EXPECT_EQ(selectLruVictim(lines.data(), 1, 2), 1u);
}

TEST(Replacement, DirtyStateHelpers)
{
    EXPECT_TRUE(isDirtyState(CoherenceState::Modified));
    EXPECT_TRUE(isDirtyState(CoherenceState::Owned));
    EXPECT_FALSE(isDirtyState(CoherenceState::Exclusive));
    EXPECT_FALSE(isDirtyState(CoherenceState::Shared));
    EXPECT_FALSE(isDirtyState(CoherenceState::Invalid));
}

} // namespace
} // namespace seesaw
