/** @file Tests for the generic set-associative tag store. */

#include <gtest/gtest.h>

#include "cache/set_assoc_cache.hh"
#include "common/random.hh"

namespace seesaw {
namespace {

constexpr std::uint64_t kKB = 1024;

TEST(SetAssocCache, GeometryOf32k8w)
{
    SetAssocCache c(32 * kKB, 8, 64, 2);
    EXPECT_EQ(c.numSets(), 64u);
    EXPECT_EQ(c.assoc(), 8u);
    EXPECT_EQ(c.numPartitions(), 2u);
    EXPECT_EQ(c.waysPerPartition(), 4u);
    EXPECT_EQ(c.sizeBytes(), 32 * kKB);
    EXPECT_EQ(c.partitionLowBit(), 12u);
}

TEST(SetAssocCache, GeometryOf64k16wAnd128k32w)
{
    SetAssocCache c64(64 * kKB, 16, 64, 4);
    EXPECT_EQ(c64.numSets(), 64u);
    EXPECT_EQ(c64.numPartitions(), 4u);
    EXPECT_EQ(c64.partitionLowBit(), 12u);

    SetAssocCache c128(128 * kKB, 32, 64, 8);
    EXPECT_EQ(c128.numSets(), 64u);
    EXPECT_EQ(c128.numPartitions(), 8u);
    EXPECT_EQ(c128.partitionLowBit(), 12u);
}

TEST(SetAssocCache, SetIndexUsesBits11To6)
{
    SetAssocCache c(32 * kKB, 8, 64, 2);
    EXPECT_EQ(c.setIndex(0x0), 0u);
    EXPECT_EQ(c.setIndex(0x40), 1u);
    EXPECT_EQ(c.setIndex(0xfc0), 63u);
    EXPECT_EQ(c.setIndex(0x1000), 0u); // bit 12 is partition, not set
}

TEST(SetAssocCache, PartitionIndexUsesBit12)
{
    SetAssocCache c(32 * kKB, 8, 64, 2);
    EXPECT_EQ(c.partitionIndex(0x0000), 0u);
    EXPECT_EQ(c.partitionIndex(0x1000), 1u);
    EXPECT_EQ(c.partitionIndex(0x2000), 0u);
    EXPECT_EQ(c.partitionIndex(0x3000), 1u);
}

TEST(SetAssocCache, PartitionIndexTwoBitsFor64k)
{
    SetAssocCache c(64 * kKB, 16, 64, 4);
    EXPECT_EQ(c.partitionIndex(0x0000), 0u);
    EXPECT_EQ(c.partitionIndex(0x1000), 1u);
    EXPECT_EQ(c.partitionIndex(0x2000), 2u);
    EXPECT_EQ(c.partitionIndex(0x3000), 3u);
    EXPECT_EQ(c.partitionIndex(0x4000), 0u);
}

TEST(SetAssocCache, MissThenHit)
{
    SetAssocCache c(32 * kKB, 8);
    EXPECT_FALSE(c.lookup(0x1234).hit);
    c.insert(0x1234, SetAssocCache::InsertScope::FullSet,
             CoherenceState::Exclusive, PageSize::Base4KB);
    EXPECT_TRUE(c.lookup(0x1234).hit);
    // A different word in the same line also hits.
    EXPECT_TRUE(c.lookup(0x1238).hit);
    // The next line misses.
    EXPECT_FALSE(c.lookup(0x1240).hit);
}

TEST(SetAssocCache, PeekDoesNotTouchLru)
{
    SetAssocCache c(4 * kKB, 2); // 32 sets, 2 ways
    // Fill both ways of set 0.
    c.insert(0x0000, SetAssocCache::InsertScope::FullSet,
             CoherenceState::Exclusive, PageSize::Base4KB);
    c.insert(0x0000 + 32 * 64 * 2, SetAssocCache::InsertScope::FullSet,
             CoherenceState::Exclusive, PageSize::Base4KB);
    // Peek way 0's line (would refresh LRU if it touched).
    EXPECT_TRUE(c.peek(0x0000).hit);
    // Insert: victim must be way 0's line (oldest by insert order).
    const Eviction ev =
        c.insert(0x0000 + 32 * 64 * 4, SetAssocCache::InsertScope::FullSet,
                 CoherenceState::Exclusive, PageSize::Base4KB);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, 0u);
}

TEST(SetAssocCache, LruEvictionOrder)
{
    SetAssocCache c(32 * kKB, 8);
    const Addr set_stride = 64 * 64; // next line mapping to set 0
    // Fill set 0 with 8 lines.
    for (unsigned i = 0; i < 8; ++i)
        c.insert(i * set_stride, SetAssocCache::InsertScope::FullSet,
                 CoherenceState::Exclusive, PageSize::Base4KB);
    // Touch line 0 so line 1 becomes LRU.
    EXPECT_TRUE(c.lookup(0).hit);
    const Eviction ev =
        c.insert(8 * set_stride, SetAssocCache::InsertScope::FullSet,
                 CoherenceState::Exclusive, PageSize::Base4KB);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, set_stride / 64);
}

TEST(SetAssocCache, PartitionScopedInsertStaysInPartition)
{
    SetAssocCache c(32 * kKB, 8, 64, 2);
    Rng rng(3);
    for (int i = 0; i < 5000; ++i) {
        const Addr pa = rng.next() & ((1ULL << 40) - 1);
        if (!c.lookup(pa).hit)
            c.insert(pa, SetAssocCache::InsertScope::Partition,
                     CoherenceState::Exclusive, PageSize::Base4KB);
    }
    EXPECT_TRUE(c.checkPlacementInvariant());
}

TEST(SetAssocCache, FullSetInsertCanViolatePlacementInvariant)
{
    SetAssocCache c(32 * kKB, 8, 64, 2);
    // Fill partition 0 of set 0 via addresses with bit12=0, then keep
    // inserting bit12=1 lines set-wide: they spill into partition 0.
    bool violated = false;
    for (unsigned i = 0; i < 16; ++i) {
        const Addr pa = 0x1000 | (static_cast<Addr>(i) << 13);
        c.insert(pa, SetAssocCache::InsertScope::FullSet,
                 CoherenceState::Exclusive, PageSize::Base4KB);
        if (!c.checkPlacementInvariant())
            violated = true;
    }
    EXPECT_TRUE(violated);
}

TEST(SetAssocCache, LookupPartitionOnlySearchesThatPartition)
{
    SetAssocCache c(32 * kKB, 8, 64, 2);
    const Addr pa = 0x1040; // partition 1, set 1
    c.insert(pa, SetAssocCache::InsertScope::Partition,
             CoherenceState::Exclusive, PageSize::Base4KB);
    EXPECT_TRUE(c.lookupPartition(pa, 1).hit);
    EXPECT_FALSE(c.lookupPartition(pa, 0).hit);
}

TEST(SetAssocCache, EvictionReportsDirtyState)
{
    SetAssocCache c(4 * kKB, 1); // direct-mapped, 64 sets
    c.insert(0x0, SetAssocCache::InsertScope::FullSet,
             CoherenceState::Modified, PageSize::Base4KB);
    const Eviction ev =
        c.insert(4 * kKB, SetAssocCache::InsertScope::FullSet,
                 CoherenceState::Exclusive, PageSize::Base4KB);
    EXPECT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty());
    EXPECT_EQ(ev.state, CoherenceState::Modified);

    const Eviction ev2 =
        c.insert(8 * kKB, SetAssocCache::InsertScope::FullSet,
                 CoherenceState::Exclusive, PageSize::Base4KB);
    EXPECT_TRUE(ev2.valid);
    EXPECT_FALSE(ev2.dirty());
    EXPECT_EQ(ev2.state, CoherenceState::Exclusive);
}

TEST(SetAssocCache, InvalidateRemovesLine)
{
    SetAssocCache c(32 * kKB, 8);
    c.insert(0x40, SetAssocCache::InsertScope::FullSet,
             CoherenceState::Owned, PageSize::Base4KB);
    const auto prev = c.invalidate(0x40);
    ASSERT_TRUE(prev.has_value());
    EXPECT_EQ(*prev, CoherenceState::Owned);
    EXPECT_FALSE(c.lookup(0x40).hit);
    EXPECT_FALSE(c.invalidate(0x40).has_value());
}

TEST(SetAssocCache, FindLineExposesState)
{
    SetAssocCache c(32 * kKB, 8);
    EXPECT_EQ(c.findLine(0x80), nullptr);
    c.insert(0x80, SetAssocCache::InsertScope::FullSet,
             CoherenceState::Exclusive, PageSize::Super2MB);
    CacheLine *line = c.findLine(0x80);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->state, CoherenceState::Exclusive);
    EXPECT_EQ(line->pageSize, PageSize::Super2MB);
}

TEST(SetAssocCache, SweepRegionEvictsOnlyRange)
{
    SetAssocCache c(32 * kKB, 8);
    c.insert(0x0000, SetAssocCache::InsertScope::FullSet,
             CoherenceState::Exclusive, PageSize::Base4KB);
    c.insert(0x0fc0, SetAssocCache::InsertScope::FullSet,
             CoherenceState::Exclusive, PageSize::Base4KB);
    c.insert(0x2000, SetAssocCache::InsertScope::FullSet,
             CoherenceState::Exclusive, PageSize::Base4KB);
    EXPECT_EQ(c.sweepRegion(0x0, 4096), 2u);
    EXPECT_FALSE(c.lookup(0x0000).hit);
    EXPECT_FALSE(c.lookup(0x0fc0).hit);
    EXPECT_TRUE(c.lookup(0x2000).hit);
}

TEST(SetAssocCache, ValidLinesCountsInsertions)
{
    SetAssocCache c(32 * kKB, 8);
    EXPECT_EQ(c.validLines(), 0u);
    for (unsigned i = 0; i < 10; ++i)
        c.insert(i * 64, SetAssocCache::InsertScope::FullSet,
                 CoherenceState::Exclusive, PageSize::Base4KB);
    EXPECT_EQ(c.validLines(), 10u);
}

TEST(SetAssocCache, CapacityBound)
{
    SetAssocCache c(8 * kKB, 4); // 128 lines
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        const Addr pa = (rng.next() & 0xfffff) << 6;
        if (!c.lookup(pa).hit)
            c.insert(pa, SetAssocCache::InsertScope::FullSet,
                     CoherenceState::Exclusive, PageSize::Base4KB);
    }
    EXPECT_LE(c.validLines(), 128u);
}

/** Conflict behaviour: with a 65-line same-set stream, higher
 *  associativity must strictly reduce misses (the Fig 2a mechanism). */
class AssocConflictTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(AssocConflictTest, CyclicSetPressureMissesScaleWithAssoc)
{
    const unsigned assoc = GetParam();
    SetAssocCache c(32 * kKB, assoc);
    const Addr stride = 64 * c.numSets();
    const unsigned lines = assoc + 1; // one more than fits in the set
    unsigned misses = 0;
    for (int round = 0; round < 50; ++round) {
        for (unsigned i = 0; i < lines; ++i) {
            const Addr pa = i * stride;
            if (!c.lookup(pa).hit) {
                ++misses;
                c.insert(pa, SetAssocCache::InsertScope::FullSet,
                         CoherenceState::Exclusive, PageSize::Base4KB);
            }
        }
    }
    // Cyclic access to assoc+1 lines under LRU misses every time.
    EXPECT_EQ(misses, 50u * lines);
}

INSTANTIATE_TEST_SUITE_P(Assocs, AssocConflictTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

} // namespace
} // namespace seesaw
