/** @file MOESI protocol truth-table tests. */

#include <gtest/gtest.h>

#include "coherence/directory.hh"

namespace seesaw {
namespace {

using S = CoherenceState;

TEST(Moesi, LocalReadFill)
{
    EXPECT_EQ(MoesiProtocol::onLocalReadFill(false), S::Exclusive);
    EXPECT_EQ(MoesiProtocol::onLocalReadFill(true), S::Shared);
}

TEST(Moesi, LocalReadHitPreservesState)
{
    for (S s : {S::Shared, S::Exclusive, S::Owned, S::Modified})
        EXPECT_EQ(MoesiProtocol::onLocalReadHit(s), s);
}

TEST(Moesi, LocalWriteAlwaysModified)
{
    for (S s : {S::Invalid, S::Shared, S::Exclusive, S::Owned,
                S::Modified})
        EXPECT_EQ(MoesiProtocol::onLocalWrite(s), S::Modified);
}

TEST(Moesi, WriteUpgradeNeededOnlyWhenRemoteCopiesMayExist)
{
    EXPECT_TRUE(MoesiProtocol::writeNeedsUpgrade(S::Shared));
    EXPECT_TRUE(MoesiProtocol::writeNeedsUpgrade(S::Owned));
    EXPECT_FALSE(MoesiProtocol::writeNeedsUpgrade(S::Exclusive));
    EXPECT_FALSE(MoesiProtocol::writeNeedsUpgrade(S::Modified));
    EXPECT_FALSE(MoesiProtocol::writeNeedsUpgrade(S::Invalid));
}

TEST(Moesi, RemoteReadKeepsOwnershipOfDirtyData)
{
    EXPECT_EQ(MoesiProtocol::onRemoteRead(S::Modified), S::Owned);
    EXPECT_EQ(MoesiProtocol::onRemoteRead(S::Owned), S::Owned);
}

TEST(Moesi, RemoteReadDowngradesCleanStates)
{
    EXPECT_EQ(MoesiProtocol::onRemoteRead(S::Exclusive), S::Shared);
    EXPECT_EQ(MoesiProtocol::onRemoteRead(S::Shared), S::Shared);
    EXPECT_EQ(MoesiProtocol::onRemoteRead(S::Invalid), S::Invalid);
}

TEST(Moesi, DirtyStatesSupplyData)
{
    EXPECT_TRUE(MoesiProtocol::suppliesData(S::Modified));
    EXPECT_TRUE(MoesiProtocol::suppliesData(S::Owned));
    EXPECT_FALSE(MoesiProtocol::suppliesData(S::Exclusive));
    EXPECT_FALSE(MoesiProtocol::suppliesData(S::Shared));
}

TEST(Moesi, RemoteWriteInvalidates)
{
    for (S s : {S::Shared, S::Exclusive, S::Owned, S::Modified})
        EXPECT_EQ(MoesiProtocol::onRemoteWrite(s), S::Invalid);
}

TEST(Moesi, CleanEvictionRule)
{
    EXPECT_TRUE(MoesiProtocol::cleanEviction(S::Shared));
    EXPECT_TRUE(MoesiProtocol::cleanEviction(S::Exclusive));
    EXPECT_FALSE(MoesiProtocol::cleanEviction(S::Modified));
    EXPECT_FALSE(MoesiProtocol::cleanEviction(S::Owned));
}

TEST(Moesi, StateMachineSequence)
{
    // E -> (local write) M -> (remote read) O -> (remote write) I.
    S s = MoesiProtocol::onLocalReadFill(false);
    EXPECT_EQ(s, S::Exclusive);
    s = MoesiProtocol::onLocalWrite(s);
    EXPECT_EQ(s, S::Modified);
    s = MoesiProtocol::onRemoteRead(s);
    EXPECT_EQ(s, S::Owned);
    EXPECT_TRUE(MoesiProtocol::suppliesData(s));
    s = MoesiProtocol::onRemoteWrite(s);
    EXPECT_EQ(s, S::Invalid);
}

} // namespace
} // namespace seesaw
