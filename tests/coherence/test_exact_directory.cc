/** @file Tests for the exact MOESI directory. */

#include <gtest/gtest.h>

#include "coherence/exact_directory.hh"

namespace seesaw {
namespace {

TEST(ExactDirectory, ColdLineNeedsNoProbes)
{
    ExactDirectory dir(4);
    const auto read = dir.onReadMiss(0, 0x1000);
    EXPECT_TRUE(read.targets.empty());
    const auto write = dir.onWrite(0, 0x1000);
    EXPECT_TRUE(write.targets.empty());
    EXPECT_TRUE(write.invalidating);
}

TEST(ExactDirectory, FillAndHolds)
{
    ExactDirectory dir(4);
    dir.recordFill(2, 0x1040, /*dirty=*/false);
    EXPECT_TRUE(dir.holds(2, 0x1040));
    EXPECT_TRUE(dir.holds(2, 0x1078)); // same line
    EXPECT_FALSE(dir.holds(1, 0x1040));
    EXPECT_FALSE(dir.holds(2, 0x1080)); // next line
    EXPECT_EQ(dir.sharerCount(0x1040), 1u);
    EXPECT_EQ(dir.owner(0x1040), -1);
}

TEST(ExactDirectory, DirtyOwnerSuppliesOnRemoteRead)
{
    ExactDirectory dir(4);
    dir.recordFill(1, 0x2000, /*dirty=*/true);
    EXPECT_EQ(dir.owner(0x2000), 1);

    const auto probes = dir.onReadMiss(3, 0x2000);
    ASSERT_EQ(probes.targets.size(), 1u);
    EXPECT_EQ(probes.targets[0], 1u);
    EXPECT_TRUE(probes.ownerSupplies);
    EXPECT_FALSE(probes.invalidating);
}

TEST(ExactDirectory, CleanSharersNeedNoReadProbes)
{
    ExactDirectory dir(4);
    dir.recordFill(1, 0x2000, false);
    dir.recordFill(2, 0x2000, false);
    const auto probes = dir.onReadMiss(3, 0x2000);
    EXPECT_TRUE(probes.targets.empty());
}

TEST(ExactDirectory, WriteInvalidatesEveryOtherSharer)
{
    ExactDirectory dir(8);
    for (CoreId c : {1u, 3u, 5u})
        dir.recordFill(c, 0x3000, false);

    const auto probes = dir.onWrite(5, 0x3000);
    EXPECT_TRUE(probes.invalidating);
    ASSERT_EQ(probes.targets.size(), 2u);
    EXPECT_EQ(probes.targets[0], 1u);
    EXPECT_EQ(probes.targets[1], 3u);

    // The directory reflects the invalidations immediately.
    EXPECT_FALSE(dir.holds(1, 0x3000));
    EXPECT_FALSE(dir.holds(3, 0x3000));
    EXPECT_TRUE(dir.holds(5, 0x3000));

    dir.recordFill(5, 0x3000, true);
    EXPECT_EQ(dir.owner(0x3000), 5);
}

TEST(ExactDirectory, WriteByDirtyOwnerNeedsNoProbes)
{
    ExactDirectory dir(4);
    dir.recordFill(2, 0x4000, true);
    const auto probes = dir.onWrite(2, 0x4000);
    EXPECT_TRUE(probes.targets.empty());
    EXPECT_TRUE(dir.holds(2, 0x4000));
    EXPECT_EQ(dir.owner(0x4000), 2);
}

TEST(ExactDirectory, EvictionUntracksAndErasesEmptyEntries)
{
    ExactDirectory dir(4);
    dir.recordFill(0, 0x5000, true);
    dir.recordFill(1, 0x5000, false);
    EXPECT_EQ(dir.sharerCount(0x5000), 2u);

    dir.recordEviction(0, 0x5000);
    EXPECT_EQ(dir.sharerCount(0x5000), 1u);
    EXPECT_EQ(dir.owner(0x5000), -1); // owner left

    dir.recordEviction(1, 0x5000);
    EXPECT_EQ(dir.sharerCount(0x5000), 0u);
    EXPECT_EQ(dir.trackedLines(), 0u);
}

TEST(ExactDirectory, StatAccessorsCountProbeWork)
{
    ExactDirectory dir(4);
    EXPECT_EQ(dir.fills(), 0u);

    // Dirty owner downgraded to supply a remote read.
    dir.recordFill(0, 0x7000, /*dirty=*/true);
    (void)dir.onReadMiss(1, 0x7000);
    EXPECT_EQ(dir.ownerDowngrades(), 1u);

    // The sole clean sharer may be silent-E: a second reader
    // downgrades it before filling.
    dir.recordFill(1, 0x7000, false);
    (void)dir.onReadMiss(2, 0x7000);
    EXPECT_EQ(dir.exclusiveDowngrades(), 0u); // two sharers, no E
    dir.recordFill(0, 0x8000, false);
    (void)dir.onReadMiss(1, 0x8000);
    EXPECT_EQ(dir.exclusiveDowngrades(), 1u);

    // A write that invalidates remote sharers counts once.
    dir.recordFill(2, 0x7000, false);
    (void)dir.onWrite(2, 0x7000);
    EXPECT_EQ(dir.writeInvalidations(), 1u);

    EXPECT_EQ(dir.fills(), 4u);
    dir.recordEviction(2, 0x7000);
    EXPECT_EQ(dir.evictions(), 1u);
}

TEST(ExactDirectory, ReadAfterWriteSequence)
{
    // The canonical migratory pattern: W0 -> R1 -> W2.
    ExactDirectory dir(4);
    EXPECT_TRUE(dir.onWrite(0, 0x6000).targets.empty());
    dir.recordFill(0, 0x6000, true);

    const auto r1 = dir.onReadMiss(1, 0x6000);
    ASSERT_EQ(r1.targets.size(), 1u);
    EXPECT_TRUE(r1.ownerSupplies);
    dir.recordFill(1, 0x6000, false);
    EXPECT_EQ(dir.sharerCount(0x6000), 2u);

    const auto w2 = dir.onWrite(2, 0x6000);
    EXPECT_EQ(w2.targets.size(), 2u);
    dir.recordFill(2, 0x6000, true);
    EXPECT_EQ(dir.sharerCount(0x6000), 1u);
    EXPECT_EQ(dir.owner(0x6000), 2);
}

} // namespace
} // namespace seesaw
