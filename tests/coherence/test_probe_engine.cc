/** @file Tests for the coherence probe generator. */

#include <gtest/gtest.h>

#include "cache/baseline_caches.hh"
#include "coherence/probe_engine.hh"
#include "core/seesaw_cache.hh"

namespace seesaw {
namespace {

constexpr std::uint64_t kKB = 1024;

LatencyTable &
latencyTable()
{
    static LatencyTable table;
    return table;
}

TEST(ResidentLineTracker, NoteAndSample)
{
    ResidentLineTracker tracker(8);
    EXPECT_TRUE(tracker.empty());
    Rng rng(1);
    EXPECT_EQ(tracker.sample(rng), 0u);

    tracker.note(0x1044); // stored line-aligned
    EXPECT_EQ(tracker.size(), 1u);
    EXPECT_EQ(tracker.sample(rng), 0x1040u);
}

TEST(ResidentLineTracker, RingWrapsAtCapacity)
{
    ResidentLineTracker tracker(4);
    for (Addr a = 0; a < 100; ++a)
        tracker.note(a << 6);
    EXPECT_EQ(tracker.size(), 4u);
}

TEST(SnoopBus, DirectoryGeneratesOnlyDirectedProbes)
{
    SnoopBus bus(CoherenceKind::Directory, 3.0, 5);
    ResidentLineTracker tracker(16);
    tracker.note(0x1000);
    const auto probes = bus.generate(10, 0.5, tracker);
    EXPECT_EQ(probes.size(), 10u);
    for (const auto &p : probes)
        EXPECT_TRUE(p.expectedResident);
}

TEST(SnoopBus, SnoopyAddsAbsentBroadcasts)
{
    SnoopBus bus(CoherenceKind::Snoopy, 3.0, 5);
    ResidentLineTracker tracker(16);
    tracker.note(0x1000);
    const auto probes = bus.generate(10, 0.5, tracker);
    EXPECT_EQ(probes.size(), 10u + 30u);
    unsigned absent = 0;
    for (const auto &p : probes)
        absent += p.expectedResident ? 0 : 1;
    EXPECT_EQ(absent, 30u);
}

TEST(SnoopBus, EmptyTrackerYieldsNothing)
{
    SnoopBus bus(CoherenceKind::Directory, 3.0, 5);
    ResidentLineTracker tracker(16);
    EXPECT_TRUE(bus.generate(10, 0.5, tracker).empty());
}

class ProbeEngineTest : public ::testing::Test
{
  protected:
    ProbeEngineTest()
        : sram_(TechNode::Intel22), energy_(sram_)
    {
        BaselineL1Config c;
        c.sizeBytes = 32 * kKB;
        c.assoc = 8;
        c.freqGhz = 1.33;
        vipt_ = std::make_unique<ViptCache>(c, latencyTable());
    }

    SramModel sram_;
    EnergyModel energy_;
    std::unique_ptr<ViptCache> vipt_;
};

TEST_F(ProbeEngineTest, RateScalesWithSharingThreads)
{
    ProbeEngineParams single;
    single.remoteThreads = 0;
    ProbeEngineParams multi = single;
    multi.remoteThreads = 7;
    multi.sharedFraction = 0.4;

    ProbeEngine pe1(single, *vipt_, energy_);
    ProbeEngine pe8(multi, *vipt_, energy_);
    EXPECT_GT(pe8.directedRate(), pe1.directedRate());
}

TEST_F(ProbeEngineTest, TickIssuesProbesAndChargesCoherenceEnergy)
{
    ProbeEngineParams params;
    params.systemProbesPerKiloInstr = 50.0; // dense for the test
    ProbeEngine engine(params, *vipt_, energy_);

    // Populate the cache + tracker.
    for (Addr a = 0; a < 64; ++a) {
        const Addr pa = a << 6;
        vipt_->access({pa, pa, PageSize::Base4KB, AccessType::Write});
        engine.noteResident(pa);
    }

    engine.tick(100000);
    EXPECT_GT(engine.probes(), 0u);
    EXPECT_GT(energy_.l1CoherenceDynamicNj(), 0.0);
    EXPECT_EQ(energy_.l1CpuDynamicNj(), 0.0);
    EXPECT_GT(engine.stats().get("probe_hits"), 0.0);
    // Every line was written, so read probes that hit supply dirty
    // data (cache-to-cache transfers).
    EXPECT_GT(engine.dirtySupplies(), 0u);
    EXPECT_LE(engine.dirtySupplies(), engine.probeHits());
}

TEST_F(ProbeEngineTest, NoResidencyNoProbes)
{
    ProbeEngineParams params;
    params.systemProbesPerKiloInstr = 50.0;
    ProbeEngine engine(params, *vipt_, energy_);
    engine.tick(100000);
    EXPECT_EQ(engine.probes(), 0u);
}

TEST_F(ProbeEngineTest, SeesawProbesCostLessThanVipt)
{
    // The Fig 11 mechanism: identical probe streams cost 4-way energy
    // on SEESAW and 8-way on the baseline.
    SeesawConfig sc;
    sc.sizeBytes = 32 * kKB;
    sc.assoc = 8;
    sc.freqGhz = 1.33;
    SeesawCache seesaw(sc, latencyTable());

    EnergyModel e_vipt(sram_), e_seesaw(sram_);
    ProbeEngineParams params;
    params.systemProbesPerKiloInstr = 50.0;
    ProbeEngine pe_vipt(params, *vipt_, e_vipt);
    ProbeEngine pe_seesaw(params, seesaw, e_seesaw);

    for (Addr a = 0; a < 64; ++a) {
        const Addr pa = a << 6;
        vipt_->access({pa, pa, PageSize::Base4KB, AccessType::Read});
        seesaw.access({pa, pa, PageSize::Base4KB, AccessType::Read});
        pe_vipt.noteResident(pa);
        pe_seesaw.noteResident(pa);
    }
    pe_vipt.tick(100000);
    pe_seesaw.tick(100000);

    ASSERT_EQ(pe_vipt.probes(), pe_seesaw.probes());
    EXPECT_LT(e_seesaw.l1CoherenceDynamicNj(),
              e_vipt.l1CoherenceDynamicNj() * 0.7);
}

TEST_F(ProbeEngineTest, InvalidatingProbesRemoveLines)
{
    ProbeEngineParams params;
    params.systemProbesPerKiloInstr = 100.0;
    params.invalidatingFraction = 1.0;
    ProbeEngine engine(params, *vipt_, energy_);
    for (Addr a = 0; a < 64; ++a) {
        const Addr pa = a << 6;
        vipt_->access({pa, pa, PageSize::Base4KB, AccessType::Read});
        engine.noteResident(pa);
    }
    engine.tick(100000);
    EXPECT_GT(engine.stats().get("invalidations"), 0.0);
    EXPECT_LT(vipt_->tags().validLines(), 64u);
}

} // namespace
} // namespace seesaw
