/**
 * @file
 * Mutation tests for the translation audits: TLB entries that drift
 * from the page table and TFT regions whose superpage guarantee has
 * been silently revoked must both be caught.
 */

#include <gtest/gtest.h>

#include "check/invariant_auditor.hh"
#include "check/tlb_audits.hh"

namespace seesaw::check {
namespace {

constexpr Asid kAsid = 1;
constexpr Addr kBaseVa = 0x10000000;  // 4KB-mapped
constexpr Addr kSuperVa = 0x40000000; // 2MB-mapped

std::vector<Violation>
collect(const std::function<void(AuditContext &)> &fn)
{
    InvariantAuditor auditor;
    std::vector<Violation> seen;
    auditor.setViolationHandler(
        [&seen](const Violation &v) { seen.push_back(v); });
    auditor.registerCheck("under-test", fn);
    auditor.runAll(0);
    return seen;
}

struct TlbAuditsTest : ::testing::Test
{
    PageTable pt;
    TlbHierarchy tlb{TlbHierarchyParams::sandybridge(), pt};

    TlbAuditsTest()
    {
        pt.map(kAsid, kBaseVa, 0x1000, PageSize::Base4KB);
        pt.map(kAsid, kSuperVa, 0x200000, PageSize::Super2MB);
    }

    std::vector<Violation>
    audit()
    {
        return collect([&](AuditContext &ctx) {
            auditTlbAgainstPageTable(tlb, pt, ctx);
        });
    }
};

TEST_F(TlbAuditsTest, FilledHierarchyAuditsClean)
{
    EXPECT_TRUE(tlb.lookup(kAsid, kBaseVa + 0x10).walked);
    EXPECT_TRUE(tlb.lookup(kAsid, kSuperVa + 0x12345).walked);
    EXPECT_TRUE(audit().empty());
}

TEST_F(TlbAuditsTest, CatchesEntryStaleAfterUnmap)
{
    tlb.lookup(kAsid, kBaseVa);
    // Unmap WITHOUT the invlpg the OS owes the TLB.
    ASSERT_TRUE(pt.unmap(kAsid, kBaseVa, PageSize::Base4KB).has_value());
    const auto seen = audit();
    // The entry was filled into both TLB levels; each reports.
    ASSERT_FALSE(seen.empty());
    for (const auto &v : seen)
        EXPECT_NE(v.detail.find("no page-table mapping"),
                  std::string::npos);
}

TEST_F(TlbAuditsTest, CatchesSizeMismatchAfterRemap)
{
    tlb.lookup(kAsid, kSuperVa);
    // Splinter the 2MB page into base pages behind the TLB's back.
    ASSERT_TRUE(pt.unmap(kAsid, kSuperVa, PageSize::Super2MB).has_value());
    for (unsigned i = 0; i < 512; ++i) {
        ASSERT_TRUE(pt.map(kAsid, kSuperVa + i * 4096ULL,
                           0x200000 + i * 4096ULL,
                           PageSize::Base4KB));
    }
    const auto seen = audit();
    ASSERT_FALSE(seen.empty());
    EXPECT_NE(seen[0].detail.find("promotion/splinter"),
              std::string::npos);
}

TEST_F(TlbAuditsTest, CatchesPhysicalBaseDrift)
{
    tlb.lookup(kAsid, kBaseVa);
    // Remap the page to different frames without invalidating.
    ASSERT_TRUE(pt.unmap(kAsid, kBaseVa, PageSize::Base4KB).has_value());
    ASSERT_TRUE(pt.map(kAsid, kBaseVa, 0x7000, PageSize::Base4KB));
    const auto seen = audit();
    ASSERT_FALSE(seen.empty());
    for (const auto &v : seen)
        EXPECT_NE(v.detail.find("different physical base"),
                  std::string::npos);
}

// ------------------------------------------------------------------
// TFT vs page table.

struct TftAuditsTest : ::testing::Test
{
    PageTable pt;
    Tft tft{16, 1};

    TftAuditsTest()
    {
        pt.map(kAsid, kSuperVa, 0x200000, PageSize::Super2MB);
        for (unsigned i = 0; i < 512; ++i) {
            pt.map(kAsid, kBaseVa + i * 4096ULL, 0x1000000 + i * 4096ULL,
                   PageSize::Base4KB);
        }
    }

    std::vector<Violation>
    audit()
    {
        return collect([&](AuditContext &ctx) {
            auditTftAgainstPageTable(tft, pt, kAsid, ctx);
        });
    }
};

TEST_F(TftAuditsTest, SuperpageBackedRegionsAuditClean)
{
    tft.markRegion(kSuperVa + 0x54321);
    EXPECT_TRUE(audit().empty());
}

TEST_F(TftAuditsTest, CatchesBasePageBackedRegion)
{
    // The issue's seeded corruption: mark a region that is only backed
    // by 4KB pages — a TFT hit would commit the L1 to VA partition
    // bits that are not PA bits.
    tft.markRegion(kBaseVa);
    const auto seen = audit();
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0].addr, kBaseVa);
    EXPECT_NE(seen[0].detail.find("base-page-backed"),
              std::string::npos);
}

TEST_F(TftAuditsTest, CatchesUnmappedRegion)
{
    tft.markRegion(kSuperVa);
    ASSERT_TRUE(pt.unmap(kAsid, kSuperVa, PageSize::Super2MB).has_value());
    const auto seen = audit();
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_NE(seen[0].detail.find("unmapped"), std::string::npos);
}

TEST_F(TftAuditsTest, InvalidatedRegionNoLongerAudited)
{
    tft.markRegion(kSuperVa);
    ASSERT_TRUE(pt.unmap(kAsid, kSuperVa, PageSize::Super2MB).has_value());
    EXPECT_TRUE(tft.invalidateRegion(kSuperVa)); // the owed invlpg
    EXPECT_TRUE(audit().empty());
}

} // namespace
} // namespace seesaw::check
