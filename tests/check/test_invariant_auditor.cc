/**
 * @file
 * Engine tests for the InvariantAuditor: registration, cadence per
 * mode, violation routing, and the abort-by-default contract.
 */

#include <gtest/gtest.h>

#include "check/invariant_auditor.hh"

namespace seesaw::check {
namespace {

TEST(InvariantAuditorTest, ParsesEveryModeAndRoundTripsNames)
{
    for (auto mode : {AuditMode::Off, AuditMode::End,
                      AuditMode::Periodic, AuditMode::Paranoid}) {
        EXPECT_EQ(parseAuditMode(auditModeName(mode)), mode);
    }
}

TEST(InvariantAuditorDeathTest, UnknownModeIsFatal)
{
    EXPECT_EXIT((void)parseAuditMode("sometimes"),
                ::testing::ExitedWithCode(1), "unknown audit mode");
}

TEST(InvariantAuditorTest, RegisteredChecksAreIntrospectable)
{
    InvariantAuditor auditor;
    auditor.registerCheck("a", [](AuditContext &) {});
    auditor.registerCheck("b", [](AuditContext &) {});
    EXPECT_EQ(auditor.checkCount(), 2u);
    EXPECT_EQ(auditor.checkNames(),
              (std::vector<std::string>{"a", "b"}));
}

TEST(InvariantAuditorDeathTest, DuplicateCheckNamePanics)
{
    InvariantAuditor auditor;
    auditor.registerCheck("dup", [](AuditContext &) {});
    EXPECT_DEATH(auditor.registerCheck("dup", [](AuditContext &) {}),
                 "duplicate audit check name");
}

TEST(InvariantAuditorTest, OffModeNeverAudits)
{
    InvariantAuditor auditor(AuditOptions{AuditMode::Off, 1});
    int runs = 0;
    auditor.registerCheck("count",
                          [&runs](AuditContext &) { ++runs; });
    auditor.onEvent(1000, 1);
    auditor.onCoherenceTransition(2);
    auditor.onEndOfRun(3);
    EXPECT_EQ(runs, 0);
    EXPECT_FALSE(auditor.enabled());
}

TEST(InvariantAuditorTest, EndModeAuditsOnlyAtEndOfRun)
{
    InvariantAuditor auditor; // default: End
    int runs = 0;
    auditor.registerCheck("count",
                          [&runs](AuditContext &) { ++runs; });
    auditor.onEvent(1'000'000, 1);
    auditor.onCoherenceTransition(2);
    EXPECT_EQ(runs, 0);
    auditor.onEndOfRun(3);
    EXPECT_EQ(runs, 1);
    EXPECT_EQ(auditor.auditsRun(), 1u);
}

TEST(InvariantAuditorTest, PeriodicModeAuditsOncePerPeriod)
{
    InvariantAuditor auditor(AuditOptions{AuditMode::Periodic, 100});
    int runs = 0;
    auditor.registerCheck("count",
                          [&runs](AuditContext &) { ++runs; });
    for (int i = 0; i < 10; ++i)
        auditor.onEvent(30, i); // 300 events = 3 full periods
    EXPECT_EQ(runs, 3);
    auditor.onCoherenceTransition(11); // not a paranoid trigger
    EXPECT_EQ(runs, 3);
    auditor.onEndOfRun(12);
    EXPECT_EQ(runs, 4);
}

TEST(InvariantAuditorTest, ParanoidModeAuditsEverywhere)
{
    InvariantAuditor auditor(
        AuditOptions{AuditMode::Paranoid, 1'000'000});
    int runs = 0;
    auditor.registerCheck("count",
                          [&runs](AuditContext &) { ++runs; });
    auditor.onEvent(1, 1);
    auditor.onCoherenceTransition(2);
    auditor.onEndOfRun(3);
    EXPECT_EQ(runs, 3);
}

TEST(InvariantAuditorTest, ViolationsRouteToTheHandlerWithContext)
{
    InvariantAuditor auditor;
    std::vector<Violation> seen;
    auditor.setViolationHandler(
        [&seen](const Violation &v) { seen.push_back(v); });
    auditor.registerCheck("demo", [](AuditContext &ctx) {
        ctx.core = 3;
        ctx.violation(0xdead40, "something is off");
    });
    auditor.runAll(77);

    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0].check, "demo");
    EXPECT_EQ(seen[0].core, 3);
    EXPECT_EQ(seen[0].addr, 0xdead40u);
    EXPECT_EQ(seen[0].cycle, 77u);
    EXPECT_EQ(seen[0].detail, "something is off");
    EXPECT_EQ(auditor.violations(), 1u);

    const std::string line = formatViolation(seen[0]);
    EXPECT_NE(line.find("demo"), std::string::npos);
    EXPECT_NE(line.find("core=3"), std::string::npos);
    EXPECT_NE(line.find("0xdead40"), std::string::npos);
    EXPECT_NE(line.find("cycle=77"), std::string::npos);
}

TEST(InvariantAuditorDeathTest, DefaultHandlerAborts)
{
    InvariantAuditor auditor;
    auditor.registerCheck("fatal", [](AuditContext &ctx) {
        ctx.violation(0x40, "corrupt");
    });
    EXPECT_DEATH(auditor.runAll(1), "invariant violated: fatal");
}

} // namespace
} // namespace seesaw::check
