/**
 * @file
 * Mutation tests for the tag-store and SEESAW-partition audits: each
 * seeded corruption must fire exactly the check that guards it, and
 * uncorrupted stores must audit clean.
 */

#include <gtest/gtest.h>

#include "check/cache_audits.hh"
#include "check/invariant_auditor.hh"

namespace seesaw::check {
namespace {

/** Run @p fn as a one-off check and collect its violations. */
std::vector<Violation>
collect(const std::function<void(AuditContext &)> &fn)
{
    InvariantAuditor auditor;
    std::vector<Violation> seen;
    auditor.setViolationHandler(
        [&seen](const Violation &v) { seen.push_back(v); });
    auditor.registerCheck("under-test", fn);
    auditor.runAll(0);
    return seen;
}

std::vector<Violation>
auditTags(const SetAssocCache &tags, bool allow_duplicates = false)
{
    return collect([&](AuditContext &ctx) {
        auditTagStoreSanity(tags, ctx, allow_duplicates);
    });
}

/** The way holding @p pa (which must be resident). */
unsigned
wayOf(const SetAssocCache &tags, Addr pa)
{
    const unsigned set = tags.setIndex(pa);
    for (unsigned way = 0; way < tags.assoc(); ++way) {
        const CacheLine &line = tags.lineAt(set, way);
        if (line.valid && line.lineAddr == tags.lineAddrOf(pa))
            return way;
    }
    ADD_FAILURE() << "line not resident: " << pa;
    return 0;
}

TEST(CacheAuditsTest, PopulatedStoreAuditsClean)
{
    SetAssocCache tags(32 * 1024, 8);
    for (Addr pa = 0; pa < 64 * 1024; pa += 64)
        tags.insert(pa, SetAssocCache::InsertScope::FullSet,
                    CoherenceState::Exclusive, PageSize::Base4KB);
    for (Addr pa = 0; pa < 8 * 1024; pa += 128)
        tags.lookup(pa);
    EXPECT_TRUE(auditTags(tags).empty());
}

TEST(CacheAuditsTest, CatchesLineInTheWrongSet)
{
    SetAssocCache tags(32 * 1024, 8); // 64 sets, lineBits 6
    tags.insert(0x1000, SetAssocCache::InsertScope::FullSet,
                CoherenceState::Exclusive, PageSize::Base4KB);
    // Corrupt the tag so the stored line address names another set.
    tags.findLine(0x1000)->lineAddr ^= 0x1;
    const auto seen = auditTags(tags);
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_NE(seen[0].detail.find("unreachable"), std::string::npos);
}

TEST(CacheAuditsTest, CatchesDuplicateLinesWithinASet)
{
    SetAssocCache tags(32 * 1024, 8);
    tags.insert(0x2000, SetAssocCache::InsertScope::FullSet,
                CoherenceState::Exclusive, PageSize::Base4KB);
    // Same set (same bits 11:6), different tag — then corrupt it to
    // collide with the first line.
    const Addr alias = 0x2000 + 32 * 1024;
    tags.insert(alias, SetAssocCache::InsertScope::FullSet,
                CoherenceState::Exclusive, PageSize::Base4KB);
    tags.findLine(alias)->lineAddr = 0x2000 >> 6;

    const auto seen = auditTags(tags);
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_NE(seen[0].detail.find("also valid in way"),
              std::string::npos);

    // The same aliasing is legal under 4way-8way.
    EXPECT_TRUE(auditTags(tags, /*allow_duplicates=*/true).empty());
}

TEST(CacheAuditsTest, CatchesAmbiguousLruTimestamps)
{
    SetAssocCache tags(32 * 1024, 8);
    tags.insert(0x3000, SetAssocCache::InsertScope::FullSet,
                CoherenceState::Exclusive, PageSize::Base4KB);
    const Addr alias = 0x3000 + 32 * 1024;
    tags.insert(alias, SetAssocCache::InsertScope::FullSet,
                CoherenceState::Exclusive, PageSize::Base4KB);
    // Corrupt the policy side-state: two ways sharing one timestamp
    // makes the recency order ambiguous.
    ReplacementPolicy &policy = tags.replacementPolicy();
    const unsigned set = tags.setIndex(0x3000);
    policy.debugStateAt(set, wayOf(tags, alias)) =
        policy.debugStateAt(set, wayOf(tags, 0x3000));

    const auto seen = auditTags(tags);
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_NE(seen[0].detail.find("duplicate LRU timestamp"),
              std::string::npos);
}

TEST(CacheAuditsTest, CatchesLruClockRunningBehindALine)
{
    SetAssocCache tags(32 * 1024, 8);
    tags.insert(0x4000, SetAssocCache::InsertScope::FullSet,
                CoherenceState::Exclusive, PageSize::Base4KB);
    tags.replacementPolicy().debugStateAt(
        tags.setIndex(0x4000), wayOf(tags, 0x4000)) += 100;
    const auto seen = auditTags(tags);
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_NE(seen[0].detail.find("exceeds use clock"),
              std::string::npos);
}

TEST(CacheAuditsTest, CatchesPolicyOccupancyDisagreement)
{
    SetAssocCache tags(32 * 1024, 8);
    tags.insert(0x6000, SetAssocCache::InsertScope::FullSet,
                CoherenceState::Exclusive, PageSize::Base4KB);
    // Kill the line behind the policy's back (state too, so only the
    // occupancy check fires).
    CacheLine *line = tags.findLine(0x6000);
    line->valid = false;
    line->state = CoherenceState::Invalid;
    const auto seen = auditTags(tags);
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_NE(seen[0].detail.find("tracks an invalid line"),
              std::string::npos);
}

TEST(CacheAuditsTest, CatchesSrripRrpvOutOfRange)
{
    ReplacementParams params;
    params.kind = ReplacementKind::Srrip;
    params.rripBits = 2; // RRPVs 0..3
    SetAssocCache tags(32 * 1024, 8, 64, 1, params);
    tags.insert(0x7000, SetAssocCache::InsertScope::FullSet,
                CoherenceState::Exclusive, PageSize::Base4KB);
    EXPECT_TRUE(auditTags(tags).empty());
    tags.replacementPolicy().debugStateAt(
        tags.setIndex(0x7000), wayOf(tags, 0x7000)) = 99;
    const auto seen = auditTags(tags);
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_NE(seen[0].detail.find("out of range"), std::string::npos);
}

TEST(CacheAuditsTest, RandomPolicyStoreAuditsClean)
{
    ReplacementParams params;
    params.kind = ReplacementKind::Random;
    params.seed = 7;
    SetAssocCache tags(32 * 1024, 8, 64, 1, params);
    for (Addr pa = 0; pa < 64 * 1024; pa += 64)
        tags.insert(pa, SetAssocCache::InsertScope::FullSet,
                    CoherenceState::Exclusive, PageSize::Base4KB);
    EXPECT_TRUE(auditTags(tags).empty());
}

TEST(CacheAuditsTest, CatchesValidLineInStateInvalid)
{
    SetAssocCache tags(32 * 1024, 8);
    tags.insert(0x5000, SetAssocCache::InsertScope::FullSet,
                CoherenceState::Shared, PageSize::Base4KB);
    tags.findLine(0x5000)->state = CoherenceState::Invalid;
    const auto seen = auditTags(tags);
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_NE(seen[0].detail.find("state Invalid"), std::string::npos);
}

// ------------------------------------------------------------------
// SEESAW partition placement.

SeesawConfig
seesawConfig(InsertionPolicy policy)
{
    SeesawConfig c;
    c.sizeBytes = 32 * 1024;
    c.assoc = 8;
    c.partitionWays = 4; // 2 partitions; partition bit = PA bit 12
    c.policy = policy;
    return c;
}

std::vector<Violation>
auditPlacement(const SeesawCache &cache)
{
    return collect([&](AuditContext &ctx) {
        auditSeesawPlacement(cache, ctx);
    });
}

TEST(CacheAuditsTest, SeesawPlacementAuditsCleanAfterTraffic)
{
    LatencyTable latency;
    SeesawCache cache(seesawConfig(InsertionPolicy::FourWay), latency);
    for (Addr va = 0; va < 256 * 1024; va += 64) {
        L1Access req;
        req.va = va;
        req.pa = va; // identity 2MB mapping
        req.pageSize = PageSize::Super2MB;
        cache.access(req);
    }
    EXPECT_TRUE(auditPlacement(cache).empty());
}

TEST(CacheAuditsTest, CatchesLineMovedOutOfItsPaPartition)
{
    LatencyTable latency;
    SeesawCache cache(seesawConfig(InsertionPolicy::FourWay), latency);
    L1Access req;
    req.va = 0x1000;
    req.pa = 0x1000;
    req.pageSize = PageSize::Base4KB;
    cache.access(req);

    // The issue's seeded corruption: rename a resident 4KB line so its
    // PA names the other partition while the line stays in this one —
    // flip the partition bit (bit 12 = lineAddr bit 6) only.
    CacheLine *line = cache.tags().findLine(0x1000);
    ASSERT_NE(line, nullptr);
    line->lineAddr ^= 1ULL << 6;

    const auto seen = auditPlacement(cache);
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_NE(seen[0].detail.find("names partition"),
              std::string::npos);
}

TEST(CacheAuditsTest, FourWayEightWayConstrainsOnlySuperpageLines)
{
    LatencyTable latency;
    SeesawCache cache(
        seesawConfig(InsertionPolicy::FourWayEightWay), latency);

    // A base-page line out of its PA partition: allowed (set-wide
    // victims for base pages).
    L1Access base;
    base.va = 0x1000;
    base.pa = 0x1000;
    base.pageSize = PageSize::Base4KB;
    cache.access(base);
    CacheLine *base_line = cache.tags().findLine(0x1000);
    ASSERT_NE(base_line, nullptr);
    base_line->lineAddr ^= 1ULL << 6;
    EXPECT_TRUE(auditPlacement(cache).empty());

    // But a superpage line must still honour the invariant.
    L1Access super;
    super.va = 0x40000000;
    super.pa = 0x40000000;
    super.pageSize = PageSize::Super2MB;
    cache.access(super);
    CacheLine *super_line = cache.tags().findLine(0x40000000);
    ASSERT_NE(super_line, nullptr);
    super_line->lineAddr ^= 1ULL << 6;
    EXPECT_EQ(auditPlacement(cache).size(), 1u);
}

// ------------------------------------------------------------------
// Prefetched-line placement (partition-scoped fills, every policy).

std::vector<Violation>
auditPrefetch(const SeesawCache &cache)
{
    return collect([&](AuditContext &ctx) {
        auditPrefetchPlacement(cache, ctx);
    });
}

TEST(CacheAuditsTest, PrefetchPlacementAuditsCleanAfterFills)
{
    LatencyTable latency;
    SeesawCache cache(seesawConfig(InsertionPolicy::FourWayEightWay),
                      latency);
    for (Addr pa = 0; pa < 64 * 1024; pa += 64)
        cache.prefetchFill(pa, PageSize::Base4KB);
    EXPECT_TRUE(auditPrefetch(cache).empty());
}

TEST(CacheAuditsTest, CatchesPrefetchedLineOutsideItsPartition)
{
    LatencyTable latency;
    SeesawCache cache(seesawConfig(InsertionPolicy::FourWayEightWay),
                      latency);
    cache.prefetchFill(0x1000, PageSize::Base4KB);
    CacheLine *line = cache.tags().findLine(0x1000);
    ASSERT_NE(line, nullptr);
    ASSERT_TRUE(line->prefetched);
    line->lineAddr ^= 1ULL << 6; // flip the partition bit

    // Base-page lines are exempt from the general 4way-8way placement
    // rule, but a *prefetched* line never is.
    EXPECT_TRUE(auditPlacement(cache).empty());
    const auto seen = auditPrefetch(cache);
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_NE(seen[0].detail.find("illegal prefetch crossing"),
              std::string::npos);
}

} // namespace
} // namespace seesaw::check
