/**
 * @file
 * End-to-end audit coverage: paranoid-mode runs over every paper
 * workload must complete without a single invariant violation (the
 * default handler aborts the process on one), the audit layer must
 * stay out of the way when disabled, and a seeded whole-system
 * corruption — a splinter applied behind the simulator's back — must
 * be caught by the TFT/TLB audits.
 */

#include <gtest/gtest.h>

#include "check/invariant_auditor.hh"
#include "sim/sim_engine.hh"

namespace seesaw {
namespace {

/** A footprint small enough that paranoid cadence stays fast. */
WorkloadSpec
shrunk(const WorkloadSpec &spec)
{
    WorkloadSpec w = spec;
    w.footprintBytes = std::min<std::uint64_t>(w.footprintBytes,
                                               4ULL << 20);
    w.hotSetBytes = std::min(w.hotSetBytes, w.footprintBytes / 2);
    w.codeFootprintBytes =
        std::min<std::uint64_t>(w.codeFootprintBytes, 1ULL << 20);
    return w;
}

SystemConfig
paranoidConfig(L1Kind kind)
{
    SystemConfig cfg;
    cfg.l1Kind = kind;
    cfg.instructions = 6'000;
    cfg.warmupInstructions = 3'000;
    cfg.audit.mode = check::AuditMode::Paranoid;
    return cfg;
}

TEST(AuditIntegrationTest, ParanoidRunsCleanOverAllPaperWorkloads)
{
    if constexpr (!check::kAuditCompiledIn)
        GTEST_SKIP() << "audit layer compiled out";

    for (L1Kind kind : {L1Kind::Seesaw, L1Kind::ViptBaseline}) {
        for (const WorkloadSpec &spec : paperWorkloads()) {
            SimEngine system(paranoidConfig(kind), shrunk(spec));
            system.run(); // a violation would abort the process
            ASSERT_NE(system.auditor(), nullptr);
            EXPECT_GT(system.auditor()->auditsRun(), 0u)
                << spec.name;
            EXPECT_EQ(system.auditor()->violations(), 0u)
                << spec.name;
        }
    }
}

TEST(AuditIntegrationTest, ParanoidRunsCleanWithAnInstructionCache)
{
    if constexpr (!check::kAuditCompiledIn)
        GTEST_SKIP() << "audit layer compiled out";

    SystemConfig cfg = paranoidConfig(L1Kind::Seesaw);
    cfg.modelInstructionCache = true;
    SimEngine system(cfg, shrunk(findWorkload("nutch")));
    system.run();
    ASSERT_NE(system.auditor(), nullptr);
    EXPECT_EQ(system.auditor()->violations(), 0u);
}

TEST(AuditIntegrationTest, OffModeInstantiatesNoAuditor)
{
    SystemConfig cfg;
    cfg.instructions = 1'000;
    cfg.warmupInstructions = 0;
    cfg.audit.mode = check::AuditMode::Off;
    SimEngine system(cfg, shrunk(findWorkload("redis")));
    EXPECT_EQ(system.auditor(), nullptr);
    system.run();
}

TEST(AuditIntegrationTest, EndModeAuditsExactlyOnce)
{
    if constexpr (!check::kAuditCompiledIn)
        GTEST_SKIP() << "audit layer compiled out";

    SystemConfig cfg;
    cfg.instructions = 5'000;
    cfg.warmupInstructions = 1'000;
    cfg.audit.mode = check::AuditMode::End;
    SimEngine system(cfg, shrunk(findWorkload("mcf")));
    system.run();
    ASSERT_NE(system.auditor(), nullptr);
    EXPECT_EQ(system.auditor()->auditsRun(), 1u);
    EXPECT_EQ(system.auditor()->violations(), 0u);
}

TEST(AuditIntegrationTest, CatchesTftDesyncAfterHiddenSplinter)
{
    if constexpr (!check::kAuditCompiledIn)
        GTEST_SKIP() << "audit layer compiled out";

    SystemConfig cfg;
    cfg.instructions = 20'000;
    cfg.warmupInstructions = 5'000;
    cfg.audit.mode = check::AuditMode::End;
    SimEngine system(cfg, shrunk(findWorkload("redis")));
    system.run();

    SeesawCache *l1 = system.seesawL1();
    ASSERT_NE(l1, nullptr);
    const auto supers = system.os().superpageVas(system.asid());
    ASSERT_FALSE(supers.empty());

    // The issue's seeded corruption: splinter a superpage the TFT
    // vouches for WITHOUT the invlpg applySplinter() would send — a
    // later TFT hit would commit the L1 to a partition the (now
    // base-paged) translation no longer guarantees.
    const Addr victim = supers.front();
    l1->tft().markRegion(victim);
    ASSERT_TRUE(
        system.os().splinter(system.asid(), victim).has_value());

    std::vector<check::Violation> seen;
    auto *auditor = system.auditor();
    ASSERT_NE(auditor, nullptr);
    auditor->setViolationHandler(
        [&seen](const check::Violation &v) { seen.push_back(v); });
    auditor->runAll(0);

    bool tft_violation = false;
    for (const auto &v : seen)
        tft_violation |= v.check == "l1.tft";
    EXPECT_TRUE(tft_violation);
}

TEST(AuditIntegrationTest, MultiCoreParanoidRunsClean)
{
    if constexpr (!check::kAuditCompiledIn)
        GTEST_SKIP() << "audit layer compiled out";

    SystemConfig cfg;
    cfg.cores = 2;
    cfg.instructions = 4'000;
    cfg.warmupInstructions = 1'000;
    cfg.audit.mode = check::AuditMode::Paranoid;
    SimEngine system(cfg, shrunk(findWorkload("cann")));
    system.run();
    ASSERT_NE(system.auditor(), nullptr);
    EXPECT_GT(system.auditor()->auditsRun(), 0u);
    EXPECT_EQ(system.auditor()->violations(), 0u);
    EXPECT_TRUE(system.checkDirectoryInvariant());
}

TEST(AuditIntegrationTest, MultiCoreAuditCatchesSeededDirectoryDrift)
{
    if constexpr (!check::kAuditCompiledIn)
        GTEST_SKIP() << "audit layer compiled out";

    SystemConfig cfg;
    cfg.cores = 2;
    cfg.instructions = 4'000;
    cfg.warmupInstructions = 1'000;
    cfg.audit.mode = check::AuditMode::End;
    SimEngine system(cfg, shrunk(findWorkload("cann")));
    system.run();
    ASSERT_TRUE(system.checkDirectoryInvariant());

    // Flip one sharer bit: pick any line core 0 holds and make the
    // directory forget it.
    Addr victim = 0;
    bool found = false;
    const SetAssocCache &tags = system.l1(0).tags();
    unsigned line_bits = 0;
    while ((1U << line_bits) < tags.lineBytes())
        ++line_bits;
    tags.forEachValidLine([&](const CacheLine &line) {
        if (!found) {
            victim = line.lineAddr << line_bits;
            found = true;
        }
    });
    ASSERT_TRUE(found);
    ASSERT_NE(system.directory(), nullptr);
    system.directory()->recordEviction(0, victim);
    EXPECT_FALSE(system.checkDirectoryInvariant());
}

} // namespace
} // namespace seesaw
