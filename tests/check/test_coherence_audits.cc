/**
 * @file
 * Mutation tests for the MOESI directory-consistency audit: seeded
 * corruptions of the directory or of a cache's coherence state must
 * each fire the check, and consistent state must audit clean.
 */

#include <gtest/gtest.h>

#include "check/coherence_audits.hh"
#include "check/invariant_auditor.hh"
#include "core/seesaw_cache.hh"

namespace seesaw::check {
namespace {

constexpr Addr kExclusiveLine = 0x1000; // core 0, Exclusive
constexpr Addr kSharedLine = 0x2000;    // both cores, Shared
constexpr Addr kDirtyLine = 0x3000;     // core 1, Modified

SeesawConfig
cacheConfig()
{
    SeesawConfig c;
    c.sizeBytes = 32 * 1024;
    c.assoc = 8;
    c.partitionWays = 4;
    return c;
}

/**
 * Two cores with a consistent little MOESI world: an Exclusive line
 * on core 0, a Shared line on both, and a Modified line on core 1.
 */
struct CoherenceAuditsTest : ::testing::Test
{
    LatencyTable latency;
    ExactDirectory dir{2};
    SeesawCache c0{cacheConfig(), latency};
    SeesawCache c1{cacheConfig(), latency};
    std::vector<const L1Cache *> l1s{&c0, &c1};

    CoherenceAuditsTest()
    {
        install(c0, kExclusiveLine, CoherenceState::Exclusive);
        dir.recordFill(0, kExclusiveLine, false);

        install(c0, kSharedLine, CoherenceState::Shared);
        install(c1, kSharedLine, CoherenceState::Shared);
        dir.recordFill(0, kSharedLine, false);
        dir.recordFill(1, kSharedLine, false);

        install(c1, kDirtyLine, CoherenceState::Modified);
        dir.recordFill(1, kDirtyLine, true);
    }

    static void
    install(SeesawCache &cache, Addr pa, CoherenceState state)
    {
        cache.tags().insert(pa, SetAssocCache::InsertScope::FullSet,
                            state, PageSize::Base4KB);
    }

    std::vector<Violation>
    audit()
    {
        InvariantAuditor auditor;
        std::vector<Violation> seen;
        auditor.setViolationHandler(
            [&seen](const Violation &v) { seen.push_back(v); });
        auditor.registerCheck("directory", [&](AuditContext &ctx) {
            auditDirectoryConsistency(dir, l1s, ctx);
        });
        auditor.runAll(0);
        return seen;
    }
};

TEST_F(CoherenceAuditsTest, ConsistentStateAuditsClean)
{
    EXPECT_TRUE(audit().empty());
}

TEST_F(CoherenceAuditsTest, CatchesFlippedSharerBit)
{
    // The issue's seeded corruption: clear core 0's sharer bit while
    // its cache still holds the line — probes can no longer reach
    // that copy.
    dir.recordEviction(0, kExclusiveLine);
    const auto seen = audit();
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0].addr, kExclusiveLine >> 6 << 6);
    EXPECT_NE(seen[0].detail.find("untracked copy"),
              std::string::npos);
}

TEST_F(CoherenceAuditsTest, CatchesPhantomSharer)
{
    // The opposite flip: the directory claims a core that holds
    // nothing.
    dir.recordFill(1, 0x9000, false);
    const auto seen = audit();
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_NE(seen[0].detail.find("does not hold it"),
              std::string::npos);
}

TEST_F(CoherenceAuditsTest, CatchesDirtyCopyAtTheWrongOwner)
{
    CacheLine *line = c0.tags().findLine(kSharedLine);
    ASSERT_NE(line, nullptr);
    line->state = CoherenceState::Modified;
    const auto seen = audit();
    ASSERT_FALSE(seen.empty());
    bool found_owner_violation = false;
    for (const auto &v : seen)
        found_owner_violation |=
            v.detail.find("directory owner") != std::string::npos;
    EXPECT_TRUE(found_owner_violation);
}

TEST_F(CoherenceAuditsTest, CatchesExclusiveWithMultipleCopies)
{
    CacheLine *line = c1.tags().findLine(kSharedLine);
    ASSERT_NE(line, nullptr);
    line->state = CoherenceState::Exclusive;
    const auto seen = audit();
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_NE(seen[0].detail.find("sole copy system-wide"),
              std::string::npos);
}

TEST_F(CoherenceAuditsTest, CatchesOwnerDowngradedBehindTheDirectory)
{
    // Core 1's Modified copy silently becomes Shared: nobody is dirty
    // any more, yet the directory still routes owner-supplies to it.
    // The audit only demands dirty => owner, so instead corrupt the
    // other way: drop the copy entirely without recordEviction.
    CacheLine *line = c1.tags().findLine(kDirtyLine);
    ASSERT_NE(line, nullptr);
    c1.tags().invalidate(kDirtyLine);
    const auto seen = audit();
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_NE(seen[0].detail.find("does not hold it"),
              std::string::npos);
}

TEST_F(CoherenceAuditsTest, ReportsMissingL1Vector)
{
    l1s.pop_back();
    const auto seen = audit();
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_NE(seen[0].detail.find("L1s were supplied"),
              std::string::npos);
}

} // namespace
} // namespace seesaw::check
