/** @file Tests for the store's JSON parser. */

#include <gtest/gtest.h>

#include <string>

#include "store/json_value.hh"

namespace seesaw::store {
namespace {

JsonValue
parseOk(const std::string &text)
{
    JsonValue v;
    std::string error;
    EXPECT_TRUE(parseJson(text, v, error)) << error;
    return v;
}

std::string
parseError(const std::string &text)
{
    JsonValue v;
    std::string error;
    EXPECT_FALSE(parseJson(text, v, error)) << "parsed: " << text;
    EXPECT_FALSE(error.empty());
    return error;
}

TEST(JsonValue, ParsesScalars)
{
    EXPECT_EQ(parseOk("null").kind, JsonValue::Kind::Null);
    EXPECT_TRUE(parseOk("true").boolean);
    EXPECT_FALSE(parseOk("false").boolean);
    EXPECT_EQ(parseOk("\"hi\"").str, "hi");

    const JsonValue n = parseOk("42");
    EXPECT_TRUE(n.isNumber());
    EXPECT_TRUE(n.integral);
    EXPECT_EQ(n.asU64(), 42u);

    const JsonValue d = parseOk("0.5");
    EXPECT_TRUE(d.isNumber());
    EXPECT_FALSE(d.integral);
    EXPECT_DOUBLE_EQ(d.asDouble(), 0.5);
}

TEST(JsonValue, IntegerDoubleDistinctionFollowsSyntax)
{
    // The store round-trips stats through this parser; whether a
    // number re-serializes as integer or %.17g double depends only
    // on how it was spelled.
    EXPECT_TRUE(parseOk("7").integral);
    EXPECT_FALSE(parseOk("7.0").integral);
    EXPECT_FALSE(parseOk("7e0").integral);
    EXPECT_FALSE(parseOk("-7").integral); // stats are unsigned
    EXPECT_DOUBLE_EQ(parseOk("-7").asDouble(), -7.0);
    // An integral value reads back exactly even at 64-bit width.
    EXPECT_EQ(parseOk("18446744073709551615").asU64(),
              18446744073709551615ull);
}

TEST(JsonValue, ObjectsPreserveDocumentOrder)
{
    const JsonValue v = parseOk(R"({"z":1,"a":2,"m":3})");
    ASSERT_TRUE(v.isObject());
    ASSERT_EQ(v.members.size(), 3u);
    EXPECT_EQ(v.members[0].first, "z");
    EXPECT_EQ(v.members[1].first, "a");
    EXPECT_EQ(v.members[2].first, "m");
    EXPECT_EQ(v.at("a").asU64(), 2u);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonValue, ParsesNestedDocuments)
{
    const JsonValue v = parseOk(
        R"({"stats":{"ipc":1.5,"cycles":10},"per_core":[{"x":1},{"x":2}]})");
    EXPECT_DOUBLE_EQ(v.at("stats").at("ipc").asDouble(), 1.5);
    ASSERT_EQ(v.at("per_core").items.size(), 2u);
    EXPECT_EQ(v.at("per_core").items[1].at("x").asU64(), 2u);
}

TEST(JsonValue, DecodesEscapes)
{
    EXPECT_EQ(parseOk(R"("a\"b\\c\nd\te")").str, "a\"b\\c\nd\te");
    EXPECT_EQ(parseOk(R"("Aé")").str, "A\xc3\xa9");
}

TEST(JsonValue, RejectsMalformedInput)
{
    parseError("");
    parseError("{");
    parseError("{\"a\":}");
    parseError("[1,]");
    parseError("\"unterminated");
    parseError("{\"a\":1} trailing");
    parseError("nul");
}

TEST(JsonValue, ErrorsCarryLineNumbers)
{
    const std::string error = parseError("{\n\"a\": 1,\n\"b\": }\n");
    EXPECT_NE(error.find("3"), std::string::npos) << error;
}

} // namespace
} // namespace seesaw::store
