/** @file Tests for the durable campaign result store. */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/sinks.hh"
#include "store/result_store.hh"
#include "store/store_sink.hh"

namespace fs = std::filesystem;

namespace seesaw::store {
namespace {

/** A fresh store directory, removed on destruction. */
class TempStore
{
  public:
    TempStore()
    {
        std::string templ =
            (fs::temp_directory_path() / "seesaw-store-XXXXXX")
                .string();
        dir_ = ::mkdtemp(templ.data());
        EXPECT_FALSE(dir_.empty());
    }

    ~TempStore() { fs::remove_all(dir_); }

    const std::string &dir() const { return dir_; }

  private:
    std::string dir_;
};

harness::CellResult
makeCell(const std::string &workload, std::uint64_t seed,
         std::uint64_t instructions)
{
    harness::CellResult cell;
    cell.name = workload + "/unit";
    cell.workload = workload;
    cell.seed = seed;
    cell.configHash = 0x1234'5678'9abc'def0ULL;
    cell.wallSeconds = 0.25;
    cell.result.workload = workload;
    cell.result.instructions = instructions;
    cell.result.cycles = instructions * 2;
    cell.result.ipc = 0.5;
    cell.result.energyTotalNj = 1234.5678901234567;
    cell.result.pageFaults = 7;
    return cell;
}

harness::CampaignMetadata
unitMeta()
{
    harness::CampaignMetadata meta;
    meta.campaign = "unit";
    meta.gitDescribe = "deadbeef";
    return meta;
}

TEST(ResultStore, RecordRoundTripsThroughItsLineFormat)
{
    const CellRecord record =
        makeRecord(unitMeta(), makeCell("redis", 3, 1000));
    std::ostringstream os;
    writeRecordLine(os, record);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(
        os.str().substr(0, os.str().size() - 1), doc, error))
        << error;
    CellRecord back;
    ASSERT_EQ(parseRecord(doc, back), "");
    EXPECT_EQ(back.key, record.key);
    EXPECT_EQ(back.cell, record.cell);
    EXPECT_EQ(back.campaign, "unit");
    EXPECT_EQ(back.stats, record.stats);

    const harness::CellResult cell = toCellResult(back);
    EXPECT_EQ(cell.workload, "redis");
    EXPECT_EQ(cell.result.instructions, 1000u);
    EXPECT_EQ(cell.result.cycles, 2000u);
    EXPECT_DOUBLE_EQ(cell.result.ipc, 0.5);
    EXPECT_DOUBLE_EQ(cell.result.energyTotalNj, 1234.5678901234567);
    EXPECT_EQ(cell.result.pageFaults, 7u);
}

TEST(ResultStore, UpsertIsLastWriterWinsAndIdempotent)
{
    TempStore store;
    {
        SegmentWriter writer(store.dir(), "w0");
        writer.upsert(makeRecord(unitMeta(), makeCell("redis", 1, 10)));
        writer.upsert(makeRecord(unitMeta(), makeCell("mcf", 1, 20)));
        // Same key again with different stats: the later record wins.
        writer.upsert(makeRecord(unitMeta(), makeCell("redis", 1, 99)));
    }

    StoreSnapshot snap;
    ASSERT_EQ(loadStore(store.dir(), snap), "");
    EXPECT_EQ(snap.latest.size(), 2u);
    EXPECT_EQ(snap.history.size(), 3u);
    const CellKey redis{"redis", 0x1234'5678'9abc'def0ULL, 1};
    ASSERT_TRUE(snap.contains(redis));
    EXPECT_EQ(toCellResult(snap.latest.at(redis))
                  .result.instructions,
              99u);

    // Re-upserting the winning record changes nothing observable.
    {
        SegmentWriter writer(store.dir(), "w1");
        writer.upsert(makeRecord(unitMeta(), makeCell("redis", 1, 99)));
    }
    std::ostringstream before, after;
    canonicalDump(before, snap);
    ASSERT_EQ(loadStore(store.dir(), snap), "");
    canonicalDump(after, snap);
    EXPECT_EQ(before.str(), after.str());
}

TEST(ResultStore, RejectsForeignSchemaVersions)
{
    TempStore store;
    ASSERT_EQ(initStore(store.dir()), "");
    {
        std::ofstream os(store.dir() + "/MANIFEST.json",
                         std::ios::trunc);
        os << "{\"schema_version\": 999}\n";
    }
    StoreSnapshot snap;
    const std::string error = loadStore(store.dir(), snap);
    EXPECT_NE(error.find("schema version 999"), std::string::npos)
        << error;
    // Writers refuse too: initStore on the same dir reports the
    // mismatch instead of clobbering the manifest.
    EXPECT_NE(initStore(store.dir()).find("schema version"),
              std::string::npos);
}

TEST(ResultStore, ToleratesExactlyOneTornSegmentTail)
{
    TempStore store;
    {
        SegmentWriter writer(store.dir(), "w0");
        writer.upsert(makeRecord(unitMeta(), makeCell("redis", 1, 10)));
        writer.upsert(makeRecord(unitMeta(), makeCell("mcf", 1, 20)));
    }
    // A crash mid-append leaves a final line without its newline.
    {
        std::ofstream os(store.dir() + "/segments/w0.jsonl",
                         std::ios::app);
        os << "{\"v\":1,\"workload\":\"tr";
    }
    StoreSnapshot snap;
    ASSERT_EQ(loadStore(store.dir(), snap), "");
    EXPECT_EQ(snap.latest.size(), 2u);
    EXPECT_EQ(snap.tornTails, 1u);

    // The same damage in the middle of a file is corruption: a
    // newline after the partial record makes it a completed,
    // malformed line, which must fail loudly.
    {
        std::ofstream os(store.dir() + "/segments/w0.jsonl",
                         std::ios::app);
        os << "uncated\n";
    }
    const std::string error = loadStore(store.dir(), snap);
    EXPECT_FALSE(error.empty());
}

TEST(ResultStore, CompactionFoldsSegmentsWithoutChangingTheDump)
{
    TempStore store;
    {
        SegmentWriter w0(store.dir(), "w0");
        SegmentWriter w1(store.dir(), "w1");
        w0.upsert(makeRecord(unitMeta(), makeCell("redis", 1, 10)));
        w1.upsert(makeRecord(unitMeta(), makeCell("mcf", 1, 20)));
        w0.upsert(makeRecord(unitMeta(), makeCell("redis", 2, 30)));
        w1.upsert(makeRecord(unitMeta(), makeCell("redis", 1, 40)));
    }
    StoreSnapshot snap;
    ASSERT_EQ(loadStore(store.dir(), snap), "");
    std::ostringstream before;
    canonicalDump(before, snap);

    ASSERT_EQ(compactStore(store.dir()), "");
    EXPECT_TRUE(fs::exists(store.dir() + "/index.jsonl"));
    EXPECT_FALSE(fs::exists(store.dir() + "/segments/w0.jsonl"));
    EXPECT_FALSE(fs::exists(store.dir() + "/segments/w1.jsonl"));

    ASSERT_EQ(loadStore(store.dir(), snap), "");
    std::ostringstream after;
    canonicalDump(after, snap);
    EXPECT_EQ(before.str(), after.str());
    EXPECT_EQ(snap.latest.size(), 3u);
    // Compaction drops superseded history: latest records only.
    EXPECT_EQ(snap.history.size(), 3u);

    // New segments appended after a compaction still override the
    // index (load order: index first, then segments).
    {
        SegmentWriter w2(store.dir(), "w2");
        w2.upsert(makeRecord(unitMeta(), makeCell("redis", 1, 50)));
    }
    ASSERT_EQ(loadStore(store.dir(), snap), "");
    const CellKey redis{"redis", 0x1234'5678'9abc'def0ULL, 1};
    EXPECT_EQ(toCellResult(snap.latest.at(redis))
                  .result.instructions,
              50u);
}

TEST(ResultStore, StoreSinkRecordsCellsAsTheyComplete)
{
    TempStore store;
    {
        StoreSink sink(store.dir(), unitMeta(), "driver");
        const auto hook = sink.hook();
        hook(makeCell("redis", 1, 10));
        hook(makeCell("mcf", 1, 20));
        EXPECT_EQ(sink.recorded(), 2u);
    }
    StoreSnapshot snap;
    ASSERT_EQ(loadStore(store.dir(), snap), "");
    EXPECT_EQ(snap.latest.size(), 2u);
    EXPECT_TRUE(
        fs::exists(store.dir() + "/segments/driver.jsonl"));
}

TEST(ResultStore, CanonicalDumpOmitsVolatileFields)
{
    TempStore store;
    {
        StoreSink sink(store.dir(), unitMeta(), "driver");
        sink.record(makeCell("redis", 1, 10));
    }
    StoreSnapshot snap;
    ASSERT_EQ(loadStore(store.dir(), snap), "");
    std::ostringstream os;
    canonicalDump(os, snap);
    const std::string dump = os.str();
    EXPECT_EQ(dump.find("wall_seconds"), std::string::npos);
    EXPECT_EQ(dump.find("deadbeef"), std::string::npos);
    EXPECT_EQ(dump.find("\"campaign\""), std::string::npos);
    EXPECT_NE(dump.find("\"workload\":\"redis\""),
              std::string::npos);
}

TEST(ResultStore, MultiCoreRecordsCarryPerCoreSlices)
{
    harness::CellResult cell = makeCell("tunk", 1, 100);
    cell.result.cores = 2;
    cell.result.perCore.resize(2);
    cell.result.perCore[0].instructions = 60;
    cell.result.perCore[1].instructions = 40;

    TempStore store;
    {
        StoreSink sink(store.dir(), unitMeta(), "driver");
        sink.record(cell);
    }
    StoreSnapshot snap;
    ASSERT_EQ(loadStore(store.dir(), snap), "");
    ASSERT_EQ(snap.latest.size(), 1u);
    const harness::CellResult back =
        toCellResult(snap.latest.begin()->second);
    EXPECT_EQ(back.result.cores, 2u);
    ASSERT_EQ(back.result.perCore.size(), 2u);
    EXPECT_EQ(back.result.perCore[0].instructions, 60u);
    EXPECT_EQ(back.result.perCore[1].instructions, 40u);
}

} // namespace
} // namespace seesaw::store
