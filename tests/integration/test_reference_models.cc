/** @file Property tests cross-checking the optimised structures
 *  against naive reference models under long random operation
 *  streams. */

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <set>
#include <vector>

#include "cache/set_assoc_cache.hh"
#include "common/random.hh"
#include "mem/buddy_allocator.hh"
#include "tlb/tlb.hh"

namespace seesaw {
namespace {

// ------------------------------------------------------------------
// SetAssocCache vs a naive per-set LRU list model.

class RefCacheModel
{
  public:
    RefCacheModel(unsigned sets, unsigned assoc)
        : sets_(sets), assoc_(assoc), lru_(sets)
    {
    }

    bool
    lookup(unsigned set, Addr line)
    {
        auto &l = lru_[set];
        auto it = std::find(l.begin(), l.end(), line);
        if (it == l.end())
            return false;
        l.erase(it);
        l.push_front(line); // MRU position
        return true;
    }

    /** @return The evicted line, if any. */
    std::optional<Addr>
    insert(unsigned set, Addr line)
    {
        auto &l = lru_[set];
        l.push_front(line);
        if (l.size() > assoc_) {
            const Addr victim = l.back();
            l.pop_back();
            return victim;
        }
        return std::nullopt;
    }

  private:
    unsigned sets_, assoc_;
    std::vector<std::list<Addr>> lru_;
};

TEST(ReferenceModels, SetAssocCacheMatchesNaiveLruModel)
{
    SetAssocCache cache(32 * 1024, 8); // 64 sets, unpartitioned
    RefCacheModel ref(64, 8);
    Rng rng(1234);

    for (int i = 0; i < 200000; ++i) {
        // Skewed address mix to exercise both hits and evictions.
        const Addr line = rng.nextBounded(4096);
        const Addr pa = line << 6;
        const unsigned set = cache.setIndex(pa);

        const bool model_hit = ref.lookup(set, line);
        const bool cache_hit = cache.lookup(pa).hit;
        ASSERT_EQ(cache_hit, model_hit) << "op " << i;

        if (!cache_hit) {
            const auto model_evict = ref.insert(set, line);
            const Eviction ev = cache.insert(
                pa, SetAssocCache::InsertScope::FullSet,
                CoherenceState::Exclusive, PageSize::Base4KB);
            ASSERT_EQ(ev.valid, model_evict.has_value()) << "op " << i;
            if (ev.valid) {
                ASSERT_EQ(ev.lineAddr, *model_evict) << "op " << i;
            }
        }
    }
}

TEST(ReferenceModels, PartitionedCacheIsTwoIndependentLruHalves)
{
    // Under Partition scope, each partition must behave exactly like
    // an independent 4-way LRU cache keyed by (set, partition).
    SetAssocCache cache(32 * 1024, 8, 64, 2);
    RefCacheModel ref(128, 4); // (set, partition) flattened
    Rng rng(99);

    for (int i = 0; i < 200000; ++i) {
        const Addr line = rng.nextBounded(8192);
        const Addr pa = line << 6;
        const unsigned set = cache.setIndex(pa);
        const unsigned part = cache.partitionIndex(pa);
        const unsigned flat = set * 2 + part;

        const bool model_hit = ref.lookup(flat, line);
        const bool cache_hit = cache.lookupPartition(pa, part).hit;
        ASSERT_EQ(cache_hit, model_hit) << "op " << i;
        if (!cache_hit) {
            const auto model_evict = ref.insert(flat, line);
            const Eviction ev = cache.insert(
                pa, SetAssocCache::InsertScope::Partition,
                CoherenceState::Exclusive, PageSize::Base4KB);
            ASSERT_EQ(ev.valid, model_evict.has_value());
            if (ev.valid) {
                ASSERT_EQ(ev.lineAddr, *model_evict);
            }
        }
    }
    EXPECT_TRUE(cache.checkPlacementInvariant());
}

// ------------------------------------------------------------------
// BuddyAllocator vs a naive interval model.

TEST(ReferenceModels, BuddyAllocatorNeverOverlapsAndAlwaysCoalesces)
{
    BuddyAllocator buddy(64ULL << 20); // 16384 frames
    Rng rng(77);

    std::map<std::uint64_t, unsigned> live; // start frame -> order
    std::set<std::uint64_t> used_frames;

    for (int i = 0; i < 50000; ++i) {
        if (live.empty() || rng.chance(0.55)) {
            const unsigned order = rng.nextBounded(6);
            auto frame = buddy.allocate(order);
            if (!frame)
                continue;
            // Alignment.
            ASSERT_EQ(*frame % (1ULL << order), 0u);
            // No overlap with any live block.
            for (std::uint64_t f = *frame;
                 f < *frame + (1ULL << order); ++f) {
                ASSERT_TRUE(used_frames.insert(f).second)
                    << "frame " << f << " double-allocated";
            }
            live.emplace(*frame, order);
        } else {
            auto it = live.begin();
            std::advance(it, rng.nextBounded(live.size()));
            for (std::uint64_t f = it->first;
                 f < it->first + (1ULL << it->second); ++f) {
                used_frames.erase(f);
            }
            buddy.free(it->first, it->second);
            live.erase(it);
        }
        // Frame accounting must match exactly at every step.
        ASSERT_EQ(buddy.freeFrames(),
                  buddy.totalFrames() - used_frames.size());
    }

    // Free everything: full coalescing back to pristine state.
    for (const auto &[frame, order] : live)
        buddy.free(frame, order);
    EXPECT_EQ(buddy.freeFrames(), buddy.totalFrames());
    EXPECT_EQ(buddy.fragmentationIndex(9), 0.0);
}

// ------------------------------------------------------------------
// TLB vs a naive map model with LRU per set.

TEST(ReferenceModels, TlbMatchesNaiveModel)
{
    Tlb tlb("ref", 32, 4, PageSize::Base4KB); // 8 sets x 4 ways
    RefCacheModel ref(8, 4);                  // reuse: key = vpn
    Rng rng(55);

    for (int i = 0; i < 100000; ++i) {
        const Addr vpn = rng.nextBounded(256);
        const Addr va = vpn << 12;
        const unsigned set = static_cast<unsigned>(vpn % 8);

        const bool model_hit = ref.lookup(set, vpn);
        const bool tlb_hit = tlb.lookup(1, va).has_value();
        ASSERT_EQ(tlb_hit, model_hit) << "op " << i;
        if (!tlb_hit) {
            ref.insert(set, vpn);
            tlb.insert(1, va, va);
        }
    }
}

} // namespace
} // namespace seesaw
