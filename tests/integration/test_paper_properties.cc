/** @file End-to-end property tests of the paper's headline claims, run
 *  at reduced scale. The bench binaries reproduce the full figures;
 *  these tests pin the *directions* the paper asserts so regressions
 *  are caught by ctest. */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace seesaw {
namespace {

constexpr std::uint64_t kMB = 1ULL << 20;

WorkloadSpec
shrink(const std::string &name)
{
    WorkloadSpec w = findWorkload(name);
    w.footprintBytes = std::min<std::uint64_t>(w.footprintBytes,
                                               24 * kMB);
    w.hotSetBytes = std::min(w.hotSetBytes, 1 * kMB);
    return w;
}

SystemConfig
quickConfig()
{
    SystemConfig c;
    c.instructions = 150'000;
    c.os.memBytes = 512 * kMB;
    c.seed = 7;
    return c;
}

TEST(PaperProperties, SeesawNeverDegradesPerformance)
{
    // §VI-F: "SEESAW never degrades performance. At worst, it
    // maintains baseline performance in the absence of superpages."
    for (const char *name : {"redis", "mcf", "g500", "omnet"}) {
        const auto cmp =
            compareBaselineVsSeesaw(shrink(name), quickConfig());
        EXPECT_GE(cmp.runtimeImprovementPct, -0.25) << name;
    }
}

TEST(PaperProperties, SeesawAlwaysSavesEnergy)
{
    for (const char *name : {"redis", "tunk", "astar"}) {
        const auto cmp =
            compareBaselineVsSeesaw(shrink(name), quickConfig());
        EXPECT_GT(cmp.energySavedPct, 0.0) << name;
    }
}

TEST(PaperProperties, InOrderBenefitsExceedOutOfOrder)
{
    // Fig 9 vs Fig 8: in-order cores cannot hide L1 latency, so
    // SEESAW helps them more.
    SystemConfig ooo = quickConfig();
    SystemConfig ino = quickConfig();
    ino.coreKind = CoreKind::InOrder;
    const WorkloadSpec w = shrink("redis");
    const double ooo_gain =
        compareBaselineVsSeesaw(w, ooo).runtimeImprovementPct;
    const double ino_gain =
        compareBaselineVsSeesaw(w, ino).runtimeImprovementPct;
    EXPECT_GT(ino_gain, ooo_gain);
}

TEST(PaperProperties, LargerCachesBenefitMore)
{
    // Fig 7: the larger the (VIPT-constrained) cache, the bigger the
    // gap between the slow full-set hit and SEESAW's partition hit.
    SystemConfig cfg = quickConfig();
    const WorkloadSpec w = shrink("redis");

    cfg.l1SizeBytes = 32 * 1024;
    cfg.l1Assoc = 8;
    const double gain32 =
        compareBaselineVsSeesaw(w, cfg).runtimeImprovementPct;

    cfg.l1SizeBytes = 128 * 1024;
    cfg.l1Assoc = 32;
    const double gain128 =
        compareBaselineVsSeesaw(w, cfg).runtimeImprovementPct;
    EXPECT_GT(gain128, gain32);
}

TEST(PaperProperties, FragmentationShrinksButKeepsBenefit)
{
    // Fig 12: heavy memhog load reduces but does not eliminate the
    // performance and energy benefits.
    SystemConfig cfg = quickConfig();
    const WorkloadSpec w = shrink("redis");
    const auto clean = compareBaselineVsSeesaw(w, cfg);

    cfg.memhogFraction = 0.6;
    const auto frag = compareBaselineVsSeesaw(w, cfg);

    EXPECT_LT(frag.seesaw.superpageCoverage,
              clean.seesaw.superpageCoverage);
    EXPECT_GT(frag.energySavedPct, 0.0);
    EXPECT_LE(frag.energySavedPct, clean.energySavedPct + 0.5);
}

TEST(PaperProperties, CoherenceSavingsLargerForMultithreaded)
{
    // Fig 11: multi-threaded workloads derive a larger share of their
    // energy savings from coherence lookups.
    SystemConfig cfg = quickConfig();
    const auto st = compareBaselineVsSeesaw(shrink("mcf"), cfg);
    const auto mt = compareBaselineVsSeesaw(shrink("tunk"), cfg);

    auto coherence_share = [](const DesignComparison &cmp) {
        const double coh = cmp.baseline.l1CoherenceDynamicNj -
                           cmp.seesaw.l1CoherenceDynamicNj;
        const double cpu = cmp.baseline.l1CpuDynamicNj -
                           cmp.seesaw.l1CpuDynamicNj;
        return coh / (coh + cpu);
    };
    EXPECT_GT(coherence_share(st), 0.0);
    EXPECT_GT(coherence_share(mt), coherence_share(st));
}

TEST(PaperProperties, WayPredictionAloneCanHurtPerformance)
{
    // Fig 15: on poor-locality workloads WP's mispredict replays cost
    // runtime; SEESAW never does.
    SystemConfig cfg = quickConfig();
    const WorkloadSpec w = shrink("g500"); // pointer chasing

    cfg.l1Kind = L1Kind::ViptBaseline;
    const RunResult base = simulate(w, cfg);
    cfg.l1Kind = L1Kind::ViptWayPredicted;
    const RunResult wp = simulate(w, cfg);
    cfg.l1Kind = L1Kind::Seesaw;
    const RunResult see = simulate(w, cfg);

    EXPECT_GT(wp.cycles, base.cycles);      // WP degrades runtime
    EXPECT_LE(see.cycles, base.cycles);     // SEESAW does not
}

TEST(PaperProperties, CombinedWpSeesawSavesTheMostEnergy)
{
    SystemConfig cfg = quickConfig();
    const WorkloadSpec w = shrink("nutch"); // good locality

    cfg.l1Kind = L1Kind::ViptBaseline;
    const RunResult base = simulate(w, cfg);
    cfg.l1Kind = L1Kind::Seesaw;
    const RunResult see = simulate(w, cfg);
    cfg.l1Kind = L1Kind::SeesawWayPredicted;
    const RunResult combined = simulate(w, cfg);

    const double see_saved = energySavedPercent(base, see);
    const double combined_saved = energySavedPercent(base, combined);
    EXPECT_GT(combined_saved, see_saved);
}

TEST(PaperProperties, SchedulerCounterPolicyHelpsWhenSuperpagesScarce)
{
    // §IV-B3: without the occupancy-counter policy, scarce superpages
    // cause chronic fast-assumption squashes.
    SystemConfig cfg = quickConfig();
    cfg.memhogFraction = 0.9; // superpages nearly unobtainable
    WorkloadSpec w = shrink("redis");
    w.thpEligibleFraction = 0.6;

    cfg.schedulerCounterPolicy = true;
    const RunResult with_policy = simulate(w, cfg);
    cfg.schedulerCounterPolicy = false;
    const RunResult without_policy = simulate(w, cfg);
    EXPECT_LE(with_policy.squashes, without_policy.squashes);
    EXPECT_LE(with_policy.cycles, without_policy.cycles);
}

TEST(PaperProperties, TftMissRateUnderTenPercentAt16Entries)
{
    // Fig 13's conclusion.
    SystemConfig cfg = quickConfig();
    cfg.tftEntries = 16;
    for (const char *name : {"redis", "olio"}) {
        const RunResult r = simulate(shrink(name), cfg);
        ASSERT_GT(r.superpageRefs, 0u) << name;
        const double miss_rate =
            static_cast<double>(r.superpageRefsTftMiss) /
            static_cast<double>(r.superpageRefs);
        EXPECT_LT(miss_rate, 0.10) << name;
    }
}

TEST(PaperProperties, TftMissesAreMostlyL1Misses)
{
    // Fig 13: the bulk of TFT misses coincide with L1 misses, so the
    // extra partition read hides under the L2 access anyway.
    SystemConfig cfg = quickConfig();
    const RunResult r = simulate(shrink("redis"), cfg);
    if (r.superpageRefsTftMiss > 20) {
        EXPECT_GT(r.superpageRefsTftMissL1Miss,
                  r.superpageRefsTftMissL1Hit);
    }
}

TEST(PaperProperties, SeesawBeatsPiptAlternatives)
{
    // Fig 14: PIPT with reduced associativity can cut latency but
    // pays serial TLB lookups; SEESAW wins on runtime.
    SystemConfig cfg = quickConfig();
    cfg.l1SizeBytes = 128 * 1024;
    cfg.l1Assoc = 32;
    const WorkloadSpec w = shrink("redis");

    cfg.l1Kind = L1Kind::Seesaw;
    const RunResult see = simulate(w, cfg);

    SystemConfig pipt_cfg = cfg;
    pipt_cfg.l1Kind = L1Kind::Pipt;
    for (unsigned assoc : {4u, 8u}) {
        pipt_cfg.l1Assoc = assoc;
        const RunResult pipt = simulate(w, pipt_cfg);
        EXPECT_LT(see.cycles, pipt.cycles) << assoc << "-way PIPT";
    }
}

TEST(PaperProperties, InsertionPolicyCostsAtMostOnePercentHitRate)
{
    // §IV-B1: 4way insertion costs ~1% hit rate vs 4way-8way.
    SystemConfig cfg = quickConfig();
    const WorkloadSpec w = shrink("mcf");
    cfg.policy = InsertionPolicy::FourWay;
    const RunResult four = simulate(w, cfg);
    cfg.policy = InsertionPolicy::FourWayEightWay;
    const RunResult four_eight = simulate(w, cfg);

    const double hr4 = static_cast<double>(four.l1Hits) /
                       four.l1Accesses;
    const double hr48 = static_cast<double>(four_eight.l1Hits) /
                        four_eight.l1Accesses;
    EXPECT_NEAR(hr4, hr48, 0.015);
}

} // namespace
} // namespace seesaw
