/** @file End-to-end tests of the 1GB-superpage generalisation the
 *  paper sketches in Section IV ("this approach generalizes readily to
 *  1GB superpages too"). */

#include <gtest/gtest.h>

#include "core/seesaw_cache.hh"
#include "mem/os_memory_manager.hh"
#include "tlb/tlb_hierarchy.hh"

namespace seesaw {
namespace {

constexpr Addr kGB = 1ULL << 30;
constexpr Addr kMB2 = 2ULL << 20;

OsParams
bigParams()
{
    OsParams p;
    p.memBytes = 2 * kGB;
    p.kernelReservedFraction = 0.0;
    p.pollutedRegionFraction = 0.0;
    return p;
}

TEST(OneGbPages, OsMapsAndTranslates)
{
    OsMemoryManager os(bigParams());
    const Asid asid = os.createProcess();
    ASSERT_TRUE(os.mapOneGbPage(asid, 4 * kGB));

    auto t = os.translate(asid, 4 * kGB + 0x12345678);
    ASSERT_TRUE(t);
    EXPECT_EQ(t->size, PageSize::Super1GB);
    EXPECT_EQ(t->vaBase, 4 * kGB);
    EXPECT_EQ(t->paBase % kGB, 0u);
    EXPECT_DOUBLE_EQ(os.superpageCoverage(asid), 1.0);
}

TEST(OneGbPages, AllocationFailsWithoutContiguity)
{
    OsMemoryManager os(bigParams());
    // Pin one frame in each 1GB half: no contiguous 1GB block remains.
    auto f1 = os.allocateRawFrame(false);
    ASSERT_TRUE(f1);
    // Consume frames until we cross into the second gigabyte, then pin.
    std::uint64_t frame = *f1;
    while (frame < (1ULL << 18)) {
        auto f = os.allocateRawFrame(true);
        ASSERT_TRUE(f);
        frame = *f;
    }
    os.pinRawFrame(frame);

    const Asid asid = os.createProcess();
    EXPECT_FALSE(os.mapOneGbPage(asid, 4 * kGB));
}

TEST(OneGbPages, UnmapAndDestroyRelease)
{
    OsMemoryManager os(bigParams());
    const auto before = os.buddy().freeFrames();
    const Asid asid = os.createProcess();
    ASSERT_TRUE(os.mapOneGbPage(asid, 4 * kGB));
    os.unmapRange(asid, 4 * kGB, kGB);
    EXPECT_EQ(os.buddy().freeFrames(), before);

    ASSERT_TRUE(os.mapOneGbPage(asid, 4 * kGB));
    os.destroyProcess(asid);
    EXPECT_EQ(os.buddy().freeFrames(), before);
}

TEST(OneGbPages, TlbHierarchyMarksTftRegionsInsideTheGigPage)
{
    OsMemoryManager os(bigParams());
    const Asid asid = os.createProcess();
    ASSERT_TRUE(os.mapOneGbPage(asid, 4 * kGB));

    TlbHierarchy tlb(TlbHierarchyParams::sandybridge(),
                     os.pageTable());
    std::vector<Addr> marked;
    tlb.setOn2MBFill([&](Asid, Addr va) { marked.push_back(va); });

    // A walk through the 1GB page marks the accessed 2MB region.
    tlb.lookup(asid, 4 * kGB + 5 * kMB2 + 0x123);
    ASSERT_GE(marked.size(), 1u);
    EXPECT_EQ(marked.back(), 4 * kGB + 5 * kMB2);

    // A 1GB L1 TLB hit to a *different* 2MB region refreshes that
    // region's mark.
    tlb.lookup(asid, 4 * kGB + 9 * kMB2 + 0x456);
    EXPECT_EQ(marked.back(), 4 * kGB + 9 * kMB2);
}

TEST(OneGbPages, SeesawFastPathWorksFor1GbBackedAccesses)
{
    OsMemoryManager os(bigParams());
    const Asid asid = os.createProcess();
    ASSERT_TRUE(os.mapOneGbPage(asid, 4 * kGB));

    TlbHierarchy tlb(TlbHierarchyParams::sandybridge(),
                     os.pageTable());
    LatencyTable latency;
    SeesawConfig cfg;
    SeesawCache cache(cfg, latency);
    tlb.setOn2MBFill([&cache](Asid, Addr va) {
        cache.tft().markRegion(va);
    });

    const Addr va = 4 * kGB + 7 * kMB2 + 0x1440;
    const auto tr = tlb.lookup(asid, va); // walk + TFT mark
    ASSERT_FALSE(tr.fault);
    const Addr pa = tr.translation.translate(va);

    // 1GB pages keep bits 29:0 across translation: the partition bits
    // certainly agree.
    EXPECT_EQ((va >> 12) & 1, (pa >> 12) & 1);

    cache.access({va, pa, PageSize::Super1GB, AccessType::Read});
    const auto res =
        cache.access({va, pa, PageSize::Super1GB, AccessType::Read});
    EXPECT_TRUE(res.tftHit);
    EXPECT_TRUE(res.hit);
    EXPECT_TRUE(res.fastPath);
    EXPECT_EQ(res.waysRead, 4u);
    EXPECT_EQ(res.latencyCycles, cache.fastHitCycles());
}

TEST(OneGbPages, PlacementInvariantHoldsFor1GbLines)
{
    OsMemoryManager os(bigParams());
    const Asid asid = os.createProcess();
    ASSERT_TRUE(os.mapOneGbPage(asid, 4 * kGB));

    LatencyTable latency;
    SeesawCache cache({}, latency);
    for (Addr off = 0; off < (8ULL << 20); off += 4096 + 64) {
        const Addr va = 4 * kGB + off;
        const auto t = os.translate(asid, va);
        ASSERT_TRUE(t);
        cache.tft().markRegion(va);
        cache.access({va, t->translate(va), PageSize::Super1GB,
                      AccessType::Read});
    }
    EXPECT_TRUE(cache.tags().checkPlacementInvariant());
}

} // namespace
} // namespace seesaw
