/** @file Death tests: invariant violations must abort loudly via
 *  SEESAW_PANIC rather than corrupt simulator state. */

#include <gtest/gtest.h>

#include "cache/set_assoc_cache.hh"
#include "core/seesaw_cache.hh"
#include "mem/buddy_allocator.hh"
#include "mem/page_table.hh"
#include "tlb/tlb.hh"

namespace seesaw {
namespace {

using AssertionDeathTest = ::testing::Test;

TEST(AssertionDeathTest, CacheRejectsNonPowerOfTwoAssoc)
{
    EXPECT_DEATH({ SetAssocCache cache(32 * 1024, 3); },
                 "power of two");
}

TEST(AssertionDeathTest, CacheRejectsPartitionsNotDividingWays)
{
    EXPECT_DEATH({ SetAssocCache cache(32 * 1024, 8, 64, 16); },
                 "partitions");
}

TEST(AssertionDeathTest, SeesawRejectsNon4KbSetSpan)
{
    // 16KB 8-way has 32 sets: the partition bit would fall inside the
    // 4KB page offset, breaking the whole premise.
    LatencyTable latency;
    SeesawConfig cfg;
    cfg.sizeBytes = 16 * 1024;
    cfg.assoc = 8;
    EXPECT_DEATH({ SeesawCache cache(cfg, latency); },
                 "sets x linesize");
}

TEST(AssertionDeathTest, SeesawRejectsTftHitOnBasePage)
{
    // Forcing a (claimed) TFT hit for a base-page access violates the
    // TFT guarantee and must trip the internal check.
    LatencyTable latency;
    SeesawCache cache({}, latency);
    L1Access req{0x5000, 0x9000, PageSize::Base4KB, AccessType::Read,
                 /*tftProbe=*/1};
    EXPECT_DEATH({ cache.access(req); }, "base-page");
}

TEST(AssertionDeathTest, BuddyRejectsDoubleFree)
{
    EXPECT_DEATH(
        {
            BuddyAllocator buddy(4ULL << 20);
            auto f = buddy.allocate(0);
            buddy.free(*f, 0);
            buddy.free(*f, 0);
        },
        "double free");
}

TEST(AssertionDeathTest, BuddyRejectsUnalignedFree)
{
    EXPECT_DEATH(
        {
            BuddyAllocator buddy(4ULL << 20);
            auto f = buddy.allocate(3); // 8-frame aligned block
            buddy.free(*f + 1, 3);
        },
        "unaligned");
}

TEST(AssertionDeathTest, PageTableRejectsUnalignedMapping)
{
    EXPECT_DEATH(
        {
            PageTable pt;
            pt.map(1, 0x1234, 0x9000, PageSize::Base4KB);
        },
        "unaligned");
}

TEST(AssertionDeathTest, TlbRejectsUnalignedFill)
{
    EXPECT_DEATH(
        {
            Tlb tlb("t", 16, 4, PageSize::Super2MB);
            tlb.insert(1, 0x200000, 0x1234);
        },
        "unaligned");
}

} // namespace
} // namespace seesaw
