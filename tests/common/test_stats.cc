/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace seesaw {
namespace {

TEST(StatScalar, StartsAtZero)
{
    StatScalar s;
    EXPECT_EQ(s.value(), 0.0);
    EXPECT_EQ(s.count(), 0u);
}

TEST(StatScalar, IncrementAndAccumulate)
{
    StatScalar s;
    ++s;
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 4.5);
    EXPECT_EQ(s.count(), 4u);
}

TEST(StatScalar, Reset)
{
    StatScalar s;
    s += 10;
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(StatDistribution, TracksMinMaxMean)
{
    StatDistribution d;
    d.sample(1.0);
    d.sample(3.0);
    d.sample(2.0);
    EXPECT_EQ(d.samples(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.0);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 3.0);
    EXPECT_DOUBLE_EQ(d.total(), 6.0);
}

TEST(StatDistribution, EmptyIsZero)
{
    StatDistribution d;
    EXPECT_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.min(), 0.0);
    EXPECT_EQ(d.max(), 0.0);
    EXPECT_EQ(d.variance(), 0.0);
}

TEST(StatDistribution, Variance)
{
    StatDistribution d;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    EXPECT_NEAR(d.variance(), 32.0 / 7.0, 1e-9);
}

TEST(StatHistogram, BucketsAndOverflow)
{
    StatHistogram h(1.0, 4);
    h.sample(0.5);
    h.sample(1.5);
    h.sample(3.9);
    h.sample(4.0); // overflow
    h.sample(-1.0); // negative counts as overflow
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
}

TEST(StatHistogram, Reset)
{
    StatHistogram h(1.0, 2);
    h.sample(0.5);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.bucketCount(0), 0u);
}

TEST(StatGroup, ScalarRegistrationIsIdempotent)
{
    StatGroup g("test");
    g.scalar("hits") += 3;
    g.scalar("hits") += 2;
    EXPECT_DOUBLE_EQ(g.get("hits"), 5.0);
}

TEST(StatGroup, MissingScalarReadsZero)
{
    StatGroup g("test");
    EXPECT_DOUBLE_EQ(g.get("nonexistent"), 0.0);
}

TEST(StatGroup, ResetAllClearsEverything)
{
    StatGroup g("test");
    g.scalar("a") += 1;
    g.distribution("d").sample(4.0);
    g.resetAll();
    EXPECT_DOUBLE_EQ(g.get("a"), 0.0);
    EXPECT_EQ(g.distribution("d").samples(), 0u);
}

TEST(StatGroup, DumpContainsNameAndValues)
{
    StatGroup g("l1");
    g.scalar("hits") += 7;
    const std::string dump = g.dump();
    EXPECT_NE(dump.find("l1.hits 7"), std::string::npos);
}

} // namespace
} // namespace seesaw
