/** @file Unit tests for the bit-manipulation helpers. */

#include <gtest/gtest.h>

#include "common/bitops.hh"

namespace seesaw {
namespace {

TEST(Bitops, BitsExtractsInclusiveRange)
{
    EXPECT_EQ(bits(0xff00, 15, 8), 0xffu);
    EXPECT_EQ(bits(0xff00, 7, 0), 0x00u);
    EXPECT_EQ(bits(0xdeadbeef, 31, 16), 0xdeadu);
    EXPECT_EQ(bits(0xdeadbeef, 15, 0), 0xbeefu);
}

TEST(Bitops, BitsSingleBitRange)
{
    EXPECT_EQ(bits(0b100, 2, 2), 1u);
    EXPECT_EQ(bits(0b100, 1, 1), 0u);
}

TEST(Bitops, BitsFullWidth)
{
    const std::uint64_t v = 0x0123456789abcdefULL;
    EXPECT_EQ(bits(v, 63, 0), v);
}

TEST(Bitops, BitExtractsSinglePosition)
{
    EXPECT_EQ(bit(0x8000000000000000ULL, 63), 1u);
    EXPECT_EQ(bit(0x8000000000000000ULL, 62), 0u);
    EXPECT_EQ(bit(1, 0), 1u);
}

TEST(Bitops, MaskCoversRange)
{
    EXPECT_EQ(mask(3, 0), 0xfull);
    EXPECT_EQ(mask(7, 4), 0xf0ull);
    EXPECT_EQ(mask(63, 0), ~0ull);
    EXPECT_EQ(mask(63, 63), 0x8000000000000000ULL);
}

TEST(Bitops, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ULL << 63));
    EXPECT_FALSE(isPowerOfTwo((1ULL << 63) + 1));
}

TEST(Bitops, Log2Floor)
{
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(2), 1u);
    EXPECT_EQ(log2Floor(3), 1u);
    EXPECT_EQ(log2Floor(4096), 12u);
    EXPECT_EQ(log2Floor(1ULL << 63), 63u);
}

TEST(Bitops, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(4), 2u);
    EXPECT_EQ(log2Ceil(5), 3u);
}

TEST(Bitops, AlignUpDown)
{
    EXPECT_EQ(alignUp(0, 4096), 0u);
    EXPECT_EQ(alignUp(1, 4096), 4096u);
    EXPECT_EQ(alignUp(4096, 4096), 4096u);
    EXPECT_EQ(alignDown(4097, 4096), 4096u);
    EXPECT_EQ(alignDown(4095, 4096), 0u);
    EXPECT_EQ(alignDown(1ULL << 40, 1ULL << 21), 1ULL << 40);
}

/** Property sweep: the paper's address-slicing identities for the
 *  32KB/8-way SEESAW geometry (Fig 4): set index = bits 11:6,
 *  partition bit = bit 12, both inside the 2MB page offset. */
class AddressSliceTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AddressSliceTest, SuperpageOffsetBitsAgreeAcrossTranslation)
{
    const std::uint64_t va = GetParam();
    // Simulate a 2MB-aligned translation: PA differs only above bit 20.
    const std::uint64_t pa = (0xabcdeULL << 21) | bits(va, 20, 0);
    EXPECT_EQ(bits(va, 11, 6), bits(pa, 11, 6));   // set index
    EXPECT_EQ(bit(va, 12), bit(pa, 12));           // partition index
    EXPECT_EQ(bits(va, 20, 12), bits(pa, 20, 12)); // all partition bits
}

TEST_P(AddressSliceTest, BasePageOffsetBitsAgreeOnlyBelowBit12)
{
    const std::uint64_t va = GetParam();
    // 4KB translation: PA differs above bit 11; bit 12 may flip.
    const std::uint64_t pa = (~va & ~mask(11, 0)) | bits(va, 11, 0);
    EXPECT_EQ(bits(va, 11, 6), bits(pa, 11, 6));
    EXPECT_NE(bit(va, 12), bit(pa, 12));
}

INSTANTIATE_TEST_SUITE_P(
    Addresses, AddressSliceTest,
    ::testing::Values(0x0ULL, 0x1000ULL, 0xdead0000ULL, 0x7fffffffffffULL,
                      0x123456789abcULL, 0x200000ULL, 0x1fffffULL,
                      0xfffffffff000ULL));

} // namespace
} // namespace seesaw
