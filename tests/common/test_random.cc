/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/random.hh"

namespace seesaw {
namespace {

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, BoundedOfOneIsAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextBounded(1), 0u);
}

TEST(Rng, BoundedIsRoughlyUniform)
{
    Rng rng(11);
    std::vector<int> counts(8, 0);
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.nextBounded(8)];
    for (int c : counts) {
        EXPECT_GT(c, n / 8 * 0.9);
        EXPECT_LT(c, n / 8 * 1.1);
    }
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(13);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_FALSE(rng.chance(-0.5));
        EXPECT_TRUE(rng.chance(1.5));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(19);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, ZipfInRange)
{
    Rng rng(23);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextZipf(100, 0.9), 100u);
}

TEST(Rng, ZipfIsSkewedTowardLowRanks)
{
    Rng rng(29);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 50000; ++i)
        ++counts[rng.nextZipf(1000, 1.0)];
    // Rank 0 must dominate rank 100 heavily under alpha=1.
    EXPECT_GT(counts[0], counts[100] * 10);
}

TEST(Rng, ZipfHandlesDomainSwitch)
{
    Rng rng(31);
    EXPECT_LT(rng.nextZipf(10, 0.8), 10u);
    EXPECT_LT(rng.nextZipf(100, 1.2), 100u);
    EXPECT_LT(rng.nextZipf(10, 0.8), 10u);
}

TEST(Rng, GeometricMeanApproximatelyCorrect)
{
    Rng rng(37);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextGeometric(5.0));
    EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(Rng, GeometricZeroMeanIsZero)
{
    Rng rng(41);
    EXPECT_EQ(rng.nextGeometric(0.0), 0u);
    EXPECT_EQ(rng.nextGeometric(-1.0), 0u);
}

} // namespace
} // namespace seesaw
