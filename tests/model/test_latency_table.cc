/** @file Tests for the Table III latency oracle. */

#include <gtest/gtest.h>

#include "model/latency_table.hh"

namespace seesaw {
namespace {

constexpr std::uint64_t kKB = 1024;

TEST(LatencyTable, HasAllNinePaperRows)
{
    LatencyTable t;
    EXPECT_EQ(t.rows().size(), 9u);
}

/** Every row of the paper's Table III, verbatim. */
struct TableRow
{
    std::uint64_t sizeKb;
    unsigned assoc;
    double freq;
    unsigned base;
    unsigned super;
};

class TableIiiTest : public ::testing::TestWithParam<TableRow>
{
};

TEST_P(TableIiiTest, MatchesPaper)
{
    LatencyTable t;
    const TableRow row = GetParam();
    EXPECT_EQ(t.basePageCycles(row.sizeKb * kKB, row.assoc, row.freq),
              row.base);
    EXPECT_EQ(t.superpageCycles(row.sizeKb * kKB, row.assoc, 4, row.freq),
              row.super);
    EXPECT_EQ(t.tftCycles(row.freq), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, TableIiiTest,
    ::testing::Values(TableRow{32, 8, 1.33, 2, 1},
                      TableRow{32, 8, 2.80, 4, 2},
                      TableRow{32, 8, 4.00, 5, 3},
                      TableRow{64, 16, 1.33, 5, 1},
                      TableRow{64, 16, 2.80, 9, 2},
                      TableRow{64, 16, 4.00, 13, 3},
                      TableRow{128, 32, 1.33, 14, 2},
                      TableRow{128, 32, 2.80, 30, 3},
                      TableRow{128, 32, 4.00, 42, 4}));

TEST(LatencyTable, FindMissesUnknownConfig)
{
    LatencyTable t;
    EXPECT_FALSE(t.find(48 * kKB, 8, 1.33).has_value());
    EXPECT_FALSE(t.find(32 * kKB, 4, 1.33).has_value());
    EXPECT_FALSE(t.find(32 * kKB, 8, 2.0).has_value());
}

TEST(LatencyTable, UnknownConfigFallsBackToAnalyticalModel)
{
    LatencyTable t;
    const unsigned analytic =
        t.sram().accessLatencyCycles(16 * kKB, 4, 2.0);
    EXPECT_EQ(t.basePageCycles(16 * kKB, 4, 2.0), analytic);
}

TEST(LatencyTable, SuperpageNeverSlowerThanBasePage)
{
    LatencyTable t;
    for (const auto &row : t.rows()) {
        EXPECT_LT(t.superpageCycles(row.sizeBytes, row.assoc, 4,
                                    row.freqGhz),
                  t.basePageCycles(row.sizeBytes, row.assoc,
                                   row.freqGhz));
    }
}

TEST(LatencyTable, FullWidthPartitionEqualsBasePath)
{
    LatencyTable t;
    EXPECT_EQ(t.superpageCycles(32 * kKB, 8, 8, 1.33),
              t.basePageCycles(32 * kKB, 8, 1.33));
}

TEST(LatencyTable, PiptAddsSerialTlbLatency)
{
    LatencyTable t;
    const unsigned tlb = 2;
    const unsigned pipt = t.piptCycles(32 * kKB, 4, 1.33, tlb);
    const unsigned array = t.sram().accessLatencyCycles(32 * kKB, 4, 1.33);
    EXPECT_EQ(pipt, tlb + array);
}

TEST(LatencyTable, BasePageLatencyGrowsWithFrequency)
{
    LatencyTable t;
    EXPECT_LT(t.basePageCycles(64 * kKB, 16, 1.33),
              t.basePageCycles(64 * kKB, 16, 2.80));
    EXPECT_LT(t.basePageCycles(64 * kKB, 16, 2.80),
              t.basePageCycles(64 * kKB, 16, 4.00));
}

TEST(LatencyTable, LargerCachesPayMoreAtFixedFrequency)
{
    LatencyTable t;
    EXPECT_LT(t.basePageCycles(32 * kKB, 8, 1.33),
              t.basePageCycles(64 * kKB, 16, 1.33));
    EXPECT_LT(t.basePageCycles(64 * kKB, 16, 1.33),
              t.basePageCycles(128 * kKB, 32, 1.33));
}

} // namespace
} // namespace seesaw
