/** @file Tests for the analytical SRAM latency/energy model (Fig 2b/2c
 *  trends from Section III-B). */

#include <gtest/gtest.h>

#include "model/sram_model.hh"

namespace seesaw {
namespace {

constexpr std::uint64_t kKB = 1024;

TEST(SramModel, LatencyGrowsWithAssociativity)
{
    SramModel m;
    for (std::uint64_t size : {16 * kKB, 32 * kKB, 64 * kKB, 128 * kKB}) {
        double prev = 0.0;
        for (unsigned assoc : {1u, 2u, 4u, 8u, 16u, 32u}) {
            const double lat = m.accessLatencyNs(size, assoc);
            EXPECT_GT(lat, prev) << size << "B " << assoc << "-way";
            prev = lat;
        }
    }
}

TEST(SramModel, LatencyStepWithinPaperRange)
{
    // The paper reports 10-25% latency growth per associativity step.
    SramModel m;
    for (std::uint64_t size : {16 * kKB, 32 * kKB, 64 * kKB, 128 * kKB}) {
        for (unsigned assoc : {2u, 4u, 8u, 16u, 32u}) {
            const double ratio = m.accessLatencyNs(size, assoc) /
                                 m.accessLatencyNs(size, assoc / 2);
            EXPECT_GE(ratio, 1.10);
            EXPECT_LE(ratio, 1.25);
        }
    }
}

TEST(SramModel, LatencyGrowsWithCapacity)
{
    SramModel m;
    EXPECT_LT(m.accessLatencyNs(16 * kKB, 8),
              m.accessLatencyNs(32 * kKB, 8));
    EXPECT_LT(m.accessLatencyNs(32 * kKB, 8),
              m.accessLatencyNs(128 * kKB, 8));
}

TEST(SramModel, EnergyGrowsWithAssociativity)
{
    SramModel m;
    for (std::uint64_t size : {16 * kKB, 32 * kKB, 64 * kKB, 128 * kKB}) {
        double prev = 0.0;
        for (unsigned assoc : {1u, 2u, 4u, 8u, 16u, 32u}) {
            const double e = m.accessEnergyNj(size, assoc);
            EXPECT_GT(e, prev);
            prev = e;
        }
    }
}

TEST(SramModel, EnergyStepLargerThanLatencyStep)
{
    // Section III-B: energy grows 40-50% per step, much steeper than
    // latency.
    SramModel m;
    const double energy_ratio = m.accessEnergyNj(32 * kKB, 8) /
                                m.accessEnergyNj(32 * kKB, 4);
    const double latency_ratio = m.accessLatencyNs(32 * kKB, 8) /
                                 m.accessLatencyNs(32 * kKB, 4);
    EXPECT_GT(energy_ratio, latency_ratio);
    EXPECT_GE(energy_ratio, 1.40);
    EXPECT_LE(energy_ratio, 1.50);
}

TEST(SramModel, PartitionLookupMatchesPaperRtlNumbers)
{
    // §IV-A4: a 4-way partition access in the 32KB SEESAW cache costs
    // 0.41% more than a plain 16KB 4-way access, and ~39% less than
    // the baseline 8-way access.
    SramModel m;
    const double partition = m.lookupEnergyNj(32 * kKB, 8, 4);
    const double small_cache = m.accessEnergyNj(16 * kKB, 4);
    const double baseline = m.accessEnergyNj(32 * kKB, 8);
    EXPECT_NEAR(partition / small_cache, 1.0041, 1e-6);
    EXPECT_NEAR(1.0 - partition / baseline, 0.3943, 0.02);
}

TEST(SramModel, FullWidthLookupEqualsAccessEnergy)
{
    SramModel m;
    EXPECT_DOUBLE_EQ(m.lookupEnergyNj(32 * kKB, 8, 8),
                     m.accessEnergyNj(32 * kKB, 8));
}

TEST(SramModel, SlowPathEnergyMatchesBaselineExactly)
{
    // TFT-miss accesses end up reading all assoc ways once (the
    // speculated partition, then the remaining partitions): the total
    // equals the baseline full-set energy (Table I: "None" savings).
    // The remaining-partition read is cheaper than the first because
    // decoder/wordline energy is already spent.
    SramModel m;
    EXPECT_DOUBLE_EQ(m.lookupEnergyNj(32 * kKB, 8, 8),
                     m.accessEnergyNj(32 * kKB, 8));
    const double first_partition = m.lookupEnergyNj(32 * kKB, 8, 4);
    const double remaining = m.accessEnergyNj(32 * kKB, 8) -
                             first_partition;
    EXPECT_GT(remaining, 0.0);
    EXPECT_LT(remaining, first_partition);
}

TEST(SramModel, LeakageScalesWithCapacity)
{
    SramModel m;
    EXPECT_NEAR(m.leakagePowerMw(64 * kKB) / m.leakagePowerMw(32 * kKB),
                2.0, 1e-9);
}

TEST(SramModel, CyclesScaleWithFrequency)
{
    SramModel m;
    const unsigned slow = m.accessLatencyCycles(32 * kKB, 8, 1.33);
    const unsigned fast = m.accessLatencyCycles(32 * kKB, 8, 4.0);
    EXPECT_GE(fast, slow);
    EXPECT_GE(slow, 1u);
}

TEST(SramModel, TechScalingReducesLatency)
{
    // Paper: 3% faster at 22nm vs 28-32nm and 17% at 14nm; relative
    // associativity trends unchanged.
    SramModel m28(TechNode::Tsmc28), m22(TechNode::Intel22),
        m14(TechNode::Intel14);
    EXPECT_GT(m28.accessLatencyNs(32 * kKB, 8),
              m22.accessLatencyNs(32 * kKB, 8));
    EXPECT_GT(m22.accessLatencyNs(32 * kKB, 8),
              m14.accessLatencyNs(32 * kKB, 8));

    const double r22 = m22.accessLatencyNs(32 * kKB, 16) /
                       m22.accessLatencyNs(32 * kKB, 8);
    const double r14 = m14.accessLatencyNs(32 * kKB, 16) /
                       m14.accessLatencyNs(32 * kKB, 8);
    EXPECT_NEAR(r22, r14, 1e-9);
}

/** Property sweep over every geometry used anywhere in the benches. */
class SramGeometry
    : public ::testing::TestWithParam<std::pair<std::uint64_t, unsigned>>
{
};

TEST_P(SramGeometry, AllQuantitiesPositiveAndFinite)
{
    SramModel m;
    const auto [size, assoc] = GetParam();
    EXPECT_GT(m.accessLatencyNs(size, assoc), 0.0);
    EXPECT_GT(m.accessEnergyNj(size, assoc), 0.0);
    EXPECT_GT(m.leakagePowerMw(size), 0.0);
    for (unsigned ways = 1; ways <= assoc; ways *= 2) {
        EXPECT_GT(m.lookupEnergyNj(size, assoc, ways), 0.0);
        EXPECT_LE(m.lookupEnergyNj(size, assoc, ways),
                  m.accessEnergyNj(size, assoc) * 1.01);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SramGeometry,
    ::testing::Values(std::make_pair(16 * kKB, 2u),
                      std::make_pair(16 * kKB, 8u),
                      std::make_pair(32 * kKB, 8u),
                      std::make_pair(64 * kKB, 16u),
                      std::make_pair(128 * kKB, 32u),
                      std::make_pair(256 * kKB, 8u)));

} // namespace
} // namespace seesaw
