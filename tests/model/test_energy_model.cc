/** @file Tests for the whole-hierarchy energy accounting. */

#include <gtest/gtest.h>

#include "model/energy_model.hh"

namespace seesaw {
namespace {

constexpr std::uint64_t kKB = 1024;

class EnergyModelTest : public ::testing::Test
{
  protected:
    SramModel sram_{TechNode::Intel22};
    EnergyModel energy_{sram_};
};

TEST_F(EnergyModelTest, StartsAtZero)
{
    EXPECT_EQ(energy_.totalNj(), 0.0);
}

TEST_F(EnergyModelTest, L1LookupSplitsCpuAndCoherenceBuckets)
{
    energy_.addL1Lookup(32 * kKB, 8, 8, /*coherent=*/false);
    EXPECT_GT(energy_.l1CpuDynamicNj(), 0.0);
    EXPECT_EQ(energy_.l1CoherenceDynamicNj(), 0.0);

    energy_.addL1Lookup(32 * kKB, 8, 4, /*coherent=*/true);
    EXPECT_GT(energy_.l1CoherenceDynamicNj(), 0.0);
}

TEST_F(EnergyModelTest, PartitionLookupCostsLessThanFullSet)
{
    EnergyModel full(sram_), part(sram_);
    full.addL1Lookup(32 * kKB, 8, 8, false);
    part.addL1Lookup(32 * kKB, 8, 4, false);
    EXPECT_LT(part.l1CpuDynamicNj(), full.l1CpuDynamicNj());
    // The paper's measured gap: ~39% cheaper.
    EXPECT_NEAR(1.0 - part.l1CpuDynamicNj() / full.l1CpuDynamicNj(),
                0.3943, 0.02);
}

TEST_F(EnergyModelTest, OuterLevelsOrderedByCost)
{
    const auto &p = energy_.params();
    EXPECT_LT(p.l2AccessNj, p.llcAccessNj);
    EXPECT_LT(p.llcAccessNj, p.dramAccessNj);
}

TEST_F(EnergyModelTest, OuterAccumulatesAllLevels)
{
    energy_.addL2Access();
    energy_.addLlcAccess();
    energy_.addDramAccess();
    const auto &p = energy_.params();
    EXPECT_DOUBLE_EQ(energy_.outerHierarchyNj(),
                     p.l2AccessNj + p.llcAccessNj + p.dramAccessNj);
}

TEST_F(EnergyModelTest, TranslationBucket)
{
    energy_.addL1TlbLookup();
    energy_.addL2TlbLookup();
    energy_.addTftLookup();
    energy_.addWayPredictorLookup();
    energy_.addPageWalk();
    const auto &p = energy_.params();
    EXPECT_DOUBLE_EQ(energy_.translationNj(),
                     p.l1TlbLookupNj + p.l2TlbLookupNj + p.tftLookupNj +
                         p.wayPredictorLookupNj + p.pageWalkNj);
}

TEST_F(EnergyModelTest, TftLookupIsTiny)
{
    // An 86-byte structure must cost far less than an L1 TLB probe.
    EXPECT_LT(energy_.params().tftLookupNj,
              energy_.params().l1TlbLookupNj / 2);
}

TEST_F(EnergyModelTest, InstallEnergyScalesWithTrackedWays)
{
    EnergyModel four(sram_), eight(sram_);
    four.addLineInstall(4);
    eight.addLineInstall(8);
    EXPECT_DOUBLE_EQ(eight.l1CpuDynamicNj(),
                     2.0 * four.l1CpuDynamicNj());
}

TEST_F(EnergyModelTest, LeakageGrowsWithTimeAndSize)
{
    EnergyModel a(sram_), b(sram_), c(sram_);
    a.addL1Leakage(32 * kKB, 1000, 1.33);
    b.addL1Leakage(32 * kKB, 2000, 1.33);
    c.addL1Leakage(64 * kKB, 1000, 1.33);
    EXPECT_NEAR(b.l1LeakageNj(), 2.0 * a.l1LeakageNj(), 1e-12);
    EXPECT_GT(c.l1LeakageNj(), a.l1LeakageNj());
}

TEST_F(EnergyModelTest, LeakageShrinksWithFrequencyAtFixedCycles)
{
    // Same cycle count at a higher clock = less wall time = less leak.
    EnergyModel slow(sram_), fast(sram_);
    slow.addL1Leakage(32 * kKB, 1000, 1.33);
    fast.addL1Leakage(32 * kKB, 1000, 4.0);
    EXPECT_GT(slow.l1LeakageNj(), fast.l1LeakageNj());
}

TEST_F(EnergyModelTest, TotalIsSumOfBuckets)
{
    energy_.addL1Lookup(32 * kKB, 8, 8, false);
    energy_.addL1Lookup(32 * kKB, 8, 4, true);
    energy_.addL2Access();
    energy_.addL1TlbLookup();
    energy_.addL1Leakage(32 * kKB, 100, 1.33);
    EXPECT_NEAR(energy_.totalNj(),
                energy_.l1CpuDynamicNj() +
                    energy_.l1CoherenceDynamicNj() +
                    energy_.l1LeakageNj() +
                    energy_.outerHierarchyNj() +
                    energy_.translationNj(),
                1e-12);
}

TEST_F(EnergyModelTest, ResetClearsEverything)
{
    energy_.addL1Lookup(32 * kKB, 8, 8, false);
    energy_.addDramAccess();
    energy_.reset();
    EXPECT_EQ(energy_.totalNj(), 0.0);
}

} // namespace
} // namespace seesaw
