/** @file Tests for the multi-page-size page table. */

#include <gtest/gtest.h>

#include "mem/page_table.hh"

namespace seesaw {
namespace {

constexpr Addr kMB2 = 2ULL << 20;

TEST(PageTable, MapAndTranslateBasePage)
{
    PageTable pt;
    EXPECT_TRUE(pt.map(1, 0x1000, 0x9000, PageSize::Base4KB));
    auto t = pt.translate(1, 0x1abc);
    ASSERT_TRUE(t);
    EXPECT_EQ(t->paBase, 0x9000u);
    EXPECT_EQ(t->vaBase, 0x1000u);
    EXPECT_EQ(t->size, PageSize::Base4KB);
    EXPECT_EQ(t->translate(0x1abc), 0x9abcu);
}

TEST(PageTable, MapAndTranslateSuperpage)
{
    PageTable pt;
    EXPECT_TRUE(pt.map(1, kMB2, 4 * kMB2, PageSize::Super2MB));
    auto t = pt.translate(1, kMB2 + 0x12345);
    ASSERT_TRUE(t);
    EXPECT_EQ(t->size, PageSize::Super2MB);
    EXPECT_EQ(t->translate(kMB2 + 0x12345), 4 * kMB2 + 0x12345);
}

TEST(PageTable, UnmappedReturnsNullopt)
{
    PageTable pt;
    EXPECT_FALSE(pt.translate(1, 0x1000).has_value());
    pt.map(1, 0x1000, 0x9000, PageSize::Base4KB);
    EXPECT_FALSE(pt.translate(2, 0x1000).has_value());
    EXPECT_FALSE(pt.translate(1, 0x2000).has_value());
}

TEST(PageTable, OverlapRejected)
{
    PageTable pt;
    EXPECT_TRUE(pt.map(1, kMB2, 4 * kMB2, PageSize::Super2MB));
    // A 4KB page inside the superpage must be rejected.
    EXPECT_FALSE(pt.map(1, kMB2 + 0x3000, 0x9000, PageSize::Base4KB));
    // A second superpage on the same region is rejected.
    EXPECT_FALSE(pt.map(1, kMB2, 8 * kMB2, PageSize::Super2MB));
}

TEST(PageTable, SuperpageOverBasePagesRejected)
{
    PageTable pt;
    EXPECT_TRUE(pt.map(1, kMB2 + 0x5000, 0x9000, PageSize::Base4KB));
    EXPECT_FALSE(pt.map(1, kMB2, 4 * kMB2, PageSize::Super2MB));
}

TEST(PageTable, DifferentAsidsDoNotConflict)
{
    PageTable pt;
    EXPECT_TRUE(pt.map(1, 0x1000, 0x9000, PageSize::Base4KB));
    EXPECT_TRUE(pt.map(2, 0x1000, 0xa000, PageSize::Base4KB));
    EXPECT_EQ(pt.translate(1, 0x1000)->paBase, 0x9000u);
    EXPECT_EQ(pt.translate(2, 0x1000)->paBase, 0xa000u);
}

TEST(PageTable, SynonymsAllowed)
{
    // Two virtual pages mapping the same physical page (synonyms) are
    // legal and VIPT/SEESAW must cope with them.
    PageTable pt;
    EXPECT_TRUE(pt.map(1, 0x1000, 0x9000, PageSize::Base4KB));
    EXPECT_TRUE(pt.map(1, 0x7000, 0x9000, PageSize::Base4KB));
    EXPECT_EQ(pt.translate(1, 0x1000)->paBase,
              pt.translate(1, 0x7000)->paBase);
}

TEST(PageTable, UnmapRemovesMapping)
{
    PageTable pt;
    pt.map(1, 0x1000, 0x9000, PageSize::Base4KB);
    auto removed = pt.unmap(1, 0x1000, PageSize::Base4KB);
    ASSERT_TRUE(removed);
    EXPECT_EQ(removed->paBase, 0x9000u);
    EXPECT_FALSE(pt.translate(1, 0x1000).has_value());
    EXPECT_FALSE(pt.unmap(1, 0x1000, PageSize::Base4KB).has_value());
}

TEST(PageTable, Iterate2MBRegion)
{
    PageTable pt;
    for (unsigned i = 0; i < 10; ++i)
        pt.map(1, kMB2 + i * 4096ULL, 0x100000 + i * 4096ULL,
               PageSize::Base4KB);
    EXPECT_EQ(pt.baseMappingsIn2MBRegion(1, kMB2), 10u);
    EXPECT_EQ(pt.baseMappingsIn2MBRegion(1, kMB2 + 0x5000), 10u);
    EXPECT_EQ(pt.baseMappingsIn2MBRegion(1, 2 * kMB2), 0u);

    unsigned visited = 0;
    pt.forEachBaseMappingIn2MBRegion(1, kMB2, [&](Addr va, Addr pa) {
        EXPECT_EQ(pa - 0x100000, va - kMB2);
        ++visited;
    });
    EXPECT_EQ(visited, 10u);
}

TEST(PageTable, MappedBytesAccounting)
{
    PageTable pt;
    pt.map(1, 0x1000, 0x9000, PageSize::Base4KB);
    pt.map(1, kMB2, 4 * kMB2, PageSize::Super2MB);
    EXPECT_EQ(pt.mappedBytes(1), 4096 + kMB2);
    EXPECT_EQ(pt.mappedBytes(1, PageSize::Base4KB), 4096u);
    EXPECT_EQ(pt.mappedBytes(1, PageSize::Super2MB), kMB2);
    EXPECT_EQ(pt.mappedBytes(2), 0u);
}

TEST(PageTable, ClearAsid)
{
    PageTable pt;
    pt.map(1, 0x1000, 0x9000, PageSize::Base4KB);
    pt.map(2, 0x1000, 0xa000, PageSize::Base4KB);
    pt.clearAsid(1);
    EXPECT_FALSE(pt.translate(1, 0x1000).has_value());
    EXPECT_TRUE(pt.translate(2, 0x1000).has_value());
}

TEST(PageTable, OneGbPageSupport)
{
    PageTable pt;
    const Addr gb = 1ULL << 30;
    EXPECT_TRUE(pt.map(1, gb, 2 * gb, PageSize::Super1GB));
    auto t = pt.translate(1, gb + 0xabcdef);
    ASSERT_TRUE(t);
    EXPECT_EQ(t->size, PageSize::Super1GB);
    EXPECT_EQ(t->translate(gb + 0xabcdef), 2 * gb + 0xabcdef);
    // Overlap detection catches 2MB inside the 1GB page.
    EXPECT_FALSE(pt.map(1, gb + 4 * kMB2, 0, PageSize::Super2MB));
}

} // namespace
} // namespace seesaw
