/** @file Tests for the buddy allocator. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/random.hh"
#include "mem/buddy_allocator.hh"

namespace seesaw {
namespace {

constexpr std::uint64_t kMB = 1ULL << 20;

TEST(BuddyAllocator, GeometryAndInitialState)
{
    BuddyAllocator b(64 * kMB);
    EXPECT_EQ(b.totalFrames(), 64 * kMB / 4096);
    EXPECT_EQ(b.freeFrames(), b.totalFrames());
    EXPECT_EQ(b.fragmentationIndex(9), 0.0);
}

TEST(BuddyAllocator, AllocateReturnsAlignedBlocks)
{
    BuddyAllocator b(64 * kMB);
    for (unsigned order : {0u, 3u, 9u}) {
        auto f = b.allocate(order);
        ASSERT_TRUE(f.has_value());
        EXPECT_EQ(*f % (1ULL << order), 0u);
    }
}

TEST(BuddyAllocator, AllocateFreeRoundTrip)
{
    BuddyAllocator b(64 * kMB);
    const auto before = b.freeFrames();
    auto f = b.allocate(9);
    ASSERT_TRUE(f);
    EXPECT_EQ(b.freeFrames(), before - 512);
    b.free(*f, 9);
    EXPECT_EQ(b.freeFrames(), before);
    EXPECT_EQ(b.fragmentationIndex(9), 0.0);
}

TEST(BuddyAllocator, DistinctBlocksDoNotOverlap)
{
    BuddyAllocator b(16 * kMB);
    std::set<std::uint64_t> frames;
    for (int i = 0; i < 100; ++i) {
        auto f = b.allocate(3); // 8-frame blocks
        ASSERT_TRUE(f);
        for (std::uint64_t j = 0; j < 8; ++j) {
            const bool inserted = frames.insert(*f + j).second;
            EXPECT_TRUE(inserted);
        }
    }
}

TEST(BuddyAllocator, ExhaustionReturnsNullopt)
{
    BuddyAllocator b(2 * kMB); // exactly one order-9 block
    EXPECT_TRUE(b.allocate(9).has_value());
    EXPECT_FALSE(b.allocate(9).has_value());
    EXPECT_FALSE(b.allocate(0).has_value());
}

TEST(BuddyAllocator, SplitAndCoalesce)
{
    BuddyAllocator b(2 * kMB);
    // Split the single 2MB block into 4KB pieces and rebuild it.
    std::vector<std::uint64_t> frames;
    for (int i = 0; i < 512; ++i) {
        auto f = b.allocate(0);
        ASSERT_TRUE(f);
        frames.push_back(*f);
    }
    EXPECT_FALSE(b.allocate(0).has_value());
    for (auto f : frames)
        b.free(f, 0);
    // Everything must coalesce back to one order-9 block.
    EXPECT_EQ(b.freeBlocksAt(9), 1u);
    EXPECT_TRUE(b.allocate(9).has_value());
}

TEST(BuddyAllocator, HoleBlocksSuperpageAllocation)
{
    BuddyAllocator b(2 * kMB);
    std::vector<std::uint64_t> frames;
    for (int i = 0; i < 512; ++i)
        frames.push_back(*b.allocate(0));
    // Free everything except one middle frame.
    for (auto f : frames) {
        if (f != 255)
            b.free(f, 0);
    }
    EXPECT_FALSE(b.allocate(9).has_value());
    EXPECT_EQ(b.freeFrames(), 511u);
    EXPECT_GT(b.fragmentationIndex(9), 0.99);
    // Plug the hole: the superpage becomes allocatable.
    b.free(255, 0);
    EXPECT_TRUE(b.allocate(9).has_value());
}

TEST(BuddyAllocator, AllocateSpecificClaimsExactBlock)
{
    BuddyAllocator b(16 * kMB);
    EXPECT_TRUE(b.allocateSpecific(512, 9));
    EXPECT_FALSE(b.isFrameFree(512));
    EXPECT_FALSE(b.isFrameFree(1023));
    EXPECT_TRUE(b.isFrameFree(1024));
    // Claiming again fails; the block is taken.
    EXPECT_FALSE(b.allocateSpecific(512, 9));
    // A frame inside the claimed block cannot be claimed.
    EXPECT_FALSE(b.allocateSpecific(600, 0));
}

TEST(BuddyAllocator, AllocateSpecificSingleFrame)
{
    BuddyAllocator b(16 * kMB);
    EXPECT_TRUE(b.allocateSpecific(1000, 0));
    EXPECT_FALSE(b.isFrameFree(1000));
    EXPECT_TRUE(b.isFrameFree(1001));
    b.free(1000, 0);
    EXPECT_TRUE(b.isFrameFree(1000));
}

TEST(BuddyAllocator, AllocateSpecificOutOfRangeFails)
{
    BuddyAllocator b(2 * kMB);
    EXPECT_FALSE(b.allocateSpecific(512, 9));
}

TEST(BuddyAllocator, BuddyOfComputesSibling)
{
    EXPECT_EQ(BuddyAllocator::buddyOf(0, 0), 1u);
    EXPECT_EQ(BuddyAllocator::buddyOf(1, 0), 0u);
    EXPECT_EQ(BuddyAllocator::buddyOf(0, 9), 512u);
    EXPECT_EQ(BuddyAllocator::buddyOf(512, 9), 0u);
}

TEST(BuddyAllocator, AddressConversions)
{
    EXPECT_EQ(BuddyAllocator::frameToAddr(1), 4096u);
    EXPECT_EQ(BuddyAllocator::addrToFrame(8192), 2u);
}

TEST(BuddyAllocator, FreeFramesAtOrAboveTracksHighOrders)
{
    BuddyAllocator b(4 * kMB); // two order-9 blocks
    EXPECT_EQ(b.freeFramesAtOrAbove(9), 1024u);
    auto f = b.allocate(0);
    ASSERT_TRUE(f);
    // One block got split: only the intact one counts at order 9.
    EXPECT_EQ(b.freeFramesAtOrAbove(9), 512u);
}

TEST(BuddyAllocator, RandomStressPreservesInvariants)
{
    BuddyAllocator b(32 * kMB);
    Rng rng(99);
    std::vector<std::pair<std::uint64_t, unsigned>> live;
    for (int i = 0; i < 20000; ++i) {
        if (live.empty() || rng.chance(0.55)) {
            const unsigned order = rng.nextBounded(5);
            if (auto f = b.allocate(order))
                live.emplace_back(*f, order);
        } else {
            const auto idx = rng.nextBounded(live.size());
            b.free(live[idx].first, live[idx].second);
            live[idx] = live.back();
            live.pop_back();
        }
    }
    std::uint64_t live_frames = 0;
    for (auto &[f, o] : live)
        live_frames += 1ULL << o;
    EXPECT_EQ(b.freeFrames(), b.totalFrames() - live_frames);
    // Free everything: memory must fully coalesce.
    for (auto &[f, o] : live)
        b.free(f, o);
    EXPECT_EQ(b.freeFrames(), b.totalFrames());
    EXPECT_EQ(b.fragmentationIndex(9), 0.0);
}

} // namespace
} // namespace seesaw
