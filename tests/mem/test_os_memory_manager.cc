/** @file Tests for the OS memory manager: THP allocation, compaction,
 *  promotion and splintering. */

#include <gtest/gtest.h>

#include "mem/os_memory_manager.hh"

namespace seesaw {
namespace {

constexpr std::uint64_t kMB = 1ULL << 20;

OsParams
cleanParams(std::uint64_t mem = 256 * kMB)
{
    OsParams p;
    p.memBytes = mem;
    p.kernelReservedFraction = 0.0;
    p.pollutedRegionFraction = 0.0;
    return p;
}

TEST(OsMemoryManager, ThpMapsSuperpagesOnCleanMemory)
{
    OsMemoryManager os(cleanParams());
    const Asid asid = os.createProcess();
    os.mapAnonymous(asid, 0x40000000, 32 * kMB, 1.0);
    EXPECT_DOUBLE_EQ(os.superpageCoverage(asid), 1.0);
    EXPECT_EQ(os.superpagesAllocated(), 16u);

    auto t = os.translate(asid, 0x40000000 + 5 * kMB);
    ASSERT_TRUE(t);
    EXPECT_EQ(t->size, PageSize::Super2MB);
}

TEST(OsMemoryManager, ThpDisabledMapsBasePagesOnly)
{
    OsParams p = cleanParams();
    p.thpEnabled = false;
    OsMemoryManager os(p);
    const Asid asid = os.createProcess();
    os.mapAnonymous(asid, 0x40000000, 8 * kMB, 1.0);
    EXPECT_DOUBLE_EQ(os.superpageCoverage(asid), 0.0);
    auto t = os.translate(asid, 0x40000000);
    ASSERT_TRUE(t);
    EXPECT_EQ(t->size, PageSize::Base4KB);
}

TEST(OsMemoryManager, UnalignedRangeGetsBasePageEdges)
{
    OsMemoryManager os(cleanParams());
    const Asid asid = os.createProcess();
    // Start 4KB past a 2MB boundary: the head cannot be a superpage.
    os.mapAnonymous(asid, 0x40000000 + 4096, 4 * kMB, 1.0);
    auto head = os.translate(asid, 0x40000000 + 4096);
    ASSERT_TRUE(head);
    EXPECT_EQ(head->size, PageSize::Base4KB);
    EXPECT_GT(os.superpageCoverage(asid), 0.0);
    EXPECT_LT(os.superpageCoverage(asid), 1.0);
}

TEST(OsMemoryManager, ZeroEligibilityForcesBasePages)
{
    OsMemoryManager os(cleanParams());
    const Asid asid = os.createProcess();
    os.mapAnonymous(asid, 0x40000000, 8 * kMB, 0.0);
    EXPECT_DOUBLE_EQ(os.superpageCoverage(asid), 0.0);
}

TEST(OsMemoryManager, EveryMappedByteTranslates)
{
    OsMemoryManager os(cleanParams());
    const Asid asid = os.createProcess();
    os.mapAnonymous(asid, 0x40000000, 6 * kMB, 0.5);
    for (Addr va = 0x40000000; va < 0x40000000 + 6 * kMB; va += 4096)
        EXPECT_TRUE(os.translate(asid, va).has_value()) << va;
}

TEST(OsMemoryManager, TranslationsAreConsistentWithFrameOwnership)
{
    OsMemoryManager os(cleanParams());
    const Asid a = os.createProcess(), b = os.createProcess();
    os.mapAnonymous(a, 0x40000000, 4 * kMB, 1.0);
    os.mapAnonymous(b, 0x40000000, 4 * kMB, 1.0);
    // Same VA in two processes must map to different frames.
    EXPECT_NE(os.translate(a, 0x40000000)->paBase,
              os.translate(b, 0x40000000)->paBase);
}

TEST(OsMemoryManager, FragmentationBlocksSuperpagesWithoutCompaction)
{
    OsParams p = cleanParams(64 * kMB);
    p.compactionMaxAttempts = 0; // compaction disabled
    OsMemoryManager os(p);

    // Poke one unmovable hole into every 2MB region.
    const std::uint64_t regions = (64 * kMB) >> 21;
    for (std::uint64_t r = 0; r < regions; ++r) {
        auto f = os.allocateRawFrame(/*movable=*/false);
        ASSERT_TRUE(f);
        // Frames allocate bottom-up; spread them by allocating 511
        // movable frames between holes.
        for (int i = 0; i < 511; ++i)
            os.allocateRawFrame(/*movable=*/true);
    }

    const Asid asid = os.createProcess();
    // Everything is consumed; nothing superpage-sized remains.
    EXPECT_EQ(os.buddy().freeFramesAtOrAbove(9), 0u);
    (void)asid;
}

TEST(OsMemoryManager, CompactionRecoversScatteredHoles)
{
    OsParams p = cleanParams(64 * kMB);
    p.compactionCandidates = 256;
    p.compactionBudgetPages = 512;
    p.compactionMaxAttempts = 8;
    OsMemoryManager os(p);

    // Scatter movable single frames: grab ALL memory, then free
    // everything except one frame at the base of each of the first
    // half of the 2MB regions.
    const std::uint64_t regions = (64 * kMB) >> 21;
    std::vector<std::uint64_t> frames;
    while (auto f = os.allocateRawFrame(true))
        frames.push_back(*f);
    ASSERT_EQ(frames.size(), regions * 512);
    for (auto f : frames) {
        const bool keep = f % 512 == 0 && (f / 512) < regions / 2;
        if (!keep)
            os.freeRawFrame(f);
    }
    // 48MB needs 24 clean regions but only 16 exist: at least 8
    // superpages require compaction (each migrating one page).
    const Asid asid = os.createProcess();
    os.mapAnonymous(asid, 0x40000000, 48 * kMB, 1.0);
    EXPECT_GT(os.superpageCoverage(asid), 0.9);
    EXPECT_GT(os.pagesMigrated(), 0u);
    EXPECT_GT(os.compactionSuccesses(), 0u);
}

TEST(OsMemoryManager, PromotionCollapsesFullBaseRegions)
{
    OsParams p = cleanParams();
    p.thpEnabled = false; // force base pages initially
    OsMemoryManager os(p);
    const Asid asid = os.createProcess();
    os.mapAnonymous(asid, 0x40000000, 4 * kMB, 1.0);
    EXPECT_DOUBLE_EQ(os.superpageCoverage(asid), 0.0);

    const auto events = os.runPromotionPass(asid, 10);
    EXPECT_EQ(events.size(), 2u);
    EXPECT_DOUBLE_EQ(os.superpageCoverage(asid), 1.0);
    EXPECT_EQ(os.promotions(), 2u);

    for (const auto &e : events) {
        EXPECT_EQ(e.asid, asid);
        EXPECT_EQ(e.oldPaBases.size(), 512u);
        EXPECT_EQ(e.vaBase % (2 * kMB), 0u);
        // Data must still translate, now through the superpage.
        auto t = os.translate(asid, e.vaBase + 0x1234);
        ASSERT_TRUE(t);
        EXPECT_EQ(t->size, PageSize::Super2MB);
        EXPECT_EQ(t->paBase, e.newPaBase);
    }
}

TEST(OsMemoryManager, PromotionSkipsPartialRegions)
{
    OsParams p = cleanParams();
    p.thpEnabled = false;
    OsMemoryManager os(p);
    const Asid asid = os.createProcess();
    // Map all but one page of a 2MB region.
    os.mapAnonymous(asid, 0x40000000, 2 * kMB - 4096, 1.0);
    EXPECT_TRUE(os.runPromotionPass(asid, 10).empty());
}

TEST(OsMemoryManager, SplinterBreaksSuperpageInPlace)
{
    OsMemoryManager os(cleanParams());
    const Asid asid = os.createProcess();
    os.mapAnonymous(asid, 0x40000000, 2 * kMB, 1.0);
    const auto before = os.translate(asid, 0x40000000);
    ASSERT_TRUE(before);
    ASSERT_EQ(before->size, PageSize::Super2MB);

    auto event = os.splinter(asid, 0x40000000 + 0x12345);
    ASSERT_TRUE(event);
    EXPECT_EQ(event->vaBase, 0x40000000u);

    // All 512 pages translate to the same physical bytes as before.
    for (unsigned i = 0; i < 512; ++i) {
        const Addr va = 0x40000000 + i * 4096ULL;
        auto t = os.translate(asid, va);
        ASSERT_TRUE(t);
        EXPECT_EQ(t->size, PageSize::Base4KB);
        EXPECT_EQ(t->paBase, before->paBase + i * 4096ULL);
    }
    EXPECT_DOUBLE_EQ(os.superpageCoverage(asid), 0.0);
}

TEST(OsMemoryManager, SplinterOnBasePageIsNoop)
{
    OsMemoryManager os(cleanParams());
    const Asid asid = os.createProcess();
    os.mapAnonymous(asid, 0x40000000, 4096, 0.0);
    EXPECT_FALSE(os.splinter(asid, 0x40000000).has_value());
}

TEST(OsMemoryManager, SplinterThenPromoteRoundTrip)
{
    OsMemoryManager os(cleanParams());
    const Asid asid = os.createProcess();
    os.mapAnonymous(asid, 0x40000000, 2 * kMB, 1.0);
    ASSERT_TRUE(os.splinter(asid, 0x40000000).has_value());
    const auto events = os.runPromotionPass(asid, 1);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_DOUBLE_EQ(os.superpageCoverage(asid), 1.0);
}

TEST(OsMemoryManager, UnmapReleasesFrames)
{
    OsMemoryManager os(cleanParams());
    const Asid asid = os.createProcess();
    const auto before = os.buddy().freeFrames();
    os.mapAnonymous(asid, 0x40000000, 8 * kMB, 0.5);
    EXPECT_LT(os.buddy().freeFrames(), before);
    os.unmapRange(asid, 0x40000000, 8 * kMB);
    EXPECT_EQ(os.buddy().freeFrames(), before);
    EXPECT_FALSE(os.translate(asid, 0x40000000).has_value());
}

TEST(OsMemoryManager, DestroyProcessReleasesEverything)
{
    OsMemoryManager os(cleanParams());
    const auto before = os.buddy().freeFrames();
    const Asid asid = os.createProcess();
    os.mapAnonymous(asid, 0x40000000, 16 * kMB, 0.7);
    os.destroyProcess(asid);
    EXPECT_EQ(os.buddy().freeFrames(), before);
}

TEST(OsMemoryManager, SuperpageVasEnumerates)
{
    OsMemoryManager os(cleanParams());
    const Asid asid = os.createProcess();
    os.mapAnonymous(asid, 0x40000000, 8 * kMB, 1.0);
    const auto vas = os.superpageVas(asid);
    ASSERT_EQ(vas.size(), 4u);
    EXPECT_EQ(vas[0], 0x40000000u);
    EXPECT_EQ(vas[3], 0x40000000u + 6 * kMB);
}

TEST(OsMemoryManager, BootNoiseReservesMemory)
{
    OsParams p;
    p.memBytes = 256 * kMB;
    p.kernelReservedFraction = 0.05;
    p.pollutedRegionFraction = 0.10;
    OsMemoryManager os(p);
    EXPECT_LT(os.buddy().freeFrames(), os.buddy().totalFrames());
}

} // namespace
} // namespace seesaw
