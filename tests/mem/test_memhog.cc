/** @file Tests for the memhog fragmentation model (Fig 3's driver). */

#include <gtest/gtest.h>

#include "mem/memhog.hh"

namespace seesaw {
namespace {

constexpr std::uint64_t kMB = 1ULL << 20;

OsParams
params(std::uint64_t mem = 512 * kMB)
{
    OsParams p;
    p.memBytes = mem;
    p.kernelReservedFraction = 0.0;
    p.pollutedRegionFraction = 0.0;
    return p;
}

TEST(Memhog, ConsumesRequestedFraction)
{
    OsMemoryManager os(params());
    Memhog hog(os);
    hog.consume(0.4);
    const double used =
        1.0 - static_cast<double>(os.buddy().freeFrames()) /
                  static_cast<double>(os.buddy().totalFrames());
    EXPECT_NEAR(used, 0.4, 0.02);
}

TEST(Memhog, ZeroFractionIsNoop)
{
    OsMemoryManager os(params());
    Memhog hog(os);
    hog.consume(0.0);
    EXPECT_EQ(os.buddy().freeFrames(), os.buddy().totalFrames());
    EXPECT_EQ(hog.heldFrames(), 0u);
}

TEST(Memhog, FragmentsHighOrderFreeLists)
{
    OsMemoryManager os(params());
    const auto clean_high = os.buddy().freeFramesAtOrAbove(9);
    Memhog hog(os);
    hog.consume(0.5);
    // Free memory must be substantially less superpage-capable than a
    // clean system's.
    const auto frag_high = os.buddy().freeFramesAtOrAbove(9);
    EXPECT_LT(frag_high, clean_high / 2);
    EXPECT_GT(os.buddy().fragmentationIndex(9), 0.1);
}

TEST(Memhog, ReleaseReturnsMovableFrames)
{
    OsMemoryManager os(params());
    MemhogParams mp;
    mp.pinnedProbability = 0.0;
    Memhog hog(os, mp);
    hog.consume(0.3);
    EXPECT_GT(hog.heldFrames(), 0u);
    hog.release();
    EXPECT_EQ(hog.heldFrames(), 0u);
    EXPECT_EQ(os.buddy().freeFrames(), os.buddy().totalFrames());
}

TEST(Memhog, DeterministicAcrossSeeds)
{
    OsMemoryManager os1(params()), os2(params());
    Memhog h1(os1), h2(os2);
    h1.consume(0.35);
    h2.consume(0.35);
    EXPECT_EQ(os1.buddy().freeFrames(), os2.buddy().freeFrames());
    EXPECT_EQ(os1.buddy().freeFramesAtOrAbove(9),
              os2.buddy().freeFramesAtOrAbove(9));
}

TEST(Memhog, HigherFractionLeavesLessContiguity)
{
    double prev = 1e18;
    for (double frac : {0.2, 0.5, 0.8}) {
        OsMemoryManager os(params());
        Memhog hog(os);
        hog.consume(frac);
        const auto high =
            static_cast<double>(os.buddy().freeFramesAtOrAbove(9));
        EXPECT_LT(high, prev);
        prev = high;
    }
}

TEST(Memhog, SuperpageCoverageDegradesGracefully)
{
    // The Fig 3 mechanism end to end: a workload mapped after memhog
    // sees high coverage at low fragmentation and reduced (but not
    // zero) coverage at moderate fragmentation, thanks to compaction.
    double coverage_low, coverage_mid;
    {
        OsMemoryManager os(params());
        Memhog hog(os);
        hog.consume(0.1);
        const Asid a = os.createProcess();
        os.mapAnonymous(a, 0x40000000, 64 * kMB, 1.0);
        coverage_low = os.superpageCoverage(a);
    }
    {
        OsMemoryManager os(params());
        Memhog hog(os);
        hog.consume(0.6);
        const Asid a = os.createProcess();
        os.mapAnonymous(a, 0x40000000, 64 * kMB, 1.0);
        coverage_mid = os.superpageCoverage(a);
    }
    EXPECT_GT(coverage_low, 0.8);
    EXPECT_GT(coverage_low, coverage_mid);
    EXPECT_GT(coverage_mid, 0.0);
}

} // namespace
} // namespace seesaw
