/**
 * @file
 * The software translation cache fronting PageTable::translate() must
 * be invisible: under any history of map/unmap/promotion/splinter
 * churn, the cached fast path and the authoritative slow path must
 * agree on every address. Mutation tests then seed a corrupt entry
 * directly and require the mem audit to catch each divergence class.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "check/invariant_auditor.hh"
#include "check/mem_audits.hh"
#include "common/random.hh"
#include "mem/os_memory_manager.hh"
#include "mem/page_table.hh"
#include "mem/translation_cache.hh"

namespace seesaw {
namespace {

constexpr Addr kHeap = 0x10000000;
constexpr std::uint64_t kHeapBytes = 16ULL << 20;

/** Fast path vs slow path over a deterministic VA sample. */
void
expectFastMatchesSlow(const PageTable &pt, Asid asid,
                      std::uint64_t seed)
{
    Rng rng(seed);
    for (int i = 0; i < 4000; ++i) {
        const Addr va = kHeap + rng.next() % kHeapBytes;
        const auto fast = pt.translate(asid, va);
        const auto slow = pt.translateSlow(asid, va);
        ASSERT_EQ(fast.has_value(), slow.has_value()) << "va " << va;
        if (!fast)
            continue;
        EXPECT_EQ(fast->paBase, slow->paBase) << "va " << va;
        EXPECT_EQ(fast->vaBase, slow->vaBase) << "va " << va;
        EXPECT_EQ(fast->size, slow->size) << "va " << va;
    }
}

TEST(TranslationCache, DirectFillAndGenerationInvalidation)
{
    TranslationCache tc;
    EXPECT_EQ(tc.lookup(1, 0x5000), nullptr);

    tc.fill(1, 0x5000, 0x90000, 0x5000, PageSize::Base4KB);
    const TranslationCacheEntry *e = tc.lookup(1, 0x5123);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->paBase, 0x90000u);
    EXPECT_EQ(e->vaBase, 0x5000u);
    EXPECT_EQ(e->size, PageSize::Base4KB);

    // Same VPN, different ASID: must not alias.
    EXPECT_EQ(tc.lookup(2, 0x5123), nullptr);

    tc.invalidateAll();
    EXPECT_EQ(tc.lookup(1, 0x5123), nullptr);
}

TEST(TranslationCache, SuperpageEntryCoversOnlyItsVpn)
{
    TranslationCache tc;
    // A 2MB mapping cached via the 4KB VPN of one access: a later
    // access to a different 4KB VPN of the same superpage misses and
    // must refill (correct, just slower).
    tc.fill(1, 0x40000000, 0x200000, 0x40000000, PageSize::Super2MB);
    EXPECT_NE(tc.lookup(1, 0x40000a00), nullptr);
    EXPECT_EQ(tc.lookup(1, 0x40001a00), nullptr);
}

struct TranslationCacheChurnTest : ::testing::Test
{
    OsMemoryManager os{[] {
        OsParams p;
        p.memBytes = 256ULL << 20;
        return p;
    }()};
    Asid asid{os.createProcess()};

    const PageTable &
    pt() const
    {
        return os.pageTable();
    }
};

TEST_F(TranslationCacheChurnTest, EquivalentAfterInitialMapping)
{
    os.mapAnonymous(asid, kHeap, kHeapBytes, 0.5);
    expectFastMatchesSlow(pt(), asid, 11);
}

TEST_F(TranslationCacheChurnTest, EquivalentAfterUnmapChurn)
{
    os.mapAnonymous(asid, kHeap, kHeapBytes, 0.5);
    expectFastMatchesSlow(pt(), asid, 12); // populate the cache
    Rng rng(13);
    for (int round = 0; round < 16; ++round) {
        // Punch a random 64KB hole, then remap it.
        const Addr hole =
            kHeap + (rng.next() % (kHeapBytes >> 16) << 16);
        os.unmapRange(asid, hole, 64 * 1024);
        expectFastMatchesSlow(pt(), asid, 100 + round);
        os.mapAnonymous(asid, hole, 64 * 1024, 0.0);
        expectFastMatchesSlow(pt(), asid, 200 + round);
    }
}

TEST_F(TranslationCacheChurnTest, EquivalentAfterPromotionPasses)
{
    // Base pages only at first (THP off via eligibility 0), then
    // khugepaged promotes regions while cached 4KB entries are live.
    os.mapAnonymous(asid, kHeap, kHeapBytes, 0.0);
    expectFastMatchesSlow(pt(), asid, 21);
    for (int pass = 0; pass < 4; ++pass) {
        os.runPromotionPass(asid, 2);
        expectFastMatchesSlow(pt(), asid, 300 + pass);
    }
}

TEST_F(TranslationCacheChurnTest, EquivalentAfterSplinterChurn)
{
    os.mapAnonymous(asid, kHeap, kHeapBytes, 1.0);
    expectFastMatchesSlow(pt(), asid, 31); // cache superpage entries
    Rng rng(32);
    unsigned splintered = 0;
    for (int i = 0; i < 8; ++i) {
        const Addr va = kHeap + rng.next() % kHeapBytes;
        if (os.splinter(asid, va))
            ++splintered;
        expectFastMatchesSlow(pt(), asid, 400 + i);
    }
    EXPECT_GT(splintered, 0u);
}

TEST_F(TranslationCacheChurnTest, EquivalentAfterProcessTeardown)
{
    os.mapAnonymous(asid, kHeap, kHeapBytes, 0.5);
    expectFastMatchesSlow(pt(), asid, 41);
    os.destroyProcess(asid);
    Rng rng(42);
    for (int i = 0; i < 1000; ++i) {
        const Addr va = kHeap + rng.next() % kHeapBytes;
        EXPECT_FALSE(pt().translate(asid, va).has_value());
    }
}

// --- Mutation tests: the audit must catch a corrupted cache. -------

std::vector<check::Violation>
collect(const std::function<void(check::AuditContext &)> &fn)
{
    check::InvariantAuditor auditor;
    std::vector<check::Violation> seen;
    auditor.setViolationHandler(
        [&seen](const check::Violation &v) { seen.push_back(v); });
    auditor.registerCheck("under-test", fn);
    auditor.runAll(0);
    return seen;
}

struct MemAuditMutationTest : ::testing::Test
{
    PageTable pt;
    static constexpr Asid kAsid = 1;

    MemAuditMutationTest()
    {
        pt.map(kAsid, 0x1000, 0x70000, PageSize::Base4KB);
        pt.map(kAsid, 0x40000000, 0x200000, PageSize::Super2MB);
    }

    std::vector<check::Violation>
    audit()
    {
        return collect([&](check::AuditContext &ctx) {
            check::auditTranslationCacheAgainstPageTable(pt, ctx);
        });
    }
};

TEST_F(MemAuditMutationTest, WarmCacheAuditsClean)
{
    ASSERT_TRUE(pt.translate(kAsid, 0x1234));
    ASSERT_TRUE(pt.translate(kAsid, 0x40000234));
    EXPECT_TRUE(audit().empty());
}

TEST_F(MemAuditMutationTest, CatchesEntryForUnmappedPage)
{
    pt.translationCache().fill(kAsid, 0x9000, 0xdead000, 0x9000,
                               PageSize::Base4KB);
    const auto seen = audit();
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_NE(seen[0].detail.find("no mapping"), std::string::npos);
}

TEST_F(MemAuditMutationTest, CatchesWrongPhysicalBase)
{
    ASSERT_TRUE(pt.translate(kAsid, 0x1234));
    pt.translationCache().fill(kAsid, 0x1000, 0xdead000, 0x1000,
                               PageSize::Base4KB);
    const auto seen = audit();
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_NE(seen[0].detail.find("different physical base"),
              std::string::npos);
}

TEST_F(MemAuditMutationTest, CatchesStaleSizeAfterPromotion)
{
    // A 4KB-sized entry lingering inside what is now a 2MB mapping.
    pt.translationCache().fill(kAsid, 0x40000000, 0x200000,
                               0x40000000, PageSize::Base4KB);
    const auto seen = audit();
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_NE(seen[0].detail.find("promotion/splinter"),
              std::string::npos);
}

TEST_F(MemAuditMutationTest, GenerationBumpSilencesStaleEntries)
{
    pt.translationCache().fill(kAsid, 0x9000, 0xdead000, 0x9000,
                               PageSize::Base4KB);
    ASSERT_EQ(audit().size(), 1u);
    pt.translationCache().invalidateAll();
    EXPECT_TRUE(audit().empty());
}

TEST_F(MemAuditMutationTest, UnmapInvalidatesWithoutAuditNoise)
{
    // The real mutation path: translate (fills the cache), unmap
    // (bumps the generation). The audit must see no live stale entry.
    ASSERT_TRUE(pt.translate(kAsid, 0x1234));
    pt.unmap(kAsid, 0x1000, PageSize::Base4KB);
    EXPECT_TRUE(audit().empty());
    EXPECT_FALSE(pt.translate(kAsid, 0x1234).has_value());
}

} // namespace
} // namespace seesaw
