/** @file Tests for the generic per-page-size TLB. */

#include <gtest/gtest.h>

#include "tlb/tlb.hh"

namespace seesaw {
namespace {

TEST(Tlb, MissThenHitAfterInsert)
{
    Tlb tlb("t", 16, 4, PageSize::Base4KB);
    EXPECT_FALSE(tlb.lookup(1, 0x1234).has_value());
    tlb.insert(1, 0x1000, 0x9000);
    auto e = tlb.lookup(1, 0x1234);
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->paBase, 0x9000u);
    EXPECT_EQ(e->size, PageSize::Base4KB);
}

TEST(Tlb, EntriesAreAsidTagged)
{
    Tlb tlb("t", 16, 4, PageSize::Base4KB);
    tlb.insert(1, 0x1000, 0x9000);
    EXPECT_TRUE(tlb.lookup(1, 0x1000).has_value());
    EXPECT_FALSE(tlb.lookup(2, 0x1000).has_value());
}

TEST(Tlb, SuperpageGranularity)
{
    Tlb tlb("t", 16, 4, PageSize::Super2MB);
    tlb.insert(1, 0x200000, 0x40000000);
    // Any address in the 2MB page hits.
    EXPECT_TRUE(tlb.lookup(1, 0x200000).has_value());
    EXPECT_TRUE(tlb.lookup(1, 0x3fffff).has_value());
    EXPECT_FALSE(tlb.lookup(1, 0x400000).has_value());
}

TEST(Tlb, InsertUpdatesExistingEntry)
{
    Tlb tlb("t", 16, 4, PageSize::Base4KB);
    tlb.insert(1, 0x1000, 0x9000);
    tlb.insert(1, 0x1000, 0xa000);
    EXPECT_EQ(tlb.validCount(), 1u);
    EXPECT_EQ(tlb.lookup(1, 0x1000)->paBase, 0xa000u);
}

TEST(Tlb, LruEvictionWithinSet)
{
    // Fully associative 4-entry TLB (1 set).
    Tlb tlb("t", 4, 4, PageSize::Base4KB);
    for (Addr p = 0; p < 4; ++p)
        tlb.insert(1, p << 12, p << 12);
    // Touch page 0 so page 1 is LRU.
    EXPECT_TRUE(tlb.lookup(1, 0x0).has_value());
    tlb.insert(1, 4ULL << 12, 4ULL << 12);
    EXPECT_TRUE(tlb.lookup(1, 0x0).has_value());
    EXPECT_FALSE(tlb.lookup(1, 1ULL << 12).has_value());
    // Only the fifth fill displaced a valid entry.
    EXPECT_EQ(tlb.evictions(), 1u);
}

TEST(Tlb, SetIndexingSeparatesConflicts)
{
    // 16 entries, 4-way: 4 sets. Pages 0 and 4 share set 0.
    Tlb tlb("t", 16, 4, PageSize::Base4KB);
    for (Addr p = 0; p < 16; ++p)
        tlb.insert(1, p << 12, p << 12);
    EXPECT_EQ(tlb.validCount(), 16u);
}

TEST(Tlb, InvalidatePage)
{
    Tlb tlb("t", 16, 4, PageSize::Base4KB);
    tlb.insert(1, 0x1000, 0x9000);
    EXPECT_TRUE(tlb.invalidatePage(1, 0x1fff));
    EXPECT_FALSE(tlb.lookup(1, 0x1000).has_value());
    EXPECT_FALSE(tlb.invalidatePage(1, 0x1000));
}

TEST(Tlb, FlushAsidKeepsOtherAsids)
{
    Tlb tlb("t", 16, 4, PageSize::Base4KB);
    tlb.insert(1, 0x1000, 0x9000);
    tlb.insert(2, 0x2000, 0xa000);
    tlb.flushAsid(1);
    EXPECT_FALSE(tlb.lookup(1, 0x1000).has_value());
    EXPECT_TRUE(tlb.lookup(2, 0x2000).has_value());
}

TEST(Tlb, FlushAllEmptiesEverything)
{
    Tlb tlb("t", 16, 4, PageSize::Base4KB);
    tlb.insert(1, 0x1000, 0x9000);
    tlb.insert(2, 0x2000, 0xa000);
    tlb.flushAll();
    EXPECT_EQ(tlb.validCount(), 0u);
}

TEST(Tlb, PeekDoesNotCountOrTouch)
{
    Tlb tlb("t", 16, 4, PageSize::Base4KB);
    tlb.insert(1, 0x1000, 0x9000);
    const double lookups_before = tlb.stats().get("lookups");
    EXPECT_TRUE(tlb.peek(1, 0x1000).has_value());
    EXPECT_EQ(tlb.stats().get("lookups"), lookups_before);
}

TEST(Tlb, StatsTrackHitsAndMisses)
{
    Tlb tlb("t", 16, 4, PageSize::Base4KB);
    tlb.lookup(1, 0x1000);
    tlb.insert(1, 0x1000, 0x9000);
    tlb.lookup(1, 0x1000);
    EXPECT_EQ(tlb.stats().get("lookups"), 2.0);
    EXPECT_EQ(tlb.stats().get("misses"), 1.0);
    EXPECT_EQ(tlb.stats().get("hits"), 1.0);
    EXPECT_EQ(tlb.stats().get("fills"), 1.0);
}

} // namespace
} // namespace seesaw
