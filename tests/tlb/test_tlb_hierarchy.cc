/** @file Tests for the split-L1 / unified-L2 TLB hierarchy. */

#include <gtest/gtest.h>

#include <vector>

#include "tlb/tlb_hierarchy.hh"

namespace seesaw {
namespace {

class TlbHierarchyTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        table_.map(1, 0x1000, 0x5000, PageSize::Base4KB);
        table_.map(1, 0x200000, 0x40000000, PageSize::Super2MB);
    }

    PageTable table_;
};

TEST_F(TlbHierarchyTest, ColdLookupWalksAndFills)
{
    TlbHierarchy tlb(TlbHierarchyParams::sandybridge(), table_);
    const auto first = tlb.lookup(1, 0x1234);
    EXPECT_FALSE(first.fault);
    EXPECT_FALSE(first.l1Hit);
    EXPECT_TRUE(first.walked);
    EXPECT_GT(first.penaltyCycles, 0u);
    EXPECT_EQ(first.translation.paBase, 0x5000u);

    const auto second = tlb.lookup(1, 0x1234);
    EXPECT_TRUE(second.l1Hit);
    EXPECT_EQ(second.penaltyCycles, 0u);
}

TEST_F(TlbHierarchyTest, SuperpageFillsThe2MBTlbAndFiresHook)
{
    TlbHierarchy tlb(TlbHierarchyParams::sandybridge(), table_);
    std::vector<Addr> marked;
    tlb.setOn2MBFill(
        [&](Asid, Addr va) { marked.push_back(va); });

    tlb.lookup(1, 0x234567);
    ASSERT_EQ(marked.size(), 1u);
    EXPECT_EQ(marked[0], 0x200000u);
    EXPECT_EQ(tlb.superpageL1ValidCount(), 1u);

    // Default policy: the hook is refreshed on 2MB L1 TLB hits too, so
    // a conflict-displaced TFT entry can be restored.
    tlb.lookup(1, 0x234567);
    ASSERT_EQ(marked.size(), 2u);
    EXPECT_EQ(marked[1], 0x200000u);
}

TEST_F(TlbHierarchyTest, PaperLiteralFillOnlyPolicy)
{
    TlbHierarchyParams params = TlbHierarchyParams::sandybridge();
    params.refreshOn2mHit = false;
    TlbHierarchy tlb(params, table_);
    std::vector<Addr> marked;
    tlb.setOn2MBFill([&](Asid, Addr va) { marked.push_back(va); });

    tlb.lookup(1, 0x234567); // fill -> fires
    tlb.lookup(1, 0x234567); // L1 hit -> silent under Fig 5's policy
    EXPECT_EQ(marked.size(), 1u);
}

TEST_F(TlbHierarchyTest, L2HitAfterL1Eviction)
{
    TlbHierarchyParams params = TlbHierarchyParams::sandybridge();
    TlbHierarchy tlb(params, table_);

    // 256 pages overflow the 128-entry L1 TLB but fit in the
    // 512-entry L2 TLB.
    for (Addr p = 0; p < 256; ++p)
        table_.map(2, 0x100000 + (p << 12), 0x800000 + (p << 12),
                   PageSize::Base4KB);
    for (Addr p = 0; p < 256; ++p)
        tlb.lookup(2, 0x100000 + (p << 12));

    // The second pass must generate L1 misses (capacity) but zero new
    // walks: every re-lookup is at worst an L2 hit.
    const double walks_before = tlb.walker().stats().get("walks");
    const double l1_hits_before = tlb.stats().get("l1_hits");
    for (Addr p = 0; p < 256; ++p)
        tlb.lookup(2, 0x100000 + (p << 12));
    EXPECT_EQ(tlb.walker().stats().get("walks"), walks_before);
    EXPECT_LT(tlb.stats().get("l1_hits") - l1_hits_before, 256.0);
}

TEST_F(TlbHierarchyTest, StatAccessorsCountL2LookupsAndInvlpgs)
{
    TlbHierarchy tlb(TlbHierarchyParams::sandybridge(), table_);
    EXPECT_EQ(tlb.l2Lookups(), 0u);
    tlb.lookup(1, 0x1000); // cold: L1 miss -> L2 probe -> walk
    EXPECT_EQ(tlb.l2Lookups(), 1u);
    tlb.lookup(1, 0x1000); // L1 hit: no L2 probe
    EXPECT_EQ(tlb.l2Lookups(), 1u);

    EXPECT_EQ(tlb.invlpgs(), 0u);
    tlb.invalidatePage(1, 0x1000);
    EXPECT_EQ(tlb.invlpgs(), 1u);
}

TEST_F(TlbHierarchyTest, FaultOnUnmappedAddress)
{
    TlbHierarchy tlb(TlbHierarchyParams::sandybridge(), table_);
    const auto res = tlb.lookup(1, 0xdeadbeef000);
    EXPECT_TRUE(res.fault);
}

TEST_F(TlbHierarchyTest, InvalidatePageDropsAllLevels)
{
    TlbHierarchy tlb(TlbHierarchyParams::sandybridge(), table_);
    tlb.lookup(1, 0x1000);
    tlb.invalidatePage(1, 0x1000);
    const auto res = tlb.lookup(1, 0x1000);
    EXPECT_FALSE(res.l1Hit);
    EXPECT_TRUE(res.walked); // L2 was invalidated too
}

TEST_F(TlbHierarchyTest, Invalidate2MBPage)
{
    TlbHierarchy tlb(TlbHierarchyParams::sandybridge(), table_);
    tlb.lookup(1, 0x200000);
    EXPECT_EQ(tlb.superpageL1ValidCount(), 1u);
    tlb.invalidatePage(1, 0x200000);
    EXPECT_EQ(tlb.superpageL1ValidCount(), 0u);
}

TEST_F(TlbHierarchyTest, FlushAllEmptiesHierarchy)
{
    TlbHierarchy tlb(TlbHierarchyParams::sandybridge(), table_);
    tlb.lookup(1, 0x1000);
    tlb.lookup(1, 0x200000);
    tlb.flushAll();
    EXPECT_EQ(tlb.superpageL1ValidCount(), 0u);
    EXPECT_TRUE(tlb.lookup(1, 0x1000).walked);
}

TEST_F(TlbHierarchyTest, PresetsMatchTableII)
{
    const auto sb = TlbHierarchyParams::sandybridge();
    EXPECT_EQ(sb.l1Entries4k, 128u);
    EXPECT_EQ(sb.l1Entries2m, 16u);

    const auto atom = TlbHierarchyParams::atom();
    EXPECT_EQ(atom.l1Entries4k, 64u);
    EXPECT_EQ(atom.l1Entries2m, 32u);
    EXPECT_EQ(atom.l2Entries, 512u);
}

TEST_F(TlbHierarchyTest, SuperpageCapacityMatchesPreset)
{
    TlbHierarchy tlb(TlbHierarchyParams::sandybridge(), table_);
    EXPECT_EQ(tlb.superpageL1Capacity(), 16u);
}

TEST_F(TlbHierarchyTest, PenaltyOrderingL1HitFastestWalkSlowest)
{
    TlbHierarchy tlb(TlbHierarchyParams::sandybridge(), table_);
    const auto walk = tlb.lookup(1, 0x1000);  // cold: walk
    tlb.invalidatePage(1, 0x1000);
    // After invlpg everywhere, the next lookup walks again; then
    // populate L1 and compare penalties.
    const auto walk2 = tlb.lookup(1, 0x1000);
    const auto l1hit = tlb.lookup(1, 0x1000);
    EXPECT_GT(walk.penaltyCycles, 0u);
    EXPECT_EQ(walk.penaltyCycles, walk2.penaltyCycles);
    EXPECT_EQ(l1hit.penaltyCycles, 0u);
}

} // namespace
} // namespace seesaw
