/** @file Tests for the page-walker cost model. */

#include <gtest/gtest.h>

#include "tlb/page_walker.hh"

namespace seesaw {
namespace {

TEST(PageWalker, WalkLevelsPerPageSize)
{
    EXPECT_EQ(PageTable::walkLevels(PageSize::Base4KB), 4u);
    EXPECT_EQ(PageTable::walkLevels(PageSize::Super2MB), 3u);
    EXPECT_EQ(PageTable::walkLevels(PageSize::Super1GB), 2u);
}

TEST(PageWalker, WalkReturnsTranslationAndCost)
{
    PageTable table;
    table.map(1, 0x1000, 0x5000, PageSize::Base4KB);
    PageWalker walker(table, 12);
    auto res = walker.walk(1, 0x1234);
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->translation.paBase, 0x5000u);
    EXPECT_EQ(res->levels, 4u);
    EXPECT_EQ(res->cycles, 48u);
}

TEST(PageWalker, SuperpageWalkIsShorter)
{
    PageTable table;
    table.map(1, 0x200000, 0x400000, PageSize::Super2MB);
    table.map(1, 0x1000, 0x5000, PageSize::Base4KB);
    PageWalker walker(table, 12);
    const auto super = walker.walk(1, 0x200400);
    const auto base = walker.walk(1, 0x1000);
    ASSERT_TRUE(super && base);
    EXPECT_LT(super->cycles, base->cycles);
}

TEST(PageWalker, UnmappedAddressFaults)
{
    PageTable table;
    PageWalker walker(table);
    EXPECT_FALSE(walker.walk(1, 0xdead000).has_value());
    EXPECT_EQ(walker.stats().get("faults"), 1.0);
}

TEST(PageWalker, StatsAccumulate)
{
    PageTable table;
    table.map(1, 0x1000, 0x5000, PageSize::Base4KB);
    PageWalker walker(table, 10);
    walker.walk(1, 0x1000);
    walker.walk(1, 0x1000);
    EXPECT_EQ(walker.stats().get("walks"), 2.0);
    EXPECT_EQ(walker.stats().get("walk_cycles"), 80.0);
}

} // namespace
} // namespace seesaw
