/** @file Tests for the fully-associative unified L1 TLB. */

#include <gtest/gtest.h>

#include "mem/page_table.hh"
#include "tlb/tlb_hierarchy.hh"
#include "tlb/unified_tlb.hh"

namespace seesaw {
namespace {

constexpr Addr kMB2 = 2ULL << 20;

TEST(UnifiedTlb, MixedPageSizesCoexist)
{
    UnifiedTlb tlb("u", 8);
    tlb.insert(1, 0x1000, 0x9000, PageSize::Base4KB);
    tlb.insert(1, kMB2, 4 * kMB2, PageSize::Super2MB);
    tlb.insert(1, 1ULL << 30, 2ULL << 30, PageSize::Super1GB);

    EXPECT_TRUE(tlb.lookup(1, 0x1234).has_value());
    EXPECT_TRUE(tlb.lookup(1, kMB2 + 0x12345).has_value());
    EXPECT_TRUE(tlb.lookup(1, (1ULL << 30) + 0xabcdef).has_value());
    EXPECT_EQ(tlb.validCount(), 3u);
    EXPECT_EQ(tlb.superpageValidCount(), 2u);
}

TEST(UnifiedTlb, CoverageRespectsPageSize)
{
    UnifiedTlb tlb("u", 8);
    tlb.insert(1, kMB2, 4 * kMB2, PageSize::Super2MB);
    EXPECT_TRUE(tlb.lookup(1, kMB2).has_value());
    EXPECT_TRUE(tlb.lookup(1, 2 * kMB2 - 1).has_value());
    EXPECT_FALSE(tlb.lookup(1, 2 * kMB2).has_value());
    EXPECT_FALSE(tlb.lookup(1, kMB2 - 1).has_value());
}

TEST(UnifiedTlb, SharedCapacityAcrossSizes)
{
    // A superpage-heavy phase may consume the entire structure —
    // the property split TLBs cannot express.
    UnifiedTlb tlb("u", 4);
    for (Addr r = 0; r < 4; ++r)
        tlb.insert(1, r * kMB2, r * kMB2, PageSize::Super2MB);
    EXPECT_EQ(tlb.superpageValidCount(), 4u);

    // A 4KB insert now evicts the LRU superpage entry.
    tlb.insert(1, 0x7000'0000, 0x9000, PageSize::Base4KB);
    EXPECT_EQ(tlb.validCount(), 4u);
    EXPECT_EQ(tlb.superpageValidCount(), 3u);
    EXPECT_FALSE(tlb.lookup(1, 0).has_value()); // LRU victim
    EXPECT_EQ(tlb.evictions(), 1u);
}

TEST(UnifiedTlb, LruAcrossTheWholePool)
{
    UnifiedTlb tlb("u", 3);
    tlb.insert(1, 0x1000, 0x1000, PageSize::Base4KB);
    tlb.insert(1, 0x2000, 0x2000, PageSize::Base4KB);
    tlb.insert(1, 0x3000, 0x3000, PageSize::Base4KB);
    // Touch the first so the second becomes LRU.
    EXPECT_TRUE(tlb.lookup(1, 0x1000).has_value());
    tlb.insert(1, 0x4000, 0x4000, PageSize::Base4KB);
    EXPECT_TRUE(tlb.lookup(1, 0x1000).has_value());
    EXPECT_FALSE(tlb.lookup(1, 0x2000).has_value());
}

TEST(UnifiedTlb, AsidIsolationAndInvalidation)
{
    UnifiedTlb tlb("u", 8);
    tlb.insert(1, 0x1000, 0x9000, PageSize::Base4KB);
    tlb.insert(2, 0x1000, 0xa000, PageSize::Base4KB);
    EXPECT_EQ(tlb.lookup(1, 0x1000)->paBase, 0x9000u);
    EXPECT_EQ(tlb.lookup(2, 0x1000)->paBase, 0xa000u);

    EXPECT_TRUE(tlb.invalidatePage(1, 0x1000));
    EXPECT_FALSE(tlb.lookup(1, 0x1000).has_value());
    EXPECT_TRUE(tlb.lookup(2, 0x1000).has_value());

    tlb.flushAsid(2);
    EXPECT_EQ(tlb.validCount(), 0u);
}

TEST(UnifiedTlbHierarchy, LookupFillsUnifiedAndFiresHook)
{
    PageTable table;
    table.map(1, kMB2, 4 * kMB2, PageSize::Super2MB);
    table.map(1, 0x1000, 0x5000, PageSize::Base4KB);

    TlbHierarchy tlb(TlbHierarchyParams::unified(16), table);
    std::vector<Addr> marked;
    tlb.setOn2MBFill([&](Asid, Addr va) { marked.push_back(va); });

    const auto super = tlb.lookup(1, kMB2 + 0x5000);
    EXPECT_FALSE(super.fault);
    EXPECT_TRUE(super.walked);
    ASSERT_EQ(marked.size(), 1u);
    EXPECT_EQ(marked[0], kMB2);

    // L1 hit path, with the refresh policy active.
    const auto hit = tlb.lookup(1, kMB2 + 0x6000);
    EXPECT_TRUE(hit.l1Hit);
    EXPECT_EQ(marked.size(), 2u);

    // Base pages never fire the hook.
    tlb.lookup(1, 0x1000);
    tlb.lookup(1, 0x1000);
    EXPECT_EQ(marked.size(), 2u);

    EXPECT_EQ(tlb.superpageL1ValidCount(), 1u);
    EXPECT_EQ(tlb.superpageL1Capacity(), 16u);
}

TEST(UnifiedTlbHierarchy, InvalidateAndFlushCoverUnified)
{
    PageTable table;
    table.map(1, kMB2, 4 * kMB2, PageSize::Super2MB);
    TlbHierarchy tlb(TlbHierarchyParams::unified(16), table);
    tlb.lookup(1, kMB2);
    EXPECT_EQ(tlb.superpageL1ValidCount(), 1u);
    tlb.invalidatePage(1, kMB2);
    EXPECT_EQ(tlb.superpageL1ValidCount(), 0u);

    tlb.lookup(1, kMB2);
    tlb.flushAll();
    EXPECT_EQ(tlb.superpageL1ValidCount(), 0u);
}

} // namespace
} // namespace seesaw
