/** @file Tests for the in-order and out-of-order core timing models. */

#include <gtest/gtest.h>

#include "cpu/cpu_model.hh"

namespace seesaw {
namespace {

TEST(CpuParams, PresetsMatchTableII)
{
    const auto sb = CpuParams::sandybridge();
    EXPECT_EQ(sb.robEntries, 168u);
    EXPECT_EQ(sb.schedEntries, 54u);
    EXPECT_EQ(sb.issueWidth, 4u);

    const auto atom = CpuParams::atom();
    EXPECT_EQ(atom.issueWidth, 2u);
    EXPECT_EQ(atom.squashPenaltyCycles, 0u);
}

TEST(InOrderCore, NonMemoryThroughputIsIssueWidth)
{
    InOrderCore core;
    core.retireNonMemory(100);
    EXPECT_EQ(core.cycles(), 50u);
    EXPECT_EQ(core.instructions(), 100u);
}

TEST(InOrderCore, MemoryLatencyMostlyExposed)
{
    // A 2-cycle hit costs 1 + k*sqrt(1) cycles: more than the single
    // pipelined cycle, less than the raw latency.
    InOrderCore core;
    MemTiming t;
    t.hit = true;
    t.lookupCycles = 2;
    t.assumedCycles = 2;
    for (int i = 0; i < 100; ++i)
        core.retireMemory(t);
    const auto atom = CpuParams::atom();
    const double e = CpuParams::exposedHitCycles(
        2, atom.inorderL1ExposureFactor,
        atom.inorderL1ExposureSaturation);
    EXPECT_NEAR(static_cast<double>(core.cycles()),
                100.0 * (1.0 + e), 1.0);
}

TEST(InOrderCore, FasterHitDirectlyReducesCycles)
{
    InOrderCore a, b;
    MemTiming slow{true, 2, 0, 2};
    MemTiming fast{true, 1, 0, 1};
    for (int i = 0; i < 100; ++i) {
        a.retireMemory(slow);
        b.retireMemory(fast);
    }
    const auto atom = CpuParams::atom();
    const double e = CpuParams::exposedHitCycles(
        2, atom.inorderL1ExposureFactor,
        atom.inorderL1ExposureSaturation);
    EXPECT_NEAR(static_cast<double>(a.cycles() - b.cycles()),
                100.0 * e, 1.5);
    // The in-order core exposes more of the latency than the OoO core.
    EXPECT_GT(atom.inorderL1ExposureFactor,
              CpuParams::sandybridge().l1ExposureFactor);
}

TEST(CpuParams, ExposureSaturatesInLatency)
{
    // Exposure grows monotonically but saturates: bigger windows hide
    // long latencies disproportionately well.
    const double k = 0.13, sat = 10.0;
    const double e2 = CpuParams::exposedHitCycles(2, k, sat);
    const double e5 = CpuParams::exposedHitCycles(5, k, sat);
    const double e14 = CpuParams::exposedHitCycles(14, k, sat);
    const double e42 = CpuParams::exposedHitCycles(42, k, sat);
    EXPECT_GT(e5, e2);
    EXPECT_GT(e14, e5);
    EXPECT_GT(e42, e14);
    EXPECT_LT(e14 / e5, 14.0 / 5.0);
    EXPECT_LT(e42, k * sat); // hard ceiling
    EXPECT_EQ(CpuParams::exposedHitCycles(1, k, sat), 0.0);
}

TEST(InOrderCore, MissPenaltyMostlyExposed)
{
    InOrderCore core;
    MemTiming t;
    t.hit = false;
    t.lookupCycles = 2;
    t.missPenalty = 100;
    t.assumedCycles = 2;
    core.retireMemory(t);
    EXPECT_GE(core.cycles(), 2u + 85u);
    EXPECT_EQ(core.squashes(), 0u); // no speculative scheduling
}

TEST(InOrderCore, NeverSquashes)
{
    InOrderCore core;
    MemTiming t;
    t.hit = true;
    t.lookupCycles = 10;
    t.assumedCycles = 1; // even when "assumed" is exceeded
    core.retireMemory(t);
    EXPECT_EQ(core.squashes(), 0u);
}

TEST(OoOCore, NonMemoryThroughputIsIssueWidth)
{
    OoOCore core;
    core.retireNonMemory(400);
    EXPECT_EQ(core.cycles(), 100u);
}

TEST(OoOCore, HidesPartOfHitLatency)
{
    OoOCore ooo;
    InOrderCore ino;
    MemTiming t{true, 5, 0, 5};
    for (int i = 0; i < 100; ++i) {
        ooo.retireMemory(t);
        ino.retireMemory(t);
    }
    EXPECT_LT(ooo.cycles(), ino.cycles());
}

TEST(OoOCore, SquashChargedOnLateDiscovery)
{
    OoOCore core;
    MemTiming t{true, 2, 0, /*assumed=*/1, /*late=*/true};
    core.retireMemory(t);
    EXPECT_EQ(core.squashes(), 1u);
    EXPECT_GE(core.cycles(),
              CpuParams::sandybridge().squashPenaltyCycles);
}

TEST(OoOCore, EarlyDiscoveryCostsOnlyABubble)
{
    // A TFT miss is signalled within the first cycle: the scheduler
    // cancels the fast wakeup for one cycle instead of replaying.
    OoOCore core;
    MemTiming t{true, 2, 0, /*assumed=*/1, /*late=*/false};
    core.retireMemory(t);
    EXPECT_EQ(core.squashes(), 0u);
    EXPECT_EQ(core.rescheduleBubbles(), 1u);
    EXPECT_LT(core.cycles(),
              CpuParams::sandybridge().squashPenaltyCycles);
    EXPECT_GE(core.cycles(), 1u);
}

TEST(OoOCore, NoSquashWhenAssumedCorrectly)
{
    OoOCore core;
    MemTiming t{true, 2, 0, 2};
    core.retireMemory(t);
    EXPECT_EQ(core.squashes(), 0u);
}

TEST(OoOCore, MissIsASquashUnderHitAssumption)
{
    OoOCore core;
    MemTiming t{false, 2, 50, 2, /*late=*/true};
    core.retireMemory(t);
    EXPECT_EQ(core.squashes(), 1u);
    EXPECT_EQ(core.missStalls(), 1u);
}

TEST(OoOCore, MissPenaltyPartiallyOverlapped)
{
    OoOCore ooo;
    InOrderCore ino;
    MemTiming t{false, 2, 100, 2};
    ooo.retireMemory(t);
    ino.retireMemory(t);
    EXPECT_LT(ooo.cycles(), ino.cycles());
}

TEST(OoOCore, SeesawFastVsSlowAssumptionTradeoff)
{
    // If the scheduler assumes fast but the access is slow, the squash
    // penalty makes it WORSE than having assumed slow — the rationale
    // for the §IV-B3 counter policy.
    OoOCore assume_fast, assume_slow;
    MemTiming slow_access_fast_assumed{true, 2, 0, 1};
    MemTiming slow_access_slow_assumed{true, 2, 0, 2};
    for (int i = 0; i < 100; ++i) {
        assume_fast.retireMemory(slow_access_fast_assumed);
        assume_slow.retireMemory(slow_access_slow_assumed);
    }
    EXPECT_GT(assume_fast.cycles(), assume_slow.cycles());
}

TEST(OoOCore, IpcComputation)
{
    OoOCore core;
    core.retireNonMemory(400);
    EXPECT_NEAR(core.ipc(), 4.0, 1e-9);
}

TEST(CpuModel, AddStallCycles)
{
    OoOCore core;
    core.addStallCycles(175);
    EXPECT_EQ(core.cycles(), 175u);
}

TEST(CpuModel, FractionalCyclesAccumulateExactly)
{
    // 4-wide issue: 2 instructions = 0.5 cycles; 8 calls = 4 cycles.
    OoOCore core;
    for (int i = 0; i < 8; ++i)
        core.retireNonMemory(2);
    EXPECT_EQ(core.cycles(), 4u);
}

} // namespace
} // namespace seesaw
