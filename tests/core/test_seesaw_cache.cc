/** @file Tests for the SEESAW cache: Table I lookup anatomy, the
 *  placement invariant, insertion policies and coherence behaviour. */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/seesaw_cache.hh"

namespace seesaw {
namespace {

constexpr std::uint64_t kKB = 1024;
constexpr Addr kSuper = 2ULL << 20;

LatencyTable &
latencyTable()
{
    static LatencyTable table;
    return table;
}

SeesawConfig
config32k()
{
    SeesawConfig c;
    c.sizeBytes = 32 * kKB;
    c.assoc = 8;
    c.partitionWays = 4;
    c.freqGhz = 1.33;
    return c;
}

/** A 2MB-page translation: VA and PA share bits 20:0. */
Addr
superPa(Addr va, Addr pa_region)
{
    return (pa_region << 21) | (va & (kSuper - 1));
}

/** A 4KB-page translation flipping bit 12 (partition mismatch). */
Addr
basePaFlipped(Addr va, Addr pa_page)
{
    Addr pa = (pa_page << 12) | (va & 0xfff);
    // Ensure the PA's partition bit differs from the VA's.
    if (((pa >> 12) & 1) == ((va >> 12) & 1))
        pa ^= (1ULL << 12);
    return pa;
}

TEST(SeesawCache, GeometryChecks)
{
    SeesawCache cache(config32k(), latencyTable());
    EXPECT_EQ(cache.numPartitions(), 2u);
    EXPECT_EQ(cache.baseHitCycles(), 2u);
    EXPECT_EQ(cache.fastHitCycles(), 1u);
}

// ------------------------------------------------------------------
// Table I: anatomy of a lookup, row by row.

TEST(SeesawCache, TableI_Row1_TftHitCacheHit)
{
    SeesawCache cache(config32k(), latencyTable());
    const Addr va = (7ULL << 21) | 0x1440;
    const Addr pa = superPa(va, 0x99);
    cache.tft().markRegion(va);

    // Fill.
    cache.access({va, pa, PageSize::Super2MB, AccessType::Read});
    // TFT hit + cache hit: 1 cycle, 4 ways — latency and energy saved.
    const auto res =
        cache.access({va, pa, PageSize::Super2MB, AccessType::Read});
    EXPECT_TRUE(res.tftHit);
    EXPECT_TRUE(res.hit);
    EXPECT_TRUE(res.fastPath);
    EXPECT_EQ(res.latencyCycles, 1u);
    EXPECT_EQ(res.waysRead, 4u);
}

TEST(SeesawCache, TableI_Row2_TftHitCacheMiss)
{
    SeesawCache cache(config32k(), latencyTable());
    const Addr va = (7ULL << 21) | 0x1440;
    const Addr pa = superPa(va, 0x99);
    cache.tft().markRegion(va);

    // TFT hit + cache miss: the partition lookup suffices to detect
    // the miss (energy saved; the miss dominates latency anyway).
    const auto res =
        cache.access({va, pa, PageSize::Super2MB, AccessType::Read});
    EXPECT_TRUE(res.tftHit);
    EXPECT_FALSE(res.hit);
    EXPECT_EQ(res.waysRead, 4u);
    EXPECT_EQ(res.installWays, 4u);
}

TEST(SeesawCache, TableI_Row3_SuperpageTftMiss)
{
    SeesawCache cache(config32k(), latencyTable());
    const Addr va = (7ULL << 21) | 0x1440;
    const Addr pa = superPa(va, 0x99);
    // TFT not marked: conservative full-set read at baseline cost.
    const auto res =
        cache.access({va, pa, PageSize::Super2MB, AccessType::Read});
    EXPECT_FALSE(res.tftHit);
    EXPECT_FALSE(res.fastPath);
    EXPECT_EQ(res.latencyCycles, 2u);
    EXPECT_EQ(res.waysRead, 8u);
}

TEST(SeesawCache, TableI_Row4_BasePageAlwaysSlowPath)
{
    SeesawCache cache(config32k(), latencyTable());
    const Addr va = 0x5001440;
    const Addr pa = basePaFlipped(va, 0x1234);

    cache.access({va, pa, PageSize::Base4KB, AccessType::Read});
    const auto res =
        cache.access({va, pa, PageSize::Base4KB, AccessType::Read});
    EXPECT_FALSE(res.tftHit);
    EXPECT_TRUE(res.hit);
    EXPECT_FALSE(res.fastPath);
    EXPECT_EQ(res.latencyCycles, 2u); // same as baseline VIPT
    EXPECT_EQ(res.waysRead, 8u);
}

// ------------------------------------------------------------------
// Placement invariant and insertion policies.

TEST(SeesawCache, BasePageHitsEvenWhenPartitionBitsDiffer)
{
    // The crucial correctness case: a base page whose VA partition bit
    // differs from its PA partition bit. The line lives in the PA's
    // partition; the VA-side lookup must still find it (full-set read).
    SeesawCache cache(config32k(), latencyTable());
    const Addr va = 0x5000440; // bit 12 = 0
    const Addr pa = 0x1440;    // force partition 1
    ASSERT_NE((va >> 12) & 1, (pa >> 12) & 1);

    cache.access({va, pa, PageSize::Base4KB, AccessType::Read});
    EXPECT_TRUE(
        cache.access({va, pa, PageSize::Base4KB, AccessType::Read})
            .hit);
    // The line must sit in the PA-indexed partition.
    EXPECT_TRUE(cache.tags().checkPlacementInvariant());
}

TEST(SeesawCache, FourWayPolicyMaintainsInvariantUnderStress)
{
    SeesawCache cache(config32k(), latencyTable());
    Rng rng(17);
    for (int i = 0; i < 20000; ++i) {
        const Addr va = rng.next() & ((1ULL << 44) - 1);
        const bool super = rng.chance(0.5);
        Addr pa;
        PageSize size;
        if (super) {
            pa = superPa(va, rng.nextBounded(1 << 16));
            size = PageSize::Super2MB;
            if (rng.chance(0.7))
                cache.tft().markRegion(va);
        } else {
            pa = (rng.nextBounded(1 << 20) << 12) | (va & 0xfff);
            size = PageSize::Base4KB;
        }
        cache.access({va, pa, size,
                      rng.chance(0.3) ? AccessType::Write
                                      : AccessType::Read});
    }
    EXPECT_TRUE(cache.tags().checkPlacementInvariant());
}

TEST(SeesawCache, FourWayEightWayCanDuplicateAliasedLine)
{
    // §IV-B1: under 4way-8way, a page mapped both as a base page and
    // as part of a superpage can be installed twice. This test
    // reproduces that hazard — the reason the paper chose 4way.
    SeesawConfig cfg = config32k();
    cfg.policy = InsertionPolicy::FourWayEightWay;
    SeesawCache cache(cfg, latencyTable());

    const Addr pa = 0x0440; // partition 0 set 17
    const Addr va_base = 0x7000440; // base-page alias, VA bit12=1

    // Fill partition 0 of the set so a FullSet insert lands elsewhere.
    for (int i = 0; i < 4; ++i) {
        const Addr filler_va = (100 + 2 * i) * kSuper + 0x0440;
        const Addr filler_pa = superPa(filler_va, 0x500 + i);
        cache.tft().markRegion(filler_va);
        cache.access({filler_va, filler_pa, PageSize::Super2MB,
                      AccessType::Read});
    }

    // Base-page alias inserted set-wide: lands in partition 1.
    cache.access({va_base, pa, PageSize::Base4KB, AccessType::Read});
    ASSERT_TRUE(cache.tags().peek(pa).hit);
    ASSERT_GE(cache.tags().peek(pa).way, 4u);

    // Superpage alias of the same PA: partition-scoped lookup misses
    // (the line sits in partition 1, PA says partition 0) and the
    // line is installed AGAIN -> duplicate.
    const Addr va_super = 0x0440; // 2MB region 0
    cache.tft().markRegion(va_super);
    const auto res = cache.access(
        {va_super, pa, PageSize::Super2MB, AccessType::Read});
    EXPECT_FALSE(res.hit);

    // Count copies via partition-scoped lookups.
    unsigned copies = 0;
    SetAssocCache &tags = cache.tags();
    if (tags.lookupPartition(pa, 0).hit)
        ++copies;
    if (tags.lookupPartition(pa, 1).hit)
        ++copies;
    EXPECT_EQ(copies, 2u) << "aliased line should be duplicated";
}

TEST(SeesawCache, FourWayPolicyPreventsDuplicates)
{
    SeesawCache cache(config32k(), latencyTable());
    const Addr pa = 0x0440;
    const Addr va_base = 0x7000440;

    cache.access({va_base, pa, PageSize::Base4KB, AccessType::Read});
    const Addr va_super = 0x0440;
    cache.tft().markRegion(va_super);
    // Under 4way the base alias was installed in the PA's partition,
    // so the superpage-side partition lookup finds it: no duplicate.
    const auto res = cache.access(
        {va_super, pa, PageSize::Super2MB, AccessType::Read});
    EXPECT_TRUE(res.hit);
}

// ------------------------------------------------------------------
// Coherence.

TEST(SeesawCache, CoherenceProbeReadsOnePartition)
{
    SeesawCache cache(config32k(), latencyTable());
    const Addr va = 0x5000440;
    const Addr pa = 0x1440;
    cache.access({va, pa, PageSize::Base4KB, AccessType::Write});

    const auto probe = cache.probe(pa, /*invalidating=*/false);
    EXPECT_TRUE(probe.hit);
    EXPECT_TRUE(probe.wasDirty);
    // §IV-C1: all coherence lookups pay 4-way cost, base or super.
    EXPECT_EQ(probe.waysRead, 4u);
    EXPECT_EQ(cache.probes(), 1u);
}

TEST(SeesawCache, CoherenceProbeMissAlsoCheap)
{
    SeesawCache cache(config32k(), latencyTable());
    const auto probe = cache.probe(0xdead440, false);
    EXPECT_FALSE(probe.hit);
    EXPECT_EQ(probe.waysRead, 4u);
}

TEST(SeesawCache, FourWayEightWayProbesFullSet)
{
    SeesawConfig cfg = config32k();
    cfg.policy = InsertionPolicy::FourWayEightWay;
    SeesawCache cache(cfg, latencyTable());
    const auto probe = cache.probe(0x440, false);
    EXPECT_EQ(probe.waysRead, 8u);
}

TEST(SeesawCache, InvalidatingProbeDropsLine)
{
    SeesawCache cache(config32k(), latencyTable());
    const Addr va = 0x5000440, pa = 0x1440;
    cache.access({va, pa, PageSize::Base4KB, AccessType::Read});
    EXPECT_TRUE(cache.probe(pa, true).hit);
    EXPECT_FALSE(cache.tags().peek(pa).hit);
}

// ------------------------------------------------------------------
// Way prediction combination (Fig 15).

TEST(SeesawCache, WpSeesawCorrectPredictionReadsOneWay)
{
    SeesawConfig cfg = config32k();
    cfg.wayPrediction = true;
    SeesawCache cache(cfg, latencyTable());
    const Addr va = (9ULL << 21) | 0x2440;
    const Addr pa = superPa(va, 0x42);
    cache.tft().markRegion(va);

    cache.access({va, pa, PageSize::Super2MB, AccessType::Read});
    const auto res =
        cache.access({va, pa, PageSize::Super2MB, AccessType::Read});
    EXPECT_TRUE(res.hit);
    EXPECT_TRUE(res.wpUsed);
    EXPECT_TRUE(res.wpCorrect);
    EXPECT_EQ(res.waysRead, 1u);
    EXPECT_EQ(res.latencyCycles, 1u);
    EXPECT_TRUE(res.fastPath);
}

TEST(SeesawCache, WpSeesawMispredictPenaltyBoundedByPartition)
{
    SeesawConfig cfg = config32k();
    cfg.wayPrediction = true;
    SeesawCache cache(cfg, latencyTable());

    // Two superpage lines in the same set and partition: alternate.
    const Addr va1 = (2ULL << 21) | 0x0440;
    const Addr va2 = (4ULL << 21) | 0x0440;
    const Addr pa1 = superPa(va1, 0x10), pa2 = superPa(va2, 0x20);
    cache.tft().markRegion(va1);
    cache.tft().markRegion(va2);
    cache.access({va1, pa1, PageSize::Super2MB, AccessType::Read});
    cache.access({va2, pa2, PageSize::Super2MB, AccessType::Read});

    const auto res =
        cache.access({va1, pa1, PageSize::Super2MB, AccessType::Read});
    EXPECT_TRUE(res.hit);
    EXPECT_FALSE(res.wpCorrect);
    // Mispredict penalty: one extra data-way read inside the
    // partition, +1 cycle — SEESAW bounds the WP replay cost.
    EXPECT_EQ(res.latencyCycles, 1u + 1u);
    EXPECT_EQ(res.waysRead, 2u);
    EXPECT_FALSE(res.lateDiscovery);
}

// ------------------------------------------------------------------
// OS interactions.

TEST(SeesawCache, SweepRegionEvictsPromotedLines)
{
    SeesawCache cache(config32k(), latencyTable());
    const Addr va = 0x5000440, pa = 0x1440;
    cache.access({va, pa, PageSize::Base4KB, AccessType::Read});
    EXPECT_EQ(cache.sweepRegion(0x1000, 4096), 1u);
    EXPECT_FALSE(cache.tags().peek(pa).hit);
    EXPECT_EQ(cache.stats().get("sweep_evictions"), 1.0);
}

TEST(SeesawCache, SuperpageRefsTftMissStatsSplitByHit)
{
    SeesawCache cache(config32k(), latencyTable());
    const Addr va = (3ULL << 21) | 0x0440;
    const Addr pa = superPa(va, 0x31);
    // Untracked superpage access, L1 miss.
    cache.access({va, pa, PageSize::Super2MB, AccessType::Read});
    // Untracked superpage access, L1 hit.
    cache.access({va, pa, PageSize::Super2MB, AccessType::Read});
    EXPECT_EQ(cache.stats().get("superpage_refs"), 2.0);
    EXPECT_EQ(cache.stats().get("superpage_refs_tft_miss"), 2.0);
    EXPECT_EQ(cache.stats().get("superpage_refs_tft_miss_l1_miss"),
              1.0);
    EXPECT_EQ(cache.stats().get("superpage_refs_tft_miss_l1_hit"),
              1.0);
}

TEST(SeesawCache, LargerGeometries)
{
    for (auto [size, assoc] :
         {std::pair{64 * kKB, 16u}, std::pair{128 * kKB, 32u}}) {
        SeesawConfig cfg;
        cfg.sizeBytes = size;
        cfg.assoc = assoc;
        cfg.partitionWays = 4;
        cfg.freqGhz = 1.33;
        SeesawCache cache(cfg, latencyTable());
        EXPECT_EQ(cache.numPartitions(), assoc / 4);

        const Addr va = (11ULL << 21) | 0x3c40;
        const Addr pa = superPa(va, 0x77);
        cache.tft().markRegion(va);
        cache.access({va, pa, PageSize::Super2MB, AccessType::Read});
        const auto res = cache.access(
            {va, pa, PageSize::Super2MB, AccessType::Read});
        EXPECT_TRUE(res.hit);
        EXPECT_TRUE(res.fastPath);
        EXPECT_EQ(res.waysRead, 4u);
        EXPECT_LT(res.latencyCycles, cache.baseHitCycles());
    }
}

} // namespace
} // namespace seesaw
