/** @file Tests for the Translation Filter Table. */

#include <gtest/gtest.h>

#include "core/tft.hh"

namespace seesaw {
namespace {

constexpr Addr kRegion = 2ULL << 20; // 2MB

TEST(Tft, ColdTableMisses)
{
    Tft tft(16);
    EXPECT_FALSE(tft.lookup(0x12345678));
    EXPECT_EQ(tft.validCount(), 0u);
}

TEST(Tft, MarkedRegionHitsForEveryAddressInside)
{
    Tft tft(16);
    tft.markRegion(5 * kRegion);
    EXPECT_TRUE(tft.lookup(5 * kRegion));
    EXPECT_TRUE(tft.lookup(5 * kRegion + 0x1fffff));
    EXPECT_FALSE(tft.lookup(6 * kRegion));
    EXPECT_FALSE(tft.lookup(4 * kRegion));
}

TEST(Tft, MarkIsIdempotent)
{
    Tft tft(16);
    tft.markRegion(kRegion);
    tft.markRegion(kRegion + 0x1234);
    EXPECT_EQ(tft.validCount(), 1u);
}

TEST(Tft, DirectMappedConflictDisplaces)
{
    Tft tft(16);
    // Regions 0 and 16 collide under the MOD-16 hash.
    tft.markRegion(0);
    EXPECT_TRUE(tft.lookup(0));
    tft.markRegion(16 * kRegion);
    EXPECT_FALSE(tft.lookup(0));
    EXPECT_TRUE(tft.lookup(16 * kRegion));
    EXPECT_EQ(tft.stats().get("conflict_evictions"), 1.0);
}

TEST(Tft, NonConflictingRegionsCoexist)
{
    Tft tft(16);
    for (Addr r = 0; r < 16; ++r)
        tft.markRegion(r * kRegion);
    EXPECT_EQ(tft.validCount(), 16u);
    for (Addr r = 0; r < 16; ++r)
        EXPECT_TRUE(tft.lookup(r * kRegion));
}

TEST(Tft, InvalidateRegionOnSplinter)
{
    Tft tft(16);
    tft.markRegion(3 * kRegion);
    EXPECT_TRUE(tft.invalidateRegion(3 * kRegion + 0x999));
    EXPECT_FALSE(tft.lookup(3 * kRegion));
    // Invalidating an absent region reports false.
    EXPECT_FALSE(tft.invalidateRegion(3 * kRegion));
}

TEST(Tft, InvalidateDoesNotTouchOtherEntries)
{
    Tft tft(16);
    tft.markRegion(1 * kRegion);
    tft.markRegion(2 * kRegion);
    tft.invalidateRegion(1 * kRegion);
    EXPECT_TRUE(tft.lookup(2 * kRegion));
}

TEST(Tft, FlushOnContextSwitch)
{
    Tft tft(16);
    for (Addr r = 0; r < 8; ++r)
        tft.markRegion(r * kRegion);
    tft.flush();
    EXPECT_EQ(tft.validCount(), 0u);
    EXPECT_FALSE(tft.lookup(0));
    EXPECT_EQ(tft.stats().get("flushes"), 1.0);
}

TEST(Tft, PeekDoesNotCount)
{
    Tft tft(16);
    tft.markRegion(kRegion);
    const double lookups = tft.stats().get("lookups");
    EXPECT_TRUE(tft.peek(kRegion));
    EXPECT_FALSE(tft.peek(0));
    EXPECT_EQ(tft.stats().get("lookups"), lookups);
}

TEST(Tft, PaperStorageBudget)
{
    // §IV-A2: a 16-entry TFT totals ~86 bytes per core.
    Tft tft(16);
    EXPECT_NEAR(tft.storageBytes(), 86.0, 3.0);
}

TEST(Tft, StatsCountHitsAndMisses)
{
    Tft tft(16);
    tft.lookup(0);
    tft.markRegion(0);
    tft.lookup(0);
    tft.lookup(kRegion);
    EXPECT_EQ(tft.stats().get("lookups"), 3.0);
    EXPECT_EQ(tft.stats().get("hits"), 1.0);
    EXPECT_EQ(tft.stats().get("misses"), 2.0);
}

/** Size sweep used by Fig 13 (12/16/20-entry TFTs). */
class TftSizeTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TftSizeTest, CapacityBoundedByEntries)
{
    Tft tft(GetParam());
    for (Addr r = 0; r < 100; ++r)
        tft.markRegion(r * kRegion);
    EXPECT_LE(tft.validCount(), GetParam());
}

TEST_P(TftSizeTest, HashStaysInRange)
{
    Tft tft(GetParam());
    // Mark wildly spread regions; lookup must never crash and the
    // matching region must hit right after its own mark.
    for (Addr r = 1; r < 1000000000; r *= 7) {
        tft.markRegion(r * kRegion);
        EXPECT_TRUE(tft.lookup(r * kRegion));
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TftSizeTest,
                         ::testing::Values(12u, 16u, 20u, 1u, 64u));

// ------------------------------------------------------------------
// Set-associative TFTs (the paper notes these are possible, §IV-A2).

TEST(TftAssoc, ConflictingRegionsCoexistWithTwoWays)
{
    // Regions 0 and 8 collide in a 16-entry direct-mapped table but
    // coexist in a 16-entry 2-way table (8 sets).
    Tft dm(16, 1), assoc(16, 2);
    dm.markRegion(0);
    dm.markRegion(16 * kRegion);
    EXPECT_FALSE(dm.lookup(0));

    assoc.markRegion(0);
    assoc.markRegion(8 * kRegion);
    EXPECT_TRUE(assoc.lookup(0));
    EXPECT_TRUE(assoc.lookup(8 * kRegion));
}

TEST(TftAssoc, LruReplacementWithinSet)
{
    Tft tft(16, 2); // 8 sets x 2 ways
    tft.markRegion(0);
    tft.markRegion(8 * kRegion);
    // Touch region 0 so region 8 becomes LRU.
    EXPECT_TRUE(tft.lookup(0));
    tft.markRegion(16 * kRegion);
    EXPECT_TRUE(tft.lookup(0));
    EXPECT_FALSE(tft.lookup(8 * kRegion));
    EXPECT_TRUE(tft.lookup(16 * kRegion));
}

TEST(TftAssoc, FullyAssociativeHoldsAnyMix)
{
    Tft tft(16, 16);
    for (Addr r = 0; r < 16; ++r)
        tft.markRegion(r * 16 * kRegion); // all would collide at DM
    EXPECT_EQ(tft.validCount(), 16u);
    for (Addr r = 0; r < 16; ++r)
        EXPECT_TRUE(tft.lookup(r * 16 * kRegion));
}

TEST(TftAssoc, StorageAccountsForLruBits)
{
    Tft dm(16, 1), w4(16, 4);
    EXPECT_GT(w4.storageBytes(), dm.storageBytes());
}

TEST(TftAssoc, InvalidateAndFlushWork)
{
    Tft tft(16, 4);
    tft.markRegion(3 * kRegion);
    EXPECT_TRUE(tft.invalidateRegion(3 * kRegion));
    EXPECT_FALSE(tft.lookup(3 * kRegion));
    tft.markRegion(5 * kRegion);
    tft.flush();
    EXPECT_EQ(tft.validCount(), 0u);
}

} // namespace
} // namespace seesaw
