/** @file Tests for the workload specs and the reference generator. */

#include <gtest/gtest.h>

#include <set>

#include "workload/reference_stream.hh"
#include "workload/workload_spec.hh"

namespace seesaw {
namespace {

TEST(WorkloadSpec, SixteenPaperWorkloads)
{
    const auto &w = paperWorkloads();
    EXPECT_EQ(w.size(), 16u);
    EXPECT_EQ(w.front().name, "astar");
    EXPECT_EQ(w.back().name, "mongo");
}

TEST(WorkloadSpec, CloudSubsetMatchesFig12)
{
    const auto &w = cloudWorkloads();
    ASSERT_EQ(w.size(), 8u);
    EXPECT_EQ(w[0].name, "olio");
    EXPECT_EQ(w[7].name, "mcf");
}

TEST(WorkloadSpec, FindByName)
{
    EXPECT_EQ(findWorkload("redis").name, "redis");
    EXPECT_GT(findWorkload("redis").footprintBytes, 0u);
}

TEST(WorkloadSpec, AllSpecsAreSane)
{
    for (const auto &w : paperWorkloads()) {
        EXPECT_FALSE(w.name.empty());
        EXPECT_GE(w.footprintBytes, 1ULL << 20) << w.name;
        EXPECT_LE(w.footprintBytes, 1ULL << 31) << w.name;
        EXPECT_GT(w.memRefFraction, 0.0) << w.name;
        EXPECT_LE(w.memRefFraction, 1.0) << w.name;
        EXPECT_GE(w.writeFraction, 0.0) << w.name;
        EXPECT_LE(w.writeFraction, 1.0) << w.name;
        EXPECT_LE(w.streamingFraction + w.pointerChaseFraction +
                      w.conflictFraction,
                  1.0)
            << w.name;
        EXPECT_GE(w.threads, 1u) << w.name;
        EXPECT_LE(w.hotSetBytes, w.footprintBytes) << w.name;
        EXPECT_GT(w.thpEligibleFraction, 0.5) << w.name;
    }
}

TEST(WorkloadSpec, MultithreadedWorkloadsShareData)
{
    for (const auto &w : paperWorkloads()) {
        if (w.multithreaded())
            EXPECT_GT(w.sharedFraction, 0.0) << w.name;
        else
            EXPECT_EQ(w.sharedFraction, 0.0) << w.name;
    }
}

TEST(ReferenceStream, AddressesStayInFootprint)
{
    const auto &spec = findWorkload("mcf");
    const Addr base = 1ULL << 40;
    ReferenceStream stream(spec, base, 7);
    for (int i = 0; i < 100000; ++i) {
        const MemRef ref = stream.next();
        EXPECT_GE(ref.va, base);
        EXPECT_LT(ref.va, base + spec.footprintBytes);
    }
}

TEST(ReferenceStream, DeterministicForEqualSeeds)
{
    const auto &spec = findWorkload("redis");
    ReferenceStream a(spec, 0x1000, 3), b(spec, 0x1000, 3);
    for (int i = 0; i < 10000; ++i) {
        const MemRef ra = a.next(), rb = b.next();
        EXPECT_EQ(ra.va, rb.va);
        EXPECT_EQ(ra.gap, rb.gap);
        EXPECT_EQ(ra.type, rb.type);
    }
}

TEST(ReferenceStream, WriteFractionApproximatelyMet)
{
    const auto &spec = findWorkload("gups"); // writeFraction 0.5
    ReferenceStream stream(spec, 0x1000, 11);
    int writes = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        writes += stream.next().type == AccessType::Write ? 1 : 0;
    EXPECT_NEAR(writes / static_cast<double>(n), spec.writeFraction,
                0.02);
}

TEST(ReferenceStream, MeanGapMatchesMemRefFraction)
{
    const auto &spec = findWorkload("astar");
    ReferenceStream stream(spec, 0x1000, 13);
    double total_gap = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        total_gap += stream.next().gap;
    const double mem_ref_fraction = n / (total_gap + n);
    EXPECT_NEAR(mem_ref_fraction, spec.memRefFraction, 0.03);
}

TEST(ReferenceStream, HotSetIsHot)
{
    // Most non-streaming, non-chase references must land in the hot
    // set; the footprint tail is cold.
    const auto &spec = findWorkload("omnet");
    ReferenceStream stream(spec, 0, 17);
    std::uint64_t hot = 0, n = 100000;
    for (std::uint64_t i = 0; i < n; ++i) {
        const MemRef ref = stream.next();
        if (ref.va < spec.hotSetBytes)
            ++hot;
    }
    const double expected_floor = 1.0 - spec.streamingFraction -
                                  spec.pointerChaseFraction -
                                  spec.conflictFraction - 0.05;
    EXPECT_GT(hot / static_cast<double>(n), expected_floor);
}

TEST(ReferenceStream, StreamingComponentSweepsSequentially)
{
    WorkloadSpec spec = findWorkload("cactus");
    spec.streamingFraction = 1.0;
    spec.pointerChaseFraction = 0.0;
    spec.conflictFraction = 0.0;
    spec.repeatFraction = 0.0;
    ReferenceStream stream(spec, 0, 19);
    Addr prev = stream.next().va;
    for (int i = 0; i < 1000; ++i) {
        const Addr cur = stream.next().va;
        // Line addresses advance by exactly one line each time.
        EXPECT_EQ((cur >> 6) - (prev >> 6), 1u);
        prev = cur;
    }
}

TEST(ReferenceStream, TouchesManyDistinctPages)
{
    const auto &spec = findWorkload("g500");
    ReferenceStream stream(spec, 0, 23);
    std::set<Addr> pages;
    for (int i = 0; i < 50000; ++i)
        pages.insert(stream.next().va >> 12);
    // A pointer-chasing graph workload touches many distinct pages.
    EXPECT_GT(pages.size(), 500u);
}

} // namespace
} // namespace seesaw
