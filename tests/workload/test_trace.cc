/** @file Tests for the binary trace writer/reader. */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "workload/trace.hh"

namespace seesaw {
namespace {

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Trace, RoundTripPreservesRecords)
{
    const std::string path = tempPath("roundtrip.trace");
    std::vector<MemRef> refs = {
        {0, 0x1000, AccessType::Read},
        {17, 0xdeadbeef40, AccessType::Write},
        {4096, 0xffffffffffff, AccessType::Read},
    };
    {
        TraceWriter writer(path);
        for (const auto &r : refs)
            writer.append(r);
        EXPECT_EQ(writer.records(), refs.size());
    }
    TraceReader reader(path);
    for (const auto &expected : refs) {
        auto got = reader.next();
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(got->gap, expected.gap);
        EXPECT_EQ(got->va, expected.va);
        EXPECT_EQ(got->type, expected.type);
    }
    EXPECT_FALSE(reader.next().has_value());
    std::remove(path.c_str());
}

TEST(Trace, EmptyTraceReadsNothing)
{
    const std::string path = tempPath("empty.trace");
    { TraceWriter writer(path); }
    TraceReader reader(path);
    EXPECT_FALSE(reader.next().has_value());
    std::remove(path.c_str());
}

TEST(Trace, GeneratedStreamRoundTrip)
{
    const std::string path = tempPath("stream.trace");
    const auto &spec = findWorkload("astar");
    {
        ReferenceStream stream(spec, 0x1000, 5);
        TraceWriter writer(path);
        for (int i = 0; i < 1000; ++i)
            writer.append(stream.next());
    }
    ReferenceStream stream(spec, 0x1000, 5);
    TraceReader reader(path);
    for (int i = 0; i < 1000; ++i) {
        auto rec = reader.next();
        ASSERT_TRUE(rec.has_value());
        const MemRef expected = stream.next();
        EXPECT_EQ(rec->va, expected.va);
        EXPECT_EQ(rec->gap, expected.gap);
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace seesaw
