/** @file Tests for the binary trace writer/reader. */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "workload/trace.hh"

namespace seesaw {
namespace {

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Trace, RoundTripPreservesRecords)
{
    const std::string path = tempPath("roundtrip.trace");
    std::vector<MemRef> refs = {
        {0, 0x1000, AccessType::Read},
        {17, 0xdeadbeef40, AccessType::Write},
        {4096, 0xffffffffffff, AccessType::Read},
    };
    {
        TraceWriter writer(path);
        for (const auto &r : refs)
            writer.append(r);
        EXPECT_EQ(writer.records(), refs.size());
    }
    TraceReader reader(path);
    for (const auto &expected : refs) {
        auto got = reader.next();
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(got->gap, expected.gap);
        EXPECT_EQ(got->va, expected.va);
        EXPECT_EQ(got->type, expected.type);
    }
    EXPECT_FALSE(reader.next().has_value());
    std::remove(path.c_str());
}

TEST(Trace, TruncatedTrailingRecordFailsLoudly)
{
    const std::string path = tempPath("truncated.trace");
    {
        TraceWriter writer(path);
        writer.append({0, 0x1000, AccessType::Read});
        writer.append({1, 0x2000, AccessType::Write});
    }
    // Cut the last record in half: 16B header + 2 records of 16B,
    // resized down to 40 bytes leaves 8 stray bytes.
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
#if defined(_WIN32)
    GTEST_SKIP() << "no ftruncate";
#else
    ASSERT_EQ(::ftruncate(fileno(f), 40), 0);
#endif
    std::fclose(f);

    TraceReader reader(path);
    ASSERT_TRUE(reader.next().has_value()); // record 0 is intact
    // The torn record must be a fatal error (exit 1), not a silent
    // end-of-trace that replays a shorter archive.
    EXPECT_EXIT(reader.next(), ::testing::ExitedWithCode(1),
                "truncated trace record");
    std::remove(path.c_str());
}

TEST(Trace, EmptyTraceReadsNothing)
{
    const std::string path = tempPath("empty.trace");
    { TraceWriter writer(path); }
    TraceReader reader(path);
    EXPECT_FALSE(reader.next().has_value());
    std::remove(path.c_str());
}

TEST(Trace, GeneratedStreamRoundTrip)
{
    const std::string path = tempPath("stream.trace");
    const auto &spec = findWorkload("astar");
    {
        ReferenceStream stream(spec, 0x1000, 5);
        TraceWriter writer(path);
        for (int i = 0; i < 1000; ++i)
            writer.append(stream.next());
    }
    ReferenceStream stream(spec, 0x1000, 5);
    TraceReader reader(path);
    for (int i = 0; i < 1000; ++i) {
        auto rec = reader.next();
        ASSERT_TRUE(rec.has_value());
        const MemRef expected = stream.next();
        EXPECT_EQ(rec->va, expected.va);
        EXPECT_EQ(rec->gap, expected.gap);
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace seesaw
