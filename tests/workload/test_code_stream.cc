/** @file Tests for the instruction-fetch stream (§V L1I extension). */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/code_stream.hh"

namespace seesaw {
namespace {

CodeStreamParams
params(std::uint64_t code_bytes = 4ULL << 20)
{
    CodeStreamParams p;
    p.codeBytes = code_bytes;
    return p;
}

TEST(CodeStream, AddressesStayInTextSegment)
{
    const Addr base = 2ULL << 40;
    CodeStream stream(params(), base, 7);
    for (int i = 0; i < 100000; ++i) {
        const Addr va = stream.nextFetchLine();
        EXPECT_GE(va, base);
        EXPECT_LT(va, base + (4ULL << 20));
        EXPECT_EQ(va % 64, 0u); // line aligned
    }
}

TEST(CodeStream, DeterministicForEqualSeeds)
{
    CodeStream a(params(), 0, 3), b(params(), 0, 3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_EQ(a.nextFetchLine(), b.nextFetchLine());
}

TEST(CodeStream, FetchRunsAreSequential)
{
    CodeStream stream(params(), 0, 11);
    Addr prev = stream.nextFetchLine();
    int sequential = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const Addr cur = stream.nextFetchLine();
        sequential += (cur == prev + 64) ? 1 : 0;
        prev = cur;
    }
    // Mean run length 12 implies ~90% of fetches continue the run.
    EXPECT_GT(sequential / static_cast<double>(n), 0.8);
}

TEST(CodeStream, HotTextIsClusteredAtTheFront)
{
    // Hot/cold-split layout: most fetches land in the front of the
    // text segment.
    CodeStream stream(params(16ULL << 20), 0, 13);
    std::uint64_t front = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (stream.nextFetchLine() < (2ULL << 20))
            ++front;
    }
    EXPECT_GT(front / static_cast<double>(n), 0.6);
}

TEST(CodeStream, LargeFootprintTouchesManyPages)
{
    CodeStream stream(params(32ULL << 20), 0, 17);
    std::set<Addr> pages;
    for (int i = 0; i < 200000; ++i)
        pages.insert(stream.nextFetchLine() >> 12);
    // A scale-out-sized text segment exercises hundreds of pages.
    EXPECT_GT(pages.size(), 200u);
}

TEST(CodeStream, TinyFootprintStillWorks)
{
    CodeStream stream(params(4096), 0, 19);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(stream.nextFetchLine(), 4096u);
}

} // namespace
} // namespace seesaw
