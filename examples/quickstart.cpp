/**
 * @file
 * Quickstart: simulate one workload on a baseline VIPT L1 and on
 * SEESAW, and print what the superpage-aware cache buys you.
 *
 *   $ ./build/examples/quickstart
 */

#include <cstdio>

#include "sim/experiment.hh"

int
main()
{
    using namespace seesaw;

    // 1. Pick a workload. The library ships statistical models of the
    //    paper's 16 workloads; `redis` is a superpage-friendly
    //    key-value store.
    const WorkloadSpec &workload = findWorkload("redis");

    // 2. Describe the system: a Sandybridge-like out-of-order core
    //    with a 32KB 8-way L1 at 1.33GHz, 4GB of physical memory and
    //    transparent huge pages enabled (all defaults).
    SystemConfig config;
    config.l1SizeBytes = 32 * 1024;
    config.l1Assoc = 8;
    config.freqGhz = 1.33;
    config.instructions = 1'000'000;

    // 3. Run both designs. compareBaselineVsSeesaw() holds everything
    //    fixed except the L1 organisation.
    const DesignComparison cmp =
        compareBaselineVsSeesaw(workload, config);

    std::printf("workload: %s (%.0f MB footprint)\n",
                workload.name.c_str(),
                workload.footprintBytes / 1048576.0);
    std::printf("superpage coverage:     %5.1f%% of footprint\n",
                100.0 * cmp.seesaw.superpageCoverage);
    std::printf("superpage references:   %5.1f%% of accesses\n",
                100.0 * cmp.seesaw.superpageRefFraction);
    std::printf("TFT hit rate:           %5.1f%%\n",
                100.0 * cmp.seesaw.tftHits /
                    static_cast<double>(cmp.seesaw.tftLookups));
    std::printf("\n%-22s %14s %14s\n", "", "baseline VIPT", "SEESAW");
    std::printf("%-22s %14llu %14llu\n", "cycles",
                static_cast<unsigned long long>(cmp.baseline.cycles),
                static_cast<unsigned long long>(cmp.seesaw.cycles));
    std::printf("%-22s %14.3f %14.3f\n", "IPC", cmp.baseline.ipc,
                cmp.seesaw.ipc);
    std::printf("%-22s %14.1f %14.1f\n", "mem energy (uJ)",
                cmp.baseline.energyTotalNj / 1000.0,
                cmp.seesaw.energyTotalNj / 1000.0);
    std::printf("\nSEESAW: %.1f%% faster, %.1f%% less memory-hierarchy "
                "energy.\n",
                cmp.runtimeImprovementPct, cmp.energySavedPct);
    return 0;
}
