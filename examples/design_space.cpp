/**
 * @file
 * Design-space exploration with the modelling API.
 *
 * A cache architect wants to grow the L1 beyond 32KB but VIPT forces
 * associativity up with size. This example uses the SramModel /
 * LatencyTable directly to chart the latency/energy wall, then runs
 * the simulator to compare candidate organisations — including SEESAW
 * partition widths (the §IV-A4 "4 ways per partition" choice) — on a
 * real workload.
 *
 * With --one-pass on, the candidate organisations share one trace
 * pass through MultiConfigEngine instead of re-simulating the
 * workload per configuration — same numbers, one front end:
 *
 *   $ ./build/examples/design_space
 *   $ ./build/examples/design_space --one-pass on
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "sim/experiment.hh"
#include "sim/multi_config_engine.hh"
#include "sim/report.hh"

int
main(int argc, char **argv)
{
    using namespace seesaw;

    bool one_pass = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--one-pass") == 0 && i + 1 < argc) {
            const std::string value = argv[++i];
            if (value != "on" && value != "off") {
                std::fprintf(stderr, "--one-pass wants on|off\n");
                return 1;
            }
            one_pass = value == "on";
        } else {
            std::fprintf(stderr,
                         "usage: design_space [--one-pass on|off]\n");
            return std::strcmp(argv[i], "--help") == 0 ? 0 : 1;
        }
    }

    printBanner("design_space", "Choosing an L1 organisation");

    // --- Step 1: the analytical wall. Why can't we just scale VIPT?
    LatencyTable latency;
    const SramModel &sram = latency.sram();
    std::printf("VIPT scaling wall (1.33GHz):\n");
    TableReporter wall({"cache", "assoc", "latency(ns)", "cycles",
                        "energy(nJ)"});
    for (auto [size, assoc] :
         {std::pair{32 * 1024, 8u}, std::pair{64 * 1024, 16u},
          std::pair{128 * 1024, 32u}, std::pair{256 * 1024, 64u}}) {
        wall.addRow({std::to_string(size / 1024) + "KB",
                     std::to_string(assoc),
                     TableReporter::fmt(
                         sram.accessLatencyNs(size, assoc), 2),
                     std::to_string(
                         latency.basePageCycles(size, assoc, 1.33)),
                     TableReporter::fmt(
                         sram.accessEnergyNj(size, assoc), 4)});
    }
    wall.print();

    // --- Step 2: candidate SEESAW partition widths for a 64KB L1.
    std::printf("\nSEESAW partition-width sweep (64KB 16-way, "
                "1.33GHz, redis):\n");
    WorkloadSpec w = findWorkload("redis");
    w.footprintBytes = 64ULL << 20;

    SystemConfig base_cfg;
    base_cfg.l1SizeBytes = 64 * 1024;
    base_cfg.l1Assoc = 16;
    base_cfg.freqGhz = 1.33;
    base_cfg.instructions = 400'000;
    base_cfg.l1Kind = L1Kind::ViptBaseline;

    // Candidates: the VIPT baseline plus three partition widths. All
    // four share the workload, seed and OS policy — exactly one front
    // end — so --one-pass on runs them as a single trace pass.
    const unsigned widths[] = {2, 4, 8};
    std::vector<SystemConfig> configs{base_cfg};
    for (const unsigned ways : widths) {
        SystemConfig cfg = base_cfg;
        cfg.l1Kind = L1Kind::Seesaw;
        cfg.partitionWays = ways;
        configs.push_back(cfg);
    }

    std::vector<RunResult> results;
    if (one_pass) {
        MultiConfigEngine engine(configs, w);
        results = engine.run();
    } else {
        for (const SystemConfig &cfg : configs)
            results.push_back(simulate(w, cfg));
    }
    const RunResult &base = results[0];

    TableReporter sweep({"partition", "fast-hit cycles", "speedup",
                         "energy saved", "hit rate"});
    for (std::size_t i = 0; i < std::size(widths); ++i) {
        const unsigned ways = widths[i];
        const RunResult &r = results[i + 1];
        sweep.addRow(
            {std::to_string(ways) + "-way",
             std::to_string(latency.superpageCycles(64 * 1024, 16,
                                                    ways, 1.33)),
             TableReporter::pct(runtimeImprovementPercent(base, r), 1),
             TableReporter::pct(energySavedPercent(base, r), 1),
             TableReporter::pct(100.0 * r.l1Hits /
                                    static_cast<double>(r.l1Accesses),
                                1)});
    }
    sweep.print();

    std::printf("\nNarrower partitions read fewer ways (less energy per "
                "superpage hit) but\nsacrifice associativity for the "
                "partition-local insertion policy; the paper's\n4-way "
                "partition is the balance point, matching §IV-A4.\n");
    return 0;
}
