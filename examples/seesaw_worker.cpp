/**
 * @file
 * One campaign-service worker process. Spawned by
 * `campaign --store DIR --workers N` (one per worker slot), but also
 * runnable by hand against any prepared queue — e.g. from another
 * machine sharing the store's filesystem:
 *
 *   $ ./build/examples/seesaw_worker --campaign smoke \
 *         --workloads redis,mcf --l1 32K --instructions 50000 \
 *         --store results/store --worker-id w7
 *
 * The grid options must match the driver's exactly: the worker
 * rebuilds the cell list from them and claims cells by index from
 * the store's lease queue. Exit status: 0 = queue drained (or cell
 * budget reached), 3 = stopped by SIGINT/SIGTERM, anything else =
 * error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "campaign_grid.hh"
#include "service/worker.hh"

int
main(int argc, char **argv)
{
    using namespace seesaw;

    grid::GridOptions gridOptions;
    service::WorkerOptions options;

    auto need_value = [&](int i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", argv[i]);
            std::exit(1);
        }
        return argv[i + 1];
    };

    for (int i = 1; i < argc; ++i) {
        if (gridOptions.parseArg(argc, argv, i))
            continue;
        const std::string arg = argv[i];
        if (arg == "--store") {
            options.storeDir = need_value(i++);
        } else if (arg == "--worker-id") {
            options.workerId = need_value(i++);
        } else if (arg == "--lease") {
            options.leaseSeconds = std::atof(need_value(i++));
        } else if (arg == "--max-cells") {
            options.maxCells = std::strtoull(need_value(i++), nullptr,
                                             10);
        } else if (arg == "--quiet") {
            options.progress = false;
        } else {
            std::fprintf(stderr,
                         "seesaw_worker: unknown option %s\n",
                         arg.c_str());
            return 1;
        }
    }
    if (options.storeDir.empty() || options.workerId.empty()) {
        std::fprintf(stderr,
                     "seesaw_worker: --store DIR and --worker-id ID "
                     "are required\n");
        return 1;
    }
    options.campaign = gridOptions.campaign;

    harness::installStopSignalHandlers();
    const harness::CampaignSpec spec = gridOptions.buildSpec();
    const service::WorkerReport report =
        service::runWorker(spec, options);

    // One machine-greppable summary line; tests assert these counters.
    std::printf("worker %s: ran=%zu skipped=%zu stopped=%d\n",
                options.workerId.c_str(), report.ran,
                report.skippedPresent, report.stopped ? 1 : 0);
    std::fflush(stdout);
    return report.stopped ? 3 : 0;
}
