/**
 * @file
 * Command-line campaign driver: describe a sweep (workloads × designs
 * × cache orgs × frequencies × memhog levels × seeds) on the command
 * line, execute every cell in parallel, print a summary table and
 * archive machine-readable results. The full paper reproduction
 * becomes one command:
 *
 *   $ ./build/examples/campaign --jobs 8
 *   $ ./build/examples/campaign --campaign smoke \
 *         --workloads redis,mcf --l1 32K --jobs 2 --instructions 50000
 *   $ SEESAW_JOBS=16 ./build/examples/campaign --designs vipt,seesaw,pipt
 *
 * Outputs results/<campaign>.json and results/<campaign>.csv
 * (SEESAW_RESULTS_DIR overrides the directory).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"

namespace {

using namespace seesaw;

void
usage()
{
    std::printf(
        "usage: campaign [options]\n"
        "  --campaign NAME     name for results/<NAME>.json|csv "
        "(default 'campaign')\n"
        "  --workloads a,b,..  subset of the 16 paper workloads "
        "(default all)\n"
        "  --designs a,b,..    vipt | pipt | sipt | seesaw | wp | "
        "wpseesaw\n"
        "                      (default vipt,seesaw)\n"
        "  --l1 a,b,..         32K | 64K | 128K (default all three)\n"
        "  --freq a,b,..       GHz list (default 1.33)\n"
        "  --memhog a,b,..     fragmentation fractions (default 0)\n"
        "  --seeds a,b,..      RNG seeds (default 1)\n"
        "  --instructions N    per-cell instruction budget, per core "
        "(default\n"
        "                      300000; SEESAW_INSTRUCTIONS also "
        "respected)\n"
        "  --mc-cells W:C:D,.. explicit multi-core cells appended to "
        "the grid,\n"
        "                      e.g. tunk:4:seesaw runs workload tunk "
        "on 4 cores\n"
        "                      with directory coherence (labelled "
        "tunk/c4/seesaw)\n"
        "  --jobs N            worker threads (default SEESAW_JOBS, "
        "else\n"
        "                      hardware_concurrency; 1 = serial)\n"
        "  --audit MODE        invariant audits: off | end | periodic "
        "|\n"
        "                      paranoid (default off; needs a "
        "-DSEESAW_AUDIT=ON build)\n"
        "  --audit-period N    events between periodic audits "
        "(default 65536)\n"
        "  --out DIR           results directory (default results/)\n"
        "  --list              print the expanded cells and exit\n"
        "  --quiet             suppress stderr progress\n");
}

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= arg.size()) {
        const auto comma = arg.find(',', start);
        const auto end =
            comma == std::string::npos ? arg.size() : comma;
        if (end > start)
            out.push_back(arg.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

L1Kind
parseDesign(const std::string &kind)
{
    if (kind == "vipt")
        return L1Kind::ViptBaseline;
    if (kind == "pipt")
        return L1Kind::Pipt;
    if (kind == "sipt")
        return L1Kind::Sipt;
    if (kind == "seesaw")
        return L1Kind::Seesaw;
    if (kind == "wp")
        return L1Kind::ViptWayPredicted;
    if (kind == "wpseesaw")
        return L1Kind::SeesawWayPredicted;
    std::fprintf(stderr, "unknown design %s\n", kind.c_str());
    std::exit(1);
}

seesaw::bench::CacheOrg
parseOrg(const std::string &size)
{
    for (const auto &org : seesaw::bench::kCacheOrgs) {
        if (size == org.label ||
            (size.size() > 1 && size.substr(0, size.size() - 1) ==
                                    std::string(org.label).substr(
                                        0, size.size() - 1)))
            return org;
    }
    std::fprintf(stderr, "unknown L1 size %s (use 32K|64K|128K)\n",
                 size.c_str());
    std::exit(1);
}

/** One --mc-cells entry: workload : core count : L1 design. */
struct McCellSpec
{
    std::string workload;
    unsigned cores = 0;
    L1Kind kind = L1Kind::ViptBaseline;
    std::string kindName;
};

McCellSpec
parseMcCell(const std::string &tok)
{
    const auto c1 = tok.find(':');
    const auto c2 =
        c1 == std::string::npos ? std::string::npos
                                : tok.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) {
        std::fprintf(stderr,
                     "--mc-cells wants WORKLOAD:CORES:DESIGN, got %s\n",
                     tok.c_str());
        std::exit(1);
    }
    McCellSpec mc;
    mc.workload = tok.substr(0, c1);
    mc.cores = static_cast<unsigned>(std::strtoul(
        tok.substr(c1 + 1, c2 - c1 - 1).c_str(), nullptr, 10));
    mc.kindName = tok.substr(c2 + 1);
    mc.kind = parseDesign(mc.kindName);
    if (mc.cores < 2) {
        std::fprintf(stderr,
                     "--mc-cells needs >= 2 cores (got %s); use the "
                     "regular grid for single-core cells\n",
                     tok.c_str());
        std::exit(1);
    }
    return mc;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace seesaw::bench;

    std::string campaign_name = "campaign";
    std::string out_dir;
    std::vector<std::string> workload_names;
    std::vector<L1Kind> designs{L1Kind::ViptBaseline, L1Kind::Seesaw};
    std::vector<CacheOrg> orgs(std::begin(kCacheOrgs),
                               std::end(kCacheOrgs));
    std::vector<double> freqs{1.33};
    std::vector<double> memhogs{0.0};
    std::vector<std::uint64_t> seeds{1};
    std::uint64_t instructions = experimentInstructions(300'000);
    std::vector<McCellSpec> mc_cells;
    harness::RunnerOptions options;
    bool list_only = false;
    check::AuditOptions audit;
    audit.mode = check::AuditMode::Off;

    auto need_value = [&](int i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", argv[i]);
            std::exit(1);
        }
        return argv[i + 1];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--campaign") {
            campaign_name = need_value(i++);
        } else if (arg == "--workloads") {
            workload_names = splitList(need_value(i++));
        } else if (arg == "--designs") {
            designs.clear();
            for (const auto &kind : splitList(need_value(i++)))
                designs.push_back(parseDesign(kind));
        } else if (arg == "--l1") {
            orgs.clear();
            for (const auto &size : splitList(need_value(i++)))
                orgs.push_back(parseOrg(size));
        } else if (arg == "--freq") {
            freqs.clear();
            for (const auto &f : splitList(need_value(i++)))
                freqs.push_back(std::atof(f.c_str()));
        } else if (arg == "--memhog") {
            memhogs.clear();
            for (const auto &f : splitList(need_value(i++)))
                memhogs.push_back(std::atof(f.c_str()));
        } else if (arg == "--seeds") {
            seeds.clear();
            for (const auto &s : splitList(need_value(i++)))
                seeds.push_back(
                    std::strtoull(s.c_str(), nullptr, 10));
        } else if (arg == "--instructions") {
            instructions =
                std::strtoull(need_value(i++), nullptr, 10);
        } else if (arg == "--mc-cells") {
            for (const auto &tok : splitList(need_value(i++)))
                mc_cells.push_back(parseMcCell(tok));
        } else if (arg == "--jobs") {
            options.jobs = std::atoi(need_value(i++));
        } else if (arg == "--audit") {
            audit.mode = check::parseAuditMode(need_value(i++));
        } else if (arg == "--audit-period") {
            audit.periodEvents =
                std::strtoull(need_value(i++), nullptr, 10);
        } else if (arg == "--out") {
            out_dir = need_value(i++);
        } else if (arg == "--list") {
            list_only = true;
        } else if (arg == "--quiet") {
            options.progress = false;
        } else {
            std::fprintf(stderr, "unknown option %s (try --help)\n",
                         arg.c_str());
            return 1;
        }
    }

    harness::CampaignSpec spec(campaign_name);
    if (workload_names.empty()) {
        spec.workloads(paperWorkloads());
    } else {
        for (const auto &name : workload_names)
            spec.workload(findWorkload(name));
    }
    for (const auto &org : orgs) {
        for (const double freq : freqs) {
            for (const double memhog : memhogs) {
                SystemConfig cfg = makeConfig(org, freq);
                cfg.instructions = instructions;
                cfg.memhogFraction = memhog;
                cfg.audit = audit;
                for (const L1Kind kind : designs) {
                    std::string label = std::string(org.label) + "/" +
                                        TableReporter::fmt(freq, 2) +
                                        "GHz";
                    if (memhogs.size() > 1 || memhog > 0.0) {
                        label += "/mh" + std::to_string(static_cast<int>(
                                             memhog * 100));
                    }
                    label += std::string("/") + designLabel(kind);
                    if (kind != L1Kind::ViptBaseline &&
                        kind != L1Kind::Seesaw) {
                        // designLabel only distinguishes the two
                        // paper designs; spell the rest out.
                        label = label.substr(0, label.rfind('/') + 1);
                        switch (kind) {
                          case L1Kind::Pipt: label += "pipt"; break;
                          case L1Kind::Sipt: label += "sipt"; break;
                          case L1Kind::ViptWayPredicted:
                            label += "wp";
                            break;
                          case L1Kind::SeesawWayPredicted:
                            label += "wpseesaw";
                            break;
                          default: break;
                        }
                    }
                    spec.variant(label, withDesign(cfg, kind));
                }
            }
        }
    }
    spec.seeds(seeds);

    // Explicit multi-core cells ride along after the single-core grid;
    // they run on the unified engine with directory coherence and the
    // 64KB/16-way organisation the multicore bench evaluates.
    for (const auto &mc : mc_cells) {
        const WorkloadSpec w = findWorkload(mc.workload);
        for (const std::uint64_t seed : seeds) {
            SystemConfig cfg;
            cfg.cores = mc.cores;
            cfg.l1Kind = mc.kind;
            cfg.l1SizeBytes = 64 * 1024;
            cfg.l1Assoc = 16;
            cfg.instructions = instructions;
            cfg.os.memBytes = experimentMemBytes(1ULL << 30);
            cfg.audit = audit;
            cfg.seed = seed;
            std::string name = mc.workload + "/c" +
                               std::to_string(mc.cores) + "/" +
                               mc.kindName;
            if (seeds.size() > 1)
                name += "/s" + std::to_string(seed);
            spec.cell(
                name, [cfg, w] { return SimEngine(cfg, w).run(); },
                seed, harness::configHash(cfg));
        }
    }

    const auto cells = spec.cells();
    if (list_only) {
        for (const auto &cell : cells)
            std::printf("%s\n", cell.name.c_str());
        std::printf("%zu cells\n", cells.size());
        return 0;
    }

    harness::CampaignRunner runner(options);
    std::fprintf(stderr, "[%s] %zu cells on %u worker%s\n",
                 campaign_name.c_str(), cells.size(),
                 runner.effectiveJobs(),
                 runner.effectiveJobs() == 1 ? "" : "s");
    const auto outcome = runner.runAndWrite(spec, out_dir);

    // Human-readable recap: one row per cell.
    TableReporter table({"cell", "ipc", "l1 mpki", "cover",
                         "energy uJ", "wall s"});
    for (const auto &cell : outcome.results) {
        table.addRow(
            {cell.name, TableReporter::fmt(cell.result.ipc, 3),
             TableReporter::fmt(cell.result.l1Mpki, 1),
             TableReporter::pct(100.0 * cell.result.superpageCoverage,
                                0),
             TableReporter::fmt(cell.result.energyTotalNj / 1000.0, 1),
             TableReporter::fmt(cell.wallSeconds, 2)});
    }
    table.print();
    std::printf("\n%zu cells in %.1fs on %u worker%s (git %s)\n",
                outcome.results.size(), outcome.meta.wallSeconds,
                outcome.meta.jobs, outcome.meta.jobs == 1 ? "" : "s",
                outcome.meta.gitDescribe.c_str());
    return 0;
}
