/**
 * @file
 * Command-line campaign driver: describe a sweep (workloads × designs
 * × cache orgs × frequencies × memhog levels × seeds) on the command
 * line, execute every cell in parallel, print a summary table and
 * archive machine-readable results. The full paper reproduction
 * becomes one command:
 *
 *   $ ./build/examples/campaign --jobs 8
 *   $ ./build/examples/campaign --campaign smoke \
 *         --workloads redis,mcf --l1 32K --jobs 2 --instructions 50000
 *   $ SEESAW_JOBS=16 ./build/examples/campaign --designs vipt,seesaw,pipt
 *
 * Outputs results/<campaign>.json and results/<campaign>.csv
 * (SEESAW_RESULTS_DIR overrides the directory).
 *
 * With --store DIR results additionally land in a durable result
 * store as each cell finishes, which makes the campaign resumable:
 *
 *   $ ./build/examples/campaign --store results/store --jobs 4
 *   ^C                                  # finish in-flight cells, exit
 *   $ ./build/examples/campaign --store results/store --jobs 4 --resume
 *                                       # only the missing cells run
 *
 * --workers N switches execution from threads to N seesaw_worker
 * processes coordinated through a lease queue inside the store; a
 * killed worker's cells are re-issued to the survivors.
 */

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "campaign_grid.hh"
#include "service/broker.hh"
#include "store/result_store.hh"
#include "store/store_sink.hh"

namespace {

using namespace seesaw;

void
usage()
{
    std::printf(
        "usage: campaign [options]\n"
        "  --campaign NAME     name for results/<NAME>.json|csv "
        "(default 'campaign')\n"
        "  --workloads a,b,..  subset of the 16 paper workloads "
        "(default all)\n"
        "  --designs a,b,..    vipt | pipt | sipt | seesaw | wp | "
        "wpseesaw\n"
        "                      (default vipt,seesaw)\n"
        "  --l1 a,b,..         32K | 64K | 128K (default all three)\n"
        "  --freq a,b,..       GHz list (default 1.33)\n"
        "  --memhog a,b,..     fragmentation fractions (default 0)\n"
        "  --seeds a,b,..      RNG seeds (default 1)\n"
        "  --replacement a,b,. lru | fifo | random | srrip "
        "(default lru)\n"
        "  --prefetch a,b,..   none | nextline | stride "
        "(default none)\n"
        "  --instructions N    per-cell instruction budget, per core "
        "(default\n"
        "                      300000; SEESAW_INSTRUCTIONS also "
        "respected)\n"
        "  --mc-cells W:C:D,.. explicit multi-core cells appended to "
        "the grid,\n"
        "                      e.g. tunk:4:seesaw runs workload tunk "
        "on 4 cores\n"
        "                      with directory coherence (labelled "
        "tunk/c4/seesaw)\n"
        "  --jobs N            worker threads (default SEESAW_JOBS, "
        "else\n"
        "                      hardware_concurrency; 1 = serial)\n"
        "  --one-pass on|off   batch cells sharing a front end "
        "(workload, seed,\n"
        "                      cores, OS policy) into single "
        "multi-config passes;\n"
        "                      results are bit-identical (default "
        "off; thread\n"
        "                      execution only — ignored under "
        "--workers)\n"
        "  --audit MODE        invariant audits: off | end | periodic "
        "|\n"
        "                      paranoid (default off; needs a "
        "-DSEESAW_AUDIT=ON build)\n"
        "  --audit-period N    events between periodic audits "
        "(default 65536)\n"
        "  --out DIR           results directory (default results/)\n"
        "  --store DIR         also record every finished cell in a "
        "durable\n"
        "                      result store (enables --resume)\n"
        "  --resume            skip cells whose (workload, config, "
        "seed) the\n"
        "                      store already holds\n"
        "  --workers N         run cells in N seesaw_worker processes "
        "over\n"
        "                      the store's lease queue (needs --store)\n"
        "  --lease SECONDS     lease expiry for dead-worker recovery "
        "(default 30)\n"
        "  --list              print the expanded cells and exit\n"
        "  --quiet             suppress stderr progress\n");
}

/** Directory of this executable (worker binary lives beside it). */
std::string
selfDirectory()
{
    char buf[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return ".";
    buf[n] = '\0';
    const std::string path(buf);
    const auto slash = path.rfind('/');
    return slash == std::string::npos ? "." : path.substr(0, slash);
}

void
printRecap(const harness::CampaignOutcome &outcome)
{
    TableReporter table({"cell", "ipc", "l1 mpki", "cover",
                         "energy uJ", "wall s"});
    for (const auto &cell : outcome.results) {
        table.addRow(
            {cell.name, TableReporter::fmt(cell.result.ipc, 3),
             TableReporter::fmt(cell.result.l1Mpki, 1),
             TableReporter::pct(100.0 * cell.result.superpageCoverage,
                                0),
             TableReporter::fmt(cell.result.energyTotalNj / 1000.0, 1),
             TableReporter::fmt(cell.wallSeconds, 2)});
    }
    table.print();
}

} // namespace

int
main(int argc, char **argv)
{
    grid::GridOptions gridOptions;
    harness::RunnerOptions options;
    std::string out_dir;
    std::string store_dir;
    unsigned workers = 0;
    double lease_seconds = 30.0;
    bool resume = false;
    bool list_only = false;

    auto need_value = [&](int i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", argv[i]);
            std::exit(1);
        }
        return argv[i + 1];
    };

    for (int i = 1; i < argc; ++i) {
        if (gridOptions.parseArg(argc, argv, i))
            continue;
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--jobs") {
            options.jobs = std::atoi(need_value(i++));
        } else if (arg == "--one-pass") {
            options.onePass =
                bench::parseOnOff("--one-pass", need_value(i++));
        } else if (arg == "--out") {
            out_dir = need_value(i++);
        } else if (arg == "--store") {
            store_dir = need_value(i++);
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg == "--workers") {
            workers = std::atoi(need_value(i++));
        } else if (arg == "--lease") {
            lease_seconds = std::atof(need_value(i++));
        } else if (arg == "--list") {
            list_only = true;
        } else if (arg == "--quiet") {
            options.progress = false;
        } else {
            std::fprintf(stderr, "unknown option %s (try --help)\n",
                         arg.c_str());
            return 1;
        }
    }
    if ((resume || workers > 0) && store_dir.empty()) {
        std::fprintf(stderr,
                     "--resume/--workers need --store DIR\n");
        return 1;
    }
    if (options.onePass && workers > 0) {
        // The lease queue hands cells to worker processes one at a
        // time; grouping happens inside a single runner only.
        std::fprintf(stderr,
                     "note: --one-pass applies to thread execution; "
                     "worker processes run cells individually\n");
    }

    const harness::CampaignSpec spec = gridOptions.buildSpec();
    const std::string campaign_name = spec.name();
    const auto cells = spec.cells();
    if (list_only) {
        for (const auto &cell : cells)
            std::printf("%s\n", cell.name.c_str());
        std::printf("%zu cells\n", cells.size());
        return 0;
    }

    harness::installStopSignalHandlers();
    harness::CampaignRunner runner(options);
    harness::CampaignOutcome outcome;
    int rc = 0;

    if (store_dir.empty()) {
        // Classic one-shot path: threads + JSON/CSV sinks only.
        std::fprintf(stderr, "[%s] %zu cells on %u worker%s\n",
                     campaign_name.c_str(), cells.size(),
                     runner.effectiveJobs(),
                     runner.effectiveJobs() == 1 ? "" : "s");
        outcome = runner.runAndWrite(spec, out_dir);
        rc = outcome.interrupted ? 130 : 0;
    } else if (workers == 0) {
        // Store-backed threads: skip cells the store already holds
        // (--resume), run the rest, upserting as each cell finishes.
        std::size_t skipped = 0;
        std::vector<harness::Cell> toRun;
        if (resume) {
            store::StoreSnapshot snapshot;
            if (std::string error = store::initStore(store_dir);
                error.empty())
                error = store::loadStore(store_dir, snapshot);
            else {
                std::fprintf(stderr, "campaign: %s\n", error.c_str());
                return 1;
            }
            for (const auto &cell : cells) {
                if (snapshot.contains(store::keyOf(cell)))
                    ++skipped;
                else
                    toRun.push_back(cell);
            }
        } else {
            toRun = cells;
        }

        harness::CampaignMetadata meta;
        meta.campaign = campaign_name;
        meta.gitDescribe = harness::gitDescribe();
        meta.jobs = runner.effectiveJobs();
        store::StoreSink sink(store_dir, meta, "driver");
        options.onCellDone = sink.hook();
        harness::CampaignRunner storeRunner(options);

        std::fprintf(stderr,
                     "[%s] %zu cells (%zu already in store) on %u "
                     "thread%s\n",
                     campaign_name.c_str(), toRun.size(), skipped,
                     storeRunner.effectiveJobs(),
                     storeRunner.effectiveJobs() == 1 ? "" : "s");
        const auto partial =
            storeRunner.runCells(campaign_name, toRun);

        // The sinks and recap come from the store so they cover both
        // freshly-run and previously-stored cells.
        if (std::string error = service::collectOutcome(
                store_dir, campaign_name, cells, outcome);
            !error.empty()) {
            std::fprintf(stderr, "campaign: %s\n", error.c_str());
            return 1;
        }
        outcome.meta.jobs = meta.jobs;
        outcome.meta.wallSeconds = partial.meta.wallSeconds;
        writeCampaignSinks(outcome.meta, outcome.results, out_dir);
        if (partial.interrupted) {
            std::fprintf(stderr,
                         "[%s] interrupted after %zu/%zu cells; "
                         "rerun with --resume to finish\n",
                         campaign_name.c_str(),
                         partial.results.size() + skipped,
                         cells.size());
            rc = 130;
        }
    } else {
        // Process path: a lease queue inside the store feeds N
        // seesaw_worker processes; kill any of them (or this broker)
        // and a later --resume converges on the same store.
        service::PreparedQueue queue;
        if (std::string error =
                service::prepareQueue(store_dir, campaign_name, cells,
                                      resume, queue);
            !error.empty()) {
            std::fprintf(stderr, "campaign: %s\n", error.c_str());
            return 1;
        }
        std::fprintf(stderr,
                     "[%s] %zu cells (%zu already in store) on %u "
                     "worker process%s\n",
                     campaign_name.c_str(), queue.total - queue.preDone,
                     queue.preDone, workers,
                     workers == 1 ? "" : "es");

        service::WorkerProcessOptions processes;
        const char *env = std::getenv("SEESAW_WORKER_BIN");
        processes.workerBinary = env != nullptr && *env != '\0'
                                     ? env
                                     : selfDirectory() +
                                           "/seesaw_worker";
        processes.workers = workers;
        processes.progress = options.progress;
        processes.args = gridOptions.toArgs();
        processes.args.insert(processes.args.end(),
                              {"--store", store_dir, "--lease",
                               std::to_string(lease_seconds)});
        if (!options.progress)
            processes.args.push_back("--quiet");
        rc = service::runWorkerProcesses(processes);

        if (std::string error = service::collectOutcome(
                store_dir, campaign_name, cells, outcome);
            !error.empty()) {
            std::fprintf(stderr, "campaign: %s\n", error.c_str());
            return 1;
        }
        outcome.meta.jobs = workers;
        writeCampaignSinks(outcome.meta, outcome.results, out_dir);
        if (outcome.interrupted) {
            std::fprintf(stderr,
                         "[%s] interrupted after %zu/%zu cells; "
                         "rerun with --resume to finish\n",
                         campaign_name.c_str(),
                         outcome.results.size(), cells.size());
            if (rc == 0)
                rc = 130;
        }
    }

    printRecap(outcome);
    std::printf("\n%zu/%zu cells in %.1fs on %u worker%s (git %s)\n",
                outcome.results.size(), cells.size(),
                outcome.meta.wallSeconds, outcome.meta.jobs,
                outcome.meta.jobs == 1 ? "" : "s",
                outcome.meta.gitDescribe.c_str());
    return rc;
}
