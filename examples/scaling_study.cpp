/**
 * @file
 * Multi-core scaling study using the MultiCoreSystem API.
 *
 * Runs a shared-heap multi-threaded workload across 1-16 cores with
 * exact MOESI directory coherence and shows how SEESAW's two benefit
 * sources scale in opposite directions: the CPU-side fast-path saving
 * is per-access (flat with cores), while the coherence saving grows
 * with the probe traffic that sharing generates.
 *
 *   $ ./build/examples/scaling_study
 */

#include <cstdio>

#include "sim/multicore.hh"
#include "sim/report.hh"

int
main()
{
    using namespace seesaw;

    printBanner("scaling_study",
                "SEESAW benefit sources vs core count (tunkrank, "
                "64KB L1s, exact MOESI directory)");

    const WorkloadSpec &w = findWorkload("tunk");

    TableReporter table({"cores", "agg IPC", "probes/kinstr",
                         "probe hitrate", "CPU-side saved(uJ)",
                         "coherence saved(uJ)", "coherence share"});

    for (unsigned cores : {1u, 2u, 4u, 8u, 16u}) {
        MultiCoreConfig cfg;
        cfg.cores = cores;
        cfg.l1SizeBytes = 64 * 1024;
        cfg.l1Assoc = 16;
        cfg.instructionsPerCore = 80'000;
        cfg.warmupInstructionsPerCore = 40'000;
        cfg.seed = 3;

        cfg.l1Kind = L1Kind::ViptBaseline;
        const MultiRunResult base = MultiCoreSystem(cfg, w).run();
        cfg.l1Kind = L1Kind::Seesaw;
        const MultiRunResult see = MultiCoreSystem(cfg, w).run();

        const double cpu_saved =
            (base.l1CpuDynamicNj - see.l1CpuDynamicNj) / 1000.0;
        const double coh_saved = (base.l1CoherenceDynamicNj -
                                  see.l1CoherenceDynamicNj) /
                                 1000.0;
        const double kinstr = see.instructions / 1000.0;
        table.addRow(
            {std::to_string(cores),
             TableReporter::fmt(see.aggregateIpc, 2),
             TableReporter::fmt(see.probes / kinstr, 1),
             see.probes ? TableReporter::pct(
                              100.0 * see.probeHits / see.probes, 1)
                        : std::string("-"),
             TableReporter::fmt(cpu_saved, 1),
             TableReporter::fmt(coh_saved, 1),
             TableReporter::pct(100.0 * coh_saved /
                                    (coh_saved + cpu_saved),
                                1)});
    }
    table.print();

    std::printf(
        "\nReading the table: per-instruction CPU-side savings are "
        "flat in core count; probe\ntraffic — and with it the "
        "coherence-side savings SEESAW's 4-way probes unlock —\ngrows "
        "superlinearly as more threads share the hot set. This is the "
        "dynamic behind\nFig 11 and the paper's observation that "
        "coherence savings matter even for\nsingle-threaded workloads "
        "once system activity is included.\n");
    return 0;
}
