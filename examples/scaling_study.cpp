/**
 * @file
 * Multi-core scaling study on the unified SimEngine.
 *
 * Runs a shared-heap multi-threaded workload across a list of core
 * counts with exact coherence and shows how SEESAW's two benefit
 * sources scale in opposite directions: the CPU-side fast-path saving
 * is per-access (flat with cores), while the coherence saving grows
 * with the probe traffic that sharing generates.
 *
 *   $ ./build/examples/scaling_study
 *   $ ./build/examples/scaling_study --cores 1,2,4,8,16
 *   $ ./build/examples/scaling_study --cores 4 --l1 wpseesaw \
 *         --fabric snoopy
 *
 * --l1 picks the design compared against the VIPT baseline; --fabric
 * picks the coherence fabric (directory, snoopy, none).
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sim/report.hh"
#include "sim/sim_engine.hh"

namespace {

using namespace seesaw;

bool
parseDesign(const std::string &name, L1Kind &out)
{
    if (name == "vipt") out = L1Kind::ViptBaseline;
    else if (name == "pipt") out = L1Kind::Pipt;
    else if (name == "seesaw") out = L1Kind::Seesaw;
    else if (name == "wp") out = L1Kind::ViptWayPredicted;
    else if (name == "wpseesaw") out = L1Kind::SeesawWayPredicted;
    else if (name == "sipt") out = L1Kind::Sipt;
    else return false;
    return true;
}

bool
parseFabric(const std::string &name, CoherenceKind &out)
{
    if (name == "directory") out = CoherenceKind::Directory;
    else if (name == "snoopy") out = CoherenceKind::Snoopy;
    else if (name == "none") out = CoherenceKind::None;
    else return false;
    return true;
}

std::vector<unsigned>
parseCores(const std::string &list)
{
    std::vector<unsigned> cores;
    std::size_t pos = 0;
    while (pos < list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string tok =
            list.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        cores.push_back(
            static_cast<unsigned>(std::stoul(tok)));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return cores;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace seesaw;

    std::vector<unsigned> core_counts = {1, 2, 4, 8, 16};
    L1Kind design = L1Kind::Seesaw;
    CoherenceKind fabric = CoherenceKind::Directory;
    std::string design_name = "seesaw";
    std::string fabric_name = "directory";
    std::string workload_name = "tunk";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--cores") {
            core_counts = parseCores(value());
        } else if (arg == "--l1") {
            design_name = value();
            if (!parseDesign(design_name, design)) {
                std::fprintf(stderr, "unknown --l1 design '%s'\n",
                             design_name.c_str());
                return 2;
            }
        } else if (arg == "--fabric") {
            fabric_name = value();
            if (!parseFabric(fabric_name, fabric)) {
                std::fprintf(stderr, "unknown --fabric '%s'\n",
                             fabric_name.c_str());
                return 2;
            }
        } else if (arg == "--workload") {
            workload_name = value();
        } else {
            std::fprintf(
                stderr,
                "usage: scaling_study [--cores N,N,...] "
                "[--l1 vipt|pipt|seesaw|wp|wpseesaw|sipt] "
                "[--fabric directory|snoopy|none] "
                "[--workload NAME]\n");
            return arg == "--help" || arg == "-h" ? 0 : 2;
        }
    }

    printBanner("scaling_study",
                std::string("SEESAW benefit sources vs core count (") +
                    workload_name + ", 64KB L1s, " + fabric_name +
                    " fabric, design " + design_name + ")");

    const WorkloadSpec &w = findWorkload(workload_name);

    TableReporter table({"cores", "agg IPC", "probes/kinstr",
                         "probe hitrate", "CPU-side saved(uJ)",
                         "coherence saved(uJ)", "coherence share"});

    for (unsigned cores : core_counts) {
        SystemConfig cfg;
        cfg.cores = cores;
        cfg.fabric = fabric;
        cfg.l1SizeBytes = 64 * 1024;
        cfg.l1Assoc = 16;
        cfg.instructions = 80'000;
        cfg.warmupInstructions = 40'000;
        cfg.seed = 3;

        cfg.l1Kind = L1Kind::ViptBaseline;
        const RunResult base = SimEngine(cfg, w).run();
        cfg.l1Kind = design;
        const RunResult see = SimEngine(cfg, w).run();

        const double cpu_saved =
            (base.l1CpuDynamicNj - see.l1CpuDynamicNj) / 1000.0;
        const double coh_saved = (base.l1CoherenceDynamicNj -
                                  see.l1CoherenceDynamicNj) /
                                 1000.0;
        const double kinstr = see.instructions / 1000.0;
        const double saved_total = coh_saved + cpu_saved;
        table.addRow(
            {std::to_string(cores), TableReporter::fmt(see.ipc, 2),
             TableReporter::fmt(see.probes / kinstr, 1),
             see.probes ? TableReporter::pct(
                              100.0 * see.probeHits / see.probes, 1)
                        : std::string("-"),
             TableReporter::fmt(cpu_saved, 1),
             TableReporter::fmt(coh_saved, 1),
             saved_total != 0.0
                 ? TableReporter::pct(
                       100.0 * coh_saved / saved_total, 1)
                 : std::string("-")});
    }
    table.print();

    std::printf(
        "\nReading the table: per-instruction CPU-side savings are "
        "flat in core count; probe\ntraffic — and with it the "
        "coherence-side savings SEESAW's 4-way probes unlock —\ngrows "
        "superlinearly as more threads share the hot set. This is the "
        "dynamic behind\nFig 11 and the paper's observation that "
        "coherence savings matter even for\nsingle-threaded workloads "
        "once system activity is included.\n");
    return 0;
}
