/**
 * @file
 * Low-level API example: capture a reference trace to disk (the same
 * binary format an external Pin-style tool could produce), then
 * replay it through hand-wired components — OS memory manager, TLB
 * hierarchy, TFT-linked SEESAW cache — instead of the System harness.
 *
 * This is the integration path for users who have their own traces.
 *
 *   $ ./build/examples/trace_replay
 */

#include <cstdio>
#include <string>

#include "core/seesaw_cache.hh"
#include "mem/os_memory_manager.hh"
#include "tlb/tlb_hierarchy.hh"
#include "workload/trace.hh"

int
main()
{
    using namespace seesaw;

    const std::string path = "/tmp/seesaw_example.trace";
    const Addr heap = Addr{1} << 40;

    // --- 1. Capture: write 200K references of a generated workload.
    WorkloadSpec spec = findWorkload("mcf");
    spec.footprintBytes = 16ULL << 20;
    {
        ReferenceStream stream(spec, heap, /*seed=*/7);
        TraceWriter writer(path);
        for (int i = 0; i < 200'000; ++i)
            writer.append(stream.next());
        std::printf("captured %llu records to %s\n",
                    static_cast<unsigned long long>(writer.records()),
                    path.c_str());
    }

    // --- 2. Wire up the components by hand.
    OsMemoryManager os;
    const Asid asid = os.createProcess();
    os.mapAnonymous(asid, heap, spec.footprintBytes,
                    spec.thpEligibleFraction);

    TlbHierarchy tlb(TlbHierarchyParams::sandybridge(),
                     os.pageTable());
    LatencyTable latency;
    SeesawConfig cache_cfg; // 32KB, 8-way, 2 partitions, 16-entry TFT
    SeesawCache cache(cache_cfg, latency);

    // The TFT learns superpage regions from 2MB L1 TLB fills (Fig 5).
    tlb.setOn2MBFill([&cache](Asid, Addr va_base) {
        cache.tft().markRegion(va_base);
    });

    // --- 3. Replay.
    TraceReader reader(path);
    std::uint64_t refs = 0, hits = 0, fast = 0, cycles = 0;
    while (auto ref = reader.next()) {
        const TlbLookupResult tr = tlb.lookup(asid, ref->va);
        if (tr.fault) {
            std::fprintf(stderr, "unmapped address in trace\n");
            return 1;
        }
        const Addr pa = tr.translation.translate(ref->va);
        const L1AccessResult res = cache.access(
            {ref->va, pa, tr.translation.size, ref->type});
        ++refs;
        hits += res.hit ? 1 : 0;
        fast += res.fastPath ? 1 : 0;
        cycles += res.latencyCycles + tr.penaltyCycles;
    }

    std::printf("replayed  %llu references\n",
                static_cast<unsigned long long>(refs));
    std::printf("L1 hits   %5.1f%%\n", 100.0 * hits / refs);
    std::printf("fast path %5.1f%% (TFT-confirmed superpage lookups)\n",
                100.0 * fast / refs);
    std::printf("avg L1+TLB latency %.2f cycles\n",
                static_cast<double>(cycles) / refs);
    std::printf("TFT: %llu lookups, %.1f%% hit rate, %u/%u entries "
                "valid\n",
                static_cast<unsigned long long>(
                    cache.tft().stats().get("lookups")),
                100.0 * cache.tft().stats().get("hits") /
                    cache.tft().stats().get("lookups"),
                cache.tft().validCount(), cache.tft().entries());

    std::remove(path.c_str());
    return 0;
}
