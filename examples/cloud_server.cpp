/**
 * @file
 * Scenario example: a long-uptime cloud server.
 *
 * Models the situation the paper's introduction motivates: a server
 * that has been up for months, with memory fragmented by co-running
 * jobs (memhog), running memory-hungry cloud services (redis, mongo,
 * olio, tunkrank). Shows how the OS's compaction keeps superpages
 * available, and how SEESAW's benefit tracks the superpage supply —
 * including the effect of runtime promotion and splintering churn.
 *
 *   $ ./build/examples/cloud_server
 */

#include <cstdio>

#include "sim/experiment.hh"
#include "sim/report.hh"

int
main()
{
    using namespace seesaw;

    printBanner("cloud_server",
                "SEESAW on a fragmented, long-uptime server");

    const char *services[] = {"redis", "mongo", "olio", "tunk"};
    const double fragmentation[] = {0.0, 0.3, 0.6, 0.8};

    TableReporter table({"service", "memhog", "coverage",
                         "promotions", "splinters", "speedup",
                         "energy saved"});

    for (const char *service : services) {
        const WorkloadSpec &w = findWorkload(service);
        for (double frag : fragmentation) {
            SystemConfig cfg;
            cfg.l1SizeBytes = 64 * 1024;
            cfg.l1Assoc = 16;
            cfg.freqGhz = 1.33;
            cfg.instructions = 400'000;
            cfg.memhogFraction = frag;
            // Exercise the OS churn paths: frequent khugepaged passes
            // and occasional splinters (mprotect on a sub-range).
            cfg.promotionInterval = 100'000;
            cfg.splinterInterval = 150'000;

            const DesignComparison cmp =
                compareBaselineVsSeesaw(w, cfg);
            table.addRow(
                {service,
                 std::to_string(static_cast<int>(frag * 100)) + "%",
                 TableReporter::pct(
                     100.0 * cmp.seesaw.superpageCoverage, 0),
                 std::to_string(cmp.seesaw.promotions),
                 std::to_string(cmp.seesaw.splinters),
                 TableReporter::pct(cmp.runtimeImprovementPct, 1),
                 TableReporter::pct(cmp.energySavedPct, 1)});
        }
    }
    table.print();

    std::printf(
        "\nReading the table: coverage is what the OS could allocate "
        "as 2MB pages after fragmentation;\nSEESAW's speedup and "
        "energy savings follow the superpage supply, and remain "
        "positive\neven when memhog holds most of memory — the OS "
        "compacts and re-promotes in the background.\n");
    return 0;
}
