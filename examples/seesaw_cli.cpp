/**
 * @file
 * Command-line driver for the simulator: pick a workload (or a trace
 * file), a cache design and a system configuration, run it, and print
 * a full report. The scripting-friendly way to explore the design
 * space without writing C++.
 *
 *   $ ./build/examples/seesaw_cli --workload redis --design seesaw \
 *         --l1 64K --assoc 16 --freq 1.33 --memhog 0.3
 *   $ ./build/examples/seesaw_cli --list
 *   $ ./build/examples/seesaw_cli --help
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/experiment.hh"
#include "sim/report.hh"

namespace {

using namespace seesaw;

void
usage()
{
    std::printf(
        "usage: seesaw_cli [options]\n"
        "  --workload NAME     one of the 16 paper workloads "
        "(default redis)\n"
        "  --trace PATH        replay a binary trace instead of the\n"
        "                      synthetic stream (workload still sets\n"
        "                      probe/THP parameters)\n"
        "  --design KIND       vipt | pipt | sipt | seesaw | wp |\n"
        "                      wpseesaw\n"
        "                      (default seesaw)\n"
        "  --l1 SIZE           32K | 64K | 128K (default 32K)\n"
        "  --assoc N           L1 ways (default matches --l1: 8/16/32)\n"
        "  --freq GHZ          1.33 | 2.80 | 4.00 (default 1.33)\n"
        "  --core KIND         ooo | inorder (default ooo)\n"
        "  --memhog FRAC       fragment FRAC of memory first "
        "(default 0)\n"
        "  --fabric KIND       directory | snoopy (default directory)\n"
        "  --policy KIND       4way | 4way8way (default 4way)\n"
        "  --replacement KIND  lru | fifo | random | srrip "
        "(default lru)\n"
        "  --prefetch KIND     none | nextline | stride "
        "(default none)\n"
        "  --tft N[:A]         TFT entries and associativity "
        "(default 16:1)\n"
        "  --unified-tlb [N]   fully-associative unified L1 TLB\n"
        "  --icache            also model a SEESAW/VIPT L1I\n"
        "  --instructions N    instruction budget (default 1000000)\n"
        "  --seed N            RNG seed (default 1)\n"
        "  --audit MODE        invariant audits: off | end | periodic "
        "|\n"
        "                      paranoid (default end; needs a\n"
        "                      -DSEESAW_AUDIT=ON build)\n"
        "  --audit-period N    events between periodic audits\n"
        "                      (default 65536)\n"
        "  --baseline          also run baseline VIPT and report the\n"
        "                      improvement\n"
        "  --list              list workloads and exit\n");
}

void
report(const char *label, const RunResult &r)
{
    std::printf("\n[%s]\n", label);
    std::printf("  instructions      %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("  cycles            %llu (IPC %.3f)\n",
                static_cast<unsigned long long>(r.cycles), r.ipc);
    std::printf("  L1D               %llu accesses, %.2f%% hits, "
                "MPKI %.1f\n",
                static_cast<unsigned long long>(r.l1Accesses),
                100.0 * r.l1Hits / std::max<std::uint64_t>(1,
                                                           r.l1Accesses),
                r.l1Mpki);
    if (r.l1iAccesses) {
        std::printf("  L1I               %llu accesses, %.2f%% hits\n",
                    static_cast<unsigned long long>(r.l1iAccesses),
                    100.0 * (r.l1iAccesses - r.l1iMisses) /
                        r.l1iAccesses);
    }
    if (r.tftLookups) {
        std::printf("  TFT               %.2f%% hit rate; superpage "
                    "refs %.1f%% of accesses\n",
                    100.0 * r.tftHits / r.tftLookups,
                    100.0 * r.superpageRefFraction);
    }
    std::printf("  superpage cover   %.1f%% of footprint\n",
                100.0 * r.superpageCoverage);
    std::printf("  outer hierarchy   L2 %llu / LLC %llu / DRAM %llu "
                "accesses\n",
                static_cast<unsigned long long>(r.l2Accesses),
                static_cast<unsigned long long>(r.llcAccesses),
                static_cast<unsigned long long>(r.dramAccesses));
    std::printf("  coherence         %llu probes (%llu hits)\n",
                static_cast<unsigned long long>(r.probes),
                static_cast<unsigned long long>(r.probeHits));
    std::printf("  energy            %.1f uJ total  [L1 cpu %.1f, "
                "L1 coherence %.1f, leak %.1f, outer %.1f, "
                "translation %.1f]\n",
                r.energyTotalNj / 1000.0, r.l1CpuDynamicNj / 1000.0,
                r.l1CoherenceDynamicNj / 1000.0,
                r.l1LeakageNj / 1000.0, r.outerNj / 1000.0,
                r.translationNj / 1000.0);
    std::printf("  OS events         %llu promotions, %llu splinters, "
                "%llu faults\n",
                static_cast<unsigned long long>(r.promotions),
                static_cast<unsigned long long>(r.splinters),
                static_cast<unsigned long long>(r.pageFaults));
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload_name = "redis";
    SystemConfig cfg;
    cfg.instructions = 1'000'000;
    bool run_baseline = false;
    bool explicit_assoc = false;

    auto need_value = [&](int i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", argv[i]);
            std::exit(1);
        }
        return argv[i + 1];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list") {
            for (const auto &w : paperWorkloads()) {
                std::printf("%-8s %4lluMB footprint, %u thread%s\n",
                            w.name.c_str(),
                            static_cast<unsigned long long>(
                                w.footprintBytes >> 20),
                            w.threads, w.threads > 1 ? "s" : "");
            }
            return 0;
        } else if (arg == "--workload") {
            workload_name = need_value(i++);
        } else if (arg == "--trace") {
            cfg.tracePath = need_value(i++);
        } else if (arg == "--design") {
            const std::string kind = need_value(i++);
            if (kind == "vipt")
                cfg.l1Kind = L1Kind::ViptBaseline;
            else if (kind == "pipt")
                cfg.l1Kind = L1Kind::Pipt;
            else if (kind == "sipt")
                cfg.l1Kind = L1Kind::Sipt;
            else if (kind == "seesaw")
                cfg.l1Kind = L1Kind::Seesaw;
            else if (kind == "wp")
                cfg.l1Kind = L1Kind::ViptWayPredicted;
            else if (kind == "wpseesaw")
                cfg.l1Kind = L1Kind::SeesawWayPredicted;
            else {
                std::fprintf(stderr, "unknown design %s\n",
                             kind.c_str());
                return 1;
            }
        } else if (arg == "--l1") {
            const std::string size = need_value(i++);
            if (size == "32K" || size == "32k")
                cfg.l1SizeBytes = 32 * 1024;
            else if (size == "64K" || size == "64k")
                cfg.l1SizeBytes = 64 * 1024;
            else if (size == "128K" || size == "128k")
                cfg.l1SizeBytes = 128 * 1024;
            else {
                std::fprintf(stderr, "unknown L1 size %s\n",
                             size.c_str());
                return 1;
            }
        } else if (arg == "--assoc") {
            cfg.l1Assoc = std::atoi(need_value(i++));
            explicit_assoc = true;
        } else if (arg == "--freq") {
            cfg.freqGhz = std::atof(need_value(i++));
        } else if (arg == "--core") {
            const std::string kind = need_value(i++);
            cfg.coreKind = kind == "inorder" ? CoreKind::InOrder
                                             : CoreKind::OutOfOrder;
        } else if (arg == "--memhog") {
            cfg.memhogFraction = std::atof(need_value(i++));
        } else if (arg == "--fabric") {
            const std::string kind = need_value(i++);
            cfg.fabric = kind == "snoopy" ? CoherenceKind::Snoopy
                                          : CoherenceKind::Directory;
        } else if (arg == "--policy") {
            const std::string kind = need_value(i++);
            cfg.policy = kind == "4way8way"
                             ? InsertionPolicy::FourWayEightWay
                             : InsertionPolicy::FourWay;
        } else if (arg == "--replacement") {
            const std::string kind = need_value(i++);
            if (kind == "lru")
                cfg.replacement.kind = ReplacementKind::Lru;
            else if (kind == "fifo")
                cfg.replacement.kind = ReplacementKind::Fifo;
            else if (kind == "random")
                cfg.replacement.kind = ReplacementKind::Random;
            else if (kind == "srrip")
                cfg.replacement.kind = ReplacementKind::Srrip;
            else {
                std::fprintf(stderr, "unknown replacement %s\n",
                             kind.c_str());
                return 1;
            }
        } else if (arg == "--prefetch") {
            const std::string kind = need_value(i++);
            if (kind == "none")
                cfg.prefetch.kind = PrefetchKind::None;
            else if (kind == "nextline")
                cfg.prefetch.kind = PrefetchKind::NextLine;
            else if (kind == "stride")
                cfg.prefetch.kind = PrefetchKind::Stride;
            else {
                std::fprintf(stderr, "unknown prefetcher %s\n",
                             kind.c_str());
                return 1;
            }
        } else if (arg == "--tft") {
            const std::string spec = need_value(i++);
            const auto colon = spec.find(':');
            cfg.tftEntries = std::atoi(spec.c_str());
            if (colon != std::string::npos)
                cfg.tftAssoc = std::atoi(spec.c_str() + colon + 1);
        } else if (arg == "--unified-tlb") {
            cfg.unifiedL1Tlb = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                cfg.unifiedL1TlbEntries = std::atoi(argv[++i]);
        } else if (arg == "--icache") {
            cfg.modelInstructionCache = true;
        } else if (arg == "--instructions") {
            cfg.instructions = std::strtoull(need_value(i++), nullptr,
                                             10);
        } else if (arg == "--seed") {
            cfg.seed = std::strtoull(need_value(i++), nullptr, 10);
        } else if (arg == "--audit") {
            cfg.audit.mode = check::parseAuditMode(need_value(i++));
        } else if (arg == "--audit-period") {
            cfg.audit.periodEvents =
                std::strtoull(need_value(i++), nullptr, 10);
        } else if (arg == "--baseline") {
            run_baseline = true;
        } else {
            std::fprintf(stderr, "unknown option %s (try --help)\n",
                         arg.c_str());
            return 1;
        }
    }

    if (!explicit_assoc) {
        cfg.l1Assoc = cfg.l1SizeBytes == 32 * 1024    ? 8
                      : cfg.l1SizeBytes == 64 * 1024  ? 16
                                                      : 32;
    }

    const WorkloadSpec &workload = findWorkload(workload_name);
    std::printf("workload %s, L1 %lluKB %u-way @ %.2fGHz, %s core\n",
                workload.name.c_str(),
                static_cast<unsigned long long>(cfg.l1SizeBytes >> 10),
                cfg.l1Assoc, cfg.freqGhz,
                cfg.coreKind == CoreKind::InOrder ? "in-order"
                                                  : "out-of-order");

    const RunResult run = simulate(workload, cfg);
    report("run", run);

    if (run_baseline) {
        SystemConfig base_cfg = cfg;
        base_cfg.l1Kind = L1Kind::ViptBaseline;
        const RunResult base = simulate(workload, base_cfg);
        report("baseline VIPT", base);
        std::printf("\nvs baseline: %.2f%% faster, %.2f%% less "
                    "memory-hierarchy energy\n",
                    runtimeImprovementPercent(base, run),
                    energySavedPercent(base, run));
    }
    return 0;
}
