/**
 * @file
 * The campaign grid, shared between the `campaign` driver and the
 * `seesaw_worker` process. Cell thunks cannot cross a process
 * boundary, so the service ships *arguments* instead: the driver
 * forwards its grid options verbatim (toArgs()) and every worker
 * rebuilds the identical CampaignSpec from them (buildSpec()). The
 * option values are kept as the raw command-line strings so the
 * round-trip is exact — both sides parse the same bytes and therefore
 * derive the same cells, labels and config hashes.
 */

#ifndef SEESAW_EXAMPLES_CAMPAIGN_GRID_HH
#define SEESAW_EXAMPLES_CAMPAIGN_GRID_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hh"

namespace seesaw::grid {

inline std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= arg.size()) {
        const auto comma = arg.find(',', start);
        const auto end =
            comma == std::string::npos ? arg.size() : comma;
        if (end > start)
            out.push_back(arg.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

inline L1Kind
parseDesign(const std::string &kind)
{
    if (kind == "vipt")
        return L1Kind::ViptBaseline;
    if (kind == "pipt")
        return L1Kind::Pipt;
    if (kind == "sipt")
        return L1Kind::Sipt;
    if (kind == "seesaw")
        return L1Kind::Seesaw;
    if (kind == "wp")
        return L1Kind::ViptWayPredicted;
    if (kind == "wpseesaw")
        return L1Kind::SeesawWayPredicted;
    std::fprintf(stderr, "unknown design %s\n", kind.c_str());
    std::exit(1);
}

inline bench::CacheOrg
parseOrg(const std::string &size)
{
    for (const auto &org : bench::kCacheOrgs) {
        if (size == org.label ||
            (size.size() > 1 && size.substr(0, size.size() - 1) ==
                                    std::string(org.label).substr(
                                        0, size.size() - 1)))
            return org;
    }
    std::fprintf(stderr, "unknown L1 size %s (use 32K|64K|128K)\n",
                 size.c_str());
    std::exit(1);
}

/** One --mc-cells entry: workload : core count : L1 design. */
struct McCellSpec
{
    std::string workload;
    unsigned cores = 0;
    L1Kind kind = L1Kind::ViptBaseline;
    std::string kindName;
};

inline McCellSpec
parseMcCell(const std::string &tok)
{
    const auto c1 = tok.find(':');
    const auto c2 =
        c1 == std::string::npos ? std::string::npos
                                : tok.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) {
        std::fprintf(stderr,
                     "--mc-cells wants WORKLOAD:CORES:DESIGN, got %s\n",
                     tok.c_str());
        std::exit(1);
    }
    McCellSpec mc;
    mc.workload = tok.substr(0, c1);
    mc.cores = static_cast<unsigned>(std::strtoul(
        tok.substr(c1 + 1, c2 - c1 - 1).c_str(), nullptr, 10));
    mc.kindName = tok.substr(c2 + 1);
    mc.kind = parseDesign(mc.kindName);
    if (mc.cores < 2) {
        std::fprintf(stderr,
                     "--mc-cells needs >= 2 cores (got %s); use the "
                     "regular grid for single-core cells\n",
                     tok.c_str());
        std::exit(1);
    }
    return mc;
}

/**
 * The grid options, stored as the raw command-line strings they were
 * parsed from. Empty means "use the default".
 */
struct GridOptions
{
    std::string campaign = "campaign";
    std::string workloads;    //!< CSV, empty = all paper workloads
    std::string designs;      //!< CSV, empty = vipt,seesaw
    std::string l1;           //!< CSV, empty = all three orgs
    std::string freq;         //!< CSV GHz, empty = 1.33
    std::string memhog;       //!< CSV fractions, empty = 0
    std::string seeds;        //!< CSV, empty = 1
    std::string replacement;  //!< CSV policies, empty = lru
    std::string prefetch;     //!< CSV prefetchers, empty = none
    std::string instructions; //!< empty = 300000 (env-overridable)
    std::string mcCells;      //!< CSV of WORKLOAD:CORES:DESIGN
    std::string audit;        //!< empty = off
    std::string auditPeriod;  //!< empty = 65536

    /**
     * Consume a grid option at argv[i] (value at argv[i+1]).
     * @return true and advances @p i past the value when consumed.
     */
    bool
    parseArg(int argc, char **argv, int &i)
    {
        const auto take = [&](std::string &slot) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             argv[i]);
                std::exit(1);
            }
            slot = argv[++i];
            return true;
        };
        const std::string arg = argv[i];
        if (arg == "--campaign")
            return take(campaign);
        if (arg == "--workloads")
            return take(workloads);
        if (arg == "--designs")
            return take(designs);
        if (arg == "--l1")
            return take(l1);
        if (arg == "--freq")
            return take(freq);
        if (arg == "--memhog")
            return take(memhog);
        if (arg == "--seeds")
            return take(seeds);
        if (arg == "--replacement")
            return take(replacement);
        if (arg == "--prefetch")
            return take(prefetch);
        if (arg == "--instructions")
            return take(instructions);
        if (arg == "--mc-cells")
            return take(mcCells);
        if (arg == "--audit")
            return take(audit);
        if (arg == "--audit-period")
            return take(auditPeriod);
        return false;
    }

    /** The exact argv tail a worker needs to rebuild this grid. */
    std::vector<std::string>
    toArgs() const
    {
        std::vector<std::string> out{"--campaign", campaign};
        const auto add = [&](const char *flag,
                             const std::string &value) {
            if (!value.empty()) {
                out.push_back(flag);
                out.push_back(value);
            }
        };
        add("--workloads", workloads);
        add("--designs", designs);
        add("--l1", l1);
        add("--freq", freq);
        add("--memhog", memhog);
        add("--seeds", seeds);
        add("--replacement", replacement);
        add("--prefetch", prefetch);
        add("--instructions", instructions);
        add("--mc-cells", mcCells);
        add("--audit", audit);
        add("--audit-period", auditPeriod);
        return out;
    }

    /** Expand into the campaign spec. Every process given the same
     *  options derives the identical cells in the identical order. */
    harness::CampaignSpec
    buildSpec() const
    {
        using namespace seesaw::bench;

        std::vector<L1Kind> designKinds{L1Kind::ViptBaseline,
                                        L1Kind::Seesaw};
        if (!designs.empty()) {
            designKinds.clear();
            for (const auto &kind : splitList(designs))
                designKinds.push_back(parseDesign(kind));
        }
        std::vector<CacheOrg> orgs(std::begin(kCacheOrgs),
                                   std::end(kCacheOrgs));
        if (!l1.empty()) {
            orgs.clear();
            for (const auto &size : splitList(l1))
                orgs.push_back(parseOrg(size));
        }
        std::vector<double> freqs{1.33};
        if (!freq.empty()) {
            freqs.clear();
            for (const auto &f : splitList(freq))
                freqs.push_back(std::atof(f.c_str()));
        }
        std::vector<double> memhogs{0.0};
        if (!memhog.empty()) {
            memhogs.clear();
            for (const auto &f : splitList(memhog))
                memhogs.push_back(std::atof(f.c_str()));
        }
        std::vector<std::uint64_t> seedList{1};
        if (!seeds.empty()) {
            seedList.clear();
            for (const auto &s : splitList(seeds))
                seedList.push_back(
                    std::strtoull(s.c_str(), nullptr, 10));
        }
        std::vector<ReplacementKind> policies{ReplacementKind::Lru};
        if (!replacement.empty()) {
            policies.clear();
            for (const auto &name : splitList(replacement))
                policies.push_back(parseReplacement(name));
        }
        std::vector<PrefetchKind> prefetchers{PrefetchKind::None};
        if (!prefetch.empty()) {
            prefetchers.clear();
            for (const auto &name : splitList(prefetch))
                prefetchers.push_back(parsePrefetch(name));
        }
        // Suffix cell labels only when the axis leaves its pinned
        // default, so existing campaign stores keep their cell names.
        const auto policySuffix = [&](ReplacementKind rk,
                                      PrefetchKind pk) {
            std::string suffix;
            if (policies.size() > 1 || rk != ReplacementKind::Lru)
                suffix += std::string("/") + replacementLabel(rk);
            if (prefetchers.size() > 1 || pk != PrefetchKind::None)
                suffix += std::string("/") + prefetchLabel(pk);
            return suffix;
        };
        const std::uint64_t instr =
            instructions.empty()
                ? experimentInstructions(300'000)
                : std::strtoull(instructions.c_str(), nullptr, 10);
        check::AuditOptions auditOptions;
        auditOptions.mode = audit.empty()
                                ? check::AuditMode::Off
                                : check::parseAuditMode(audit);
        if (!auditPeriod.empty())
            auditOptions.periodEvents =
                std::strtoull(auditPeriod.c_str(), nullptr, 10);

        harness::CampaignSpec spec(campaign);
        if (workloads.empty()) {
            spec.workloads(paperWorkloads());
        } else {
            for (const auto &name : splitList(workloads))
                spec.workload(findWorkload(name));
        }
        for (const auto &org : orgs) {
            for (const double f : freqs) {
                for (const double mh : memhogs) {
                    SystemConfig cfg = makeConfig(org, f);
                    cfg.instructions = instr;
                    cfg.memhogFraction = mh;
                    cfg.audit = auditOptions;
                    for (const L1Kind kind : designKinds) {
                        std::string label =
                            std::string(org.label) + "/" +
                            TableReporter::fmt(f, 2) + "GHz";
                        if (memhogs.size() > 1 || mh > 0.0) {
                            label += "/mh" +
                                     std::to_string(static_cast<int>(
                                         mh * 100));
                        }
                        label +=
                            std::string("/") + designLabel(kind);
                        if (kind != L1Kind::ViptBaseline &&
                            kind != L1Kind::Seesaw) {
                            // designLabel only distinguishes the two
                            // paper designs; spell the rest out.
                            label =
                                label.substr(0, label.rfind('/') + 1);
                            switch (kind) {
                              case L1Kind::Pipt:
                                label += "pipt";
                                break;
                              case L1Kind::Sipt:
                                label += "sipt";
                                break;
                              case L1Kind::ViptWayPredicted:
                                label += "wp";
                                break;
                              case L1Kind::SeesawWayPredicted:
                                label += "wpseesaw";
                                break;
                              default: break;
                            }
                        }
                        for (const ReplacementKind rk : policies) {
                            for (const PrefetchKind pk : prefetchers) {
                                SystemConfig vcfg =
                                    withDesign(cfg, kind);
                                vcfg.replacement.kind = rk;
                                vcfg.prefetch.kind = pk;
                                spec.variant(
                                    label + policySuffix(rk, pk),
                                    vcfg);
                            }
                        }
                    }
                }
            }
        }
        spec.seeds(seedList);

        // Explicit multi-core cells ride along after the single-core
        // grid; they run on the unified engine with directory
        // coherence and the 64KB/16-way organisation the multicore
        // bench evaluates.
        for (const auto &tok : splitList(mcCells)) {
            const McCellSpec mc = parseMcCell(tok);
            const WorkloadSpec w = findWorkload(mc.workload);
            for (const std::uint64_t seed : seedList) {
                for (const ReplacementKind rk : policies) {
                    for (const PrefetchKind pk : prefetchers) {
                        SystemConfig cfg;
                        cfg.cores = mc.cores;
                        cfg.l1Kind = mc.kind;
                        cfg.l1SizeBytes = 64 * 1024;
                        cfg.l1Assoc = 16;
                        cfg.instructions = instr;
                        cfg.os.memBytes =
                            experimentMemBytes(1ULL << 30);
                        cfg.audit = auditOptions;
                        cfg.seed = seed;
                        cfg.replacement.kind = rk;
                        cfg.prefetch.kind = pk;
                        std::string name =
                            mc.workload + "/c" +
                            std::to_string(mc.cores) + "/" +
                            mc.kindName;
                        if (seedList.size() > 1)
                            name += "/s" + std::to_string(seed);
                        name += policySuffix(rk, pk);
                        // Simulate-cell form: carries the one-pass
                        // info, so mc-cells sharing (workload, cores,
                        // seed) group too.
                        spec.cell(name, w, cfg);
                    }
                }
            }
        }
        return spec;
    }
};

} // namespace seesaw::grid

#endif // SEESAW_EXAMPLES_CAMPAIGN_GRID_HH
