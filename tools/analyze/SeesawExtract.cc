/**
 * @file
 * seesaw-analyze extract phase: a Clang LibTooling tool run once per
 * TU (scripts/analyze.py drives it over compile_commands.json) that
 * emits per-TU facts as JSON on stdout:
 *
 *  - config_fields: every SystemConfig field path, one level of
 *    nested parameter structs expanded ("os.memBytes").
 *  - config_reads: every read/write of a config field, attributed to
 *    the enclosing class and function. Provenance is *type-based*: a
 *    read of `params.memBytes` where `params` is an OsParams maps to
 *    "os.memBytes" no matter which object holds it, which is exactly
 *    what the regex checker could not see. Reads inside
 *    MultiConfigEngine are classified by their base expression
 *    ("front" = configs_.front() or an alias of it, "indexed" =
 *    configs_[i] / sub.config) so the checker can tell front-end
 *    feeds from per-substrate feeds.
 *  - key_fields / geometry_fields / hash_fields: fields read inside
 *    frontEndKey() / tlbGeometryKey() / configHash() (helper
 *    functions are folded in at check time via the call graph).
 *  - stat_regs / stat_reads: StatGroup registrations (with the bound
 *    handle member when registered in a ctor-init or assignment) and
 *    collection-path reads (get-by-name, handle value()/count()/...,
 *    dump).
 *  - members: owning-member graph (by-value, unique_ptr, vector<...>)
 *    for the ownership closures.
 *  - mutations / calls / overrides: cross-class non-const calls and
 *    member writes, the repo call graph, and virtual overrides for
 *    the substrate-isolation reachability check.
 *
 * Lines carrying `// seesaw-analyze-ignore: <reason>` produce no
 * facts; the suppression itself is recorded (and policed by
 * scripts/check_nolint.py).
 *
 * `#include` edges are deliberately NOT extracted here: the driver
 * scans them with a plain-text pass (stable across Clang versions and
 * testable without the toolchain).
 */

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "clang/AST/ASTConsumer.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/DeclTemplate.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/ParentMapContext.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendAction.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"
#include "llvm/Support/FileSystem.h"
#include "llvm/Support/Path.h"
#include "llvm/Support/raw_ostream.h"

using namespace clang;

namespace {

llvm::cl::OptionCategory Cat("seesaw-extract options");
llvm::cl::opt<std::string>
    RepoOpt("repo", llvm::cl::desc("repository root (facts outside it "
                                   "are dropped; paths made relative)"),
            llvm::cl::init("."), llvm::cl::cat(Cat));
llvm::cl::opt<std::string>
    OutOpt("out", llvm::cl::desc("output file ('-' = stdout)"),
           llvm::cl::init("-"), llvm::cl::cat(Cat));
llvm::cl::opt<std::string> ConfigStructOpt(
    "config-struct",
    llvm::cl::desc("root configuration struct name"),
    llvm::cl::init("SystemConfig"), llvm::cl::cat(Cat));
llvm::cl::opt<std::string>
    KeyFnOpt("key-fn", llvm::cl::desc("front-end-key function name"),
             llvm::cl::init("frontEndKey"), llvm::cl::cat(Cat));
llvm::cl::opt<std::string>
    GeomFnOpt("geom-fn",
              llvm::cl::desc("TLB-geometry-key function name"),
              llvm::cl::init("tlbGeometryKey"), llvm::cl::cat(Cat));
llvm::cl::opt<std::string>
    HashFnOpt("hash-fn", llvm::cl::desc("config-hash function name"),
              llvm::cl::init("configHash"), llvm::cl::cat(Cat));

std::string RepoPrefix; // real path of the repo root + "/"

// StringRef::startswith was removed in newer LLVM; spell it out to
// stay buildable across clang 14..19.
bool
hasPrefix(llvm::StringRef S, llvm::StringRef P)
{
    return S.size() >= P.size() && S.take_front(P.size()) == P;
}

std::string
jsonEscape(llvm::StringRef S)
{
    std::string Out;
    Out.reserve(S.size());
    for (char C : S) {
        switch (C) {
        case '"': Out += "\\\""; break;
        case '\\': Out += "\\\\"; break;
        case '\n': Out += "\\n"; break;
        case '\t': Out += "\\t"; break;
        case '\r': Out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(C) < 0x20) {
                char Buf[8];
                snprintf(Buf, sizeof(Buf), "\\u%04x", C);
                Out += Buf;
            } else {
                Out += C;
            }
        }
    }
    return Out;
}

/** The facts accumulator: each array holds fully serialized JSON
 *  objects in a set, which both dedupes and gives stable output. */
struct Facts {
    std::set<std::string> configFields, keyFields, geomFields,
        hashFields, configReads, statRegs, statReads, members,
        mutations, calls, overrides, ignores, tus;
} G;

class FactsVisitor : public RecursiveASTVisitor<FactsVisitor>
{
  public:
    explicit FactsVisitor(ASTContext &Ctx) : Ctx_(Ctx) {}

    // ---- repo / location helpers -------------------------------

    std::string relFile(SourceLocation Loc)
    {
        if (Loc.isInvalid())
            return "";
        const SourceManager &SM = Ctx_.getSourceManager();
        const SourceLocation E = SM.getExpansionLoc(Loc);
        const FileID FID = SM.getFileID(E);
        auto It = fileCache_.find(FID);
        if (It != fileCache_.end())
            return It->second;
        std::string Rel;
        llvm::StringRef Name = SM.getFilename(E);
        if (!Name.empty()) {
            llvm::SmallString<256> Abs(Name);
            llvm::sys::fs::make_absolute(Abs);
            llvm::sys::path::remove_dots(Abs, /*remove_dot_dot=*/true);
            llvm::SmallString<256> Real;
            if (!llvm::sys::fs::real_path(Abs, Real))
                Abs = Real;
            llvm::StringRef S(Abs);
            if (hasPrefix(S, RepoPrefix))
                Rel = S.drop_front(RepoPrefix.size()).str();
        }
        fileCache_[FID] = Rel;
        return Rel;
    }

    bool inRepo(const Decl *D)
    {
        return D && !relFile(D->getLocation()).empty();
    }

    unsigned lineOf(SourceLocation Loc)
    {
        const SourceManager &SM = Ctx_.getSourceManager();
        return SM.getExpansionLineNumber(Loc);
    }

    /** True (and record the suppression) when the source line of
     *  @p Loc carries the seesaw-analyze-ignore marker. */
    bool ignored(SourceLocation Loc)
    {
        const std::string File = relFile(Loc);
        if (File.empty())
            return true; // outside the repo: no fact either way
        const SourceManager &SM = Ctx_.getSourceManager();
        const SourceLocation E = SM.getExpansionLoc(Loc);
        const std::pair<FileID, unsigned> Dec =
            SM.getDecomposedLoc(E);
        bool Invalid = false;
        const llvm::StringRef Buf =
            SM.getBufferData(Dec.first, &Invalid);
        if (Invalid)
            return false;
        size_t Begin = Buf.rfind('\n', Dec.second);
        Begin = Begin == llvm::StringRef::npos ? 0 : Begin + 1;
        size_t End = Buf.find('\n', Dec.second);
        End = End == llvm::StringRef::npos ? Buf.size() : End;
        if (!Buf.slice(Begin, End).contains("seesaw-analyze-ignore"))
            return false;
        G.ignores.insert("{\"file\": \"" + jsonEscape(File) +
                         "\", \"line\": " +
                         std::to_string(lineOf(Loc)) + "}");
        return true;
    }

    // ---- name helpers ------------------------------------------

    /** Class name with namespaces stripped, nested records joined
     *  with "::" (MultiConfigEngine::Substrate). */
    static std::string className(const CXXRecordDecl *RD)
    {
        std::vector<std::string> Parts;
        for (const DeclContext *DC = RD; DC && !DC->isTranslationUnit();
             DC = DC->getParent()) {
            if (const auto *R = llvm::dyn_cast<CXXRecordDecl>(DC)) {
                if (R->isLambda() || R->getIdentifier() == nullptr)
                    continue;
                Parts.push_back(R->getNameAsString());
            }
        }
        std::string Out;
        for (auto It = Parts.rbegin(); It != Parts.rend(); ++It) {
            if (!Out.empty())
                Out += "::";
            Out += *It;
        }
        return Out;
    }

    static std::string funcName(const FunctionDecl *FD)
    {
        if (const auto *MD = llvm::dyn_cast<CXXMethodDecl>(FD)) {
            const std::string Cls = className(MD->getParent());
            if (!Cls.empty())
                return Cls + "::" + MD->getNameAsString();
        }
        return FD->getNameAsString();
    }

    std::string currentFunc() const
    {
        return funcStack_.empty() ? ""
                                  : funcName(funcStack_.back());
    }

    std::string currentClass() const
    {
        for (auto It = funcStack_.rbegin(); It != funcStack_.rend();
             ++It)
            if (const auto *MD = llvm::dyn_cast<CXXMethodDecl>(*It))
                return className(MD->getParent());
        return "";
    }

    // ---- traversal scaffolding ---------------------------------

    /** Skip whole subtrees outside the repo (system headers):
     *  everything we extract lives in repo files. */
    bool TraverseDecl(Decl *D)
    {
        if (D && !llvm::isa<TranslationUnitDecl>(D) &&
            !llvm::isa<NamespaceDecl>(D) &&
            !llvm::isa<LinkageSpecDecl>(D) &&
            D->getLocation().isValid() &&
            relFile(D->getLocation()).empty())
            return true;
        return RecursiveASTVisitor::TraverseDecl(D);
    }

#define SEESAW_TRACK(KIND)                                            \
    bool Traverse##KIND(KIND *D)                                      \
    {                                                                 \
        const bool Lambda =                                           \
            llvm::isa<CXXMethodDecl>(D) &&                            \
            llvm::cast<CXXMethodDecl>(D)->getParent()->isLambda();    \
        if (!Lambda)                                                  \
            funcStack_.push_back(D);                                  \
        const bool R = RecursiveASTVisitor::Traverse##KIND(D);        \
        if (!Lambda)                                                  \
            funcStack_.pop_back();                                    \
        return R;                                                     \
    }
    SEESAW_TRACK(FunctionDecl)
    SEESAW_TRACK(CXXMethodDecl)
    SEESAW_TRACK(CXXConstructorDecl)
    SEESAW_TRACK(CXXDestructorDecl)
    SEESAW_TRACK(CXXConversionDecl)
#undef SEESAW_TRACK

    // ---- config struct registration ----------------------------

    bool VisitCXXRecordDecl(CXXRecordDecl *D)
    {
        if (!D->isThisDeclarationADefinition() || D->isLambda())
            return true;
        if (!inRepo(D))
            return true;
        recordMembers(D);
        if (D->getNameAsString() == ConfigStructOpt)
            registerConfigStruct(D);
        return true;
    }

    void registerConfigStruct(const CXXRecordDecl *D)
    {
        const std::string Root = D->getNameAsString();
        configPrefix_[D->getCanonicalDecl()] = "";
        for (const FieldDecl *F : D->fields()) {
            const std::string Name = F->getNameAsString();
            const CXXRecordDecl *R =
                F->getType()->getAsCXXRecordDecl();
            if (R && R->hasDefinition() && inRepo(R)) {
                R = R->getDefinition();
                configPrefix_[R->getCanonicalDecl()] = Name + ".";
                emitConfigField(Name, Root);
                for (const FieldDecl *L : R->fields())
                    emitConfigField(Name + "." + L->getNameAsString(),
                                    className(R));
            } else {
                emitConfigField(Name, Root);
            }
        }
    }

    void emitConfigField(const std::string &Path,
                         const std::string &Record)
    {
        G.configFields.insert("{\"path\": \"" + jsonEscape(Path) +
                              "\", \"record\": \"" +
                              jsonEscape(Record) + "\"}");
    }

    // ---- owning-member graph -----------------------------------

    void recordMembers(const CXXRecordDecl *D)
    {
        const std::string Cls = className(D);
        if (Cls.empty())
            return;
        for (const FieldDecl *F : D->fields()) {
            bool Owning = true;
            const CXXRecordDecl *Inner =
                innerRecord(F->getType(), Owning);
            if (!Inner || !inRepo(Inner))
                continue;
            const std::string Type = className(Inner);
            if (Type.empty())
                continue;
            G.members.insert(
                "{\"class\": \"" + jsonEscape(Cls) +
                "\", \"member\": \"" +
                jsonEscape(F->getNameAsString()) + "\", \"type\": \"" +
                jsonEscape(Type) + "\", \"owning\": " +
                (Owning ? "true" : "false") + "}");
        }
    }

    /** Resolve the interesting record behind a member type:
     *  T, T*, T&, unique_ptr<T>, vector<unique_ptr<T>>, ... with
     *  @p Owning cleared once a raw pointer/reference intervenes. */
    const CXXRecordDecl *innerRecord(QualType T, bool &Owning,
                                     int Depth = 0)
    {
        if (Depth > 4)
            return nullptr;
        if (T->isReferenceType())
            Owning = false; // reference members are borrowed
        T = T.getNonReferenceType().getCanonicalType();
        if (T->isPointerType()) {
            Owning = false;
            return innerRecord(T->getPointeeType(), Owning,
                               Depth + 1);
        }
        const CXXRecordDecl *R = T->getAsCXXRecordDecl();
        if (!R)
            return nullptr;
        if (const auto *Spec = llvm::dyn_cast<
                ClassTemplateSpecializationDecl>(R)) {
            const std::string Name = Spec->getNameAsString();
            if (Name == "unique_ptr" || Name == "shared_ptr" ||
                Name == "vector" || Name == "optional" ||
                Name == "array" || Name == "deque") {
                const auto &Args = Spec->getTemplateArgs();
                if (Args.size() == 0 ||
                    Args.get(0).getKind() != TemplateArgument::Type)
                    return nullptr;
                return innerRecord(Args.get(0).getAsType(), Owning,
                                   Depth + 1);
            }
            return nullptr;
        }
        return R;
    }

    // ---- config reads ------------------------------------------

    const CXXRecordDecl *baseRecordOf(const MemberExpr *ME)
    {
        QualType BT =
            ME->getBase()->IgnoreParenImpCasts()->getType();
        if (ME->isArrow() && BT->isPointerType())
            BT = BT->getPointeeType();
        const CXXRecordDecl *R = BT->getAsCXXRecordDecl();
        return R ? R->getCanonicalDecl() : nullptr;
    }

    bool VisitMemberExpr(MemberExpr *ME)
    {
        const auto *FD =
            llvm::dyn_cast<FieldDecl>(ME->getMemberDecl());
        if (!FD || funcStack_.empty())
            return true;
        const CXXRecordDecl *BR = baseRecordOf(ME);
        if (!BR)
            return true;
        const auto It = configPrefix_.find(BR);
        if (It == configPrefix_.end())
            return true;
        const std::string Path = It->second + FD->getNameAsString();

        bool Write = false;
        if (selectedIntoOrWritten(ME, Write))
            return true; // outer (leaf) MemberExpr records instead
        if (ignored(ME->getBeginLoc()))
            return true;

        const std::string Fn = currentFunc();
        const std::string Unq = funcStack_.back()->getNameAsString();
        if (!Write && Unq == KeyFnOpt) {
            G.keyFields.insert("\"" + jsonEscape(Path) + "\"");
            return true;
        }
        if (!Write && Unq == GeomFnOpt) {
            G.geomFields.insert("\"" + jsonEscape(Path) + "\"");
            return true;
        }
        if (!Write && Unq == HashFnOpt) {
            G.hashFields.insert("\"" + jsonEscape(Path) + "\"");
            return true;
        }

        G.configReads.insert(
            "{\"path\": \"" + jsonEscape(Path) + "\", \"class\": \"" +
            jsonEscape(currentClass()) + "\", \"func\": \"" +
            jsonEscape(Fn) + "\", \"base\": \"" +
            jsonEscape(classifyBase(ME)) + "\", \"file\": \"" +
            jsonEscape(relFile(ME->getBeginLoc())) +
            "\", \"line\": " +
            std::to_string(lineOf(ME->getBeginLoc())) +
            ", \"write\": " + (Write ? "true" : "false") + "}");
        return true;
    }

    /** Walk up through casts/parens. Returns true when this
     *  MemberExpr is itself the base of an enclosing config-field
     *  selection (the leaf records the fact); sets @p Write when the
     *  expression is the target of an assignment or ++/--. */
    bool selectedIntoOrWritten(const Expr *E, bool &Write)
    {
        const Expr *Child = E;
        DynTypedNode Node = DynTypedNode::create(*E);
        for (int Hops = 0; Hops < 16; ++Hops) {
            const auto Parents = Ctx_.getParents(Node);
            if (Parents.empty())
                return false;
            const DynTypedNode Parent = Parents[0];
            if (const Stmt *PS = Parent.get<Stmt>()) {
                if (llvm::isa<ImplicitCastExpr>(PS) ||
                    llvm::isa<ParenExpr>(PS) ||
                    llvm::isa<ExprWithCleanups>(PS)) {
                    Child = llvm::cast<Expr>(PS);
                    Node = Parent;
                    continue;
                }
                if (const auto *PME =
                        llvm::dyn_cast<MemberExpr>(PS)) {
                    const CXXRecordDecl *PR = baseRecordOf(PME);
                    if (llvm::isa<FieldDecl>(PME->getMemberDecl()) &&
                        PME->getBase()->IgnoreParenImpCasts() ==
                            Child &&
                        PR && configPrefix_.count(PR))
                        return true;
                    return false;
                }
                if (const auto *BO =
                        llvm::dyn_cast<BinaryOperator>(PS)) {
                    Write = BO->isAssignmentOp() &&
                            BO->getLHS()->IgnoreParenImpCasts() ==
                                Child;
                    return false;
                }
                if (const auto *UO =
                        llvm::dyn_cast<UnaryOperator>(PS)) {
                    Write = UO->isIncrementDecrementOp();
                    return false;
                }
            }
            return false;
        }
        return false;
    }

    /** Classify the object a config read goes through; the checker
     *  only consults this for MultiConfigEngine reads. */
    std::string classifyBase(const MemberExpr *ME)
    {
        const Expr *E = ME->getBase()->IgnoreParenImpCasts();
        // Strip nested config-struct selections: c.os.memBytes -> c.
        while (const auto *M = llvm::dyn_cast<MemberExpr>(E)) {
            const CXXRecordDecl *R = baseRecordOf(M);
            if (R && configPrefix_.count(R) &&
                llvm::isa<FieldDecl>(M->getMemberDecl())) {
                E = M->getBase()->IgnoreParenImpCasts();
                continue;
            }
            break;
        }
        if (const auto *MC = llvm::dyn_cast<CXXMemberCallExpr>(E)) {
            const CXXMethodDecl *MD = MC->getMethodDecl();
            if (MD && MD->getNameAsString() == "front")
                return "front";
            return "unknown";
        }
        if (llvm::isa<CXXOperatorCallExpr>(E) ||
            llvm::isa<ArraySubscriptExpr>(E))
            return "indexed";
        if (const auto *M = llvm::dyn_cast<MemberExpr>(E)) {
            const std::string Name =
                M->getMemberDecl()->getNameAsString();
            if (Name == "config" || Name == "config_")
                return "indexed";
            return "member";
        }
        if (const auto *DR = llvm::dyn_cast<DeclRefExpr>(E)) {
            if (const auto *VD =
                    llvm::dyn_cast<VarDecl>(DR->getDecl())) {
                if (frontAliases_.count(VD))
                    return "front";
                if (indexedAliases_.count(VD))
                    return "indexed";
                if (llvm::isa<ParmVarDecl>(VD))
                    return "param";
                return "unknown";
            }
        }
        if (llvm::isa<CXXThisExpr>(E))
            return "member";
        return "unknown";
    }

    /** Track local aliases of whole config objects:
     *  `const SystemConfig &front = configs_.front();`  -> front
     *  `const SystemConfig &c = configs_[i];`           -> indexed */
    bool VisitVarDecl(VarDecl *VD)
    {
        if (!VD->hasInit())
            return true;
        bool Owning = true;
        const CXXRecordDecl *R = innerRecord(VD->getType(), Owning);
        if (!R)
            return true;
        const auto It = configPrefix_.find(R->getCanonicalDecl());
        if (It == configPrefix_.end() || !It->second.empty())
            return true; // only aliases of the ROOT config struct
        // Scan the initializer for the telltale source expression.
        std::vector<const Stmt *> Work = {VD->getInit()};
        while (!Work.empty()) {
            const Stmt *S = Work.back();
            Work.pop_back();
            if (!S)
                continue;
            if (const auto *MC =
                    llvm::dyn_cast<CXXMemberCallExpr>(S)) {
                const CXXMethodDecl *MD = MC->getMethodDecl();
                if (MD && MD->getNameAsString() == "front") {
                    frontAliases_.insert(VD);
                    return true;
                }
            }
            if (llvm::isa<CXXOperatorCallExpr>(S) ||
                llvm::isa<ArraySubscriptExpr>(S)) {
                indexedAliases_.insert(VD);
                return true;
            }
            if (const auto *M = llvm::dyn_cast<MemberExpr>(S)) {
                const std::string Name =
                    M->getMemberDecl()->getNameAsString();
                if (Name == "config" || Name == "config_") {
                    indexedAliases_.insert(VD);
                    return true;
                }
            }
            for (const Stmt *C : S->children())
                Work.push_back(C);
        }
        return true;
    }

    // ---- stats --------------------------------------------------

    static bool isStatGroupType(const CXXRecordDecl *R)
    {
        return R && R->getNameAsString() == "StatGroup";
    }

    static bool isStatHandleType(const CXXRecordDecl *R)
    {
        if (!R)
            return false;
        const std::string N = R->getNameAsString();
        return N == "StatScalar" || N == "StatDistribution" ||
               N == "StatHistogram";
    }

    std::string literalArg(const CallExpr *CE)
    {
        if (CE->getNumArgs() < 1)
            return "<dynamic>";
        const Expr *A = CE->getArg(0)->IgnoreParenImpCasts();
        if (const auto *SL = llvm::dyn_cast<StringLiteral>(A))
            return SL->getString().str();
        return "<dynamic>";
    }

    std::string locKey(SourceLocation Loc)
    {
        const SourceManager &SM = Ctx_.getSourceManager();
        const SourceLocation E = SM.getExpansionLoc(Loc);
        return relFile(E) + ":" +
               std::to_string(SM.getExpansionLineNumber(E)) + ":" +
               std::to_string(SM.getExpansionColumnNumber(E));
    }

    bool VisitCXXMemberCallExpr(CXXMemberCallExpr *CE)
    {
        const CXXMethodDecl *MD = CE->getMethodDecl();
        if (!MD || funcStack_.empty())
            return true;
        const CXXRecordDecl *Parent = MD->getParent();
        const std::string Method = MD->getNameAsString();
        const std::string File = relFile(CE->getBeginLoc());

        if (isStatGroupType(Parent)) {
            if (Method == "scalar" || Method == "distribution" ||
                Method == "histogram") {
                // Registrations are production surface only; a test
                // exercising a local StatGroup is not a stat anyone
                // must collect.
                if (File.rfind("src/", 0) == 0 &&
                    !ignored(CE->getBeginLoc()))
                    rawRegs_.push_back({literalArg(CE),
                                        currentClass(), File,
                                        lineOf(CE->getBeginLoc()),
                                        locKey(CE->getBeginLoc())});
            } else if (Method == "get") {
                G.statReads.insert(
                    "{\"kind\": \"get\", \"name\": \"" +
                    jsonEscape(literalArg(CE)) +
                    "\", \"class\": \"\", \"member\": \"\"}");
            } else if (Method == "dump") {
                std::string Cls;
                const Expr *Obj =
                    CE->getImplicitObjectArgument()
                        ->IgnoreParenImpCasts();
                if (const auto *M =
                        llvm::dyn_cast<MemberExpr>(Obj))
                    if (const auto *F = llvm::dyn_cast<FieldDecl>(
                            M->getMemberDecl()))
                        Cls = className(llvm::cast<CXXRecordDecl>(
                            F->getParent()));
                G.statReads.insert(
                    "{\"kind\": \"dump\", \"name\": \"\", "
                    "\"class\": \"" +
                    jsonEscape(Cls) + "\", \"member\": \"\"}");
            }
        } else if (isStatHandleType(Parent)) {
            static const std::set<std::string> ReadMethods = {
                "value",     "count",    "samples", "mean",
                "min",       "max",      "total",   "variance",
                "bucketCount", "overflow", "bucketWidth"};
            if (ReadMethods.count(Method)) {
                const Expr *Obj =
                    CE->getImplicitObjectArgument()
                        ->IgnoreParenImpCasts();
                if (const auto *UO =
                        llvm::dyn_cast<UnaryOperator>(Obj))
                    Obj = UO->getSubExpr()->IgnoreParenImpCasts();
                if (const auto *M = llvm::dyn_cast<MemberExpr>(Obj))
                    if (const auto *F = llvm::dyn_cast<FieldDecl>(
                            M->getMemberDecl()))
                        G.statReads.insert(
                            "{\"kind\": \"handle\", \"name\": \"\", "
                            "\"class\": \"" +
                            jsonEscape(
                                className(llvm::cast<CXXRecordDecl>(
                                    F->getParent()))) +
                            "\", \"member\": \"" +
                            jsonEscape(F->getNameAsString()) +
                            "\"}");
            }
        }

        // Cross-class non-const calls feed the substrate-isolation
        // check.
        if (!MD->isConst() && !MD->isStatic() && Parent &&
            inRepo(Parent)) {
            const std::string Target = className(Parent);
            const std::string Cls = currentClass();
            if (!Target.empty() && Target != Cls &&
                !ignored(CE->getBeginLoc()))
                G.mutations.insert(
                    "{\"class\": \"" + jsonEscape(Cls) +
                    "\", \"func\": \"" + jsonEscape(currentFunc()) +
                    "\", \"target\": \"" + jsonEscape(Target) +
                    "\", \"name\": \"" + jsonEscape(Method) +
                    "\", \"kind\": \"call\", \"file\": \"" +
                    jsonEscape(File) + "\", \"line\": " +
                    std::to_string(lineOf(CE->getBeginLoc())) + "}");
        }
        return true;
    }

    /** Ctor-init-list stat binds:
     *  stProbes_(&stats_.scalar("probes")). */
    bool VisitCXXConstructorDecl(CXXConstructorDecl *CD)
    {
        if (!CD->isThisDeclarationADefinition())
            return true;
        for (const CXXCtorInitializer *Init : CD->inits()) {
            if (!Init->isAnyMemberInitializer())
                continue;
            const FieldDecl *F = Init->getAnyMember();
            bindRegCalls(Init->getInit(), F->getNameAsString());
        }
        return true;
    }

    /** Assignment stat binds: stX_ = &stats_.scalar("x"). */
    bool VisitBinaryOperator(BinaryOperator *BO)
    {
        if (funcStack_.empty())
            return true;
        if (BO->isAssignmentOp()) {
            const Expr *LHS = BO->getLHS()->IgnoreParenImpCasts();
            if (const auto *M = llvm::dyn_cast<MemberExpr>(LHS)) {
                if (const auto *F = llvm::dyn_cast<FieldDecl>(
                        M->getMemberDecl())) {
                    bool Owning = true;
                    if (isStatHandleType(
                            innerRecord(F->getType(), Owning)))
                        bindRegCalls(BO->getRHS(),
                                     F->getNameAsString());
                    // Cross-class member writes feed the
                    // substrate-isolation check.
                    const auto *PR = llvm::dyn_cast<CXXRecordDecl>(
                        F->getParent());
                    const std::string Target =
                        PR ? className(PR) : "";
                    const std::string Cls = currentClass();
                    if (PR && inRepo(PR) && !Target.empty() &&
                        Target != Cls &&
                        !ignored(BO->getBeginLoc()))
                        G.mutations.insert(
                            "{\"class\": \"" + jsonEscape(Cls) +
                            "\", \"func\": \"" +
                            jsonEscape(currentFunc()) +
                            "\", \"target\": \"" +
                            jsonEscape(Target) + "\", \"name\": \"" +
                            jsonEscape(F->getNameAsString()) +
                            "\", \"kind\": \"write\", \"file\": \"" +
                            jsonEscape(
                                relFile(BO->getBeginLoc())) +
                            "\", \"line\": " +
                            std::to_string(
                                lineOf(BO->getBeginLoc())) +
                            "}");
                }
            }
        }
        return true;
    }

    void bindRegCalls(const Stmt *Root, const std::string &Member)
    {
        std::vector<const Stmt *> Work = {Root};
        while (!Work.empty()) {
            const Stmt *S = Work.back();
            Work.pop_back();
            if (!S)
                continue;
            if (const auto *MC =
                    llvm::dyn_cast<CXXMemberCallExpr>(S)) {
                const CXXMethodDecl *MD = MC->getMethodDecl();
                if (MD && isStatGroupType(MD->getParent())) {
                    const std::string N = MD->getNameAsString();
                    if (N == "scalar" || N == "distribution" ||
                        N == "histogram")
                        bindAt_[locKey(MC->getBeginLoc())] = Member;
                }
            }
            for (const Stmt *C : S->children())
                Work.push_back(C);
        }
    }

    // ---- call graph / overrides --------------------------------

    bool VisitCallExpr(CallExpr *CE)
    {
        if (funcStack_.empty())
            return true;
        const FunctionDecl *Callee = CE->getDirectCallee();
        if (!Callee || !inRepo(Callee))
            return true;
        G.calls.insert("{\"caller\": \"" +
                       jsonEscape(currentFunc()) +
                       "\", \"callee\": \"" +
                       jsonEscape(funcName(Callee)) + "\"}");
        return true;
    }

    bool VisitCXXMethodDecl(CXXMethodDecl *MD)
    {
        if (!inRepo(MD))
            return true;
        for (const CXXMethodDecl *Base : MD->overridden_methods()) {
            if (!inRepo(Base))
                continue;
            G.overrides.insert("{\"derived\": \"" +
                               jsonEscape(funcName(MD)) +
                               "\", \"base\": \"" +
                               jsonEscape(funcName(Base)) + "\"}");
        }
        return true;
    }

    void finish()
    {
        for (const RawReg &R : rawRegs_) {
            const auto It = bindAt_.find(R.loc);
            const std::string Member =
                It == bindAt_.end() ? "" : It->second;
            G.statRegs.insert(
                "{\"name\": \"" + jsonEscape(R.name) +
                "\", \"class\": \"" + jsonEscape(R.cls) +
                "\", \"member\": \"" + jsonEscape(Member) +
                "\", \"file\": \"" + jsonEscape(R.file) +
                "\", \"line\": " + std::to_string(R.line) + "}");
        }
    }

  private:
    struct RawReg {
        std::string name, cls, file;
        unsigned line;
        std::string loc;
    };

    ASTContext &Ctx_;
    std::vector<const FunctionDecl *> funcStack_;
    llvm::DenseMap<const CXXRecordDecl *, std::string> configPrefix_;
    llvm::DenseMap<FileID, std::string> fileCache_;
    std::set<const VarDecl *> frontAliases_, indexedAliases_;
    std::vector<RawReg> rawRegs_;
    std::map<std::string, std::string> bindAt_;
};

class FactsConsumer : public ASTConsumer
{
  public:
    void HandleTranslationUnit(ASTContext &Ctx) override
    {
        FactsVisitor V(Ctx);
        V.TraverseDecl(Ctx.getTranslationUnitDecl());
        V.finish();
    }
};

class FactsAction : public ASTFrontendAction
{
  public:
    std::unique_ptr<ASTConsumer>
    CreateASTConsumer(CompilerInstance &, llvm::StringRef InFile)
        override
    {
        llvm::SmallString<256> Abs(InFile);
        llvm::sys::fs::make_absolute(Abs);
        llvm::sys::path::remove_dots(Abs, true);
        llvm::SmallString<256> Real;
        if (!llvm::sys::fs::real_path(Abs, Real))
            Abs = Real;
        llvm::StringRef S(Abs);
        if (hasPrefix(S, RepoPrefix))
            G.tus.insert("\"" +
                         jsonEscape(S.drop_front(RepoPrefix.size())) +
                         "\"");
        return std::make_unique<FactsConsumer>();
    }
};

void
emitArray(llvm::raw_ostream &OS, const char *Key,
          const std::set<std::string> &Items, bool Last = false)
{
    OS << "  \"" << Key << "\": [";
    bool First = true;
    for (const std::string &I : Items) {
        OS << (First ? "\n    " : ",\n    ") << I;
        First = false;
    }
    OS << (First ? "]" : "\n  ]") << (Last ? "\n" : ",\n");
}

} // namespace

int
main(int argc, const char **argv)
{
    auto Options =
        tooling::CommonOptionsParser::create(argc, argv, Cat);
    if (!Options) {
        llvm::errs() << llvm::toString(Options.takeError()) << "\n";
        return 1;
    }

    llvm::SmallString<256> RepoReal;
    if (llvm::sys::fs::real_path(RepoOpt, RepoReal)) {
        llvm::errs() << "seesaw-extract: cannot resolve --repo '"
                     << RepoOpt << "'\n";
        return 1;
    }
    RepoPrefix = std::string(RepoReal) + "/";

    tooling::ClangTool Tool(Options->getCompilations(),
                            Options->getSourcePathList());
    if (Tool.run(
            tooling::newFrontendActionFactory<FactsAction>().get()))
        return 1;

    std::error_code EC;
    llvm::raw_fd_ostream FileOS(
        OutOpt == "-" ? "-" : llvm::StringRef(OutOpt), EC);
    if (EC) {
        llvm::errs() << "seesaw-extract: cannot open " << OutOpt
                     << ": " << EC.message() << "\n";
        return 1;
    }
    llvm::raw_ostream &OS = FileOS;

    OS << "{\n  \"schema\": 1,\n";
    emitArray(OS, "tus", G.tus);
    emitArray(OS, "config_fields", G.configFields);
    emitArray(OS, "key_fields", G.keyFields);
    emitArray(OS, "geometry_fields", G.geomFields);
    emitArray(OS, "hash_fields", G.hashFields);
    emitArray(OS, "config_reads", G.configReads);
    emitArray(OS, "includes", {});
    emitArray(OS, "stat_regs", G.statRegs);
    emitArray(OS, "stat_reads", G.statReads);
    emitArray(OS, "members", G.members);
    emitArray(OS, "mutations", G.mutations);
    emitArray(OS, "calls", G.calls);
    emitArray(OS, "overrides", G.overrides);
    emitArray(OS, "ignores", G.ignores, /*Last=*/true);
    OS << "}\n";
    return 0;
}
