/**
 * @file
 * seesaw-analyze check phase: consume the merged whole-program facts
 * JSON produced by seesaw_extract + scripts/analyze.py and enforce the
 * five global invariants the one-pass engine rests on (DESIGN.md
 * "Whole-program static analysis"):
 *
 *   1. front-end-key completeness  — every SystemConfig field read on
 *      the front-end path is serialized in frontEndKey()  [error]
 *   2. front-end-key minimality    — key fields no front-end code
 *      reads (allowlist below)                            [warning]
 *   3. config-hash completeness    — configHash() mixes every config
 *      leaf, and mixes nothing stale                      [error]
 *   4. substrate isolation         — no per-substrate class mutates
 *      front-end-owned state on a path reachable from
 *      MultiConfigEngine's run phase                      [error]
 *   5. layer DAG                   — src/ module includes point only
 *      downward in the layer ranking, acyclically         [error]
 *      plus orphan-stat detection (registered, never read) [warning]
 *
 * The front-end / substrate ownership closures are not hardcoded class
 * lists: only the ROOTS are policy. The closures are computed from the
 * extracted owning-member graph, and the engine's own members are
 * verified against them (ownership-map drift is itself an error), so a
 * new member smuggled into Substrate or CoreFrontEnd re-derives the
 * ownership map or fails the check.
 *
 * This binary is deliberately Clang-free so the facts-level mutation
 * ctests (tests/lint/analyze_check_test.py) run on machines without
 * the Clang dev packages.
 */

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "store/json_value.hh"

namespace {

using seesaw::store::JsonValue;

// ---------------------------------------------------------------- policy

// Layer ranks: an include from module A to module B requires
// rank[B] <= rank[A]. Derived from the dependency reality in
// src/CMakeLists.txt (e.g. tlb sits above mem: the page walker walks
// the mem-owned page table), not from the prose ordering in older
// docs.
const std::map<std::string, int> kLayerRank = {
    {"common", 0}, {"model", 0},
    {"cpu", 1},    {"mem", 1},  {"cache", 1}, {"workload", 1},
    {"tlb", 2},    {"core", 2}, {"coherence", 2},
    {"check", 3},
    {"sim", 4},
    {"harness", 5},
    {"store", 6},
    {"service", 7},
};

// Ownership-closure roots (class names with namespaces stripped,
// nested classes written Outer::Inner). The closures grow through the
// extracted owning-member facts.
const std::set<std::string> kFrontEndRoots = {
    "OsMemoryManager", "Memhog", "ReferenceStream", "CodeStream",
    "TraceReader",
};
const std::set<std::string> kSharedTlbRoots = {"TlbHierarchy"};
const std::set<std::string> kSubstrateRoots = {
    "CoreComplex", "EnergyModel", "SetAssocCache", "CoherenceFabric",
    "ExactDirectory", "InvariantAuditor",
};
// Config-invariant value types the engine may own without them being
// front-end, shared-TLB, or substrate state.
const std::set<std::string> kNeutralTypes = {
    "SystemConfig", "WorkloadSpec", "LatencyTable", "Rng",
    "TlbLookupResult", "StatGroup", "MemRef", "RunResult",
};

const char kEngineClass[] = "MultiConfigEngine";

// Definitional functions: their config reads *define* the key/hash
// sets rather than consuming config, so they are excluded from the
// completeness/minimality read sets (compatibleFrontEnds re-compares
// exactly the key fields).
const char kKeyFn[] = "frontEndKey";
const char kGeomFn[] = "tlbGeometryKey";
const char kHashFn[] = "configHash";
const char kCompatFn[] = "compatibleFrontEnds";

// Key-minimality allowlist: key fields no front-end code reads, with
// the reason they must stay in the key anyway. Keyed by config path.
const std::map<std::string, std::string> kKeyReadAllowlist = {
    {"fabric",
     "one-pass groups are restricted to one coherence-fabric kind; "
     "the restriction is enforced by compatibleFrontEnds, not by a "
     "front-end read"},
};

// -------------------------------------------------------------- facts IO

struct ConfigRead {
    std::string path, cls, func, base, file;
    std::uint64_t line = 0;
    bool write = false;
};
struct StatReg {
    std::string name, cls, member, file;
    std::uint64_t line = 0;
};
struct StatRead {
    std::string kind, name, cls, member;
};
struct Member {
    std::string cls, member, type;
    bool owning = false;
};
struct Mutation {
    std::string cls, func, target, name, kind, file;
    std::uint64_t line = 0;
};

struct Facts {
    std::set<std::string> configFields; // all paths, incl. non-leaves
    std::set<std::string> keyFields, geomFields, hashFields;
    std::vector<ConfigRead> reads;
    std::vector<std::pair<std::string, std::string>> includes;
    std::vector<StatReg> statRegs;
    std::vector<StatRead> statReads;
    std::vector<Member> members;
    std::vector<Mutation> mutations;
    std::vector<std::pair<std::string, std::string>> calls;
    std::vector<std::pair<std::string, std::string>> overrides;
    std::size_t ignores = 0;
    std::size_t tus = 0;
};

std::string
str(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    return v && v->kind == JsonValue::Kind::String ? v->str : "";
}

std::uint64_t
num(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    return v && v->isNumber() ? v->asU64() : 0;
}

bool
boolean(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    return v && v->kind == JsonValue::Kind::Bool && v->boolean;
}

const JsonValue *
arr(const JsonValue &doc, const char *key)
{
    const JsonValue *v = doc.find(key);
    return v && v->isArray() ? v : nullptr;
}

bool
loadFacts(const std::string &path, Facts &facts, std::string &error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot open " + path;
        return false;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    JsonValue doc;
    if (!seesaw::store::parseJson(buf.str(), doc, error))
        return false;
    if (!doc.isObject()) {
        error = "facts document is not a JSON object";
        return false;
    }

    if (const JsonValue *a = arr(doc, "config_fields"))
        for (const JsonValue &e : a->items)
            facts.configFields.insert(str(e, "path"));
    auto loadSet = [&](const char *key, std::set<std::string> &out) {
        if (const JsonValue *a = arr(doc, key))
            for (const JsonValue &e : a->items)
                if (e.kind == JsonValue::Kind::String)
                    out.insert(e.str);
    };
    loadSet("key_fields", facts.keyFields);
    loadSet("geometry_fields", facts.geomFields);
    loadSet("hash_fields", facts.hashFields);

    if (const JsonValue *a = arr(doc, "config_reads"))
        for (const JsonValue &e : a->items)
            facts.reads.push_back({str(e, "path"), str(e, "class"),
                                   str(e, "func"), str(e, "base"),
                                   str(e, "file"), num(e, "line"),
                                   boolean(e, "write")});
    if (const JsonValue *a = arr(doc, "includes"))
        for (const JsonValue &e : a->items)
            facts.includes.emplace_back(str(e, "from"), str(e, "to"));
    if (const JsonValue *a = arr(doc, "stat_regs"))
        for (const JsonValue &e : a->items)
            facts.statRegs.push_back({str(e, "name"), str(e, "class"),
                                      str(e, "member"), str(e, "file"),
                                      num(e, "line")});
    if (const JsonValue *a = arr(doc, "stat_reads"))
        for (const JsonValue &e : a->items)
            facts.statReads.push_back({str(e, "kind"), str(e, "name"),
                                       str(e, "class"),
                                       str(e, "member")});
    if (const JsonValue *a = arr(doc, "members"))
        for (const JsonValue &e : a->items)
            facts.members.push_back({str(e, "class"), str(e, "member"),
                                     str(e, "type"),
                                     boolean(e, "owning")});
    if (const JsonValue *a = arr(doc, "mutations"))
        for (const JsonValue &e : a->items)
            facts.mutations.push_back(
                {str(e, "class"), str(e, "func"), str(e, "target"),
                 str(e, "name"), str(e, "kind"), str(e, "file"),
                 num(e, "line")});
    if (const JsonValue *a = arr(doc, "calls"))
        for (const JsonValue &e : a->items)
            facts.calls.emplace_back(str(e, "caller"),
                                     str(e, "callee"));
    if (const JsonValue *a = arr(doc, "overrides"))
        for (const JsonValue &e : a->items)
            facts.overrides.emplace_back(str(e, "derived"),
                                         str(e, "base"));
    if (const JsonValue *a = arr(doc, "ignores"))
        facts.ignores = a->items.size();
    if (const JsonValue *a = arr(doc, "tus"))
        facts.tus = a->items.size();
    return true;
}

// ------------------------------------------------------------- reporting

struct Reporter {
    std::vector<std::string> errors, warnings;

    void error(const std::string &msg) { errors.push_back(msg); }
    void warning(const std::string &msg) { warnings.push_back(msg); }

    static std::string at(const std::string &file, std::uint64_t line)
    {
        if (file.empty())
            return "";
        return " [" + file +
               (line ? ":" + std::to_string(line) : "") + "]";
    }
};

// ------------------------------------------------------------- utilities

std::string
lastComponent(const std::string &qualified)
{
    const auto pos = qualified.rfind("::");
    return pos == std::string::npos ? qualified
                                    : qualified.substr(pos + 2);
}

bool
isEngineClass(const std::string &cls)
{
    return cls == kEngineClass ||
           cls.rfind(std::string(kEngineClass) + "::", 0) == 0;
}

/** Expand one config path to its set of leaf paths: "os" becomes
 *  every "os.<leaf>"; a leaf expands to itself. */
std::set<std::string>
expandToLeaves(const std::string &path,
               const std::set<std::string> &fields)
{
    std::set<std::string> leaves;
    const std::string prefix = path + ".";
    for (const std::string &f : fields)
        if (f.rfind(prefix, 0) == 0)
            leaves.insert(f);
    if (leaves.empty())
        leaves.insert(path);
    // Expansion is single-level in practice (SystemConfig nests one
    // deep); recurse anyway so a deeper nesting cannot hide a leaf.
    std::set<std::string> out;
    for (const std::string &l : leaves) {
        if (l == path) {
            out.insert(l);
            continue;
        }
        auto sub = expandToLeaves(l, fields);
        out.insert(sub.begin(), sub.end());
    }
    return out;
}

std::set<std::string>
expandAll(const std::set<std::string> &paths,
          const std::set<std::string> &fields)
{
    std::set<std::string> out;
    for (const std::string &p : paths) {
        auto leaves = expandToLeaves(p, fields);
        out.insert(leaves.begin(), leaves.end());
    }
    return out;
}

bool
isLeafField(const std::string &path,
            const std::set<std::string> &fields)
{
    const std::string prefix = path + ".";
    for (const std::string &f : fields)
        if (f.rfind(prefix, 0) == 0)
            return false;
    return true;
}

/** Transitive closure over the owning-member graph. */
std::set<std::string>
ownershipClosure(const std::set<std::string> &roots,
                 const std::vector<Member> &members)
{
    std::map<std::string, std::set<std::string>> owns;
    for (const Member &m : members)
        if (m.owning && !m.type.empty())
            owns[m.cls].insert(m.type);
    std::set<std::string> closure = roots;
    std::vector<std::string> work(roots.begin(), roots.end());
    while (!work.empty()) {
        const std::string cls = work.back();
        work.pop_back();
        auto it = owns.find(cls);
        if (it == owns.end())
            continue;
        for (const std::string &owned : it->second)
            if (closure.insert(owned).second)
                work.push_back(owned);
    }
    return closure;
}

/** Functions reachable from every function whose unqualified name is
 *  @p start, following call edges and expanding virtual calls through
 *  the override facts. */
std::set<std::string>
reachableFrom(const std::string &start, const Facts &facts)
{
    std::map<std::string, std::vector<std::string>> graph;
    for (const auto &[caller, callee] : facts.calls)
        graph[caller].push_back(callee);
    std::map<std::string, std::vector<std::string>> derived;
    for (const auto &[d, b] : facts.overrides)
        derived[b].push_back(d);

    std::set<std::string> seen;
    std::vector<std::string> work;
    auto push = [&](const std::string &fn) {
        if (seen.insert(fn).second)
            work.push_back(fn);
    };
    for (const auto &[caller, callees] : graph)
        if (lastComponent(caller) == start)
            push(caller);
    // A definitional function with no outgoing repo calls still
    // matters for read attribution: seed it even without call edges.
    for (const ConfigRead &r : facts.reads)
        if (lastComponent(r.func) == start)
            push(r.func);
    while (!work.empty()) {
        const std::string fn = work.back();
        work.pop_back();
        auto it = graph.find(fn);
        if (it != graph.end())
            for (const std::string &callee : it->second)
                push(callee);
        auto ov = derived.find(fn);
        if (ov != derived.end())
            for (const std::string &impl : ov->second)
                push(impl);
    }
    return seen;
}

// ------------------------------------------------------------ invariants

struct Closures {
    std::set<std::string> frontEnd, sharedTlb, substrate;
};

/** Reads that feed front-end state: reads by front-end-closure
 *  classes, plus engine-class reads not proven per-substrate
 *  ("front" alias, or unclassified — fail closed). Definitional
 *  functions (frontEndKey & friends) are excluded. */
bool
isFrontEndRead(const ConfigRead &r, const Closures &closures,
               const std::set<std::string> &definitional)
{
    if (r.write || definitional.count(r.func))
        return false;
    if (closures.frontEnd.count(r.cls))
        return true;
    if (isEngineClass(r.cls))
        return r.base != "indexed";
    return false;
}

void
checkKeyCompleteness(const Facts &facts, const Closures &closures,
                     const std::set<std::string> &definitional,
                     const std::set<std::string> &effKey,
                     const std::set<std::string> &effGeom,
                     Reporter &rep)
{
    for (const ConfigRead &r : facts.reads) {
        const bool tlbRead = closures.sharedTlb.count(r.cls) &&
                             !definitional.count(r.func) && !r.write;
        if (!isFrontEndRead(r, closures, definitional) && !tlbRead)
            continue;
        for (const std::string &leaf :
             expandToLeaves(r.path, facts.configFields)) {
            if (effKey.count(leaf))
                continue;
            if (tlbRead && effGeom.count(leaf))
                continue;
            rep.error(
                "front-end-key completeness: config field '" + leaf +
                "' is read on the front-end path by " + r.cls +
                "::" + lastComponent(r.func) +
                " but is not serialized in " + kKeyFn + "()" +
                (tlbRead ? std::string(" or ") + kGeomFn + "()" : "") +
                Reporter::at(r.file, r.line));
        }
    }
}

void
checkKeyMinimality(const Facts &facts, const Closures &closures,
                   const std::set<std::string> &definitional,
                   const std::set<std::string> &effKey, Reporter &rep)
{
    std::set<std::string> readLeaves;
    for (const ConfigRead &r : facts.reads) {
        const bool tlbRead = closures.sharedTlb.count(r.cls) &&
                             !definitional.count(r.func) && !r.write;
        if (!isFrontEndRead(r, closures, definitional) && !tlbRead)
            continue;
        auto leaves = expandToLeaves(r.path, facts.configFields);
        readLeaves.insert(leaves.begin(), leaves.end());
    }
    for (const std::string &leaf : effKey) {
        if (readLeaves.count(leaf))
            continue;
        const std::string top = leaf.substr(0, leaf.find('.'));
        if (kKeyReadAllowlist.count(leaf) ||
            kKeyReadAllowlist.count(top))
            continue;
        rep.warning("front-end-key minimality: key field '" + leaf +
                    "' is serialized in " + std::string(kKeyFn) +
                    "() but no front-end code reads it (stale key "
                    "entry, or add it to kKeyReadAllowlist with a "
                    "reason)");
    }
}

void
checkHashCompleteness(const Facts &facts,
                      const std::set<std::string> &effHash,
                      Reporter &rep)
{
    for (const std::string &f : facts.configFields) {
        if (!isLeafField(f, facts.configFields))
            continue;
        if (!effHash.count(f))
            rep.error("config-hash completeness: SystemConfig field "
                      "'" +
                      f + "' is not mixed into " +
                      std::string(kHashFn) + "()");
    }
    for (const std::string &f : effHash)
        if (!facts.configFields.count(f))
            rep.error("config-hash completeness: " +
                      std::string(kHashFn) + "() mixes '" + f +
                      "' but SystemConfig declares no such field "
                      "(stale mix)");
}

void
checkSubstrateIsolation(const Facts &facts, const Closures &closures,
                        Reporter &rep)
{
    // Mutators: per-substrate-only classes. Shared-TLB classes (the
    // page walker legitimately fills the front end's translation
    // cache) and classes also owned by the front end are excluded.
    // Neutral value types (StatGroup, Rng, ...) are per-class
    // plumbing owned on both sides; excluding them keeps e.g.
    // CpuModel::resetMeasurement's stats_.resetAll() from reading as
    // a front-end mutation.
    std::set<std::string> mutators;
    for (const std::string &cls : closures.substrate)
        if (!closures.frontEnd.count(cls) &&
            !closures.sharedTlb.count(cls) &&
            !kNeutralTypes.count(cls))
            mutators.insert(cls);
    std::set<std::string> targets;
    for (const std::string &cls : closures.frontEnd)
        if (!closures.substrate.count(cls) &&
            !closures.sharedTlb.count(cls) &&
            !kNeutralTypes.count(cls))
            targets.insert(cls);

    // Run-phase reachability: everything callable from the engine's
    // methods. Construction (CXXConstructExpr) contributes no call
    // edges, so setup-time touches of front-end state stay legal.
    std::set<std::string> reachable;
    {
        std::map<std::string, std::vector<std::string>> graph;
        for (const auto &[caller, callee] : facts.calls)
            graph[caller].push_back(callee);
        std::map<std::string, std::vector<std::string>> derived;
        for (const auto &[d, b] : facts.overrides)
            derived[b].push_back(d);
        std::vector<std::string> work;
        auto push = [&](const std::string &fn) {
            if (reachable.insert(fn).second)
                work.push_back(fn);
        };
        for (const auto &[caller, callees] : graph)
            if (isEngineClass(caller.substr(
                    0, caller.rfind("::") == std::string::npos
                           ? 0
                           : caller.rfind("::"))))
                push(caller);
        for (const Mutation &m : facts.mutations)
            if (isEngineClass(m.cls))
                push(m.func);
        while (!work.empty()) {
            const std::string fn = work.back();
            work.pop_back();
            auto it = graph.find(fn);
            if (it != graph.end())
                for (const std::string &callee : it->second)
                    push(callee);
            auto ov = derived.find(fn);
            if (ov != derived.end())
                for (const std::string &impl : ov->second)
                    push(impl);
        }
    }

    for (const Mutation &m : facts.mutations) {
        if (!mutators.count(m.cls) || !targets.count(m.target))
            continue;
        if (!reachable.count(m.func))
            continue;
        rep.error(
            "substrate isolation: per-substrate class " + m.cls +
            " (" + lastComponent(m.func) + ") " +
            (m.kind == "write" ? "writes member '" : "calls mutating '") +
            m.name + "' of front-end-owned " + m.target +
            " on a path reachable from " + kEngineClass +
            Reporter::at(m.file, m.line));
    }
}

std::string
moduleOf(const std::string &path)
{
    if (path.rfind("src/", 0) != 0)
        return "";
    const auto end = path.find('/', 4);
    return end == std::string::npos ? "" : path.substr(4, end - 4);
}

void
checkLayering(const Facts &facts, Reporter &rep)
{
    std::map<std::string, std::set<std::string>> moduleEdges;
    for (const auto &[from, to] : facts.includes) {
        const std::string fromMod = moduleOf(from);
        const std::string toMod = moduleOf(to);
        if (fromMod.empty() || toMod.empty() || fromMod == toMod)
            continue;
        for (const std::string &mod : {fromMod, toMod}) {
            if (!kLayerRank.count(mod))
                rep.error("layering: unknown src/ module '" + mod +
                          "' (add it to kLayerRank in "
                          "tools/analyze/analyze_check.cc)");
        }
        if (!kLayerRank.count(fromMod) || !kLayerRank.count(toMod))
            continue;
        if (kLayerRank.at(toMod) > kLayerRank.at(fromMod))
            rep.error("layering: upward include " + from + " -> " +
                      to + " (" + fromMod + " rank " +
                      std::to_string(kLayerRank.at(fromMod)) +
                      " < " + toMod + " rank " +
                      std::to_string(kLayerRank.at(toMod)) + ")");
        moduleEdges[fromMod].insert(toMod);
    }

    // Acyclicity, independent of the rank assignment.
    std::map<std::string, int> state; // 0 new, 1 on stack, 2 done
    std::vector<std::string> cycle;
    std::function<bool(const std::string &)> dfs =
        [&](const std::string &mod) {
            state[mod] = 1;
            for (const std::string &next : moduleEdges[mod]) {
                if (state[next] == 1) {
                    cycle = {mod, next};
                    return true;
                }
                if (state[next] == 0 && dfs(next))
                    return true;
            }
            state[mod] = 2;
            return false;
        };
    for (const auto &[mod, edges] : moduleEdges)
        if (state[mod] == 0 && dfs(mod)) {
            rep.error("layering: include cycle through modules '" +
                      cycle[0] + "' and '" + cycle[1] + "'");
            break;
        }
}

void
checkOrphanStats(const Facts &facts, Reporter &rep)
{
    std::set<std::string> getNames;
    std::set<std::pair<std::string, std::string>> handleReads;
    std::set<std::string> dumpedClasses;
    for (const StatRead &r : facts.statReads) {
        if (r.kind == "get")
            getNames.insert(r.name);
        else if (r.kind == "handle")
            handleReads.emplace(r.cls, r.member);
        else if (r.kind == "dump" && !r.cls.empty())
            dumpedClasses.insert(r.cls);
    }
    std::set<std::pair<std::string, std::string>> reported;
    for (const StatReg &reg : facts.statRegs) {
        if (getNames.count(reg.name) || getNames.count("<dynamic>"))
            continue;
        if (!reg.member.empty() &&
            handleReads.count({reg.cls, reg.member}))
            continue;
        if (dumpedClasses.count(reg.cls))
            continue;
        if (!reported.emplace(reg.cls, reg.name).second)
            continue;
        rep.warning("orphan stat: '" + reg.name + "' registered by " +
                    reg.cls +
                    " is never collected (no StatGroup::get, no "
                    "handle read, no dump)" +
                    Reporter::at(reg.file, reg.line));
    }
}

void
checkOwnershipMap(const Facts &facts, const Closures &closures,
                  Reporter &rep)
{
    const std::string substrateCls =
        std::string(kEngineClass) + "::Substrate";
    const std::set<std::string> frontEndSide = {
        kEngineClass, std::string(kEngineClass) + "::CoreFrontEnd",
        std::string(kEngineClass) + "::TlbGroup"};

    bool sawSubstrate = false;
    for (const Member &m : facts.members) {
        if (!m.owning || m.type.empty())
            continue;
        const bool nestedOfEngine =
            m.type.rfind(std::string(kEngineClass) + "::", 0) == 0;
        if (m.cls == substrateCls) {
            sawSubstrate = true;
            if (!closures.substrate.count(m.type) &&
                !kNeutralTypes.count(m.type))
                rep.error("ownership map drift: " + substrateCls +
                          "::" + m.member + " owns a " + m.type +
                          ", which is not in the substrate closure; "
                          "extend kSubstrateRoots/kNeutralTypes or "
                          "move the member");
        } else if (frontEndSide.count(m.cls)) {
            if (!closures.frontEnd.count(m.type) &&
                !closures.sharedTlb.count(m.type) &&
                !kNeutralTypes.count(m.type) && !nestedOfEngine)
                rep.error("ownership map drift: " + m.cls + "::" +
                          m.member + " owns a " + m.type +
                          ", which is not in the front-end or "
                          "shared-TLB closure; extend "
                          "kFrontEndRoots/kSharedTlbRoots/"
                          "kNeutralTypes or move the member");
        }
    }
    if (!sawSubstrate)
        rep.error("facts contain no owning members for " +
                  substrateCls +
                  " — extraction did not cover the engine TU, so "
                  "every closure-based check would be vacuous");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string factsPath;
    bool werror = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--facts" && i + 1 < argc) {
            factsPath = argv[++i];
        } else if (arg == "--werror") {
            werror = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: seesaw_analyze_check --facts "
                         "FILE [--werror]\n";
            return 0;
        } else {
            std::cerr << "error: unknown argument '" << arg << "'\n";
            return 2;
        }
    }
    if (factsPath.empty()) {
        std::cerr << "error: --facts FILE is required\n";
        return 2;
    }

    Facts facts;
    std::string parseError;
    if (!loadFacts(factsPath, facts, parseError)) {
        std::cerr << "error: " << factsPath << ": " << parseError
                  << "\n";
        return 2;
    }

    Reporter rep;

    // Fail closed on structurally empty facts: an extraction bug must
    // not look like a clean program.
    if (facts.configFields.empty())
        rep.error("facts contain no config_fields (SystemConfig not "
                  "seen by extraction)");
    if (facts.keyFields.empty())
        rep.error("facts contain no key_fields (" +
                  std::string(kKeyFn) + "() not seen by extraction)");
    if (facts.hashFields.empty())
        rep.error("facts contain no hash_fields (" +
                  std::string(kHashFn) + "() not seen by extraction)");

    Closures closures;
    closures.frontEnd = ownershipClosure(kFrontEndRoots, facts.members);
    closures.sharedTlb =
        ownershipClosure(kSharedTlbRoots, facts.members);
    closures.substrate =
        ownershipClosure(kSubstrateRoots, facts.members);

    // Definitional functions and everything they call: their reads
    // define the key/geometry/hash sets instead of consuming config.
    std::set<std::string> definitional;
    std::set<std::string> effKey = facts.keyFields;
    std::set<std::string> effGeom = facts.geomFields;
    std::set<std::string> effHash = facts.hashFields;
    for (const char *fn : {kKeyFn, kGeomFn, kHashFn, kCompatFn}) {
        const auto reach = reachableFrom(fn, facts);
        definitional.insert(reach.begin(), reach.end());
        // Helper functions called from the definitional roots
        // contribute their reads to the corresponding set ("sees
        // through helper functions").
        for (const ConfigRead &r : facts.reads) {
            if (!reach.count(r.func) || r.write)
                continue;
            if (fn == kKeyFn)
                effKey.insert(r.path);
            else if (fn == kGeomFn)
                effGeom.insert(r.path);
            else if (fn == kHashFn)
                effHash.insert(r.path);
        }
    }
    effKey = expandAll(effKey, facts.configFields);
    effGeom = expandAll(effGeom, facts.configFields);
    effHash = expandAll(effHash, facts.configFields);

    if (!facts.configFields.empty() && !facts.keyFields.empty()) {
        checkKeyCompleteness(facts, closures, definitional, effKey,
                             effGeom, rep);
        checkKeyMinimality(facts, closures, definitional, effKey,
                           rep);
    }
    if (!facts.configFields.empty() && !facts.hashFields.empty())
        checkHashCompleteness(facts, effHash, rep);
    checkSubstrateIsolation(facts, closures, rep);
    checkLayering(facts, rep);
    checkOrphanStats(facts, rep);
    checkOwnershipMap(facts, closures, rep);

    std::sort(rep.errors.begin(), rep.errors.end());
    std::sort(rep.warnings.begin(), rep.warnings.end());
    for (const std::string &e : rep.errors)
        std::cout << "error: " << e << "\n";
    for (const std::string &w : rep.warnings)
        std::cout << "warning: " << w << "\n";

    std::cout << "seesaw-analyze: " << facts.tus << " TUs, "
              << facts.configFields.size() << " config paths, "
              << facts.reads.size() << " reads, "
              << facts.statRegs.size() << " stat registrations, "
              << facts.ignores << " ignored sites -> "
              << rep.errors.size() << " error(s), "
              << rep.warnings.size() << " warning(s)"
              << (werror && !rep.warnings.empty()
                      ? " [warnings-as-errors]"
                      : "")
              << "\n";
    if (!rep.errors.empty())
        return 1;
    if (werror && !rep.warnings.empty())
        return 1;
    return 0;
}
