#include "RawRandomCheck.hh"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/Support/Regex.h"

using namespace clang::ast_matchers;

namespace clang::tidy::seesaw {

RawRandomCheck::RawRandomCheck(StringRef name, ClangTidyContext *context)
    : ClangTidyCheck(name, context),
      allowedFilePattern_(
          Options.get("AllowedFilePattern", "src/common/random\\.(hh|cc)"))
{
}

void
RawRandomCheck::storeOptions(ClangTidyOptions::OptionMap &opts)
{
    Options.store(opts, "AllowedFilePattern", allowedFilePattern_);
}

void
RawRandomCheck::registerMatchers(ast_matchers::MatchFinder *finder)
{
    // C-library entropy sources.
    finder->addMatcher(
        callExpr(callee(functionDecl(hasAnyName(
                     "::rand", "::srand", "::random", "::srandom",
                     "::rand_r", "::drand48", "::lrand48", "::mrand48",
                     "::erand48", "::nrand48", "::jrand48",
                     "::srand48"))))
            .bind("call"),
        this);

    // Any mention of a <random> engine, adaptor, device or
    // distribution: declarations, temporaries, template arguments
    // spelled in source. Both the convenience typedefs and the
    // underlying templates are listed so a match fires whichever
    // spelling the code uses.
    finder->addMatcher(
        typeLoc(loc(qualType(hasDeclaration(namedDecl(hasAnyName(
                    "::std::random_device",
                    "::std::default_random_engine",
                    "::std::mt19937",
                    "::std::mt19937_64",
                    "::std::minstd_rand",
                    "::std::minstd_rand0",
                    "::std::knuth_b",
                    "::std::ranlux24",
                    "::std::ranlux48",
                    "::std::ranlux24_base",
                    "::std::ranlux48_base",
                    "::std::mersenne_twister_engine",
                    "::std::linear_congruential_engine",
                    "::std::subtract_with_carry_engine",
                    "::std::discard_block_engine",
                    "::std::independent_bits_engine",
                    "::std::shuffle_order_engine",
                    "::std::uniform_int_distribution",
                    "::std::uniform_real_distribution",
                    "::std::bernoulli_distribution",
                    "::std::binomial_distribution",
                    "::std::geometric_distribution",
                    "::std::negative_binomial_distribution",
                    "::std::poisson_distribution",
                    "::std::exponential_distribution",
                    "::std::gamma_distribution",
                    "::std::weibull_distribution",
                    "::std::extreme_value_distribution",
                    "::std::normal_distribution",
                    "::std::lognormal_distribution",
                    "::std::chi_squared_distribution",
                    "::std::cauchy_distribution",
                    "::std::fisher_f_distribution",
                    "::std::student_t_distribution",
                    "::std::discrete_distribution",
                    "::std::piecewise_constant_distribution",
                    "::std::piecewise_linear_distribution"))))))
            .bind("type"),
        this);
}

void
RawRandomCheck::check(const ast_matchers::MatchFinder::MatchResult &result)
{
    SourceLocation loc;
    std::string what;
    if (const auto *call = result.Nodes.getNodeAs<CallExpr>("call")) {
        loc = call->getBeginLoc();
        if (const FunctionDecl *fd = call->getDirectCallee())
            what = fd->getQualifiedNameAsString();
        else
            what = "C random function";
    } else if (const auto *tl = result.Nodes.getNodeAs<TypeLoc>("type")) {
        loc = tl->getBeginLoc();
        what = tl->getType().getAsString();
    } else {
        return;
    }

    if (loc.isInvalid())
        return;
    const SourceManager &sm = *result.SourceManager;
    loc = sm.getExpansionLoc(loc);
    // Only diagnose project code, and skip the Rng implementation.
    if (sm.isInSystemHeader(loc))
        return;
    const StringRef file = sm.getFilename(loc);
    if (llvm::Regex(allowedFilePattern_).match(file))
        return;

    diag(loc,
         "'%0' bypasses the seeded Rng streams; all randomness must "
         "flow through seesaw::Rng (src/common/random.hh) so runs are "
         "reproducible bit-for-bit")
        << what;
}

} // namespace clang::tidy::seesaw
