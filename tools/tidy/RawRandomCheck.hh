/**
 * @file
 * seesaw-raw-random: flags randomness that bypasses the seeded
 * seesaw::Rng streams — std::rand and friends, std::random_device,
 * and any <random> engine or distribution — anywhere outside
 * src/common/random.{hh,cc}.
 *
 * Rule: every stochastic decision in the simulator draws from an
 * explicitly seeded Rng so that a (workload, config, seed) cell is
 * reproducible bit-for-bit across runs, platforms and standard
 * libraries. <random> distributions are implementation-defined, and
 * default- or literal-seeded engines create hidden streams that break
 * SEESAW_JOBS-independence.
 */

#ifndef SEESAW_TOOLS_TIDY_RAW_RANDOM_CHECK_HH
#define SEESAW_TOOLS_TIDY_RAW_RANDOM_CHECK_HH

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::seesaw {

class RawRandomCheck : public ClangTidyCheck
{
  public:
    RawRandomCheck(StringRef name, ClangTidyContext *context);

    bool
    isLanguageVersionSupported(const LangOptions &lang_opts) const override
    {
        return lang_opts.CPlusPlus;
    }

    void registerMatchers(ast_matchers::MatchFinder *finder) override;
    void check(const ast_matchers::MatchFinder::MatchResult &result)
        override;
    void storeOptions(ClangTidyOptions::OptionMap &opts) override;

  private:
    /** Files (regex over the diagnostic's path) where raw randomness
     *  is allowed — the Rng implementation itself. */
    const std::string allowedFilePattern_;
};

} // namespace clang::tidy::seesaw

#endif // SEESAW_TOOLS_TIDY_RAW_RANDOM_CHECK_HH
