/**
 * @file
 * seesaw-tidy: the project's clang-tidy module. Registers the nine
 * seesaw-* checks that machine-check the determinism, hot-path, and
 * concurrency conventions every campaign-level guarantee rests on
 * (bit-identical serial-vs-parallel runs, the cores=1 golden, the
 * pinned nightly, deadlock-free lock ordering).
 *
 * Built as an out-of-tree plugin and loaded with
 *   clang-tidy -load libSeesawTidy.so -checks='seesaw-*' ...
 * See tools/tidy/CMakeLists.txt for the build gating and README.md
 * ("Correctness tooling") for usage.
 */

#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "AuditSideEffectCheck.hh"
#include "LockInHotPathCheck.hh"
#include "LockOrderCheck.hh"
#include "NondeterministicIterationCheck.hh"
#include "PointerOrderingCheck.hh"
#include "RawRandomCheck.hh"
#include "StringStatLookupCheck.hh"
#include "UnguardedSharedStateCheck.hh"
#include "WallclockInSimCheck.hh"

namespace clang::tidy::seesaw {

class SeesawTidyModule : public ClangTidyModule
{
  public:
    void
    addCheckFactories(ClangTidyCheckFactories &factories) override
    {
        factories.registerCheck<RawRandomCheck>("seesaw-raw-random");
        factories.registerCheck<NondeterministicIterationCheck>(
            "seesaw-nondeterministic-iteration");
        factories.registerCheck<WallclockInSimCheck>(
            "seesaw-wallclock-in-sim");
        factories.registerCheck<StringStatLookupCheck>(
            "seesaw-string-stat-lookup");
        factories.registerCheck<PointerOrderingCheck>(
            "seesaw-pointer-ordering");
        factories.registerCheck<AuditSideEffectCheck>(
            "seesaw-audit-side-effect");
        factories.registerCheck<LockOrderCheck>("seesaw-lock-order");
        factories.registerCheck<UnguardedSharedStateCheck>(
            "seesaw-unguarded-shared-state");
        factories.registerCheck<LockInHotPathCheck>(
            "seesaw-lock-in-hot-path");
    }
};

} // namespace clang::tidy::seesaw

namespace clang::tidy {

// Register the module with clang-tidy's global registry; the -load
// mechanism picks it up when the shared object is dlopened.
static ClangTidyModuleRegistry::Add<seesaw::SeesawTidyModule>
    seesawTidyModuleInit("seesaw-tidy-module",
                         "Determinism and hot-path discipline checks "
                         "for the SEESAW simulator.");

// Anchor so the registration is not optimised away when the object
// file is placed in a static archive during development builds.
volatile int seesawTidyModuleAnchorSource =
    0; // NOLINT(misc-use-internal-linkage): anchor needs external linkage

} // namespace clang::tidy
