#include "StringStatLookupCheck.hh"

#include "clang/AST/ASTContext.h"
#include "clang/AST/DeclCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/Support/Regex.h"

using namespace clang::ast_matchers;

namespace clang::tidy::seesaw {

StringStatLookupCheck::StringStatLookupCheck(StringRef name,
                                             ClangTidyContext *context)
    : ClangTidyCheck(name, context),
      allowedFunctionPattern_(Options.get(
          "AllowedFunctionPattern",
          "(collect|[Rr]esult|dump|report|finish|snapshot|coverage|"
          "accuracy|summar)")),
      statGroupClass_(
          Options.get("StatGroupClass", "::seesaw::StatGroup"))
{
}

void
StringStatLookupCheck::storeOptions(ClangTidyOptions::OptionMap &opts)
{
    Options.store(opts, "AllowedFunctionPattern", allowedFunctionPattern_);
    Options.store(opts, "StatGroupClass", statGroupClass_);
}

void
StringStatLookupCheck::registerMatchers(ast_matchers::MatchFinder *finder)
{
    finder->addMatcher(
        cxxMemberCallExpr(
            callee(cxxMethodDecl(
                hasAnyName("scalar", "distribution", "get"),
                ofClass(hasName(statGroupClass_)))),
            hasAncestor(functionDecl().bind("func")))
            .bind("call"),
        this);
}

void
StringStatLookupCheck::check(
    const ast_matchers::MatchFinder::MatchResult &result)
{
    const auto *call =
        result.Nodes.getNodeAs<CXXMemberCallExpr>("call");
    const auto *func = result.Nodes.getNodeAs<FunctionDecl>("func");
    if (call == nullptr || func == nullptr)
        return;

    // Handle-caching happens in constructor init lists and bodies;
    // both live inside the CXXConstructorDecl.
    if (isa<CXXConstructorDecl>(func) || isa<CXXDestructorDecl>(func))
        return;

    // Cold collection/reporting paths may look up by name.
    const std::string fname = func->getNameAsString();
    if (llvm::Regex(allowedFunctionPattern_).match(fname))
        return;

    const SourceManager &sm = *result.SourceManager;
    const SourceLocation loc = sm.getExpansionLoc(call->getBeginLoc());
    if (loc.isInvalid() || sm.isInSystemHeader(loc))
        return;

    diag(loc,
         "string-keyed stat lookup in '%0' runs a map lookup per call; "
         "cache a StatScalar* handle at construction (hot-path "
         "convention, PR 3) or do the lookup in a collection function")
        << fname;
}

} // namespace clang::tidy::seesaw
