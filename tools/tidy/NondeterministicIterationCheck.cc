#include "NondeterministicIterationCheck.hh"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/Support/Regex.h"

using namespace clang::ast_matchers;

namespace clang::tidy::seesaw {

NondeterministicIterationCheck::NondeterministicIterationCheck(
    StringRef name, ClangTidyContext *context)
    : ClangTidyCheck(name, context),
      containerPattern_(Options.get(
          "ContainerPattern",
          "unordered_(map|set|multimap|multiset)")),
      emitterCallPattern_(Options.get(
          "EmitterCallPattern",
          "^(scalar|distribution|sample|field|column|write|print|dump|"
          "emit)")),
      emitterClassPattern_(Options.get(
          "EmitterClassPattern",
          "(Stat|Sink|Json|Csv|Writer|stream)"))
{
}

void
NondeterministicIterationCheck::storeOptions(
    ClangTidyOptions::OptionMap &opts)
{
    Options.store(opts, "ContainerPattern", containerPattern_);
    Options.store(opts, "EmitterCallPattern", emitterCallPattern_);
    Options.store(opts, "EmitterClassPattern", emitterClassPattern_);
}

void
NondeterministicIterationCheck::registerMatchers(
    ast_matchers::MatchFinder *finder)
{
    finder->addMatcher(
        cxxForRangeStmt(hasAncestor(functionDecl().bind("func")))
            .bind("loop"),
        this);
}

void
NondeterministicIterationCheck::check(
    const ast_matchers::MatchFinder::MatchResult &result)
{
    const auto *loop = result.Nodes.getNodeAs<CXXForRangeStmt>("loop");
    const auto *func = result.Nodes.getNodeAs<FunctionDecl>("func");
    if (loop == nullptr || func == nullptr || loop->getBody() == nullptr)
        return;

    // Only loops whose range is an unordered container.
    const Expr *range = loop->getRangeInit();
    if (range == nullptr)
        return;
    const std::string range_type =
        range->getType().getCanonicalType().getAsString();
    if (!llvm::Regex(containerPattern_).match(range_type))
        return;

    ASTContext &ctx = *result.Context;
    const SourceManager &sm = *result.SourceManager;
    const SourceLocation loop_loc =
        sm.getExpansionLoc(loop->getBeginLoc());
    if (loop_loc.isInvalid() || sm.isInSystemHeader(loop_loc))
        return;

    const Stmt &body = *loop->getBody();
    llvm::Regex emitter_call_re(emitterCallPattern_);
    llvm::Regex emitter_class_re(emitterClassPattern_);

    // (a) Emission inside the body: member calls on stat/sink/writer
    // objects, or stream insertion.
    for (const auto &m :
         match(findAll(cxxMemberCallExpr().bind("c")), body, ctx)) {
        const auto *c = m.getNodeAs<CXXMemberCallExpr>("c");
        if (c == nullptr || c->getMethodDecl() == nullptr)
            continue;
        const std::string callee = c->getMethodDecl()->getNameAsString();
        if (!emitter_call_re.match(callee))
            continue;
        const Expr *obj = c->getImplicitObjectArgument();
        if (obj == nullptr)
            continue;
        const std::string obj_type =
            obj->getType().getCanonicalType().getAsString();
        if (!emitter_class_re.match(obj_type))
            continue;
        diag(loop_loc,
             "iterating a hash container ('%0') while emitting via "
             "'%1' makes output depend on hash order; emit from an "
             "ordered container or sort first")
            << range_type << callee;
        return;
    }
    for (const auto &m : match(
             findAll(cxxOperatorCallExpr(hasOverloadedOperatorName("<<"))
                         .bind("op")),
             body, ctx)) {
        const auto *op = m.getNodeAs<CXXOperatorCallExpr>("op");
        if (op == nullptr || op->getNumArgs() < 1)
            continue;
        const std::string lhs_type = op->getArg(0)
                                         ->getType()
                                         .getCanonicalType()
                                         .getAsString();
        if (!emitter_class_re.match(lhs_type))
            continue;
        diag(loop_loc,
             "iterating a hash container ('%0') while streaming with "
             "'operator<<' makes output depend on hash order; emit "
             "from an ordered container or sort first")
            << range_type;
        return;
    }

    // (b) Appends to containers declared outside the loop that are
    // never sorted later in the same function (collect-then-sort is
    // the sanctioned remediation and stays silent).
    for (const auto &m : match(
             findAll(cxxMemberCallExpr(
                         callee(cxxMethodDecl(hasAnyName(
                             "push_back", "emplace_back", "append"))),
                         on(ignoringParenImpCasts(
                             declRefExpr(to(varDecl().bind("dest"))))))
                         .bind("append")),
             body, ctx)) {
        const auto *dest = m.getNodeAs<VarDecl>("dest");
        const auto *append = m.getNodeAs<CXXMemberCallExpr>("append");
        if (dest == nullptr || append == nullptr)
            continue;

        // A container declared inside the loop body is per-element
        // scratch; hash order cannot leak through it.
        const SourceRange loop_range = loop->getSourceRange();
        if (sm.isPointWithin(dest->getLocation(), loop_range.getBegin(),
                             loop_range.getEnd()))
            continue;

        // Sorted afterwards (std::sort(dest.begin(), ...) anywhere in
        // the enclosing function)? Then the collected order is
        // normalised before it can be observed.
        bool sorted_later = false;
        if (const Stmt *fbody = func->getBody()) {
            sorted_later =
                !match(findAll(callExpr(
                           callee(functionDecl(
                               hasAnyName("sort", "stable_sort"))),
                           hasAnyArgument(cxxMemberCallExpr(
                               on(ignoringParenImpCasts(declRefExpr(
                                   to(varDecl(equalsNode(dest)))))))))),
                       *fbody, ctx)
                     .empty();
        }
        if (sorted_later)
            continue;

        diag(sm.getExpansionLoc(append->getBeginLoc()),
             "appending to '%0' while iterating a hash container "
             "('%1') captures hash order; sort '%0' before use or "
             "iterate an ordered container")
            << dest->getName() << range_type;
        return;
    }
}

} // namespace clang::tidy::seesaw
