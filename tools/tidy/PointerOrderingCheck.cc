#include "PointerOrderingCheck.hh"

#include "clang/AST/ASTContext.h"
#include "clang/AST/DeclTemplate.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::seesaw {

namespace {

/** The ClassTemplateSpecializationDecl behind @p type, if any. */
const ClassTemplateSpecializationDecl *
specializationOf(QualType type)
{
    const auto *record = type.getCanonicalType()->getAs<RecordType>();
    if (record == nullptr)
        return nullptr;
    return dyn_cast<ClassTemplateSpecializationDecl>(record->getDecl());
}

/** True when @p spec is std::map/set/multimap/multiset keyed by a
 *  pointer and ordered by the default std::less. */
bool
isPointerKeyedOrderedContainer(const ClassTemplateSpecializationDecl *spec)
{
    if (spec == nullptr)
        return false;
    const std::string name = spec->getQualifiedNameAsString();
    unsigned comparator_index = 0;
    if (name == "std::map" || name == "std::multimap")
        comparator_index = 2;
    else if (name == "std::set" || name == "std::multiset")
        comparator_index = 1;
    else
        return false;

    const TemplateArgumentList &args = spec->getTemplateArgs();
    if (args.size() <= comparator_index)
        return false;
    if (args[0].getKind() != TemplateArgument::Type ||
        !args[0].getAsType()->isPointerType())
        return false;
    if (args[comparator_index].getKind() != TemplateArgument::Type)
        return false;
    const auto *cmp = specializationOf(args[comparator_index].getAsType());
    return cmp != nullptr &&
           cmp->getQualifiedNameAsString() == "std::less";
}

/** Element type of the container @p call (a .begin()/.end() member
 *  call) iterates, or a null type. */
QualType
containerElementType(const CXXMemberCallExpr *call)
{
    const auto *spec = specializationOf(
        call->getImplicitObjectArgument()->getType());
    if (spec == nullptr || spec->getTemplateArgs().size() == 0 ||
        spec->getTemplateArgs()[0].getKind() != TemplateArgument::Type)
        return {};
    return spec->getTemplateArgs()[0].getAsType();
}

} // namespace

void
PointerOrderingCheck::registerMatchers(ast_matchers::MatchFinder *finder)
{
    // Relational comparison of two object pointers.
    finder->addMatcher(
        binaryOperator(hasAnyOperatorName("<", ">", "<=", ">="),
                       hasLHS(expr(hasType(pointerType()))),
                       hasRHS(expr(hasType(pointerType()))))
            .bind("cmp"),
        this);

    // std::map/std::set declarations keyed by pointer.
    finder->addMatcher(
        valueDecl(hasType(qualType(hasDeclaration(
                      classTemplateSpecializationDecl(hasAnyName(
                          "::std::map", "::std::set", "::std::multimap",
                          "::std::multiset"))))))
            .bind("decl"),
        this);

    // Comparator-less std::sort over pointer elements.
    finder->addMatcher(
        callExpr(callee(functionDecl(hasAnyName("sort", "stable_sort"))),
                 argumentCountIs(2))
            .bind("sort"),
        this);
}

void
PointerOrderingCheck::check(
    const ast_matchers::MatchFinder::MatchResult &result)
{
    const SourceManager &sm = *result.SourceManager;

    auto emit = [&](SourceLocation loc, StringRef what) {
        loc = sm.getExpansionLoc(loc);
        if (loc.isInvalid() || sm.isInSystemHeader(loc))
            return;
        diag(loc,
             "%0 orders by raw pointer value, which varies run to run "
             "(ASLR, allocator state); key or sort by a stable id "
             "instead")
            << what;
    };

    if (const auto *cmp =
            result.Nodes.getNodeAs<BinaryOperator>("cmp")) {
        emit(cmp->getOperatorLoc(), "relational pointer comparison");
        return;
    }

    if (const auto *decl = result.Nodes.getNodeAs<ValueDecl>("decl")) {
        if (isPointerKeyedOrderedContainer(
                specializationOf(decl->getType())))
            emit(decl->getLocation(),
                 "pointer-keyed map/set with the default comparator");
        return;
    }

    if (const auto *sort = result.Nodes.getNodeAs<CallExpr>("sort")) {
        const auto *begin = dyn_cast<CXXMemberCallExpr>(
            sort->getArg(0)->IgnoreParenImpCasts());
        if (begin == nullptr || begin->getMethodDecl() == nullptr ||
            begin->getMethodDecl()->getNameAsString() != "begin")
            return;
        const QualType elem = containerElementType(begin);
        if (!elem.isNull() && elem->isPointerType())
            emit(sort->getBeginLoc(),
                 "comparator-less sort of pointer elements");
    }
}

} // namespace clang::tidy::seesaw
