#include "LockInHotPathCheck.hh"

#include <deque>

#include "LockUtil.hh"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/Support/Regex.h"

using namespace clang::ast_matchers;

namespace clang::tidy::seesaw {

LockInHotPathCheck::LockInHotPathCheck(StringRef name,
                                       ClangTidyContext *context)
    : ClangTidyCheck(name, context),
      hotPathRootPattern_(Options.get(
          "HotPathRootPattern",
          "^seesaw::(SimEngine::(run|step|runLoop)|"
          "CoreComplex::(doMemoryAccess|doInstructionFetches)|"
          "L1Cache::access|Tlb::lookup|TlbHierarchy::lookup|"
          "TranslationCache::lookup)"))
{
}

void
LockInHotPathCheck::storeOptions(ClangTidyOptions::OptionMap &opts)
{
    Options.store(opts, "HotPathRootPattern", hotPathRootPattern_);
}

void
LockInHotPathCheck::registerMatchers(ast_matchers::MatchFinder *finder)
{
    finder->addMatcher(
        functionDecl(isDefinition(),
                     unless(isExpansionInSystemHeader()))
            .bind("fn"),
        this);
}

void
LockInHotPathCheck::collect(const Stmt *stmt, FunctionInfo &info)
{
    if (stmt == nullptr)
        return;

    if (const auto *declStmt = dyn_cast<DeclStmt>(stmt)) {
        for (const Decl *decl : declStmt->decls()) {
            const auto *var = dyn_cast<VarDecl>(decl);
            if (var == nullptr)
                continue;
            const std::string type = canonicalTypeString(var);
            if (!isLockGuardType(type))
                continue;
            std::string mutex;
            if (const Expr *init = var->getInit()) {
                if (const auto *ctor = dyn_cast<CXXConstructExpr>(
                        init->IgnoreParenImpCasts())) {
                    if (ctor->getNumArgs() > 0)
                        mutex = mutexName(ctor->getArg(0));
                }
            }
            info.acquisitions.push_back(
                {mutex, "scoped lock guard '" +
                            var->getNameAsString() + "'",
                 var->getBeginLoc()});
        }
    }

    if (const auto *call = dyn_cast<CallExpr>(stmt)) {
        if (const FunctionDecl *callee = call->getDirectCallee()) {
            const std::string calleeName =
                callee->getQualifiedNameAsString();
            info.callees.insert(calleeName);

            if (const auto *memberCall =
                    dyn_cast<CXXMemberCallExpr>(call)) {
                const Expr *object =
                    memberCall->getImplicitObjectArgument();
                std::string objType;
                if (object != nullptr && !object->getType().isNull()) {
                    QualType type = object->getType();
                    if (type->isPointerType())
                        type = type->getPointeeType();
                    objType = type.getCanonicalType()
                                  .getUnqualifiedType()
                                  .getAsString();
                }
                if (isMutexType(objType) &&
                    (callee->getNameAsString() == "lock" ||
                     callee->getNameAsString() == "try_lock")) {
                    info.acquisitions.push_back(
                        {mutexName(object),
                         "direct " + callee->getNameAsString() +
                             "() call",
                         call->getBeginLoc()});
                }
            }

            // Declarations annotated as acquiring or internally
            // taking a mutex count even when the body is elsewhere.
            for (const auto *attr :
                 callee->specific_attrs<AcquireCapabilityAttr>()) {
                for (const std::string &name : attrMutexNames(attr)) {
                    info.acquisitions.push_back(
                        {name, "call to '" + calleeName +
                                   "' which acquires it",
                         call->getBeginLoc()});
                }
            }
            for (const auto *attr :
                 callee->specific_attrs<LocksExcludedAttr>()) {
                for (const std::string &name : attrMutexNames(attr)) {
                    info.acquisitions.push_back(
                        {name, "call to '" + calleeName +
                                   "' which locks it internally",
                         call->getBeginLoc()});
                }
            }
        }
    }

    for (const Stmt *child : stmt->children())
        collect(child, info);
}

void
LockInHotPathCheck::check(
    const ast_matchers::MatchFinder::MatchResult &result)
{
    const auto *fn = result.Nodes.getNodeAs<FunctionDecl>("fn");
    if (fn == nullptr || !fn->doesThisDeclarationHaveABody())
        return;
    const Stmt *body = fn->getBody();
    if (body == nullptr)
        return;
    FunctionInfo &info = functions_[fn->getQualifiedNameAsString()];
    collect(body, info);
}

void
LockInHotPathCheck::onEndOfTranslationUnit()
{
    const llvm::Regex rootPattern(hotPathRootPattern_);

    // BFS from the root methods over the in-TU call graph,
    // remembering which root reached each function.
    std::map<std::string, std::string> reachedFrom;
    std::deque<std::string> queue;
    for (const auto &[name, info] : functions_) {
        (void)info;
        if (rootPattern.match(name)) {
            reachedFrom.emplace(name, name);
            queue.push_back(name);
        }
    }
    while (!queue.empty()) {
        const std::string current = queue.front();
        queue.pop_front();
        const auto it = functions_.find(current);
        if (it == functions_.end())
            continue;
        for (const std::string &callee : it->second.callees) {
            if (reachedFrom.count(callee))
                continue;
            reachedFrom.emplace(callee, reachedFrom[current]);
            queue.push_back(callee);
        }
    }

    for (const auto &[name, info] : functions_) {
        const auto reached = reachedFrom.find(name);
        if (reached == reachedFrom.end())
            continue;
        for (const Acquisition &acq : info.acquisitions) {
            const std::string what =
                acq.mutex.empty() ? std::string("a mutex")
                                  : "mutex '" + acq.mutex + "'";
            diag(acq.loc,
                 "%0 is acquired in '%1', reachable from per-access "
                 "hot path '%2' (%3); locks are banned on the hot "
                 "path — move synchronization to the harness/store "
                 "layer")
                << what << name << reached->second << acq.how;
        }
    }

    functions_.clear();
}

} // namespace clang::tidy::seesaw
