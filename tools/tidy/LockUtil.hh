/**
 * @file
 * Shared helpers for the concurrency checks (seesaw-lock-order,
 * seesaw-lock-in-hot-path): naming mutex expressions and recognising
 * acquisition sites in the AST.
 *
 * Mutexes are identified by declaration, not by text: a `MemberExpr`
 * or `DeclRefExpr` names the underlying `ValueDecl`'s qualified name,
 * so `mutex_` in two different classes never collides and the same
 * mutex reached through `this->` or a reference compares equal. The
 * same naming is applied to the argument expressions of thread-safety
 * attributes (`SEESAW_ACQUIRE`, `SEESAW_EXCLUDES`, ...), which is what
 * lets the checks follow lock flow across translation units: a call to
 * a function whose *declaration* says it acquires `LeaseQueue::mutex_`
 * contributes an edge even though its body lives elsewhere.
 */

#ifndef SEESAW_TOOLS_TIDY_LOCK_UTIL_HH
#define SEESAW_TOOLS_TIDY_LOCK_UTIL_HH

#include <string>
#include <vector>

#include "clang/AST/Attr.h"
#include "clang/AST/Decl.h"
#include "clang/AST/Expr.h"

namespace clang::tidy::seesaw {

/** Decl-based name of a mutex expression ("" when unrecognised). */
std::string mutexName(const Expr *expr);

/** Names of the argument mutexes of attribute @p attr (for the
 *  variadic capability attributes); unrecognised args are dropped. */
template <typename AttrT>
std::vector<std::string>
attrMutexNames(const AttrT *attr)
{
    std::vector<std::string> names;
    for (const Expr *arg : attr->args()) {
        std::string name = mutexName(arg);
        if (!name.empty())
            names.push_back(std::move(name));
    }
    return names;
}

/** Whether @p type (canonical string) is a mutex-like lockable. */
bool isMutexType(const std::string &type);

/** Whether @p type (canonical string) is a scoped lock guard
 *  (std::lock_guard / unique_lock / scoped_lock / shared_lock,
 *  seesaw::MutexLock). */
bool isLockGuardType(const std::string &type);

/** Canonical printed type of @p decl's type. */
std::string canonicalTypeString(const ValueDecl *decl);

} // namespace clang::tidy::seesaw

#endif // SEESAW_TOOLS_TIDY_LOCK_UTIL_HH
