#!/usr/bin/env bash
# Fetch the clang-tidy plugin headers that distro packages omit.
#
# Out-of-tree clang-tidy plugins compile against the top-level headers
# of clang-tools-extra/clang-tidy, which Debian/Ubuntu do not ship in
# any -dev package. This grabs just those headers (a dozen small
# files, Apache-2.0 WITH LLVM-exception) for the installed clang-tidy
# version so tools/tidy can build.
#
# Usage: fetch_clang_tidy_headers.sh <dest-dir> [version]
#   dest-dir  headers land in <dest-dir>/clang-tidy/
#   version   LLVM release tag (default: major of `clang-tidy
#             --version`, resolved to its .0.0 tag; e.g. 14 ->
#             llvmorg-14.0.0)

set -euo pipefail

dest="${1:?usage: fetch_clang_tidy_headers.sh <dest-dir> [version]}"
version="${2:-}"

if [ -z "$version" ]; then
    if ! command -v clang-tidy > /dev/null; then
        echo "clang-tidy not installed and no version given" >&2
        exit 1
    fi
    version="$(clang-tidy --version |
        sed -n 's/.*version \([0-9][0-9]*\)\..*/\1/p' | head -n1)"
fi
case "$version" in
    *.*) tag="llvmorg-${version}" ;;
    *)   tag="llvmorg-${version}.0.0" ;;
esac

base="https://raw.githubusercontent.com/llvm/llvm-project/${tag}/clang-tools-extra/clang-tidy"
mkdir -p "${dest}/clang-tidy"

# Headers ClangTidy{Module,ModuleRegistry,Check}.h pull in. Some only
# exist in newer releases; 404s on those are fine.
headers=(
    ClangTidy.h
    ClangTidyCheck.h
    ClangTidyDiagnosticConsumer.h
    ClangTidyModule.h
    ClangTidyModuleRegistry.h
    ClangTidyOptions.h
    ClangTidyProfiling.h
    ClangTidyForceLinker.h
    GlobList.h
    FileExtensionsSet.h
    NoLintDirectiveHandler.h
)

fetched=0
for h in "${headers[@]}"; do
    if curl -fsSL "${base}/${h}" -o "${dest}/clang-tidy/${h}"; then
        fetched=$((fetched + 1))
    else
        rm -f "${dest}/clang-tidy/${h}"
        echo "  (skipped ${h}: not in ${tag})"
    fi
done

if [ ! -f "${dest}/clang-tidy/ClangTidyModule.h" ]; then
    echo "failed to fetch ClangTidyModule.h for ${tag}" >&2
    exit 1
fi
echo "fetched ${fetched} clang-tidy headers (${tag}) into ${dest}/clang-tidy"
