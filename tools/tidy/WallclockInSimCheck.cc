#include "WallclockInSimCheck.hh"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/Support/Regex.h"

using namespace clang::ast_matchers;

namespace clang::tidy::seesaw {

WallclockInSimCheck::WallclockInSimCheck(StringRef name,
                                         ClangTidyContext *context)
    : ClangTidyCheck(name, context),
      allowedPathPattern_(Options.get(
          "AllowedPathPattern",
          "(src/harness|src/store|src/service|tests|bench|examples|"
          "tools)/"))
{
}

void
WallclockInSimCheck::storeOptions(ClangTidyOptions::OptionMap &opts)
{
    Options.store(opts, "AllowedPathPattern", allowedPathPattern_);
}

void
WallclockInSimCheck::registerMatchers(ast_matchers::MatchFinder *finder)
{
    // C wall-clock reads.
    finder->addMatcher(
        callExpr(callee(functionDecl(hasAnyName(
                     "::time", "::clock", "::gettimeofday",
                     "::clock_gettime", "::timespec_get", "::ftime"))))
            .bind("call"),
        this);

    // std::chrono::{system,steady,high_resolution}_clock::now().
    finder->addMatcher(
        callExpr(callee(functionDecl(
                     hasName("now"),
                     hasDeclContext(recordDecl(hasAnyName(
                         "::std::chrono::system_clock",
                         "::std::chrono::steady_clock",
                         "::std::chrono::high_resolution_clock"))))))
            .bind("call"),
        this);
}

void
WallclockInSimCheck::check(
    const ast_matchers::MatchFinder::MatchResult &result)
{
    const auto *call = result.Nodes.getNodeAs<CallExpr>("call");
    if (call == nullptr)
        return;
    SourceLocation loc = call->getBeginLoc();
    if (loc.isInvalid())
        return;
    const SourceManager &sm = *result.SourceManager;
    loc = sm.getExpansionLoc(loc);
    if (sm.isInSystemHeader(loc))
        return;
    const StringRef file = sm.getFilename(loc);
    if (llvm::Regex(allowedPathPattern_).match(file))
        return;

    std::string what = "wall-clock read";
    if (const FunctionDecl *fd = call->getDirectCallee())
        what = fd->getQualifiedNameAsString();

    diag(loc,
         "'%0' reads the wall clock inside a simulated component; "
         "simulated paths must be a pure function of (workload, "
         "config, seed) — keep wall time in src/harness")
        << what;
}

} // namespace clang::tidy::seesaw
