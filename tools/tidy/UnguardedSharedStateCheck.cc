#include "UnguardedSharedStateCheck.hh"

#include "LockUtil.hh"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "llvm/Support/Regex.h"

using namespace clang::ast_matchers;

namespace clang::tidy::seesaw {

UnguardedSharedStateCheck::UnguardedSharedStateCheck(
    StringRef name, ClangTidyContext *context)
    : ClangTidyCheck(name, context),
      exemptTypePattern_(Options.get(
          "ExemptTypePattern",
          "std::(__[0-9]+::)?(atomic|thread|jthread|condition_variable|"
          "once_flag|stop_token|stop_source|latch|barrier|"
          "counting_semaphore|binary_semaphore)"))
{
}

void
UnguardedSharedStateCheck::storeOptions(
    ClangTidyOptions::OptionMap &opts)
{
    Options.store(opts, "ExemptTypePattern", exemptTypePattern_);
}

void
UnguardedSharedStateCheck::registerMatchers(
    ast_matchers::MatchFinder *finder)
{
    finder->addMatcher(cxxRecordDecl(isDefinition(),
                                     unless(isExpansionInSystemHeader()))
                           .bind("record"),
                       this);
}

void
UnguardedSharedStateCheck::check(
    const ast_matchers::MatchFinder::MatchResult &result)
{
    const auto *record =
        result.Nodes.getNodeAs<CXXRecordDecl>("record");
    if (record == nullptr || record->isLambda() || record->isUnion() ||
        record->isDependentContext())
        return;

    // Only classes that own a mutex member make locking promises.
    bool ownsMutex = false;
    for (const FieldDecl *field : record->fields()) {
        if (isMutexType(canonicalTypeString(field))) {
            ownsMutex = true;
            break;
        }
    }
    if (!ownsMutex)
        return;

    const llvm::Regex exempt(exemptTypePattern_);
    for (const FieldDecl *field : record->fields()) {
        const std::string type = canonicalTypeString(field);
        if (isMutexType(type))
            continue;
        if (field->getType().isConstQualified())
            continue;
        if (field->getType()->isReferenceType())
            continue;
        if (field->hasAttr<GuardedByAttr>() ||
            field->hasAttr<PtGuardedByAttr>())
            continue;
        if (exempt.match(type))
            continue;
        diag(field->getLocation(),
             "mutable member '%0' of mutex-owning class '%1' has no "
             "SEESAW_GUARDED_BY annotation; declare its guarding "
             "mutex, or make it const/atomic if it is not shared "
             "state")
            << field->getName() << record->getName();
    }
}

} // namespace clang::tidy::seesaw
