#include "LockUtil.hh"

#include "clang/AST/ExprCXX.h"
#include "llvm/Support/Regex.h"

namespace clang::tidy::seesaw {

std::string
mutexName(const Expr *expr)
{
    if (expr == nullptr)
        return "";
    expr = expr->IgnoreParenImpCasts();
    if (const auto *unary = dyn_cast<UnaryOperator>(expr)) {
        // &mutex_ / *mutexPtr in attribute arguments.
        if (unary->getOpcode() == UO_AddrOf ||
            unary->getOpcode() == UO_Deref)
            return mutexName(unary->getSubExpr());
    }
    if (const auto *member = dyn_cast<MemberExpr>(expr))
        return member->getMemberDecl()->getQualifiedNameAsString();
    if (const auto *ref = dyn_cast<DeclRefExpr>(expr))
        return ref->getDecl()->getQualifiedNameAsString();
    if (const auto *call = dyn_cast<CallExpr>(expr)) {
        // logMutex()-style accessors: the returned static is the
        // capability, so the accessor's name identifies it.
        if (const FunctionDecl *fn = call->getDirectCallee())
            return fn->getQualifiedNameAsString() + "()";
    }
    return "";
}

bool
isMutexType(const std::string &type)
{
    // Ends-with match so guard types ("MutexLock") do not count.
    static const llvm::Regex pattern("[Mm]utex$");
    return pattern.match(type);
}

bool
isLockGuardType(const std::string &type)
{
    static const llvm::Regex pattern(
        "std::(lock_guard|unique_lock|scoped_lock|shared_lock)<|"
        "seesaw::MutexLock$");
    return pattern.match(type);
}

std::string
canonicalTypeString(const ValueDecl *decl)
{
    QualType type = decl->getType();
    if (type.isNull())
        return "";
    return type.getCanonicalType().getUnqualifiedType().getAsString();
}

} // namespace clang::tidy::seesaw
