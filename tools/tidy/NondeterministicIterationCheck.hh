/**
 * @file
 * seesaw-nondeterministic-iteration: flags range-for loops over
 * std::unordered_{map,set,multimap,multiset} whose body emits
 * (stats, sinks, JSON/CSV, streams) or appends to a result container
 * that is never sorted afterwards.
 *
 * Rule: hash iteration order is an implementation detail of the
 * standard library. Anything observable — an emitted stat, a sink
 * row, the order results land in a vector that feeds output or
 * further allocation decisions — must not depend on it, or the
 * serial-vs-parallel and cross-platform bit-identical guarantees die.
 * The sanctioned patterns are (a) ordered containers, and (b)
 * collect-then-sort: appending to a local vector that the same
 * function later passes to std::sort/std::stable_sort is recognised
 * and not flagged.
 */

#ifndef SEESAW_TOOLS_TIDY_NONDETERMINISTIC_ITERATION_CHECK_HH
#define SEESAW_TOOLS_TIDY_NONDETERMINISTIC_ITERATION_CHECK_HH

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::seesaw {

class NondeterministicIterationCheck : public ClangTidyCheck
{
  public:
    NondeterministicIterationCheck(StringRef name,
                                   ClangTidyContext *context);

    bool
    isLanguageVersionSupported(const LangOptions &lang_opts) const override
    {
        return lang_opts.CPlusPlus;
    }

    void registerMatchers(ast_matchers::MatchFinder *finder) override;
    void check(const ast_matchers::MatchFinder::MatchResult &result)
        override;
    void storeOptions(ClangTidyOptions::OptionMap &opts) override;

  private:
    /** Regex over the canonical range type naming unordered
     *  containers. */
    const std::string containerPattern_;
    /** Regex over member-call names that count as emission. */
    const std::string emitterCallPattern_;
    /** Regex over receiver types that count as emitters/sinks. */
    const std::string emitterClassPattern_;
};

} // namespace clang::tidy::seesaw

#endif // SEESAW_TOOLS_TIDY_NONDETERMINISTIC_ITERATION_CHECK_HH
