#include "LockOrderCheck.hh"

#include <algorithm>
#include <functional>
#include <set>

#include "LockUtil.hh"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::seesaw {

namespace {

/** Canonical, unqualified type of a member call's object (pointers
 *  peeled), or "" when unavailable. */
std::string
objectTypeString(const Expr *object)
{
    if (object == nullptr)
        return "";
    QualType type = object->getType();
    if (type.isNull())
        return "";
    if (type->isPointerType())
        type = type->getPointeeType();
    return type.getCanonicalType().getUnqualifiedType().getAsString();
}

} // namespace

void
LockOrderCheck::registerMatchers(ast_matchers::MatchFinder *finder)
{
    finder->addMatcher(
        functionDecl(isDefinition(),
                     unless(isExpansionInSystemHeader()))
            .bind("fn"),
        this);
}

void
LockOrderCheck::addAcquisition(const std::vector<std::string> &held,
                               const std::string &to,
                               SourceLocation loc)
{
    for (const std::string &from : held)
        edges_.try_emplace({from, to}, loc);
}

void
LockOrderCheck::walk(const Stmt *stmt, std::vector<std::string> &held)
{
    if (stmt == nullptr)
        return;

    if (const auto *compound = dyn_cast<CompoundStmt>(stmt)) {
        const std::size_t mark = held.size();
        for (const Stmt *child : compound->body())
            walk(child, held);
        // Scoped guards (and approximate raw .lock()s) die with the
        // scope; only truncate — an unlock() may have popped deeper.
        if (held.size() > mark)
            held.resize(mark);
        return;
    }

    if (const auto *declStmt = dyn_cast<DeclStmt>(stmt)) {
        // Initializers first: their own calls run before the guard
        // is held.
        for (const Stmt *child : stmt->children())
            walk(child, held);
        for (const Decl *decl : declStmt->decls()) {
            const auto *var = dyn_cast<VarDecl>(decl);
            if (var == nullptr ||
                !isLockGuardType(canonicalTypeString(var)))
                continue;
            const Expr *init = var->getInit();
            if (init == nullptr)
                continue;
            const auto *ctor = dyn_cast<CXXConstructExpr>(
                init->IgnoreParenImpCasts());
            if (ctor == nullptr)
                continue;
            for (const Expr *arg : ctor->arguments()) {
                std::string name = mutexName(arg);
                if (name.empty())
                    continue;
                addAcquisition(held, name, var->getBeginLoc());
                held.push_back(std::move(name));
            }
        }
        return;
    }

    if (const auto *memberCall = dyn_cast<CXXMemberCallExpr>(stmt)) {
        for (const Stmt *child : stmt->children())
            walk(child, held);
        const CXXMethodDecl *method = memberCall->getMethodDecl();
        if (method == nullptr)
            return;
        const Expr *object = memberCall->getImplicitObjectArgument();
        if (isMutexType(objectTypeString(object))) {
            const std::string name = mutexName(object);
            if (!name.empty()) {
                const std::string methodName =
                    method->getNameAsString();
                if (methodName == "lock" ||
                    methodName == "try_lock") {
                    addAcquisition(held, name,
                                   memberCall->getBeginLoc());
                    held.push_back(name);
                    return;
                }
                if (methodName == "unlock") {
                    for (auto it = held.rbegin(); it != held.rend();
                         ++it) {
                        if (*it == name) {
                            held.erase(std::next(it).base());
                            break;
                        }
                    }
                    return;
                }
            }
        }
        handleCallee(method, held, memberCall->getBeginLoc());
        return;
    }

    if (const auto *call = dyn_cast<CallExpr>(stmt)) {
        for (const Stmt *child : stmt->children())
            walk(child, held);
        if (const FunctionDecl *callee = call->getDirectCallee())
            handleCallee(callee, held, call->getBeginLoc());
        return;
    }

    for (const Stmt *child : stmt->children())
        walk(child, held);
}

void
LockOrderCheck::handleCallee(const FunctionDecl *callee,
                             const std::vector<std::string> &held,
                             SourceLocation loc)
{
    // The declaration's capability attributes stand in for the body,
    // which may live in another translation unit: calling a function
    // that acquires (SEESAW_ACQUIRE) or internally takes
    // (SEESAW_EXCLUDES) a mutex while we hold one creates an edge.
    for (const auto *attr :
         callee->specific_attrs<AcquireCapabilityAttr>()) {
        for (const std::string &name : attrMutexNames(attr))
            addAcquisition(held, name, loc);
    }
    for (const auto *attr :
         callee->specific_attrs<LocksExcludedAttr>()) {
        for (const std::string &name : attrMutexNames(attr))
            addAcquisition(held, name, loc);
    }
}

void
LockOrderCheck::check(
    const ast_matchers::MatchFinder::MatchResult &result)
{
    const auto *fn = result.Nodes.getNodeAs<FunctionDecl>("fn");
    if (fn == nullptr || !fn->doesThisDeclarationHaveABody())
        return;
    const Stmt *body = fn->getBody();
    if (body == nullptr)
        return;

    // SEESAW_REQUIRES preconditions count as held on entry.
    std::vector<std::string> held;
    for (const auto *attr :
         fn->specific_attrs<RequiresCapabilityAttr>()) {
        for (std::string &name : attrMutexNames(attr))
            held.push_back(std::move(name));
    }
    walk(body, held);
}

void
LockOrderCheck::onEndOfTranslationUnit()
{
    // Tarjan's SCC over the decl-named mutex graph; every edge whose
    // endpoints share a component lies on a cycle.
    std::map<std::string, std::vector<std::string>> adjacency;
    for (const auto &[edge, loc] : edges_) {
        adjacency[edge.first].push_back(edge.second);
        adjacency.try_emplace(edge.second);
    }

    std::map<std::string, int> index;
    std::map<std::string, int> lowLink;
    std::map<std::string, int> component;
    std::vector<std::string> stack;
    std::set<std::string> onStack;
    int nextIndex = 0;
    int nextComponent = 0;

    std::function<void(const std::string &)> strongConnect =
        [&](const std::string &node) {
            index[node] = lowLink[node] = nextIndex++;
            stack.push_back(node);
            onStack.insert(node);
            for (const std::string &next : adjacency[node]) {
                if (index.find(next) == index.end()) {
                    strongConnect(next);
                    lowLink[node] =
                        std::min(lowLink[node], lowLink[next]);
                } else if (onStack.count(next)) {
                    lowLink[node] =
                        std::min(lowLink[node], index[next]);
                }
            }
            if (lowLink[node] == index[node]) {
                for (;;) {
                    const std::string top = stack.back();
                    stack.pop_back();
                    onStack.erase(top);
                    component[top] = nextComponent;
                    if (top == node)
                        break;
                }
                ++nextComponent;
            }
        };
    for (const auto &[node, targets] : adjacency) {
        (void)targets;
        if (index.find(node) == index.end())
            strongConnect(node);
    }

    std::map<int, int> componentSize;
    for (const auto &[node, comp] : component) {
        (void)node;
        ++componentSize[comp];
    }

    for (const auto &[edge, loc] : edges_) {
        const auto &[from, to] = edge;
        if (from == to) {
            diag(loc,
                 "mutex '%0' is acquired on a path that already "
                 "holds it (double acquire: self-deadlock on a "
                 "non-recursive mutex)")
                << from;
            continue;
        }
        if (component[from] != component[to] ||
            componentSize[component[from]] < 2)
            continue;
        std::vector<std::string> members;
        for (const auto &[node, comp] : component) {
            if (comp == component[from])
                members.push_back(node);
        }
        std::sort(members.begin(), members.end());
        std::string cycle;
        for (const std::string &member : members) {
            if (!cycle.empty())
                cycle += ", ";
            cycle += "'" + member + "'";
        }
        diag(loc,
             "acquiring mutex '%0' while holding '%1' completes a "
             "lock-order cycle among {%2}; pick one acquisition "
             "order (DESIGN.md \"Concurrency rules\")")
            << to << from << cycle;
    }

    edges_.clear();
}

} // namespace clang::tidy::seesaw
