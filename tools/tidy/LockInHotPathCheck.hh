/**
 * @file
 * seesaw-lock-in-hot-path: flags mutex acquisition reachable from the
 * simulator's per-access methods (SimEngine step/run, cache access,
 * TLB lookup, translation-cache lookup, core-complex memory access).
 *
 * Rule (DESIGN.md "Concurrency rules", guarding PR 3's throughput
 * work): the per-access hot path runs millions of times per simulated
 * second and is strictly single-threaded per cell — a mutex there is
 * both a throughput bug and a design smell. Locks belong to the
 * harness/store/service layers that surround the simulation.
 *
 * Reachability is computed per translation unit over the static call
 * graph from the configured root methods; calls to functions whose
 * declarations carry SEESAW_ACQUIRE / SEESAW_EXCLUDES count as
 * acquisitions even when their bodies live in other translation
 * units.
 */

#ifndef SEESAW_TOOLS_TIDY_LOCK_IN_HOT_PATH_CHECK_HH
#define SEESAW_TOOLS_TIDY_LOCK_IN_HOT_PATH_CHECK_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::seesaw {

class LockInHotPathCheck : public ClangTidyCheck
{
  public:
    LockInHotPathCheck(StringRef name, ClangTidyContext *context);

    bool
    isLanguageVersionSupported(const LangOptions &lang_opts) const override
    {
        return lang_opts.CPlusPlus;
    }

    void registerMatchers(ast_matchers::MatchFinder *finder) override;
    void check(const ast_matchers::MatchFinder::MatchResult &result)
        override;
    void storeOptions(ClangTidyOptions::OptionMap &opts) override;
    void onEndOfTranslationUnit() override;

  private:
    struct Acquisition
    {
        std::string mutex; //!< decl-based name ("" = unknown mutex)
        std::string how;   //!< human-readable acquisition description
        SourceLocation loc;
    };

    struct FunctionInfo
    {
        std::vector<Acquisition> acquisitions;
        std::set<std::string> callees; //!< qualified names
    };

    /** Recursive walk collecting acquisitions and callees. */
    void collect(const Stmt *stmt, FunctionInfo &info);

    /** Qualified-name regex selecting the per-access root methods. */
    const std::string hotPathRootPattern_;

    /** Qualified name -> what the function's body does. */
    std::map<std::string, FunctionInfo> functions_;
};

} // namespace clang::tidy::seesaw

#endif // SEESAW_TOOLS_TIDY_LOCK_IN_HOT_PATH_CHECK_HH
