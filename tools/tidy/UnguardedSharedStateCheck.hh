/**
 * @file
 * seesaw-unguarded-shared-state: flags mutable, non-atomic data
 * members of classes that own a mutex but whose members lack a
 * SEESAW_GUARDED_BY annotation — the "you forgot to annotate" closure
 * check.
 *
 * The Clang thread-safety analysis only protects fields that carry a
 * guarded_by attribute; an unannotated field in a lock-owning class is
 * invisible to it, which is exactly how races sneak past -Wthread-
 * safety. This check closes the loop: a class that declares a mutex
 * member must account for every other member — annotate it, make it
 * const, make it atomic, or (for genuinely unguarded members like a
 * worker-thread vector written only in the constructor) suppress with
 * a justified lint-suppression comment naming this check.
 */

#ifndef SEESAW_TOOLS_TIDY_UNGUARDED_SHARED_STATE_CHECK_HH
#define SEESAW_TOOLS_TIDY_UNGUARDED_SHARED_STATE_CHECK_HH

#include <string>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::seesaw {

class UnguardedSharedStateCheck : public ClangTidyCheck
{
  public:
    UnguardedSharedStateCheck(StringRef name,
                              ClangTidyContext *context);

    bool
    isLanguageVersionSupported(const LangOptions &lang_opts) const override
    {
        return lang_opts.CPlusPlus;
    }

    void registerMatchers(ast_matchers::MatchFinder *finder) override;
    void check(const ast_matchers::MatchFinder::MatchResult &result)
        override;
    void storeOptions(ClangTidyOptions::OptionMap &opts) override;

  private:
    /** Types (regex over the canonical type string) that are safe to
     *  share without a guarded_by annotation: atomics, synchronization
     *  primitives, thread handles (and containers thereof). */
    const std::string exemptTypePattern_;
};

} // namespace clang::tidy::seesaw

#endif // SEESAW_TOOLS_TIDY_UNGUARDED_SHARED_STATE_CHECK_HH
