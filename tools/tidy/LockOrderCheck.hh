/**
 * @file
 * seesaw-lock-order: builds the static mutex-acquisition graph of the
 * translation unit and flags every edge that participates in a cycle —
 * the deadlock lint the per-function thread-safety analysis cannot
 * express.
 *
 * Nodes are decl-named mutexes (see LockUtil.hh). An edge A -> B is
 * recorded whenever B is acquired while A is held: scoped guards
 * (MutexLock, std::lock_guard/unique_lock/...), raw .lock()/.unlock()
 * calls, and — crucially — calls to functions whose declarations carry
 * SEESAW_ACQUIRE / SEESAW_EXCLUDES, which is how acquisitions hidden
 * in other translation units enter the graph. A self-edge (the same
 * mutex acquired twice on one path) is reported as a double-acquire.
 *
 * Rule (DESIGN.md "Concurrency rules"): the sanctioned lock order is
 * acyclic — never call into another lock-owning component while
 * holding your own mutex.
 */

#ifndef SEESAW_TOOLS_TIDY_LOCK_ORDER_CHECK_HH
#define SEESAW_TOOLS_TIDY_LOCK_ORDER_CHECK_HH

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::seesaw {

class LockOrderCheck : public ClangTidyCheck
{
  public:
    LockOrderCheck(StringRef name, ClangTidyContext *context)
        : ClangTidyCheck(name, context)
    {
    }

    bool
    isLanguageVersionSupported(const LangOptions &lang_opts) const override
    {
        return lang_opts.CPlusPlus;
    }

    void registerMatchers(ast_matchers::MatchFinder *finder) override;
    void check(const ast_matchers::MatchFinder::MatchResult &result)
        override;
    void onEndOfTranslationUnit() override;

  private:
    /** Record "to acquired while holding every mutex in held". */
    void addAcquisition(const std::vector<std::string> &held,
                        const std::string &to, SourceLocation loc);

    /** Edges implied by @p callee's capability attributes. */
    void handleCallee(const FunctionDecl *callee,
                      const std::vector<std::string> &held,
                      SourceLocation loc);

    /** Recursive statement walk tracking the held-lock stack. */
    void walk(const Stmt *stmt, std::vector<std::string> &held);

    /** (from, to) -> first source location that created the edge. */
    std::map<std::pair<std::string, std::string>, SourceLocation>
        edges_;
};

} // namespace clang::tidy::seesaw

#endif // SEESAW_TOOLS_TIDY_LOCK_ORDER_CHECK_HH
