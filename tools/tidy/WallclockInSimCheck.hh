/**
 * @file
 * seesaw-wallclock-in-sim: flags wall-clock reads (<chrono> clock
 * now(), time(), clock(), gettimeofday, clock_gettime) inside
 * simulated components (src/sim, cache, mem, tlb, coherence, cpu,
 * core, model, workload, check, common).
 *
 * Rule: simulated time is Cycles, advanced only by the engine.
 * Wall-clock values leaking into a simulated path make results depend
 * on host load; the harness (src/harness) may measure wall time for
 * progress meters and reports, but no model may.
 */

#ifndef SEESAW_TOOLS_TIDY_WALLCLOCK_IN_SIM_CHECK_HH
#define SEESAW_TOOLS_TIDY_WALLCLOCK_IN_SIM_CHECK_HH

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::seesaw {

class WallclockInSimCheck : public ClangTidyCheck
{
  public:
    WallclockInSimCheck(StringRef name, ClangTidyContext *context);

    bool
    isLanguageVersionSupported(const LangOptions &lang_opts) const override
    {
        return lang_opts.CPlusPlus;
    }

    void registerMatchers(ast_matchers::MatchFinder *finder) override;
    void check(const ast_matchers::MatchFinder::MatchResult &result)
        override;
    void storeOptions(ClangTidyOptions::OptionMap &opts) override;

  private:
    /** Paths (regex) where wall-clock reads are legitimate: the
     *  campaign harness, benches, tests, examples and tools. */
    const std::string allowedPathPattern_;
};

} // namespace clang::tidy::seesaw

#endif // SEESAW_TOOLS_TIDY_WALLCLOCK_IN_SIM_CHECK_HH
