/**
 * @file
 * seesaw-string-stat-lookup: flags string-keyed StatGroup lookups
 * (scalar(), distribution(), get()) outside constructors and
 * collection/reporting functions.
 *
 * Rule (PR 3): per-access paths update stats through StatScalar*
 * handles cached at construction; a std::map<std::string, ...> lookup
 * per simulated access was one of the dominant costs the hot-path
 * overhaul removed, and this check keeps it from creeping back. Cold
 * end-of-run collection (functions matching AllowedFunctionPattern)
 * may look stats up by name.
 */

#ifndef SEESAW_TOOLS_TIDY_STRING_STAT_LOOKUP_CHECK_HH
#define SEESAW_TOOLS_TIDY_STRING_STAT_LOOKUP_CHECK_HH

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::seesaw {

class StringStatLookupCheck : public ClangTidyCheck
{
  public:
    StringStatLookupCheck(StringRef name, ClangTidyContext *context);

    bool
    isLanguageVersionSupported(const LangOptions &lang_opts) const override
    {
        return lang_opts.CPlusPlus;
    }

    void registerMatchers(ast_matchers::MatchFinder *finder) override;
    void check(const ast_matchers::MatchFinder::MatchResult &result)
        override;
    void storeOptions(ClangTidyOptions::OptionMap &opts) override;

  private:
    /** Functions (regex on the spelled name) that are cold collection
     *  or reporting paths, where by-name lookups are fine. */
    const std::string allowedFunctionPattern_;
    /** Class whose by-name accessors are being guarded. */
    const std::string statGroupClass_;
};

} // namespace clang::tidy::seesaw

#endif // SEESAW_TOOLS_TIDY_STRING_STAT_LOOKUP_CHECK_HH
