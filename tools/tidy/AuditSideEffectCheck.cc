#include "AuditSideEffectCheck.hh"

#include "clang/AST/ASTContext.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::seesaw {

AuditSideEffectCheck::AuditSideEffectCheck(StringRef name,
                                           ClangTidyContext *context)
    : ClangTidyCheck(name, context),
      auditorClass_(Options.get("AuditorClass",
                                "::seesaw::check::InvariantAuditor"))
{
}

void
AuditSideEffectCheck::storeOptions(ClangTidyOptions::OptionMap &opts)
{
    Options.store(opts, "AuditorClass", auditorClass_);
}

void
AuditSideEffectCheck::registerMatchers(ast_matchers::MatchFinder *finder)
{
    finder->addMatcher(
        cxxMemberCallExpr(
            callee(cxxMethodDecl(hasName("registerCheck"),
                                 ofClass(hasName(auditorClass_)))),
            hasArgument(1, expr().bind("callback"))),
        this);
}

bool
AuditSideEffectCheck::isNonLocal(const Expr *e, const LambdaExpr *lambda,
                                 const SourceManager &sm) const
{
    // Peel projections until we reach the root entity.
    while (e != nullptr) {
        e = e->IgnoreParenImpCasts();
        if (const auto *member = dyn_cast<MemberExpr>(e)) {
            e = member->getBase();
            continue;
        }
        if (const auto *sub = dyn_cast<ArraySubscriptExpr>(e)) {
            e = sub->getBase();
            continue;
        }
        if (const auto *unary = dyn_cast<UnaryOperator>(e)) {
            if (unary->getOpcode() == UO_Deref) {
                e = unary->getSubExpr();
                continue;
            }
            return false;
        }
        if (const auto *op = dyn_cast<CXXOperatorCallExpr>(e)) {
            // v[i], *p through overloaded operators: recurse into the
            // object argument.
            if (op->getNumArgs() >= 1 &&
                (op->getOperator() == OO_Subscript ||
                 op->getOperator() == OO_Star ||
                 op->getOperator() == OO_Arrow)) {
                e = op->getArg(0);
                continue;
            }
            return false;
        }
        if (isa<CXXThisExpr>(e)) {
            // Inside the lambda body, `this` is the *captured*
            // enclosing-class pointer: member state, hence non-local.
            return true;
        }
        if (const auto *ref = dyn_cast<DeclRefExpr>(e)) {
            const auto *var = dyn_cast<VarDecl>(ref->getDecl());
            if (var == nullptr)
                return false;
            if (var->hasGlobalStorage())
                return true;
            // Declared inside the lambda (parameters included) =>
            // local scratch. Anything else reached from the body is a
            // capture of enclosing state.
            const SourceRange lambda_range = lambda->getSourceRange();
            return !sm.isPointWithin(var->getLocation(),
                                     lambda_range.getBegin(),
                                     lambda_range.getEnd());
        }
        return false;
    }
    return false;
}

void
AuditSideEffectCheck::check(
    const ast_matchers::MatchFinder::MatchResult &result)
{
    const auto *callback = result.Nodes.getNodeAs<Expr>("callback");
    if (callback == nullptr)
        return;
    ASTContext &ctx = *result.Context;
    const SourceManager &sm = *result.SourceManager;

    // The CheckFn argument is usually a lambda wrapped in implicit
    // std::function conversions; dig it out.
    auto lambdas =
        match(findAll(lambdaExpr().bind("lambda")), *callback, ctx);
    if (lambdas.empty())
        return;
    const auto *lambda = lambdas.front().getNodeAs<LambdaExpr>("lambda");
    if (lambda == nullptr || lambda->getBody() == nullptr)
        return;
    const Stmt &body = *lambda->getBody();

    auto emit = [&](SourceLocation loc, StringRef how) {
        loc = sm.getExpansionLoc(loc);
        if (loc.isInvalid())
            return;
        diag(loc,
             "audit callback %0; audits are compiled out under "
             "-DSEESAW_AUDIT=OFF, so they must not mutate simulator "
             "state (report via the AuditContext instead)")
            << how;
    };

    // Writes: assignments and increments whose target is non-local.
    for (const auto &m : match(
             findAll(binaryOperator(isAssignmentOperator()).bind("bin")),
             body, ctx)) {
        const auto *bin = m.getNodeAs<BinaryOperator>("bin");
        if (bin != nullptr && isNonLocal(bin->getLHS(), lambda, sm))
            emit(bin->getOperatorLoc(), "assigns to captured state");
    }
    for (const auto &m :
         match(findAll(unaryOperator(hasAnyOperatorName("++", "--"))
                           .bind("un")),
               body, ctx)) {
        const auto *un = m.getNodeAs<UnaryOperator>("un");
        if (un != nullptr && isNonLocal(un->getSubExpr(), lambda, sm))
            emit(un->getOperatorLoc(),
                 "increments/decrements captured state");
    }

    // Non-const member calls on non-local objects.
    for (const auto &m : match(
             findAll(cxxMemberCallExpr().bind("call")), body, ctx)) {
        const auto *call = m.getNodeAs<CXXMemberCallExpr>("call");
        if (call == nullptr)
            continue;
        const CXXMethodDecl *method = call->getMethodDecl();
        if (method == nullptr || method->isConst() || method->isStatic())
            continue;
        if (isNonLocal(call->getImplicitObjectArgument(), lambda, sm))
            emit(call->getExprLoc(),
                 "calls a non-const member on captured state");
    }
}

} // namespace clang::tidy::seesaw
