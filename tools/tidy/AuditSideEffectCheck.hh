/**
 * @file
 * seesaw-audit-side-effect: flags audit callbacks registered with
 * InvariantAuditor::registerCheck whose body mutates non-local state
 * — assignments or increments through captured variables or a
 * captured `this`, and non-const member calls on captured objects.
 *
 * Rule: audits are observers. A build with -DSEESAW_AUDIT=OFF
 * compiles them out entirely, so any state an audit mutates would
 * diverge between audited and audit-free builds, breaking the
 * "audit-off is bit-identical" guarantee. Callbacks may read
 * anything, build local scratch, and report via the AuditContext
 * parameter — nothing else.
 */

#ifndef SEESAW_TOOLS_TIDY_AUDIT_SIDE_EFFECT_CHECK_HH
#define SEESAW_TOOLS_TIDY_AUDIT_SIDE_EFFECT_CHECK_HH

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::seesaw {

class AuditSideEffectCheck : public ClangTidyCheck
{
  public:
    AuditSideEffectCheck(StringRef name, ClangTidyContext *context);

    bool
    isLanguageVersionSupported(const LangOptions &lang_opts) const override
    {
        return lang_opts.CPlusPlus;
    }

    void registerMatchers(ast_matchers::MatchFinder *finder) override;
    void check(const ast_matchers::MatchFinder::MatchResult &result)
        override;
    void storeOptions(ClangTidyOptions::OptionMap &opts) override;

  private:
    /** Qualified name of the auditor class whose registrations are
     *  inspected. */
    const std::string auditorClass_;

    /** True when @p e (an lvalue being written, or a member-call
     *  receiver) bottoms out in state declared outside @p lambda. */
    bool isNonLocal(const Expr *e, const LambdaExpr *lambda,
                    const SourceManager &sm) const;
};

} // namespace clang::tidy::seesaw

#endif // SEESAW_TOOLS_TIDY_AUDIT_SIDE_EFFECT_CHECK_HH
