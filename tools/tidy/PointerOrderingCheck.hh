/**
 * @file
 * seesaw-pointer-ordering: flags sorting or keying by raw pointer
 * value — relational comparisons between object pointers,
 * std::map/std::set keyed by a pointer with the default comparator,
 * and std::sort/std::stable_sort over pointer elements without a
 * custom comparator.
 *
 * Rule: pointer values are allocation addresses; ASLR and allocator
 * state change them run to run, so any order derived from them is
 * nondeterministic. Key and sort by a stable identity (core id, set
 * index, address, name) instead.
 */

#ifndef SEESAW_TOOLS_TIDY_POINTER_ORDERING_CHECK_HH
#define SEESAW_TOOLS_TIDY_POINTER_ORDERING_CHECK_HH

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::seesaw {

class PointerOrderingCheck : public ClangTidyCheck
{
  public:
    PointerOrderingCheck(StringRef name, ClangTidyContext *context)
        : ClangTidyCheck(name, context)
    {
    }

    bool
    isLanguageVersionSupported(const LangOptions &lang_opts) const override
    {
        return lang_opts.CPlusPlus;
    }

    void registerMatchers(ast_matchers::MatchFinder *finder) override;
    void check(const ast_matchers::MatchFinder::MatchResult &result)
        override;
};

} // namespace clang::tidy::seesaw

#endif // SEESAW_TOOLS_TIDY_POINTER_ORDERING_CHECK_HH
