/**
 * @file
 * Operator CLI for the campaign result store: live progress
 * (`status`), record listing (`ls`), canonical export (`dump`),
 * golden/drift comparison (`diff` — between two stores, between a
 * store and a campaign JSON sink, or between two sinks), historical
 * stat queries (`trend`) and maintenance (`compact`).
 *
 * `diff` is exact: the simulator is deterministic, so any two runs of
 * the same cells must agree on every statistic bit-for-bit; only
 * wall times, job counts and git revisions may differ and those are
 * never compared. Exit status: 0 = identical, 1 = drift, 2 = usage
 * or I/O error.
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "service/lease_queue.hh"
#include "store/result_store.hh"

namespace fs = std::filesystem;
using namespace seesaw;
using store::CellKey;
using store::CellRecord;
using store::StatValue;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: seesaw_store COMMAND [args]\n"
        "  status DIR                store overview and queue "
        "progress\n"
        "  ls DIR                    one line per (latest) stored "
        "cell\n"
        "  dump DIR                  canonical JSONL to stdout "
        "(sorted,\n"
        "                            volatile fields omitted)\n"
        "  diff A B [--ignore STAT]  compare stores and/or campaign "
        "JSON\n"
        "                            sinks cell-by-cell; exit 1 on "
        "drift\n"
        "  trend DIR STAT [FILTER]   STAT's history, oldest first, "
        "for\n"
        "                            cells whose name contains "
        "FILTER\n"
        "  compact DIR               fold segments into the index\n");
    return 2;
}

bool
isStoreDir(const std::string &path)
{
    return fs::is_directory(path) &&
           fs::exists(path + "/MANIFEST.json");
}

/** Load a campaign JSON sink's results[] into store records. */
std::string
loadCampaignJson(const std::string &path,
                 std::map<CellKey, CellRecord> &out)
{
    std::ifstream is(path);
    if (!is)
        return "cannot open " + path;
    const std::string content(
        (std::istreambuf_iterator<char>(is)),
        std::istreambuf_iterator<char>());
    store::JsonValue doc;
    std::string error;
    if (!store::parseJson(content, doc, error))
        return path + ": " + error;
    const store::JsonValue *results = doc.find("results");
    if (results == nullptr || !results->isArray())
        return path + ": no results array (not a campaign sink?)";

    for (const auto &entry : results->items) {
        const store::JsonValue *workload = entry.find("workload");
        const store::JsonValue *hash = entry.find("config_hash");
        const store::JsonValue *seed = entry.find("seed");
        const store::JsonValue *cell = entry.find("cell");
        const store::JsonValue *stats = entry.find("stats");
        if (workload == nullptr || hash == nullptr ||
            seed == nullptr || cell == nullptr || stats == nullptr ||
            !stats->isObject())
            return path + ": malformed results entry";
        CellRecord record;
        record.key.workload = workload->asString();
        record.key.configHash = std::strtoull(
            hash->asString().c_str(), nullptr, 16);
        record.key.seed = seed->asU64();
        record.cell = cell->asString();
        if (const store::JsonValue *v = entry.find("cores"))
            record.cores = static_cast<unsigned>(v->asU64());
        for (const auto &[name, v] : stats->members)
            record.stats.push_back(
                StatValue{name, v.integral, v.u, v.d});
        if (const store::JsonValue *pc = entry.find("per_core");
            pc != nullptr && pc->isArray()) {
            for (const auto &slice : pc->items) {
                std::vector<StatValue> values;
                for (const auto &[name, v] : slice.members)
                    values.push_back(
                        StatValue{name, v.integral, v.u, v.d});
                record.perCore.push_back(std::move(values));
            }
        }
        out[record.key] = std::move(record);
    }
    return "";
}

/** Load either a store directory or a campaign JSON sink. */
std::string
loadSide(const std::string &path, std::map<CellKey, CellRecord> &out)
{
    if (isStoreDir(path)) {
        store::StoreSnapshot snap;
        if (std::string error = store::loadStore(path, snap);
            !error.empty())
            return error;
        out = std::move(snap.latest);
        return "";
    }
    if (fs::is_regular_file(path))
        return loadCampaignJson(path, out);
    return path + " is neither a result store nor a campaign JSON "
                  "sink";
}

std::string
keyLabel(const CellKey &key)
{
    return key.workload + "/" + store::hashHex(key.configHash) +
           "/s" + std::to_string(key.seed);
}

std::string
statText(const StatValue &s)
{
    if (s.integral)
        return std::to_string(s.u);
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", s.d);
    return buf;
}

/** Compare one stat list; print drift lines; return count. */
std::size_t
diffStats(const std::string &where,
          const std::vector<StatValue> &a,
          const std::vector<StatValue> &b,
          const std::set<std::string> &ignored)
{
    std::map<std::string, const StatValue *> bByName;
    for (const auto &s : b)
        bByName[s.name] = &s;
    std::size_t drift = 0;
    std::set<std::string> seen;
    for (const auto &s : a) {
        if (ignored.count(s.name))
            continue;
        seen.insert(s.name);
        const auto it = bByName.find(s.name);
        if (it == bByName.end()) {
            std::printf("  %s/%s: only in first\n", where.c_str(),
                        s.name.c_str());
            ++drift;
            continue;
        }
        if (s.integral != it->second->integral ||
            (s.integral ? s.u != it->second->u
                        : s.d != it->second->d)) {
            std::printf("  %s/%s: %s vs %s\n", where.c_str(),
                        s.name.c_str(), statText(s).c_str(),
                        statText(*it->second).c_str());
            ++drift;
        }
    }
    for (const auto &s : b) {
        if (!ignored.count(s.name) && !seen.count(s.name)) {
            std::printf("  %s/%s: only in second\n", where.c_str(),
                        s.name.c_str());
            ++drift;
        }
    }
    return drift;
}

int
cmdStatus(const std::string &dir)
{
    store::StoreSnapshot snap;
    if (std::string error = store::loadStore(dir, snap);
        !error.empty()) {
        std::fprintf(stderr, "seesaw_store: %s\n", error.c_str());
        return 2;
    }
    std::size_t segments = 0;
    std::error_code ec;
    for (const auto &entry :
         fs::directory_iterator(dir + "/segments", ec)) {
        if (entry.path().extension() == ".jsonl")
            ++segments;
    }
    std::map<std::string, unsigned> campaigns;
    for (const auto &record : snap.history)
        ++campaigns[record.campaign.empty() ? "(none)"
                                            : record.campaign];

    std::printf("store %s\n", dir.c_str());
    std::printf("  schema version %" PRIu64 "\n",
                store::kSchemaVersion);
    std::printf("  %zu cells (%zu records, %zu segment file%s%s)\n",
                snap.latest.size(), snap.history.size(), segments,
                segments == 1 ? "" : "s",
                fs::exists(dir + "/index.jsonl") ? ", index" : "");
    if (snap.tornTails)
        std::printf("  %zu torn segment tail%s skipped (crash "
                    "artifacts)\n",
                    snap.tornTails, snap.tornTails == 1 ? "" : "s");
    for (const auto &[name, records] : campaigns)
        std::printf("  campaign %s: %u record%s\n", name.c_str(),
                    records, records == 1 ? "" : "s");
    for (const auto &entry :
         fs::directory_iterator(dir + "/queue", ec)) {
        if (!entry.is_directory())
            continue;
        const std::string qdir = entry.path().string();
        std::ifstream count(qdir + "/count");
        std::size_t total = 0;
        if (!(count >> total))
            continue;
        const std::size_t done = service::countDone(qdir);
        std::printf("  queue %s: %zu/%zu cells done%s\n",
                    entry.path().filename().string().c_str(), done,
                    total, done == total ? "" : " (in progress)");
    }
    return 0;
}

int
cmdLs(const std::string &dir)
{
    store::StoreSnapshot snap;
    if (std::string error = store::loadStore(dir, snap);
        !error.empty()) {
        std::fprintf(stderr, "seesaw_store: %s\n", error.c_str());
        return 2;
    }
    for (const auto &[key, record] : snap.latest)
        std::printf("%-44s cores=%u campaign=%s cell=%s\n",
                    keyLabel(key).c_str(), record.cores,
                    record.campaign.empty() ? "-"
                                            : record.campaign.c_str(),
                    record.cell.c_str());
    std::printf("%zu cells\n", snap.latest.size());
    return 0;
}

int
cmdDump(const std::string &dir)
{
    store::StoreSnapshot snap;
    if (std::string error = store::loadStore(dir, snap);
        !error.empty()) {
        std::fprintf(stderr, "seesaw_store: %s\n", error.c_str());
        return 2;
    }
    store::canonicalDump(std::cout, snap);
    return 0;
}

int
cmdDiff(const std::string &pathA, const std::string &pathB,
        const std::set<std::string> &ignored)
{
    std::map<CellKey, CellRecord> a, b;
    if (std::string error = loadSide(pathA, a); !error.empty()) {
        std::fprintf(stderr, "seesaw_store: %s\n", error.c_str());
        return 2;
    }
    if (std::string error = loadSide(pathB, b); !error.empty()) {
        std::fprintf(stderr, "seesaw_store: %s\n", error.c_str());
        return 2;
    }

    std::size_t drift = 0;
    for (const auto &[key, record] : a) {
        const auto it = b.find(key);
        if (it == b.end()) {
            std::printf("  %s: only in %s\n", keyLabel(key).c_str(),
                        pathA.c_str());
            ++drift;
            continue;
        }
        const CellRecord &other = it->second;
        const std::string label = keyLabel(key);
        if (record.cores != other.cores) {
            std::printf("  %s/cores: %u vs %u\n", label.c_str(),
                        record.cores, other.cores);
            ++drift;
        }
        drift += diffStats(label, record.stats, other.stats, ignored);
        if (record.perCore.size() != other.perCore.size()) {
            std::printf("  %s/per_core: %zu vs %zu slices\n",
                        label.c_str(), record.perCore.size(),
                        other.perCore.size());
            ++drift;
        } else {
            for (std::size_t c = 0; c < record.perCore.size(); ++c)
                drift += diffStats(
                    label + "/core" + std::to_string(c),
                    record.perCore[c], other.perCore[c], ignored);
        }
    }
    for (const auto &[key, record] : b) {
        if (!a.count(key)) {
            std::printf("  %s: only in %s\n", keyLabel(key).c_str(),
                        pathB.c_str());
            ++drift;
        }
    }
    if (drift) {
        std::printf("%zu difference%s between %s and %s\n", drift,
                    drift == 1 ? "" : "s", pathA.c_str(),
                    pathB.c_str());
        return 1;
    }
    std::printf("%s and %s agree on %zu cells\n", pathA.c_str(),
                pathB.c_str(), a.size());
    return 0;
}

int
cmdTrend(const std::string &dir, const std::string &stat,
         const std::string &filter)
{
    store::StoreSnapshot snap;
    if (std::string error = store::loadStore(dir, snap);
        !error.empty()) {
        std::fprintf(stderr, "seesaw_store: %s\n", error.c_str());
        return 2;
    }
    std::size_t matched = 0;
    for (const auto &record : snap.history) {
        if (!filter.empty() &&
            record.cell.find(filter) == std::string::npos &&
            record.key.workload.find(filter) == std::string::npos)
            continue;
        for (const auto &s : record.stats) {
            if (s.name != stat)
                continue;
            std::printf("%-40s %-14s %-20s %s\n", record.cell.c_str(),
                        record.git.empty() ? "-"
                                           : record.git.c_str(),
                        record.campaign.empty()
                            ? "-"
                            : record.campaign.c_str(),
                        statText(s).c_str());
            ++matched;
            break;
        }
    }
    if (matched == 0) {
        std::fprintf(stderr,
                     "seesaw_store: no records with stat %s%s%s\n",
                     stat.c_str(),
                     filter.empty() ? "" : " matching ",
                     filter.c_str());
        return 1;
    }
    return 0;
}

int
cmdCompact(const std::string &dir)
{
    if (std::string error = store::compactStore(dir);
        !error.empty()) {
        std::fprintf(stderr, "seesaw_store: %s\n", error.c_str());
        return 2;
    }
    store::StoreSnapshot snap;
    if (std::string error = store::loadStore(dir, snap);
        !error.empty()) {
        std::fprintf(stderr, "seesaw_store: %s\n", error.c_str());
        return 2;
    }
    std::printf("compacted %s: %zu cells in the index\n", dir.c_str(),
                snap.latest.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    std::vector<std::string> args;
    std::set<std::string> ignored;
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--ignore") == 0 && i + 1 < argc)
            ignored.insert(argv[++i]);
        else
            args.emplace_back(argv[i]);
    }

    if (command == "status" && args.size() == 1)
        return cmdStatus(args[0]);
    if (command == "ls" && args.size() == 1)
        return cmdLs(args[0]);
    if (command == "dump" && args.size() == 1)
        return cmdDump(args[0]);
    if (command == "diff" && args.size() == 2)
        return cmdDiff(args[0], args[1], ignored);
    if (command == "trend" && (args.size() == 2 || args.size() == 3))
        return cmdTrend(args[0], args[1],
                        args.size() == 3 ? args[2] : "");
    if (command == "compact" && args.size() == 1)
        return cmdCompact(args[0]);
    return usage();
}
