#include "common/logging.hh"

#include <atomic>
#include <cstdio>

#include "common/thread_annotations.hh"

namespace seesaw {

namespace {

std::atomic<bool> verboseFlag{true};

/** Serializes log lines so parallel campaign cells cannot interleave
 *  partial messages on stderr. */
AnnotatedMutex &
logMutex()
{
    static AnnotatedMutex mutex;
    return mutex;
}

} // namespace

void
setLogVerbose(bool verbose)
{
    verboseFlag.store(verbose, std::memory_order_relaxed);
}

bool
logVerbose()
{
    return verboseFlag.load(std::memory_order_relaxed);
}

namespace detail {

void
logMessage(const char *prefix, const char *file, int line,
           const std::string &msg)
{
    if (!logVerbose())
        return;
    MutexLock lock(logMutex());
    std::fprintf(stderr, "%s: %s (%s:%d)\n", prefix, msg.c_str(), file,
                 line);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

} // namespace detail
} // namespace seesaw
