#include "common/random.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace seesaw {

namespace {

/** splitmix64: expands a single seed into well-distributed state words. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : s_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    SEESAW_ASSERT(bound > 0, "nextBounded requires bound > 0");
    // Rejection-free multiply-shift; bias is negligible for our bounds.
    __uint128_t product = static_cast<__uint128_t>(next()) * bound;
    return static_cast<std::uint64_t>(product >> 64);
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

void
Rng::buildZipf(std::uint64_t n, double alpha)
{
    zipfN_ = n;
    zipfAlpha_ = alpha;
    zipfCdf_.resize(n);
    double sum = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
        zipfCdf_[i] = sum;
    }
    for (auto &v : zipfCdf_)
        v /= sum;

    // Guide table: bucket b holds the first index whose CDF value can
    // answer any u in [b/B, (b+1)/B); the next bucket's entry bounds
    // the search from above. Search results are identical to a full
    // binary search — the bounds merely start tighter.
    const std::size_t buckets =
        std::min<std::uint64_t>(4096, std::max<std::uint64_t>(1, n));
    zipfGuide_.assign(buckets + 1, static_cast<std::uint32_t>(n - 1));
    std::uint64_t idx = 0;
    for (std::size_t b = 0; b < buckets; ++b) {
        const double lo_u =
            static_cast<double>(b) / static_cast<double>(buckets);
        while (idx < n - 1 && zipfCdf_[idx] < lo_u)
            ++idx;
        zipfGuide_[b] = static_cast<std::uint32_t>(idx);
    }
}

std::uint64_t
Rng::nextZipf(std::uint64_t n, double alpha)
{
    SEESAW_ASSERT(n > 0, "nextZipf requires n > 0");
    if (n != zipfN_ || alpha != zipfAlpha_)
        buildZipf(n, alpha);
    const double u = nextDouble();
    // Binary search for the first CDF entry >= u, started from the
    // guide table's tight bounds for u's bucket.
    const std::size_t buckets = zipfGuide_.size() - 1;
    const auto b = static_cast<std::size_t>(
        u * static_cast<double>(buckets));
    std::uint64_t lo = zipfGuide_[b], hi = zipfGuide_[b + 1];
    while (lo < hi) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        if (zipfCdf_[mid] < u)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

std::uint64_t
Rng::nextGeometric(double mean)
{
    if (mean <= 0.0)
        return 0;
    const double u = nextDouble();
    // Inverse-CDF of the exponential, rounded to the nearest integer
    // (plain truncation would bias the mean low by ~0.5).
    return static_cast<std::uint64_t>(-mean * std::log1p(-u) + 0.5);
}

} // namespace seesaw
