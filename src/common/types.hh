/**
 * @file
 * Fundamental type aliases shared across the SEESAW simulator.
 */

#ifndef SEESAW_COMMON_TYPES_HH
#define SEESAW_COMMON_TYPES_HH

#include <cstdint>

namespace seesaw {

/** A virtual or physical memory address (byte granularity). */
using Addr = std::uint64_t;

/** A simulation time expressed in core clock cycles. */
using Cycles = std::uint64_t;

/** A count of simulated instructions. */
using InstCount = std::uint64_t;

/** Energy in picojoules; kept integral at pJ granularity upstream and
 *  converted to nJ/uJ only for reporting. */
using PicoJoules = double;

/** An address-space identifier (per process). */
using Asid = std::uint16_t;

/** Identifier of a core in a multi-core system. */
using CoreId = std::uint32_t;

/** The supported x86-64 page sizes. */
enum class PageSize : std::uint8_t {
    Base4KB,
    Super2MB,
    Super1GB,
};

/** @return The page-offset width in bits for @p size. */
constexpr unsigned
pageOffsetBits(PageSize size)
{
    switch (size) {
      case PageSize::Base4KB: return 12;
      case PageSize::Super2MB: return 21;
      case PageSize::Super1GB: return 30;
    }
    return 12;
}

/** @return The page size in bytes for @p size. */
constexpr std::uint64_t
pageBytes(PageSize size)
{
    return std::uint64_t{1} << pageOffsetBits(size);
}

/** @return True if @p size is larger than the base page size. */
constexpr bool
isSuperpage(PageSize size)
{
    return size != PageSize::Base4KB;
}

/** Whether a memory reference reads or writes. */
enum class AccessType : std::uint8_t {
    Read,
    Write,
};

/** Kind of L1 lookup: CPU-initiated (virtual address available) or a
 *  coherence probe (physical address only). */
enum class LookupOrigin : std::uint8_t {
    Cpu,
    Coherence,
};

} // namespace seesaw

#endif // SEESAW_COMMON_TYPES_HH
