/**
 * @file
 * gem5-style status and error reporting: panic() for simulator bugs,
 * fatal() for user configuration errors, warn()/inform() for status.
 *
 * Thread safety: the verbosity switch is an atomic, and message
 * emission is serialized under an internal mutex, so parallel
 * campaign cells (src/harness) may log concurrently without tearing
 * lines. panic()/fatal() abort/exit the whole process by design.
 */

#ifndef SEESAW_COMMON_LOGGING_HH
#define SEESAW_COMMON_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace seesaw {

namespace detail {

/** Emit @p msg with a severity prefix and source location. */
void logMessage(const char *prefix, const char *file, int line,
                const std::string &msg);

/** Emit and abort(); used for internal invariant violations. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Emit and exit(1); used for invalid user configuration. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Stream-concatenate arbitrary arguments into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Global verbosity switch for inform()/warn(); tests silence output. */
void setLogVerbose(bool verbose);
bool logVerbose();

} // namespace seesaw

/** Invariant violation: a simulator bug. Aborts. */
#define SEESAW_PANIC(...) \
    ::seesaw::detail::panicImpl(__FILE__, __LINE__, \
                                ::seesaw::detail::concat(__VA_ARGS__))

/** Unrecoverable user/configuration error. Exits with status 1. */
#define SEESAW_FATAL(...) \
    ::seesaw::detail::fatalImpl(__FILE__, __LINE__, \
                                ::seesaw::detail::concat(__VA_ARGS__))

/** Non-fatal warning about questionable behaviour. */
#define SEESAW_WARN(...) \
    ::seesaw::detail::logMessage("warn", __FILE__, __LINE__, \
                                 ::seesaw::detail::concat(__VA_ARGS__))

/** Informational status message. */
#define SEESAW_INFORM(...) \
    ::seesaw::detail::logMessage("info", __FILE__, __LINE__, \
                                 ::seesaw::detail::concat(__VA_ARGS__))

/** Cheap always-on assertion macro that reports via panic. */
#define SEESAW_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            SEESAW_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)

#endif // SEESAW_COMMON_LOGGING_HH
