/**
 * @file
 * A minimal gem5-flavoured statistics package.
 *
 * Components register named statistics in a StatGroup; experiments pull
 * values by name or dump the whole group. Statistics are plain counters
 * and distributions — cheap enough to update on every simulated access.
 */

#ifndef SEESAW_COMMON_STATS_HH
#define SEESAW_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace seesaw {

/** A scalar counter (also usable as an accumulator of doubles). */
class StatScalar
{
  public:
    StatScalar() = default;

    StatScalar &operator+=(double v) { value_ += v; return *this; }
    StatScalar &operator++() { value_ += 1.0; return *this; }
    void set(double v) { value_ = v; }
    void reset() { value_ = 0.0; }

    double value() const { return value_; }
    std::uint64_t count() const
    {
        return static_cast<std::uint64_t>(value_);
    }

  private:
    double value_ = 0.0;
};

/** Running mean/min/max/variance over samples. */
class StatDistribution
{
  public:
    void sample(double v);
    void reset();

    std::uint64_t samples() const { return n_; }
    double mean() const { return n_ ? sum_ / n_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double variance() const;
    double total() const { return sum_; }

  private:
    std::uint64_t n_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-bucket histogram over [0, bucketWidth * numBuckets). */
class StatHistogram
{
  public:
    StatHistogram(double bucket_width, std::size_t num_buckets);

    void sample(double v);
    void reset();

    std::uint64_t bucketCount(std::size_t i) const { return buckets_[i]; }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t samples() const { return samples_; }
    double bucketWidth() const { return bucketWidth_; }

  private:
    double bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
};

/**
 * A named collection of statistics. Components own a StatGroup and
 * register their stats once at construction.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name);

    /** Register (or fetch) a scalar statistic named @p name. */
    StatScalar &scalar(const std::string &name);

    /** Register (or fetch) a distribution statistic named @p name. */
    StatDistribution &distribution(const std::string &name);

    /** @return The scalar's value, or 0 when absent. */
    double get(const std::string &name) const;

    /** Reset every statistic in the group. */
    void resetAll();

    /** Render "group.stat value" lines for every statistic. */
    std::string dump() const;

    const std::string &name() const { return name_; }

    const std::map<std::string, StatScalar> &scalars() const
    {
        return scalars_;
    }

  private:
    std::string name_;
    std::map<std::string, StatScalar> scalars_;
    std::map<std::string, StatDistribution> distributions_;
};

} // namespace seesaw

#endif // SEESAW_COMMON_STATS_HH
