/**
 * @file
 * Small bit-manipulation helpers used for address slicing throughout the
 * cache, TLB and page-table code.
 */

#ifndef SEESAW_COMMON_BITOPS_HH
#define SEESAW_COMMON_BITOPS_HH

#include <bit>
#include <cstdint>

namespace seesaw {

/**
 * Extract bits [hi:lo] (inclusive, 0-indexed from the LSB) of @p value.
 * Mirrors the bit-slice notation used in the paper's figures.
 */
constexpr std::uint64_t
bits(std::uint64_t value, unsigned hi, unsigned lo)
{
    const unsigned width = hi - lo + 1;
    if (width >= 64)
        return value >> lo;
    return (value >> lo) & ((std::uint64_t{1} << width) - 1);
}

/** Extract a single bit of @p value. */
constexpr std::uint64_t
bit(std::uint64_t value, unsigned pos)
{
    return (value >> pos) & 1;
}

/** @return A mask with bits [hi:lo] set. */
constexpr std::uint64_t
mask(unsigned hi, unsigned lo)
{
    const unsigned width = hi - lo + 1;
    if (width >= 64)
        return ~std::uint64_t{0} << lo;
    return ((std::uint64_t{1} << width) - 1) << lo;
}

/** @return True when @p value is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** @return floor(log2(value)); @p value must be non-zero. */
constexpr unsigned
log2Floor(std::uint64_t value)
{
    return 63 - std::countl_zero(value);
}

/** @return ceil(log2(value)); @p value must be non-zero. */
constexpr unsigned
log2Ceil(std::uint64_t value)
{
    return value <= 1 ? 0 : log2Floor(value - 1) + 1;
}

/** Round @p value up to the next multiple of the power-of-two @p align. */
constexpr std::uint64_t
alignUp(std::uint64_t value, std::uint64_t align)
{
    return (value + align - 1) & ~(align - 1);
}

/** Round @p value down to a multiple of the power-of-two @p align. */
constexpr std::uint64_t
alignDown(std::uint64_t value, std::uint64_t align)
{
    return value & ~(align - 1);
}

} // namespace seesaw

#endif // SEESAW_COMMON_BITOPS_HH
