/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All stochastic components of the simulator draw from an explicitly
 * seeded Rng so that every experiment is reproducible bit-for-bit.
 */

#ifndef SEESAW_COMMON_RANDOM_HH
#define SEESAW_COMMON_RANDOM_HH

#include <cstdint>
#include <vector>

namespace seesaw {

/**
 * A small, fast, deterministic generator (xoshiro256**).
 *
 * We deliberately avoid std::mt19937 in hot paths: the workload
 * generators draw hundreds of millions of values per experiment.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 expansion. The
     *  seed is mandatory: a default would let a bench or test pick up
     *  an implicit stream and silently lose SEESAW_JOBS=1
     *  reproducibility. */
    explicit Rng(std::uint64_t seed);

    /** @return The next raw 64-bit value. */
    std::uint64_t next();

    /** @return A uniform value in [0, bound). @p bound must be > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** @return A uniform double in [0, 1). */
    double nextDouble();

    /** @return True with probability @p p (clamped to [0,1]). */
    bool chance(double p);

    /**
     * Sample from a Zipf distribution over {0, .., n-1} with exponent
     * @p alpha, using a cached CDF built lazily per (n, alpha).
     */
    std::uint64_t nextZipf(std::uint64_t n, double alpha);

    /** Sample a geometric-like reuse distance with mean @p mean. */
    std::uint64_t nextGeometric(double mean);

  private:
    std::uint64_t s_[4];

    // Cached Zipf CDF to avoid rebuilding per sample, plus a guide
    // table mapping the top bits of u to tight binary-search bounds
    // (Chen's method): identical results, ~O(1) expected probes.
    std::uint64_t zipfN_ = 0;
    double zipfAlpha_ = -1.0;
    std::vector<double> zipfCdf_;
    std::vector<std::uint32_t> zipfGuide_;

    void buildZipf(std::uint64_t n, double alpha);
};

} // namespace seesaw

#endif // SEESAW_COMMON_RANDOM_HH
