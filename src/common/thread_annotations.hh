/**
 * @file
 * Clang Thread Safety Analysis capability annotations, plus the
 * annotated mutex/guard pair every concurrent class in this repo uses.
 *
 * The macros expand to Clang's thread-safety attributes under Clang
 * and to nothing elsewhere, so GCC builds are unaffected.  Configure
 * with -DSEESAW_THREAD_SAFETY=ON (Clang only) to turn the annotations
 * into compiler-checked errors: every shared field declares the mutex
 * that guards it (SEESAW_GUARDED_BY), every `...Locked()` helper
 * declares its precondition (SEESAW_REQUIRES), and the analysis
 * rejects any access path that does not provably hold the right lock
 * — across every interleaving, not just the ones a tsan run happens
 * to execute.
 *
 * Conventions (see DESIGN.md "Concurrency rules"):
 *  - mutexes are `AnnotatedMutex`, scoped acquisition is `MutexLock`;
 *  - public locking methods declare SEESAW_EXCLUDES(mutex_) so
 *    self-deadlock is a compile error at the call site;
 *  - condition-variable waits go through MutexLock::wait/waitFor with
 *    an explicit re-check loop (no predicate lambdas: the analysis
 *    treats lambda bodies as separate unannotated functions);
 *  - SEESAW_NO_THREAD_SAFETY_ANALYSIS is an escape hatch of last
 *    resort and scripts/check_nolint.py requires a justification
 *    comment on the same line.
 */

#ifndef SEESAW_COMMON_THREAD_ANNOTATIONS_HH
#define SEESAW_COMMON_THREAD_ANNOTATIONS_HH

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define SEESAW_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SEESAW_THREAD_ANNOTATION(x)
#endif

/** Marks a class as a lockable capability (mutex wrappers). */
#define SEESAW_CAPABILITY(x) SEESAW_THREAD_ANNOTATION(capability(x))

/** Marks an RAII class whose lifetime holds a capability. */
#define SEESAW_SCOPED_CAPABILITY SEESAW_THREAD_ANNOTATION(scoped_lockable)

/** Field is readable/writable only while holding the named mutex. */
#define SEESAW_GUARDED_BY(x) SEESAW_THREAD_ANNOTATION(guarded_by(x))

/** Pointee is guarded by the named mutex (the pointer itself is not). */
#define SEESAW_PT_GUARDED_BY(x) SEESAW_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function precondition: caller already holds the named mutex(es).
 *  The project's `...Locked()` private helpers all declare this. */
#define SEESAW_REQUIRES(...) \
    SEESAW_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires the named mutex(es) (or `this` when empty). */
#define SEESAW_ACQUIRE(...) \
    SEESAW_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the named mutex(es) (or `this` when empty). */
#define SEESAW_RELEASE(...) \
    SEESAW_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function acquires the mutex(es) iff it returns the given value. */
#define SEESAW_TRY_ACQUIRE(...) \
    SEESAW_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function must NOT be entered with the named mutex(es) held —
 *  public methods that lock internally declare this so re-entrant
 *  self-deadlock is a compile-time error. */
#define SEESAW_EXCLUDES(...) \
    SEESAW_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Declares the sanctioned acquisition order between two mutexes. */
#define SEESAW_ACQUIRED_BEFORE(...) \
    SEESAW_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SEESAW_ACQUIRED_AFTER(...) \
    SEESAW_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Function returns a reference to the named mutex. */
#define SEESAW_RETURN_CAPABILITY(x) \
    SEESAW_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: function body is not analysed.  Every use must carry
 *  a same-line justification comment (policed by check_nolint.py). */
#define SEESAW_NO_THREAD_SAFETY_ANALYSIS \
    SEESAW_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace seesaw {

/**
 * A std::mutex carrying the `capability` attribute, so fields can
 * declare SEESAW_GUARDED_BY(mutex_) against it and the analysis can
 * track acquisition.  Always lock through MutexLock; the raw
 * lock()/unlock() pair exists for the rare non-scoped protocol and
 * for the analysis itself.
 */
class SEESAW_CAPABILITY("mutex") AnnotatedMutex
{
  public:
    AnnotatedMutex() = default;
    AnnotatedMutex(const AnnotatedMutex &) = delete;
    AnnotatedMutex &operator=(const AnnotatedMutex &) = delete;

    void
    lock() SEESAW_ACQUIRE()
    {
        mutex_.lock();
    }

    void
    unlock() SEESAW_RELEASE()
    {
        mutex_.unlock();
    }

  private:
    friend class MutexLock; //!< cv waits need the raw std::mutex
    std::mutex mutex_;
};

/**
 * Scoped acquisition of an AnnotatedMutex (the project's lock_guard).
 * Also the only sanctioned way to block on a condition variable:
 * wait()/waitFor() release the mutex while blocked and hold it again
 * on return.  Spurious wakeups are possible by design, so callers
 * re-check their predicate in an explicit loop — predicate lambdas
 * are deliberately not offered, because the analysis treats lambda
 * bodies as separate, unannotated functions and would either miss or
 * misreport the guarded accesses inside them.
 */
class SEESAW_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(AnnotatedMutex &mutex) SEESAW_ACQUIRE(mutex)
        : lock_(mutex.mutex_)
    {
    }

    ~MutexLock() SEESAW_RELEASE() {}

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    /** Block until notified (or spuriously woken); the mutex is held
     *  again on return.  Call in a predicate re-check loop. */
    void
    wait(std::condition_variable &cv)
    {
        cv.wait(lock_);
    }

    /** Block for at most @p timeout; the mutex is held again on
     *  return.  Call in a predicate re-check loop. */
    template <typename Rep, typename Period>
    std::cv_status
    waitFor(std::condition_variable &cv,
            const std::chrono::duration<Rep, Period> &timeout)
    {
        return cv.wait_for(lock_, timeout);
    }

  private:
    std::unique_lock<std::mutex> lock_;
};

} // namespace seesaw

#endif // SEESAW_COMMON_THREAD_ANNOTATIONS_HH
