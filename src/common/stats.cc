#include "common/stats.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace seesaw {

void
StatDistribution::sample(double v)
{
    if (n_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++n_;
    sum_ += v;
    sumSq_ += v * v;
}

void
StatDistribution::reset()
{
    *this = StatDistribution{};
}

double
StatDistribution::variance() const
{
    if (n_ < 2)
        return 0.0;
    const double m = mean();
    return (sumSq_ - n_ * m * m) / (n_ - 1);
}

StatHistogram::StatHistogram(double bucket_width, std::size_t num_buckets)
    : bucketWidth_(bucket_width), buckets_(num_buckets, 0)
{
    SEESAW_ASSERT(bucket_width > 0.0 && num_buckets > 0,
                  "histogram needs positive geometry");
}

void
StatHistogram::sample(double v)
{
    ++samples_;
    if (v < 0.0) {
        ++overflow_;
        return;
    }
    const auto idx = static_cast<std::size_t>(v / bucketWidth_);
    if (idx >= buckets_.size())
        ++overflow_;
    else
        ++buckets_[idx];
}

void
StatHistogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    samples_ = 0;
}

StatGroup::StatGroup(std::string name) : name_(std::move(name)) {}

StatScalar &
StatGroup::scalar(const std::string &name)
{
    return scalars_[name];
}

StatDistribution &
StatGroup::distribution(const std::string &name)
{
    return distributions_[name];
}

double
StatGroup::get(const std::string &name) const
{
    auto it = scalars_.find(name);
    return it == scalars_.end() ? 0.0 : it->second.value();
}

void
StatGroup::resetAll()
{
    for (auto &[name, stat] : scalars_)
        stat.reset();
    for (auto &[name, stat] : distributions_)
        stat.reset();
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &[name, stat] : scalars_)
        os << name_ << '.' << name << ' ' << stat.value() << '\n';
    for (const auto &[name, stat] : distributions_) {
        os << name_ << '.' << name << ".mean " << stat.mean() << '\n';
        os << name_ << '.' << name << ".min " << stat.min() << '\n';
        os << name_ << '.' << name << ".max " << stat.max() << '\n';
    }
    return os.str();
}

} // namespace seesaw
