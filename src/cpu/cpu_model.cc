#include "cpu/cpu_model.hh"

namespace seesaw {

CpuParams
CpuParams::sandybridge()
{
    CpuParams p;
    p.issueWidth = 4;
    p.robEntries = 168;
    p.schedEntries = 54;
    p.squashPenaltyCycles = 9;
    p.missOverlapFraction = 0.55;
    return p;
}

CpuParams
CpuParams::atom()
{
    CpuParams p;
    p.issueWidth = 2;
    p.robEntries = 0;  // in-order: no reorder buffer
    p.schedEntries = 0;
    p.squashPenaltyCycles = 0; // no speculative scheduling to replay
    p.missOverlapFraction = 0.0;
    p.inorderMissOverlap = 0.10;
    return p;
}

CpuModel::CpuModel(CoreKind kind, const CpuParams &params)
    : kind_(kind), params_(params),
      stats_(kind == CoreKind::InOrder ? "inorder" : "ooo"),
      stMissStalls_(&stats_.scalar("miss_stalls")),
      stSquashes_(&stats_.scalar("squashes")),
      stRescheduleBubbles_(&stats_.scalar("reschedule_bubbles"))
{
}

} // namespace seesaw
