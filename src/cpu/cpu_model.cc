#include "cpu/cpu_model.hh"

namespace seesaw {

CpuParams
CpuParams::sandybridge()
{
    CpuParams p;
    p.issueWidth = 4;
    p.robEntries = 168;
    p.schedEntries = 54;
    p.squashPenaltyCycles = 9;
    p.missOverlapFraction = 0.55;
    return p;
}

CpuParams
CpuParams::atom()
{
    CpuParams p;
    p.issueWidth = 2;
    p.robEntries = 0;  // in-order: no reorder buffer
    p.schedEntries = 0;
    p.squashPenaltyCycles = 0; // no speculative scheduling to replay
    p.missOverlapFraction = 0.0;
    p.inorderMissOverlap = 0.10;
    return p;
}

CpuModel::CpuModel(const CpuParams &params, std::string name)
    : params_(params), stats_(std::move(name))
{
}

void
CpuModel::chargeSquashIfNeeded(unsigned actual_cycles,
                               unsigned assumed_cycles,
                               bool late_discovery)
{
    if (actual_cycles <= assumed_cycles ||
        params_.squashPenaltyCycles == 0) {
        return;
    }
    if (late_discovery) {
        cycles_ += params_.squashPenaltyCycles;
        ++squashes_;
        ++stats_.scalar("squashes");
    } else {
        // Early discovery (e.g., the TFT miss signal): the scheduler
        // cancels the speculative wakeup and re-arbitrates.
        cycles_ += 1;
        ++stats_.scalar("reschedule_bubbles");
    }
}

} // namespace seesaw
