#include "cpu/cpu_model.hh"

namespace seesaw {

InOrderCore::InOrderCore(const CpuParams &params)
    : CpuModel(params, "inorder")
{
}

void
InOrderCore::retireNonMemory(std::uint64_t count)
{
    instructions_ += count;
    // Dual-issue: non-memory work retires issueWidth per cycle.
    cycles_ += (count + params_.issueWidth - 1) / params_.issueWidth;
}

void
InOrderCore::retireMemory(const MemTiming &timing)
{
    ++instructions_;
    // The in-order pipeline exposes much more of the load-to-use
    // latency than an OoO window: only compiler scheduling and the
    // second issue slot cover any of it.
    const double exposed_hit =
        1.0 + CpuParams::exposedHitCycles(
                  timing.lookupCycles, params_.inorderL1ExposureFactor,
                  params_.inorderL1ExposureSaturation);
    fractionalCycles_ += exposed_hit;
    const auto whole = static_cast<Cycles>(fractionalCycles_);
    fractionalCycles_ -= static_cast<double>(whole);
    cycles_ += whole;
    if (!timing.hit) {
        const double exposed =
            timing.missPenalty * (1.0 - params_.inorderMissOverlap);
        cycles_ += static_cast<Cycles>(exposed);
        ++stats_.scalar("miss_stalls");
    }
    // In-order issue has no speculative wakeup, hence no squashes —
    // this is why SEESAW's latency benefit is larger here (Fig 9).
}

} // namespace seesaw
