#include "cpu/cpu_model.hh"

namespace seesaw {

OoOCore::OoOCore(const CpuParams &params) : CpuModel(params, "ooo") {}

void
OoOCore::retireNonMemory(std::uint64_t count)
{
    instructions_ += count;
    fractionalCycles_ +=
        static_cast<double>(count) / params_.issueWidth;
    const auto whole = static_cast<Cycles>(fractionalCycles_);
    fractionalCycles_ -= static_cast<double>(whole);
    cycles_ += whole;
}

void
OoOCore::retireMemory(const MemTiming &timing)
{
    ++instructions_;

    // The scheduler speculatively wakes dependents at the assumed
    // latency; arriving later than assumed forces a squash-and-replay
    // (Section IV-B3). This applies to slow SEESAW hits under a fast
    // assumption, to way-predictor mispredicts, and to plain misses.
    const unsigned actual = timing.lookupCycles + timing.missPenalty;
    chargeSquashIfNeeded(actual, timing.assumedCycles,
                         timing.lateDiscovery);

    // Hit latency: the first cycle pipelines under issue; the window
    // hides most of the remainder, sub-linearly in the latency.
    fractionalCycles_ += CpuParams::exposedHitCycles(
        timing.lookupCycles, params_.l1ExposureFactor,
        params_.l1ExposureSaturation);

    // Miss penalty: partially overlapped by MLP within the ROB window.
    if (!timing.hit) {
        fractionalCycles_ +=
            timing.missPenalty * (1.0 - params_.missOverlapFraction);
        ++stats_.scalar("miss_stalls");
    }

    const auto whole = static_cast<Cycles>(fractionalCycles_);
    fractionalCycles_ -= static_cast<double>(whole);
    cycles_ += whole;
}

} // namespace seesaw
