/**
 * @file
 * Core timing models: an in-order Atom-like core and an out-of-order
 * Sandybridge-like core (Table II).
 *
 * These are throughput models, not pipeline simulators: they charge
 * cycles for committed instructions and memory accesses, capturing the
 * effects the paper's evaluation depends on — (i) in-order cores
 * expose the full L1 hit latency while out-of-order cores hide part of
 * it, and (ii) speculative scheduling replays (squashes) when a
 * variable-latency L1 misses the latency the scheduler assumed
 * (Section IV-B3).
 *
 * CpuModel is concrete: the retire fast path branches on CoreKind
 * instead of going through virtual dispatch, so the per-reference calls
 * from System::runLoop inline. InOrderCore / OoOCore remain as thin
 * preset subclasses for tests and direct construction.
 */

#ifndef SEESAW_CPU_CPU_MODEL_HH
#define SEESAW_CPU_CPU_MODEL_HH

#include <cmath>
#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"

namespace seesaw {

/** Core kind (Table II). */
enum class CoreKind : std::uint8_t
{
    InOrder,    //!< ~Intel Atom
    OutOfOrder, //!< ~Intel Sandybridge
};

/** Timing of one memory access as seen by the core. */
struct MemTiming
{
    bool hit = false;
    unsigned lookupCycles = 0;  //!< L1 lookup latency
    unsigned missPenalty = 0;   //!< outer-hierarchy cycles (0 on hit)
    unsigned assumedCycles = 0; //!< latency the scheduler assumed

    /** The true latency was discovered after the speculative wakeup
     *  (miss, WP mispredict): exceeding the assumption costs a full
     *  squash-and-replay. Early discoveries (the TFT miss signal
     *  arrives in a quarter cycle) only cost a scheduler bubble. */
    bool lateDiscovery = false;
};

/** Core microarchitecture parameters. */
struct CpuParams
{
    unsigned issueWidth = 4;
    unsigned robEntries = 168;       //!< Sandybridge (Table II)
    unsigned schedEntries = 54;
    unsigned squashPenaltyCycles = 9; //!< replay after a mis-scheduled load

    /**
     * Exposure coefficient of L1 hit latency: the pipeline exposes
     * k * x / (1 + x / L) cycles per access, where x = latency - 1.
     * Exposure starts linear (every extra cycle of a short hit delays
     * dependents) and saturates at k*L (the window hides most of a
     * very long 128KB VIPT hit) — which is exactly the gap SEESAW
     * closes (Table III).
     */
    double l1ExposureFactor = 0.10;

    /** Saturation constant L of the exposure curve (cycles). */
    double l1ExposureSaturation = 4.5;

    /** Fraction of the miss penalty hidden by memory-level
     *  parallelism and the ROB. */
    double missOverlapFraction = 0.55;

    /** In-order: small non-blocking-cache overlap on misses. */
    double inorderMissOverlap = 0.10;

    /** In-order exposure coefficient (same law, larger k and a more
     *  linear curve): only compiler scheduling and the second issue
     *  slot cover load-to-use latency — the reason SEESAW's latency
     *  cut is worth more on in-order cores (Fig 9). */
    double inorderL1ExposureFactor = 0.26;

    /** In-order saturation constant (cycles). */
    double inorderL1ExposureSaturation = 4.5;

    /** Exposed cycles of an L1 hit of @p lookup_cycles. */
    static double
    exposedHitCycles(unsigned lookup_cycles, double k, double sat)
    {
        if (lookup_cycles <= 1)
            return 0.0;
        const double x = static_cast<double>(lookup_cycles - 1);
        return k * x / (1.0 + x / sat);
    }

    /** ~Intel Sandybridge OoO core (Table II). */
    static CpuParams sandybridge();

    /** ~Intel Atom in-order core: dual-issue, 16-stage (Table II). */
    static CpuParams atom();
};

/**
 * Concrete core timing model: in-order or out-of-order per CoreKind.
 */
class CpuModel
{
  public:
    CpuModel(CoreKind kind, const CpuParams &params);
    virtual ~CpuModel() = default;

    CoreKind kind() const { return kind_; }

    /** Charge @p count non-memory instructions. */
    void
    retireNonMemory(std::uint64_t count)
    {
        instructions_ += count;
        if (kind_ == CoreKind::InOrder) {
            // Dual-issue: non-memory work retires issueWidth per cycle.
            cycles_ +=
                (count + params_.issueWidth - 1) / params_.issueWidth;
        } else {
            fractionalCycles_ +=
                static_cast<double>(count) / params_.issueWidth;
            carryWholeCycles();
        }
    }

    /** Charge one memory access. */
    void
    retireMemory(const MemTiming &timing)
    {
        if (kind_ == CoreKind::InOrder)
            retireMemoryInOrder(timing);
        else
            retireMemoryOoO(timing);
    }

    /** Add raw stall cycles (TLB shootdowns, cache sweeps, ...). */
    void
    addStallCycles(Cycles cycles)
    {
        cycles_ += cycles;
    }

    Cycles cycles() const { return cycles_; }
    std::uint64_t squashes() const { return stSquashes_->count(); }
    std::uint64_t missStalls() const { return stMissStalls_->count(); }
    std::uint64_t
    rescheduleBubbles() const
    {
        return stRescheduleBubbles_->count();
    }
    std::uint64_t instructions() const { return instructions_; }

    /** Zero the timing counters (end of a warmup phase). */
    void
    resetCounters()
    {
        cycles_ = 0;
        fractionalCycles_ = 0.0;
        instructions_ = 0;
        stats_.resetAll();
    }

    double
    ipc() const
    {
        return cycles_ ? static_cast<double>(instructions_) /
                             static_cast<double>(cycles_)
                       : 0.0;
    }

    const CpuParams &params() const { return params_; }
    const StatGroup &stats() const { return stats_; }
    StatGroup &stats() { return stats_; }

  protected:
    CoreKind kind_;
    CpuParams params_;
    Cycles cycles_ = 0;
    double fractionalCycles_ = 0.0;
    std::uint64_t instructions_ = 0;
    StatGroup stats_;

    // Hot-path stat handles (registered once; see common/stats.hh).
    StatScalar *stMissStalls_;
    StatScalar *stSquashes_;
    StatScalar *stRescheduleBubbles_;

    /** Fold accumulated fractional cycles into the whole-cycle count. */
    void
    carryWholeCycles()
    {
        const auto whole = static_cast<Cycles>(fractionalCycles_);
        fractionalCycles_ -= static_cast<double>(whole);
        cycles_ += whole;
    }

    /** Charge for exceeding the scheduler's latency assumption: a
     *  full squash-and-replay when discovered late, a one-cycle
     *  re-arbitration bubble when discovered early. */
    void
    chargeSquashIfNeeded(unsigned actual_cycles,
                         unsigned assumed_cycles, bool late_discovery)
    {
        if (actual_cycles <= assumed_cycles ||
            params_.squashPenaltyCycles == 0) {
            return;
        }
        if (late_discovery) {
            cycles_ += params_.squashPenaltyCycles;
            ++*stSquashes_;
        } else {
            // Early discovery (e.g., the TFT miss signal): the
            // scheduler cancels the speculative wakeup and
            // re-arbitrates.
            cycles_ += 1;
            ++*stRescheduleBubbles_;
        }
    }

    void
    retireMemoryInOrder(const MemTiming &timing)
    {
        ++instructions_;
        // The in-order pipeline exposes much more of the load-to-use
        // latency than an OoO window: only compiler scheduling and the
        // second issue slot cover any of it.
        const double exposed_hit =
            1.0 +
            CpuParams::exposedHitCycles(
                timing.lookupCycles, params_.inorderL1ExposureFactor,
                params_.inorderL1ExposureSaturation);
        fractionalCycles_ += exposed_hit;
        carryWholeCycles();
        if (!timing.hit) {
            const double exposed =
                timing.missPenalty * (1.0 - params_.inorderMissOverlap);
            cycles_ += static_cast<Cycles>(exposed);
            ++*stMissStalls_;
        }
        // In-order issue has no speculative wakeup, hence no squashes —
        // this is why SEESAW's latency benefit is larger here (Fig 9).
    }

    void
    retireMemoryOoO(const MemTiming &timing)
    {
        ++instructions_;

        // The scheduler speculatively wakes dependents at the assumed
        // latency; arriving later than assumed forces a
        // squash-and-replay (Section IV-B3). This applies to slow
        // SEESAW hits under a fast assumption, to way-predictor
        // mispredicts, and to plain misses.
        const unsigned actual =
            timing.lookupCycles + timing.missPenalty;
        chargeSquashIfNeeded(actual, timing.assumedCycles,
                             timing.lateDiscovery);

        // Hit latency: the first cycle pipelines under issue; the
        // window hides most of the remainder, sub-linearly in the
        // latency.
        fractionalCycles_ += CpuParams::exposedHitCycles(
            timing.lookupCycles, params_.l1ExposureFactor,
            params_.l1ExposureSaturation);

        // Miss penalty: partially overlapped by MLP within the ROB
        // window.
        if (!timing.hit) {
            fractionalCycles_ +=
                timing.missPenalty *
                (1.0 - params_.missOverlapFraction);
            ++*stMissStalls_;
        }

        carryWholeCycles();
    }
};

/**
 * Dual-issue in-order core: memory latency is exposed in full.
 */
class InOrderCore final : public CpuModel
{
  public:
    explicit InOrderCore(const CpuParams &params = CpuParams::atom())
        : CpuModel(CoreKind::InOrder, params)
    {
    }
};

/**
 * Out-of-order core: hides part of the hit latency and overlaps
 * misses, but pays replay penalties on mis-scheduled loads.
 */
class OoOCore final : public CpuModel
{
  public:
    explicit OoOCore(const CpuParams &params = CpuParams::sandybridge())
        : CpuModel(CoreKind::OutOfOrder, params)
    {
    }
};

} // namespace seesaw

#endif // SEESAW_CPU_CPU_MODEL_HH
