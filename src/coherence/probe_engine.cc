#include "coherence/probe_engine.hh"

namespace seesaw {

ProbeEngine::ProbeEngine(const ProbeEngineParams &params, L1Cache &l1,
                         EnergyModel &energy)
    : params_(params), l1_(l1), energy_(energy),
      bus_(params.fabric, params.snoopAbsentFactor, params.seed),
      stats_("probe_engine")
{
    directedRate_ = params_.systemProbesPerKiloInstr +
                    params_.sharingProbesPerKiloInstrPerThread *
                        params_.remoteThreads * params_.sharedFraction;
}

void
ProbeEngine::tick(std::uint64_t instructions)
{
    directedCarry_ +=
        directedRate_ * static_cast<double>(instructions) / 1000.0;
    if (directedCarry_ < 1.0)
        return;

    const auto due = static_cast<unsigned>(directedCarry_);
    directedCarry_ -= due;

    const auto probes =
        bus_.generate(due, params_.invalidatingFraction, resident_);
    for (const auto &p : probes) {
        const L1ProbeResult res = l1_.probe(p.pa, p.invalidating);
        ++stats_.scalar("probes");
        if (res.hit)
            ++stats_.scalar("probe_hits");
        if (p.invalidating && res.hit)
            ++stats_.scalar("invalidations");
        if (res.wasDirty)
            ++stats_.scalar("dirty_supplies");
        energy_.addL1Lookup(l1_.tags().sizeBytes(), l1_.tags().assoc(),
                            res.waysRead, /*coherent=*/true);
    }
}

} // namespace seesaw
