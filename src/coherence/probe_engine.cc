#include "coherence/probe_engine.hh"

namespace seesaw {

ProbeEngine::ProbeEngine(const ProbeEngineParams &params, L1Cache &l1,
                         EnergyModel &energy)
    : params_(params), l1_(l1), energy_(energy),
      bus_(params.fabric, params.snoopAbsentFactor, params.seed),
      stats_("probe_engine"),
      stProbes_(&stats_.scalar("probes")),
      stProbeHits_(&stats_.scalar("probe_hits")),
      stInvalidations_(&stats_.scalar("invalidations")),
      stDirtySupplies_(&stats_.scalar("dirty_supplies"))
{
    directedRate_ = params_.systemProbesPerKiloInstr +
                    params_.sharingProbesPerKiloInstrPerThread *
                        params_.remoteThreads * params_.sharedFraction;
}

void
ProbeEngine::tick(std::uint64_t instructions)
{
    directedCarry_ +=
        directedRate_ * static_cast<double>(instructions) / 1000.0;
    if (directedCarry_ < 1.0)
        return;

    const auto due = static_cast<unsigned>(directedCarry_);
    directedCarry_ -= due;

    bus_.generate(due, params_.invalidatingFraction, resident_,
                  probeBuf_);
    for (const auto &p : probeBuf_) {
        const L1ProbeResult res = l1_.probe(p.pa, p.invalidating);
        ++*stProbes_;
        if (res.hit)
            ++*stProbeHits_;
        if (p.invalidating && res.hit)
            ++*stInvalidations_;
        if (res.wasDirty)
            ++*stDirtySupplies_;
        energy_.addL1Lookup(l1_.tags().sizeBytes(), l1_.tags().assoc(),
                            res.waysRead, /*coherent=*/true);
    }
}

} // namespace seesaw
