/**
 * @file
 * MOESI coherence-protocol state transitions (Table II: MOESI
 * directory).
 *
 * The simulator models one L1 in detail; remote cores are abstracted
 * into the probe stream that the ProbeEngine injects. These transition
 * functions define how the local L1's line states evolve under local
 * accesses and remote (probe) events, and are unit-tested against the
 * MOESI truth table.
 */

#ifndef SEESAW_COHERENCE_DIRECTORY_HH
#define SEESAW_COHERENCE_DIRECTORY_HH

#include "cache/replacement.hh"

namespace seesaw {

/**
 * Stateless MOESI transition rules.
 */
class MoesiProtocol
{
  public:
    /** Local load fill: Exclusive when no remote sharer, else Shared. */
    static CoherenceState
    onLocalReadFill(bool remote_sharers)
    {
        return remote_sharers ? CoherenceState::Shared
                              : CoherenceState::Exclusive;
    }

    /** Local load hit: state is unchanged. */
    static CoherenceState
    onLocalReadHit(CoherenceState s)
    {
        return s;
    }

    /** Local store (hit or fill): always ends Modified. Stores to
     *  S/O lines first invalidate remote copies (upgrade). */
    static CoherenceState
    onLocalWrite(CoherenceState)
    {
        return CoherenceState::Modified;
    }

    /** @return True when a store to state @p s must send an upgrade
     *  (remote copies may exist). */
    static bool
    writeNeedsUpgrade(CoherenceState s)
    {
        return s == CoherenceState::Shared || s == CoherenceState::Owned;
    }

    /** Remote read probe hits our line: M/O keep ownership as Owned
     *  (we supply data); E/S drop to Shared. */
    static CoherenceState
    onRemoteRead(CoherenceState s)
    {
        switch (s) {
          case CoherenceState::Modified:
          case CoherenceState::Owned:
            return CoherenceState::Owned;
          case CoherenceState::Exclusive:
          case CoherenceState::Shared:
            return CoherenceState::Shared;
          case CoherenceState::Invalid:
            return CoherenceState::Invalid;
        }
        return CoherenceState::Invalid;
    }

    /** @return True when the probed line must supply data (dirty). */
    static bool
    suppliesData(CoherenceState s)
    {
        return isDirtyState(s);
    }

    /** Remote write/upgrade probe: we invalidate. */
    static CoherenceState
    onRemoteWrite(CoherenceState)
    {
        return CoherenceState::Invalid;
    }

    /** @return True when @p s may silently drop on eviction (clean). */
    static bool
    cleanEviction(CoherenceState s)
    {
        return !isDirtyState(s);
    }
};

} // namespace seesaw

#endif // SEESAW_COHERENCE_DIRECTORY_HH
