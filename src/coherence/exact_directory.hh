/**
 * @file
 * An exact MOESI directory for the multi-core system (Table II:
 * "Coherence: MOESI directory"). Tracks, per cached line, the set of
 * cores holding it and the owning core (if the line is dirty), and
 * produces the precise probe lists each access requires — unlike the
 * stochastic ProbeEngine used for single-core runs, every coherence
 * lookup here corresponds to a real sharer.
 */

#ifndef SEESAW_COHERENCE_EXACT_DIRECTORY_HH
#define SEESAW_COHERENCE_EXACT_DIRECTORY_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace seesaw {

/**
 * Directory state for the private L1s of up to 64 cores.
 */
class ExactDirectory
{
  public:
    explicit ExactDirectory(unsigned num_cores);

    /** Probes the directory instructs the requester to send. */
    struct ProbeList
    {
        /** Cores to probe, in core-id order. */
        std::vector<CoreId> targets;
        bool invalidating = false;
        /** A dirty owner will supply the data (cache-to-cache). */
        bool ownerSupplies = false;
    };

    /**
     * Core @p core is about to read the line of @p pa and missed in
     * its L1. @return The probes required: downgrade the dirty owner
     * (it supplies the data), or downgrade a possible silent-E holder
     * — a sole clean sharer may cache the line Exclusive, and E means
     * "only copy", so it must fall to Shared before a second copy
     * exists. Call recordFill() after the fill completes.
     */
    ProbeList onReadMiss(CoreId core, Addr pa);

    /**
     * Core @p core is about to write the line (miss, or a hit on a
     * Shared/Owned copy). @return Invalidating probes for every other
     * sharer.
     */
    ProbeList onWrite(CoreId core, Addr pa);

    /** Record that @p core now caches the line (dirty = writer). */
    void recordFill(CoreId core, Addr pa, bool dirty);

    /** @p core silently evicted the line. */
    void recordEviction(CoreId core, Addr pa);

    /** Does the directory believe @p core holds the line? */
    bool holds(CoreId core, Addr pa) const;

    /** Sharer count for the line (0 when untracked). */
    unsigned sharerCount(Addr pa) const;

    /** The dirty owner, or -1. */
    int owner(Addr pa) const;

    /** Number of tracked lines. */
    std::size_t trackedLines() const { return lines_.size(); }

    unsigned numCores() const { return numCores_; }

    /** Visit every tracked line: physical line-base address, sharer
     *  bitmask, dirty owner (-1 if clean) — invariant audits. */
    void forEachEntry(
        const std::function<void(Addr pa, std::uint64_t sharers,
                                 int owner)> &fn) const;

    const StatGroup &stats() const { return stats_; }
    StatGroup &stats() { return stats_; }

    /** Dirty owners downgraded to supply read misses. */
    std::uint64_t ownerDowngrades() const
    {
        return stOwnerDowngrades_->count();
    }

    /** Silent-E holders downgraded before a second copy filled. */
    std::uint64_t exclusiveDowngrades() const
    {
        return stExclusiveDowngrades_->count();
    }

    /** Writes that invalidated at least one remote sharer copy. */
    std::uint64_t writeInvalidations() const
    {
        return stWriteInvalidations_->count();
    }

    /** Fills recorded (lines gaining a sharer). */
    std::uint64_t fills() const { return stFills_->count(); }

    /** Silent evictions recorded. */
    std::uint64_t evictions() const { return stEvictions_->count(); }

  private:
    struct Entry
    {
        std::uint64_t sharers = 0; //!< bitmask over cores
        int owner = -1;            //!< core holding M/O, or -1
        /** The sole clean sharer may hold the line Exclusive; a second
         *  reader must downgrade it before filling (MOESI: at most one
         *  E/M copy system-wide). Cleared by any downgrade. */
        bool exclusive = false;
    };

    unsigned numCores_;
    std::unordered_map<Addr, Entry> lines_; //!< keyed by pa >> 6
    StatGroup stats_;

    // Hot-path stat handles (registered once; see common/stats.hh).
    StatScalar *stOwnerDowngrades_;
    StatScalar *stExclusiveDowngrades_;
    StatScalar *stWriteInvalidations_;
    StatScalar *stFills_;
    StatScalar *stEvictions_;

    static Addr lineOf(Addr pa) { return pa >> 6; }
};

} // namespace seesaw

#endif // SEESAW_COHERENCE_EXACT_DIRECTORY_HH
