#include "coherence/snoop_bus.hh"

#include "common/logging.hh"

namespace seesaw {

ResidentLineTracker::ResidentLineTracker(std::size_t capacity)
    : ring_(capacity, 0)
{
    SEESAW_ASSERT(capacity > 0, "tracker capacity must be positive");
}

void
ResidentLineTracker::note(Addr pa)
{
    ring_[head_] = pa & ~Addr{63};
    head_ = (head_ + 1) % ring_.size();
    if (count_ < ring_.size())
        ++count_;
}

Addr
ResidentLineTracker::sample(Rng &rng) const
{
    if (count_ == 0)
        return 0;
    return ring_[rng.nextBounded(count_)];
}

SnoopBus::SnoopBus(CoherenceKind kind, double snoop_absent_factor,
                   std::uint64_t seed)
    : kind_(kind), snoopAbsentFactor_(snoop_absent_factor), rng_(seed)
{
}

std::vector<SnoopBus::ProbeRequest>
SnoopBus::generate(unsigned directed, double invalidating_fraction,
                   const ResidentLineTracker &resident)
{
    std::vector<ProbeRequest> probes;
    generate(directed, invalidating_fraction, resident, probes);
    return probes;
}

void
SnoopBus::generate(unsigned directed, double invalidating_fraction,
                   const ResidentLineTracker &resident,
                   std::vector<ProbeRequest> &probes)
{
    probes.clear();
    if (resident.empty())
        return;

    for (unsigned i = 0; i < directed; ++i) {
        ProbeRequest p;
        p.pa = resident.sample(rng_);
        p.invalidating = rng_.chance(invalidating_fraction);
        p.expectedResident = true;
        probes.push_back(p);
    }

    if (kind_ == CoherenceKind::Snoopy) {
        // Broadcast fabric: remote misses also snoop this L1. Their
        // addresses are unrelated to our working set, so we synthesise
        // them by perturbing resident lines — overwhelmingly absent.
        absentCarry_ += directed * snoopAbsentFactor_;
        while (absentCarry_ >= 1.0) {
            absentCarry_ -= 1.0;
            ProbeRequest p;
            const Addr base = resident.sample(rng_);
            p.pa = base ^ ((1 + rng_.nextBounded(1 << 20)) << 6);
            p.invalidating = rng_.chance(invalidating_fraction);
            p.expectedResident = false;
            probes.push_back(p);
        }
    }
}

} // namespace seesaw
