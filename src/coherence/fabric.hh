/**
 * @file
 * Pluggable coherence fabrics for the unified N-core engine
 * (sim/sim_engine.hh). A CoherenceFabric sits between the per-core
 * CoreComplexes and decides which remote L1s each access must probe:
 *
 *  - DirectoryFabric: an exact MOESI directory (Table II) — every
 *    probe corresponds to a real remote copy, so probe counts, hit
 *    rates and cache-to-cache transfers are measured, not sampled.
 *  - SnoopFabric: broadcast coherence — every bus transaction probes
 *    every other L1, resident or not, which is where SEESAW's cheap
 *    4-way probes buy the most (§VI-B).
 *  - NullFabric: no coherence at all (cores share only the LLC).
 *
 * Single-core runs keep the paper's stochastic probe load instead
 * (coherence/probe_engine.hh): the engine drives a ProbeEngine
 * directly so the cores=1 hot path is unchanged.
 */

#ifndef SEESAW_COHERENCE_FABRIC_HH
#define SEESAW_COHERENCE_FABRIC_HH

#include <cstdint>
#include <vector>

#include "cache/l1_cache.hh"
#include "cache/set_assoc_cache.hh"
#include "coherence/exact_directory.hh"
#include "model/energy_model.hh"

namespace seesaw {

/** What the fabric did ahead of one local L1 access. */
struct FabricPreAccess
{
    unsigned cycles = 0;        //!< coherence latency (adds to miss)
    bool ownerSupplied = false; //!< a dirty remote owner forwards data
    bool wasHeld = false;       //!< fabric believed the core held it
};

/**
 * Coherence between the private cache hierarchies of N cores.
 *
 * The engine calls preAccess() after translation but before the local
 * L1 lookup (writes must invalidate remote copies first; read misses
 * may be owner-supplied), then postAccess() with the L1's outcome so
 * the fabric can track fills and evictions.
 */
class CoherenceFabric
{
  public:
    virtual ~CoherenceFabric() = default;

    /** Register core @p core's private caches (engine construction). */
    void attachCore(L1Cache *l1, SetAssocCache *l2)
    {
        l1s_.push_back(l1);
        l2s_.push_back(l2);
    }

    virtual FabricPreAccess preAccess(CoreId core, Addr pa,
                                      AccessType type) = 0;

    virtual void postAccess(CoreId core, Addr pa, AccessType type,
                            const L1AccessResult &res,
                            const FabricPreAccess &pre) = 0;

    virtual void resetStats()
    {
        probes_ = probeHits_ = invalidations_ = ownerSupplies_ = 0;
    }

    /** @name Aggregate probe statistics. */
    /// @{
    std::uint64_t probes() const { return probes_; }
    std::uint64_t probeHits() const { return probeHits_; }
    std::uint64_t invalidations() const { return invalidations_; }
    std::uint64_t ownerSupplies() const { return ownerSupplies_; }
    /// @}

    /** The exact directory, or nullptr for non-directory fabrics. */
    virtual ExactDirectory *directory() { return nullptr; }

  protected:
    std::vector<L1Cache *> l1s_;
    std::vector<SetAssocCache *> l2s_;
    std::uint64_t probes_ = 0;
    std::uint64_t probeHits_ = 0;
    std::uint64_t invalidations_ = 0;
    std::uint64_t ownerSupplies_ = 0;
};

/** No coherence: preAccess/postAccess are no-ops. */
class NullFabric final : public CoherenceFabric
{
  public:
    FabricPreAccess preAccess(CoreId, Addr, AccessType) override
    {
        return {};
    }
    void postAccess(CoreId, Addr, AccessType, const L1AccessResult &,
                    const FabricPreAccess &) override
    {
    }
};

/**
 * Exact MOESI directory over the attached L1s. Probes pay the probed
 * cache's real lookup width (8-way baseline vs one 4-way partition
 * under SEESAW, §IV-C1) and a directory-indirection round trip.
 */
class DirectoryFabric final : public CoherenceFabric
{
  public:
    /**
     * @param probe_cycles Latency of directory indirection plus the
     *        probe round trip (the engine passes its LLC latency).
     */
    DirectoryFabric(unsigned cores, unsigned probe_cycles,
                    EnergyModel &energy);

    FabricPreAccess preAccess(CoreId core, Addr pa,
                              AccessType type) override;
    void postAccess(CoreId core, Addr pa, AccessType type,
                    const L1AccessResult &res,
                    const FabricPreAccess &pre) override;

    ExactDirectory *directory() override { return &directory_; }

  private:
    ExactDirectory directory_;
    unsigned probeCycles_;
    EnergyModel &energy_;

    /** Probe every target L1; @return the added latency. */
    unsigned sendProbes(const ExactDirectory::ProbeList &probes,
                        Addr pa);
};

/**
 * Broadcast (snoopy bus) coherence: every write that cannot complete
 * locally and every read miss is broadcast, probing all other L1s —
 * including the (many) caches that do not hold the line.
 */
class SnoopFabric final : public CoherenceFabric
{
  public:
    SnoopFabric(unsigned cores, unsigned probe_cycles,
                EnergyModel &energy);

    FabricPreAccess preAccess(CoreId core, Addr pa,
                              AccessType type) override;
    void postAccess(CoreId core, Addr pa, AccessType type,
                    const L1AccessResult &res,
                    const FabricPreAccess &pre) override;

  private:
    unsigned cores_;
    unsigned probeCycles_;
    EnergyModel &energy_;

    /** Broadcast one transaction; @return the added latency. */
    unsigned broadcast(CoreId requester, Addr pa, bool invalidating,
                       bool &owner_supplied);
};

} // namespace seesaw

#endif // SEESAW_COHERENCE_FABRIC_HH
