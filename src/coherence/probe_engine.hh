/**
 * @file
 * Generates the coherence probe load on the simulated L1.
 *
 * Probes come from two sources the paper identifies (Fig 11): sharing
 * traffic from the other threads of multi-threaded workloads, and
 * system-level activity (OS, network stack) that exercises coherence
 * even under single-threaded applications. Every probe pays an L1
 * lookup whose width depends on the cache design — the whole set for
 * baseline VIPT, one partition for SEESAW with the 4way policy.
 */

#ifndef SEESAW_COHERENCE_PROBE_ENGINE_HH
#define SEESAW_COHERENCE_PROBE_ENGINE_HH

#include <vector>

#include "cache/l1_cache.hh"
#include "coherence/snoop_bus.hh"
#include "common/stats.hh"
#include "model/energy_model.hh"

namespace seesaw {

/** Probe-load parameters. */
struct ProbeEngineParams
{
    /** Directed probes per 1000 instructions from system activity. */
    double systemProbesPerKiloInstr = 25.0;

    /** Additional directed probes per 1000 instructions contributed by
     *  each sharing remote thread. */
    double sharingProbesPerKiloInstrPerThread = 50.0;

    /** Remote threads actively sharing (threads - 1 for MT loads). */
    unsigned remoteThreads = 0;

    /** Fraction of shared footprint (scales the sharing component). */
    double sharedFraction = 0.0;

    double invalidatingFraction = 0.10;

    CoherenceKind fabric = CoherenceKind::Directory;

    /** Snoopy only: absent-line broadcasts per directed probe. */
    double snoopAbsentFactor = 3.0;

    std::uint64_t seed = 0xc0de;
};

/**
 * Drives coherence probes into one L1 and accounts their energy.
 */
class ProbeEngine
{
  public:
    ProbeEngine(const ProbeEngineParams &params, L1Cache &l1,
                EnergyModel &energy);

    /** Record a line the L1 just touched/filled (directory presence). */
    void noteResident(Addr pa) { resident_.note(pa); }

    /**
     * Advance by @p instructions committed instructions, issuing the
     * probes that fall due in that window.
     */
    void tick(std::uint64_t instructions);

    /** Total probes issued. */
    std::uint64_t probes() const { return stProbes_->count(); }

    /** Probes that hit a resident line. */
    std::uint64_t probeHits() const { return stProbeHits_->count(); }

    /** Lines invalidated by write probes. */
    std::uint64_t invalidations() const
    {
        return stInvalidations_->count();
    }

    /** Read probes answered from a dirty resident line. */
    std::uint64_t dirtySupplies() const
    {
        return stDirtySupplies_->count();
    }

    const StatGroup &stats() const { return stats_; }
    StatGroup &stats() { return stats_; }

    /** Effective directed-probe rate per kilo-instruction. */
    double directedRate() const { return directedRate_; }

  private:
    ProbeEngineParams params_;
    L1Cache &l1_;
    EnergyModel &energy_;
    SnoopBus bus_;
    ResidentLineTracker resident_;
    StatGroup stats_;
    // Hot-path stat handles (registered once; see common/stats.hh).
    StatScalar *stProbes_;
    StatScalar *stProbeHits_;
    StatScalar *stInvalidations_;
    StatScalar *stDirtySupplies_;
    double directedRate_;
    double directedCarry_ = 0.0;
    std::vector<SnoopBus::ProbeRequest> probeBuf_; //!< reused per tick
};

} // namespace seesaw

#endif // SEESAW_COHERENCE_PROBE_ENGINE_HH
