#include "coherence/exact_directory.hh"

#include "common/logging.hh"

namespace seesaw {

ExactDirectory::ExactDirectory(unsigned num_cores)
    : numCores_(num_cores), stats_("directory")
{
    SEESAW_ASSERT(num_cores >= 1 && num_cores <= 64,
                  "directory supports 1-64 cores");
}

ExactDirectory::ProbeList
ExactDirectory::onReadMiss(CoreId core, Addr pa)
{
    ProbeList probes;
    auto it = lines_.find(lineOf(pa));
    if (it == lines_.end())
        return probes;

    Entry &e = it->second;
    if (e.owner >= 0 && static_cast<CoreId>(e.owner) != core) {
        // Downgrade the dirty owner; it supplies the data.
        probes.targets.push_back(static_cast<CoreId>(e.owner));
        probes.ownerSupplies = true;
        ++stats_.scalar("owner_downgrades");
    } else if (e.exclusive) {
        // A sole clean sharer may hold the line Exclusive; E means
        // "only copy system-wide", so it must be downgraded to Shared
        // before this fill creates a second copy.
        for (CoreId c = 0; c < numCores_; ++c) {
            if (c != core && (e.sharers & (1ULL << c))) {
                probes.targets.push_back(c);
                ++stats_.scalar("exclusive_downgrades");
            }
        }
    }
    e.exclusive = false;
    return probes;
}

ExactDirectory::ProbeList
ExactDirectory::onWrite(CoreId core, Addr pa)
{
    ProbeList probes;
    probes.invalidating = true;
    auto it = lines_.find(lineOf(pa));
    if (it == lines_.end())
        return probes;

    Entry &e = it->second;
    for (CoreId c = 0; c < numCores_; ++c) {
        if (c != core && (e.sharers & (1ULL << c))) {
            probes.targets.push_back(c);
            if (e.owner == static_cast<int>(c))
                probes.ownerSupplies = true;
        }
    }
    if (!probes.targets.empty())
        ++stats_.scalar("write_invalidations");

    // The directory reflects the probes' effect immediately.
    e.sharers &= (1ULL << core);
    if (e.owner != static_cast<int>(core))
        e.owner = -1;
    e.exclusive = false; // the upcoming recordFill() sets ownership
    if (e.sharers == 0)
        lines_.erase(it);
    return probes;
}

void
ExactDirectory::recordFill(CoreId core, Addr pa, bool dirty)
{
    Entry &e = lines_[lineOf(pa)];
    e.sharers |= (1ULL << core);
    if (dirty) {
        e.owner = static_cast<int>(core);
        e.exclusive = false;
    } else {
        if (e.owner == static_cast<int>(core))
            e.owner = -1;
        // A clean fill is Exclusive only while it is the sole copy.
        e.exclusive =
            e.owner < 0 && e.sharers == (1ULL << core);
    }
    ++stats_.scalar("fills");
}

void
ExactDirectory::recordEviction(CoreId core, Addr pa)
{
    auto it = lines_.find(lineOf(pa));
    if (it == lines_.end())
        return;
    Entry &e = it->second;
    e.sharers &= ~(1ULL << core);
    if (e.owner == static_cast<int>(core))
        e.owner = -1;
    if (e.sharers == 0)
        lines_.erase(it);
    ++stats_.scalar("evictions");
}

bool
ExactDirectory::holds(CoreId core, Addr pa) const
{
    auto it = lines_.find(lineOf(pa));
    return it != lines_.end() &&
           (it->second.sharers & (1ULL << core)) != 0;
}

unsigned
ExactDirectory::sharerCount(Addr pa) const
{
    auto it = lines_.find(lineOf(pa));
    if (it == lines_.end())
        return 0;
    unsigned count = 0;
    for (CoreId c = 0; c < numCores_; ++c)
        count += (it->second.sharers >> c) & 1;
    return count;
}

int
ExactDirectory::owner(Addr pa) const
{
    auto it = lines_.find(lineOf(pa));
    return it == lines_.end() ? -1 : it->second.owner;
}

void
ExactDirectory::forEachEntry(
    const std::function<void(Addr pa, std::uint64_t sharers,
                             int owner)> &fn) const
{
    for (const auto &[line, entry] : lines_)
        fn(line << 6, entry.sharers, entry.owner);
}

} // namespace seesaw
