#include "coherence/exact_directory.hh"

#include <algorithm>

#include "common/logging.hh"

namespace seesaw {

ExactDirectory::ExactDirectory(unsigned num_cores)
    : numCores_(num_cores), stats_("directory"),
      stOwnerDowngrades_(&stats_.scalar("owner_downgrades")),
      stExclusiveDowngrades_(&stats_.scalar("exclusive_downgrades")),
      stWriteInvalidations_(&stats_.scalar("write_invalidations")),
      stFills_(&stats_.scalar("fills")),
      stEvictions_(&stats_.scalar("evictions"))
{
    SEESAW_ASSERT(num_cores >= 1 && num_cores <= 64,
                  "directory supports 1-64 cores");
}

ExactDirectory::ProbeList
ExactDirectory::onReadMiss(CoreId core, Addr pa)
{
    ProbeList probes;
    auto it = lines_.find(lineOf(pa));
    if (it == lines_.end())
        return probes;

    Entry &e = it->second;
    if (e.owner >= 0 && static_cast<CoreId>(e.owner) != core) {
        // Downgrade the dirty owner; it supplies the data.
        probes.targets.push_back(static_cast<CoreId>(e.owner));
        probes.ownerSupplies = true;
        ++*stOwnerDowngrades_;
    } else if (e.exclusive) {
        // A sole clean sharer may hold the line Exclusive; E means
        // "only copy system-wide", so it must be downgraded to Shared
        // before this fill creates a second copy.
        for (CoreId c = 0; c < numCores_; ++c) {
            if (c != core && (e.sharers & (1ULL << c))) {
                probes.targets.push_back(c);
                ++*stExclusiveDowngrades_;
            }
        }
    }
    e.exclusive = false;
    return probes;
}

ExactDirectory::ProbeList
ExactDirectory::onWrite(CoreId core, Addr pa)
{
    ProbeList probes;
    probes.invalidating = true;
    auto it = lines_.find(lineOf(pa));
    if (it == lines_.end())
        return probes;

    Entry &e = it->second;
    for (CoreId c = 0; c < numCores_; ++c) {
        if (c != core && (e.sharers & (1ULL << c))) {
            probes.targets.push_back(c);
            if (e.owner == static_cast<int>(c))
                probes.ownerSupplies = true;
        }
    }
    if (!probes.targets.empty())
        ++*stWriteInvalidations_;

    // The directory reflects the probes' effect immediately.
    e.sharers &= (1ULL << core);
    if (e.owner != static_cast<int>(core))
        e.owner = -1;
    e.exclusive = false; // the upcoming recordFill() sets ownership
    if (e.sharers == 0)
        lines_.erase(it);
    return probes;
}

void
ExactDirectory::recordFill(CoreId core, Addr pa, bool dirty)
{
    Entry &e = lines_[lineOf(pa)];
    e.sharers |= (1ULL << core);
    if (dirty) {
        e.owner = static_cast<int>(core);
        e.exclusive = false;
    } else {
        if (e.owner == static_cast<int>(core))
            e.owner = -1;
        // A clean fill is Exclusive only while it is the sole copy.
        e.exclusive =
            e.owner < 0 && e.sharers == (1ULL << core);
    }
    ++*stFills_;
}

void
ExactDirectory::recordEviction(CoreId core, Addr pa)
{
    auto it = lines_.find(lineOf(pa));
    if (it == lines_.end())
        return;
    Entry &e = it->second;
    e.sharers &= ~(1ULL << core);
    if (e.owner == static_cast<int>(core))
        e.owner = -1;
    if (e.sharers == 0)
        lines_.erase(it);
    ++*stEvictions_;
}

bool
ExactDirectory::holds(CoreId core, Addr pa) const
{
    auto it = lines_.find(lineOf(pa));
    return it != lines_.end() &&
           (it->second.sharers & (1ULL << core)) != 0;
}

unsigned
ExactDirectory::sharerCount(Addr pa) const
{
    auto it = lines_.find(lineOf(pa));
    if (it == lines_.end())
        return 0;
    unsigned count = 0;
    for (CoreId c = 0; c < numCores_; ++c)
        count += (it->second.sharers >> c) & 1;
    return count;
}

int
ExactDirectory::owner(Addr pa) const
{
    auto it = lines_.find(lineOf(pa));
    return it == lines_.end() ? -1 : it->second.owner;
}

void
ExactDirectory::forEachEntry(
    const std::function<void(Addr pa, std::uint64_t sharers,
                             int owner)> &fn) const
{
    // Visit in address order: lines_ is a hash map, and hash order
    // would make audit-violation reports (which abort on the first
    // hit) depend on the standard library's bucketing. Audits are a
    // debug cadence, so the sort cost is acceptable.
    std::vector<Addr> keys;
    keys.reserve(lines_.size());
    for (const auto &[line, entry] : lines_)
        keys.push_back(line);
    std::sort(keys.begin(), keys.end());
    for (Addr line : keys) {
        const Entry &entry = lines_.at(line);
        fn(line << 6, entry.sharers, entry.owner);
    }
}

} // namespace seesaw
