/**
 * @file
 * Address-stream models for the two coherence fabrics the paper
 * evaluates: a directory (probes are filtered to lines the L1 actually
 * holds) and a snoopy bus (every remote transaction is broadcast, so
 * the L1 is probed for many absent lines too — which is why SEESAW's
 * cheap probes buy an extra 2-5% in snoopy systems, Section VI-B).
 */

#ifndef SEESAW_COHERENCE_SNOOP_BUS_HH
#define SEESAW_COHERENCE_SNOOP_BUS_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"

namespace seesaw {

/** Coherence fabric kind. */
enum class CoherenceKind : std::uint8_t {
    Directory,
    Snoopy,
    /** No coherence traffic at all: single-core runs skip the
     *  synthetic probe load, multi-core runs share only the LLC. */
    None,
};

/**
 * Tracks lines recently resident in the local L1 so the probe stream
 * can target real data (a directory forwards probes only for lines the
 * directory believes we hold).
 */
class ResidentLineTracker
{
  public:
    explicit ResidentLineTracker(std::size_t capacity = 8192);

    /** Record that the line containing @p pa is (still) resident. */
    void note(Addr pa);

    /** @return A recently resident line address, or 0 if empty. */
    Addr sample(Rng &rng) const;

    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

  private:
    std::vector<Addr> ring_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

/**
 * Produces the probe address stream for a coherence fabric.
 */
class SnoopBus
{
  public:
    /**
     * @param kind Directory probes target resident lines; snoopy adds
     *        broadcast probes to (mostly) absent lines.
     * @param snoop_absent_factor Extra absent-line probes per directed
     *        probe under the snoopy fabric.
     */
    SnoopBus(CoherenceKind kind, double snoop_absent_factor,
             std::uint64_t seed);

    /** One probe to issue. */
    struct ProbeRequest
    {
        Addr pa = 0;
        bool invalidating = false;
        bool expectedResident = false;
    };

    /**
     * Generate the probes for a window in which @p directed directed
     * probes are due, drawing targets from @p resident.
     * @param invalidating_fraction Probability a probe invalidates.
     */
    std::vector<ProbeRequest> generate(unsigned directed,
                                       double invalidating_fraction,
                                       const ResidentLineTracker &resident);

    /** Same, appending into @p out (cleared first) so steady-state
     *  callers reuse one buffer instead of allocating per window. */
    void generate(unsigned directed, double invalidating_fraction,
                  const ResidentLineTracker &resident,
                  std::vector<ProbeRequest> &out);

    CoherenceKind kind() const { return kind_; }

  private:
    CoherenceKind kind_;
    double snoopAbsentFactor_;
    Rng rng_;
    double absentCarry_ = 0.0;
};

} // namespace seesaw

#endif // SEESAW_COHERENCE_SNOOP_BUS_HH
