#include "coherence/fabric.hh"

#include "common/logging.hh"

namespace seesaw {

DirectoryFabric::DirectoryFabric(unsigned cores, unsigned probe_cycles,
                                 EnergyModel &energy)
    : directory_(cores), probeCycles_(probe_cycles), energy_(energy)
{
}

unsigned
DirectoryFabric::sendProbes(const ExactDirectory::ProbeList &probes,
                            Addr pa)
{
    if (probes.targets.empty())
        return 0;

    for (CoreId target : probes.targets) {
        const L1ProbeResult res =
            l1s_[target]->probe(pa, probes.invalidating);
        ++probes_;
        probeHits_ += res.hit ? 1 : 0;
        energy_.addL1Lookup(l1s_[target]->tags().sizeBytes(),
                            l1s_[target]->tags().assoc(), res.waysRead,
                            /*coherent=*/true);
        if (probes.invalidating && res.hit) {
            ++invalidations_;
            // The private L2 copy goes too (inclusive-ish fiction).
            l2s_[target]->invalidate(pa);
        }
    }
    // Directory indirection + probe round trip.
    return probeCycles_;
}

FabricPreAccess
DirectoryFabric::preAccess(CoreId core, Addr pa, AccessType type)
{
    // Writes invalidate remote copies BEFORE the local access; read
    // misses may be supplied by a dirty remote owner.
    FabricPreAccess pre;
    pre.wasHeld = directory_.holds(core, pa);
    if (type == AccessType::Write) {
        const auto probes = directory_.onWrite(core, pa);
        pre.ownerSupplied = probes.ownerSupplies;
        pre.cycles = sendProbes(probes, pa);
    } else if (!pre.wasHeld) {
        const auto probes = directory_.onReadMiss(core, pa);
        pre.ownerSupplied = probes.ownerSupplies;
        pre.cycles = sendProbes(probes, pa);
    }
    ownerSupplies_ += pre.ownerSupplied ? 1 : 0;
    return pre;
}

void
DirectoryFabric::postAccess(CoreId core, Addr pa, AccessType type,
                            const L1AccessResult &res,
                            const FabricPreAccess &pre)
{
    (void)pre;
    const bool write = type == AccessType::Write;
    if (!res.hit) {
        directory_.recordFill(core, pa, write);
        if (!write && directory_.sharerCount(pa) > 1) {
            // The L1 installed the read fill Exclusive, but other
            // copies exist; MOESI grants E only to the sole copy.
            if (CacheLine *line = l1s_[core]->tags().findLine(pa))
                line->state = CoherenceState::Shared;
        }
        if (res.eviction.valid) {
            directory_.recordEviction(
                core, res.eviction.lineAddr *
                          l1s_[core]->tags().lineBytes());
        }
    } else if (write) {
        // Refresh ownership (or re-register a warmup-era alias the
        // directory never saw fill).
        directory_.recordFill(core, pa, true);
    }
}

SnoopFabric::SnoopFabric(unsigned cores, unsigned probe_cycles,
                         EnergyModel &energy)
    : cores_(cores), probeCycles_(probe_cycles), energy_(energy)
{
}

unsigned
SnoopFabric::broadcast(CoreId requester, Addr pa, bool invalidating,
                       bool &owner_supplied)
{
    for (CoreId target = 0; target < cores_; ++target) {
        if (target == requester)
            continue;
        const L1ProbeResult res = l1s_[target]->probe(pa, invalidating);
        ++probes_;
        probeHits_ += res.hit ? 1 : 0;
        owner_supplied |= res.wasDirty;
        energy_.addL1Lookup(l1s_[target]->tags().sizeBytes(),
                            l1s_[target]->tags().assoc(), res.waysRead,
                            /*coherent=*/true);
        if (invalidating && res.hit) {
            ++invalidations_;
            l2s_[target]->invalidate(pa);
        }
    }
    return probeCycles_;
}

FabricPreAccess
SnoopFabric::preAccess(CoreId core, Addr pa, AccessType type)
{
    FabricPreAccess pre;
    const CacheLine *local = l1s_[core]->tags().findLine(pa);
    pre.wasHeld = local != nullptr;
    if (type == AccessType::Write) {
        // A write completes silently only on an M/E copy; any other
        // state broadcasts an invalidating transaction.
        if (!local || (local->state != CoherenceState::Modified &&
                       local->state != CoherenceState::Exclusive)) {
            pre.cycles =
                broadcast(core, pa, /*invalidating=*/true,
                          pre.ownerSupplied);
        }
    } else if (!local) {
        // Read miss: snoop everyone; a dirty owner supplies the data.
        pre.cycles = broadcast(core, pa, /*invalidating=*/false,
                               pre.ownerSupplied);
    }
    ownerSupplies_ += pre.ownerSupplied ? 1 : 0;
    return pre;
}

void
SnoopFabric::postAccess(CoreId core, Addr pa, AccessType type,
                        const L1AccessResult &res,
                        const FabricPreAccess &pre)
{
    (void)pre;
    // Snooping is requester-driven: no global state to update, but a
    // read fill that coexists with remote copies must not keep E.
    if (!res.hit && type != AccessType::Write) {
        bool remote_copy = false;
        for (CoreId target = 0; target < cores_ && !remote_copy;
             ++target) {
            if (target != core && l1s_[target]->tags().peek(pa).hit)
                remote_copy = true;
        }
        if (remote_copy) {
            if (CacheLine *line = l1s_[core]->tags().findLine(pa))
                line->state = CoherenceState::Shared;
        }
    }
}

} // namespace seesaw
