#include "store/store_sink.hh"

namespace seesaw::store {

StoreSink::StoreSink(const std::string &dir,
                     const harness::CampaignMetadata &meta,
                     const std::string &writerName)
    : meta_(meta), writer_(dir, writerName)
{
}

void
StoreSink::record(const harness::CellResult &cell)
{
    writer_.upsert(makeRecord(meta_, cell));
    recorded_.fetch_add(1, std::memory_order_relaxed);
}

} // namespace seesaw::store
