/**
 * @file
 * The durable campaign result store: one directory holding an
 * append-only set of JSONL segment files plus a compacted index,
 * with results keyed by (workload, configHash, seed).
 *
 * Layout:
 *
 *   <dir>/MANIFEST.json        {"schema_version": 1}, tmp+rename
 *   <dir>/index.jsonl          compacted records (absent until the
 *                              first compactStore()), tmp+rename
 *   <dir>/segments/<w>.jsonl   per-writer append-only records
 *   <dir>/queue/<campaign>/    work-distribution state (service/)
 *
 * Durability model: every upsert appends one complete,
 * newline-terminated record and flushes, so a crash can lose at most
 * the final, partially-written line of a segment — loaders detect and
 * skip exactly that (a torn tail), never a completed record. The
 * index and manifest are only ever replaced atomically via
 * tmp-file+rename. Upsert semantics are last-writer-wins per key in
 * load order (index first, then segments sorted by name, lines in
 * file order); superseded records remain visible as history until a
 * compaction, which is what the trend queries read.
 */

#ifndef SEESAW_STORE_RESULT_STORE_HH
#define SEESAW_STORE_RESULT_STORE_HH

#include <cstdint>
#include <fstream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/thread_annotations.hh"
#include "harness/runner.hh"
#include "store/json_value.hh"

namespace seesaw::store {

/** Bump when a record/manifest change breaks old readers. */
inline constexpr std::uint64_t kSchemaVersion = 1;

/** What identifies a cell's result across campaign invocations. */
struct CellKey
{
    std::string workload;
    std::uint64_t configHash = 0;
    std::uint64_t seed = 0;

    auto operator<=>(const CellKey &) const = default;
};

/** One named stat, preserving the integer/double distinction. */
struct StatValue
{
    std::string name;
    bool integral = true;
    std::uint64_t u = 0;
    double d = 0.0;

    double value() const
    {
        return integral ? static_cast<double>(u) : d;
    }

    /** Semantic equality: a double-typed stat whose value happens to
     *  serialize without a decimal point (e.g. 0.0 -> "0") parses
     *  back as integral, so equality compares values, not the flag. */
    bool operator==(const StatValue &other) const
    {
        if (name != other.name)
            return false;
        if (integral && other.integral)
            return u == other.u;
        return value() == other.value();
    }
};

/** One stored cell result. */
struct CellRecord
{
    CellKey key;
    std::string cell;     //!< campaign cell name
    std::string campaign; //!< campaign that produced this record
    std::string git;      //!< git describe of the producing build
    double wallSeconds = 0.0;
    unsigned cores = 1;
    std::vector<StatValue> stats;
    std::vector<std::vector<StatValue>> perCore; //!< cores>1 only
};

/** @name Conversions to/from the harness result types. */
/// @{
CellRecord makeRecord(const harness::CampaignMetadata &meta,
                      const harness::CellResult &cell);
harness::CellResult toCellResult(const CellRecord &record);
/// @}

/** The key a cell will produce a record under (resume skip checks). */
CellKey keyOf(const harness::Cell &cell);

/**
 * Serialize @p record as one JSONL line (newline included). With
 * @p volatileFields false the git / wall-time / campaign metadata is
 * omitted — the canonical form two equivalent campaign runs must
 * agree on byte-for-byte.
 */
void writeRecordLine(std::ostream &os, const CellRecord &record,
                     bool volatileFields = true);

/** Parse one record line. @return "" or an error message. */
std::string parseRecord(const JsonValue &doc, CellRecord &out);

/** Fixed-width hex form of a config hash (matches the sinks). */
std::string hashHex(std::uint64_t hash);

/** Everything a store directory currently holds. */
struct StoreSnapshot
{
    /** Last-writer-wins view, one record per key. */
    std::map<CellKey, CellRecord> latest;

    /** Every record in load order, superseded ones included —
     *  the raw material for trend queries. */
    std::vector<CellRecord> history;

    /** Torn (partially-written) segment tails skipped on load. */
    std::size_t tornTails = 0;

    bool
    contains(const CellKey &key) const
    {
        return latest.find(key) != latest.end();
    }
};

/** @name Store operations. All return "" on success, else an error
 *  message (schema mismatches are reported, never silently read). */
/// @{

/** Create @p dir (manifest, segments/) if needed; verify the schema
 *  version if it already exists. */
std::string initStore(const std::string &dir);

/** Read the manifest, index and all segments into @p out. */
std::string loadStore(const std::string &dir, StoreSnapshot &out);

/**
 * Fold all segments into index.jsonl (latest records only, sorted by
 * key, atomically replaced) and delete the folded segments. Run only
 * while no campaign is writing to the store.
 */
std::string compactStore(const std::string &dir);

/// @}

/** Write the canonical form of @p snap: latest records sorted by key,
 *  volatile metadata omitted. Two campaign runs over the same cells
 *  must produce byte-identical dumps. */
void canonicalDump(std::ostream &os, const StoreSnapshot &snap);

/**
 * Appends records to one segment file, one flushed line per upsert.
 * Thread-safe across threads of the constructing process; construct
 * one per (campaign, writer) and keep it for the campaign's lifetime
 * so appends stay ordered.
 *
 * Single-writer-per-segment: the segment file belongs to exactly one
 * process for the writer's lifetime. Worker IDs embed the pid, so two
 * live processes never share a segment — but a fork() that keeps
 * using an inherited writer would interleave two processes' buffered
 * appends into one file, a corruption neither tsan (single process)
 * nor the thread-safety analysis (single address space) can see.
 * upsert() therefore asserts the calling process is the one that
 * constructed the writer; fork/exec workers (service/broker) each
 * construct their own.
 */
class SegmentWriter
{
  public:
    /** Initializes the store (fatal on schema mismatch) and opens
     *  segments/<writerName>.jsonl for append. */
    SegmentWriter(const std::string &dir, const std::string &writerName);

    /** Append @p record and flush (fatal on a write error or when
     *  called from a process other than the constructing one). */
    void upsert(const CellRecord &record) SEESAW_EXCLUDES(mutex_);

    const std::string &path() const { return path_; }

  private:
    /** Write @p line (newline included) and flush; fatal on error. */
    void appendLineLocked(const std::string &line)
        SEESAW_REQUIRES(mutex_);

    const std::string path_;
    const long ownerPid_; //!< process that owns this segment
    AnnotatedMutex mutex_;
    std::ofstream os_ SEESAW_GUARDED_BY(mutex_);
};

} // namespace seesaw::store

#endif // SEESAW_STORE_RESULT_STORE_HH
