#include "store/result_store.hh"

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iterator>
#include <sstream>
#include <string_view>

#include "common/logging.hh"
#include "harness/json.hh"

namespace fs = std::filesystem;

namespace seesaw::store {

namespace {

std::string
manifestPath(const std::string &dir)
{
    return dir + "/MANIFEST.json";
}

std::string
indexPath(const std::string &dir)
{
    return dir + "/index.jsonl";
}

std::string
segmentsDir(const std::string &dir)
{
    return dir + "/segments";
}

/** Write @p content to @p path atomically (tmp file + rename). */
std::string
atomicWrite(const std::string &path, const std::string &content)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            return "cannot open " + tmp;
        os << content;
        os.flush();
        if (!os)
            return "short write to " + tmp;
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec)
        return "cannot rename " + tmp + " to " + path + ": " +
               ec.message();
    return "";
}

void
writeStats(harness::JsonWriter &json,
           const std::vector<StatValue> &stats)
{
    json.beginObject();
    for (const auto &s : stats) {
        if (s.integral)
            json.field(s.name, s.u);
        else
            json.field(s.name, s.d);
    }
    json.endObject();
}

std::string
parseStats(const JsonValue &obj, std::vector<StatValue> &out)
{
    if (!obj.isObject())
        return "stats is not an object";
    out.clear();
    out.reserve(obj.members.size());
    for (const auto &[name, v] : obj.members) {
        if (!v.isNumber())
            return "stat " + name + " is not a number";
        StatValue s;
        s.name = name;
        s.integral = v.integral;
        // Keep only the representation in use so StatValue equality
        // means "serializes identically".
        s.u = v.integral ? v.u : 0;
        s.d = v.integral ? 0.0 : v.d;
        out.push_back(std::move(s));
    }
    return "";
}

/** The segment files of @p dir, sorted by name for deterministic
 *  load order. */
std::vector<std::string>
sortedSegments(const std::string &dir)
{
    std::vector<std::string> out;
    std::error_code ec;
    for (const auto &entry :
         fs::directory_iterator(segmentsDir(dir), ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".jsonl")
            out.push_back(entry.path().string());
    }
    std::sort(out.begin(), out.end());
    return out;
}

/**
 * Parse the records of one JSONL file into @p snap. @p tornOk allows
 * the final line to be incomplete (append-only segments a crash may
 * have torn); a malformed line anywhere else is corruption.
 */
std::string
loadRecordFile(const std::string &path, bool tornOk,
               StoreSnapshot &snap)
{
    std::ifstream is(path);
    if (!is)
        return "cannot open " + path;
    std::string content((std::istreambuf_iterator<char>(is)),
                        std::istreambuf_iterator<char>());

    std::size_t start = 0;
    std::size_t lineNo = 0;
    while (start < content.size()) {
        const std::size_t nl = content.find('\n', start);
        const bool terminated = nl != std::string::npos;
        const std::string_view line(
            content.data() + start,
            (terminated ? nl : content.size()) - start);
        ++lineNo;
        start = terminated ? nl + 1 : content.size();
        if (line.empty())
            continue;

        JsonValue doc;
        std::string error;
        CellRecord record;
        if (!parseJson(line, doc, error) ||
            !(error = parseRecord(doc, record)).empty()) {
            // Only an unterminated final line may be broken: that is
            // the torn tail of a crashed append. Anything else means
            // the file was corrupted, which must not pass silently.
            if (tornOk && !terminated && start == content.size()) {
                ++snap.tornTails;
                return "";
            }
            return path + ":" + std::to_string(lineNo) + ": " + error;
        }
        snap.latest[record.key] = record;
        snap.history.push_back(std::move(record));
    }
    return "";
}

std::string
checkManifest(const std::string &dir)
{
    std::ifstream is(manifestPath(dir));
    if (!is)
        return "no result store at " + dir + " (missing " +
               manifestPath(dir) + ")";
    std::string content((std::istreambuf_iterator<char>(is)),
                        std::istreambuf_iterator<char>());
    JsonValue doc;
    std::string error;
    if (!parseJson(content, doc, error))
        return manifestPath(dir) + ": " + error;
    const JsonValue *version = doc.find("schema_version");
    if (version == nullptr || !version->isNumber() ||
        !version->integral)
        return manifestPath(dir) + ": missing schema_version";
    if (version->u != kSchemaVersion)
        return "store " + dir + " has schema version " +
               std::to_string(version->u) + "; this build reads " +
               "version " + std::to_string(kSchemaVersion) +
               " only — refusing to touch it";
    return "";
}

} // namespace

std::string
hashHex(std::uint64_t hash)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, hash);
    return buf;
}

CellKey
keyOf(const harness::Cell &cell)
{
    return CellKey{cell.workload, cell.configHash, cell.seed};
}

CellRecord
makeRecord(const harness::CampaignMetadata &meta,
           const harness::CellResult &cell)
{
    CellRecord record;
    record.key.workload = cell.workload.empty()
                              ? cell.result.workload
                              : cell.workload;
    record.key.configHash = cell.configHash;
    record.key.seed = cell.seed;
    record.cell = cell.name;
    record.campaign = meta.campaign;
    record.git = meta.gitDescribe;
    record.wallSeconds = cell.wallSeconds;
    record.cores = cell.result.cores;
    for (const auto &f : harness::resultFields(cell.result))
        record.stats.push_back(StatValue{f.name, f.integral, f.u, f.d});
    if (cell.result.cores > 1) {
        for (const auto &pc : cell.result.perCore) {
            std::vector<StatValue> slice;
            for (const auto &f : harness::perCoreFields(
                     const_cast<PerCoreResult &>(pc))) {
                if (f.integral)
                    slice.push_back(StatValue{f.name, true, *f.u, 0.0});
                else
                    slice.push_back(
                        StatValue{f.name, false, 0, *f.d});
            }
            record.perCore.push_back(std::move(slice));
        }
    }
    return record;
}

harness::CellResult
toCellResult(const CellRecord &record)
{
    harness::CellResult out;
    out.name = record.cell;
    out.workload = record.key.workload;
    out.seed = record.key.seed;
    out.configHash = record.key.configHash;
    out.wallSeconds = record.wallSeconds;
    out.result.workload = record.key.workload;
    out.result.cores = record.cores;

    // Write stats back through the single shared field list; stat
    // names a newer writer added are skipped (the list is
    // append-only, so this reads any record this build understands).
    auto apply = [](const std::vector<harness::MutableResultField>
                        &fields,
                    const std::vector<StatValue> &stats) {
        for (const auto &s : stats) {
            for (const auto &f : fields) {
                if (s.name != f.name)
                    continue;
                if (f.integral)
                    *f.u = s.u;
                else
                    *f.d = s.integral ? static_cast<double>(s.u)
                                      : s.d;
                break;
            }
        }
    };
    apply(harness::mutableResultFields(out.result), record.stats);
    out.result.perCore.resize(record.perCore.size());
    for (std::size_t c = 0; c < record.perCore.size(); ++c)
        apply(harness::perCoreFields(out.result.perCore[c]),
              record.perCore[c]);
    return out;
}

void
writeRecordLine(std::ostream &os, const CellRecord &record,
                bool volatileFields)
{
    harness::JsonWriter json(os);
    json.beginObject()
        .field("v", kSchemaVersion)
        .field("workload", record.key.workload)
        .field("config_hash", hashHex(record.key.configHash))
        .field("seed", record.key.seed)
        .field("cell", record.cell);
    if (volatileFields) {
        json.field("campaign", record.campaign)
            .field("git", record.git)
            .field("wall_seconds", record.wallSeconds);
    }
    json.field("cores", record.cores);
    json.key("stats");
    writeStats(json, record.stats);
    if (record.cores > 1) {
        json.key("per_core").beginArray();
        for (const auto &slice : record.perCore)
            writeStats(json, slice);
        json.endArray();
    }
    json.endObject();
    os << '\n';
}

std::string
parseRecord(const JsonValue &doc, CellRecord &out)
{
    if (!doc.isObject())
        return "record is not an object";
    const JsonValue *version = doc.find("v");
    if (version == nullptr || !version->isNumber() ||
        !version->integral)
        return "record has no schema version";
    if (version->u != kSchemaVersion)
        return "record schema version " + std::to_string(version->u) +
               " unsupported (this build reads version " +
               std::to_string(kSchemaVersion) + ")";

    const JsonValue *workload = doc.find("workload");
    const JsonValue *hash = doc.find("config_hash");
    const JsonValue *seed = doc.find("seed");
    const JsonValue *cell = doc.find("cell");
    const JsonValue *stats = doc.find("stats");
    if (workload == nullptr || hash == nullptr || seed == nullptr ||
        cell == nullptr || stats == nullptr)
        return "record is missing a key field";

    out = CellRecord{};
    out.key.workload = workload->asString();
    out.key.seed = seed->asU64();
    const std::string &hex = hash->asString();
    char *end = nullptr;
    out.key.configHash = std::strtoull(hex.c_str(), &end, 16);
    if (end != hex.c_str() + hex.size() || hex.empty())
        return "bad config_hash " + hex;
    out.cell = cell->asString();
    if (const JsonValue *v = doc.find("campaign"))
        out.campaign = v->asString();
    if (const JsonValue *v = doc.find("git"))
        out.git = v->asString();
    if (const JsonValue *v = doc.find("wall_seconds"))
        out.wallSeconds = v->asDouble();
    if (const JsonValue *v = doc.find("cores"))
        out.cores = static_cast<unsigned>(v->asU64());

    if (std::string error = parseStats(*stats, out.stats);
        !error.empty())
        return error;
    if (const JsonValue *pc = doc.find("per_core")) {
        if (!pc->isArray())
            return "per_core is not an array";
        for (const auto &slice : pc->items) {
            std::vector<StatValue> values;
            if (std::string error = parseStats(slice, values);
                !error.empty())
                return error;
            out.perCore.push_back(std::move(values));
        }
    }
    return "";
}

std::string
initStore(const std::string &dir)
{
    std::error_code ec;
    fs::create_directories(segmentsDir(dir), ec);
    if (ec)
        return "cannot create store directory " + dir + ": " +
               ec.message();
    if (fs::exists(manifestPath(dir)))
        return checkManifest(dir);
    std::ostringstream manifest;
    {
        harness::JsonWriter json(manifest);
        json.beginObject()
            .field("schema_version", kSchemaVersion)
            .field("tool", "seesaw")
            .endObject();
    }
    manifest << '\n';
    return atomicWrite(manifestPath(dir), manifest.str());
}

std::string
loadStore(const std::string &dir, StoreSnapshot &out)
{
    out = StoreSnapshot{};
    if (std::string error = checkManifest(dir); !error.empty())
        return error;
    if (fs::exists(indexPath(dir))) {
        // The index is only ever written atomically, so a torn tail
        // there is corruption, not a crash artifact.
        if (std::string error =
                loadRecordFile(indexPath(dir), false, out);
            !error.empty())
            return error;
    }
    for (const auto &segment : sortedSegments(dir)) {
        if (std::string error = loadRecordFile(segment, true, out);
            !error.empty())
            return error;
    }
    return "";
}

std::string
compactStore(const std::string &dir)
{
    StoreSnapshot snap;
    if (std::string error = loadStore(dir, snap); !error.empty())
        return error;
    const std::vector<std::string> folded = sortedSegments(dir);

    std::ostringstream content;
    for (const auto &[key, record] : snap.latest)
        writeRecordLine(content, record);
    if (std::string error =
            atomicWrite(indexPath(dir), content.str());
        !error.empty())
        return error;

    for (const auto &segment : folded) {
        std::error_code ec;
        fs::remove(segment, ec);
        if (ec)
            return "cannot remove folded segment " + segment + ": " +
                   ec.message();
    }
    return "";
}

void
canonicalDump(std::ostream &os, const StoreSnapshot &snap)
{
    for (const auto &[key, record] : snap.latest)
        writeRecordLine(os, record, /*volatileFields=*/false);
}

namespace {

/** Initialize the store (fatal on schema mismatch) and derive the
 *  sanitized segment path for @p writerName. */
std::string
writerSegmentPath(const std::string &dir, const std::string &writerName)
{
    if (std::string error = initStore(dir); !error.empty())
        SEESAW_FATAL("result store: ", error);
    std::string safe;
    for (const char c : writerName) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '_' || c == '-';
        safe += ok ? c : '_';
    }
    SEESAW_ASSERT(!safe.empty(), "segment writer needs a name");
    return segmentsDir(dir) + "/" + safe + ".jsonl";
}

} // namespace

SegmentWriter::SegmentWriter(const std::string &dir,
                             const std::string &writerName)
    : path_(writerSegmentPath(dir, writerName)),
      ownerPid_(static_cast<long>(::getpid()))
{
    os_.open(path_, std::ios::app);
    if (!os_)
        SEESAW_FATAL("cannot open store segment ", path_);
}

void
SegmentWriter::upsert(const CellRecord &record)
{
    // Single-writer-per-segment (see the class comment): a fork()ed
    // child reusing an inherited writer would interleave two
    // processes' appends into one segment — a corruption no
    // single-process tool can see, hence the always-on check.
    SEESAW_ASSERT(static_cast<long>(::getpid()) == ownerPid_,
                  "SegmentWriter for ", path_, " is owned by pid ",
                  ownerPid_, "; fork/exec workers must construct "
                  "their own writer");
    // Serialize to memory first so the file only ever receives whole
    // lines; the flush bounds crash loss to the final line.
    std::ostringstream line;
    writeRecordLine(line, record);
    MutexLock lock(mutex_);
    appendLineLocked(line.str());
}

void
SegmentWriter::appendLineLocked(const std::string &line)
{
    os_ << line;
    os_.flush();
    if (!os_)
        SEESAW_FATAL("short write to store segment ", path_);
}

} // namespace seesaw::store
