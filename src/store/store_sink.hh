/**
 * @file
 * Bridges the campaign runner's per-cell completion callback to the
 * durable result store: each finished cell becomes one upserted
 * record, flushed before the callback returns, so everything a
 * crashed campaign completed is already on disk.
 */

#ifndef SEESAW_STORE_STORE_SINK_HH
#define SEESAW_STORE_STORE_SINK_HH

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>

#include "harness/runner.hh"
#include "store/result_store.hh"

namespace seesaw::store {

/**
 * A durable per-cell sink. Construct one per campaign invocation and
 * hand hook() to RunnerOptions::onCellDone (or call record()
 * directly). Thread-safe via the underlying SegmentWriter.
 */
class StoreSink
{
  public:
    /**
     * Opens segment `<writerName>.jsonl` in @p dir (fatal on schema
     * mismatch). @p meta supplies the volatile record metadata
     * (campaign name, git describe); its wall time is ignored —
     * per-cell wall time is recorded instead.
     */
    StoreSink(const std::string &dir,
              const harness::CampaignMetadata &meta,
              const std::string &writerName);

    /** Upsert @p cell into the store. */
    void record(const harness::CellResult &cell);

    /** An onCellDone-compatible callable bound to this sink. */
    std::function<void(const harness::CellResult &)>
    hook()
    {
        return [this](const harness::CellResult &c) { record(c); };
    }

    /** Cells recorded through this sink so far. */
    std::size_t recorded() const { return recorded_; }

  private:
    const harness::CampaignMetadata meta_;
    SegmentWriter writer_; //!< internally synchronized
    std::atomic<std::size_t> recorded_{0};
};

} // namespace seesaw::store

#endif // SEESAW_STORE_STORE_SINK_HH
