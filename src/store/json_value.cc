#include "store/json_value.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace seesaw::store {

const JsonValue *
JsonValue::find(std::string_view key) const
{
    for (const auto &[k, v] : members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const JsonValue &
JsonValue::at(std::string_view key) const
{
    const JsonValue *v = find(key);
    if (v == nullptr)
        SEESAW_FATAL("JSON object has no member '", std::string(key),
                     "'");
    return *v;
}

const std::string &
JsonValue::asString() const
{
    if (kind != Kind::String)
        SEESAW_FATAL("JSON value is not a string");
    return str;
}

std::uint64_t
JsonValue::asU64() const
{
    if (kind != Kind::Number || !integral)
        SEESAW_FATAL("JSON value is not an integer");
    return u;
}

double
JsonValue::asDouble() const
{
    if (kind != Kind::Number)
        SEESAW_FATAL("JSON value is not a number");
    return d;
}

namespace {

/** Recursive-descent parser over a string_view; never throws, reports
 *  the first error with a line number instead. */
class Parser
{
  public:
    Parser(std::string_view text, std::string &error)
        : text_(text), error_(error)
    {
    }

    bool
    parse(JsonValue &out)
    {
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after the document");
        return true;
    }

  private:
    bool
    fail(const std::string &what)
    {
        if (error_.empty()) {
            std::size_t line = 1;
            for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i)
                line += text_[i] == '\n';
            error_ = "line " + std::to_string(line) + ": " + what;
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ >= text_.size() || text_[pos_] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos_;
        return true;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("bad literal");
        pos_ += word.size();
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of document");
        switch (text_[pos_]) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.str);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
          default: return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        if (!consume('{'))
            return false;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            std::string key;
            skipWs();
            if (!parseString(key))
                return false;
            if (!consume(':'))
                return false;
            JsonValue member;
            if (!parseValue(member))
                return false;
            out.members.emplace_back(std::move(key),
                                     std::move(member));
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            return consume('}');
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        if (!consume('['))
            return false;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            JsonValue item;
            if (!parseValue(item))
                return false;
            out.items.push_back(std::move(item));
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            return consume(']');
        }
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("dangling escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // The writer only \u-escapes control characters;
                // encode the general case as UTF-8 anyway.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default: return fail("bad escape character");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        bool sawDigit = false;
        bool isIntegral = true;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                sawDigit = true;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                isIntegral = false;
            } else {
                break;
            }
            ++pos_;
        }
        if (!sawDigit)
            return fail("malformed number");
        const std::string token(text_.substr(start, pos_ - start));
        out.kind = JsonValue::Kind::Number;
        errno = 0;
        char *end = nullptr;
        out.d = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size() || errno == ERANGE)
            return fail("malformed number");
        out.integral = isIntegral && token[0] != '-';
        if (out.integral) {
            errno = 0;
            out.u = std::strtoull(token.c_str(), nullptr, 10);
            if (errno == ERANGE)
                return fail("integer out of range");
        }
        return true;
    }

    std::string_view text_;
    std::string &error_;
    std::size_t pos_ = 0;
};

} // namespace

bool
parseJson(std::string_view text, JsonValue &out, std::string &error)
{
    error.clear();
    out = JsonValue{};
    Parser parser(text, error);
    return parser.parse(out);
}

} // namespace seesaw::store
