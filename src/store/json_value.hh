/**
 * @file
 * A small JSON document model and recursive-descent parser, the read
 * side of harness/json.hh's JsonWriter. The store reads back its own
 * JSONL records and pinned campaign goldens with it, so the parser
 * keeps two properties a generic DOM would lose: object members stay
 * in document order (canonical re-serialization is byte-stable) and
 * numbers remember whether they were written as integers (so u64
 * counters round-trip exactly instead of through a double).
 */

#ifndef SEESAW_STORE_JSON_VALUE_HH
#define SEESAW_STORE_JSON_VALUE_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace seesaw::store {

/** One parsed JSON value; a tree of these is one document. */
struct JsonValue
{
    enum class Kind : std::uint8_t {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;

    /** Numbers carry both representations; `integral` says which one
     *  the document used (no '.', no exponent, fits in 64 bits). */
    bool integral = false;
    std::uint64_t u = 0;
    double d = 0.0;

    std::string str;
    std::vector<JsonValue> items; //!< Array elements.
    /** Object members in document order (not sorted, not deduped). */
    std::vector<std::pair<std::string, JsonValue>> members;

    /** @return the member named @p key, or nullptr. */
    const JsonValue *find(std::string_view key) const;

    /** @name Checked accessors: fatal unless the kind matches. */
    /// @{
    const JsonValue &at(std::string_view key) const;
    const std::string &asString() const;
    std::uint64_t asU64() const;
    double asDouble() const;
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isNumber() const { return kind == Kind::Number; }
    /// @}
};

/**
 * Parse one JSON document from @p text.
 * @param error Receives a "line N: what" message on failure.
 * @return true and fill @p out on success; false otherwise.
 */
bool parseJson(std::string_view text, JsonValue &out,
               std::string &error);

} // namespace seesaw::store

#endif // SEESAW_STORE_JSON_VALUE_HH
