/**
 * @file
 * A file-backed work queue for distributing campaign cells across
 * worker processes. The queue lives inside the result store at
 * `<store>/queue/<campaign>/` and needs nothing but a shared
 * filesystem:
 *
 *   count          total cell count (tmp+rename)
 *   done/NNNNNN    marker: cell NNNNNN's result is in the store
 *   lease/NNNNNN   a worker is running cell NNNNNN (O_EXCL create =
 *                  the atomic claim; mtime = last heartbeat)
 *
 * A lease whose mtime is older than the lease interval belongs to a
 * dead worker; claimants steal it by renaming it aside (only one
 * renamer can win) and re-claiming. Cells therefore execute
 * at-least-once — which is safe because cells are deterministic and
 * the store upserts by key, so a re-run writes the identical record.
 */

#ifndef SEESAW_SERVICE_LEASE_QUEUE_HH
#define SEESAW_SERVICE_LEASE_QUEUE_HH

#include <cstddef>
#include <string>

#include "common/thread_annotations.hh"

namespace seesaw::service {

/** Queue directory for @p campaign inside @p storeDir. */
std::string queueDir(const std::string &storeDir,
                     const std::string &campaign);

/**
 * (Re)create the queue directory for a campaign of @p totalCells
 * cells, discarding any previous queue state for the same campaign.
 * @return "" or an error message.
 */
std::string createQueue(const std::string &dir, std::size_t totalCells);

/** Pre-mark cell @p index done (resume: its result is already in the
 *  store). @return "" or an error message. */
std::string markDoneExternal(const std::string &dir, std::size_t index);

/** How many cells of @p dir are marked done (progress reporting). */
std::size_t countDone(const std::string &dir);

/** One worker's handle on a queue. Thread-safe. */
class LeaseQueue
{
  public:
    /** @p leaseSeconds: a lease not heartbeat within this interval is
     *  considered abandoned and may be stolen. */
    LeaseQueue(std::string dir, std::string workerId,
               double leaseSeconds = 30.0);

    enum class Claim
    {
        Got,     //!< @p index holds a freshly leased cell
        Wait,    //!< live leases remain; retry after a pause
        AllDone, //!< every cell has a done marker
    };

    /**
     * Scan for an unleased, not-done cell and claim it. Stale leases
     * encountered on the way are stolen. At most one cell is held at
     * a time; claim again only after markDone()/release().
     */
    Claim tryClaim(std::size_t &index) SEESAW_EXCLUDES(mutex_);

    /** Refresh the held lease's mtime (heartbeat thread). No-op when
     *  nothing is held. */
    void heartbeat() SEESAW_EXCLUDES(mutex_);

    /** Record cell @p index done and drop its lease. */
    void markDone(std::size_t index) SEESAW_EXCLUDES(mutex_);

    /** Drop the held lease without a done marker (graceful stop: the
     *  cell goes back to the pool immediately). */
    void release() SEESAW_EXCLUDES(mutex_);

    std::size_t totalCells() const { return total_; }

  private:
    /** release() body for callers already holding mutex_. */
    void releaseLocked() SEESAW_REQUIRES(mutex_);

    const std::string dir_;
    const std::string workerId_;
    const double leaseSeconds_;
    const std::size_t total_;
    AnnotatedMutex mutex_; //!< guards heldLease_
    /** Path of the held lease file, or "". */
    std::string heldLease_ SEESAW_GUARDED_BY(mutex_);
};

} // namespace seesaw::service

#endif // SEESAW_SERVICE_LEASE_QUEUE_HH
