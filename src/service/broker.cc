#include "service/broker.hh"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>

#include "common/logging.hh"
#include "harness/sinks.hh"
#include "service/lease_queue.hh"
#include "store/result_store.hh"

namespace seesaw::service {

std::string
prepareQueue(const std::string &storeDir, const std::string &campaign,
             const std::vector<harness::Cell> &cells, bool resume,
             PreparedQueue &out)
{
    out = PreparedQueue{};
    out.dir = queueDir(storeDir, campaign);
    out.total = cells.size();

    if (std::string error = store::initStore(storeDir);
        !error.empty())
        return error;
    if (std::string error = createQueue(out.dir, cells.size());
        !error.empty())
        return error;

    if (!resume)
        return "";
    store::StoreSnapshot snapshot;
    if (std::string error = store::loadStore(storeDir, snapshot);
        !error.empty())
        return error;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (!snapshot.contains(store::keyOf(cells[i])))
            continue;
        if (std::string error = markDoneExternal(out.dir, i);
            !error.empty())
            return error;
        ++out.preDone;
    }
    return "";
}

int
runWorkerProcesses(const WorkerProcessOptions &options)
{
    // Claims are keyed by worker id (segment names, lease steals), so
    // ids must be unique; the pid map tracks who is still alive.
    std::map<pid_t, std::string> children;
    for (unsigned w = 0; w < options.workers; ++w) {
        std::string workerId = "w";
        workerId += std::to_string(w);
        std::vector<std::string> argvStrings;
        argvStrings.push_back(options.workerBinary);
        argvStrings.insert(argvStrings.end(), options.args.begin(),
                           options.args.end());
        argvStrings.push_back("--worker-id");
        argvStrings.push_back(workerId);
        std::vector<char *> argv;
        for (auto &s : argvStrings)
            argv.push_back(s.data());
        argv.push_back(nullptr);

        const pid_t pid = ::fork();
        if (pid < 0) {
            std::fprintf(stderr, "broker: fork failed: %s\n",
                         std::strerror(errno));
            break;
        }
        if (pid == 0) {
            ::execv(argv[0], argv.data());
            std::fprintf(stderr, "broker: cannot exec %s: %s\n",
                         argv[0], std::strerror(errno));
            ::_exit(127);
        }
        children.emplace(pid, workerId);
        if (options.progress)
            std::fprintf(stderr, "broker: spawned %s (pid %d)\n",
                         workerId.c_str(), static_cast<int>(pid));
    }
    if (children.empty())
        return 1;

    int worst = 0;
    bool forwarded = false;
    while (!children.empty()) {
        // Stop requests arrive as signals; the handlers are installed
        // without SA_RESTART precisely so this wait returns EINTR and
        // the flag gets forwarded to the children.
        if (harness::stopRequested() && !forwarded) {
            forwarded = true;
            for (const auto &[pid, workerId] : children)
                ::kill(pid, SIGTERM);
        }
        int status = 0;
        const pid_t pid = ::waitpid(-1, &status, 0);
        if (pid < 0) {
            if (errno == EINTR)
                continue;
            break; // ECHILD: nothing left to reap
        }
        const auto it = children.find(pid);
        if (it == children.end())
            continue;
        int exitCode = 0;
        if (WIFEXITED(status))
            exitCode = WEXITSTATUS(status);
        else if (WIFSIGNALED(status))
            exitCode = 128 + WTERMSIG(status);
        if (options.progress || exitCode != 0)
            std::fprintf(stderr, "broker: %s exited %d\n",
                         it->second.c_str(), exitCode);
        worst = std::max(worst, exitCode);
        children.erase(it);
    }
    return worst;
}

std::string
collectOutcome(const std::string &storeDir,
               const std::string &campaign,
               const std::vector<harness::Cell> &cells,
               harness::CampaignOutcome &out)
{
    store::StoreSnapshot snapshot;
    if (std::string error = store::loadStore(storeDir, snapshot);
        !error.empty())
        return error;

    out = harness::CampaignOutcome{};
    out.meta.campaign = campaign;
    out.meta.gitDescribe = harness::gitDescribe();
    out.totalCells = cells.size();
    for (const auto &cell : cells) {
        const auto it = snapshot.latest.find(store::keyOf(cell));
        if (it == snapshot.latest.end())
            continue;
        harness::CellResult result = store::toCellResult(it->second);
        // The store keys by (workload, config, seed); the cell name
        // is campaign-local, so prefer the live spec's name.
        result.name = cell.name;
        out.results.push_back(std::move(result));
    }
    out.interrupted = out.results.size() < cells.size();
    return "";
}

} // namespace seesaw::service
