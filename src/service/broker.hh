/**
 * @file
 * The campaign-service broker: prepares a lease queue for a cell
 * list (pre-marking cells a resumed store already holds), spawns and
 * supervises `seesaw_worker` processes, and reassembles a
 * CampaignOutcome from the store once they exit. Worker processes
 * rebuild the identical cell list from the same grid arguments, so
 * the broker only ships indices, never thunks.
 */

#ifndef SEESAW_SERVICE_BROKER_HH
#define SEESAW_SERVICE_BROKER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "harness/campaign.hh"
#include "harness/runner.hh"

namespace seesaw::service {

/** What prepareQueue() set up. */
struct PreparedQueue
{
    std::string dir;          //!< the queue directory
    std::size_t total = 0;    //!< cells in the campaign
    std::size_t preDone = 0;  //!< pre-marked done (already in store)
};

/**
 * Create the queue for @p campaign under @p storeDir. With @p resume,
 * cells whose (workload, configHash, seed) key the store already
 * holds are pre-marked done so no worker even claims them.
 * @return "" or an error message.
 */
std::string prepareQueue(const std::string &storeDir,
                         const std::string &campaign,
                         const std::vector<harness::Cell> &cells,
                         bool resume, PreparedQueue &out);

/** How worker processes are launched. */
struct WorkerProcessOptions
{
    std::string workerBinary;      //!< path to seesaw_worker
    std::vector<std::string> args; //!< argv tail minus --worker-id
    unsigned workers = 2;          //!< processes to spawn
    bool progress = true;
};

/**
 * Fork/exec @p options.workers worker processes (each gets
 * `--worker-id wN` appended) and wait for all of them. A stop request
 * in the broker (SIGINT/SIGTERM) is forwarded to the children as
 * SIGTERM so they finish their in-flight cell and exit.
 * @return 0 when every worker exited cleanly, else nonzero.
 */
int runWorkerProcesses(const WorkerProcessOptions &options);

/**
 * Rebuild a campaign outcome from the store: one CellResult per cell
 * of @p cells found in the store, in cell order; cells without a
 * record leave the outcome marked interrupted.
 * @return "" or an error message.
 */
std::string collectOutcome(const std::string &storeDir,
                           const std::string &campaign,
                           const std::vector<harness::Cell> &cells,
                           harness::CampaignOutcome &out);

} // namespace seesaw::service

#endif // SEESAW_SERVICE_BROKER_HH
