#include "service/worker.hh"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <thread>

#include "common/logging.hh"
#include "common/thread_annotations.hh"
#include "harness/runner.hh"
#include "harness/sinks.hh"
#include "service/lease_queue.hh"
#include "store/result_store.hh"
#include "store/store_sink.hh"

namespace seesaw::service {

namespace {

/** Touches the queue's held lease every interval until stopped. */
class HeartbeatThread
{
  public:
    HeartbeatThread(LeaseQueue &queue, double leaseSeconds)
        : queue_(queue),
          interval_(std::chrono::duration<double>(
              leaseSeconds > 0.4 ? leaseSeconds / 4.0 : 0.1))
    {
        thread_ = std::thread([this] { loop(); });
    }

    ~HeartbeatThread()
    {
        {
            MutexLock lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

  private:
    void
    loop() SEESAW_EXCLUDES(mutex_)
    {
        for (;;) {
            {
                MutexLock lock(mutex_);
                if (!stop_)
                    lock.waitFor(cv_, interval_);
                if (stop_)
                    return;
            }
            // Heartbeat with mutex_ released: LeaseQueue::heartbeat()
            // takes the queue's own mutex, and nesting it under ours
            // would put an unrelated lock inside this class's critical
            // section (seesaw-lock-order flags exactly that shape). A
            // spurious early wakeup just touches the lease sooner.
            queue_.heartbeat();
        }
    }

    LeaseQueue &queue_;
    const std::chrono::duration<double> interval_;
    std::thread thread_;
    AnnotatedMutex mutex_;
    std::condition_variable cv_;
    bool stop_ SEESAW_GUARDED_BY(mutex_) = false;
};

} // namespace

WorkerReport
runWorker(const harness::CampaignSpec &spec,
          const WorkerOptions &options)
{
    const std::vector<harness::Cell> cells = spec.cells();

    harness::CampaignMetadata meta;
    meta.campaign = options.campaign.empty() ? spec.name()
                                             : options.campaign;
    meta.gitDescribe = harness::gitDescribe();
    meta.jobs = 1;

    store::StoreSink sink(options.storeDir, meta, options.workerId);

    // One snapshot up front: results that land while we run were
    // produced by live workers whose cells we cannot claim anyway, so
    // a stale view only ever errs toward re-running — which upserts
    // the identical record.
    store::StoreSnapshot snapshot;
    if (std::string error = store::loadStore(options.storeDir,
                                             snapshot);
        !error.empty())
        SEESAW_FATAL("worker ", options.workerId, ": ", error);

    LeaseQueue queue(queueDir(options.storeDir, meta.campaign),
                     options.workerId, options.leaseSeconds);
    SEESAW_ASSERT(queue.totalCells() == cells.size(),
                  "queue was prepared for ", queue.totalCells(),
                  " cells but this worker derived ", cells.size(),
                  " — grid arguments differ from the broker's");
    HeartbeatThread heartbeat(queue, options.leaseSeconds);

    WorkerReport report;
    while (!harness::stopRequested()) {
        if (options.maxCells && report.ran >= options.maxCells)
            return report;
        std::size_t index = 0;
        const LeaseQueue::Claim claim = queue.tryClaim(index);
        if (claim == LeaseQueue::Claim::AllDone)
            return report;
        if (claim == LeaseQueue::Claim::Wait) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
            continue;
        }

        const harness::Cell &cell = cells[index];
        if (snapshot.contains(store::keyOf(cell))) {
            // Resume: the store already has this key's result.
            ++report.skippedPresent;
            queue.markDone(index);
            if (options.progress)
                std::fprintf(stderr, "[%s:%s] skip %s (in store)\n",
                             meta.campaign.c_str(),
                             options.workerId.c_str(),
                             cell.name.c_str());
            continue;
        }

        harness::CellResult result;
        result.name = cell.name;
        result.workload = cell.workload;
        result.seed = cell.seed;
        result.configHash = cell.configHash;
        const auto start = std::chrono::steady_clock::now();
        result.result = cell.run();
        result.wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (result.workload.empty())
            result.workload = result.result.workload;

        // The upsert flushes before the done marker appears, so a
        // crash between the two only re-runs the cell.
        sink.record(result);
        queue.markDone(index);
        ++report.ran;
        if (options.progress)
            std::fprintf(stderr, "[%s:%s] ran %s (%.2fs)\n",
                         meta.campaign.c_str(),
                         options.workerId.c_str(), cell.name.c_str(),
                         result.wallSeconds);
    }
    queue.release();
    report.stopped = true;
    return report;
}

} // namespace seesaw::service
