/**
 * @file
 * The body of a `seesaw_worker` process: rebuild the campaign's cell
 * list (every worker must derive the identical list from the same
 * grid arguments — cell thunks cannot cross a process boundary), then
 * loop claim → run → upsert → mark done against the store's lease
 * queue until the queue drains or a stop is requested. Cells whose
 * key the store already holds are marked done without running, which
 * is what makes --resume converge.
 */

#ifndef SEESAW_SERVICE_WORKER_HH
#define SEESAW_SERVICE_WORKER_HH

#include <cstddef>
#include <string>

#include "harness/campaign.hh"

namespace seesaw::service {

struct WorkerOptions
{
    std::string storeDir;        //!< result store root
    std::string campaign;        //!< queue name (campaign name)
    std::string workerId;        //!< unique per worker, names segment
    double leaseSeconds = 30.0;  //!< lease expiry interval
    std::size_t maxCells = 0;    //!< stop after N cells (0 = no cap)
    bool progress = true;        //!< per-cell stderr lines
};

/** What one worker did — printed and asserted by tests. */
struct WorkerReport
{
    std::size_t ran = 0;            //!< cells executed and upserted
    std::size_t skippedPresent = 0; //!< already in the store
    bool stopped = false;           //!< exited on a stop request
};

/**
 * Run the claim/run/upsert loop over @p spec's cells. A heartbeat
 * thread keeps the held lease fresh while a cell simulates. Returns
 * when the queue is drained, @c maxCells is reached, or
 * harness::stopRequested() becomes true between cells.
 */
WorkerReport runWorker(const harness::CampaignSpec &spec,
                       const WorkerOptions &options);

} // namespace seesaw::service

#endif // SEESAW_SERVICE_WORKER_HH
