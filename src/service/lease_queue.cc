#include "service/lease_queue.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/logging.hh"

namespace fs = std::filesystem;

namespace seesaw::service {

namespace {

std::string
cellName(std::size_t index)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%06zu", index);
    return buf;
}

std::string
donePath(const std::string &dir, std::size_t index)
{
    return dir + "/done/" + cellName(index);
}

std::string
leasePath(const std::string &dir, std::size_t index)
{
    return dir + "/lease/" + cellName(index);
}

/** Write @p path with @p content via tmp+rename. */
std::string
atomicWrite(const std::string &path, const std::string &content)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            return "cannot open " + tmp;
        os << content;
        os.flush();
        if (!os)
            return "short write to " + tmp;
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec)
        return "cannot rename " + tmp + ": " + ec.message();
    return "";
}

/** O_EXCL-create @p path owned by @p workerId. True iff we won. */
bool
claimFile(const std::string &path, const std::string &workerId)
{
    const int fd =
        ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0)
        return false;
    const std::string tag = workerId + "\n";
    // The content is diagnostic only (who holds the lease); the file's
    // existence is the claim, so a short write is not an error.
    [[maybe_unused]] const ssize_t n =
        ::write(fd, tag.data(), tag.size());
    ::close(fd);
    return true;
}

/** Read the queue's total cell count; fatal when the queue directory
 *  does not exist (the broker creates it before workers start). */
std::size_t
readCellCount(const std::string &dir)
{
    std::ifstream is(dir + "/count");
    std::size_t total = 0;
    if (!(is >> total))
        SEESAW_FATAL("no cell queue at ", dir,
                     " (missing or unreadable count file)");
    return total;
}

} // namespace

std::string
queueDir(const std::string &storeDir, const std::string &campaign)
{
    std::string safe;
    for (const char c : campaign) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '_' || c == '-';
        safe += ok ? c : '_';
    }
    return storeDir + "/queue/" + safe;
}

std::string
createQueue(const std::string &dir, std::size_t totalCells)
{
    std::error_code ec;
    fs::remove_all(dir, ec);
    if (ec)
        return "cannot clear queue " + dir + ": " + ec.message();
    fs::create_directories(dir + "/done", ec);
    if (!ec)
        fs::create_directories(dir + "/lease", ec);
    if (ec)
        return "cannot create queue " + dir + ": " + ec.message();
    return atomicWrite(dir + "/count",
                       std::to_string(totalCells) + "\n");
}

std::string
markDoneExternal(const std::string &dir, std::size_t index)
{
    std::ofstream os(donePath(dir, index), std::ios::trunc);
    if (!os)
        return "cannot mark cell " + cellName(index) + " done in " +
               dir;
    os << "resume\n";
    return "";
}

std::size_t
countDone(const std::string &dir)
{
    std::size_t done = 0;
    std::error_code ec;
    for (const auto &entry :
         fs::directory_iterator(dir + "/done", ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() != ".tmp")
            ++done;
    }
    return done;
}

LeaseQueue::LeaseQueue(std::string dir, std::string workerId,
                       double leaseSeconds)
    : dir_(std::move(dir)), workerId_(std::move(workerId)),
      leaseSeconds_(leaseSeconds), total_(readCellCount(dir_))
{
}

LeaseQueue::Claim
LeaseQueue::tryClaim(std::size_t &index)
{
    {
        MutexLock lock(mutex_);
        SEESAW_ASSERT(heldLease_.empty(),
                      "claim while already holding a lease");
    }
    bool liveLease = false;
    for (std::size_t i = 0; i < total_; ++i) {
        std::error_code ec;
        if (fs::exists(donePath(dir_, i), ec))
            continue;
        const std::string lease = leasePath(dir_, i);
        bool claimed = claimFile(lease, workerId_);
        if (!claimed) {
            // Somebody holds it. A lease whose heartbeat stopped for
            // longer than the lease interval belongs to a dead
            // worker: move it aside (one renamer wins) and re-claim.
            const auto mtime = fs::last_write_time(lease, ec);
            if (ec) {
                // Vanished between open and stat: the holder just
                // finished or released it; next scan sees the truth.
                liveLease = true;
                continue;
            }
            const auto age =
                fs::file_time_type::clock::now() - mtime;
            if (std::chrono::duration<double>(age).count() <
                leaseSeconds_) {
                liveLease = true;
                continue;
            }
            const std::string aside = lease + ".stale." + workerId_;
            fs::rename(lease, aside, ec);
            if (ec) {
                liveLease = true; // another claimant won the steal
                continue;
            }
            fs::remove(aside, ec);
            claimed = claimFile(lease, workerId_);
            if (!claimed) {
                liveLease = true;
                continue;
            }
        }
        // Between our done-check and the claim the previous holder
        // may have finished the cell; re-running it would only upsert
        // the identical record, but there is no point doing the work.
        if (fs::exists(donePath(dir_, i), ec)) {
            fs::remove(lease, ec);
            continue;
        }
        {
            MutexLock lock(mutex_);
            heldLease_ = lease;
        }
        index = i;
        return Claim::Got;
    }
    return liveLease ? Claim::Wait : Claim::AllDone;
}

void
LeaseQueue::heartbeat()
{
    MutexLock lock(mutex_);
    if (heldLease_.empty())
        return;
    std::error_code ec;
    fs::last_write_time(heldLease_,
                        fs::file_time_type::clock::now(), ec);
    // A failed touch is harmless here: worst case the lease looks
    // stale and the cell is re-run, which is idempotent.
}

void
LeaseQueue::markDone(std::size_t index)
{
    // Order matters: the caller has already flushed the result to the
    // store, so the done marker is only ever an understatement.
    std::ofstream os(donePath(dir_, index), std::ios::trunc);
    if (os) {
        os << workerId_ << "\n";
        os.flush();
    }
    release();
}

void
LeaseQueue::release()
{
    MutexLock lock(mutex_);
    releaseLocked();
}

void
LeaseQueue::releaseLocked()
{
    if (heldLease_.empty())
        return;
    std::error_code ec;
    fs::remove(heldLease_, ec);
    heldLease_.clear();
}

} // namespace seesaw::service
