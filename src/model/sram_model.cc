#include "model/sram_model.hh"

#include <algorithm>
#include <cmath>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace seesaw {

namespace {

// Latency multiplier per associativity doubling (paper: 10-25%).
constexpr double kLatencyPerAssocStep = 1.20;

// Energy multiplier per associativity doubling (paper: 40-50%).
constexpr double kEnergyPerAssocStep = 1.45;

// Partition-mux overhead measured by the paper's RTL study: +0.41%.
constexpr double kPartitionMuxOverhead = 1.0041;

} // namespace

SramModel::SramModel(TechNode node) : node_(node)
{
    // The paper reports absolute L1 access times shrinking 3% from 32nm
    // to 22nm and 17% to 14nm while relative trends stay unchanged.
    // Our baselines are calibrated at 22nm.
    switch (node) {
      case TechNode::Tsmc28:
        latencyScale_ = 1.03;
        energyScale_ = 1.10;
        break;
      case TechNode::Intel22:
        latencyScale_ = 1.0;
        energyScale_ = 1.0;
        break;
      case TechNode::Intel14:
        latencyScale_ = 0.86;
        energyScale_ = 0.72;
        break;
      default:
        SEESAW_PANIC("unknown tech node");
    }
}

double
SramModel::directMappedLatencyNs(std::uint64_t size_bytes) const
{
    SEESAW_ASSERT(size_bytes >= 1024, "cache too small: ", size_bytes);
    // Wordline/bitline delay grows with the square root of capacity;
    // anchored at 1.0ns for a direct-mapped 32KB array at 22nm.
    const double kb = static_cast<double>(size_bytes) / 1024.0;
    return latencyScale_ * (0.45 + 0.55 * std::sqrt(kb / 32.0));
}

double
SramModel::directMappedEnergyNj(std::uint64_t size_bytes) const
{
    const double kb = static_cast<double>(size_bytes) / 1024.0;
    // Anchored at 16.5pJ for a direct-mapped 32KB array (a latency-
    // optimised array, per Fig 2c). The capacity
    // exponent (0.193) is calibrated so that a 4-way partition read in
    // a 32KB 8-way cache costs 39.43% less than the full 8-way access
    // — the paper's RTL measurement (§IV-A4). Lookup energy is
    // dominated by the ways read, not the rows behind them.
    return energyScale_ * 0.0165 * std::pow(kb / 32.0, 0.193);
}

double
SramModel::accessLatencyNs(std::uint64_t size_bytes, unsigned assoc) const
{
    SEESAW_ASSERT(assoc >= 1 && isPowerOfTwo(assoc),
                  "associativity must be a power of two: ", assoc);
    const unsigned steps = log2Floor(assoc);
    return directMappedLatencyNs(size_bytes) *
           std::pow(kLatencyPerAssocStep, steps);
}

double
SramModel::accessEnergyNj(std::uint64_t size_bytes, unsigned assoc) const
{
    SEESAW_ASSERT(assoc >= 1 && isPowerOfTwo(assoc),
                  "associativity must be a power of two: ", assoc);
    const unsigned steps = log2Floor(assoc);
    return directMappedEnergyNj(size_bytes) *
           std::pow(kEnergyPerAssocStep, steps);
}

double
SramModel::lookupEnergyNj(std::uint64_t size_bytes, unsigned assoc,
                          unsigned ways_read) const
{
    SEESAW_ASSERT(ways_read >= 1 && ways_read <= assoc,
                  "ways_read out of range: ", ways_read, "/", assoc);
    if (ways_read == assoc)
        return accessEnergyNj(size_bytes, assoc);

    // A partial lookup reads ways_read ways out of assoc: it behaves like
    // the proportionally smaller array, plus the partition-mux overhead.
    const std::uint64_t slice_bytes = size_bytes * ways_read / assoc;
    return accessEnergyNj(slice_bytes, ways_read) * kPartitionMuxOverhead;
}

double
SramModel::leakagePowerMw(std::uint64_t size_bytes) const
{
    const double kb = static_cast<double>(size_bytes) / 1024.0;
    // ~1mW leakage for a 32KB array at 22nm, linear in capacity.
    return energyScale_ * 1.0 * (kb / 32.0);
}

unsigned
SramModel::accessLatencyCycles(std::uint64_t size_bytes, unsigned assoc,
                               double freq_ghz) const
{
    SEESAW_ASSERT(freq_ghz > 0.0, "frequency must be positive");
    const double ns = accessLatencyNs(size_bytes, assoc);
    const auto cycles =
        static_cast<unsigned>(std::ceil(ns * freq_ghz - 1e-9));
    return std::max(1u, cycles);
}

} // namespace seesaw
