#include "model/latency_table.hh"

#include <cmath>

#include "common/logging.hh"

namespace seesaw {

namespace {
constexpr std::uint64_t kKB = 1024;
} // namespace

LatencyTable::LatencyTable(TechNode node) : sram_(node)
{
    // Table III of the paper, verbatim.
    rows_ = {
        {32 * kKB, 8, 1.33, 1, 2, 1},
        {32 * kKB, 8, 2.80, 1, 4, 2},
        {32 * kKB, 8, 4.00, 1, 5, 3},
        {64 * kKB, 16, 1.33, 1, 5, 1},
        {64 * kKB, 16, 2.80, 1, 9, 2},
        {64 * kKB, 16, 4.00, 1, 13, 3},
        {128 * kKB, 32, 1.33, 1, 14, 2},
        {128 * kKB, 32, 2.80, 1, 30, 3},
        {128 * kKB, 32, 4.00, 1, 42, 4},
    };
}

std::optional<LatencyConfig>
LatencyTable::find(std::uint64_t size_bytes, unsigned assoc,
                   double freq_ghz) const
{
    for (const auto &row : rows_) {
        if (row.sizeBytes == size_bytes && row.assoc == assoc &&
            std::abs(row.freqGhz - freq_ghz) < 1e-6) {
            return row;
        }
    }
    return std::nullopt;
}

unsigned
LatencyTable::basePageCycles(std::uint64_t size_bytes, unsigned assoc,
                             double freq_ghz) const
{
    if (auto row = find(size_bytes, assoc, freq_ghz))
        return row->basePageCycles;
    return sram_.accessLatencyCycles(size_bytes, assoc, freq_ghz);
}

unsigned
LatencyTable::superpageCycles(std::uint64_t size_bytes, unsigned assoc,
                              unsigned partition_ways,
                              double freq_ghz) const
{
    SEESAW_ASSERT(partition_ways >= 1 && partition_ways <= assoc,
                  "bad partition width");
    if (partition_ways == assoc)
        return basePageCycles(size_bytes, assoc, freq_ghz);
    if (auto row = find(size_bytes, assoc, freq_ghz))
        return row->superpageCycles;
    const std::uint64_t slice = size_bytes * partition_ways / assoc;
    return sram_.accessLatencyCycles(slice, partition_ways, freq_ghz);
}

unsigned
LatencyTable::tftCycles(double freq_ghz) const
{
    // The 86-byte TFT answers in about a quarter of the 1.33GHz cycle
    // time; it stays a single cycle at every evaluated frequency.
    (void)freq_ghz;
    return 1;
}

unsigned
LatencyTable::piptCycles(std::uint64_t size_bytes, unsigned assoc,
                         double freq_ghz, unsigned tlb_cycles) const
{
    return tlb_cycles +
           sram_.accessLatencyCycles(size_bytes, assoc, freq_ghz);
}

} // namespace seesaw
