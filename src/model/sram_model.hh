/**
 * @file
 * Analytical SRAM latency/energy model for L1-class caches.
 *
 * The paper characterised L1 arrays with a TSMC 28nm SRAM compiler and
 * Synopsys synthesis, then scaled to 22nm (Section III-B). We replace the
 * proprietary flow with an analytical model calibrated to the reported
 * trends: access latency grows 10-25% per associativity doubling and
 * access energy grows ~40-50% per doubling, while both grow sub-linearly
 * with capacity. Absolute values are tuned so that the paper's Table III
 * cycle counts and Fig 2b/2c curves are reproduced in shape.
 */

#ifndef SEESAW_MODEL_SRAM_MODEL_HH
#define SEESAW_MODEL_SRAM_MODEL_HH

#include <cstdint>

namespace seesaw {

/** Technology node; the evaluation uses 22nm (Table II). */
enum class TechNode : std::uint8_t {
    Tsmc28,
    Intel22,
    Intel14,
};

/**
 * Latency and energy of a set-associative SRAM cache array.
 *
 * All queries are pure functions of the geometry; the model is stateless
 * apart from its calibration constants.
 */
class SramModel
{
  public:
    explicit SramModel(TechNode node = TechNode::Intel22);

    /**
     * Full-set lookup latency in nanoseconds for a cache of
     * @p size_bytes organised as @p assoc ways (parallel tag+data read).
     */
    double accessLatencyNs(std::uint64_t size_bytes, unsigned assoc) const;

    /**
     * Dynamic energy in nanojoules of one lookup that reads @p ways_read
     * ways of a cache of @p size_bytes with @p assoc total ways.
     *
     * Reading a strict subset of ways (a SEESAW partition) costs the
     * energy of the equivalently sized smaller array plus a 0.41%
     * partition-mux overhead, matching the paper's RTL measurement.
     */
    double lookupEnergyNj(std::uint64_t size_bytes, unsigned assoc,
                          unsigned ways_read) const;

    /** Energy of a full-set lookup (ways_read == assoc). */
    double accessEnergyNj(std::uint64_t size_bytes, unsigned assoc) const;

    /** Leakage power in milliwatts for the whole array. */
    double leakagePowerMw(std::uint64_t size_bytes) const;

    /**
     * Latency in integer core cycles at @p freq_ghz, including the extra
     * cycle VIPT spends overlapping TLB lookup before tag match.
     * This is the analytical fallback; configurations present in the
     * paper's Table III should use LatencyTable instead.
     */
    unsigned accessLatencyCycles(std::uint64_t size_bytes, unsigned assoc,
                                 double freq_ghz) const;

    TechNode node() const { return node_; }

  private:
    TechNode node_;
    double latencyScale_;  //!< node-dependent multiplier on latency
    double energyScale_;   //!< node-dependent multiplier on energy

    /** Direct-mapped latency baseline as a function of capacity. */
    double directMappedLatencyNs(std::uint64_t size_bytes) const;

    /** Direct-mapped energy baseline as a function of capacity. */
    double directMappedEnergyNj(std::uint64_t size_bytes) const;
};

} // namespace seesaw

#endif // SEESAW_MODEL_SRAM_MODEL_HH
