/**
 * @file
 * Whole-memory-hierarchy energy accounting (Section VI-B).
 *
 * The paper reports energy for the *entire* memory hierarchy — L1
 * dynamic + leakage, L2, LLC, DRAM, TLBs, the TFT and page walks —
 * because L1 hit-rate changes ripple into the outer levels. This class
 * owns the per-event energy constants and accumulates per-category
 * totals that benches later split into CPU-side vs coherence savings
 * (Fig 11).
 */

#ifndef SEESAW_MODEL_ENERGY_MODEL_HH
#define SEESAW_MODEL_ENERGY_MODEL_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "model/sram_model.hh"

namespace seesaw {

/** Per-event energy constants for the outer hierarchy (22nm-ish). */
struct EnergyParams
{
    double l2AccessNj = 0.30;    //!< one L2 lookup (hit or miss probe)
    double llcAccessNj = 0.60;    //!< one LLC (24MB, Table II) lookup
    double dramAccessNj = 14.0;  //!< one DRAM line transfer
    double l1TlbLookupNj = 0.008;   //!< split L1 TLB probe
    double l2TlbLookupNj = 0.040;   //!< 512/1536-entry L2 TLB probe
    double tftLookupNj = 0.0009;    //!< 86-byte direct-mapped TFT
    double wayPredictorLookupNj = 0.0012; //!< MRU table probe
    double pageWalkNj = 4 * 14.0 * 0.25; //!< 4-level walk, mostly cached
    double lineInstallPerWayNj = 0.0018; //!< replacement bookkeeping/way

    /** Static power of the outer hierarchy (L2 + 24MB LLC leakage,
     *  DRAM refresh/background), charged per wall-clock time: this is
     *  how runtime improvements translate into hierarchy energy
     *  savings (§VI-B: "decreased leakage energy because the
     *  application runs faster"). */
    double backgroundPowerMw = 80.0;
};

/**
 * Accumulates energy per category for one simulated system.
 */
class EnergyModel
{
  public:
    EnergyModel(const SramModel &sram, EnergyParams params = {});

    /** L1 lookup reading @p ways_read of an (@p size, @p assoc) array,
     *  attributed to the CPU-side or coherence bucket by @p coherent.
     *  Energies are memoised per geometry: the SRAM model is a pure
     *  function, and a system only ever has a couple of L1 arrays. */
    void addL1Lookup(std::uint64_t size_bytes, unsigned assoc,
                     unsigned ways_read, bool coherent);

    /** Replacement-policy update energy when installing a line into a
     *  group of @p ways_tracked ways (4way vs 4way-8way insertion). */
    void addLineInstall(unsigned ways_tracked);

    void addL2Access();
    void addLlcAccess();
    void addDramAccess();
    void addL1TlbLookup();
    void addL2TlbLookup();
    void addTftLookup();
    void addWayPredictorLookup();
    void addPageWalk();

    /** Account L1 leakage for @p cycles at @p freq_ghz. */
    void addL1Leakage(std::uint64_t size_bytes, std::uint64_t cycles,
                      double freq_ghz);

    /** Account outer-hierarchy static power for @p cycles. */
    void addBackground(std::uint64_t cycles, double freq_ghz);

    /** @name Per-category totals (nJ). */
    /// @{
    double l1CpuDynamicNj() const { return l1CpuDynamicNj_; }
    double l1CoherenceDynamicNj() const { return l1CoherenceDynamicNj_; }
    double l1LeakageNj() const { return l1LeakageNj_; }
    double outerHierarchyNj() const { return outerNj_; }
    double translationNj() const { return translationNj_; }
    /// @}

    /** Grand total across every category (nJ). */
    double totalNj() const;

    /** Reset all accumulators. */
    void reset();

    const EnergyParams &params() const { return params_; }
    const SramModel &sram() const { return sram_; }

  private:
    const SramModel &sram_;
    EnergyParams params_;

    /** Memoised per-ways lookup energies of one L1 geometry. */
    struct L1LookupMemo
    {
        std::uint64_t sizeBytes = 0;
        unsigned assoc = 0;
        std::vector<double> byWaysRead; //!< [0..assoc]
    };
    L1LookupMemo memo_[2];
    double l1LookupNj(std::uint64_t size_bytes, unsigned assoc,
                      unsigned ways_read);

    double l1CpuDynamicNj_ = 0.0;
    double l1CoherenceDynamicNj_ = 0.0;
    double l1LeakageNj_ = 0.0;
    double outerNj_ = 0.0;        //!< L2 + LLC + DRAM
    double translationNj_ = 0.0;  //!< TLBs + TFT + WP + walks
};

} // namespace seesaw

#endif // SEESAW_MODEL_ENERGY_MODEL_HH
