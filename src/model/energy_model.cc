#include "model/energy_model.hh"

namespace seesaw {

EnergyModel::EnergyModel(const SramModel &sram, EnergyParams params)
    : sram_(sram), params_(params)
{
}

double
EnergyModel::l1LookupNj(std::uint64_t size_bytes, unsigned assoc,
                        unsigned ways_read)
{
    L1LookupMemo *memo = nullptr;
    for (auto &m : memo_) {
        if (m.sizeBytes == size_bytes && m.assoc == assoc) {
            memo = &m;
            break;
        }
    }
    if (!memo) {
        // Claim a slot for this geometry (evicting the older one).
        memo = &memo_[memo_[0].sizeBytes == 0 ? 0 : 1];
        memo->sizeBytes = size_bytes;
        memo->assoc = assoc;
        // Lazily filled: not every ways_read value is legal for the
        // SRAM model (partition slices must keep power-of-two ways),
        // so only the values the simulation actually produces are
        // ever evaluated.
        memo->byWaysRead.assign(assoc + 1, -1.0);
    }
    // ways_read beyond the associativity means repeated set accesses
    // (e.g., a SIPT mispeculation replaying at the correct index).
    double nj = 0.0;
    while (ways_read > assoc) {
        if (memo->byWaysRead[assoc] < 0.0) {
            memo->byWaysRead[assoc] =
                sram_.lookupEnergyNj(size_bytes, assoc, assoc);
        }
        nj += memo->byWaysRead[assoc];
        ways_read -= assoc;
    }
    if (memo->byWaysRead[ways_read] < 0.0) {
        memo->byWaysRead[ways_read] =
            sram_.lookupEnergyNj(size_bytes, assoc, ways_read);
    }
    return nj + memo->byWaysRead[ways_read];
}

void
EnergyModel::addL1Lookup(std::uint64_t size_bytes, unsigned assoc,
                         unsigned ways_read, bool coherent)
{
    const double nj = l1LookupNj(size_bytes, assoc, ways_read);
    if (coherent)
        l1CoherenceDynamicNj_ += nj;
    else
        l1CpuDynamicNj_ += nj;
}

void
EnergyModel::addLineInstall(unsigned ways_tracked)
{
    l1CpuDynamicNj_ += params_.lineInstallPerWayNj * ways_tracked;
}

void
EnergyModel::addL2Access()
{
    outerNj_ += params_.l2AccessNj;
}

void
EnergyModel::addLlcAccess()
{
    outerNj_ += params_.llcAccessNj;
}

void
EnergyModel::addDramAccess()
{
    outerNj_ += params_.dramAccessNj;
}

void
EnergyModel::addL1TlbLookup()
{
    translationNj_ += params_.l1TlbLookupNj;
}

void
EnergyModel::addL2TlbLookup()
{
    translationNj_ += params_.l2TlbLookupNj;
}

void
EnergyModel::addTftLookup()
{
    translationNj_ += params_.tftLookupNj;
}

void
EnergyModel::addWayPredictorLookup()
{
    translationNj_ += params_.wayPredictorLookupNj;
}

void
EnergyModel::addPageWalk()
{
    translationNj_ += params_.pageWalkNj;
}

void
EnergyModel::addL1Leakage(std::uint64_t size_bytes, std::uint64_t cycles,
                          double freq_ghz)
{
    // power (mW) * time (ns) = pJ; convert to nJ.
    const double ns = static_cast<double>(cycles) / freq_ghz;
    l1LeakageNj_ += sram_.leakagePowerMw(size_bytes) * ns * 1e-3;
}

void
EnergyModel::addBackground(std::uint64_t cycles, double freq_ghz)
{
    const double ns = static_cast<double>(cycles) / freq_ghz;
    outerNj_ += params_.backgroundPowerMw * ns * 1e-3;
}

double
EnergyModel::totalNj() const
{
    return l1CpuDynamicNj_ + l1CoherenceDynamicNj_ + l1LeakageNj_ +
           outerNj_ + translationNj_;
}

void
EnergyModel::reset()
{
    l1CpuDynamicNj_ = 0.0;
    l1CoherenceDynamicNj_ = 0.0;
    l1LeakageNj_ = 0.0;
    outerNj_ = 0.0;
    translationNj_ = 0.0;
}

} // namespace seesaw
