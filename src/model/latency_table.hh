/**
 * @file
 * The paper's Table III: calibrated L1 access latencies (in cycles) for
 * the nine evaluated (cache size, frequency) configurations, for both
 * base-page (full-set) and superpage (single-partition) lookups, plus
 * the single-cycle TFT access.
 *
 * Configurations outside the table fall back to the analytical
 * SramModel so that arbitrary design-space sweeps (e.g., Fig 14's PIPT
 * alternatives) remain possible.
 */

#ifndef SEESAW_MODEL_LATENCY_TABLE_HH
#define SEESAW_MODEL_LATENCY_TABLE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "model/sram_model.hh"

namespace seesaw {

/** One row of the paper's Table III. */
struct LatencyConfig
{
    std::uint64_t sizeBytes;  //!< total L1 capacity
    unsigned assoc;           //!< baseline VIPT associativity
    double freqGhz;           //!< core operating frequency
    unsigned tftCycles;       //!< TFT lookup latency
    unsigned basePageCycles;  //!< full-set (baseline VIPT) hit latency
    unsigned superpageCycles; //!< single-partition (SEESAW) hit latency
};

/**
 * Latency oracle combining Table III with the analytical model.
 */
class LatencyTable
{
  public:
    explicit LatencyTable(TechNode node = TechNode::Intel22);

    /** @return The Table III row matching the config, if present. */
    std::optional<LatencyConfig> find(std::uint64_t size_bytes,
                                      unsigned assoc,
                                      double freq_ghz) const;

    /**
     * Baseline VIPT hit latency in cycles; Table III when available,
     * otherwise the analytical model.
     */
    unsigned basePageCycles(std::uint64_t size_bytes, unsigned assoc,
                            double freq_ghz) const;

    /**
     * SEESAW fast-path (superpage, TFT hit) latency in cycles: the
     * latency of one partition of @p partition_ways ways.
     */
    unsigned superpageCycles(std::uint64_t size_bytes, unsigned assoc,
                             unsigned partition_ways,
                             double freq_ghz) const;

    /** TFT lookup latency in cycles (single cycle at all evaluated
     *  frequencies; roughly a quarter cycle at 1.33GHz). */
    unsigned tftCycles(double freq_ghz) const;

    /**
     * PIPT hit latency: TLB lookup serialised before a full-set cache
     * read (used for Fig 14's alternative designs).
     */
    unsigned piptCycles(std::uint64_t size_bytes, unsigned assoc,
                        double freq_ghz, unsigned tlb_cycles) const;

    /** All Table III rows, in the paper's order. */
    const std::vector<LatencyConfig> &rows() const { return rows_; }

    const SramModel &sram() const { return sram_; }

  private:
    SramModel sram_;
    std::vector<LatencyConfig> rows_;
};

} // namespace seesaw

#endif // SEESAW_MODEL_LATENCY_TABLE_HH
