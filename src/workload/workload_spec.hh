/**
 * @file
 * Statistical models of the paper's 16 workloads (Section V).
 *
 * The paper drives its simulator with Pin traces of SPEC, PARSEC,
 * Cloudsuite, Biobench and cloud/server applications captured on a
 * long-uptime Sandybridge host. We substitute parameterised reference
 * generators: each spec fixes the trace properties the evaluation
 * actually exercises — footprint, memory-reference density, reuse
 * locality (streaming / pointer-chase / hot-set mixture), write ratio,
 * threading and sharing intensity, and how much of the footprint the
 * OS may back with superpages.
 */

#ifndef SEESAW_WORKLOAD_WORKLOAD_SPEC_HH
#define SEESAW_WORKLOAD_WORKLOAD_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

namespace seesaw {

/** Per-workload trace-statistics model. */
struct WorkloadSpec
{
    std::string name;

    std::uint64_t footprintBytes = 64ULL << 20;

    /** Memory references per instruction. */
    double memRefFraction = 0.35;

    /** Fraction of references that are stores. */
    double writeFraction = 0.25;

    /**
     * Probability a reference re-touches the previous line (adjacent
     * field/stack accesses to the same object). Drives MRU way-
     * predictor accuracy (Fig 15) and short-distance reuse.
     */
    double repeatFraction = 0.30;

    /** @name Reuse-locality mixture (fractions sum to <= 1; the
     *  remainder goes to the zipf hot-set component). */
    /// @{
    double streamingFraction = 0.2;   //!< sequential sweeps
    double pointerChaseFraction = 0.2; //!< random walk over the footprint

    /**
     * Fraction of references that round-robin over a small group of
     * lines mapping to the same cache set (power-of-two-aligned
     * arrays/fields) — the classic source of conflict misses. Group
     * sizes of 2-6 reproduce Fig 2a: direct-mapped caches thrash on
     * all of them, 4-way on few, 8-way on none.
     */
    double conflictFraction = 0.10;
    /// @}

    /**
     * Region stickiness of the pointer-chase component: mean
     * references spent inside one 2MB region before jumping to a
     * random one. Real traces are strongly clustered at this
     * granularity (allocators group hot objects; graphs have
     * community structure); gups-style truly random streams use a
     * small value.
     */
    double chaseRegionStayRefs = 96.0;

    /**
     * The chase walks within a bounded working set of this many 2MB
     * regions that slowly drifts across the footprint (real chasing
     * code revisits a neighbourhood before moving on). 0 = unbounded:
     * every jump picks uniformly from the whole footprint (gups).
     */
    unsigned chasePoolRegions = 8;

    /** Zipf exponent of the hot-set component. */
    double zipfAlpha = 0.8;

    /** Size of the hot set the zipf component covers. */
    std::uint64_t hotSetBytes = 2ULL << 20;

    /** Thread count (only thread 0 is simulated in detail; the rest
     *  contribute coherence probes). */
    unsigned threads = 1;

    /** Fraction of the footprint actively shared between threads. */
    double sharedFraction = 0.0;

    /** Probability a 2MB chunk of the heap is THP-eligible
     *  (stacks, file-backed and protected memory are not). */
    double thpEligibleFraction = 0.9;

    /** Directed coherence probes per kilo-instruction from system
     *  activity (OS, network stack) even when single-threaded. */
    double systemProbesPerKiloInstr = 0.8;

    /**
     * Text-segment size for the L1I application (§V). SPEC binaries
     * have ~1-2MB of hot text; scale-out cloud workloads carry tens of
     * MB of instruction-side footprint (Ferdman et al., ASPLOS'12) —
     * the case the paper flags as motivating an L1I SEESAW.
     */
    std::uint64_t codeFootprintBytes = 2ULL << 20;

    /** @return True for multi-threaded workloads. */
    bool multithreaded() const { return threads > 1; }
};

/** The 16 workloads of Figs 3/7/11, in the paper's order:
 *  astar, cactus, cann, gems, g500, gups, mcf, mumm, omnet, tigr,
 *  tunk, xalanc, nutch, olio, redis, mongo. */
const std::vector<WorkloadSpec> &paperWorkloads();

/** The 8 cloud-centric workloads of Figs 12/15:
 *  olio, redis, nutch, tunk, g500, mongo, cann, mcf. */
const std::vector<WorkloadSpec> &cloudWorkloads();

/** Find a workload spec by name (fatal if unknown). */
const WorkloadSpec &findWorkload(const std::string &name);

} // namespace seesaw

#endif // SEESAW_WORKLOAD_WORKLOAD_SPEC_HH
