#include "workload/trace.hh"

#include <array>
#include <cstring>

#include "common/logging.hh"

namespace seesaw {

namespace {

constexpr char kMagic[8] = {'S', 'E', 'E', 'S', 'A', 'W', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;

struct RawRecord
{
    std::uint32_t gap;
    std::uint8_t isWrite;
    std::uint8_t pad[3];
    std::uint64_t va;
};
static_assert(sizeof(RawRecord) == 16, "trace record must be 16 bytes");

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : file_(std::fopen(path.c_str(), "wb"))
{
    if (!file_)
        SEESAW_FATAL("cannot open trace for writing: ", path);
    std::fwrite(kMagic, 1, sizeof(kMagic), file_);
    std::uint32_t header[2] = {kVersion, 0};
    std::fwrite(header, sizeof(header[0]), 2, file_);
}

TraceWriter::~TraceWriter()
{
    if (file_)
        std::fclose(file_);
}

void
TraceWriter::append(const MemRef &ref)
{
    RawRecord raw{};
    raw.gap = ref.gap;
    raw.isWrite = ref.type == AccessType::Write ? 1 : 0;
    raw.va = ref.va;
    const auto written = std::fwrite(&raw, sizeof(raw), 1, file_);
    SEESAW_ASSERT(written == 1, "trace write failed");
    ++records_;
}

TraceReader::TraceReader(const std::string &path)
    : file_(std::fopen(path.c_str(), "rb"))
{
    if (!file_)
        SEESAW_FATAL("cannot open trace for reading: ", path);
    char magic[8];
    std::uint32_t header[2];
    if (std::fread(magic, 1, sizeof(magic), file_) != sizeof(magic) ||
        std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
        SEESAW_FATAL("bad trace magic in ", path);
    }
    if (std::fread(header, sizeof(header[0]), 2, file_) != 2 ||
        header[0] != kVersion) {
        SEESAW_FATAL("unsupported trace version in ", path);
    }
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

std::optional<MemRef>
TraceReader::next()
{
    RawRecord raw;
    if (std::fread(&raw, sizeof(raw), 1, file_) != 1)
        return std::nullopt;
    MemRef ref;
    ref.gap = raw.gap;
    ref.type = raw.isWrite ? AccessType::Write : AccessType::Read;
    ref.va = raw.va;
    return ref;
}

} // namespace seesaw
