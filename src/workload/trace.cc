#include "workload/trace.hh"

#include <array>
#include <cstring>

#include "common/logging.hh"

namespace seesaw {

namespace {

constexpr char kMagic[8] = {'S', 'E', 'E', 'S', 'A', 'W', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kHeaderTail[2] = {kVersion, 0};

struct RawRecord
{
    std::uint32_t gap;
    std::uint8_t isWrite;
    std::uint8_t pad[3];
    std::uint64_t va;
};
static_assert(sizeof(RawRecord) == 16, "trace record must be 16 bytes");

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : path_(path), file_(std::fopen(path.c_str(), "wb"))
{
    if (!file_)
        SEESAW_FATAL("cannot open trace for writing: ", path);
    if (std::fwrite(kMagic, 1, sizeof(kMagic), file_) !=
            sizeof(kMagic) ||
        std::fwrite(kHeaderTail, sizeof(kHeaderTail[0]), 2, file_) !=
            2) {
        SEESAW_FATAL("short write of trace header to ", path,
                     " (disk full?)");
    }
}

TraceWriter::~TraceWriter()
{
    // fclose flushes stdio's buffer; a failure here means the tail of
    // the trace never reached disk. We cannot FATAL from a destructor
    // (it may run during unwinding), so report loudly instead.
    if (file_ && std::fclose(file_) != 0)
        SEESAW_WARN("error closing trace ", path_,
                    " — archive may be truncated");
}

void
TraceWriter::append(const MemRef &ref)
{
    RawRecord raw{};
    raw.gap = ref.gap;
    raw.isWrite = ref.type == AccessType::Write ? 1 : 0;
    raw.va = ref.va;
    if (std::fwrite(&raw, sizeof(raw), 1, file_) != 1)
        SEESAW_FATAL("short write of trace record ", records_, " to ",
                     path_, " (disk full?)");
    ++records_;
}

TraceReader::TraceReader(const std::string &path)
    : path_(path), file_(std::fopen(path.c_str(), "rb"))
{
    if (!file_)
        SEESAW_FATAL("cannot open trace for reading: ", path);
    char magic[8];
    std::uint32_t header[2];
    if (std::fread(magic, 1, sizeof(magic), file_) != sizeof(magic) ||
        std::memcmp(magic, kMagic, sizeof(magic)) != 0) {
        SEESAW_FATAL("bad trace magic in ", path);
    }
    if (std::fread(header, sizeof(header[0]), 2, file_) != 2 ||
        header[0] != kVersion) {
        SEESAW_FATAL("unsupported trace version in ", path);
    }
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

std::optional<MemRef>
TraceReader::next()
{
    RawRecord raw;
    const auto got = std::fread(&raw, 1, sizeof(raw), file_);
    if (got != sizeof(raw)) {
        // Distinguish a clean end-of-trace from a torn record or an
        // I/O error: archived campaigns must fail loudly, not quietly
        // replay a prefix.
        if (std::ferror(file_))
            SEESAW_FATAL("read error in trace ", path_);
        if (got != 0)
            SEESAW_FATAL("truncated trace record in ", path_, " (",
                         got, " of ", sizeof(raw),
                         " bytes) — file was cut short");
        return std::nullopt;
    }
    MemRef ref;
    ref.gap = raw.gap;
    ref.type = raw.isWrite ? AccessType::Write : AccessType::Read;
    ref.va = raw.va;
    return ref;
}

} // namespace seesaw
