/**
 * @file
 * Instruction-fetch address generator for the L1I application of
 * SEESAW (Section V: "it is also possible to apply it to the
 * instruction cache. This may be valuable with the advent of cloud
 * workloads that use considerably larger instruction-side footprints").
 *
 * Code is modelled as a set of functions laid out contiguously in a
 * dedicated text segment; control flow picks functions zipf-skewed
 * (hot paths dominate) and fetches run sequentially for a geometric
 * number of lines before the next branch.
 */

#ifndef SEESAW_WORKLOAD_CODE_STREAM_HH
#define SEESAW_WORKLOAD_CODE_STREAM_HH

#include <cstdint>

#include "common/random.hh"
#include "common/types.hh"

namespace seesaw {

/** Parameters of the code model. */
struct CodeStreamParams
{
    std::uint64_t codeBytes = 2ULL << 20; //!< text-segment size
    double zipfAlpha = 1.5;       //!< hot-function skew
    double meanRunLines = 12.0;   //!< sequential fetch run per branch
    double meanFunctionLines = 16.0; //!< ~1KB functions
};

/**
 * Deterministic instruction-fetch line stream.
 */
class CodeStream
{
  public:
    CodeStream(const CodeStreamParams &params, Addr text_base,
               std::uint64_t seed);

    /** @return The VA of the next 64B fetch line. */
    Addr nextFetchLine();

    Addr textBase() const { return textBase_; }
    std::uint64_t codeBytes() const { return params_.codeBytes; }

  private:
    CodeStreamParams params_;
    Addr textBase_;
    Rng rng_;

    std::uint64_t numLines_;
    std::uint64_t numFunctions_;
    std::uint64_t cursor_ = 0;   //!< current fetch line
    std::uint64_t runLeft_ = 0;  //!< lines before the next branch

    /** Jump to a new (zipf-hot) function entry. */
    void branch();
};

} // namespace seesaw

#endif // SEESAW_WORKLOAD_CODE_STREAM_HH
