#include "workload/code_stream.hh"

#include <algorithm>

#include "common/logging.hh"

namespace seesaw {

CodeStream::CodeStream(const CodeStreamParams &params, Addr text_base,
                       std::uint64_t seed)
    : params_(params), textBase_(text_base), rng_(seed)
{
    SEESAW_ASSERT(text_base % 4096 == 0,
                  "text base must be page aligned");
    numLines_ = std::max<std::uint64_t>(1, params_.codeBytes / 64);
    const auto fn_lines = static_cast<std::uint64_t>(
        std::max(1.0, params_.meanFunctionLines));
    numFunctions_ = std::max<std::uint64_t>(1, numLines_ / fn_lines);
    branch();
}

void
CodeStream::branch()
{
    // Hot functions dominate: zipf over function ranks. Hot text is
    // clustered at the front of the segment, as PGO-driven linkers
    // (hot/cold splitting) lay it out.
    const std::uint64_t function =
        rng_.nextZipf(numFunctions_, params_.zipfAlpha);
    cursor_ = (function * numLines_) / numFunctions_;
    runLeft_ = 1 + rng_.nextGeometric(params_.meanRunLines);
}

Addr
CodeStream::nextFetchLine()
{
    if (runLeft_ == 0)
        branch();
    --runLeft_;
    const Addr va = textBase_ + (cursor_ % numLines_) * 64;
    ++cursor_;
    return va;
}

} // namespace seesaw
