#include "workload/reference_stream.hh"

#include <algorithm>

#include "common/logging.hh"

namespace seesaw {

namespace {
constexpr std::uint64_t kLinesPerRegion = (2ULL << 20) / 64;

// The chase walk concentrates on a hot neighbourhood at the head of
// each region (128KB): pointer-rich structures keep their hot nodes
// clustered, so revisits to a region re-touch the same lines and are
// served by the outer cache levels rather than DRAM.
constexpr std::uint64_t kChaseWindowLines = (128ULL << 10) / 64;
} // namespace

ReferenceStream::ReferenceStream(const WorkloadSpec &spec,
                                 Addr heap_base, std::uint64_t seed,
                                 unsigned thread)
    : spec_(spec), heapBase_(heap_base), rng_(seed)
{
    SEESAW_ASSERT(heap_base % 4096 == 0, "heap base must be page-aligned");
    SEESAW_ASSERT(spec.footprintBytes >= 64, "empty footprint");
    numLines_ = spec.footprintBytes / 64;
    hotLines_ = std::max<std::uint64_t>(1, spec.hotSetBytes / 64);
    hotLines_ = std::min(hotLines_, numLines_);
    SEESAW_ASSERT(spec.memRefFraction > 0.0 &&
                      spec.memRefFraction <= 1.0,
                  "memRefFraction out of range");
    meanGap_ = 1.0 / spec.memRefFraction - 1.0;
    numRegions_ = std::max<std::uint64_t>(1, numLines_ / kLinesPerRegion);

    // Thread-private hot region: thread t's hot set starts t hot-set
    // spans into the footprint (wrapping); the shared region stays at
    // the footprint base. Thread 0's stream is the single-threaded one.
    if (thread > 0 && numLines_ > hotLines_) {
        privateHotBase_ =
            (static_cast<std::uint64_t>(thread) * hotLines_) %
            (numLines_ - hotLines_);
    }

    if (spec_.chasePoolRegions > 0) {
        const std::uint64_t pool_size =
            std::min<std::uint64_t>(spec_.chasePoolRegions,
                                    numRegions_);
        chasePool_.reserve(pool_size);
        for (std::uint64_t i = 0; i < pool_size; ++i)
            chasePool_.push_back(rng_.nextBounded(numRegions_));
    }
}

std::vector<std::pair<Addr, Addr>>
ReferenceStream::hotRanges() const
{
    std::vector<std::pair<Addr, Addr>> ranges;
    ranges.emplace_back(heapBase_, heapBase_ + hotLines_ * 64);
    for (auto region : chasePool_) {
        const Addr start = heapBase_ + region * kLinesPerRegion * 64;
        const std::uint64_t lines =
            std::min(kChaseWindowLines,
                     numLines_ - region * kLinesPerRegion);
        ranges.emplace_back(start, start + lines * 64);
    }
    return ranges;
}

std::uint64_t
ReferenceStream::nextConflictLine()
{
    if (conflictRefsLeft_ == 0) {
        // Re-pick the conflict group. Strides alternate between 256KB
        // (aligned large structures: collide in every geometry and
        // share partition bits) and odd 4KB multiples (page-aligned
        // arrays: collide in <=64-set L1s, alternate partitions).
        conflictRefsLeft_ = 256;
        static constexpr unsigned kSizes[] = {2, 2, 2, 2, 2, 2, 3,
                                              3, 3, 4, 4, 5};
        conflictSize_ = kSizes[rng_.nextBounded(std::size(kSizes))];
        conflictStride_ =
            rng_.chance(0.5)
                ? (256ULL << 10) / 64
                : (1 + 2 * rng_.nextBounded(4)) * (4096 / 64);
        const std::uint64_t span = conflictStride_ * conflictSize_;
        conflictBase_ = span < numLines_
                            ? rng_.nextBounded(numLines_ - span)
                            : 0;
        conflictNextMember_ = 0;
    }
    --conflictRefsLeft_;
    const std::uint64_t line =
        conflictBase_ + conflictNextMember_ * conflictStride_;
    conflictNextMember_ = (conflictNextMember_ + 1) % conflictSize_;
    return std::min(line, numLines_ - 1);
}

std::uint64_t
ReferenceStream::nextChaseRegion()
{
    if (chasePool_.empty())
        return rng_.nextBounded(numRegions_); // unbounded (gups)
    // Slow drift: occasionally replace a pool member with a fresh
    // region, modelling the working set moving across the heap.
    if (rng_.chance(0.005)) {
        chasePool_[rng_.nextBounded(chasePool_.size())] =
            rng_.nextBounded(numRegions_);
    }
    return chasePool_[rng_.nextBounded(chasePool_.size())];
}

MemRef
ReferenceStream::next()
{
    MemRef ref;
    ref.gap = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(rng_.nextGeometric(meanGap_), 10000));
    ref.type = rng_.chance(spec_.writeFraction) ? AccessType::Write
                                                : AccessType::Read;

    // Back-to-back reuse of the previous line (field accesses).
    if (rng_.chance(spec_.repeatFraction)) {
        ref.va = lineToVa(prevLine_) + (rng_.next() & 0x38);
        return ref;
    }

    const double u = rng_.nextDouble();
    std::uint64_t line;
    if (u < spec_.streamingFraction) {
        // Sequential sweep across the whole footprint.
        line = streamCursor_;
        streamCursor_ = (streamCursor_ + 1) % numLines_;
    } else if (u < spec_.streamingFraction +
                       spec_.pointerChaseFraction) {
        // Pointer chase: a region-sticky random walk. Real chasing
        // workloads cluster at 2MB granularity (allocator locality,
        // graph communities); truly random streams (gups) configure a
        // tiny stay count.
        if (chaseStay_ == 0) {
            chaseRegion_ = nextChaseRegion();
            chaseStay_ = 1 + rng_.nextGeometric(
                                 spec_.chaseRegionStayRefs);
        }
        --chaseStay_;
        const std::uint64_t region_lines =
            std::min(kLinesPerRegion,
                     numLines_ - chaseRegion_ * kLinesPerRegion);
        line = chaseRegion_ * kLinesPerRegion +
               rng_.nextBounded(
                   std::min(kChaseWindowLines, region_lines));
    } else if (u < spec_.streamingFraction +
                       spec_.pointerChaseFraction +
                       spec_.conflictFraction) {
        line = nextConflictLine();
    } else {
        // Hot-set component: zipf-ranked lines. Rank r maps to a line
        // via a golden-ratio hash so hot lines spread across sets and
        // pages, but the hot set itself is a contiguous region of the
        // heap (how allocators actually lay out hot objects). In
        // multi-threaded runs a sharedFraction of hot references
        // target the common region at the footprint base; the rest go
        // to the thread's private hot region.
        const std::uint64_t rank =
            rng_.nextZipf(hotLines_, spec_.zipfAlpha);
        const bool shared_ref =
            privateHotBase_ != 0 && rng_.chance(spec_.sharedFraction);
        const std::uint64_t base =
            (privateHotBase_ == 0 || shared_ref) ? 0
                                                 : privateHotBase_;
        line = base + (rank * 0x9e3779b97f4a7c15ULL) % hotLines_;
        // Shared hot data is predominantly read-shared (indices,
        // graphs, lookup tables); writes to it are the minority that
        // actually exercises invalidations.
        if (shared_ref && ref.type == AccessType::Write &&
            rng_.chance(0.75)) {
            ref.type = AccessType::Read;
        }
    }

    prevLine_ = line;
    ref.va = lineToVa(line);
    // Touch a random word in the line occasionally (sub-line offsets
    // do not change set indexing but exercise address arithmetic).
    ref.va += (rng_.next() & 0x38);
    return ref;
}

} // namespace seesaw
