/**
 * @file
 * Generates a memory-reference stream matching a WorkloadSpec.
 *
 * Each reference draws from a three-way locality mixture: sequential
 * streaming, uniform pointer chasing across the footprint, and a
 * zipf-skewed hot set. References are separated by geometric
 * instruction gaps whose mean matches the spec's memory-reference
 * density, mimicking a Pin trace's structure.
 */

#ifndef SEESAW_WORKLOAD_REFERENCE_STREAM_HH
#define SEESAW_WORKLOAD_REFERENCE_STREAM_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "workload/workload_spec.hh"

namespace seesaw {

/** One generated reference: @p gap instructions precede it. */
struct MemRef
{
    std::uint32_t gap = 0; //!< non-memory instructions before this ref
    Addr va = 0;
    AccessType type = AccessType::Read;
};

/**
 * Deterministic reference generator for one workload.
 */
class ReferenceStream
{
  public:
    /**
     * @param spec Workload statistics.
     * @param heap_base Virtual base of the workload's heap.
     * @param seed RNG seed (runs with equal seeds are identical).
     * @param thread Thread index for multi-threaded runs: each thread
     *        gets a private hot set (offset within the footprint)
     *        while spec.sharedFraction of hot-set references target
     *        the common shared region at the footprint base. Thread 0
     *        is identical to the single-threaded stream.
     */
    ReferenceStream(const WorkloadSpec &spec, Addr heap_base,
                    std::uint64_t seed, unsigned thread = 0);

    /** Produce the next reference. */
    MemRef next();

    Addr heapBase() const { return heapBase_; }
    Addr heapEnd() const { return heapBase_ + spec_.footprintBytes; }
    const WorkloadSpec &spec() const { return spec_; }

    /**
     * Virtual ranges the stream will hammer from the first reference:
     * the zipf hot set and the chase pool's hot windows. Simulators
     * prefill outer cache levels with these to reach steady state
     * without billions of warmup instructions.
     */
    std::vector<std::pair<Addr, Addr>> hotRanges() const;

  private:
    WorkloadSpec spec_;
    Addr heapBase_;
    Rng rng_;

    std::uint64_t numLines_;    //!< footprint in 64B lines
    std::uint64_t prevLine_ = 0; //!< last line touched (repeats)
    std::uint64_t hotLines_;    //!< hot set in 64B lines
    std::uint64_t privateHotBase_ = 0; //!< thread-private hot region
    std::uint64_t streamCursor_ = 0;
    double meanGap_;

    // Pointer-chase random-walk state: the walk lingers inside one
    // 2MB region (spec_.chaseRegionStayRefs on average), jumps within
    // a bounded pool of regions, and the pool itself slowly drifts.
    std::uint64_t numRegions_;      //!< footprint in 2MB regions
    std::uint64_t chaseRegion_ = 0; //!< current region index
    std::uint64_t chaseStay_ = 0;   //!< refs left before jumping
    std::vector<std::uint64_t> chasePool_; //!< regions in the pool

    /** Pick the next chase region (pool jump or pool drift). */
    std::uint64_t nextChaseRegion();

    // Conflict-group state: a small set of same-set lines accessed
    // round-robin; regrouped periodically.
    std::uint64_t conflictBase_ = 0;   //!< first line of the group
    std::uint64_t conflictStride_ = 1; //!< line stride between members
    unsigned conflictSize_ = 2;        //!< lines in the group (2-6)
    unsigned conflictNextMember_ = 0;  //!< round-robin cursor
    unsigned conflictRefsLeft_ = 0;    //!< refs before regrouping

    /** Produce the next conflict-group line. */
    std::uint64_t nextConflictLine();

    Addr lineToVa(std::uint64_t line) const
    {
        return heapBase_ + line * 64;
    }
};

} // namespace seesaw

#endif // SEESAW_WORKLOAD_REFERENCE_STREAM_HH
