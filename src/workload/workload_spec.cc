#include "workload/workload_spec.hh"

#include "common/logging.hh"

namespace seesaw {

namespace {

constexpr std::uint64_t KB = 1ULL << 10;
constexpr std::uint64_t MB = 1ULL << 20;

/**
 * Calibration notes. The mixtures are tuned so that, through a 32KB
 * 8-way L1 at 0.25-0.45 references per instruction:
 *  - SPEC-class workloads run at 95-99% L1 hit rates (their active
 *    working sets "fit comfortably in the L1", §VI-B), MPKI ~5-20;
 *  - cloud/server workloads run at 85-93%, MPKI ~25-60;
 *  - the locality pathologies (gups, mcf, g500) sit at MPKI 70-140;
 *  - pointer chases cluster inside 2MB regions (chaseRegionStayRefs),
 *    matching the >90% TFT coverage the paper measures (Fig 13) —
 *    except gups, whose randomness is the point.
 */
std::vector<WorkloadSpec>
buildPaperWorkloads()
{
    std::vector<WorkloadSpec> w;

    // SPEC CPU2006, single-threaded.
    w.push_back({.name = "astar",
                 .footprintBytes = 16 * MB,
                 .memRefFraction = 0.38,
                 .writeFraction = 0.25,
                 .streamingFraction = 0.01,
                 .pointerChaseFraction = 0.02,
                 .chaseRegionStayRefs = 128.0,
                 .chasePoolRegions = 4,
                 .zipfAlpha = 1.60,
                 .hotSetBytes = 512 * KB,
                 .threads = 1,
                 .sharedFraction = 0.0,
                 .thpEligibleFraction = 0.88,
                 .systemProbesPerKiloInstr = 55.0});
    w.push_back({.name = "cactus",
                 .footprintBytes = 24 * MB,
                 .memRefFraction = 0.42,
                 .writeFraction = 0.30,
                 .streamingFraction = 0.03,
                 .pointerChaseFraction = 0.015,
                 .chaseRegionStayRefs = 192.0,
                 .chasePoolRegions = 4,
                 .zipfAlpha = 1.50,
                 .hotSetBytes = 1 * MB,
                 .threads = 1,
                 .sharedFraction = 0.0,
                 .thpEligibleFraction = 0.94,
                 .systemProbesPerKiloInstr = 20.0});
    // PARSEC canneal: multi-threaded pointer chasing over a netlist.
    w.push_back({.name = "cann",
                 .footprintBytes = 96 * MB,
                 .memRefFraction = 0.34,
                 .writeFraction = 0.15,
                 .streamingFraction = 0.005,
                 .pointerChaseFraction = 0.05,
                 .chaseRegionStayRefs = 96.0,
                 .chasePoolRegions = 8,
                 .zipfAlpha = 1.40,
                 .hotSetBytes = 1 * MB,
                 .threads = 4,
                 .sharedFraction = 0.35,
                 .thpEligibleFraction = 0.92,
                 .systemProbesPerKiloInstr = 25.0,
                 .codeFootprintBytes = 4 * MB});
    w.push_back({.name = "gems",
                 .footprintBytes = 24 * MB,
                 .memRefFraction = 0.45,
                 .writeFraction = 0.30,
                 .streamingFraction = 0.03,
                 .pointerChaseFraction = 0.015,
                 .chaseRegionStayRefs = 192.0,
                 .chasePoolRegions = 4,
                 .zipfAlpha = 1.50,
                 .hotSetBytes = 1 * MB,
                 .threads = 1,
                 .sharedFraction = 0.0,
                 .thpEligibleFraction = 0.94,
                 .systemProbesPerKiloInstr = 20.0});
    // graph500: BFS over a scale-free graph; poor locality.
    w.push_back({.name = "g500",
                 .footprintBytes = 128 * MB,
                 .memRefFraction = 0.30,
                 .writeFraction = 0.10,
                 .streamingFraction = 0.005,
                 .pointerChaseFraction = 0.08,
                 .chaseRegionStayRefs = 40.0,
                 .chasePoolRegions = 12,
                 .zipfAlpha = 1.30,
                 .hotSetBytes = 2 * MB,
                 .threads = 4,
                 .sharedFraction = 0.30,
                 .thpEligibleFraction = 0.95,
                 .systemProbesPerKiloInstr = 30.0,
                 .codeFootprintBytes = 4 * MB});
    // gups: random updates; the locality worst case.
    w.push_back({.name = "gups",
                 .footprintBytes = 128 * MB,
                 .memRefFraction = 0.25,
                 .writeFraction = 0.50,
                 .streamingFraction = 0.0,
                 .pointerChaseFraction = 0.3,
                 .conflictFraction = 0.03,
                 .chaseRegionStayRefs = 8.0,
                 .chasePoolRegions = 0,
                 .zipfAlpha = 1.40,
                 .hotSetBytes = 1 * MB,
                 .threads = 1,
                 .sharedFraction = 0.0,
                 .thpEligibleFraction = 0.95,
                 .systemProbesPerKiloInstr = 15.0});
    w.push_back({.name = "mcf",
                 .footprintBytes = 64 * MB,
                 .memRefFraction = 0.40,
                 .writeFraction = 0.20,
                 .streamingFraction = 0.005,
                 .pointerChaseFraction = 0.07,
                 .chaseRegionStayRefs = 64.0,
                 .chasePoolRegions = 10,
                 .zipfAlpha = 1.25,
                 .hotSetBytes = 2 * MB,
                 .threads = 1,
                 .sharedFraction = 0.0,
                 .thpEligibleFraction = 0.90,
                 .systemProbesPerKiloInstr = 55.0});
    // Biobench mummer / tigr: genome matching, scan + index lookups.
    w.push_back({.name = "mumm",
                 .footprintBytes = 20 * MB,
                 .memRefFraction = 0.36,
                 .writeFraction = 0.10,
                 .streamingFraction = 0.02,
                 .pointerChaseFraction = 0.025,
                 .chaseRegionStayRefs = 128.0,
                 .chasePoolRegions = 6,
                 .zipfAlpha = 1.45,
                 .hotSetBytes = 1 * MB,
                 .threads = 1,
                 .sharedFraction = 0.0,
                 .thpEligibleFraction = 0.90,
                 .systemProbesPerKiloInstr = 20.0});
    w.push_back({.name = "omnet",
                 .footprintBytes = 12 * MB,
                 .memRefFraction = 0.40,
                 .writeFraction = 0.25,
                 .streamingFraction = 0.01,
                 .pointerChaseFraction = 0.015,
                 .chaseRegionStayRefs = 128.0,
                 .chasePoolRegions = 4,
                 .zipfAlpha = 1.65,
                 .hotSetBytes = 512 * KB,
                 .threads = 1,
                 .sharedFraction = 0.0,
                 .thpEligibleFraction = 0.85,
                 .systemProbesPerKiloInstr = 25.0});
    w.push_back({.name = "tigr",
                 .footprintBytes = 16 * MB,
                 .memRefFraction = 0.35,
                 .writeFraction = 0.10,
                 .streamingFraction = 0.03,
                 .pointerChaseFraction = 0.02,
                 .chaseRegionStayRefs = 128.0,
                 .chasePoolRegions = 6,
                 .zipfAlpha = 1.45,
                 .hotSetBytes = 1 * MB,
                 .threads = 1,
                 .sharedFraction = 0.0,
                 .thpEligibleFraction = 0.90,
                 .systemProbesPerKiloInstr = 20.0});
    // Cloudsuite tunkrank: influence ranking, heavily shared graph.
    w.push_back({.name = "tunk",
                 .footprintBytes = 96 * MB,
                 .memRefFraction = 0.30,
                 .writeFraction = 0.15,
                 .streamingFraction = 0.005,
                 .pointerChaseFraction = 0.045,
                 .chaseRegionStayRefs = 96.0,
                 .chasePoolRegions = 8,
                 .zipfAlpha = 1.40,
                 .hotSetBytes = 1 * MB,
                 .threads = 8,
                 .sharedFraction = 0.40,
                 .thpEligibleFraction = 0.95,
                 .systemProbesPerKiloInstr = 30.0,
                 .codeFootprintBytes = 16 * MB});
    w.push_back({.name = "xalanc",
                 .footprintBytes = 16 * MB,
                 .memRefFraction = 0.40,
                 .writeFraction = 0.20,
                 .streamingFraction = 0.015,
                 .pointerChaseFraction = 0.015,
                 .chaseRegionStayRefs = 128.0,
                 .chasePoolRegions = 4,
                 .zipfAlpha = 1.65,
                 .hotSetBytes = 512 * KB,
                 .threads = 1,
                 .sharedFraction = 0.0,
                 .thpEligibleFraction = 0.85,
                 .systemProbesPerKiloInstr = 25.0});
    // Cloud/server workloads: big heaps, strong superpage affinity.
    w.push_back({.name = "nutch",
                 .footprintBytes = 160 * MB,
                 .memRefFraction = 0.30,
                 .writeFraction = 0.25,
                 .streamingFraction = 0.01,
                 .pointerChaseFraction = 0.025,
                 .chaseRegionStayRefs = 192.0,
                 .chasePoolRegions = 8,
                 .zipfAlpha = 1.50,
                 .hotSetBytes = 1 * MB,
                 .threads = 4,
                 .sharedFraction = 0.20,
                 .thpEligibleFraction = 0.92,
                 .systemProbesPerKiloInstr = 35.0,
                 .codeFootprintBytes = 32 * MB});
    w.push_back({.name = "olio",
                 .footprintBytes = 96 * MB,
                 .memRefFraction = 0.30,
                 .writeFraction = 0.30,
                 .streamingFraction = 0.005,
                 .pointerChaseFraction = 0.06,
                 .chaseRegionStayRefs = 64.0,
                 .chasePoolRegions = 8,
                 .zipfAlpha = 1.35,
                 .hotSetBytes = 1 * MB,
                 .threads = 4,
                 .sharedFraction = 0.25,
                 .thpEligibleFraction = 0.95,
                 .systemProbesPerKiloInstr = 35.0,
                 .codeFootprintBytes = 24 * MB});
    w.push_back({.name = "redis",
                 .footprintBytes = 128 * MB,
                 .memRefFraction = 0.36,
                 .writeFraction = 0.30,
                 .streamingFraction = 0.005,
                 .pointerChaseFraction = 0.04,
                 .chaseRegionStayRefs = 128.0,
                 .chasePoolRegions = 8,
                 .zipfAlpha = 1.45,
                 .hotSetBytes = 1 * MB,
                 .threads = 2,
                 .sharedFraction = 0.20,
                 .thpEligibleFraction = 0.95,
                 .systemProbesPerKiloInstr = 35.0,
                 .codeFootprintBytes = 8 * MB});
    w.push_back({.name = "mongo",
                 .footprintBytes = 160 * MB,
                 .memRefFraction = 0.35,
                 .writeFraction = 0.30,
                 .streamingFraction = 0.01,
                 .pointerChaseFraction = 0.045,
                 .chaseRegionStayRefs = 96.0,
                 .chasePoolRegions = 8,
                 .zipfAlpha = 1.40,
                 .hotSetBytes = 1 * MB,
                 .threads = 4,
                 .sharedFraction = 0.25,
                 .thpEligibleFraction = 0.95,
                 .systemProbesPerKiloInstr = 35.0,
                 .codeFootprintBytes = 24 * MB});
    return w;
}

} // namespace

const std::vector<WorkloadSpec> &
paperWorkloads()
{
    static const std::vector<WorkloadSpec> workloads =
        buildPaperWorkloads();
    return workloads;
}

const std::vector<WorkloadSpec> &
cloudWorkloads()
{
    static const std::vector<WorkloadSpec> workloads = [] {
        std::vector<WorkloadSpec> w;
        for (const char *name : {"olio", "redis", "nutch", "tunk",
                                 "g500", "mongo", "cann", "mcf"}) {
            w.push_back(findWorkload(name));
        }
        return w;
    }();
    return workloads;
}

const WorkloadSpec &
findWorkload(const std::string &name)
{
    for (const auto &w : paperWorkloads()) {
        if (w.name == name)
            return w;
    }
    SEESAW_FATAL("unknown workload: ", name);
}

} // namespace seesaw
