/**
 * @file
 * A minimal binary memory-trace format, so externally captured traces
 * (e.g., from Pin, as the paper used) can be replayed through the
 * simulator, and generated streams can be archived.
 *
 * Record layout (little-endian, 16 bytes):
 *   u32 gap | u8 isWrite | u8 pad[3] | u64 va
 * preceded by an 16-byte header: magic "SEESAWTR", u32 version, u32 pad.
 */

#ifndef SEESAW_WORKLOAD_TRACE_HH
#define SEESAW_WORKLOAD_TRACE_HH

#include <cstdio>
#include <optional>
#include <string>

#include "workload/reference_stream.hh"

namespace seesaw {

/** Writes MemRef records to a binary trace file. */
class TraceWriter
{
  public:
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();
    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Write one record; fatal on a short write (e.g. disk full). */
    void append(const MemRef &ref);
    std::uint64_t records() const { return records_; }

  private:
    std::string path_;
    std::FILE *file_;
    std::uint64_t records_ = 0;
};

/** Reads MemRef records back from a binary trace file. */
class TraceReader
{
  public:
    explicit TraceReader(const std::string &path);
    ~TraceReader();
    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /** @return The next record, or nullopt at a clean end of trace.
     *  A torn trailing record or read error is fatal — a truncated
     *  archive must never silently replay as a shorter trace. */
    std::optional<MemRef> next();

  private:
    std::string path_;
    std::FILE *file_;
};

} // namespace seesaw

#endif // SEESAW_WORKLOAD_TRACE_HH
