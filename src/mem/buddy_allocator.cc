#include "mem/buddy_allocator.hh"

#include <algorithm>

#include "common/logging.hh"

namespace seesaw {

BuddyAllocator::BuddyAllocator(std::uint64_t mem_bytes)
    : totalFrames_(mem_bytes >> kFrameBits),
      freeLists_(kMaxOrder + 1),
      frameFree_(totalFrames_, false)
{
    SEESAW_ASSERT(totalFrames_ > 0, "empty physical memory");

    // Seed the free lists by carving memory into maximal aligned blocks.
    std::uint64_t frame = 0;
    while (frame < totalFrames_) {
        unsigned order = kMaxOrder;
        while (order > 0 &&
               ((frame & ((std::uint64_t{1} << order) - 1)) != 0 ||
                frame + (std::uint64_t{1} << order) > totalFrames_)) {
            --order;
        }
        insertBlock(frame, order);
        markRange(frame, order, true);
        freeFrames_ += std::uint64_t{1} << order;
        frame += std::uint64_t{1} << order;
    }
}

void
BuddyAllocator::markRange(std::uint64_t frame, unsigned order,
                          bool free_state)
{
    const std::uint64_t count = std::uint64_t{1} << order;
    for (std::uint64_t i = 0; i < count; ++i)
        frameFree_[frame + i] = free_state;
}

void
BuddyAllocator::insertBlock(std::uint64_t frame, unsigned order)
{
    auto [it, inserted] = freeLists_[order].insert(frame);
    SEESAW_ASSERT(inserted, "double insert of free block ", frame);
}

void
BuddyAllocator::removeBlock(std::uint64_t frame, unsigned order)
{
    const auto erased = freeLists_[order].erase(frame);
    SEESAW_ASSERT(erased == 1, "free block not found ", frame);
}

std::optional<std::uint64_t>
BuddyAllocator::allocate(unsigned order)
{
    SEESAW_ASSERT(order <= kMaxOrder, "order too large: ", order);

    unsigned have = order;
    while (have <= kMaxOrder && freeLists_[have].empty())
        ++have;
    if (have > kMaxOrder)
        return std::nullopt;

    std::uint64_t frame = *freeLists_[have].begin();
    removeBlock(frame, have);

    // Split down to the requested order, returning upper halves to the
    // free lists.
    while (have > order) {
        --have;
        insertBlock(frame + (std::uint64_t{1} << have), have);
    }

    markRange(frame, order, false);
    freeFrames_ -= std::uint64_t{1} << order;
    return frame;
}

std::optional<std::pair<std::uint64_t, unsigned>>
BuddyAllocator::findContainingFreeBlock(std::uint64_t frame,
                                        unsigned min_order) const
{
    for (unsigned order = min_order; order <= kMaxOrder; ++order) {
        const std::uint64_t start =
            frame & ~((std::uint64_t{1} << order) - 1);
        if (freeLists_[order].count(start))
            return std::make_pair(start, order);
    }
    return std::nullopt;
}

bool
BuddyAllocator::allocateSpecific(std::uint64_t frame, unsigned order)
{
    SEESAW_ASSERT(order <= kMaxOrder, "order too large: ", order);
    SEESAW_ASSERT((frame & ((std::uint64_t{1} << order) - 1)) == 0,
                  "unaligned specific allocation");
    if (frame + (std::uint64_t{1} << order) > totalFrames_)
        return false;

    auto block = findContainingFreeBlock(frame, order);
    if (!block)
        return false;

    auto [start, have] = *block;
    removeBlock(start, have);

    // Split the containing block, keeping only the requested sub-block.
    while (have > order) {
        --have;
        const std::uint64_t half = std::uint64_t{1} << have;
        if (frame < start + half) {
            insertBlock(start + half, have);
        } else {
            insertBlock(start, have);
            start += half;
        }
    }
    SEESAW_ASSERT(start == frame, "buddy split logic error");

    markRange(frame, order, false);
    freeFrames_ -= std::uint64_t{1} << order;
    return true;
}

void
BuddyAllocator::free(std::uint64_t frame, unsigned order)
{
    SEESAW_ASSERT(order <= kMaxOrder, "order too large: ", order);
    SEESAW_ASSERT((frame & ((std::uint64_t{1} << order) - 1)) == 0,
                  "unaligned free");
    SEESAW_ASSERT(!frameFree_[frame], "double free of frame ", frame);

    markRange(frame, order, true);
    freeFrames_ += std::uint64_t{1} << order;

    // Coalesce with free buddies as far as possible.
    while (order < kMaxOrder) {
        const std::uint64_t buddy = buddyOf(frame, order);
        if (buddy + (std::uint64_t{1} << order) > totalFrames_ ||
            !freeLists_[order].count(buddy)) {
            break;
        }
        removeBlock(buddy, order);
        frame = std::min(frame, buddy);
        ++order;
    }
    insertBlock(frame, order);
}

bool
BuddyAllocator::isFrameFree(std::uint64_t frame) const
{
    SEESAW_ASSERT(frame < totalFrames_, "frame out of range");
    return frameFree_[frame];
}

std::size_t
BuddyAllocator::freeBlocksAt(unsigned order) const
{
    SEESAW_ASSERT(order <= kMaxOrder, "order too large");
    return freeLists_[order].size();
}

std::uint64_t
BuddyAllocator::freeFramesAtOrAbove(unsigned order) const
{
    std::uint64_t frames = 0;
    for (unsigned o = order; o <= kMaxOrder; ++o)
        frames += freeLists_[o].size() * (std::uint64_t{1} << o);
    return frames;
}

double
BuddyAllocator::fragmentationIndex(unsigned order) const
{
    if (freeFrames_ == 0)
        return 1.0;
    const double high = static_cast<double>(freeFramesAtOrAbove(order));
    return 1.0 - high / static_cast<double>(freeFrames_);
}

} // namespace seesaw
