#include "mem/memhog.hh"

#include <algorithm>

#include "common/logging.hh"

namespace seesaw {

Memhog::Memhog(OsMemoryManager &os, MemhogParams params)
    : os_(os), params_(params), rng_(params.seed)
{
}

void
Memhog::consume(double fraction)
{
    SEESAW_ASSERT(!consumed_, "Memhog::consume called twice");
    consumed_ = true;
    if (fraction <= 0.0)
        return;
    fraction = std::min(fraction, 0.95);

    const std::uint64_t total = os_.buddy().totalFrames();
    const auto keep = static_cast<std::uint64_t>(total * fraction);
    const auto overshoot =
        static_cast<std::uint64_t>(keep * (1.0 + params_.churn));

    // Phase 1: grab frames greedily (buddy hands them out compactly).
    std::vector<std::uint64_t> grabbed;
    grabbed.reserve(overshoot);
    for (std::uint64_t i = 0; i < overshoot; ++i) {
        auto frame = os_.allocateRawFrame(/*movable=*/true);
        if (!frame)
            break;
        grabbed.push_back(*frame);
    }

    // Phase 2: free run-structured random stretches until only `keep`
    // frames remain, scattering holes across page-blocks.
    std::uint64_t held = grabbed.size();
    std::vector<bool> freed(grabbed.size(), false);
    while (held > keep) {
        const std::uint64_t start = rng_.nextBounded(grabbed.size());
        std::uint64_t run =
            1 + rng_.nextGeometric(params_.meanFreeRunLength);
        for (std::uint64_t i = start;
             i < grabbed.size() && run > 0 && held > keep; ++i) {
            if (freed[i])
                continue;
            os_.freeRawFrame(grabbed[i]);
            freed[i] = true;
            --held;
            --run;
        }
    }

    // Phase 3: retain the rest; pin a small random fraction in place.
    held_.clear();
    for (std::uint64_t i = 0; i < grabbed.size(); ++i) {
        if (freed[i])
            continue;
        held_.push_back(grabbed[i]);
    }
    for (auto frame : held_) {
        if (rng_.chance(params_.pinnedProbability))
            os_.pinRawFrame(frame);
    }
}

void
Memhog::release()
{
    for (auto frame : held_)
        os_.freeRawFrame(frame);
    held_.clear();
}

} // namespace seesaw
