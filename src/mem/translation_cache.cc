#include "mem/translation_cache.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace seesaw {

TranslationCache::TranslationCache(unsigned entries)
    : slots_(entries), mask_(entries - 1)
{
    SEESAW_ASSERT(entries > 0 && isPowerOfTwo(entries),
                  "translation-cache entries must be a power of two");
}

void
TranslationCache::forEachValidEntry(
    const std::function<void(const TranslationCacheEntry &)> &fn) const
{
    for (const auto &e : slots_) {
        if (e.gen == gen_)
            fn(e);
    }
}

} // namespace seesaw
