/**
 * @file
 * The memhog fragmentation microbenchmark (Section III-C).
 *
 * memhog performs random memory allocations to fragment physical
 * memory, as used by many prior virtual-memory studies. Our model
 * allocates an over-committed set of 4KB frames, then releases a
 * random-length run-structured subset, leaving the retained fraction
 * scattered across page-blocks. A small fraction of retained frames is
 * pinned (unmovable), defeating compaction for the blocks they sit in.
 */

#ifndef SEESAW_MEM_MEMHOG_HH
#define SEESAW_MEM_MEMHOG_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "mem/os_memory_manager.hh"

namespace seesaw {

/** Tuning knobs of the fragmentation model. */
struct MemhogParams
{
    /** Overcommit multiplier: allocate keep*(1+churn), free churn part. */
    double churn = 1.0;

    /** Probability a retained frame is pinned (unmovable). */
    double pinnedProbability = 0.03;

    /** Mean length (frames) of the contiguous runs memhog frees;
     *  shorter runs fragment harder. */
    double meanFreeRunLength = 48.0;

    std::uint64_t seed = 0x90091e5;
};

/**
 * Drives an OsMemoryManager's raw-frame interface to consume and
 * fragment a target fraction of physical memory.
 */
class Memhog
{
  public:
    Memhog(OsMemoryManager &os, MemhogParams params = {});

    /**
     * Consume @p fraction of total physical memory, fragmenting it in
     * the process. memhog(0.4) matches the paper's "memhog (40%)".
     * May be called once per instance.
     */
    void consume(double fraction);

    /** Release every retained (non-pinned) frame. */
    void release();

    /** Frames currently held (including pinned). */
    std::uint64_t heldFrames() const { return held_.size(); }

  private:
    OsMemoryManager &os_;
    MemhogParams params_;
    Rng rng_;
    std::vector<std::uint64_t> held_;
    bool consumed_ = false;
};

} // namespace seesaw

#endif // SEESAW_MEM_MEMHOG_HH
