/**
 * @file
 * A binary buddy allocator over simulated physical memory.
 *
 * This is the substrate beneath the OS memory manager: transparent
 * superpage allocation succeeds only when an aligned, contiguous 2MB
 * (order-9) block is free, exactly as in Linux. Fragmentation induced by
 * memhog (Section III-C / Fig 3) manifests as depleted high-order free
 * lists.
 */

#ifndef SEESAW_MEM_BUDDY_ALLOCATOR_HH
#define SEESAW_MEM_BUDDY_ALLOCATOR_HH

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "common/types.hh"

namespace seesaw {

/**
 * Buddy allocator managing 4KB frames. Orders are powers of two of the
 * base frame: order 0 = 4KB, order 9 = 2MB, order 18 = 1GB.
 */
class BuddyAllocator
{
  public:
    static constexpr unsigned kFrameBits = 12;
    static constexpr std::uint64_t kFrameBytes = 1ULL << kFrameBits;
    static constexpr unsigned kMaxOrder = 18; // 1GB

    /** Manage @p mem_bytes of physical memory (rounded down to 4KB). */
    explicit BuddyAllocator(std::uint64_t mem_bytes);

    /**
     * Allocate a naturally aligned block of 2^order frames.
     * @return The first frame number, or nullopt if no block exists.
     */
    std::optional<std::uint64_t> allocate(unsigned order);

    /**
     * Allocate a specific naturally aligned block if it is entirely
     * free. Used by the compaction daemon to claim a region it just
     * emptied. @return True on success.
     */
    bool allocateSpecific(std::uint64_t frame, unsigned order);

    /** Release a block previously returned by allocate(). */
    void free(std::uint64_t frame, unsigned order);

    /** @return Whether the single frame @p frame is currently free. */
    bool isFrameFree(std::uint64_t frame) const;

    /** @return Total frames under management. */
    std::uint64_t totalFrames() const { return totalFrames_; }

    /** @return Currently free frames. */
    std::uint64_t freeFrames() const { return freeFrames_; }

    /** @return Number of free blocks on the @p order free list. */
    std::size_t freeBlocksAt(unsigned order) const;

    /** @return Free frames contained in blocks of at least @p order. */
    std::uint64_t freeFramesAtOrAbove(unsigned order) const;

    /**
     * Fragmentation index in [0,1]: 0 when all free memory sits in
     * blocks of at least @p order, 1 when none does.
     */
    double fragmentationIndex(unsigned order) const;

    /** Frame index of the buddy of @p frame at @p order. */
    static std::uint64_t buddyOf(std::uint64_t frame, unsigned order)
    {
        return frame ^ (std::uint64_t{1} << order);
    }

    /** Convert a frame number to a byte address. */
    static Addr frameToAddr(std::uint64_t frame)
    {
        return frame << kFrameBits;
    }

    /** Convert a byte address to its frame number. */
    static std::uint64_t addrToFrame(Addr addr)
    {
        return addr >> kFrameBits;
    }

  private:
    std::uint64_t totalFrames_;
    std::uint64_t freeFrames_ = 0;

    /** Free lists indexed by order; each holds block start frames. */
    std::vector<std::set<std::uint64_t>> freeLists_;

    /** Per-frame free flag to answer isFrameFree in O(1). */
    std::vector<bool> frameFree_;

    void markRange(std::uint64_t frame, unsigned order, bool free_state);
    void insertBlock(std::uint64_t frame, unsigned order);
    void removeBlock(std::uint64_t frame, unsigned order);

    /** Find the free block (start, order) containing @p frame. */
    std::optional<std::pair<std::uint64_t, unsigned>>
    findContainingFreeBlock(std::uint64_t frame, unsigned min_order) const;
};

} // namespace seesaw

#endif // SEESAW_MEM_BUDDY_ALLOCATOR_HH
