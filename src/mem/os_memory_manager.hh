/**
 * @file
 * An OS memory-management model: transparent huge pages (THP), demand
 * allocation from a buddy pool, bounded-effort compaction, khugepaged-
 * style promotion and superpage splintering.
 *
 * This substitutes for the real, long-uptime Linux/x86 host used in the
 * paper's Fig 3 characterisation: superpage coverage *emerges* from the
 * contiguity of free physical memory, which memhog (mem/memhog.hh)
 * degrades.
 */

#ifndef SEESAW_MEM_OS_MEMORY_MANAGER_HH
#define SEESAW_MEM_OS_MEMORY_MANAGER_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/buddy_allocator.hh"
#include "mem/page_table.hh"

namespace seesaw {

/** Configuration of the OS model. */
struct OsParams
{
    std::uint64_t memBytes = 4ULL << 30; //!< Table II: 4GB DRAM
    bool thpEnabled = true;              //!< transparent 2MB pages on

    /** Fraction of memory reserved at boot for clustered, unmovable
     *  kernel allocations (whole 2MB page-blocks). */
    double kernelReservedFraction = 0.04;

    /** Fraction of 2MB page-blocks polluted by a single scattered
     *  unmovable allocation (long-uptime system activity). */
    double pollutedRegionFraction = 0.08;

    /** 2MB regions sampled per direct-compaction attempt. */
    unsigned compactionCandidates = 64;

    /** Maximum page migrations per direct-compaction attempt. */
    unsigned compactionBudgetPages = 192;

    /** Direct-compaction attempts per failed THP allocation. */
    unsigned compactionMaxAttempts = 3;

    std::uint64_t seed = 0x05eed;        //!< RNG seed for OS decisions
};

/** A 2MB region was promoted from 512 base pages to one superpage. */
struct PromotionEvent
{
    Asid asid;
    Addr vaBase;   //!< 2MB-aligned virtual base of the promoted region
    Addr newPaBase; //!< physical base of the fresh 2MB block
    /** Physical bases of the 512 old 4KB frames; cached lines under
     *  these addresses are stale and must be swept (Section IV-C2). */
    std::vector<Addr> oldPaBases;
};

/** A 2MB superpage was splintered into 512 base pages. */
struct SplinterEvent
{
    Asid asid;
    Addr vaBase;
};

/**
 * The OS memory manager. Owns the physical frame pool, the page tables
 * and all policy around superpage creation and destruction.
 */
class OsMemoryManager
{
  public:
    explicit OsMemoryManager(OsParams params = {});

    /** @return A fresh address-space identifier. */
    Asid createProcess();

    /** Tear down @p asid, releasing all its frames. */
    void destroyProcess(Asid asid);

    /**
     * Map @p bytes of anonymous memory at @p va_base (4KB aligned).
     * 2MB-aligned, THP-eligible chunks are mapped with superpages when a
     * contiguous physical block can be found (compacting if necessary);
     * everything else falls back to base pages.
     *
     * @param thp_eligible_fraction Probability a given 2MB chunk is
     *        eligible for THP at all — models per-workload memory that
     *        must stay base-paged (stacks, finer-grained protection,
     *        file-backed mappings).
     */
    void mapAnonymous(Asid asid, Addr va_base, std::uint64_t bytes,
                      double thp_eligible_fraction = 1.0);

    /** Unmap and free everything in [va_base, va_base + bytes). */
    void unmapRange(Asid asid, Addr va_base, std::uint64_t bytes);

    /** Translate a virtual address of @p asid. */
    std::optional<Translation> translate(Asid asid, Addr va) const
    {
        return pageTable_.translate(asid, va);
    }

    /**
     * khugepaged: scan @p asid's fully base-page-populated 2MB regions
     * and promote up to @p max_promotions of them into superpages.
     * Each promotion migrates 512 pages into a fresh physical block.
     */
    std::vector<PromotionEvent> runPromotionPass(Asid asid,
                                                 unsigned max_promotions);

    /**
     * Splinter the superpage covering @p va back into 512 base pages
     * (in place, no copy), as an mprotect() on a sub-range would.
     */
    std::optional<SplinterEvent> splinter(Asid asid, Addr va);

    /**
     * Explicitly map one 1GB superpage at @p va_base (1GB aligned).
     * Transparent 1GB support is still maturing in production OSes
     * (§II-B), so 1GB pages are an explicit-request interface here
     * (hugetlbfs-style). @return False when no contiguous 1GB block
     * exists or the range is already mapped.
     */
    bool mapOneGbPage(Asid asid, Addr va_base);

    /** @name Raw-frame interface (memhog / kernel noise). */
    /// @{
    std::optional<std::uint64_t> allocateRawFrame(bool movable);
    void freeRawFrame(std::uint64_t frame);

    /** Re-tag an allocated raw frame as pinned (unmovable) in place. */
    void pinRawFrame(std::uint64_t frame);
    /// @}

    /** Fraction of @p asid's mapped footprint backed by superpages
     *  (the Fig 3 metric). */
    double superpageCoverage(Asid asid) const;

    /** Virtual bases of every 2MB superpage mapped by @p asid. */
    std::vector<Addr> superpageVas(Asid asid) const;

    const BuddyAllocator &buddy() const { return buddy_; }
    const PageTable &pageTable() const { return pageTable_; }
    const OsParams &params() const { return params_; }

    /** @name Bookkeeping counters. */
    /// @{
    std::uint64_t pagesMigrated() const { return pagesMigrated_; }
    std::uint64_t compactionAttempts() const
    {
        return compactionAttempts_;
    }
    std::uint64_t compactionSuccesses() const
    {
        return compactionSuccesses_;
    }
    std::uint64_t superpagesAllocated() const
    {
        return superpagesAllocated_;
    }
    std::uint64_t promotions() const { return promotions_; }
    std::uint64_t splinters() const { return splinters_; }
    /// @}

  private:
    /** Physical frame ownership states. */
    enum class FrameState : std::uint8_t {
        Free,
        Movable4K,   //!< process base page (reverse-mapped, migratable)
        RawMovable,  //!< anonymous raw page (memhog), migratable
        Unmovable,   //!< pinned/kernel
        Super,       //!< part of a 2MB superpage block
    };

    struct ReverseEntry
    {
        Asid asid;
        Addr vaBase;
    };

    OsParams params_;
    BuddyAllocator buddy_;
    PageTable pageTable_;
    Rng rng_;
    Asid nextAsid_ = 1;

    std::vector<FrameState> frameState_;
    std::unordered_map<std::uint64_t, ReverseEntry> reverse4k_;
    std::unordered_map<std::uint64_t, ReverseEntry> reverse2m_;
    std::unordered_map<std::uint64_t, ReverseEntry> reverse1g_;

    std::uint64_t pagesMigrated_ = 0;
    std::uint64_t compactionAttempts_ = 0;
    std::uint64_t compactionSuccesses_ = 0;
    std::uint64_t superpagesAllocated_ = 0;
    std::uint64_t promotions_ = 0;
    std::uint64_t splinters_ = 0;

    static constexpr unsigned kSuperOrder = 9; // 2MB in 4KB frames
    static constexpr unsigned kFramesPerSuper = 1u << kSuperOrder;
    static constexpr unsigned kGigaOrder = 18; // 1GB in 4KB frames
    static constexpr std::uint64_t kFramesPerGiga = 1ULL << kGigaOrder;

    void seedBootNoise();

    /** Allocate (compacting if needed) a 2MB block; nullopt on failure. */
    std::optional<std::uint64_t> allocateSuperBlock();

    /** One direct-compaction attempt targeting a 2MB block. */
    bool compactOnce();

    /** Try to fully evacuate the 2MB region at @p region_frame. */
    bool evacuateRegion(std::uint64_t region_frame);

    /** Map 4KB pages covering [va, va + count*4KB). */
    void mapBasePages(Asid asid, Addr va, std::uint64_t count);

    /** Map a single 2MB superpage; @return false if no block found. */
    bool tryMapSuperpage(Asid asid, Addr va_base);

    void setFrames(std::uint64_t frame, std::uint64_t count,
                   FrameState state);
};

} // namespace seesaw

#endif // SEESAW_MEM_OS_MEMORY_MANAGER_HH
