#include "mem/page_table.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace seesaw {

const PageTable::AddressSpace *
PageTable::space(Asid asid) const
{
    auto it = spaces_.find(asid);
    return it == spaces_.end() ? nullptr : &it->second;
}

bool
PageTable::overlaps(const AddressSpace &as, Addr va,
                    std::uint64_t bytes) const
{
    // 1GB pages covering the range?
    for (Addr r = alignDown(va, pageBytes(PageSize::Super1GB));
         r < va + bytes; r += pageBytes(PageSize::Super1GB)) {
        if (as.super1g.count(r >> 30))
            return true;
    }
    // 2MB pages covering the range?
    for (Addr r = alignDown(va, pageBytes(PageSize::Super2MB));
         r < va + bytes; r += pageBytes(PageSize::Super2MB)) {
        if (as.super2m.count(r >> 21))
            return true;
    }
    // 4KB pages inside the range?
    for (Addr p = alignDown(va, pageBytes(PageSize::Base4KB));
         p < va + bytes; p += pageBytes(PageSize::Base4KB)) {
        if (as.base4k.count(p >> 12))
            return true;
    }
    return false;
}

bool
PageTable::map(Asid asid, Addr va_base, Addr pa_base, PageSize size)
{
    const std::uint64_t bytes = pageBytes(size);
    SEESAW_ASSERT(va_base % bytes == 0, "unaligned va_base");
    SEESAW_ASSERT(pa_base % bytes == 0, "unaligned pa_base");

    auto &as = spaces_[asid];
    if (overlaps(as, va_base, bytes))
        return false;

    switch (size) {
      case PageSize::Base4KB:
        as.base4k.emplace(va_base >> 12, pa_base);
        break;
      case PageSize::Super2MB:
        as.super2m.emplace(va_base >> 21, pa_base);
        break;
      case PageSize::Super1GB:
        as.super1g.emplace(va_base >> 30, pa_base);
        break;
    }
    return true;
}

std::optional<Translation>
PageTable::unmap(Asid asid, Addr va_base, PageSize size)
{
    auto it = spaces_.find(asid);
    if (it == spaces_.end())
        return std::nullopt;
    auto &as = it->second;

    auto erase_from = [&](std::unordered_map<Addr, Addr> &table,
                          unsigned shift) -> std::optional<Translation> {
        auto entry = table.find(va_base >> shift);
        if (entry == table.end())
            return std::nullopt;
        Translation t{entry->second, va_base, size};
        table.erase(entry);
        tcache_.invalidateAll();
        return t;
    };

    switch (size) {
      case PageSize::Base4KB: return erase_from(as.base4k, 12);
      case PageSize::Super2MB: return erase_from(as.super2m, 21);
      case PageSize::Super1GB: return erase_from(as.super1g, 30);
    }
    return std::nullopt;
}

std::optional<Translation>
PageTable::translateMissing(Asid asid, Addr va) const
{
    auto t = translateSlow(asid, va);
    if (t)
        tcache_.fill(asid, va, t->paBase, t->vaBase, t->size);
    return t;
}

std::optional<Translation>
PageTable::translateSlow(Asid asid, Addr va) const
{
    const auto *as = space(asid);
    if (!as)
        return std::nullopt;

    if (auto it = as->base4k.find(va >> 12); it != as->base4k.end()) {
        return Translation{it->second, alignDown(va, 4096),
                           PageSize::Base4KB};
    }
    if (auto it = as->super2m.find(va >> 21); it != as->super2m.end()) {
        return Translation{it->second, alignDown(va, 2 * 1024 * 1024),
                           PageSize::Super2MB};
    }
    if (auto it = as->super1g.find(va >> 30); it != as->super1g.end()) {
        return Translation{it->second,
                           alignDown(va, 1024 * 1024 * 1024),
                           PageSize::Super1GB};
    }
    return std::nullopt;
}

unsigned
PageTable::walkLevels(PageSize size)
{
    switch (size) {
      case PageSize::Base4KB: return 4;
      case PageSize::Super2MB: return 3;
      case PageSize::Super1GB: return 2;
    }
    return 4;
}

void
PageTable::forEachBaseMappingIn2MBRegion(
    Asid asid, Addr region_va,
    const std::function<void(Addr va, Addr pa)> &fn) const
{
    const auto *as = space(asid);
    if (!as)
        return;
    const Addr base = alignDown(region_va, 2 * 1024 * 1024);
    for (unsigned i = 0; i < 512; ++i) {
        const Addr va = base + i * 4096ULL;
        auto it = as->base4k.find(va >> 12);
        if (it != as->base4k.end())
            fn(va, it->second);
    }
}

unsigned
PageTable::baseMappingsIn2MBRegion(Asid asid, Addr region_va) const
{
    unsigned count = 0;
    forEachBaseMappingIn2MBRegion(asid, region_va,
                                  [&](Addr, Addr) { ++count; });
    return count;
}

std::uint64_t
PageTable::mappedBytes(Asid asid) const
{
    const auto *as = space(asid);
    if (!as)
        return 0;
    return as->base4k.size() * pageBytes(PageSize::Base4KB) +
           as->super2m.size() * pageBytes(PageSize::Super2MB) +
           as->super1g.size() * pageBytes(PageSize::Super1GB);
}

std::uint64_t
PageTable::mappedBytes(Asid asid, PageSize size) const
{
    const auto *as = space(asid);
    if (!as)
        return 0;
    switch (size) {
      case PageSize::Base4KB:
        return as->base4k.size() * pageBytes(size);
      case PageSize::Super2MB:
        return as->super2m.size() * pageBytes(size);
      case PageSize::Super1GB:
        return as->super1g.size() * pageBytes(size);
    }
    return 0;
}

void
PageTable::clearAsid(Asid asid)
{
    spaces_.erase(asid);
    tcache_.invalidateAll();
}

} // namespace seesaw
