/**
 * @file
 * A software translation cache in front of PageTable's hash tables.
 *
 * PageTable::translate() is the simulator's hottest translation
 * primitive: page walks, demand paging, warmup prefills and the
 * invariant audits all funnel through it, and the slow path probes
 * three std::unordered_maps (4KB, then 2MB, then 1GB) per call. This
 * cache flattens the common case to one direct-mapped array probe,
 * keyed by ASID and 4KB virtual page number, so repeated translations
 * of hot pages cost a single predictable load.
 *
 * Correctness relies on two properties of PageTable:
 *  - map() rejects overlapping ranges, so a cached positive entry can
 *    never be contradicted by a later successful map(); and
 *  - misses are never cached (no negative caching), so new mappings
 *    become visible immediately.
 * Unmaps and address-space teardown invalidate in O(1) by bumping a
 * generation counter that every entry must match. The slow path stays
 * authoritative and auditable: check::auditTranslationCacheAgainstPageTable
 * re-derives every live entry from the hash tables.
 */

#ifndef SEESAW_MEM_TRANSLATION_CACHE_HH
#define SEESAW_MEM_TRANSLATION_CACHE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"

namespace seesaw {

struct Translation;

/** One cached translation, tagged by ASID, 4KB VPN and generation. */
struct TranslationCacheEntry
{
    Addr paBase = 0;   //!< physical base of the containing page
    Addr vaBase = 0;   //!< virtual base of the containing page
    PageSize size = PageSize::Base4KB;
    Addr vpn = 0;      //!< va >> 12 (4KB granularity, all page sizes)
    Asid asid = 0;
    std::uint64_t gen = 0; //!< valid iff equal to the cache generation
};

/**
 * Direct-mapped, generation-invalidated translation cache.
 */
class TranslationCache
{
  public:
    /** @param entries Slot count; must be a power of two. */
    explicit TranslationCache(unsigned entries = kDefaultEntries);

    static constexpr unsigned kDefaultEntries = 4096;

    /** Probe for the translation covering @p va; nullptr on miss. The
     *  pointer is valid until the next fill or invalidation. */
    const TranslationCacheEntry *
    lookup(Asid asid, Addr va) const
    {
        const Addr vpn = va >> 12;
        const TranslationCacheEntry &e = slots_[indexOf(asid, vpn)];
        if (e.gen == gen_ && e.vpn == vpn && e.asid == asid)
            return &e;
        return nullptr;
    }

    /** Install the translation covering @p va (evicts the slot). */
    void
    fill(Asid asid, Addr va, Addr pa_base, Addr va_base, PageSize size)
    {
        const Addr vpn = va >> 12;
        TranslationCacheEntry &e = slots_[indexOf(asid, vpn)];
        e.paBase = pa_base;
        e.vaBase = va_base;
        e.size = size;
        e.vpn = vpn;
        e.asid = asid;
        e.gen = gen_;
    }

    /** O(1) full invalidation: outdate every entry's generation. */
    void invalidateAll() { ++gen_; }

    unsigned entries() const
    {
        return static_cast<unsigned>(slots_.size());
    }
    std::uint64_t generation() const { return gen_; }

    /** Visit every live (current-generation) entry (audits, tests). */
    void forEachValidEntry(
        const std::function<void(const TranslationCacheEntry &)> &fn)
        const;

  private:
    std::vector<TranslationCacheEntry> slots_;
    Addr mask_;
    std::uint64_t gen_ = 1; //!< slots start at gen 0 == invalid

    std::size_t
    indexOf(Asid asid, Addr vpn) const
    {
        // Spread consecutive VPNs across slots and displace ASIDs so
        // two address spaces do not systematically collide.
        return static_cast<std::size_t>(
            (vpn ^ (static_cast<Addr>(asid) << 7)) & mask_);
    }
};

} // namespace seesaw

#endif // SEESAW_MEM_TRANSLATION_CACHE_HH
