/**
 * @file
 * Per-process (per-ASID) page tables supporting x86-64's 4KB, 2MB and
 * 1GB page sizes, with an x86-style radix-walk cost model.
 */

#ifndef SEESAW_MEM_PAGE_TABLE_HH
#define SEESAW_MEM_PAGE_TABLE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "common/types.hh"
#include "mem/translation_cache.hh"

namespace seesaw {

/** The result of a successful translation. */
struct Translation
{
    Addr paBase;     //!< physical base of the containing page
    Addr vaBase;     //!< virtual base of the containing page
    PageSize size;   //!< page size of the mapping

    /** Translate @p va (must lie inside this page). */
    Addr
    translate(Addr va) const
    {
        return paBase + (va - vaBase);
    }
};

/**
 * A multi-page-size page table for one or more address spaces.
 *
 * Mappings are stored per size class; map() rejects overlapping ranges
 * so that at most one mapping covers any virtual byte of an ASID.
 */
class PageTable
{
  public:
    /**
     * Install a mapping of one page of @p size at @p va_base -> @p
     * pa_base (both must be size-aligned).
     * @return False if any part of the range is already mapped.
     */
    bool map(Asid asid, Addr va_base, Addr pa_base, PageSize size);

    /** Remove the mapping of the page at @p va_base.
     *  @return The removed translation, if one existed. */
    std::optional<Translation> unmap(Asid asid, Addr va_base,
                                     PageSize size);

    /** Look up the translation covering @p va. Fast path: one probe
     *  of the software translation cache; falls back to (and refills
     *  from) the hash tables on a miss. */
    std::optional<Translation>
    translate(Asid asid, Addr va) const
    {
        if (const TranslationCacheEntry *e = tcache_.lookup(asid, va))
            return Translation{e->paBase, e->vaBase, e->size};
        return translateMissing(asid, va);
    }

    /** The uncached probe of the per-size hash tables. Authoritative;
     *  the audit layer replays it against every live cache entry. */
    std::optional<Translation> translateSlow(Asid asid, Addr va) const;

    /** The software translation cache fronting translate() (audits,
     *  tests; mutable so tests can seed corruption). */
    const TranslationCache &translationCache() const { return tcache_; }
    TranslationCache &translationCache() { return tcache_; }

    /** @return Number of radix levels an x86-64 walk touches for a leaf
     *  of @p size (4 for 4KB, 3 for 2MB, 2 for 1GB). */
    static unsigned walkLevels(PageSize size);

    /** Iterate over every 4KB mapping of @p asid inside the 2MB virtual
     *  region based at @p region_va (for promotion scans). */
    void forEachBaseMappingIn2MBRegion(
        Asid asid, Addr region_va,
        const std::function<void(Addr va, Addr pa)> &fn) const;

    /** Count of 4KB mappings inside the 2MB region at @p region_va. */
    unsigned baseMappingsIn2MBRegion(Asid asid, Addr region_va) const;

    /** Total mapped bytes for @p asid. */
    std::uint64_t mappedBytes(Asid asid) const;

    /** Mapped bytes backed by pages of @p size for @p asid. */
    std::uint64_t mappedBytes(Asid asid, PageSize size) const;

    /** Drop every mapping of @p asid. */
    void clearAsid(Asid asid);

  private:
    struct AddressSpace
    {
        // Key: va >> pageOffsetBits(size); value: pa base.
        std::unordered_map<Addr, Addr> base4k;
        std::unordered_map<Addr, Addr> super2m;
        std::unordered_map<Addr, Addr> super1g;
    };

    std::unordered_map<Asid, AddressSpace> spaces_;

    /** Flattens the triple-hash translate() probe to one array load;
     *  invalidated by generation bump on unmap()/clearAsid(). Mutable:
     *  it memoises const lookups. */
    mutable TranslationCache tcache_;

    /** Slow-path translate + cache refill (out of line). */
    std::optional<Translation> translateMissing(Asid asid,
                                                Addr va) const;

    const AddressSpace *space(Asid asid) const;

    /** True if any existing mapping overlaps [va, va + bytes). */
    bool overlaps(const AddressSpace &as, Addr va,
                  std::uint64_t bytes) const;
};

} // namespace seesaw

#endif // SEESAW_MEM_PAGE_TABLE_HH
