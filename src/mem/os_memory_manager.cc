#include "mem/os_memory_manager.hh"

#include <algorithm>
#include <map>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace seesaw {

OsMemoryManager::OsMemoryManager(OsParams params)
    : params_(params),
      buddy_(params.memBytes),
      rng_(params.seed),
      frameState_(buddy_.totalFrames(), FrameState::Free)
{
    seedBootNoise();
}

void
OsMemoryManager::setFrames(std::uint64_t frame, std::uint64_t count,
                           FrameState state)
{
    for (std::uint64_t i = 0; i < count; ++i)
        frameState_[frame + i] = state;
}

void
OsMemoryManager::seedBootNoise()
{
    const std::uint64_t total = buddy_.totalFrames();
    const std::uint64_t regions = total / kFramesPerSuper;

    // Clustered kernel reservations: whole 2MB page-blocks that can
    // never host a superpage (code, page tables, slab zones).
    const auto kernel_regions = static_cast<std::uint64_t>(
        regions * params_.kernelReservedFraction);
    for (std::uint64_t i = 0; i < kernel_regions; ++i) {
        auto frame = buddy_.allocate(kSuperOrder);
        if (!frame)
            break;
        setFrames(*frame, kFramesPerSuper, FrameState::Unmovable);
    }

    // Long-uptime pollution: a scattering of single unmovable frames
    // that each spoil one 2MB page-block for compaction.
    const auto polluted = static_cast<std::uint64_t>(
        regions * params_.pollutedRegionFraction);
    for (std::uint64_t i = 0; i < polluted; ++i) {
        const std::uint64_t region = rng_.nextBounded(regions);
        const std::uint64_t frame =
            region * kFramesPerSuper + rng_.nextBounded(kFramesPerSuper);
        if (buddy_.allocateSpecific(frame, 0))
            frameState_[frame] = FrameState::Unmovable;
    }
}

Asid
OsMemoryManager::createProcess()
{
    return nextAsid_++;
}

void
OsMemoryManager::destroyProcess(Asid asid)
{
    // Collect this process's frames from the reverse maps, then free.
    std::vector<std::uint64_t> frames4k;
    for (const auto &[frame, rev] : reverse4k_) {
        if (rev.asid == asid)
            frames4k.push_back(frame);
    }
    // Free in frame order, not hash order: the buddy free lists are
    // order-confluent, but keeping every mutation sequence
    // deterministic is a project invariant (seesaw-tidy enforces it).
    std::sort(frames4k.begin(), frames4k.end());
    for (auto frame : frames4k) {
        reverse4k_.erase(frame);
        frameState_[frame] = FrameState::Free;
        buddy_.free(frame, 0);
    }

    std::vector<std::uint64_t> frames2m;
    for (const auto &[frame, rev] : reverse2m_) {
        if (rev.asid == asid)
            frames2m.push_back(frame);
    }
    std::sort(frames2m.begin(), frames2m.end());
    for (auto frame : frames2m) {
        reverse2m_.erase(frame);
        setFrames(frame, kFramesPerSuper, FrameState::Free);
        buddy_.free(frame, kSuperOrder);
    }

    std::vector<std::uint64_t> frames1g;
    for (const auto &[frame, rev] : reverse1g_) {
        if (rev.asid == asid)
            frames1g.push_back(frame);
    }
    std::sort(frames1g.begin(), frames1g.end());
    for (auto frame : frames1g) {
        reverse1g_.erase(frame);
        setFrames(frame, kFramesPerGiga, FrameState::Free);
        buddy_.free(frame, kGigaOrder);
    }

    pageTable_.clearAsid(asid);
}

bool
OsMemoryManager::compactOnce()
{
    ++compactionAttempts_;
    const std::uint64_t regions =
        buddy_.totalFrames() / kFramesPerSuper;
    if (regions == 0)
        return false;

    // Sample candidate page-blocks; keep the cheapest fully-movable one.
    std::uint64_t best_region = regions; // invalid
    unsigned best_cost = params_.compactionBudgetPages + 1;
    for (unsigned c = 0; c < params_.compactionCandidates; ++c) {
        const std::uint64_t region = rng_.nextBounded(regions);
        const std::uint64_t base = region * kFramesPerSuper;
        unsigned cost = 0;
        bool ok = true;
        for (unsigned i = 0; i < kFramesPerSuper && ok; ++i) {
            switch (frameState_[base + i]) {
              case FrameState::Free:
                break;
              case FrameState::Movable4K:
              case FrameState::RawMovable:
                ++cost;
                break;
              default:
                ok = false;
                break;
            }
        }
        if (ok && cost < best_cost) {
            best_cost = cost;
            best_region = region;
            if (cost == 0)
                break;
        }
    }

    if (best_region == regions)
        return false;
    if (!evacuateRegion(best_region * kFramesPerSuper))
        return false;

    ++compactionSuccesses_;
    return true;
}

bool
OsMemoryManager::evacuateRegion(std::uint64_t region_frame)
{
    // Claim the region's free frames first so that migration
    // destinations are allocated outside the region being evacuated.
    std::vector<std::uint64_t> claimed;
    std::vector<std::uint64_t> movers;
    for (unsigned i = 0; i < kFramesPerSuper; ++i) {
        const std::uint64_t f = region_frame + i;
        switch (frameState_[f]) {
          case FrameState::Free:
            if (!buddy_.allocateSpecific(f, 0)) {
                // Inconsistent state between buddy and frameState_.
                SEESAW_PANIC("frameState says free, buddy disagrees");
            }
            claimed.push_back(f);
            break;
          case FrameState::Movable4K:
          case FrameState::RawMovable:
            movers.push_back(f);
            break;
          default:
            for (auto c : claimed)
                buddy_.free(c, 0);
            return false;
        }
    }

    // Migrate the movable frames. Sources are not freed until the end:
    // freeing them mid-loop would let allocate(0) hand them back as
    // destinations inside the very region being evacuated.
    bool failed = false;
    std::vector<std::uint64_t> migrated_srcs;
    for (auto src : movers) {
        auto dst = buddy_.allocate(0);
        if (!dst) {
            failed = true;
            break;
        }
        // Move ownership metadata from src to dst.
        frameState_[*dst] = frameState_[src];
        if (frameState_[src] == FrameState::Movable4K) {
            auto it = reverse4k_.find(src);
            SEESAW_ASSERT(it != reverse4k_.end(),
                          "movable frame missing reverse map");
            const ReverseEntry rev = it->second;
            reverse4k_.erase(it);
            reverse4k_.emplace(*dst, rev);
            // Point the page table at the new frame.
            pageTable_.unmap(rev.asid, rev.vaBase, PageSize::Base4KB);
            const bool ok = pageTable_.map(
                rev.asid, rev.vaBase, BuddyAllocator::frameToAddr(*dst),
                PageSize::Base4KB);
            SEESAW_ASSERT(ok, "remap during migration failed");
        }
        migrated_srcs.push_back(src);
        ++pagesMigrated_;
    }

    // Release migrated sources (and claimed frames); on success the
    // whole region coalesces back to a free order-9 block.
    for (auto src : migrated_srcs) {
        frameState_[src] = FrameState::Free;
        buddy_.free(src, 0);
    }
    for (auto c : claimed)
        buddy_.free(c, 0);

    // On failure the partially migrated pages stay at their new homes
    // (harmless); the region simply is not reclaimed.
    return !failed;
}

std::optional<std::uint64_t>
OsMemoryManager::allocateSuperBlock()
{
    auto frame = buddy_.allocate(kSuperOrder);
    for (unsigned attempt = 0;
         !frame && attempt < params_.compactionMaxAttempts; ++attempt) {
        if (!compactOnce())
            break;
        frame = buddy_.allocate(kSuperOrder);
    }
    return frame;
}

bool
OsMemoryManager::tryMapSuperpage(Asid asid, Addr va_base)
{
    auto frame = allocateSuperBlock();
    if (!frame)
        return false;

    const Addr pa = BuddyAllocator::frameToAddr(*frame);
    if (!pageTable_.map(asid, va_base, pa, PageSize::Super2MB)) {
        buddy_.free(*frame, kSuperOrder);
        return false;
    }
    setFrames(*frame, kFramesPerSuper, FrameState::Super);
    reverse2m_.emplace(*frame, ReverseEntry{asid, va_base});
    ++superpagesAllocated_;
    return true;
}

void
OsMemoryManager::mapBasePages(Asid asid, Addr va, std::uint64_t count)
{
    for (std::uint64_t i = 0; i < count; ++i) {
        auto frame = buddy_.allocate(0);
        if (!frame)
            SEESAW_FATAL("out of physical memory mapping base pages");
        const Addr page_va = va + i * 4096ULL;
        if (!pageTable_.map(asid, page_va,
                            BuddyAllocator::frameToAddr(*frame),
                            PageSize::Base4KB)) {
            // Already mapped: release the frame and continue.
            buddy_.free(*frame, 0);
            continue;
        }
        frameState_[*frame] = FrameState::Movable4K;
        reverse4k_.emplace(*frame, ReverseEntry{asid, page_va});
    }
}

void
OsMemoryManager::mapAnonymous(Asid asid, Addr va_base,
                              std::uint64_t bytes,
                              double thp_eligible_fraction)
{
    SEESAW_ASSERT(va_base % 4096 == 0, "va_base must be 4KB aligned");
    const std::uint64_t super = pageBytes(PageSize::Super2MB);
    const Addr end = va_base + alignUp(bytes, 4096);

    Addr va = va_base;
    while (va < end) {
        const bool aligned_chunk =
            (va % super == 0) && (va + super <= end);
        if (aligned_chunk && params_.thpEnabled &&
            rng_.chance(thp_eligible_fraction) &&
            tryMapSuperpage(asid, va)) {
            va += super;
            continue;
        }
        // Base-page this 4KB page and move on.
        mapBasePages(asid, va, 1);
        va += 4096;
    }
}

void
OsMemoryManager::unmapRange(Asid asid, Addr va_base, std::uint64_t bytes)
{
    const Addr end = va_base + alignUp(bytes, 4096);
    for (Addr va = alignDown(va_base, 4096); va < end; va += 4096) {
        auto t = pageTable_.translate(asid, va);
        if (!t)
            continue;
        if (t->size == PageSize::Base4KB) {
            pageTable_.unmap(asid, t->vaBase, PageSize::Base4KB);
            const auto frame = BuddyAllocator::addrToFrame(t->paBase);
            reverse4k_.erase(frame);
            frameState_[frame] = FrameState::Free;
            buddy_.free(frame, 0);
        } else if (t->size == PageSize::Super2MB) {
            pageTable_.unmap(asid, t->vaBase, PageSize::Super2MB);
            const auto frame = BuddyAllocator::addrToFrame(t->paBase);
            reverse2m_.erase(frame);
            setFrames(frame, kFramesPerSuper, FrameState::Free);
            buddy_.free(frame, kSuperOrder);
            va = t->vaBase + pageBytes(PageSize::Super2MB) - 4096;
        } else if (t->size == PageSize::Super1GB) {
            pageTable_.unmap(asid, t->vaBase, PageSize::Super1GB);
            const auto frame = BuddyAllocator::addrToFrame(t->paBase);
            reverse1g_.erase(frame);
            setFrames(frame, kFramesPerGiga, FrameState::Free);
            buddy_.free(frame, kGigaOrder);
            va = t->vaBase + pageBytes(PageSize::Super1GB) - 4096;
        }
    }
}

std::vector<PromotionEvent>
OsMemoryManager::runPromotionPass(Asid asid, unsigned max_promotions)
{
    std::vector<PromotionEvent> events;
    const std::uint64_t super = pageBytes(PageSize::Super2MB);

    // Gather candidate regions: 2MB VA regions fully populated with
    // base pages. We scan the reverse map (khugepaged scans VMAs; the
    // effect is the same for anonymous memory).
    std::vector<Addr> candidates;
    {
        // Ordered by VA region so the candidate list — and therefore
        // which regions win when the promotion budget or superpage
        // pool runs out — never depends on hash iteration order.
        std::map<Addr, unsigned> population;
        for (const auto &[frame, rev] : reverse4k_) {
            if (rev.asid == asid)
                ++population[alignDown(rev.vaBase, super)];
        }
        for (const auto &[region, count] : population) {
            if (count == kFramesPerSuper)
                candidates.push_back(region);
        }
    }

    for (Addr region : candidates) {
        if (events.size() >= max_promotions)
            break;
        auto block = allocateSuperBlock();
        if (!block)
            break;

        // Migrate all 512 pages into the fresh block, then swap the
        // mappings: 512 base entries out, one superpage entry in.
        std::vector<std::pair<Addr, Addr>> pages; // (va, old pa)
        pageTable_.forEachBaseMappingIn2MBRegion(
            asid, region,
            [&](Addr va, Addr pa) { pages.emplace_back(va, pa); });
        SEESAW_ASSERT(pages.size() == kFramesPerSuper,
                      "promotion candidate not fully populated");

        PromotionEvent event;
        event.asid = asid;
        event.vaBase = region;
        event.oldPaBases.reserve(pages.size());
        for (const auto &[va, old_pa] : pages)
            event.oldPaBases.push_back(old_pa);

        for (const auto &[va, old_pa] : pages) {
            pageTable_.unmap(asid, va, PageSize::Base4KB);
            const auto old_frame = BuddyAllocator::addrToFrame(old_pa);
            reverse4k_.erase(old_frame);
            frameState_[old_frame] = FrameState::Free;
            buddy_.free(old_frame, 0);
            ++pagesMigrated_;
        }

        const Addr pa = BuddyAllocator::frameToAddr(*block);
        const bool ok =
            pageTable_.map(asid, region, pa, PageSize::Super2MB);
        SEESAW_ASSERT(ok, "superpage map failed during promotion");
        setFrames(*block, kFramesPerSuper, FrameState::Super);
        reverse2m_.emplace(*block, ReverseEntry{asid, region});
        ++promotions_;
        event.newPaBase = pa;
        events.push_back(std::move(event));
    }
    return events;
}

std::optional<SplinterEvent>
OsMemoryManager::splinter(Asid asid, Addr va)
{
    auto t = pageTable_.translate(asid, va);
    if (!t || t->size != PageSize::Super2MB)
        return std::nullopt;

    pageTable_.unmap(asid, t->vaBase, PageSize::Super2MB);
    const auto block = BuddyAllocator::addrToFrame(t->paBase);
    reverse2m_.erase(block);

    // Re-map the same physical frames as 512 independent base pages;
    // no copy happens, the block is simply carved up.
    for (unsigned i = 0; i < kFramesPerSuper; ++i) {
        const Addr page_va = t->vaBase + i * 4096ULL;
        const Addr page_pa = t->paBase + i * 4096ULL;
        const bool ok =
            pageTable_.map(asid, page_va, page_pa, PageSize::Base4KB);
        SEESAW_ASSERT(ok, "base map failed during splinter");
        frameState_[block + i] = FrameState::Movable4K;
        reverse4k_.emplace(block + i, ReverseEntry{asid, page_va});
    }
    ++splinters_;
    return SplinterEvent{asid, t->vaBase};
}

bool
OsMemoryManager::mapOneGbPage(Asid asid, Addr va_base)
{
    SEESAW_ASSERT(va_base % pageBytes(PageSize::Super1GB) == 0,
                  "1GB mapping must be 1GB aligned");
    auto frame = buddy_.allocate(kGigaOrder);
    if (!frame)
        return false;
    const Addr pa = BuddyAllocator::frameToAddr(*frame);
    if (!pageTable_.map(asid, va_base, pa, PageSize::Super1GB)) {
        buddy_.free(*frame, kGigaOrder);
        return false;
    }
    setFrames(*frame, kFramesPerGiga, FrameState::Super);
    reverse1g_.emplace(*frame, ReverseEntry{asid, va_base});
    ++superpagesAllocated_;
    return true;
}

std::optional<std::uint64_t>
OsMemoryManager::allocateRawFrame(bool movable)
{
    auto frame = buddy_.allocate(0);
    if (!frame)
        return std::nullopt;
    frameState_[*frame] =
        movable ? FrameState::RawMovable : FrameState::Unmovable;
    return frame;
}

void
OsMemoryManager::freeRawFrame(std::uint64_t frame)
{
    SEESAW_ASSERT(frameState_[frame] == FrameState::RawMovable ||
                      frameState_[frame] == FrameState::Unmovable,
                  "freeRawFrame on a non-raw frame");
    frameState_[frame] = FrameState::Free;
    buddy_.free(frame, 0);
}

void
OsMemoryManager::pinRawFrame(std::uint64_t frame)
{
    SEESAW_ASSERT(frameState_[frame] == FrameState::RawMovable,
                  "pinRawFrame on a non-raw-movable frame");
    frameState_[frame] = FrameState::Unmovable;
}

std::vector<Addr>
OsMemoryManager::superpageVas(Asid asid) const
{
    std::vector<Addr> vas;
    for (const auto &[frame, rev] : reverse2m_) {
        if (rev.asid == asid)
            vas.push_back(rev.vaBase);
    }
    std::sort(vas.begin(), vas.end());
    return vas;
}

double
OsMemoryManager::superpageCoverage(Asid asid) const
{
    const auto total = pageTable_.mappedBytes(asid);
    if (total == 0)
        return 0.0;
    const auto super =
        pageTable_.mappedBytes(asid, PageSize::Super2MB) +
        pageTable_.mappedBytes(asid, PageSize::Super1GB);
    return static_cast<double>(super) / static_cast<double>(total);
}

} // namespace seesaw
