#include "harness/campaign.hh"

#include <set>
#include <type_traits>

#include "common/logging.hh"
#include "sim/experiment.hh"

namespace seesaw::harness {

namespace {

/** Incremental FNV-1a over the raw bytes of trivially-copyable data. */
class Fnv1a
{
  public:
    template <typename T>
    void mix(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto *bytes = reinterpret_cast<const unsigned char *>(
            &value);
        for (std::size_t i = 0; i < sizeof(T); ++i) {
            hash_ ^= bytes[i];
            hash_ *= 0x100000001b3ULL;
        }
    }

    void mix(const std::string &value)
    {
        for (const char c : value)
            mix(c);
        mix(value.size());
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

} // namespace

std::uint64_t
configHash(const SystemConfig &config)
{
    Fnv1a h;
    h.mix(config.coreKind);
    h.mix(config.l1Kind);
    h.mix(config.l1SizeBytes);
    h.mix(config.l1Assoc);
    h.mix(config.partitionWays);
    h.mix(config.freqGhz);
    h.mix(config.policy);
    h.mix(config.tftEntries);
    h.mix(config.tftAssoc);
    h.mix(config.unifiedL1Tlb);
    h.mix(config.unifiedL1TlbEntries);
    h.mix(config.replacement.kind);
    h.mix(config.replacement.rripBits);
    h.mix(config.replacement.seed);
    h.mix(config.prefetch.kind);
    h.mix(config.prefetch.degree);
    h.mix(config.prefetch.tableEntries);
    h.mix(config.piptTlbCycles);
    h.mix(config.siptAssoc);
    h.mix(config.os.memBytes);
    h.mix(config.os.thpEnabled);
    h.mix(config.os.kernelReservedFraction);
    h.mix(config.os.pollutedRegionFraction);
    h.mix(config.os.compactionCandidates);
    h.mix(config.os.compactionBudgetPages);
    h.mix(config.os.compactionMaxAttempts);
    h.mix(config.os.seed);
    h.mix(config.memhog.churn);
    h.mix(config.memhog.pinnedProbability);
    h.mix(config.memhog.meanFreeRunLength);
    h.mix(config.memhog.seed);
    h.mix(config.memhogFraction);
    h.mix(config.outer.l2SizeBytes);
    h.mix(config.outer.l2Assoc);
    h.mix(config.outer.l2LatencyNs);
    h.mix(config.outer.llcSizeBytes);
    h.mix(config.outer.llcAssoc);
    h.mix(config.outer.llcLatencyNs);
    h.mix(config.outer.dramLatencyNs);
    h.mix(config.cores);
    h.mix(config.fabric);
    h.mix(config.instructions);
    h.mix(config.warmupInstructions);
    h.mix(config.seed);
    h.mix(config.schedulerCounterPolicy);
    h.mix(config.contextSwitchInterval);
    h.mix(config.promotionInterval);
    h.mix(config.splinterInterval);
    h.mix(config.shootdownCycles);
    h.mix(config.modelInstructionCache);
    h.mix(config.icacheKind);
    h.mix(config.codeThpEligibleFraction);
    h.mix(config.useOneGbHeap);
    h.mix(config.tracePath);
    h.mix(config.audit.mode);
    h.mix(config.audit.periodEvents);
    return h.value();
}

CampaignSpec::CampaignSpec(std::string name) : name_(std::move(name))
{
    SEESAW_ASSERT(!name_.empty(), "campaign needs a name");
}

CampaignSpec &
CampaignSpec::workload(const WorkloadSpec &w)
{
    workloads_.push_back(w);
    return *this;
}

CampaignSpec &
CampaignSpec::workloads(const std::vector<WorkloadSpec> &ws)
{
    workloads_.insert(workloads_.end(), ws.begin(), ws.end());
    return *this;
}

CampaignSpec &
CampaignSpec::variant(std::string label, SystemConfig config)
{
    SEESAW_ASSERT(!label.empty(), "variant needs a label");
    variants_.emplace_back(std::move(label), std::move(config));
    return *this;
}

CampaignSpec &
CampaignSpec::seeds(std::vector<std::uint64_t> seeds)
{
    SEESAW_ASSERT(!seeds.empty(), "campaign needs at least one seed");
    seeds_ = std::move(seeds);
    return *this;
}

CampaignSpec &
CampaignSpec::cell(std::string name, std::function<RunResult()> run,
                   std::uint64_t seed, std::uint64_t config_hash,
                   std::string workload)
{
    SEESAW_ASSERT(run, "explicit cell needs a runner");
    Cell c;
    c.name = std::move(name);
    c.workload = std::move(workload);
    c.seed = seed;
    c.configHash = config_hash;
    c.run = std::move(run);
    explicit_.push_back(std::move(c));
    return *this;
}

CampaignSpec &
CampaignSpec::cell(std::string name, const WorkloadSpec &workload,
                   const SystemConfig &config)
{
    Cell c;
    c.name = std::move(name);
    c.workload = workload.name;
    c.seed = config.seed;
    c.configHash = configHash(config);
    c.onePass = std::make_shared<const Cell::OnePassInfo>(
        Cell::OnePassInfo{workload, config});
    c.run = [workload, config] { return simulate(workload, config); };
    explicit_.push_back(std::move(c));
    return *this;
}

std::vector<Cell>
CampaignSpec::cells() const
{
    std::vector<Cell> out;
    out.reserve(workloads_.size() * variants_.size() * seeds_.size() +
                explicit_.size());
    for (const auto &w : workloads_) {
        for (const auto &[label, config] : variants_) {
            for (const std::uint64_t seed : seeds_) {
                Cell c;
                c.name = w.name + "/" + label;
                if (seeds_.size() > 1)
                    c.name += "/s" + std::to_string(seed);
                c.workload = w.name;
                c.seed = seed;
                SystemConfig seeded = config;
                seeded.seed = seed;
                c.configHash = configHash(seeded);
                c.onePass = std::make_shared<const Cell::OnePassInfo>(
                    Cell::OnePassInfo{w, seeded});
                c.run = [w, seeded] { return simulate(w, seeded); };
                out.push_back(std::move(c));
            }
        }
    }
    out.insert(out.end(), explicit_.begin(), explicit_.end());

    std::set<std::string> names;
    for (const auto &c : out) {
        if (!names.insert(c.name).second)
            SEESAW_FATAL("duplicate cell name in campaign ", name_,
                         ": ", c.name);
    }
    return out;
}

} // namespace seesaw::harness
