#include "harness/json.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace seesaw::harness {

JsonWriter::JsonWriter(std::ostream &os) : os_(os) {}

JsonWriter::~JsonWriter()
{
    // A throwing cell can unwind through a writer; only enforce
    // completeness on the happy path.
    if (!std::uncaught_exceptions())
        SEESAW_ASSERT(stack_.empty() && !pendingKey_,
                      "JSON document left unfinished");
}

void
JsonWriter::beforeValue()
{
    SEESAW_ASSERT(!done_, "JSON document already complete");
    if (!stack_.empty() && stack_.back() == Scope::Object) {
        SEESAW_ASSERT(pendingKey_, "object member needs a key first");
        pendingKey_ = false;
        return; // key() already handled the comma
    }
    if (needComma_)
        os_ << ',';
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    os_ << '{';
    stack_.push_back(Scope::Object);
    needComma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    SEESAW_ASSERT(!stack_.empty() && stack_.back() == Scope::Object &&
                      !pendingKey_,
                  "unbalanced endObject");
    os_ << '}';
    stack_.pop_back();
    needComma_ = true;
    done_ = stack_.empty();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    os_ << '[';
    stack_.push_back(Scope::Array);
    needComma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    SEESAW_ASSERT(!stack_.empty() && stack_.back() == Scope::Array,
                  "unbalanced endArray");
    os_ << ']';
    stack_.pop_back();
    needComma_ = true;
    done_ = stack_.empty();
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    SEESAW_ASSERT(!stack_.empty() && stack_.back() == Scope::Object &&
                      !pendingKey_,
                  "key() outside an object");
    if (needComma_)
        os_ << ',';
    os_ << '"' << escape(k) << "\":";
    pendingKey_ = true;
    needComma_ = false;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    beforeValue();
    os_ << '"' << escape(v) << '"';
    needComma_ = true;
    done_ = stack_.empty();
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    if (!std::isfinite(v))
        return null(); // JSON has no NaN/Inf
    beforeValue();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os_ << buf;
    needComma_ = true;
    done_ = stack_.empty();
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    os_ << v;
    needComma_ = true;
    done_ = stack_.empty();
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    os_ << v;
    needComma_ = true;
    done_ = stack_.empty();
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    os_ << (v ? "true" : "false");
    needComma_ = true;
    done_ = stack_.empty();
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beforeValue();
    os_ << "null";
    needComma_ = true;
    done_ = stack_.empty();
    return *this;
}

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace seesaw::harness
