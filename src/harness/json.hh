/**
 * @file
 * A dependency-free streaming JSON writer: objects, arrays, strings
 * (with full RFC 8259 escaping), integers, doubles and booleans, with
 * automatic comma/nesting management. Enough to serialize campaign
 * results; deliberately not a DOM.
 */

#ifndef SEESAW_HARNESS_JSON_HH
#define SEESAW_HARNESS_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace seesaw::harness {

/**
 * Writes one JSON value (usually a top-level object) to a stream.
 * Calls must form a valid document: begin/end pairs balanced, key()
 * before every value inside an object. Misuse panics.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os);

    /** Destructor asserts the document was completed. */
    ~JsonWriter();

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; the next call must produce its value. */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(unsigned v) { return value(std::uint64_t(v)); }
    JsonWriter &value(int v) { return value(std::int64_t(v)); }
    JsonWriter &value(bool v);
    JsonWriter &null();

    /** Shorthand: key() followed by value(). */
    template <typename T>
    JsonWriter &
    field(std::string_view k, const T &v)
    {
        key(k);
        return value(v);
    }

    /** @return @p s with every character JSON demands escaped. */
    static std::string escape(std::string_view s);

  private:
    enum class Scope : std::uint8_t { Object, Array };

    void beforeValue();

    std::ostream &os_;
    std::vector<Scope> stack_;
    bool needComma_ = false;
    bool pendingKey_ = false;
    bool done_ = false;
};

} // namespace seesaw::harness

#endif // SEESAW_HARNESS_JSON_HH
