#include "harness/thread_pool.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace seesaw::harness {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    SEESAW_ASSERT(task, "cannot submit an empty task");
    {
        MutexLock lock(mutex_);
        queue_.push_back(std::move(task));
    }
    wake_.notify_one();
}

void
ThreadPool::wait()
{
    MutexLock lock(mutex_);
    while (!queue_.empty() || inFlight_ != 0)
        lock.wait(drained_);
    if (firstError_) {
        auto error = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(error);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mutex_);
            while (!stopping_ && queue_.empty())
                lock.wait(wake_);
            // Drain the queue even when stopping: destructor-initiated
            // shutdown still runs everything that was submitted, so an
            // empty queue here means stopping_ — time to exit.
            if (queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
            ++inFlight_;
        }
        std::exception_ptr error;
        try {
            task();
        } catch (...) {
            error = std::current_exception();
        }
        {
            MutexLock lock(mutex_);
            if (error && !firstError_)
                firstError_ = error;
            --inFlight_;
            if (queue_.empty() && inFlight_ == 0)
                drained_.notify_all();
        }
    }
}

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("SEESAW_JOBS"); env && *env) {
        char *end = nullptr;
        const long parsed = std::strtol(env, &end, 10);
        if (end != env && parsed >= 1)
            return static_cast<unsigned>(parsed);
        SEESAW_WARN("ignoring unparsable SEESAW_JOBS=", env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace seesaw::harness
