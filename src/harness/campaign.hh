/**
 * @file
 * Declarative experiment campaigns: a CampaignSpec describes a sweep
 * as the cross-product of workloads × named SystemConfig variants ×
 * seeds, expanded into uniquely-named Cells. Each cell owns everything
 * it needs to run (a fresh SimEngine is constructed inside the cell's
 * thunk), so cells are independent and safe to execute in parallel in
 * any order with bit-identical results.
 */

#ifndef SEESAW_HARNESS_CAMPAIGN_HH
#define SEESAW_HARNESS_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/sim_engine.hh"
#include "workload/workload_spec.hh"

namespace seesaw::harness {

/** One runnable unit of a campaign. */
struct Cell
{
    std::string name;     //!< unique within the campaign
    std::string workload; //!< workload name, known before running
    std::uint64_t seed = 0;
    std::uint64_t configHash = 0;

    /** Runs the cell; must be self-contained (no shared mutable
     *  state) so cells can execute concurrently. */
    std::function<RunResult()> run;

    /**
     * Present when the cell is a plain simulate(workload, config):
     * the inputs the one-pass grouping layer needs to batch compatible
     * cells into a single MultiConfigEngine trace pass
     * (RunnerOptions::onePass). Cells without it always execute their
     * own thunk. Results are bit-identical either way, so names,
     * hashes, sinks and store keys never see the difference.
     */
    struct OnePassInfo
    {
        WorkloadSpec workload;
        SystemConfig config;
    };
    std::shared_ptr<const OnePassInfo> onePass;
};

/** A cell's outcome plus scheduling metadata. */
struct CellResult
{
    std::string name;
    std::string workload;
    std::uint64_t seed = 0;
    std::uint64_t configHash = 0;
    double wallSeconds = 0.0;
    RunResult result;
};

/**
 * Stable 64-bit FNV-1a hash over every SystemConfig field, recorded
 * with each result so archived campaigns can be matched to the exact
 * configuration that produced them.
 */
std::uint64_t configHash(const SystemConfig &config);

/**
 * Builder for a sweep. Axes (workloads, variants, seeds) expand as a
 * cross-product via cells(); custom cells (e.g. hand-built multi-core runs)
 * can be added explicitly and are appended after the cross-product in
 * insertion order.
 *
 *   CampaignSpec spec("fig07");
 *   spec.workloads(paperWorkloads())
 *       .variant("32KB/vipt", vipt32)
 *       .variant("32KB/seesaw", seesaw32)
 *       .seeds({1});
 *   for (Cell &cell : spec.cells()) ...
 *
 * Cross-product cells are named "<workload>/<variant>" (plus "/s<seed>"
 * when more than one seed is swept) and run simulate() on a copy of the
 * variant's config with the cell's seed applied.
 */
class CampaignSpec
{
  public:
    explicit CampaignSpec(std::string name);

    /** @name Sweep axes. */
    /// @{
    CampaignSpec &workload(const WorkloadSpec &w);
    CampaignSpec &workloads(const std::vector<WorkloadSpec> &ws);
    CampaignSpec &variant(std::string label, SystemConfig config);
    CampaignSpec &seeds(std::vector<std::uint64_t> seeds);
    /// @}

    /** Add an explicit cell with a custom runner thunk. */
    CampaignSpec &cell(std::string name, std::function<RunResult()> run,
                       std::uint64_t seed = 0,
                       std::uint64_t config_hash = 0,
                       std::string workload = {});

    /** Add an explicit simulate(@p workload, @p config) cell, eligible
     *  for one-pass grouping (@p config.seed doubles as the cell
     *  seed and the hash is computed here). */
    CampaignSpec &cell(std::string name, const WorkloadSpec &workload,
                       const SystemConfig &config);

    /** Expand the axes (then append explicit cells). Names are
     *  guaranteed unique (fatal otherwise). */
    std::vector<Cell> cells() const;

    const std::string &name() const { return name_; }

    std::size_t variantCount() const { return variants_.size(); }
    std::size_t workloadCount() const { return workloads_.size(); }

  private:
    std::string name_;
    std::vector<WorkloadSpec> workloads_;
    std::vector<std::pair<std::string, SystemConfig>> variants_;
    std::vector<std::uint64_t> seeds_{1};
    std::vector<Cell> explicit_;
};

} // namespace seesaw::harness

#endif // SEESAW_HARNESS_CAMPAIGN_HH
