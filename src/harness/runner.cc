#include "harness/runner.hh"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <map>
#include <sstream>

#include "common/logging.hh"
#include "common/thread_annotations.hh"
#include "harness/thread_pool.hh"
#include "sim/multi_config_engine.hh"

namespace seesaw::harness {

namespace {

using Clock = std::chrono::steady_clock;

std::atomic<bool> g_stopRequested{false};

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Serialized progress reporting shared by all workers. */
class Progress
{
  public:
    Progress(const std::string &campaign, std::size_t total,
             bool enabled)
        : campaign_(campaign), total_(total), enabled_(enabled),
          start_(Clock::now())
    {
    }

    void
    cellDone(const std::string &name, double cell_seconds)
        SEESAW_EXCLUDES(mutex_)
    {
        const std::size_t done = ++done_;
        if (!enabled_)
            return;
        const double elapsed = secondsSince(start_);
        const double eta =
            done ? elapsed / done * (total_ - done) : 0.0;
        MutexLock lock(mutex_);
        std::fprintf(stderr,
                     "[%s] %zu/%zu %s (%.2fs) elapsed %.1fs eta %.1fs\n",
                     campaign_.c_str(), done, total_, name.c_str(),
                     cell_seconds, elapsed, eta);
    }

  private:
    const std::string &campaign_;
    const std::size_t total_;
    const bool enabled_;
    const Clock::time_point start_;
    std::atomic<std::size_t> done_{0};
    AnnotatedMutex mutex_; //!< keeps stderr lines whole across workers
};

/** Per-run shared state for the completion callback. */
struct CellHooks
{
    const std::function<void(const CellResult &)> *const onCellDone;
    AnnotatedMutex mutex; //!< serializes the callback across workers
};

CellResult
runCell(const Cell &cell, Progress &progress, CellHooks &hooks)
{
    CellResult out;
    out.name = cell.name;
    out.workload = cell.workload;
    out.seed = cell.seed;
    out.configHash = cell.configHash;
    const auto start = Clock::now();
    out.result = cell.run();
    out.wallSeconds = secondsSince(start);
    if (out.workload.empty())
        out.workload = out.result.workload;
    progress.cellDone(cell.name, out.wallSeconds);
    if (hooks.onCellDone != nullptr && *hooks.onCellDone) {
        MutexLock lock(hooks.mutex);
        (*hooks.onCellDone)(out);
    }
    return out;
}

/**
 * Canonical serialization of a WorkloadSpec. One-pass groups must
 * share the exact spec, not just its name: benches override footprints
 * and fractions under the same workload name. hexfloat keeps doubles
 * exact.
 */
std::string
workloadKey(const WorkloadSpec &w)
{
    std::ostringstream os;
    os << std::hexfloat << w.name << '|' << w.footprintBytes << '|'
       << w.memRefFraction << '|' << w.writeFraction << '|'
       << w.repeatFraction << '|' << w.streamingFraction << '|'
       << w.pointerChaseFraction << '|' << w.conflictFraction << '|'
       << w.chaseRegionStayRefs << '|' << w.chasePoolRegions << '|'
       << w.zipfAlpha << '|' << w.hotSetBytes << '|' << w.threads
       << '|' << w.sharedFraction << '|' << w.thpEligibleFraction
       << '|' << w.systemProbesPerKiloInstr << '|'
       << w.codeFootprintBytes;
    return os.str();
}

/**
 * Execution plan: normally one task per cell; with one-pass grouping,
 * simulate() cells that share (workload, front-end key) collapse into
 * one multi-config task each, in first-member order. Custom-thunk
 * cells always stay singletons.
 */
std::vector<std::vector<std::size_t>>
planTasks(const std::vector<Cell> &cells, bool one_pass)
{
    std::vector<std::vector<std::size_t>> tasks;
    tasks.reserve(cells.size());
    if (!one_pass) {
        for (std::size_t i = 0; i < cells.size(); ++i)
            tasks.push_back({i});
        return tasks;
    }
    std::map<std::string, std::size_t> group_of;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (!cells[i].onePass) {
            tasks.push_back({i});
            continue;
        }
        std::string key =
            workloadKey(cells[i].onePass->workload);
        key += '\x1f';
        key += MultiConfigEngine::frontEndKey(cells[i].onePass->config);
        const auto [it, fresh] =
            group_of.try_emplace(std::move(key), tasks.size());
        if (fresh)
            tasks.push_back({i});
        else
            tasks[it->second].push_back(i);
    }
    return tasks;
}

/** Run one task — a lone cell via its thunk, or a >= 2-member group
 *  as a single MultiConfigEngine pass whose results land in the
 *  members' own slots. */
void
runTask(const std::vector<Cell> &cells,
        const std::vector<std::size_t> &members,
        std::vector<CellResult> &slots, std::vector<char> &ran,
        Progress &progress, CellHooks &hooks)
{
    if (members.size() == 1) {
        slots[members[0]] = runCell(cells[members[0]], progress, hooks);
        ran[members[0]] = 1;
        return;
    }
    std::vector<SystemConfig> configs;
    configs.reserve(members.size());
    for (const std::size_t i : members)
        configs.push_back(cells[i].onePass->config);
    const auto start = Clock::now();
    MultiConfigEngine engine(std::move(configs),
                             cells[members[0]].onePass->workload);
    std::vector<RunResult> results = engine.run();
    // One pass produced every member's result; report the shared wall
    // time as an even split so per-cell accounting stays meaningful.
    const double wall = secondsSince(start) / members.size();
    for (std::size_t k = 0; k < members.size(); ++k) {
        const Cell &cell = cells[members[k]];
        CellResult out;
        out.name = cell.name;
        out.workload = cell.workload;
        out.seed = cell.seed;
        out.configHash = cell.configHash;
        out.result = std::move(results[k]);
        out.wallSeconds = wall;
        if (out.workload.empty())
            out.workload = out.result.workload;
        progress.cellDone(cell.name, wall);
        if (hooks.onCellDone != nullptr && *hooks.onCellDone) {
            MutexLock lock(hooks.mutex);
            (*hooks.onCellDone)(out);
        }
        slots[members[k]] = std::move(out);
        ran[members[k]] = 1;
    }
}

} // namespace

void
requestStop()
{
    g_stopRequested.store(true, std::memory_order_relaxed);
}

bool
stopRequested()
{
    return g_stopRequested.load(std::memory_order_relaxed);
}

void
clearStopRequest()
{
    g_stopRequested.store(false, std::memory_order_relaxed);
}

void
installStopSignalHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = [](int) { requestStop(); };
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // no SA_RESTART: let waitpid/sleep see EINTR
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

CampaignRunner::CampaignRunner(RunnerOptions options)
    : options_(std::move(options))
{
}

unsigned
CampaignRunner::effectiveJobs() const
{
    return options_.jobs ? options_.jobs : defaultJobs();
}

CampaignOutcome
CampaignRunner::run(const CampaignSpec &spec) const
{
    return runCells(spec.name(), spec.cells());
}

CampaignOutcome
CampaignRunner::runCells(const std::string &name,
                         const std::vector<Cell> &cells) const
{
    const unsigned jobs = effectiveJobs();

    CampaignOutcome outcome;
    outcome.meta.campaign = name;
    outcome.meta.gitDescribe = gitDescribe();
    outcome.meta.jobs = jobs;
    outcome.totalCells = cells.size();

    std::vector<CellResult> slots(cells.size());
    std::vector<char> ran(cells.size(), 0);

    const auto start = Clock::now();
    Progress progress(name, cells.size(), options_.progress);
    CellHooks hooks{&options_.onCellDone, {}};

    const std::vector<std::vector<std::size_t>> tasks =
        planTasks(cells, options_.onePass);

    if (jobs <= 1 || tasks.size() <= 1) {
        for (const auto &members : tasks) {
            if (stopRequested())
                break;
            runTask(cells, members, slots, ran, progress, hooks);
        }
    } else {
        ThreadPool pool(jobs);
        // Each task writes only its own pre-sized slots, so result
        // order is the cell order no matter who finishes when. A
        // stop request makes not-yet-started tasks no-ops while
        // in-flight cells (or one-pass groups) run to completion.
        for (std::size_t t = 0; t < tasks.size(); ++t) {
            pool.submit([&, t] {
                if (stopRequested())
                    return;
                runTask(cells, tasks[t], slots, ran, progress, hooks);
            });
        }
        pool.wait();
    }

    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (ran[i])
            outcome.results.push_back(std::move(slots[i]));
    }
    outcome.interrupted = outcome.results.size() < cells.size();
    outcome.meta.wallSeconds = secondsSince(start);
    return outcome;
}

CampaignOutcome
CampaignRunner::runAndWrite(const CampaignSpec &spec,
                            std::string dir) const
{
    CampaignOutcome outcome = run(spec);
    const auto paths =
        writeCampaignSinks(outcome.meta, outcome.results,
                           std::move(dir));
    if (options_.progress) {
        for (const auto &path : paths)
            std::fprintf(stderr, "[%s] wrote %s\n",
                         spec.name().c_str(), path.c_str());
    }
    if (outcome.interrupted) {
        std::fprintf(stderr,
                     "[%s] interrupted after %zu/%zu cells; partial "
                     "sinks flushed (a store-backed campaign is "
                     "resumable with --store DIR --resume)\n",
                     spec.name().c_str(), outcome.results.size(),
                     outcome.totalCells);
    }
    return outcome;
}

const RunResult &
findResult(const std::vector<CellResult> &results,
           const std::string &name)
{
    for (const auto &cell : results) {
        if (cell.name == name)
            return cell.result;
    }
    SEESAW_FATAL("no campaign cell named ", name);
}

} // namespace seesaw::harness
