#include "harness/runner.hh"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>

#include "common/logging.hh"
#include "common/thread_annotations.hh"
#include "harness/thread_pool.hh"

namespace seesaw::harness {

namespace {

using Clock = std::chrono::steady_clock;

std::atomic<bool> g_stopRequested{false};

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Serialized progress reporting shared by all workers. */
class Progress
{
  public:
    Progress(const std::string &campaign, std::size_t total,
             bool enabled)
        : campaign_(campaign), total_(total), enabled_(enabled),
          start_(Clock::now())
    {
    }

    void
    cellDone(const std::string &name, double cell_seconds)
        SEESAW_EXCLUDES(mutex_)
    {
        const std::size_t done = ++done_;
        if (!enabled_)
            return;
        const double elapsed = secondsSince(start_);
        const double eta =
            done ? elapsed / done * (total_ - done) : 0.0;
        MutexLock lock(mutex_);
        std::fprintf(stderr,
                     "[%s] %zu/%zu %s (%.2fs) elapsed %.1fs eta %.1fs\n",
                     campaign_.c_str(), done, total_, name.c_str(),
                     cell_seconds, elapsed, eta);
    }

  private:
    const std::string &campaign_;
    const std::size_t total_;
    const bool enabled_;
    const Clock::time_point start_;
    std::atomic<std::size_t> done_{0};
    AnnotatedMutex mutex_; //!< keeps stderr lines whole across workers
};

/** Per-run shared state for the completion callback. */
struct CellHooks
{
    const std::function<void(const CellResult &)> *const onCellDone;
    AnnotatedMutex mutex; //!< serializes the callback across workers
};

CellResult
runCell(const Cell &cell, Progress &progress, CellHooks &hooks)
{
    CellResult out;
    out.name = cell.name;
    out.workload = cell.workload;
    out.seed = cell.seed;
    out.configHash = cell.configHash;
    const auto start = Clock::now();
    out.result = cell.run();
    out.wallSeconds = secondsSince(start);
    if (out.workload.empty())
        out.workload = out.result.workload;
    progress.cellDone(cell.name, out.wallSeconds);
    if (hooks.onCellDone != nullptr && *hooks.onCellDone) {
        MutexLock lock(hooks.mutex);
        (*hooks.onCellDone)(out);
    }
    return out;
}

} // namespace

void
requestStop()
{
    g_stopRequested.store(true, std::memory_order_relaxed);
}

bool
stopRequested()
{
    return g_stopRequested.load(std::memory_order_relaxed);
}

void
clearStopRequest()
{
    g_stopRequested.store(false, std::memory_order_relaxed);
}

void
installStopSignalHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = [](int) { requestStop(); };
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // no SA_RESTART: let waitpid/sleep see EINTR
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

CampaignRunner::CampaignRunner(RunnerOptions options)
    : options_(std::move(options))
{
}

unsigned
CampaignRunner::effectiveJobs() const
{
    return options_.jobs ? options_.jobs : defaultJobs();
}

CampaignOutcome
CampaignRunner::run(const CampaignSpec &spec) const
{
    return runCells(spec.name(), spec.cells());
}

CampaignOutcome
CampaignRunner::runCells(const std::string &name,
                         const std::vector<Cell> &cells) const
{
    const unsigned jobs = effectiveJobs();

    CampaignOutcome outcome;
    outcome.meta.campaign = name;
    outcome.meta.gitDescribe = gitDescribe();
    outcome.meta.jobs = jobs;
    outcome.totalCells = cells.size();

    std::vector<CellResult> slots(cells.size());
    std::vector<char> ran(cells.size(), 0);

    const auto start = Clock::now();
    Progress progress(name, cells.size(), options_.progress);
    CellHooks hooks{&options_.onCellDone, {}};

    if (jobs <= 1 || cells.size() <= 1) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (stopRequested())
                break;
            slots[i] = runCell(cells[i], progress, hooks);
            ran[i] = 1;
        }
    } else {
        ThreadPool pool(jobs);
        // Each task writes only its own pre-sized slot, so result
        // order is the cell order no matter who finishes when. A
        // stop request makes not-yet-started tasks no-ops while
        // in-flight cells run to completion.
        for (std::size_t i = 0; i < cells.size(); ++i) {
            pool.submit([&, i] {
                if (stopRequested())
                    return;
                slots[i] = runCell(cells[i], progress, hooks);
                ran[i] = 1;
            });
        }
        pool.wait();
    }

    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (ran[i])
            outcome.results.push_back(std::move(slots[i]));
    }
    outcome.interrupted = outcome.results.size() < cells.size();
    outcome.meta.wallSeconds = secondsSince(start);
    return outcome;
}

CampaignOutcome
CampaignRunner::runAndWrite(const CampaignSpec &spec,
                            std::string dir) const
{
    CampaignOutcome outcome = run(spec);
    const auto paths =
        writeCampaignSinks(outcome.meta, outcome.results,
                           std::move(dir));
    if (options_.progress) {
        for (const auto &path : paths)
            std::fprintf(stderr, "[%s] wrote %s\n",
                         spec.name().c_str(), path.c_str());
    }
    if (outcome.interrupted) {
        std::fprintf(stderr,
                     "[%s] interrupted after %zu/%zu cells; partial "
                     "sinks flushed (a store-backed campaign is "
                     "resumable with --store DIR --resume)\n",
                     spec.name().c_str(), outcome.results.size(),
                     outcome.totalCells);
    }
    return outcome;
}

const RunResult &
findResult(const std::vector<CellResult> &results,
           const std::string &name)
{
    for (const auto &cell : results) {
        if (cell.name == name)
            return cell.result;
    }
    SEESAW_FATAL("no campaign cell named ", name);
}

} // namespace seesaw::harness
