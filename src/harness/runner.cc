#include "harness/runner.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "common/logging.hh"
#include "harness/thread_pool.hh"

namespace seesaw::harness {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Serialized progress reporting shared by all workers. */
class Progress
{
  public:
    Progress(const std::string &campaign, std::size_t total,
             bool enabled)
        : campaign_(campaign), total_(total), enabled_(enabled),
          start_(Clock::now())
    {
    }

    void
    cellDone(const std::string &name, double cell_seconds)
    {
        const std::size_t done = ++done_;
        if (!enabled_)
            return;
        const double elapsed = secondsSince(start_);
        const double eta =
            done ? elapsed / done * (total_ - done) : 0.0;
        std::lock_guard lock(mutex_);
        std::fprintf(stderr,
                     "[%s] %zu/%zu %s (%.2fs) elapsed %.1fs eta %.1fs\n",
                     campaign_.c_str(), done, total_, name.c_str(),
                     cell_seconds, elapsed, eta);
    }

  private:
    const std::string &campaign_;
    const std::size_t total_;
    const bool enabled_;
    const Clock::time_point start_;
    std::atomic<std::size_t> done_{0};
    std::mutex mutex_; //!< keeps stderr lines whole across workers
};

CellResult
runCell(const Cell &cell, Progress &progress)
{
    CellResult out;
    out.name = cell.name;
    out.seed = cell.seed;
    out.configHash = cell.configHash;
    const auto start = Clock::now();
    out.result = cell.run();
    out.wallSeconds = secondsSince(start);
    progress.cellDone(cell.name, out.wallSeconds);
    return out;
}

} // namespace

CampaignRunner::CampaignRunner(RunnerOptions options)
    : options_(options)
{
}

unsigned
CampaignRunner::effectiveJobs() const
{
    return options_.jobs ? options_.jobs : defaultJobs();
}

CampaignOutcome
CampaignRunner::run(const CampaignSpec &spec) const
{
    const std::vector<Cell> cells = spec.cells();
    const unsigned jobs = effectiveJobs();

    CampaignOutcome outcome;
    outcome.meta.campaign = spec.name();
    outcome.meta.gitDescribe = gitDescribe();
    outcome.meta.jobs = jobs;
    outcome.results.resize(cells.size());

    const auto start = Clock::now();
    Progress progress(spec.name(), cells.size(), options_.progress);

    if (jobs <= 1 || cells.size() <= 1) {
        for (std::size_t i = 0; i < cells.size(); ++i)
            outcome.results[i] = runCell(cells[i], progress);
    } else {
        ThreadPool pool(jobs);
        // Each task writes only its own pre-sized slot, so result
        // order is the cell order no matter who finishes when.
        for (std::size_t i = 0; i < cells.size(); ++i) {
            pool.submit([&, i] {
                outcome.results[i] = runCell(cells[i], progress);
            });
        }
        pool.wait();
    }

    outcome.meta.wallSeconds = secondsSince(start);
    return outcome;
}

CampaignOutcome
CampaignRunner::runAndWrite(const CampaignSpec &spec,
                            std::string dir) const
{
    CampaignOutcome outcome = run(spec);
    const auto paths =
        writeCampaignSinks(outcome.meta, outcome.results,
                           std::move(dir));
    if (options_.progress) {
        for (const auto &path : paths)
            std::fprintf(stderr, "[%s] wrote %s\n",
                         spec.name().c_str(), path.c_str());
    }
    return outcome;
}

const RunResult &
findResult(const std::vector<CellResult> &results,
           const std::string &name)
{
    for (const auto &cell : results) {
        if (cell.name == name)
            return cell.result;
    }
    SEESAW_FATAL("no campaign cell named ", name);
}

} // namespace seesaw::harness
