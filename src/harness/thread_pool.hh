/**
 * @file
 * A fixed-size worker pool over a shared task queue, used by the
 * campaign runner to execute simulation cells in parallel.
 *
 * Tasks are plain callables; the first exception any task throws is
 * captured and rethrown from wait(), so campaign-level failures
 * (SEESAW_FATAL aside, which exits) surface on the submitting thread.
 *
 * Locking: all shared state is guarded by mutex_ and annotated for
 * Clang Thread Safety Analysis (see common/thread_annotations.hh);
 * tasks always execute with the mutex released.
 */

#ifndef SEESAW_HARNESS_THREAD_POOL_HH
#define SEESAW_HARNESS_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"

namespace seesaw::harness {

/**
 * A queue-based thread pool. Construct with a worker count, submit()
 * tasks, then wait() for the queue to drain (or let the destructor
 * do so). The destructor joins every worker, so shutdown is safe even
 * with tasks still queued — they all run first.
 */
class ThreadPool
{
  public:
    /** @param threads Worker count; 0 is clamped to 1. */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task for execution on some worker. */
    void submit(std::function<void()> task) SEESAW_EXCLUDES(mutex_);

    /**
     * Block until every submitted task has finished, then rethrow the
     * first exception any task raised (if any). The pool stays usable
     * for further submit() calls afterwards.
     */
    void wait() SEESAW_EXCLUDES(mutex_);

    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    void workerLoop() SEESAW_EXCLUDES(mutex_);

    AnnotatedMutex mutex_;
    std::condition_variable wake_;   //!< workers: queue non-empty / stop
    std::condition_variable drained_; //!< waiters: all work finished
    std::deque<std::function<void()>> queue_ SEESAW_GUARDED_BY(mutex_);
    /** Tasks popped but not yet finished. */
    std::size_t inFlight_ SEESAW_GUARDED_BY(mutex_) = 0;
    bool stopping_ SEESAW_GUARDED_BY(mutex_) = false;
    std::exception_ptr firstError_ SEESAW_GUARDED_BY(mutex_);
    std::vector<std::thread> workers_; //!< written only in ctor/dtor
};

/**
 * Worker count for parallel campaigns: the SEESAW_JOBS environment
 * variable when set (>= 1), otherwise std::thread::hardware_concurrency
 * (itself clamped to >= 1).
 */
unsigned defaultJobs();

} // namespace seesaw::harness

#endif // SEESAW_HARNESS_THREAD_POOL_HH
