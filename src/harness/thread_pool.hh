/**
 * @file
 * A fixed-size worker pool over a shared task queue, used by the
 * campaign runner to execute simulation cells in parallel.
 *
 * Tasks are plain callables; the first exception any task throws is
 * captured and rethrown from wait(), so campaign-level failures
 * (SEESAW_FATAL aside, which exits) surface on the submitting thread.
 */

#ifndef SEESAW_HARNESS_THREAD_POOL_HH
#define SEESAW_HARNESS_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace seesaw::harness {

/**
 * A queue-based thread pool. Construct with a worker count, submit()
 * tasks, then wait() for the queue to drain (or let the destructor
 * do so). The destructor joins every worker, so shutdown is safe even
 * with tasks still queued — they all run first.
 */
class ThreadPool
{
  public:
    /** @param threads Worker count; 0 is clamped to 1. */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task for execution on some worker. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished, then rethrow the
     * first exception any task raised (if any). The pool stays usable
     * for further submit() calls afterwards.
     */
    void wait();

    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable wake_;   //!< workers: queue non-empty / stop
    std::condition_variable drained_; //!< waiters: all work finished
    std::deque<std::function<void()>> queue_;
    std::size_t inFlight_ = 0; //!< tasks popped but not yet finished
    bool stopping_ = false;
    std::exception_ptr firstError_;
    std::vector<std::thread> workers_;
};

/**
 * Worker count for parallel campaigns: the SEESAW_JOBS environment
 * variable when set (>= 1), otherwise std::thread::hardware_concurrency
 * (itself clamped to >= 1).
 */
unsigned defaultJobs();

} // namespace seesaw::harness

#endif // SEESAW_HARNESS_THREAD_POOL_HH
