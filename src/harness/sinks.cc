#include "harness/sinks.hh"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/logging.hh"
#include "harness/json.hh"

namespace seesaw::harness {

namespace {

MutableResultField
fieldU(const char *name, std::uint64_t &v)
{
    return MutableResultField{name, true, &v, nullptr};
}

MutableResultField
fieldD(const char *name, double &v)
{
    return MutableResultField{name, false, nullptr, &v};
}

/** Hex-format a config hash the way both sinks record it. */
std::string
hashString(std::uint64_t hash)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, hash);
    return buf;
}

/** CSV-quote @p s when it contains a delimiter, quote or newline. */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::vector<MutableResultField>
mutableResultFields(RunResult &r)
{
    return {
        fieldU("instructions", r.instructions),
        fieldU("cycles", r.cycles),
        fieldD("ipc", r.ipc),
        fieldD("runtime_ns", r.runtimeNs),
        fieldU("l1_accesses", r.l1Accesses),
        fieldU("l1_hits", r.l1Hits),
        fieldU("l1_misses", r.l1Misses),
        fieldD("l1_mpki", r.l1Mpki),
        fieldU("fast_hits", r.fastHits),
        fieldU("l2_accesses", r.l2Accesses),
        fieldU("l2_hits", r.l2Hits),
        fieldU("llc_accesses", r.llcAccesses),
        fieldU("llc_hits", r.llcHits),
        fieldU("dram_accesses", r.dramAccesses),
        fieldU("tft_lookups", r.tftLookups),
        fieldU("tft_hits", r.tftHits),
        fieldU("superpage_refs", r.superpageRefs),
        fieldU("superpage_refs_tft_miss", r.superpageRefsTftMiss),
        fieldU("superpage_refs_tft_miss_l1_hit",
               r.superpageRefsTftMissL1Hit),
        fieldU("superpage_refs_tft_miss_l1_miss",
               r.superpageRefsTftMissL1Miss),
        fieldD("superpage_coverage", r.superpageCoverage),
        fieldD("superpage_ref_fraction", r.superpageRefFraction),
        fieldD("energy_total_nj", r.energyTotalNj),
        fieldD("l1_cpu_dynamic_nj", r.l1CpuDynamicNj),
        fieldD("l1_coherence_dynamic_nj", r.l1CoherenceDynamicNj),
        fieldD("l1_leakage_nj", r.l1LeakageNj),
        fieldD("outer_nj", r.outerNj),
        fieldD("translation_nj", r.translationNj),
        fieldU("l1i_accesses", r.l1iAccesses),
        fieldU("l1i_misses", r.l1iMisses),
        fieldU("squashes", r.squashes),
        fieldU("probes", r.probes),
        fieldU("probe_hits", r.probeHits),
        fieldU("owner_supplies", r.ownerSupplies),
        fieldD("wp_accuracy", r.wpAccuracy),
        fieldU("promotions", r.promotions),
        fieldU("splinters", r.splinters),
        fieldU("page_faults", r.pageFaults),
        fieldU("prefetch_issued", r.prefetchIssued),
        fieldU("prefetch_useful", r.prefetchUseful),
        fieldU("prefetch_late", r.prefetchLate),
        fieldU("prefetch_illegal_crossing", r.prefetchIllegalCrossing),
    };
}

std::vector<MutableResultField>
perCoreFields(PerCoreResult &p)
{
    return {
        fieldU("instructions", p.instructions),
        fieldU("cycles", p.cycles),
        fieldD("ipc", p.ipc),
        fieldU("l1_accesses", p.l1Accesses),
        fieldU("l1_hits", p.l1Hits),
        fieldU("l1_misses", p.l1Misses),
        fieldU("tft_hits", p.tftHits),
        fieldU("squashes", p.squashes),
        fieldU("page_faults", p.pageFaults),
    };
}

std::vector<ResultField>
resultFields(const RunResult &r)
{
    // Snapshot the single authoritative pointer list; const_cast is
    // sound because the fields are only read here.
    std::vector<ResultField> out;
    for (const auto &f :
         mutableResultFields(const_cast<RunResult &>(r))) {
        if (f.integral)
            out.push_back(ResultField{f.name, true, *f.u, 0.0});
        else
            out.push_back(ResultField{f.name, false, 0, *f.d});
    }
    return out;
}

std::string
gitDescribe()
{
    std::FILE *pipe =
        ::popen("git describe --always --dirty 2>/dev/null", "r");
    if (!pipe)
        return "unknown";
    char buf[128] = {};
    std::string out;
    if (std::fgets(buf, sizeof(buf), pipe))
        out = buf;
    ::pclose(pipe);
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
        out.pop_back();
    return out.empty() ? "unknown" : out;
}

void
emitCampaignJson(std::ostream &os, const CampaignMetadata &meta,
                 const std::vector<CellResult> &results)
{
    JsonWriter json(os);
    json.beginObject()
        .field("schema_version", 1)
        .field("campaign", meta.campaign)
        .field("git", meta.gitDescribe)
        .field("jobs", meta.jobs)
        .field("wall_seconds", meta.wallSeconds)
        .field("cells", results.size());
    json.key("results").beginArray();
    for (const auto &cell : results) {
        json.beginObject()
            .field("cell", cell.name)
            .field("seed", cell.seed)
            .field("config_hash", hashString(cell.configHash))
            .field("wall_seconds", cell.wallSeconds)
            .field("workload", cell.result.workload);
        json.key("stats").beginObject();
        for (const auto &f : resultFields(cell.result)) {
            if (f.integral)
                json.field(f.name, f.u);
            else
                json.field(f.name, f.d);
        }
        json.endObject(); // stats
        // Multi-core cells additionally record the per-core slices.
        // Single-core cells omit them so existing goldens and tooling
        // see byte-identical documents.
        if (cell.result.cores > 1) {
            json.field("cores", cell.result.cores);
            json.key("per_core").beginArray();
            for (const auto &pc : cell.result.perCore) {
                json.beginObject();
                for (const auto &f : perCoreFields(
                         const_cast<PerCoreResult &>(pc))) {
                    if (f.integral)
                        json.field(f.name, *f.u);
                    else
                        json.field(f.name, *f.d);
                }
                json.endObject();
            }
            json.endArray();
        }
        json.endObject(); // cell
    }
    json.endArray().endObject();
    os << '\n';
}

std::string
csvHeader()
{
    std::string header = "campaign,git,cell,seed,config_hash,"
                         "wall_seconds,workload";
    for (const auto &f : resultFields(RunResult{})) {
        header += ',';
        header += f.name;
    }
    return header;
}

void
emitCampaignCsv(std::ostream &os, const CampaignMetadata &meta,
                const std::vector<CellResult> &results)
{
    os << csvHeader() << '\n';
    for (const auto &cell : results) {
        os << csvField(meta.campaign) << ','
           << csvField(meta.gitDescribe) << ',' << csvField(cell.name)
           << ',' << cell.seed << ',' << hashString(cell.configHash)
           << ',' << cell.wallSeconds << ','
           << csvField(cell.result.workload);
        char buf[32];
        for (const auto &f : resultFields(cell.result)) {
            if (f.integral) {
                os << ',' << f.u;
            } else {
                std::snprintf(buf, sizeof(buf), "%.17g", f.d);
                os << ',' << buf;
            }
        }
        os << '\n';
    }
}

std::vector<std::string>
writeCampaignSinks(const CampaignMetadata &meta,
                   const std::vector<CellResult> &results,
                   std::string dir)
{
    if (dir.empty()) {
        const char *env = std::getenv("SEESAW_RESULTS_DIR");
        dir = env && *env ? env : "results";
    }
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        SEESAW_FATAL("cannot create results directory ", dir, ": ",
                     ec.message());

    std::vector<std::string> paths;
    for (const char *ext : {".json", ".csv"}) {
        const std::string path = dir + "/" + meta.campaign + ext;
        // Write to a sibling temp file and rename over the target so
        // an interrupted campaign never leaves a truncated sink: the
        // rename is atomic, so readers see the old file or the new
        // one, never a half-written document.
        const std::string tmp = path + ".tmp";
        {
            std::ofstream os(tmp, std::ios::trunc);
            if (!os)
                SEESAW_FATAL("cannot open result sink ", tmp);
            if (ext[1] == 'j')
                emitCampaignJson(os, meta, results);
            else
                emitCampaignCsv(os, meta, results);
            os.flush();
            if (!os)
                SEESAW_FATAL("short write to result sink ", tmp);
        }
        std::filesystem::rename(tmp, path, ec);
        if (ec)
            SEESAW_FATAL("cannot publish result sink ", path, ": ",
                         ec.message());
        paths.push_back(path);
    }
    return paths;
}

} // namespace seesaw::harness
