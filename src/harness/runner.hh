/**
 * @file
 * Executes a campaign's cells across a thread pool. Results come back
 * in cell order regardless of completion order, and every cell runs a
 * fresh, self-contained simulation, so a parallel run is bit-identical
 * to a serial one. Progress (cells done/total, per-cell wall time,
 * ETA) goes to stderr under a mutex.
 *
 * Interruption is cooperative: requestStop() (or the SIGINT/SIGTERM
 * handlers installed by installStopSignalHandlers()) lets in-flight
 * cells finish, skips cells that have not started, and marks the
 * outcome interrupted so callers can flush partial sinks and point the
 * user at --resume instead of aborting mid-write.
 */

#ifndef SEESAW_HARNESS_RUNNER_HH
#define SEESAW_HARNESS_RUNNER_HH

#include <functional>
#include <vector>

#include "harness/campaign.hh"
#include "harness/sinks.hh"

namespace seesaw::harness {

/** Runner knobs. */
struct RunnerOptions
{
    /** Worker threads; 0 = defaultJobs() (SEESAW_JOBS env, else
     *  hardware_concurrency). 1 runs inline with no pool. */
    unsigned jobs = 0;

    /** Emit per-cell progress lines to stderr. */
    bool progress = true;

    /**
     * Batch compatible simulate() cells — same workload and same
     * config-invariant front end (MultiConfigEngine::frontEndKey) —
     * into one-pass multi-config simulations: one trace pass drives
     * all of a group's substrates. Cell names, hashes, results and
     * sink/store bytes are bit-identical to running each cell alone;
     * only wall time changes. Cells without one-pass info (custom
     * thunks) are unaffected.
     */
    bool onePass = false;

    /**
     * Called once per completed cell, from whichever worker thread
     * finished it, serialized under a runner-internal mutex. Durable
     * sinks (store::StoreSink) hook in here so every finished cell
     * survives a later crash.
     */
    std::function<void(const CellResult &)> onCellDone;
};

/** What a campaign run produced, plus how it was produced. */
struct CampaignOutcome
{
    CampaignMetadata meta;           //!< ready for the sinks
    std::vector<CellResult> results; //!< completed cells, cell order
    std::size_t totalCells = 0;      //!< cells the campaign asked for
    bool interrupted = false;        //!< stopped before all cells ran
};

class CampaignRunner
{
  public:
    explicit CampaignRunner(RunnerOptions options = {});

    /** Run every cell of @p spec; blocks until all complete. */
    CampaignOutcome run(const CampaignSpec &spec) const;

    /**
     * Run an explicit cell list under campaign @p name — the resume
     * path hands in spec.cells() minus the cells a durable store
     * already holds.
     */
    CampaignOutcome runCells(const std::string &name,
                             const std::vector<Cell> &cells) const;

    /** Run @p spec, write JSON+CSV sinks, return the outcome. */
    CampaignOutcome runAndWrite(const CampaignSpec &spec,
                                std::string dir = {}) const;

    /** The worker count run() will use. */
    unsigned effectiveJobs() const;

  private:
    RunnerOptions options_;
};

/**
 * Find a named cell's RunResult in @p results (fatal if absent) —
 * benches use this to rebuild their tables after a parallel run.
 */
const RunResult &findResult(const std::vector<CellResult> &results,
                            const std::string &name);

/** @name Cooperative shutdown. */
/// @{

/** Ask every CampaignRunner and service worker in this process to
 *  finish in-flight cells and stop claiming new ones.
 *  Async-signal-safe. */
void requestStop();

/** Whether requestStop() has been called. */
bool stopRequested();

/** Reset the stop flag (tests; a fresh campaign after an interrupt). */
void clearStopRequest();

/** Route SIGINT/SIGTERM to requestStop(). Handlers are installed
 *  without SA_RESTART so blocking waits (waitpid) see EINTR and can
 *  re-check the flag. */
void installStopSignalHandlers();

/// @}

} // namespace seesaw::harness

#endif // SEESAW_HARNESS_RUNNER_HH
