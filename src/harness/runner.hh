/**
 * @file
 * Executes a campaign's cells across a thread pool. Results come back
 * in cell order regardless of completion order, and every cell runs a
 * fresh, self-contained simulation, so a parallel run is bit-identical
 * to a serial one. Progress (cells done/total, per-cell wall time,
 * ETA) goes to stderr under a mutex.
 */

#ifndef SEESAW_HARNESS_RUNNER_HH
#define SEESAW_HARNESS_RUNNER_HH

#include <vector>

#include "harness/campaign.hh"
#include "harness/sinks.hh"

namespace seesaw::harness {

/** Runner knobs. */
struct RunnerOptions
{
    /** Worker threads; 0 = defaultJobs() (SEESAW_JOBS env, else
     *  hardware_concurrency). 1 runs inline with no pool. */
    unsigned jobs = 0;

    /** Emit per-cell progress lines to stderr. */
    bool progress = true;
};

/** What a campaign run produced, plus how it was produced. */
struct CampaignOutcome
{
    CampaignMetadata meta;           //!< ready for the sinks
    std::vector<CellResult> results; //!< in cell order
};

class CampaignRunner
{
  public:
    explicit CampaignRunner(RunnerOptions options = {});

    /** Run every cell of @p spec; blocks until all complete. */
    CampaignOutcome run(const CampaignSpec &spec) const;

    /** Run @p spec, write JSON+CSV sinks, return the outcome. */
    CampaignOutcome runAndWrite(const CampaignSpec &spec,
                                std::string dir = {}) const;

    /** The worker count run() will use. */
    unsigned effectiveJobs() const;

  private:
    RunnerOptions options_;
};

/**
 * Find a named cell's RunResult in @p results (fatal if absent) —
 * benches use this to rebuild their tables after a parallel run.
 */
const RunResult &findResult(const std::vector<CellResult> &results,
                            const std::string &name);

} // namespace seesaw::harness

#endif // SEESAW_HARNESS_RUNNER_HH
