/**
 * @file
 * Machine-readable result sinks for campaigns: every RunResult stat
 * plus per-cell metadata (name, config hash, seed, wall time) and
 * campaign metadata (git describe, job count, total wall time) is
 * serialized to JSON and CSV, alongside whatever tables the bench
 * prints. Downstream plotting/regression tooling consumes these files;
 * the field list and CSV header are append-only by convention.
 * Multi-core cells additionally carry "cores" and a "per_core" array
 * in the JSON sink only — single-core documents are unchanged.
 *
 * Concurrency: these sinks hold no mutex by design. Each writes a
 * whole file via tmp+rename from the single thread that owns the
 * campaign outcome; per-cell serialization during a parallel run
 * happens under the runner's hook mutex (see harness/runner.cc) or
 * through the internally-synchronized store::SegmentWriter.
 */

#ifndef SEESAW_HARNESS_SINKS_HH
#define SEESAW_HARNESS_SINKS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "harness/campaign.hh"

namespace seesaw::harness {

/** One named numeric stat extracted from a RunResult. */
struct ResultField
{
    const char *name;
    bool integral;       //!< emit as integer (else double)
    std::uint64_t u = 0;
    double d = 0.0;
};

/**
 * A named stat as a pointer into a live RunResult/PerCoreResult, so
 * readers (the result store) can write fields back by name through
 * the same single list the sinks serialize from.
 */
struct MutableResultField
{
    const char *name;
    bool integral;
    std::uint64_t *u = nullptr; //!< set when integral
    double *d = nullptr;        //!< set when !integral
};

/**
 * Every numeric RunResult stat, in declaration order. Both sinks
 * serialize exactly this list, so JSON and CSV can never drift apart.
 * (The `workload` string is reported separately.)
 */
std::vector<ResultField> resultFields(const RunResult &r);

/** The same list as pointers into @p r (the one definition both
 *  directions share — extend here and every sink and the store
 *  follow). */
std::vector<MutableResultField> mutableResultFields(RunResult &r);

/** The per-core slice stats, in the order the JSON sink emits them. */
std::vector<MutableResultField> perCoreFields(PerCoreResult &p);

/** Campaign-level metadata recorded in every sink. */
struct CampaignMetadata
{
    std::string campaign;
    std::string gitDescribe; //!< from gitDescribe(); "unknown" if n/a
    unsigned jobs = 1;
    double wallSeconds = 0.0; //!< whole-campaign wall time
};

/** `git describe --always --dirty`, or "unknown" outside a checkout. */
std::string gitDescribe();

/** @name Stream-level emitters (unit-testable without touching disk). */
/// @{
void emitCampaignJson(std::ostream &os, const CampaignMetadata &meta,
                      const std::vector<CellResult> &results);
void emitCampaignCsv(std::ostream &os, const CampaignMetadata &meta,
                     const std::vector<CellResult> &results);
/// @}

/** The exact CSV header emitCampaignCsv() writes. */
std::string csvHeader();

/**
 * Write `<dir>/<meta.campaign>.json` and `.csv`, creating @p dir if
 * needed. @p dir defaults to $SEESAW_RESULTS_DIR, else "results".
 * @return The two paths written.
 */
std::vector<std::string>
writeCampaignSinks(const CampaignMetadata &meta,
                   const std::vector<CellResult> &results,
                   std::string dir = {});

} // namespace seesaw::harness

#endif // SEESAW_HARNESS_SINKS_HH
