/**
 * @file
 * The Translation Filter Table (TFT) — SEESAW's page-size predictor
 * (Section IV-A2, Fig 5).
 *
 * The TFT is a small list of 2MB virtual regions known to be backed by
 * superpages. It is probed in parallel with the L1 TLBs (in about a
 * quarter of a 1.33GHz cycle); a hit *guarantees* the access is to a
 * superpage, so the L1 can commit to reading a single partition. The
 * TFT never hits for base-page accesses: entries are only inserted when
 * a superpage translation is filled into the L1 TLB and are invalidated
 * when the OS splinters the superpage (invlpg) or on a context switch
 * (the TFT is not ASID-tagged; Section IV-C3 measured ASID tags as not
 * worth their area).
 *
 * The paper uses a direct-mapped TFT and notes that "set-associative
 * implementations are possible"; both are supported here (assoc = 1 is
 * the paper's design). A 16-entry TFT stores 43-bit region tags: 86
 * bytes per core.
 */

#ifndef SEESAW_CORE_TFT_HH
#define SEESAW_CORE_TFT_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "cache/replacement.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace seesaw {

/**
 * Direct-mapped or set-associative translation filter table.
 */
class Tft
{
  public:
    /**
     * @param entries Number of entries (paper: 16).
     * @param assoc Ways per set: 1 (paper's direct-mapped design) up
     *        to @p entries (fully associative). Must divide entries.
     * @param replacement Victim policy for associative tables
     *        (irrelevant at assoc 1, exactly as the paper observes).
     */
    explicit Tft(unsigned entries = 16, unsigned assoc = 1,
                 ReplacementParams replacement = {});

    /**
     * Probe for the 2MB region containing @p va.
     * @return True when the region is known to be superpage-backed.
     */
    bool lookup(Addr va);

    /** Non-mutating, non-counting probe. */
    bool peek(Addr va) const;

    /** Mark the 2MB region of @p va as superpage-backed (fired on
     *  every superpage L1 TLB fill). Direct-mapped tables displace the
     *  previous occupant; associative ones evict LRU. */
    void markRegion(Addr va);

    /** Invalidate the entry for @p va's region if present (invlpg on
     *  a splintered superpage). @return True if an entry was dropped. */
    bool invalidateRegion(Addr va);

    /** Flush everything (context switch; the TFT has no ASID tags). */
    void flush();

    unsigned entries() const { return entries_; }
    unsigned assoc() const { return assoc_; }
    unsigned numSets() const { return numSets_; }

    /** Valid-entry count (for area/occupancy reporting). */
    unsigned validCount() const;

    /** Visit the 2MB-aligned virtual base of every valid entry
     *  (invariant audits: each must still be superpage-backed). */
    void forEachValidRegion(
        const std::function<void(Addr va_base)> &fn) const;

    /** Storage footprint in bytes: 43-bit tags + valid bit (plus
     *  replacement side-state bits when associative). */
    double storageBytes() const;

    /** The victim-selection policy (invariant audits). */
    const ReplacementPolicy &replacementPolicy() const
    {
        return *policy_;
    }

    const StatGroup &stats() const { return stats_; }
    StatGroup &stats() { return stats_; }

  private:
    struct Entry
    {
        bool valid = false;
        Addr regionTag = 0; //!< va >> 21 (43 significant bits)
    };

    unsigned entries_;
    unsigned assoc_;
    unsigned numSets_;
    ReplacementParams replacement_;
    std::vector<Entry> table_;
    std::optional<ReplacementPolicy> policy_;
    StatGroup stats_;

    // Hot-path stat handles (registered once; see common/stats.hh).
    StatScalar *stLookups_;
    StatScalar *stHits_;
    StatScalar *stMisses_;
    StatScalar *stFills_;
    StatScalar *stConflictEvictions_;
    StatScalar *stInvalidations_;
    StatScalar *stFlushes_;

    static Addr regionOf(Addr va) { return va >> 21; }

    unsigned
    setOf(Addr region) const
    {
        // The paper's hash: VA(63:21) MOD (#sets).
        return static_cast<unsigned>(region % numSets_);
    }

    Entry *find(Addr region);
    const Entry *find(Addr region) const;
    std::size_t slotOf(const Entry *e) const;
};

} // namespace seesaw

#endif // SEESAW_CORE_TFT_HH
