#include "core/seesaw_cache.hh"

#include "common/logging.hh"

namespace seesaw {

SeesawCache::SeesawCache(const SeesawConfig &config,
                         const LatencyTable &latency)
    : config_(config),
      tags_(config.sizeBytes, config.assoc, config.lineBytes,
            config.assoc / config.partitionWays, config.replacement),
      tft_(config.tftEntries, config.tftAssoc,
           withSeedSalt(config.replacement, 0x7f7ULL)),
      slowCycles_(latency.basePageCycles(config.sizeBytes, config.assoc,
                                         config.freqGhz)),
      fastCycles_(latency.superpageCycles(config.sizeBytes, config.assoc,
                                          config.partitionWays,
                                          config.freqGhz)),
      tftCycles_(latency.tftCycles(config.freqGhz)),
      stats_("seesaw"),
      stAccesses_(&stats_.scalar("accesses")),
      stHits_(&stats_.scalar("hits")),
      stMisses_(&stats_.scalar("misses")),
      stSuperRefs_(&stats_.scalar("superpage_refs")),
      stSuperRefsTftMiss_(&stats_.scalar("superpage_refs_tft_miss")),
      stSuperRefsTftMissL1Hit_(
          &stats_.scalar("superpage_refs_tft_miss_l1_hit")),
      stSuperRefsTftMissL1Miss_(
          &stats_.scalar("superpage_refs_tft_miss_l1_miss")),
      stProbes_(&stats_.scalar("probes")),
      stProbeHits_(&stats_.scalar("probe_hits")),
      stSweepEvictions_(&stats_.scalar("sweep_evictions"))
{
    SEESAW_ASSERT(config.assoc % config.partitionWays == 0,
                  "partition width must divide associativity");
    // The partition index must sit above the 4KB page offset (so it is
    // only trusted for superpages) and inside the 2MB page offset.
    SEESAW_ASSERT(tags_.partitionLowBit() == 12,
                  "SEESAW requires sets x linesize == 4KB; got partition "
                  "bit ", tags_.partitionLowBit());
    if (config.wayPrediction) {
        predictor_ = std::make_unique<MruWayPredictor>(
            tags_.numSets(), config.assoc, tags_.numPartitions());
    }
}

L1AccessResult
SeesawCache::access(const L1Access &req)
{
    L1AccessResult res;
    ++*stAccesses_;

    // The TFT is probed in parallel with set selection (and with the
    // TLB): honour a pre-TLB probe when the caller supplies one.
    res.tftHit = req.tftProbe >= 0 ? req.tftProbe == 1
                                   : tft_.lookup(req.va);

    const bool super_ref = isSuperpage(req.pageSize);
    if (super_ref) {
        ++*stSuperRefs_;
        if (!res.tftHit)
            ++*stSuperRefsTftMiss_;
    } else {
        // A TFT hit guarantees a superpage-backed region: entries are
        // only created from 2MB TLB fills and are invalidated on
        // splinters and context switches.
        SEESAW_ASSERT(!res.tftHit, "TFT hit on a base-page access");
    }

    const unsigned set = tags_.setIndex(req.pa);
    const unsigned partition = tags_.partitionIndex(req.pa);

    TagLookup look;
    if (res.tftHit) {
        // Fast path: the VA's partition bits are page-offset bits, so
        // they equal the PA's; one partition suffices (Table I rows
        // 1-2).
        SEESAW_ASSERT(tags_.partitionIndex(req.va) == partition,
                      "superpage VA/PA partition bits must agree");
        look = tags_.lookupPartition(req.pa, partition);
        res.fastPath = true;
        res.latencyCycles = fastCycles_;
        res.waysRead = config_.partitionWays;
    } else {
        // Slow path: the speculated partition is read first; the TFT
        // miss signal triggers a read of the remaining partitions in
        // the next cycle (Table I rows 3-4). Same latency and energy
        // as baseline VIPT.
        look = tags_.lookup(req.pa);
        res.fastPath = false;
        res.latencyCycles = slowCycles_;
        res.waysRead = config_.assoc;
    }

    // Optional combined way prediction (Section VI-F): SEESAW hands the
    // predictor the right partition, shrinking both the energised ways
    // and the misprediction penalty for superpage accesses.
    if (predictor_) {
        res.wpUsed = true;
        const unsigned predicted =
            res.tftHit ? predictor_->predictInPartition(set, partition)
                       : predictor_->predict(set);
        if (look.hit && look.way == predicted) {
            res.wpCorrect = true;
            res.waysRead = 1;
            predictor_->recordOutcome(true);
        } else {
            // Mispredict: tags compare in parallel, so only one extra
            // data-array read (of the correct way) is needed; the
            // scheduler re-arbitrates with a bubble. SEESAW bounds the
            // extra read to the partition on the fast path.
            res.wpCorrect = false;
            res.latencyCycles += 1;
            res.waysRead = 2; // predicted way + the correct way
            res.fastPath = false;
            predictor_->recordOutcome(false);
        }
        if (look.hit)
            predictor_->update(set, look.way);
    }

    res.hit = look.hit;
    if (look.hit) {
        ++*stHits_;
        res.wasPrefetched = look.wasPrefetched;
        if (super_ref && !res.tftHit)
            ++*stSuperRefsTftMissL1Hit_;
        if (req.type == AccessType::Write)
            tags_.lineAt(set, look.way).state = CoherenceState::Modified;
        return res;
    }

    // Miss: install. Under the 4way policy the victim partition is
    // named by the *physical* address — maintaining the placement
    // invariant coherence relies on.
    ++*stMisses_;
    if (super_ref && !res.tftHit)
        ++*stSuperRefsTftMissL1Miss_;

    const auto scope = insertScopeFor(req.pageSize);
    const auto state = req.type == AccessType::Write
                           ? CoherenceState::Modified
                           : CoherenceState::Exclusive;
    res.eviction = tags_.insert(req.pa, scope, state, req.pageSize);
    res.installWays = scope == SetAssocCache::InsertScope::Partition
                          ? config_.partitionWays
                          : config_.assoc;
    if (predictor_) {
        const TagLookup filled = tags_.peek(req.pa);
        SEESAW_ASSERT(filled.hit, "fill must be visible");
        predictor_->update(set, filled.way);
    }
    return res;
}

L1ProbeResult
SeesawCache::probe(Addr pa, bool invalidating)
{
    L1ProbeResult res;
    ++*stProbes_;

    TagLookup look;
    if (config_.policy == InsertionPolicy::FourWay) {
        // Placement invariant: the PA names the only partition the
        // line can live in — every coherence lookup is 4-way.
        look = tags_.lookupPartition(pa, tags_.partitionIndex(pa));
        res.waysRead = config_.partitionWays;
    } else {
        // 4way-8way sacrifices this: base-page lines can sit anywhere
        // in the set, so probes must energise every way.
        look = tags_.lookup(pa);
        res.waysRead = config_.assoc;
    }

    if (!look.hit)
        return res;
    res.hit = true;
    ++*stProbeHits_;
    CacheLine *line = tags_.findLine(pa);
    res.wasDirty = isDirtyState(line->state);
    if (invalidating) {
        // Route through the tag store so the replacement policy sees
        // the way free up.
        tags_.invalidate(pa);
    } else {
        line->state = res.wasDirty ? CoherenceState::Owned
                                   : CoherenceState::Shared;
    }
    return res;
}

Eviction
SeesawCache::prefetchFill(Addr pa, PageSize page_size)
{
    return tags_.insert(pa, SetAssocCache::InsertScope::Partition,
                        CoherenceState::Exclusive, page_size,
                        /*prefetched=*/true);
}

unsigned
SeesawCache::sweepRegion(Addr pa_base, std::uint64_t bytes)
{
    const unsigned evicted = tags_.sweepRegion(pa_base, bytes);
    *stSweepEvictions_ += evicted;
    return evicted;
}

} // namespace seesaw
