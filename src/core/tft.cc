#include "core/tft.hh"

#include "common/logging.hh"

namespace seesaw {

Tft::Tft(unsigned entries, unsigned assoc,
         ReplacementParams replacement)
    : entries_(entries), assoc_(assoc), replacement_(replacement),
      table_(entries), stats_("tft"),
      stLookups_(&stats_.scalar("lookups")),
      stHits_(&stats_.scalar("hits")),
      stMisses_(&stats_.scalar("misses")),
      stFills_(&stats_.scalar("fills")),
      stConflictEvictions_(&stats_.scalar("conflict_evictions")),
      stInvalidations_(&stats_.scalar("invalidations")),
      stFlushes_(&stats_.scalar("flushes"))
{
    SEESAW_ASSERT(entries_ > 0, "TFT needs at least one entry");
    SEESAW_ASSERT(assoc_ >= 1 && entries_ % assoc_ == 0,
                  "TFT associativity must divide entries");
    numSets_ = entries_ / assoc_;
    policy_.emplace(replacement, numSets_, assoc_);
}

std::size_t
Tft::slotOf(const Entry *e) const
{
    return static_cast<std::size_t>(e - table_.data());
}

Tft::Entry *
Tft::find(Addr region)
{
    Entry *base = &table_[static_cast<std::size_t>(setOf(region)) *
                          assoc_];
    for (unsigned way = 0; way < assoc_; ++way) {
        if (base[way].valid && base[way].regionTag == region)
            return &base[way];
    }
    return nullptr;
}

const Tft::Entry *
Tft::find(Addr region) const
{
    return const_cast<Tft *>(this)->find(region);
}

bool
Tft::lookup(Addr va)
{
    ++*stLookups_;
    const Addr region = regionOf(va);
    if (Entry *e = find(region)) {
        policy_->touchAt(slotOf(e));
        ++*stHits_;
        return true;
    }
    ++*stMisses_;
    return false;
}

bool
Tft::peek(Addr va) const
{
    return find(regionOf(va)) != nullptr;
}

void
Tft::markRegion(Addr va)
{
    const Addr region = regionOf(va);
    if (Entry *e = find(region)) {
        policy_->touchAt(slotOf(e));
        ++*stFills_;
        return;
    }

    // Policy victim within the set (trivially "the" slot when
    // direct-mapped — no replacement policy is needed at assoc 1,
    // exactly as the paper observes).
    const unsigned set = setOf(region);
    Entry *base = &table_[static_cast<std::size_t>(set) * assoc_];
    const unsigned way = policy_->victim(set, 0, assoc_);
    Entry *victim = &base[way];
    if (victim->valid)
        ++*stConflictEvictions_;
    victim->valid = true;
    victim->regionTag = region;
    policy_->fill(set, way);
    ++*stFills_;
}

bool
Tft::invalidateRegion(Addr va)
{
    const Addr region = regionOf(va);
    if (Entry *e = find(region)) {
        e->valid = false;
        policy_->invalidateAt(slotOf(e));
        ++*stInvalidations_;
        return true;
    }
    return false;
}

void
Tft::flush()
{
    for (unsigned set = 0; set < numSets_; ++set) {
        for (unsigned way = 0; way < assoc_; ++way) {
            Entry &e = table_[static_cast<std::size_t>(set) * assoc_ +
                              way];
            if (e.valid) {
                e.valid = false;
                policy_->invalidate(set, way);
            }
        }
    }
    ++*stFlushes_;
}

unsigned
Tft::validCount() const
{
    unsigned count = 0;
    for (const auto &e : table_)
        count += e.valid ? 1 : 0;
    return count;
}

void
Tft::forEachValidRegion(
    const std::function<void(Addr va_base)> &fn) const
{
    for (const auto &e : table_) {
        if (e.valid)
            fn(e.regionTag << 21);
    }
}

double
Tft::storageBytes() const
{
    // 43-bit region tag + 1 valid bit per entry; associative tables
    // also keep replacement side-state per entry — log2(assoc)
    // recency/order bits for LRU and FIFO, the RRPV for SRRIP, and
    // nothing for Random.
    double bits_per_entry = 43.0 + 1.0;
    if (assoc_ > 1) {
        switch (replacement_.kind) {
          case ReplacementKind::Lru:
          case ReplacementKind::Fifo:
            for (unsigned a = assoc_; a > 1; a /= 2)
                bits_per_entry += 1.0;
            break;
          case ReplacementKind::Srrip:
            bits_per_entry += replacement_.rripBits;
            break;
          case ReplacementKind::Random:
            break;
        }
    }
    return entries_ * bits_per_entry / 8.0;
}

} // namespace seesaw
