#include "core/tft.hh"

#include "common/logging.hh"

namespace seesaw {

Tft::Tft(unsigned entries, unsigned assoc)
    : entries_(entries), assoc_(assoc), table_(entries), stats_("tft"),
      stLookups_(&stats_.scalar("lookups")),
      stHits_(&stats_.scalar("hits")),
      stMisses_(&stats_.scalar("misses")),
      stFills_(&stats_.scalar("fills")),
      stConflictEvictions_(&stats_.scalar("conflict_evictions")),
      stInvalidations_(&stats_.scalar("invalidations")),
      stFlushes_(&stats_.scalar("flushes"))
{
    SEESAW_ASSERT(entries_ > 0, "TFT needs at least one entry");
    SEESAW_ASSERT(assoc_ >= 1 && entries_ % assoc_ == 0,
                  "TFT associativity must divide entries");
    numSets_ = entries_ / assoc_;
}

Tft::Entry *
Tft::find(Addr region)
{
    Entry *base = &table_[static_cast<std::size_t>(setOf(region)) *
                          assoc_];
    for (unsigned way = 0; way < assoc_; ++way) {
        if (base[way].valid && base[way].regionTag == region)
            return &base[way];
    }
    return nullptr;
}

const Tft::Entry *
Tft::find(Addr region) const
{
    return const_cast<Tft *>(this)->find(region);
}

bool
Tft::lookup(Addr va)
{
    ++*stLookups_;
    if (Entry *e = find(regionOf(va))) {
        e->lastUse = ++useClock_;
        ++*stHits_;
        return true;
    }
    ++*stMisses_;
    return false;
}

bool
Tft::peek(Addr va) const
{
    return find(regionOf(va)) != nullptr;
}

void
Tft::markRegion(Addr va)
{
    const Addr region = regionOf(va);
    if (Entry *e = find(region)) {
        e->lastUse = ++useClock_;
        ++*stFills_;
        return;
    }

    // LRU victim within the set (trivially "the" slot when
    // direct-mapped). No replacement policy is needed at assoc 1,
    // exactly as the paper observes.
    Entry *base = &table_[static_cast<std::size_t>(setOf(region)) *
                          assoc_];
    Entry *victim = &base[0];
    for (unsigned way = 0; way < assoc_; ++way) {
        if (!base[way].valid) {
            victim = &base[way];
            break;
        }
        if (base[way].lastUse < victim->lastUse)
            victim = &base[way];
    }
    if (victim->valid)
        ++*stConflictEvictions_;
    victim->valid = true;
    victim->regionTag = region;
    victim->lastUse = ++useClock_;
    ++*stFills_;
}

bool
Tft::invalidateRegion(Addr va)
{
    if (Entry *e = find(regionOf(va))) {
        e->valid = false;
        ++*stInvalidations_;
        return true;
    }
    return false;
}

void
Tft::flush()
{
    for (auto &e : table_)
        e.valid = false;
    ++*stFlushes_;
}

unsigned
Tft::validCount() const
{
    unsigned count = 0;
    for (const auto &e : table_)
        count += e.valid ? 1 : 0;
    return count;
}

void
Tft::forEachValidRegion(
    const std::function<void(Addr va_base)> &fn) const
{
    for (const auto &e : table_) {
        if (e.valid)
            fn(e.regionTag << 21);
    }
}

double
Tft::storageBytes() const
{
    // 43-bit region tag + 1 valid bit per entry; associative tables
    // also keep log2(assoc) LRU bits per entry.
    double bits_per_entry = 43.0 + 1.0;
    for (unsigned a = assoc_; a > 1; a /= 2)
        bits_per_entry += 1.0;
    return entries_ * bits_per_entry / 8.0;
}

} // namespace seesaw
